package dvsync_test

import (
	"fmt"

	"dvsync"
)

// The paper's core result in four statements: the same power-law workload
// drops far fewer frames under D-VSync, at lower rendering latency.
func Example() {
	profile := dvsync.Profile{
		Name: "doc-example", ShortMeanMs: 6.5, ShortSigmaMs: 2.2,
		LongRatio: 0.05, LongScaleMs: 25, LongAlpha: 2.3,
		Burstiness: 0.2, UIShare: 0.35,
	}
	trace := profile.Generate(1000, 7)
	baseline, decoupled := dvsync.Compare(trace, dvsync.Pixel5.Panel(), 3, 4)
	fmt.Printf("VSync   janks=%d\n", baseline.Jank().Janks)
	fmt.Printf("D-VSync janks=%d\n", decoupled.Jank().Janks)
	fmt.Printf("latency reduced: %v\n",
		decoupled.LatencySummary().Mean < baseline.LatencySummary().Mean)
	// Output:
	// VSync   janks=35
	// D-VSync janks=14
	// latency reduced: true
}

// ExampleController_runtimeSwitch shows the §4.5 runtime switch: D-VSync is
// enabled only inside an activation window (the map app enables it only
// while zooming).
func ExampleConfig_runtimeSwitch() {
	profile := dvsync.Profile{
		Name: "switch-example", ShortMeanMs: 6, ShortSigmaMs: 2,
		LongRatio: 0.04, LongScaleMs: 24, LongAlpha: 2.5,
		Burstiness: 0.1, UIShare: 0.35,
	}
	trace := profile.Generate(120, 3)
	window := func(now dvsync.Time) bool {
		return now >= dvsync.Time(dvsync.FromMillis(500)) &&
			now < dvsync.Time(dvsync.FromMillis(1500))
	}
	r := dvsync.Run(dvsync.Config{
		Mode: dvsync.DVSync, Panel: dvsync.Pixel5.Panel(), Buffers: 5,
		Trace: trace, RuntimeSwitch: window,
	})
	fmt.Printf("both channels used: %v\n", r.DecoupledFrames > 0 && r.VSyncPathFrames > 0)
	// Output:
	// both channels used: true
}

// ExampleCompileUseCase compiles an Appendix A use case to its operation
// script, the way the paper's testing framework drives it.
func ExampleCompileUseCase() {
	uc := dvsync.UseCases()[22] // "clr all notif"
	script := dvsync.CompileUseCase(uc)
	fmt.Println(uc.Abbrev)
	for _, st := range script.Steps {
		fmt.Printf("  %v %s\n", st.Kind, st.Label)
	}
	// Output:
	// clr all notif
	//   settle enter from sceneboard
	//   swipe notification center
	//   settle return to sceneboard
}

// ExampleLinearPredictor demonstrates the IPL's ZDP-style extrapolation: a
// steady 1000 px/s swipe predicted 50 ms ahead.
func ExampleLinearPredictor() {
	var history []dvsync.InputSample
	for i := 0; i < 8; i++ {
		at := dvsync.Time(i * 8_333_333) // 120 Hz digitizer
		history = append(history, dvsync.InputSample{At: at, Value: 1000 * at.Seconds()})
	}
	target := history[len(history)-1].At.Add(dvsync.FromMillis(50))
	pred := dvsync.LinearPredictor{}.Predict(history, target)
	fmt.Printf("predicted %.1f px (truth %.1f px)\n", pred, 1000*target.Seconds())
	// Output:
	// predicted 108.3 px (truth 108.3 px)
}
