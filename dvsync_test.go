package dvsync

import (
	"strings"
	"testing"
)

func benchmarkProfile() Profile {
	return Profile{
		Name: "facade-test", ShortMeanMs: 6.5, ShortSigmaMs: 2.2,
		LongRatio: 0.05, LongScaleMs: 25, LongAlpha: 2.3,
		Burstiness: 0.2, UIShare: 0.35,
	}
}

// TestTryRunErrors covers the panic-audit conversions: config and profile
// mistakes surface as error values through the Try entry points, while the
// panicking convenience paths are unchanged for internal callers.
func TestTryRunErrors(t *testing.T) {
	p := benchmarkProfile()
	tr := p.Generate(50, 7)

	bad := []struct {
		name string
		cfg  Config
	}{
		{"empty trace", Config{Mode: VSync, Panel: Pixel5.Panel(), Buffers: 3}},
		{"too few buffers", Config{Mode: VSync, Panel: Pixel5.Panel(), Buffers: 1, Trace: tr}},
		{"no refresh rate", Config{Mode: VSync, Buffers: 3, Trace: tr}},
		{"negative app offset", Config{Mode: VSync, Panel: Pixel5.Panel(), Buffers: 3,
			Trace: tr, AppOffset: -FromMillis(1)}},
		{"LTPO without velocity", Config{Mode: DVSync, Panel: Pixel5.Panel(), Buffers: 4,
			Trace: tr, LTPOPolicy: DefaultLTPOPolicy()}},
	}
	for _, c := range bad {
		if _, err := TryRun(c.cfg); err == nil {
			t.Errorf("%s: TryRun accepted an invalid config", c.name)
		}
		if err := ValidateConfig(c.cfg); err == nil {
			t.Errorf("%s: ValidateConfig accepted an invalid config", c.name)
		}
	}

	r, err := TryRun(Config{Mode: DVSync, Panel: Pixel5.Panel(), Buffers: 4, Trace: tr})
	if err != nil {
		t.Fatalf("TryRun rejected a valid config: %v", err)
	}
	if !r.Completed {
		t.Fatal("TryRun run did not complete")
	}

	invalid := benchmarkProfile()
	invalid.UIShare = 2
	if _, err := invalid.TryGenerate(10, 1); err == nil {
		t.Error("TryGenerate accepted an invalid profile")
	}
	if got, err := p.TryGenerate(10, 1); err != nil || got.Len() != 10 {
		t.Errorf("TryGenerate(10) = %v frames, err %v", got.Len(), err)
	}
}

func TestCompare(t *testing.T) {
	p := benchmarkProfile()
	tr := p.Generate(800, 42)
	v, d := Compare(tr, Pixel5.Panel(), 3, 4)
	if v.Mode != VSync || d.Mode != DVSync {
		t.Fatal("modes wrong")
	}
	if !v.Completed || !d.Completed {
		t.Fatal("runs did not complete")
	}
	if d.FDPS() >= v.FDPS() {
		t.Errorf("D-VSync FDPS %v should beat VSync %v", d.FDPS(), v.FDPS())
	}
	if d.LatencySummary().Mean >= v.LatencySummary().Mean {
		t.Error("D-VSync latency should beat VSync")
	}
}

func TestRunWithRecorder(t *testing.T) {
	p := benchmarkProfile()
	rec := NewRecorder()
	r := Run(Config{
		Mode: DVSync, Panel: Pixel5.Panel(), Buffers: 4,
		Trace: p.Generate(120, 1), Recorder: rec,
	})
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
	var b strings.Builder
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "frame-present") != len(r.Presented) {
		t.Error("present fences missing from trace")
	}
}

func TestDeterminism(t *testing.T) {
	p := benchmarkProfile()
	tr := p.Generate(500, 9)
	a := Run(Config{Mode: DVSync, Panel: Mate60Pro.Panel(), Buffers: 4, Trace: tr})
	b := Run(Config{Mode: DVSync, Panel: Mate60Pro.Panel(), Buffers: 4, Trace: tr})
	if a.FDPS() != b.FDPS() || len(a.Janks) != len(b.Janks) {
		t.Error("identical configs must reproduce identical runs")
	}
	if len(a.LatencyMs) != len(b.LatencyMs) {
		t.Fatal("latency samples differ")
	}
	for i := range a.LatencyMs {
		if a.LatencyMs[i] != b.LatencyMs[i] {
			t.Fatal("latency samples differ")
		}
	}
}

func TestCatalogAccessors(t *testing.T) {
	if len(Devices()) != 3 || len(Apps()) != 25 || len(UseCases()) != 75 ||
		len(Games()) != 15 || len(UXTasks()) != 8 {
		t.Error("catalog sizes wrong")
	}
	if len(Experiments()) < 15 {
		t.Errorf("experiments = %d", len(Experiments()))
	}
	if _, ok := FindExperiment("fig15"); !ok {
		t.Error("FindExperiment failed")
	}
}

func TestAnimationSampling(t *testing.T) {
	a := &Animation{
		Name: "open", Curve: EaseInOutCurve{},
		Start: 0, Duration: FromMillis(300), From: 0, To: 100,
	}
	if a.SampleAt(0) != 0 {
		t.Error("animation start wrong")
	}
	if a.SampleAt(Time(FromMillis(300))) != 100 {
		t.Error("animation end wrong")
	}
}

func TestLTPOFacade(t *testing.T) {
	policy := DefaultLTPOPolicy()
	if policy.DesiredHz(5000) != 120 || policy.DesiredHz(0) != 60 {
		t.Error("default policy wrong")
	}
	custom := NewLTPOPolicy([]RateStep{{MinVelocity: 0, Hz: 30}, {MinVelocity: 100, Hz: 60}})
	if custom.DesiredHz(50) != 30 || custom.DesiredHz(200) != 60 {
		t.Error("custom policy wrong")
	}
}

// TestLTPOIntegration runs a decelerating fling under D-VSync with variable
// refresh and verifies the §5.3 drain rule end to end: no frame rendered
// for rate X is ever latched while the panel runs at rate Y.
func TestLTPOIntegration(t *testing.T) {
	fling := Fling{Start: 0, Velocity: 3000, DownFor: FromMillis(150),
		Friction: 1.2, Settle: FromSeconds(4)}
	velocity := func(tt Time) float64 {
		dt := FromMillis(4)
		return (fling.Value(tt.Add(dt)) - fling.Value(tt)) / dt.Seconds()
	}
	period := PeriodForHz(120).Milliseconds()
	p := Profile{
		Name: "ltpo-int", ShortMeanMs: 0.4 * period, ShortSigmaMs: 0.12 * period,
		LongRatio: 0.04, LongScaleMs: 1.5 * period, LongAlpha: 2.5,
		Burstiness: 0.1, UIShare: 0.35,
	}
	rec := NewRecorder()
	r := Run(Config{
		Mode: DVSync, Panel: Mate60Pro.Panel(), Buffers: 4,
		Trace:      p.Generate(400, 5),
		LTPOPolicy: DefaultLTPOPolicy(), LTPOVelocity: velocity,
		Recorder: rec,
	})
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	rateAt := 120
	rates := map[int]int{}
	for _, f := range r.Presented {
		rates[f.Seq] = f.RateHz
	}
	switches := 0
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case "rate-change":
			rateAt = ev.Hz
			switches++
		case "frame-latched":
			if rb := rates[ev.Frame]; rb != 0 && rb != rateAt {
				t.Fatalf("frame %d rendered for %d Hz latched at %d Hz", ev.Frame, rb, rateAt)
			}
		}
	}
	if switches < 2 {
		t.Errorf("expected the fling to step down through rates, got %d switches", switches)
	}
}

func TestPredictorsExposed(t *testing.T) {
	h := []InputSample{{At: 0, Value: 0}, {At: Time(FromMillis(10)), Value: 10}}
	at := Time(FromMillis(20))
	if got := (LinearPredictor{}).Predict(h, at); got < 19 || got > 21 {
		t.Errorf("linear = %v", got)
	}
	if got := (LastValuePredictor{}).Predict(h, at); got != 10 {
		t.Errorf("last-value = %v", got)
	}
	if got := (QuadraticPredictor{}).Predict(h, at); got < 15 || got > 25 {
		t.Errorf("quadratic = %v", got)
	}
}

func TestUseCaseFacade(t *testing.T) {
	uc := UseCases()[20] // cls notif ctr
	script := CompileUseCase(uc)
	if len(script.Steps) < 3 {
		t.Fatalf("script has %d steps", len(script.Steps))
	}
	rep := RunUseCase(uc, Mate60Pro, VSync, 5)
	if rep.Frames == 0 {
		t.Fatal("empty report")
	}
	repD := RunUseCase(uc, Mate60Pro, DVSync, 5)
	if repD.Janks > rep.Janks {
		t.Errorf("D-VSync janks %.1f exceed VSync %.1f", repD.Janks, rep.Janks)
	}
}
