// Browser: the §6.6 Chromium case study. A web page is divided into layers
// of tiles rasterised asynchronously and composited with VSync signals; the
// compositor is a custom-rendering pipeline that bypasses the OS UI
// framework. This example pre-renders fling animations through the
// decoupling-aware APIs and compares frame drops on three page workloads.
//
// Run with:
//
//	go run ./examples/browser
package main

import (
	"fmt"

	"dvsync"
)

// page models one browsing workload: the raster cost profile during the
// fling after a swipe.
type page struct {
	name    string
	profile dvsync.Profile
}

func pages() []page {
	base := func(name string, longRatio, alpha float64) dvsync.Profile {
		period := dvsync.PeriodForHz(120).Milliseconds()
		return dvsync.Profile{
			Name:        "page-" + name,
			ShortMeanMs: 0.40 * period, ShortSigmaMs: 0.13 * period,
			LongRatio: longRatio, LongScaleMs: 1.5 * period, LongAlpha: alpha,
			Burstiness: 0.1, UIShare: 0.3,
			MaxFrameMs: 3 * period,
			Class:      dvsync.Interactive, // custom-rendering: aware channel
		}
	}
	return []page{
		{"news feed (image heavy)", base("news", 0.08, 2.2)},
		{"weather (light DOM)", base("weather", 0.04, 3.0)},
		{"smart-home dashboard", base("dashboard", 0.03, 3.0)},
	}
}

func main() {
	panel := dvsync.Mate60Pro.Panel()
	fmt.Println("Chromium-style compositor flings on a 120 Hz panel")
	fmt.Println()

	// The fling drives the scroll offset; its velocity also tells the
	// compositor when the animation ends.
	fling := dvsync.Fling{
		Start: 0, Velocity: 3000,
		DownFor:  dvsync.FromMillis(180),
		Friction: 2.5,
		Settle:   dvsync.FromSeconds(6),
	}

	var vSum, dSum float64
	for _, pg := range pages() {
		trace := pg.profile.Generate(800, 11)

		baseline := dvsync.Run(dvsync.Config{
			Mode: dvsync.VSync, Panel: panel, Buffers: 4, Trace: trace,
			ContentSample: func(f *dvsync.Frame, now dvsync.Time) {
				f.ContentValue = fling.Value(f.ContentTime)
			},
		})
		// The compositor registers a predictor so interactive frames ride
		// the decoupling-aware channel during the fling.
		decoupled := dvsync.Run(dvsync.Config{
			Mode: dvsync.DVSync, Panel: panel, Buffers: 4, Trace: trace,
			Predictor: dvsync.LinearPredictor{},
			ContentSample: func(f *dvsync.Frame, now dvsync.Time) {
				f.ContentValue = fling.Value(f.ContentTime)
			},
		})
		fmt.Printf("  %-26s FDPS %.2f -> %.2f\n", pg.name, baseline.FDPS(), decoupled.FDPS())
		vSum += baseline.FDPS()
		dSum += decoupled.FDPS()
	}
	n := float64(len(pages()))
	fmt.Printf("\naverage FDPS %.2f -> %.2f (%.0f%% reduction)\n",
		vSum/n, dSum/n, 100*(1-dSum/vSum))
}
