// Latency ball: the Figure 7 visualisation. An app draws a red ball at the
// touch position every frame; rendering latency makes the ball trail the
// fingertip during a fast swipe — around 400 px at 45 ms latency. With
// D-VSync and the Input Prediction Layer, the ball catches up.
//
// Run with:
//
//	go run ./examples/latencyball
package main

import (
	"fmt"
	"strings"

	"dvsync"
)

func main() {
	panel := dvsync.Pixel5.Panel()

	// A fast upward swipe (~6,200 px/s) sampled by a 120 Hz digitizer.
	swipe := dvsync.Swipe{Start: 0, Velocity: 6200, Duration: dvsync.FromMillis(400)}
	reports := dvsync.Digitizer{RateHz: 120}.Samples(swipe)
	history := func(t dvsync.Time) []dvsync.InputSample {
		var h []dvsync.InputSample
		for _, s := range reports {
			if s.At.After(t) {
				break
			}
			h = append(h, dvsync.InputSample{At: s.At, Value: s.Value})
		}
		return h
	}

	// The drawing app: light frames with occasional heavy ones, so the
	// queue stuffs up and latency grows, exactly like the paper's demo.
	profile := dvsync.Profile{
		Name:        "ball-app",
		ShortMeanMs: 6.8, ShortSigmaMs: 2.2,
		LongRatio: 0.08, LongScaleMs: 24, LongAlpha: 2.3,
		Burstiness: 0.2, UIShare: 0.35,
		Class: dvsync.Interactive,
	}
	trace := profile.Generate(24, 3) // 24 frames ≈ the 400 ms swipe at 60 Hz

	baseline := dvsync.Run(dvsync.Config{
		Mode: dvsync.VSync, Panel: panel, Buffers: 3, Trace: trace,
		ContentSample: func(f *dvsync.Frame, now dvsync.Time) {
			f.ContentValue = swipe.Value(f.ContentTime) // sampled at frame start
		},
	})
	predictor := dvsync.LinearPredictor{}
	aware := dvsync.Run(dvsync.Config{
		Mode: dvsync.DVSync, Panel: panel, Buffers: 4, Trace: trace,
		Predictor: predictor,
		ContentSample: func(f *dvsync.Frame, now dvsync.Time) {
			switch {
			case f.Decoupled && swipe.Down(now):
				// IPL is only active while the fingertip is physically on
				// the screen (§4.6).
				f.ContentValue = predictor.Predict(history(now), f.DTimestamp)
			case f.Decoupled:
				// After release the motion is deterministic: sample it at
				// the frame's display time like any animation.
				f.ContentValue = swipe.Value(f.DTimestamp)
			default:
				f.ContentValue = swipe.Value(now)
			}
		},
	})

	fmt.Println("finger vs ball during a fast swipe (one row per displayed frame)")
	fmt.Println()
	fmt.Println("frame  finger(px)  VSync ball   lag(px)   D-VSync+IPL ball  lag(px)")
	maxV, maxD := 0.0, 0.0
	for i := 0; i < len(baseline.Presented) && i < len(aware.Presented) && i < 17; i++ {
		fv := baseline.Presented[i]
		fd := aware.Presented[i]
		fingerV := swipe.Value(fv.PresentAt)
		lagV := fingerV - fv.ContentValue
		fingerD := swipe.Value(fd.PresentAt)
		lagD := fingerD - fd.ContentValue
		// Only frames displayed while the finger tracks count toward the
		// headline number (prediction past a sudden stop is unknowable).
		if swipe.Down(fv.PresentAt) && lagV > maxV {
			maxV = lagV
		}
		// The first few frames predict from a 1-2 sample history (IPL
		// warm-up); steady state begins once the fit has a window.
		if i >= 4 && swipe.Down(fd.PresentAt) && abs(lagD) > maxD {
			maxD = abs(lagD)
		}
		fmt.Printf("%4d   %9.0f  %10.0f  %8.0f   %15.0f  %7.0f  %s\n",
			i+1, fingerV, fv.ContentValue, lagV, fd.ContentValue, lagD,
			bar(lagV))
	}
	fmt.Printf("\nmax ball-to-fingertip distance: VSync %.0f px (≈%.1f cm), D-VSync+IPL %.0f px (after IPL warm-up)\n",
		maxV, maxV/165, maxD) // Pixel 5: ≈165 px per cm (432 ppi)
}

func bar(px float64) string {
	n := int(px / 25)
	if n < 0 {
		n = 0
	}
	if n > 30 {
		n = 30
	}
	return strings.Repeat("#", n)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
