// Quickstart: simulate the same app workload under conventional VSync and
// under D-VSync, and watch frame drops and rendering latency fall.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dvsync"
)

func main() {
	// A 60 Hz phone. The workload is a typical scrolling app: short frames
	// around 6.5 ms with a 5 % heavy tail of key frames — the power-law
	// fluctuation the paper identifies as the root cause of janks (§3).
	panel := dvsync.Pixel5.Panel()
	profile := dvsync.Profile{
		Name:         "quickstart-app",
		ShortMeanMs:  6.5,
		ShortSigmaMs: 2.2,
		LongRatio:    0.05,
		LongScaleMs:  25,
		LongAlpha:    2.3,
		Burstiness:   0.2,
		UIShare:      0.35,
	}
	trace := profile.Generate(1200, 42)

	// Baseline: triple-buffered VSync. D-VSync: one extra buffer and the
	// Frame Pre-Executor accumulating short frames ahead of the display.
	baseline, decoupled := dvsync.Compare(trace, panel, 3, 4)

	fmt.Println("workload: 1200 frames, 60 Hz panel")
	fmt.Println()
	show := func(r *dvsync.Result) {
		jr := r.Jank()
		ls := r.LatencySummary()
		fmt.Printf("%-8s  FDPS %.2f  drops %d  latency %.1f ms (p95 %.1f)\n",
			r.Mode.String(), jr.FDPS(), jr.Janks, ls.Mean, ls.P95)
	}
	show(baseline)
	show(decoupled)

	fmt.Println()
	fmt.Printf("frame drops reduced %.0f%%, rendering latency reduced %.0f%%\n",
		100*(1-decoupled.FDPS()/baseline.FDPS()),
		100*(1-decoupled.LatencySummary().Mean/baseline.LatencySummary().Mean))
	fmt.Printf("cost: +%.1f MB buffer memory, +%.1f ms bookkeeping over %d frames\n",
		float64(decoupled.MemoryBytes-baseline.MemoryBytes)/(1<<20),
		decoupled.OverheadWork.Milliseconds(), len(decoupled.Presented))
}
