// Games: the Figure 14 simulation. Mobile games use custom rendering
// engines that bypass the OS rendering framework, so D-VSync applies
// through the decoupling-aware APIs. This example replays game-style frame
// traces at their capped rates and sweeps the pre-render window.
//
// Run with:
//
//	go run ./examples/games
package main

import (
	"fmt"

	"dvsync"
)

func main() {
	fmt.Println("game UI/scene animations, decoupling-aware D-VSync (Figure 14 style)")
	fmt.Println()
	fmt.Printf("%-22s %5s  %12s  %12s  %12s\n", "game", "rate", "VSync 3bufs", "D-VSync 4", "D-VSync 5")

	var v3, d4, d5 []float64
	for _, g := range dvsync.Games() {
		panel := dvsync.Mate60Pro.Panel()
		panel.RefreshHz = g.RateHz
		profile := g.Profile()
		trace := profile.Generate(900, 99)

		baseline := dvsync.Run(dvsync.Config{
			Mode: dvsync.VSync, Panel: panel, Buffers: 3, Trace: trace,
		})
		aware := func(buffers int) *dvsync.Result {
			return dvsync.Run(dvsync.Config{
				Mode: dvsync.DVSync, Panel: panel, Buffers: buffers, Trace: trace,
				Predictor: dvsync.LinearPredictor{}, // aware channel
			})
		}
		r4, r5 := aware(4), aware(5)
		fmt.Printf("%-22s %4dHz  %12.2f  %12.2f  %12.2f\n",
			g.Name, g.RateHz, baseline.FDPS(), r4.FDPS(), r5.FDPS())
		v3 = append(v3, baseline.FDPS())
		d4 = append(d4, r4.FDPS())
		d5 = append(d5, r5.FDPS())
	}

	fmt.Printf("\n%-22s %5s  %12.2f  %12.2f  %12.2f\n", "average", "",
		mean(v3), mean(d4), mean(d5))
	fmt.Printf("FDPS reduction: %.0f%% with 4 buffers, %.0f%% with 5\n",
		100*(1-mean(d4)/mean(v3)), 100*(1-mean(d5)/mean(v3)))
	fmt.Println("\n(note: uncalibrated profiles — run `dvbench -exp fig14` for the")
	fmt.Println(" baseline-calibrated reproduction of the paper's figure)")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
