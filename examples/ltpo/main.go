// LTPO: the §5.3 co-design. A fling starts fast (120 Hz), then decelerates;
// the LTPO policy steps the panel down to 90 and 60 Hz to save power —
// but only after D-VSync's accumulated buffers, each bound to the rate it
// was rendered for, have been consumed.
//
// Run with:
//
//	go run ./examples/ltpo
package main

import (
	"fmt"

	"dvsync"
)

func main() {
	panel := dvsync.Mate60Pro.Panel()

	// The fling: 3000 px/s decaying with friction 1.2/s — crosses the
	// 1200 px/s and 400 px/s policy thresholds as it settles.
	fling := dvsync.Fling{
		Start: 0, Velocity: 3000,
		DownFor:  dvsync.FromMillis(150),
		Friction: 1.2,
		Settle:   dvsync.FromSeconds(4),
	}
	velocity := func(t dvsync.Time) float64 {
		dt := dvsync.FromMillis(4)
		a := fling.Value(t)
		b := fling.Value(t.Add(dt))
		return (b - a) / dt.Seconds()
	}

	period := dvsync.PeriodForHz(120).Milliseconds()
	profile := dvsync.Profile{
		Name:        "ltpo-fling",
		ShortMeanMs: 0.4 * period, ShortSigmaMs: 0.12 * period,
		LongRatio: 0.04, LongScaleMs: 1.5 * period, LongAlpha: 2.5,
		Burstiness: 0.1, UIShare: 0.35,
	}
	trace := profile.Generate(400, 5)

	rec := dvsync.NewRecorder()
	r := dvsync.Run(dvsync.Config{
		Mode: dvsync.DVSync, Panel: panel, Buffers: 4, Trace: trace,
		LTPOPolicy:   dvsync.DefaultLTPOPolicy(),
		LTPOVelocity: velocity,
		Recorder:     rec,
	})

	fmt.Println("D-VSync + LTPO on a decelerating fling (120 Hz panel)")
	fmt.Printf("  frames presented: %d, janks: %d\n", len(r.Presented), len(r.Janks))

	// Walk the trace for rate changes and check the drain rule: no frame
	// rendered for rate X may be displayed while the panel runs at Y.
	fmt.Println("  refresh-rate switches:")
	for _, ev := range rec.Events() {
		if ev.Kind == "rate-change" {
			fmt.Printf("    t=%-12v -> %d Hz\n", ev.At, ev.Hz)
		}
	}
	violations := 0
	rate := 120
	byFrame := map[int]int{} // frame -> rate bound
	for _, f := range r.Presented {
		byFrame[f.Seq] = f.RateHz
	}
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case "rate-change":
			rate = ev.Hz
		case "frame-latched":
			if rb := byFrame[ev.Frame]; rb != 0 && rb != rate {
				violations++
			}
		}
	}
	fmt.Printf("  rate-bound violations (X-rate frame shown at Y): %d\n", violations)
}
