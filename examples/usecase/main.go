// Use case: run one of the paper's 75 Appendix A OS use cases through the
// scripted testing framework — the industrial methodology of §3.2, from the
// public API.
//
// Run with:
//
//	go run ./examples/usecase                       # default case
//	go run ./examples/usecase "clr all notif"       # any Appendix A abbreviation
package main

import (
	"fmt"
	"os"
	"strings"

	"dvsync"
)

func main() {
	abbrev := "cls notif ctr"
	if len(os.Args) > 1 {
		abbrev = os.Args[1]
	}
	var found *dvsync.UseCase
	for _, uc := range dvsync.UseCases() {
		if strings.EqualFold(uc.Abbrev, abbrev) {
			c := uc
			found = &c
			break
		}
	}
	if found == nil {
		fmt.Fprintf(os.Stderr, "unknown use case %q; Appendix A abbreviations:\n", abbrev)
		for _, uc := range dvsync.UseCases() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", uc.Abbrev, uc.Description)
		}
		os.Exit(2)
	}

	fmt.Printf("#%d %s — %s\n\n", found.ID, found.Abbrev, found.Description)
	script := dvsync.CompileUseCase(*found)
	fmt.Println("operation script (starts and ends on the sceneboard, A.2):")
	for _, st := range script.Steps {
		fmt.Printf("  %-7v %-26s %v\n", st.Kind, st.Label, st.Duration)
	}

	fmt.Println()
	v := dvsync.RunUseCase(*found, dvsync.Mate60Pro, dvsync.VSync, 1)
	d := dvsync.RunUseCase(*found, dvsync.Mate60Pro, dvsync.DVSync, 1)
	fmt.Printf("%-8s janks %.1f   FDPS %.2f   latency %.1f ms\n", "VSync", v.Janks, v.FDPS, v.LatencyMs)
	fmt.Printf("%-8s janks %.1f   FDPS %.2f   latency %.1f ms\n", "D-VSync", d.Janks, d.FDPS, d.LatencyMs)
	if v.Janks > 0 {
		fmt.Printf("\nframe-drop reduction: %.0f%% (means of 5 scripted runs)\n", 100*(1-d.Janks/v.Janks))
	}
}
