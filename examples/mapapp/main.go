// Map app: the §6.5 decoupling-aware case study. Two fingers zoom a map;
// rendering new vector tiles causes frame drops. The app registers a linear
// Zooming Distance Predictor (ZDP) through the Input Prediction Layer,
// configures a 5-buffer pre-render window, and activates D-VSync only while
// zooming.
//
// Run with:
//
//	go run ./examples/mapapp
package main

import (
	"fmt"
	"math"

	"dvsync"
)

func main() {
	panel := dvsync.Pixel5.Panel()

	// The zoom gesture: fingertip separation grows 380 px/s with a human
	// tremor. The digitizer reports at 120 Hz.
	pinch := dvsync.Pinch{
		StartDistance: 220, RatePxPerSec: 380,
		TremorAmp: 5, TremorHz: 7,
		Duration: dvsync.FromSeconds(30),
	}
	reports := dvsync.Digitizer{RateHz: 120}.Samples(pinch)
	history := func(t dvsync.Time) []dvsync.InputSample {
		var h []dvsync.InputSample
		for _, s := range reports {
			if s.At.After(t) {
				break
			}
			h = append(h, dvsync.InputSample{At: s.At, Value: s.Value})
		}
		return h
	}

	// Tile rasterisation: interactive frames with clustered spikes.
	profile := dvsync.Profile{
		Name:        "map-zoom",
		ShortMeanMs: 6.6, ShortSigmaMs: 2.2,
		LongRatio: 0.06, LongScaleMs: 25, LongAlpha: 2.6,
		Burstiness: 0.35, UIShare: 0.35,
		MaxFrameMs: 62,
		Class:      dvsync.Interactive,
	}
	trace := profile.Generate(1800, 7)

	// Baseline: VSync samples the fingertips at frame execution time.
	baseline := dvsync.Run(dvsync.Config{
		Mode: dvsync.VSync, Panel: panel, Buffers: 3, Trace: trace,
		ContentSample: func(f *dvsync.Frame, now dvsync.Time) {
			f.ContentValue = pinch.Value(f.ContentTime)
		},
	})

	// Decoupling-aware: ZDP extrapolates the distance to each frame's
	// D-Timestamp so pre-rendered frames show where the fingers will be.
	zdp := dvsync.LinearPredictor{}
	aware := dvsync.Run(dvsync.Config{
		Mode: dvsync.DVSync, Panel: panel, Buffers: 5, Trace: trace,
		Predictor: zdp,
		ContentSample: func(f *dvsync.Frame, now dvsync.Time) {
			if f.Decoupled {
				f.ContentValue = zdp.Predict(history(now), f.DTimestamp)
			} else {
				f.ContentValue = pinch.Value(now)
			}
		},
	})

	fmt.Println("map app zooming (Pixel 5, 30 s pinch)")
	fmt.Printf("  VSync   3 bufs:       FDPS %.2f, latency %.1f ms\n",
		baseline.FDPS(), baseline.LatencySummary().Mean)
	fmt.Printf("  D-VSync 5 bufs + ZDP: FDPS %.2f, latency %.1f ms\n",
		aware.FDPS(), aware.LatencySummary().Mean)

	fmt.Printf("  zoom-level error at display time: VSync %.1f px, ZDP %.1f px\n",
		meanError(baseline, pinch), meanError(aware, pinch))
}

// meanError measures how far the rendered fingertip distance was from the
// true distance when each frame became visible.
func meanError(r *dvsync.Result, pinch dvsync.Pinch) float64 {
	var sum float64
	var n int
	for _, f := range r.Presented {
		sum += math.Abs(f.ContentValue - pinch.Value(f.PresentAt))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
