// Command dvsim runs a single rendering simulation and prints its metrics:
// a quick way to explore how workload shape, buffer count and scheduler
// interact.
//
// Usage examples:
//
//	dvsim -mode dvsync -hz 120 -buffers 5 -frames 2000
//	dvsim -mode vsync -short-mean 7 -long-ratio 0.08 -long-scale 25
//	dvsim -mode both -seed 7
//	dvsim -app QQMusic            # a Figure 11 app, paper-calibrated
//	dvsim -usecase "cls notif ctr" # an Appendix A case (scripted run)
//	dvsim -game "8 Ball Pool"      # a Figure 14 game
//	dvsim -fault stall -fault-severity 0.8            # inject one fault class
//	dvsim -mode dvsync -fault alloc -fallback          # with §4.5 supervision
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dvsync"
	"dvsync/internal/autotest"
	"dvsync/internal/checkpoint"
	"dvsync/internal/exp"
	"dvsync/internal/flight"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

func main() {
	var (
		mode      = flag.String("mode", "both", "vsync, dvsync, or both")
		hz        = flag.Int("hz", 60, "panel refresh rate")
		buffers   = flag.Int("buffers", 0, "buffer-queue size (0: 3 for vsync, 4 for dvsync)")
		limit     = flag.Int("prerender", 0, "pre-render limit (0: buffers-1)")
		frames    = flag.Int("frames", 1000, "workload length in frames")
		seed      = flag.Int64("seed", 1, "workload seed")
		shortMean = flag.Float64("short-mean", 0, "short-frame mean cost ms (0: 40% of period)")
		shortSig  = flag.Float64("short-sigma", 0, "short-frame cost stddev ms (0: 13% of period)")
		longRatio = flag.Float64("long-ratio", 0.05, "key-frame probability")
		longScale = flag.Float64("long-scale", 0, "key-frame Pareto scale ms (0: 1.5 periods)")
		longAlpha = flag.Float64("long-alpha", 2.3, "key-frame Pareto shape")
		burst     = flag.Float64("burst", 0.2, "key-frame clustering P(long|long)")
		uiShare   = flag.Float64("ui-share", 0.35, "UI-thread share of frame cost")
		jitterUs  = flag.Float64("jitter-us", 0, "panel edge jitter stddev (µs)")
		appName   = flag.String("app", "", "run a Figure 11 app scenario by name")
		caseName  = flag.String("usecase", "", "run an Appendix A use case by abbreviation")
		gameName  = flag.String("game", "", "run a Figure 14 game scenario by name")
		traceIn   = flag.String("trace-file", "", "replay a recorded workload trace (JSON, see workload.WriteJSON)")
		traceOut  = flag.String("dump-trace", "", "write the generated workload trace as JSON and exit")
		faultCls  = flag.String("fault", "", "inject one fault class (see -fault-list)")
		faultSev  = flag.Float64("fault-severity", 0.5, "normalised fault severity in [0, 1]")
		faultFrom = flag.Float64("fault-start", 500, "fault window start (ms)")
		faultTo   = flag.Float64("fault-end", 0, "fault window end (ms, 0: rest of the run)")
		faultSeed = flag.Int64("fault-seed", 1, "fault-injection RNG seed")
		faultList = flag.Bool("fault-list", false, "list fault classes and exit")
		fallback  = flag.Bool("fallback", false, "enable the supervised D-VSync→VSync fallback (§4.5)")

		ckptDir   = flag.String("checkpoint-dir", "", "periodically checkpoint the run into this directory")
		ckptEvery = flag.Float64("checkpoint-every", 500, "checkpoint interval (virtual ms, with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint-dir (fresh start if none)")
		digestOut = flag.Bool("trace-digest", false, "record a structured trace and print its sha256 (for resume-equivalence checks)")
		flightOut = flag.String("flight", "", "attach the flight recorder and write its anomaly dumps into this directory")
		crashMs   = flag.Float64("crash-after-ms", 0, "exit(3) after the first checkpoint at or past this virtual time (crash-recovery testing)")
	)
	flag.Parse()

	// Validate -mode before any work: an unknown mode used to slip through
	// unnoticed on code paths that only consult it late (or never, like
	// -dump-trace), silently behaving like the default.
	switch *mode {
	case "vsync", "dvsync", "both":
	default:
		fmt.Fprintf(os.Stderr, "dvsim: unknown mode %q (want vsync, dvsync, or both)\n", *mode)
		os.Exit(2)
	}

	if *faultList {
		for _, c := range dvsync.FaultClasses() {
			fmt.Println(c)
		}
		return
	}
	faults, err := buildFaults(*faultCls, *faultSev, *faultFrom, *faultTo, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvsim:", err)
		os.Exit(2)
	}
	harden = hardening{faults: faults, fallback: *fallback}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "dvsim: -resume requires -checkpoint-dir")
		os.Exit(2)
	}
	if *ckptDir != "" && *ckptEvery <= 0 {
		fmt.Fprintln(os.Stderr, "dvsim: -checkpoint-every must be positive")
		os.Exit(2)
	}
	ckpt = checkpointing{dir: *ckptDir, everyMs: *ckptEvery, resume: *resume,
		traceDigest: *digestOut, crashAfterMs: *crashMs}
	if *flightOut != "" && *digestOut {
		fmt.Fprintln(os.Stderr, "dvsim: -flight and -trace-digest are mutually exclusive (the ring retains a window, not the full trace)")
		os.Exit(2)
	}
	if *flightOut != "" && (*appName != "" || *caseName != "" || *gameName != "") {
		fmt.Fprintln(os.Stderr, "dvsim: -flight applies to workload runs, not scenario runs")
		os.Exit(2)
	}
	flightDir = *flightOut

	if *appName != "" || *caseName != "" || *gameName != "" {
		if err := runScenario(*appName, *caseName, *gameName); err != nil {
			fmt.Fprintln(os.Stderr, "dvsim:", err)
			os.Exit(2)
		}
		return
	}

	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvsim:", err)
			os.Exit(1)
		}
		tr, err := workload.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvsim:", err)
			os.Exit(1)
		}
		runModes(*mode, *hz, *buffers, *limit, *jitterUs, tr)
		return
	}

	period := dvsync.PeriodForHz(*hz).Milliseconds()
	p := dvsync.Profile{
		Name:         "dvsim",
		ShortMeanMs:  orDefault(*shortMean, 0.40*period),
		ShortSigmaMs: orDefault(*shortSig, 0.13*period),
		LongRatio:    *longRatio,
		LongScaleMs:  orDefault(*longScale, 1.5*period),
		LongAlpha:    *longAlpha,
		Burstiness:   *burst,
		UIShare:      *uiShare,
	}
	tr := p.Generate(*frames, *seed)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "dvsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d frames to %s\n", tr.Len(), *traceOut)
		return
	}

	runModes(*mode, *hz, *buffers, *limit, *jitterUs, tr)
}

// hardening carries the optional fault-injection and supervision settings
// from the flag parser into every run.
type hardening struct {
	faults   *dvsync.FaultConfig
	fallback bool
}

var harden hardening

// checkpointing carries the -checkpoint-dir flag family into every run.
type checkpointing struct {
	dir          string
	everyMs      float64
	resume       bool
	traceDigest  bool
	crashAfterMs float64
}

var ckpt checkpointing

// flightDir is the -flight anomaly-dump directory ("" when detached).
var flightDir string

// execute runs one configuration, honouring the checkpoint flags: a plain
// run when checkpointing is off, otherwise a periodically checkpointed run
// with optional resume and deterministic crash injection.
func execute(cfg dvsync.Config) (*dvsync.Result, error) {
	if ckpt.dir == "" {
		return dvsync.Run(cfg), nil
	}
	store, err := checkpoint.NewStore(ckpt.dir, strings.ToLower(cfg.Mode.String()))
	if err != nil {
		return nil, err
	}
	digest := sim.ConfigDigest(cfg)
	var sys *sim.System
	if ckpt.resume {
		if sys, err = resumeSystem(cfg, store, digest); err != nil {
			return nil, err
		}
	} else {
		sys = sim.New(cfg)
	}
	crashAt := simtime.Time(dvsync.FromMillis(ckpt.crashAfterMs))
	r, err := sys.RunCheckpointed(simtime.Duration(dvsync.FromMillis(ckpt.everyMs)), func(st *sim.State) error {
		payload, err := json.Marshal(st)
		if err != nil {
			return err
		}
		if err := store.Save(digest, int64(st.At), nil, payload); err != nil {
			return err
		}
		if ckpt.crashAfterMs > 0 && st.At >= crashAt {
			fmt.Fprintf(os.Stderr, "dvsim: injected crash after checkpoint at %v\n", st.At)
			os.Exit(3)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// A finished run invalidates its snapshots: a later -resume must start
	// fresh rather than replay a stale tail.
	if err := store.Clear(); err != nil {
		return nil, err
	}
	return r, nil
}

// resumeSystem restores a system from the newest decodable snapshot in the
// store, falling back to a fresh start when the slot is empty.
func resumeSystem(cfg dvsync.Config, store *checkpoint.Store, digest string) (*sim.System, error) {
	env, err := store.Load()
	if errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(os.Stderr, "dvsim: no checkpoint for %s in %s, starting fresh\n", cfg.Mode, ckpt.dir)
		return sim.New(cfg), nil
	}
	if err != nil {
		return nil, err
	}
	if err := env.VerifyConfig(digest); err != nil {
		return nil, err
	}
	var st sim.State
	if err := env.DecodeState(&st); err != nil {
		return nil, err
	}
	sys, err := sim.Resume(cfg, &st)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "dvsim: resumed %s from %v\n", cfg.Mode, env.At())
	return sys, nil
}

// writeFlightDumps seals every anomaly dump the ring captured into
// -flight/<id>.dump, pinned to the run's config digest. Ids and bytes
// are deterministic: two identical runs write identical files.
func writeFlightDumps(ring *dvsync.FlightRing, cfg dvsync.Config) error {
	if err := os.MkdirAll(flightDir, 0o755); err != nil {
		return err
	}
	digest := sim.ConfigDigest(cfg)
	dumps := ring.Dumps()
	for i := range dumps {
		d := &dumps[i]
		id := flight.DumpID(digest, i, d.Trigger.Kind)
		f, err := os.Create(filepath.Join(flightDir, id+".dump"))
		if err != nil {
			return err
		}
		if err := flight.EncodeDump(f, digest, d); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("anomaly %s trigger=%s at %v events=%d\n", id, d.Trigger.Kind, d.Trigger.At, len(d.Events))
	}
	fmt.Printf("flight: %d anomaly dump(s) in %s\n", len(dumps), flightDir)
	return nil
}

// buildFaults turns the -fault* flags into a single-class injection plan.
func buildFaults(cls string, sev, fromMs, toMs float64, seed int64) (*dvsync.FaultConfig, error) {
	if cls == "" {
		return nil, nil
	}
	end := dvsync.Time(dvsync.FromMillis(toMs))
	if toMs <= 0 {
		// Far beyond any plausible run length: the fault stays active until
		// the simulation drains.
		end = dvsync.Time(dvsync.FromSeconds(3600))
	}
	return dvsync.FaultScenario(cls, sev, dvsync.Time(dvsync.FromMillis(fromMs)), end, seed)
}

// runModes executes the requested architectures over one trace.
func runModes(mode string, hz, buffers, limit int, jitterUs float64, tr *dvsync.Trace) {
	panel := dvsync.PanelConfig{
		Name: "dvsim", RefreshHz: hz,
		JitterStdDev: dvsync.Duration(jitterUs * 1000),
	}
	run := func(m dvsync.Mode) {
		bufs := buffers
		if bufs == 0 {
			if m == dvsync.VSync {
				bufs = 3
			} else {
				bufs = 4
			}
		}
		cfg := dvsync.Config{
			Mode: m, Panel: panel, Buffers: bufs,
			PreRenderLimit: limit, Trace: tr,
			Faults: harden.faults,
		}
		if harden.fallback && m == dvsync.DVSync {
			cfg.EnableFallback = true
			cfg.Health = dvsync.HealthConfig{
				MaxFDPS:       5,
				MaxCalibErrMs: 10,
				StallTimeout:  dvsync.FromMillis(250),
			}
			cfg.DTV.MaxAbsErrMs = 8
			cfg.FPEOverloadAfter = 4
		}
		if ckpt.traceDigest {
			cfg.Recorder = dvsync.NewRecorder()
		}
		var ring *dvsync.FlightRing
		if flightDir != "" {
			ring = dvsync.NewFlightRecorder(dvsync.FlightConfig{})
			cfg.Recorder = ring
		}
		r, err := execute(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvsim:", err)
			os.Exit(1)
		}
		printResult(r, bufs)
		if ring != nil {
			if err := writeFlightDumps(ring, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "dvsim:", err)
				os.Exit(1)
			}
		}
		if ring == nil && cfg.Recorder != nil {
			var buf bytes.Buffer
			if err := dvsync.WriteEventsJSONL(&buf, cfg.Recorder.Events()); err != nil {
				fmt.Fprintln(os.Stderr, "dvsim:", err)
				os.Exit(1)
			}
			fmt.Printf("trace-digest %s %x\n", strings.ToLower(cfg.Mode.String()), sha256.Sum256(buf.Bytes()))
		}
	}
	switch mode {
	case "vsync":
		run(dvsync.VSync)
	case "dvsync":
		run(dvsync.DVSync)
	case "both":
		run(dvsync.VSync)
		fmt.Println()
		run(dvsync.DVSync)
	default:
		fmt.Fprintf(os.Stderr, "dvsim: unknown mode %q\n", mode)
		os.Exit(2)
	}
}

func orDefault(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

func printResult(r *dvsync.Result, buffers int) {
	jr := r.Jank()
	ls := r.LatencySummary()
	fmt.Printf("%s (%d buffers)\n", r.Mode, buffers)
	fmt.Printf("  frames presented   %d (skipped %d)\n", len(r.Presented), r.Skipped)
	fmt.Printf("  frame drops        %d  (%.2f FDPS, %.2f%% of display time)\n",
		jr.Janks, jr.FDPS(), jr.DropPercent())
	fmt.Printf("  latency ms         mean %.1f  p50 %.1f  p95 %.1f  max %.1f\n",
		ls.Mean, ls.P50, ls.P95, ls.Max)
	fmt.Printf("  composition        direct %d / stuffed %d\n", r.Direct, r.Stuffed)
	fmt.Printf("  executed work      %.1f ms (+%.1f ms bookkeeping)\n",
		r.ExecutedWork.Milliseconds(), r.OverheadWork.Milliseconds())
	if r.Mode == dvsync.DVSync {
		fmt.Printf("  decoupled frames   %d (vsync path %d)\n", r.DecoupledFrames, r.VSyncPathFrames)
		fmt.Printf("  FPE                %d starts, %d pre-starts, %d sync blocks\n",
			r.FPEStarts, r.FPEPreStarts, r.FPESyncBlocks)
		fmt.Printf("  DTV abs error ms   mean %.3f  max %.3f\n", r.DTVMeanAbsErrMs, r.DTVMaxAbsErrMs)
	}
	if c := r.FaultCounters; c != (dvsync.FaultCounters{}) {
		fmt.Printf("  injected faults    %d stalled, %d jittered, %d missed, %d drifted, %d alloc, %d dropped, %d delayed\n",
			c.StalledFrames, c.JitteredEdges, c.MissedEdges, c.DriftedSignals,
			c.AllocFailures, c.DroppedSamples, c.DelayedSamples)
	}
	if r.DTVReAnchors > 0 || r.FPEBackoffs > 0 || r.FPEStartFailures > 0 {
		fmt.Printf("  hardening          %d DTV re-anchors, %d FPE backoffs, %d start retries\n",
			r.DTVReAnchors, r.FPEBackoffs, r.FPEStartFailures)
	}
	for _, fb := range r.Fallbacks {
		fmt.Printf("  fallback           → %s at %v (%s)\n", fb.To, fb.At, fb.Reason)
	}
	if r.WatchdogTripped != "" {
		fmt.Printf("  WATCHDOG           %s\n", r.WatchdogTripped)
	}
	fmt.Printf("  buffer memory      %.1f MB\n", float64(r.MemoryBytes)/(1<<20))
}

// runScenario executes a catalog scenario the way the experiment harness
// does: calibrated to the paper's measured baseline, then compared across
// architectures.
func runScenario(appName, caseName, gameName string) error {
	switch {
	case appName != "":
		for _, a := range scenarios.Apps() {
			if strings.EqualFold(a.Name, appName) {
				dev := scenarios.Pixel5
				reps := exp.CalibrateReplicas(a.Profile(), scenarios.AppFrames, dev,
					dev.Buffers, a.PaperVSyncFDPS, exp.Seed)
				fmt.Printf("%s on %s (calibrated to %.2f FDPS, %s tail)\n",
					a.Name, dev.Name, a.PaperVSyncFDPS, a.Tail)
				printResult(exp.VSyncRun(reps[0], dev, dev.Buffers), dev.Buffers)
				fmt.Println()
				printResult(exp.DVSyncRun(reps[0], dev, 4), 4)
				return nil
			}
		}
		return fmt.Errorf("unknown app %q (see Figure 11 for names)", appName)
	case caseName != "":
		uc := findCase(caseName)
		if uc == nil {
			return fmt.Errorf("unknown use case %q (see Appendix A abbreviations)", caseName)
		}
		fmt.Printf("#%d %s — %s\n", uc.ID, uc.Abbrev, uc.Description)
		script := autotest.Compile(*uc)
		for _, st := range script.Steps {
			fmt.Printf("  %-7s %-26s %v load=%.2f keys=%.3f\n",
				st.Kind, st.Label, st.Duration, st.Load, st.KeyFrameRatio)
		}
		for _, mode := range []sim.Mode{sim.ModeVSync, sim.ModeDVSync} {
			rep := autotest.RunCase(*uc, scenarios.Mate60Pro, mode, exp.Seed)
			fmt.Printf("%-8s janks=%.1f FDPS=%.2f latency=%.1fms (mean of %d runs)\n",
				mode, rep.Janks, rep.FDPS, rep.LatencyMs, autotest.Runs)
		}
		return nil
	default:
		for _, g := range scenarios.Games() {
			if strings.EqualFold(g.Name, gameName) {
				dev := scenarios.Mate60Pro
				dev.RefreshHz = g.RateHz
				reps := exp.CalibrateReplicas(g.Profile(), scenarios.GameFrames, dev, 3,
					g.PaperVSyncFDPS, exp.Seed)
				fmt.Printf("%s at %d Hz (calibrated to %.2f FDPS)\n",
					g.Name, g.RateHz, g.PaperVSyncFDPS)
				printResult(exp.VSyncRun(reps[0], dev, 3), 3)
				fmt.Println()
				printResult(exp.DVSyncRun(reps[0], dev, 4, func(c *sim.Config) {
					c.Predictor = dvsync.LinearPredictor{}
				}), 4)
				return nil
			}
		}
		return fmt.Errorf("unknown game %q (see Figure 14 for names)", gameName)
	}
}

func findCase(abbrev string) *scenarios.UseCase {
	for _, uc := range scenarios.UseCases() {
		if strings.EqualFold(uc.Abbrev, abbrev) {
			c := uc
			return &c
		}
	}
	return nil
}
