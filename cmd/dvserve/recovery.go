package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"dvsync"
	"dvsync/internal/checkpoint"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
)

// runner executes scenario runs. With a checkpoint directory configured
// it periodically snapshots each run, and when a previous process died
// mid-run it resumes the identical scenario from its last good checkpoint
// instead of restarting — the deterministic core guarantees a recovered
// run's exports are byte-identical to an uninterrupted one's.
type runner struct {
	dir   string           // checkpoint directory; empty disables recovery
	every simtime.Duration // snapshot cadence in virtual time (0: 500 ms)

	// mu serialises checkpointed runs: concurrent requests for the same
	// scenario would otherwise race on the same snapshot slot.
	mu sync.Mutex

	// cmu guards the reusable run-context cache (serve/entry); cache maps
	// a scenario parameter set to its wired Runner and order tracks FIFO
	// eviction age.
	cmu   sync.Mutex
	cache map[scenarioKey]*runEntry
	order []scenarioKey

	// anomalies indexes the flight-recorder dumps captured by cached
	// scenario runs, served at GET /anomalies.
	anomalies anomalyStore

	// crashAfter, when non-zero, aborts the run right after the first
	// checkpoint at or past this instant — test hook for the recovery path.
	crashAfter simtime.Time
}

// errSimulatedCrash marks the crashAfter test-hook abort.
var errSimulatedCrash = errors.New("simulated crash after checkpoint")

// scenario executes one run with a fresh registry attached. The run is a
// pure function of p: repeated scrapes of the same parameters return
// byte-identical exports, whether or not a crash interrupted one of them.
func (rn *runner) scenario(p params) (*dvsync.TelemetryRegistry, simtime.Time, error) {
	reg := dvsync.NewTelemetryRegistry()
	resumedFrom, err := rn.run(p, reg)
	return reg, resumedFrom, err
}

// run executes p with reg attached and reports where it resumed from
// (zero for a fresh start).
func (rn *runner) run(p params, reg *dvsync.TelemetryRegistry) (simtime.Time, error) {
	cfg := p.config(reg)
	if rn.dir == "" {
		dvsync.Run(cfg)
		return 0, nil
	}
	rn.mu.Lock()
	defer rn.mu.Unlock()
	digest := sim.ConfigDigest(cfg)
	store, err := checkpoint.NewStore(rn.dir, "run-"+digest[:16])
	if err != nil {
		return 0, err
	}
	sys, resumedFrom, err := rn.open(cfg, store, digest)
	if err != nil {
		return 0, err
	}
	every := rn.every
	if every <= 0 {
		every = simtime.Duration(dvsync.FromMillis(500))
	}
	if _, err := sys.RunCheckpointed(every, func(st *sim.State) error {
		payload, err := json.Marshal(st)
		if err != nil {
			return err
		}
		if err := store.Save(digest, int64(st.At), nil, payload); err != nil {
			return err
		}
		if rn.crashAfter > 0 && st.At >= rn.crashAfter {
			return errSimulatedCrash
		}
		return nil
	}); err != nil {
		return resumedFrom, err
	}
	// A finished run invalidates its snapshots: the next identical request
	// must compute from scratch, not replay a completed run's tail.
	if err := store.Clear(); err != nil {
		return resumedFrom, err
	}
	return resumedFrom, nil
}

// open restores the system from the slot's newest usable snapshot, or
// starts fresh when the slot is empty or its snapshots are unreadable —
// a corrupt checkpoint must never wedge a scenario that can simply be
// recomputed. A snapshot that decodes but fails restore is discarded and
// reported: the registry may be partially populated by then, so silently
// rerunning on it would corrupt the export.
func (rn *runner) open(cfg dvsync.Config, store *checkpoint.Store, digest string) (*sim.System, simtime.Time, error) {
	env, err := store.Load()
	if err != nil {
		return sim.New(cfg), 0, nil
	}
	if err := env.VerifyConfig(digest); err != nil {
		return sim.New(cfg), 0, nil
	}
	var st sim.State
	if err := env.DecodeState(&st); err != nil {
		return sim.New(cfg), 0, nil
	}
	sys, err := sim.Resume(cfg, &st)
	if err != nil {
		store.Clear() //dvlint:ignore errflow the snapshot is already known bad; the load error is the one worth reporting
		return nil, 0, fmt.Errorf("resume from %v failed, checkpoint discarded: %w", env.At(), err)
	}
	return sys, env.At(), nil
}
