package main

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"dvsync"
)

func mustParams(t *testing.T) params {
	t.Helper()
	p, err := newParams("dvsync", 60, 4, 240, 7, "stall", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func prometheusOf(t *testing.T, reg *dvsync.TelemetryRegistry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCrashRecovery drives the full recovery cycle at the runner level: a
// checkpointed run is killed mid-flight, the next identical request
// resumes from the snapshot left behind, and its export is byte-identical
// to an uninterrupted run's. A third request finds no leftovers.
func TestCrashRecovery(t *testing.T) {
	p := mustParams(t)

	straight, _, err := (&runner{}).scenario(p)
	if err != nil {
		t.Fatal(err)
	}
	want := prometheusOf(t, straight)

	rn := &runner{dir: t.TempDir(), every: dvsync.FromMillis(250)}
	rn.crashAfter = dvsync.Time(dvsync.FromMillis(1000))
	if _, _, err := rn.scenario(p); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("crash hook: err = %v, want errSimulatedCrash", err)
	}
	entries, err := os.ReadDir(rn.dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint left behind after crash (%v)", err)
	}

	rn.crashAfter = 0
	reg, resumedFrom, err := rn.scenario(p)
	if err != nil {
		t.Fatal(err)
	}
	if resumedFrom < dvsync.Time(dvsync.FromMillis(1000)) {
		t.Errorf("resumed from %v, want at least the crash point", resumedFrom)
	}
	if got := prometheusOf(t, reg); got != want {
		t.Error("recovered run's export differs from an uninterrupted run's")
	}

	// Completion cleared the slot: the next run starts fresh.
	reg, resumedFrom, err = rn.scenario(p)
	if err != nil {
		t.Fatal(err)
	}
	if resumedFrom != 0 {
		t.Errorf("run after completion resumed from %v, want a fresh start", resumedFrom)
	}
	if got := prometheusOf(t, reg); got != want {
		t.Error("fresh checkpointed run's export differs from a plain run's")
	}
}

// TestCrashRecoveryCorruptSnapshot: an unreadable snapshot never wedges a
// scenario — the runner falls back to the rotated previous snapshot, and
// with both generations corrupt it recomputes from scratch. Either way
// the export matches an uninterrupted run byte for byte.
func TestCrashRecoveryCorruptSnapshot(t *testing.T) {
	p := mustParams(t)
	straight, _, err := (&runner{}).scenario(p)
	if err != nil {
		t.Fatal(err)
	}
	want := prometheusOf(t, straight)

	rn := &runner{dir: t.TempDir(), every: dvsync.FromMillis(250)}
	rn.crashAfter = dvsync.Time(dvsync.FromMillis(1000))
	if _, _, err := rn.scenario(p); !errors.Is(err, errSimulatedCrash) {
		t.Fatal("crash hook did not fire")
	}
	rn.crashAfter = 0

	entries, err := os.ReadDir(rn.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(rn.dir+"/"+e.Name(), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg, resumedFrom, err := rn.scenario(p)
	if err != nil {
		t.Fatal(err)
	}
	if resumedFrom != 0 {
		t.Errorf("resumed from %v despite corrupt snapshots", resumedFrom)
	}
	if got := prometheusOf(t, reg); got != want {
		t.Error("recomputed run's export differs from an uninterrupted run's")
	}
}

// TestCrashRecoveryOverHTTP: the HTTP surface serves the recovered run —
// the scrape after a crash is byte-identical to a plain server's.
func TestCrashRecoveryOverHTTP(t *testing.T) {
	rn := &runner{dir: t.TempDir(), every: dvsync.FromMillis(250)}
	rn.crashAfter = dvsync.Time(dvsync.FromMillis(800))
	srv := testServerWith(t, rn)

	const path = "/metrics?fault=stall&severity=0.6&seed=7"
	if code, body := get(t, srv.URL+path); code != 500 || !strings.Contains(body, "simulated crash") {
		t.Fatalf("crashed request: %d %.120q, want a 500 JSON error", code, body)
	}
	rn.crashAfter = 0
	_, recovered := get(t, srv.URL+path)
	_, plain := get(t, testServer(t).URL+path)
	if recovered != plain {
		t.Error("recovered scrape differs from a plain server's")
	}
}
