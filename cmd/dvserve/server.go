package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strconv"

	"dvsync"
	"dvsync/internal/workload"
)

// params selects one deterministic scenario run. mode is kept as its
// validated spelling so query overrides re-validate through the same path
// as the command line.
type params struct {
	mode     string
	hz       int
	buffers  int
	frames   int
	seed     int64
	fault    string
	severity float64
	faults   *dvsync.FaultConfig // built and validated by newParams
}

// newParams validates one full parameter set. It is the single
// gatekeeper: the command line and every query override pass through it,
// so a parameter combination the simulator would reject is an exit-2 or
// HTTP 400, never a panicking run behind a bound port.
func newParams(mode string, hz, buffers, frames int, seed int64, fault string, severity float64) (params, error) {
	p := params{mode: mode, hz: hz, buffers: buffers, frames: frames,
		seed: seed, fault: fault, severity: severity}
	switch {
	case mode != "vsync" && mode != "dvsync":
		return p, usageError{fmt.Sprintf("unknown mode %q (want vsync or dvsync)", mode)}
	case hz <= 0 || hz > 1000:
		return p, usageError{fmt.Sprintf("invalid refresh rate %d (want 1..1000)", hz)}
	case buffers < 2:
		return p, usageError{fmt.Sprintf("%d buffers cannot double-buffer", buffers)}
	case frames <= 0 || frames > 100_000:
		return p, usageError{fmt.Sprintf("invalid frame count %d (want 1..100000)", frames)}
	}
	if fault != "" {
		// The injection window mirrors dvsim's defaults: onset after a
		// 500 ms warm-up, active for the rest of the run. Scenario rejects
		// unknown classes and severities outside [0, 1].
		fc, err := dvsync.FaultScenario(fault, severity,
			dvsync.Time(dvsync.FromMillis(500)), dvsync.Time(dvsync.FromSeconds(3600)), seed)
		if err != nil {
			return p, usageError{err.Error()}
		}
		p.faults = fc
	}
	return p, nil
}

// config builds the simulation configuration for p with reg attached.
func (p params) config(reg *dvsync.TelemetryRegistry) dvsync.Config {
	mode := dvsync.DVSync
	if p.mode == "vsync" {
		mode = dvsync.VSync
	}
	prof := workload.DefaultProfile("dvserve", dvsync.PeriodForHz(p.hz).Milliseconds())
	return dvsync.Config{
		Mode:    mode,
		Panel:   dvsync.PanelConfig{Name: "dvserve", RefreshHz: p.hz},
		Buffers: p.buffers,
		Trace:   prof.Generate(p.frames, p.seed),
		Metrics: reg,
		Faults:  p.faults,
	}
}

// scenarioParams are the query parameters every endpoint accepts.
var scenarioParams = map[string]bool{
	"mode": true, "hz": true, "buffers": true, "frames": true, "seed": true,
	"fault": true, "severity": true,
}

// withQuery applies per-request overrides on top of the defaults.
// Unknown parameters are rejected rather than ignored — a typo like
// ?mod=vsync must not silently serve the default scenario.
func (p params) withQuery(q url.Values) (params, error) {
	var unknown []string
	for name := range q {
		if !scenarioParams[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return p, fmt.Errorf("unknown query parameter %q (want mode, hz, buffers, frames, seed, fault, severity)", unknown[0])
	}
	mode := p.mode
	if v := q.Get("mode"); v != "" {
		mode = v
	}
	hz, err := intParam(q, "hz", p.hz)
	if err != nil {
		return p, err
	}
	buffers, err := intParam(q, "buffers", p.buffers)
	if err != nil {
		return p, err
	}
	frames, err := intParam(q, "frames", p.frames)
	if err != nil {
		return p, err
	}
	seed := p.seed
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("query seed=%q: not an integer", v)
		}
		seed = n
	}
	fault := p.fault
	if v, ok := q["fault"]; ok && len(v) > 0 {
		// fault=none (or an explicit empty value) clears the server's
		// default fault class: a server started with -fault can still
		// serve clean runs. Before this distinction, fault= silently
		// inherited the default and a clean run was unreachable.
		if v[0] == "none" || v[0] == "" {
			fault = ""
		} else {
			fault = v[0]
		}
	}
	severity := p.severity
	if v := q.Get("severity"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, fmt.Errorf("query severity=%q: not a number", v)
		}
		if fault == "" {
			return p, fmt.Errorf("query severity=%q without a fault class has no effect", v)
		}
		severity = f
	}
	return newParams(mode, hz, buffers, frames, seed, fault, severity)
}

func intParam(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query %s=%q: not an integer", name, v)
	}
	return n, nil
}

// writeError emits a JSON error body. Clients parse a machine-readable
// {"error": ...} object instead of scraping plain-text strings.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct { //dvlint:ignore errflow write error to the ResponseWriter means the client went away; a handler has nowhere to propagate it
		Error string `json:"error"`
	}{msg})
}

// requestParams resolves the request's scenario or writes a 400.
func requestParams(w http.ResponseWriter, r *http.Request, def params) (params, bool) {
	p, err := def.withQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "dvserve: "+err.Error())
		return params{}, false
	}
	return p, true
}

// newServer builds the handler tree around the default scenario. pprof
// handlers are registered explicitly on this mux — dvserve never touches
// http.DefaultServeMux, so importing net/http/pprof for its side effect
// alone would do nothing here.
func newServer(def params, rn *runner) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		p, ok := requestParams(w, r, def)
		if !ok {
			return
		}
		_, _, err := rn.serve(p, nil, func(reg *dvsync.TelemetryRegistry) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w) //dvlint:ignore errflow write error to the ResponseWriter means the client went away; a handler has nowhere to propagate it
		})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "dvserve: "+err.Error())
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		p, ok := requestParams(w, r, def)
		if !ok {
			return
		}
		_, _, err := rn.serve(p, nil, func(reg *dvsync.TelemetryRegistry) {
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w) //dvlint:ignore errflow write error to the ResponseWriter means the client went away; a handler has nowhere to propagate it
		})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "dvserve: "+err.Error())
		}
	})
	mux.HandleFunc("/stream", streamHandler(def, rn))
	eng := dvsync.NewFleetEngine()
	mux.HandleFunc("/fleet", fleetHandler(eng))
	mux.HandleFunc("/anomalies", anomaliesHandler(rn, eng))
	mux.HandleFunc("/anomalies/", anomalyHandler(rn, eng))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "dvsync telemetry server\n\n"+
			"GET  /metrics    Prometheus exposition of one scenario run\n"+
			"GET  /snapshot   JSON snapshot\n"+
			"GET  /stream     SSE live sample stream\n"+
			"POST /fleet      SSE census of a JSON population spec\n"+
			"GET  /anomalies  ids of captured flight-recorder anomaly dumps\n"+
			"GET  /anomalies/{id}  one sealed dump (decode with dvtrace -why)\n"+
			"GET  /healthz    liveness probe\n"+
			"GET  /debug/pprof/  profiling\n\n"+
			"query overrides: mode, hz, buffers, frames, seed, fault, severity\n"+
			"(fault=none clears the server's default fault class)\n")
	})
	return mux
}

// errorEvent is the payload of a terminal SSE error event, matching the
// JSON body writeError sends before streaming starts.
type errorEvent struct {
	Error string `json:"error"`
}

// streamHandler runs the scenario synchronously inside the request
// handler and emits one SSE event per sampled row as the virtual clock
// advances — the stream is the run itself, not a poll of finished state.
// Event order per stream: one `columns` event naming the series columns,
// `sample` events in virtual-time order, and a final `snapshot` event
// carrying the full export. When crash recovery resumes a run, samples
// before the resume point are restored straight into the registry — the
// stream then carries only post-resume rows, but the final snapshot is
// complete and byte-identical to an uninterrupted run's.
// Each stream opens with a `retry:` reconnect hint, and a host-time
// keepalive ticker interleaves `: keepalive` comments whenever the run
// computes for longer than keepaliveInterval, so proxies and idle
// timeouts never cut a slow stream. After the snapshot, one `anomaly`
// event per flight-recorder dump the run captured names the ids
// GET /anomalies/{id} serves.
func streamHandler(def params, rn *runner) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p, ok := requestParams(w, r, def)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		sw := newSSEWriter(w)
		sw.retryHint(retryHintMs)
		stop := sw.startKeepalive(keepaliveInterval)
		defer stop()
		sentColumns := false
		_, ids, err := rn.serve(p, func(reg *dvsync.TelemetryRegistry, row dvsync.TelemetrySample) {
			if !sentColumns {
				sw.event("columns", reg.Series().Columns)
				sentColumns = true
			}
			// TelemetryRow's JSON encoding renders non-finite values as
			// null — a NaN sample must not silently drop the whole row.
			sw.event("sample", dvsync.TelemetryRow{AtNs: int64(row.At), Values: row.Values})
		}, func(reg *dvsync.TelemetryRegistry) {
			sw.event("snapshot", reg.Snapshot())
		})
		if err != nil {
			// The stream is already flowing (the retry hint opened it): the
			// status line is gone, so a terminal error event is the only way
			// to tell the client the run died. Swallowing the error here
			// left clients with a silently truncated stream.
			sw.event("error", errorEvent{Error: "dvserve: " + err.Error()})
			return
		}
		for _, id := range ids {
			sw.event("anomaly", anomalyEvent{ID: id})
		}
	}
}
