package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dvsync"
)

// TestSSEWriterKeepaliveNoTearing is the slow-consumer regression: a
// keepalive ticker racing a handler writing events must never interleave
// mid-frame. The writer runs under -race with a fast ticker while events
// stream concurrently; afterwards every frame in the output must be a
// complete retry hint, comment, or event/data pair.
func TestSSEWriterKeepaliveNoTearing(t *testing.T) {
	var buf bytes.Buffer
	sw := &sseWriter{w: &buf}
	sw.retryHint(retryHintMs)
	stop := sw.startKeepalive(100 * time.Microsecond)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			sw.event("sample", dvsync.TelemetryRow{AtNs: int64(i), Values: []float64{float64(i)}})
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()
	stop()
	out := buf.String()
	if !strings.HasPrefix(out, fmt.Sprintf("retry: %d\n\n", retryHintMs)) {
		t.Errorf("stream does not open with the retry hint: %.60q", out)
	}
	if !strings.Contains(out, ": keepalive\n\n") {
		t.Error("no keepalive comment in 10ms of streaming at a 100µs ticker")
	}
	frame := regexp.MustCompile(`\A(retry: \d+|: keepalive|event: sample\ndata: \{[^\n]*\})\z`)
	for i, f := range strings.Split(strings.TrimSuffix(out, "\n\n"), "\n\n") {
		if !frame.MatchString(f) {
			t.Fatalf("frame %d is torn: %q", i, f)
		}
	}
	// stop is idempotent enough for deferred use: no writes land after it.
	n := buf.Len()
	time.Sleep(2 * time.Millisecond)
	if buf.Len() != n {
		t.Error("keepalive wrote after stop returned")
	}
}

// faultedStreamURL is a scenario whose run captures anomaly dumps: the
// stall class janks hard enough to trip jank-burst and fault-onset
// triggers.
const faultedStreamQuery = "?fault=stall&severity=0.8&frames=400"

// TestStreamAnnouncesAnomalies: a faulted /stream run ends with anomaly
// events naming dump ids, the ids appear in GET /anomalies, and each
// resolves to a sealed envelope that decodes as a flight dump.
func TestStreamAnnouncesAnomalies(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/stream"+faultedStreamQuery)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(body, "retry: ") {
		t.Errorf("stream does not open with a retry hint: %.60q", body)
	}
	re := regexp.MustCompile(`event: anomaly\ndata: (\{[^\n]*\})`)
	matches := re.FindAllStringSubmatch(body, -1)
	if len(matches) == 0 {
		t.Fatalf("faulted stream announced no anomalies:\n%.300s", body[max(0, len(body)-300):])
	}
	var ids []string
	for _, m := range matches {
		var ev struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(m[1]), &ev); err != nil || ev.ID == "" {
			t.Fatalf("anomaly payload %q: %v", m[1], err)
		}
		ids = append(ids, ev.ID)
	}

	code, listBody := get(t, srv.URL+"/anomalies")
	if code != 200 {
		t.Fatalf("/anomalies status %d", code)
	}
	var list struct {
		Anomalies []string `json:"anomalies"`
	}
	if err := json.Unmarshal([]byte(listBody), &list); err != nil {
		t.Fatalf("/anomalies body %q: %v", listBody, err)
	}
	indexed := map[string]bool{}
	for _, id := range list.Anomalies {
		indexed[id] = true
	}
	for _, id := range ids {
		if !indexed[id] {
			t.Errorf("announced id %q missing from /anomalies (%v)", id, list.Anomalies)
		}
		code, dump := get(t, srv.URL+"/anomalies/"+id)
		if code != 200 {
			t.Fatalf("/anomalies/%s status %d", id, code)
		}
		d, _, err := dvsync.DecodeAnomalyDump(strings.NewReader(dump), "")
		if err != nil {
			t.Fatalf("dump %s does not decode: %v", id, err)
		}
		if len(d.Events) == 0 {
			t.Errorf("dump %s carries no events", id)
		}
	}

	// A repeat of the identical scenario announces the same ids and the
	// dump bytes are stable.
	_, body2 := get(t, srv.URL+"/stream"+faultedStreamQuery)
	if got := re.FindAllStringSubmatch(body2, -1); len(got) != len(matches) {
		t.Errorf("repeat run announced %d anomalies, first run %d", len(got), len(matches))
	}
	_, dumpA := get(t, srv.URL+"/anomalies/"+ids[0])
	_, dumpB := get(t, srv.URL+"/anomalies/"+ids[0])
	if dumpA != dumpB {
		t.Error("dump bytes changed between fetches")
	}
}

// TestAnomalyEndpointRejections: the anomaly surface is read-only and
// unknown ids are JSON 404s.
func TestAnomalyEndpointRejections(t *testing.T) {
	srv := testServer(t)
	if code, _ := get(t, srv.URL+"/anomalies"); code != 200 {
		t.Errorf("empty /anomalies status %d, want 200", code)
	}
	_, body := get(t, srv.URL+"/anomalies")
	if body != "{\"anomalies\":[]}\n" {
		t.Errorf("empty list body %q, want explicit empty array", body)
	}
	if code, _ := get(t, srv.URL+"/anomalies/nope"); code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/anomalies/a/b"); code != http.StatusNotFound {
		t.Errorf("nested path: status %d, want 404", code)
	}
	resp, err := http.Post(srv.URL+"/anomalies", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /anomalies: status %d, want 405", resp.StatusCode)
	}
}

// TestFleetAnomalyEvents: a faulted census streams anomaly events after
// each anomalous cohort, and the engine-indexed dumps are served by id.
func TestFleetAnomalyEvents(t *testing.T) {
	srv := testServer(t)
	spec := `{"name":"anomaly","frames":400,"cohorts":[` +
		`{"name":"stalled","device":"pixel5","hz":[60],"modes":["dvsync"],"fault":"stall","severity":0.8}]}`
	code, body := postFleet(t, srv.URL, spec)
	if code != 200 {
		t.Fatalf("status %d: %.300s", code, body)
	}
	if !strings.HasPrefix(body, "retry: ") {
		t.Errorf("fleet stream does not open with a retry hint: %.60q", body)
	}
	re := regexp.MustCompile(`event: anomaly\ndata: \{"id":"([^"]+)"\}`)
	matches := re.FindAllStringSubmatch(body, -1)
	if len(matches) == 0 {
		t.Fatalf("faulted census announced no anomalies:\n%.300s", body)
	}
	// Anomaly events ride between the cohort and terminal fleet events.
	if ci, fi := strings.Index(body, "event: cohort\n"), strings.Index(body, "event: anomaly\n"); fi < ci {
		t.Error("anomaly events precede their cohort event")
	}
	for _, m := range matches {
		code, dump := get(t, srv.URL+"/anomalies/"+m[1])
		if code != 200 {
			t.Fatalf("/anomalies/%s status %d", m[1], code)
		}
		if _, _, err := dvsync.DecodeAnomalyDump(strings.NewReader(dump), ""); err != nil {
			t.Errorf("fleet dump %s does not decode: %v", m[1], err)
		}
	}
}
