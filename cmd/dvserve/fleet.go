package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"

	"dvsync"
)

// maxFleetSpecBytes bounds the census spec body; a spec is declarative
// and small, never bulk data.
const maxFleetSpecBytes = 1 << 20

// fleetHandler serves POST /fleet: a JSON census spec in, an SSE stream
// out — one `cohort` event per cohort as its aggregate completes, then a
// terminal `fleet` event with the full census result. The engine is
// shared across requests, so cells repeated between censuses are served
// from its content-addressed cache.
//
// The spec is fully validated before the stream starts: a malformed spec
// is a plain HTTP 400 with a JSON error body, never a half-open stream.
func fleetHandler(eng *dvsync.FleetEngine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "dvserve: /fleet takes a POST with a JSON census spec")
			return
		}
		if len(r.URL.Query()) > 0 {
			writeError(w, http.StatusBadRequest, "dvserve: /fleet takes its spec in the request body, not query parameters")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxFleetSpecBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "dvserve: reading spec: "+err.Error())
			return
		}
		if len(body) > maxFleetSpecBytes {
			writeError(w, http.StatusBadRequest, "dvserve: census spec exceeds 1 MiB")
			return
		}
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields() // a typoed field must not silently run the default census
		var spec dvsync.FleetSpec
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "dvserve: decoding spec: "+err.Error())
			return
		}
		if dec.More() {
			writeError(w, http.StatusBadRequest, "dvserve: trailing data after census spec")
			return
		}
		if err := spec.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "dvserve: "+err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		sw := newSSEWriter(w)
		sw.retryHint(retryHintMs)
		stop := sw.startKeepalive(keepaliveInterval)
		defer stop()
		res, err := eng.Census(spec, func(c *dvsync.FleetCohortResult) {
			sw.event("cohort", c)
			// Announce each anomalous cell's dumps as the cohort lands, so
			// a client can fetch GET /anomalies/{id} mid-census.
			for _, id := range c.AnomalyDumps {
				sw.event("anomaly", anomalyEvent{ID: id})
			}
		})
		if err != nil {
			// Validation passed, so this is a mid-census failure: the
			// stream is the only channel left to report it on.
			sw.event("error", errorEvent{Error: "dvserve: " + err.Error()})
			return
		}
		sw.event("fleet", res)
	}
}
