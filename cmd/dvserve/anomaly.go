// SSE plumbing and the anomaly-dump store. Streaming handlers write
// through sseWriter so the host-time keepalive ticker can interleave
// comments without tearing events, and every flight-recorder dump a run
// captures is indexed here for GET /anomalies.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"dvsync"
	"dvsync/internal/flight"
)

// keepaliveInterval is the cadence of `: keepalive` SSE comments. A
// package variable so tests can shrink it. Host time, deliberately: the
// comments exist to cover wall-clock gaps while the virtual clock is
// busy computing, so they cannot ride the virtual clock themselves.
// cmd/* sits outside the NoWallClock lint surface for exactly this kind
// of serving-shell concern (see internal/lint/nowallclock.go).
var keepaliveInterval = 15 * time.Second

// retryHintMs is the reconnect delay suggested to SSE clients at stream
// open.
const retryHintMs = 2000

// sseWriter serialises SSE writes between a handler goroutine and its
// keepalive ticker. Every frame (event, comment, hint) is written and
// flushed under one mutex hold, so frames never interleave mid-line.
type sseWriter struct {
	mu sync.Mutex
	w  io.Writer
	fl http.Flusher // nil when the ResponseWriter cannot flush
}

func newSSEWriter(w http.ResponseWriter) *sseWriter {
	sw := &sseWriter{w: w}
	if fl, ok := w.(http.Flusher); ok {
		sw.fl = fl
	}
	return sw
}

// event emits one SSE event with a single-line JSON payload.
func (s *sseWriter) event(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, data)
	if s.fl != nil {
		s.fl.Flush()
	}
}

// comment emits one SSE comment line (ignored by clients, but it keeps
// the connection warm through proxies and idle timeouts).
func (s *sseWriter) comment(text string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, ": %s\n\n", text)
	if s.fl != nil {
		s.fl.Flush()
	}
}

// retryHint emits the SSE `retry:` reconnect-delay hint.
func (s *sseWriter) retryHint(ms int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "retry: %d\n\n", ms)
	if s.fl != nil {
		s.fl.Flush()
	}
}

// startKeepalive emits `: keepalive` comments on a host-time ticker
// until the returned stop function is called. stop blocks until the
// ticker goroutine has exited, so no write can land on the
// ResponseWriter after the handler returns.
func (s *sseWriter) startKeepalive(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	ticker := time.NewTicker(interval)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.comment("keepalive")
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// anomalyStoreCap bounds the server's anomaly-dump index (FIFO).
const anomalyStoreCap = 256

// anomalyStore indexes sealed anomaly-dump envelopes by their
// deterministic id. Re-capturing an id already present is a no-op, so
// identical scenario re-runs keep first-seen order and byte content.
type anomalyStore struct {
	mu    sync.Mutex
	dumps map[string][]byte
	order []string
}

// capture seals every dump the ring holds under digest and indexes it,
// returning this run's dump ids (present or newly added) in order.
func (st *anomalyStore) capture(digest string, ring *dvsync.FlightRing) []string {
	dumps := ring.Dumps()
	if len(dumps) == 0 {
		return nil
	}
	ids := make([]string, 0, len(dumps))
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dumps == nil {
		st.dumps = map[string][]byte{}
	}
	for i := range dumps {
		d := &dumps[i]
		id := flight.DumpID(digest, i, d.Trigger.Kind)
		ids = append(ids, id)
		if _, ok := st.dumps[id]; ok {
			continue
		}
		var buf bytes.Buffer
		if err := flight.EncodeDump(&buf, digest, d); err != nil {
			continue
		}
		if len(st.order) >= anomalyStoreCap {
			delete(st.dumps, st.order[0])
			copy(st.order, st.order[1:])
			st.order = st.order[:len(st.order)-1]
		}
		st.dumps[id] = buf.Bytes()
		st.order = append(st.order, id)
	}
	return ids
}

func (st *anomalyStore) get(id string) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	b, ok := st.dumps[id]
	return b, ok
}

func (st *anomalyStore) ids() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.order...)
}

// anomalyEvent is the payload of one `anomaly` SSE event.
type anomalyEvent struct {
	ID string `json:"id"`
}

// anomalyList is the GET /anomalies body.
type anomalyList struct {
	Anomalies []string `json:"anomalies"`
}

// anomaliesHandler serves GET /anomalies: every indexed dump id —
// scenario-run dumps first, then fleet-census dumps — deduplicated in
// first-seen order.
func anomaliesHandler(rn *runner, eng *dvsync.FleetEngine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "dvserve: /anomalies is read-only")
			return
		}
		list := anomalyList{Anomalies: []string{}}
		seen := map[string]bool{}
		for _, id := range append(rn.anomalies.ids(), eng.AnomalyIDs()...) {
			if seen[id] {
				continue
			}
			seen[id] = true
			list.Anomalies = append(list.Anomalies, id)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(list) //dvlint:ignore errflow write error to the ResponseWriter means the client went away; a handler has nowhere to propagate it
	}
}

// anomalyHandler serves GET /anomalies/{id}: the sealed envelope bytes
// of one dump, decodable with `dvtrace -why`.
func anomalyHandler(rn *runner, eng *dvsync.FleetEngine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "dvserve: /anomalies is read-only")
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/anomalies/")
		if id == "" || strings.Contains(id, "/") {
			writeError(w, http.StatusNotFound, "dvserve: want /anomalies/{id}")
			return
		}
		data, ok := rn.anomalies.get(id)
		if !ok {
			data, ok = eng.AnomalyDump(id)
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("dvserve: unknown anomaly dump %q", id))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data) //dvlint:ignore errflow write error to the ResponseWriter means the client went away; a handler has nowhere to propagate it
	}
}
