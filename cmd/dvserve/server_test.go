package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvsync/internal/telemetry"
)

// runCLI invokes the CLI entry point and returns exit code + streams.
// Only non-serving paths terminate, so valid-flag invocations are not
// driven through here.
func runCLI(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestUsageErrors: invalid flags exit 2 with a diagnostic, before any
// listener is opened. Each case pairs bad scenario flags with an
// unbindable address: an exit of 1 (listen error) instead of 2 would
// mean the port was touched before validation.
func TestUsageErrors(t *testing.T) {
	const badAddr = "256.256.256.256:0"
	cases := [][]string{
		{"-mode", "both"},
		{"-mode", ""},
		{"-hz", "0"},
		{"-hz", "2000"},
		{"-buffers", "1"},
		{"-frames", "0"},
		{"-frames", "-5"},
		{"-fault", "bogus"},
		{"-fault", "stall", "-fault-severity", "1.5"},
		{"-checkpoint-dir", "x", "-checkpoint-every", "0"},
		{"stray-arg"},
	}
	for _, args := range cases {
		args = append([]string{"-addr", badAddr}, args...)
		code, _, stderr := runCLI(args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", args, code, stderr)
		}
		if stderr == "" {
			t.Errorf("%v: no diagnostic", args)
		}
	}
	// With valid flags the same unbindable address is a runtime error.
	if code, _, _ := runCLI("-addr", badAddr); code != 1 {
		t.Errorf("unbindable address with valid flags: want exit 1")
	}
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	return testServerWith(t, &runner{})
}

func testServerWith(t *testing.T, rn *runner) *httptest.Server {
	t.Helper()
	def, err := newParams("dvsync", 60, 4, 120, 1, "", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(def, rn))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDeterministicScrapes: identical parameters yield byte-identical
// bodies on repeated scrapes; different parameters yield different ones.
func TestDeterministicScrapes(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{"/metrics", "/snapshot", "/metrics?mode=vsync&seed=9"} {
		code1, body1 := get(t, srv.URL+path)
		code2, body2 := get(t, srv.URL+path)
		if code1 != 200 || code2 != 200 {
			t.Fatalf("%s: status %d/%d", path, code1, code2)
		}
		if body1 != body2 {
			t.Errorf("%s: repeated scrapes differ", path)
		}
	}
	_, dv := get(t, srv.URL+"/metrics")
	_, vs := get(t, srv.URL+"/metrics?mode=vsync")
	if dv == vs {
		t.Error("mode override had no effect on exposition")
	}
	if !strings.Contains(dv, "dvsync_frames_presented_total") {
		t.Errorf("exposition lacks frames-presented counter:\n%.300s", dv)
	}
}

// TestQueryValidation: malformed or unknown query parameters are a 400
// carrying a JSON {"error": ...} body, never a 500 or a silent default
// run.
func TestQueryValidation(t *testing.T) {
	srv := testServer(t)
	bad := []string{
		"/metrics?hz=abc",
		"/metrics?mode=both",
		"/snapshot?buffers=1",
		"/snapshot?frames=0",
		"/stream?seed=one",
		"/metrics?bogus=1",
		"/metrics?mod=vsync",   // typo'd name must not serve the default
		"/metrics?fault=bogus", // unknown fault class
		"/metrics?fault=stall&severity=1.5",
		"/metrics?fault=stall&severity=-0.1",
		"/metrics?fault=stall&severity=abc",
		"/snapshot?severity=0.9", // severity without a fault class
	}
	for _, path := range bad {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %.120q), want 400", path, resp.StatusCode, body)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", path, ct)
		}
		var payload struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &payload); err != nil || payload.Error == "" {
			t.Errorf("%s: body %.120q is not a JSON error object", path, body)
		}
	}
	if code, _ := get(t, srv.URL+"/snapshot?hz=120&frames=60"); code != 200 {
		t.Errorf("valid override rejected: %d", code)
	}
}

// TestFaultOverrides: the fault/severity parameters select a deterministic
// injected-fault scenario rather than being silently dropped.
func TestFaultOverrides(t *testing.T) {
	srv := testServer(t)
	code, faulted := get(t, srv.URL+"/metrics?fault=stall&severity=0.9")
	if code != 200 {
		t.Fatalf("faulted scenario: status %d", code)
	}
	code, again := get(t, srv.URL+"/metrics?fault=stall&severity=0.9")
	if code != 200 || faulted != again {
		t.Error("faulted scenario is not deterministic across scrapes")
	}
	_, plain := get(t, srv.URL+"/metrics")
	if plain == faulted {
		t.Error("fault override had no effect on the exposition")
	}
}

// TestStream: the SSE stream carries one columns event, one sample event
// per series row, and a final snapshot event consistent with /snapshot
// for the same parameters.
func TestStream(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/stream?frames=60")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if got := strings.Count(body, "event: columns\n"); got != 1 {
		t.Errorf("columns events = %d, want 1", got)
	}
	samples := strings.Count(body, "event: sample\n")
	if samples < 10 {
		t.Fatalf("only %d sample events", samples)
	}
	if got := strings.Count(body, "event: snapshot\n"); got != 1 {
		t.Fatalf("snapshot events = %d, want 1", got)
	}
	// The final snapshot must carry exactly the streamed rows.
	idx := strings.Index(body, "event: snapshot\ndata: ")
	line := body[idx+len("event: snapshot\ndata: "):]
	line = line[:strings.Index(line, "\n")]
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(line), &snap); err != nil {
		t.Fatalf("snapshot payload: %v", err)
	}
	if len(snap.Series.Rows) != samples {
		t.Errorf("snapshot has %d rows, stream carried %d samples", len(snap.Series.Rows), samples)
	}
	// And match the standalone snapshot endpoint for the same scenario.
	_, jsonBody := get(t, srv.URL+"/snapshot?frames=60")
	var direct telemetry.Snapshot
	if err := json.Unmarshal([]byte(jsonBody), &direct); err != nil {
		t.Fatal(err)
	}
	if direct.AtNs != snap.AtNs || len(direct.Series.Rows) != len(snap.Series.Rows) {
		t.Errorf("streamed snapshot (at %d, %d rows) != /snapshot (at %d, %d rows)",
			snap.AtNs, len(snap.Series.Rows), direct.AtNs, len(direct.Series.Rows))
	}
}

// TestAuxEndpoints: healthz, pprof and the index respond; unknown paths 404.
func TestAuxEndpoints(t *testing.T) {
	srv := testServer(t)
	if code, body := get(t, srv.URL+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body := get(t, srv.URL+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %d", code)
	}
	if code, body := get(t, srv.URL+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", code)
	}
}
