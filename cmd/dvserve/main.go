// Command dvserve serves live simulation telemetry over HTTP: it runs
// deterministic scenarios on demand and exposes their metrics as a
// Prometheus text exposition, a JSON snapshot, and a Server-Sent-Events
// stream of sampled rows, plus net/http/pprof for host-side profiling of
// the simulator itself.
//
// Usage:
//
//	dvserve                                   # listen on 127.0.0.1:8377
//	dvserve -addr :9000 -mode vsync -hz 120
//
// Endpoints:
//
//	GET /metrics     Prometheus text exposition of one scenario run
//	GET /snapshot    JSON snapshot (schema: internal/telemetry.Snapshot)
//	GET /stream      SSE: one columns event, a sample event per sampled
//	                 row as the virtual clock advances, a final snapshot;
//	                 a run that dies mid-stream ends with an error event
//	POST /fleet      JSON census spec in, SSE out: one cohort event per
//	                 cohort (followed by anomaly events naming its dumps),
//	                 then a terminal fleet event (DESIGN.md §14)
//	GET /anomalies   JSON list of captured flight-recorder anomaly dump ids
//	GET /anomalies/{id}  one sealed dump envelope (decode: dvtrace -why)
//	GET /healthz     liveness probe
//	GET /debug/pprof/  standard pprof handlers
//
// The flags select the default scenario; every request may override it
// with query parameters (mode, hz, buffers, frames, seed, fault,
// severity), e.g. /metrics?mode=vsync&hz=120 or /metrics?fault=stall.
// fault=none (or fault=) clears a default fault set with -fault, so a
// faulted server can still serve clean runs.
// Invalid parameters are an HTTP 400 with a JSON {"error": ...} body.
// Runs are deterministic: identical parameters produce byte-identical
// /metrics and /snapshot bodies on every scrape, so diffs between
// scrapes are parameter changes, never noise.
//
// With -checkpoint-dir, runs are periodically checkpointed and a run
// interrupted by a crash resumes from its last good checkpoint on the
// next identical request — determinism makes the recovered exports
// byte-identical to an uninterrupted run's.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"dvsync"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks command-line misuse (exit 2, like flag parsing errors).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// run is the testable entry point: it returns the process exit code. All
// flag validation happens before the listener is opened, so a bad
// invocation can never bind a port first.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dvserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8377", "listen address")
		mode      = fs.String("mode", "dvsync", "default scenario architecture: vsync or dvsync")
		hz        = fs.Int("hz", 60, "default panel refresh rate")
		buffers   = fs.Int("buffers", 4, "default buffer count")
		frames    = fs.Int("frames", 240, "default workload frames")
		seed      = fs.Int64("seed", 1, "default workload seed")
		fault     = fs.String("fault", "", "default fault class injected into runs (see dvsim -fault-list)")
		severity  = fs.Float64("fault-severity", 0.5, "default fault severity in [0, 1]")
		ckptDir   = fs.String("checkpoint-dir", "", "checkpoint runs here and resume interrupted ones on the next identical request")
		ckptEvery = fs.Float64("checkpoint-every", 500, "checkpoint cadence (virtual ms, with -checkpoint-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	def, err := newParams(*mode, *hz, *buffers, *frames, *seed, *fault, *severity)
	if err == nil && fs.NArg() != 0 {
		err = usageError{fmt.Sprintf("unexpected argument %q", fs.Arg(0))}
	}
	if err == nil && *ckptDir != "" && *ckptEvery <= 0 {
		err = usageError{fmt.Sprintf("non-positive checkpoint cadence %v", *ckptEvery)}
	}
	if err != nil {
		fmt.Fprintln(stderr, "dvserve:", err)
		fs.Usage()
		return 2
	}
	rn := &runner{dir: *ckptDir, every: dvsync.FromMillis(*ckptEvery)}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "dvserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "dvserve listening on %s\n", ln.Addr())
	if err := http.Serve(ln, newServer(def, rn)); err != nil {
		fmt.Fprintln(stderr, "dvserve:", err)
		return 1
	}
	return 0
}
