package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvsync"
)

// TestStreamErrorEvent: a run that dies after the stream has started must
// end with a terminal SSE `error` event — before the fix the error was
// swallowed once the columns event was out and clients saw a silently
// truncated stream.
func TestStreamErrorEvent(t *testing.T) {
	rn := &runner{dir: t.TempDir(), every: dvsync.FromMillis(200)}
	rn.crashAfter = dvsync.Time(dvsync.FromMillis(600))
	srv := testServerWith(t, rn)

	code, body := get(t, srv.URL+"/stream?frames=240")
	if code != 200 {
		t.Fatalf("status %d, want 200 (the stream had already started when the run died)", code)
	}
	if !strings.Contains(body, "event: columns\n") || !strings.Contains(body, "event: sample\n") {
		t.Fatalf("stream carried no data before the crash:\n%.300s", body)
	}
	if strings.Contains(body, "event: snapshot\n") {
		t.Error("crashed stream still emitted a final snapshot")
	}
	idx := strings.Index(body, "event: error\ndata: ")
	if idx < 0 {
		t.Fatalf("no terminal error event in crashed stream:\n%.300s", body[max(0, len(body)-300):])
	}
	line := body[idx+len("event: error\ndata: "):]
	line = line[:strings.Index(line, "\n")]
	var payload struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(line), &payload); err != nil || !strings.Contains(payload.Error, "simulated crash") {
		t.Errorf("error event payload %q does not name the failure (%v)", line, err)
	}
}

// TestWriteEventNonFinite: a sample row carrying NaN/Inf values must
// still reach the stream, with the non-finite columns encoded as null —
// before the fix json.Marshal rejected the payload and the event writer
// silently dropped the whole row.
func TestWriteEventNonFinite(t *testing.T) {
	var buf bytes.Buffer
	sw := &sseWriter{w: &buf}
	sw.event("sample", dvsync.TelemetryRow{
		AtNs:   5,
		Values: []float64{1, math.NaN(), math.Inf(1), 2.5},
	})
	want := "event: sample\ndata: {\"at_ns\":5,\"values\":[1,null,null,2.5]}\n\n"
	if got := buf.String(); got != want {
		t.Errorf("sseWriter.event emitted %q, want %q", got, want)
	}

	// The snapshot path shares the encoding: a registry holding a NaN
	// gauge must export valid JSON instead of vanishing.
	reg := dvsync.NewTelemetryRegistry()
	reg.Gauge("p99_latency_ms", "percentile of an empty window").Set(math.NaN())
	reg.Sample(0)
	var snap bytes.Buffer
	if err := reg.WriteJSON(&snap); err != nil {
		t.Fatalf("WriteJSON with a NaN gauge: %v", err)
	}
	if !json.Valid(snap.Bytes()) {
		t.Fatalf("snapshot is not valid JSON:\n%s", snap.String())
	}
	if !strings.Contains(snap.String(), "null") {
		t.Errorf("NaN gauge not exported as null:\n%s", snap.String())
	}
}

// TestRunnerCacheEvictionCompacts: FIFO eviction must compact the order
// slice in place. Once the cache is warm its capacity never moves again;
// the pre-fix re-slicing (order = order[1:]) shrank and reallocated the
// backing array on every eviction cycle, pinning evicted keys in the
// meantime.
func TestRunnerCacheEvictionCompacts(t *testing.T) {
	rn := &runner{}
	scenario := func(i int) params {
		p, err := newParams("dvsync", 60, 4, 100+i, 1, "", 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for i := 0; i < runnerCacheSize; i++ {
		rn.entry(scenario(i))
	}
	base := cap(rn.order)
	for i := runnerCacheSize; i < 20*runnerCacheSize; i++ {
		rn.entry(scenario(i))
		if got := cap(rn.order); got != base {
			t.Fatalf("eviction %d: order capacity moved %d -> %d; eviction re-slices the backing array instead of compacting", i, base, got)
		}
	}
	if base > 2*runnerCacheSize {
		t.Errorf("order capacity %d is unbounded (cache size %d)", base, runnerCacheSize)
	}
	if len(rn.order) != runnerCacheSize || len(rn.cache) != runnerCacheSize {
		t.Errorf("cache %d / order %d entries, want %d", len(rn.cache), len(rn.order), runnerCacheSize)
	}
	for _, k := range rn.order {
		if _, ok := rn.cache[k]; !ok {
			t.Fatalf("order holds evicted key %+v", k)
		}
	}
}

// TestFaultNoneOverride: fault=none (or an explicit empty fault=) clears
// the server's default fault class, so a server started with -fault can
// still serve clean runs — before the fix the default silently leaked
// back in. Severity alongside a cleared fault is rejected.
func TestFaultNoneOverride(t *testing.T) {
	faultedDef, err := newParams("dvsync", 60, 4, 120, 1, "stall", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	faulted := httptest.NewServer(newServer(faultedDef, &runner{}))
	t.Cleanup(faulted.Close)
	clean := testServer(t) // same scenario defaults, no fault

	_, wantClean := get(t, clean.URL+"/metrics")
	code, defaulted := get(t, faulted.URL+"/metrics")
	if code != 200 || defaulted == wantClean {
		t.Fatalf("server default fault not applied (status %d)", code)
	}
	for _, path := range []string{"/metrics?fault=none", "/metrics?fault="} {
		code, cleared := get(t, faulted.URL+path)
		if code != 200 {
			t.Fatalf("%s: status %d", path, code)
		}
		if cleared != wantClean {
			t.Errorf("%s on a -fault server still differs from a clean server's scrape", path)
		}
	}
	if code, body := get(t, faulted.URL+"/metrics?fault=none&severity=0.3"); code != http.StatusBadRequest {
		t.Errorf("fault=none&severity: status %d (body %.120q), want 400", code, body)
	}
	// The override still composes: a different class replaces the default.
	if code, body := get(t, faulted.URL+"/metrics?fault=jitter"); code != 200 || body == defaulted {
		t.Errorf("fault=jitter override ineffective (status %d)", code)
	}
}

// fleetSpecJSON is the small census the endpoint tests POST: two cohorts
// where the second duplicates the first, so its cells are all cache hits.
const fleetSpecJSON = `{
  "name": "smoke",
  "frames": 80,
  "cohorts": [
    {"name": "a", "device": "pixel5", "hz": [60]},
    {"name": "a-again", "device": "pixel5", "hz": [60]}
  ]
}`

func postFleet(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/fleet", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestFleetEndpoint: POST /fleet streams one cohort event per cohort and
// a terminal fleet event whose accounting shows the duplicated cohort was
// served from the cache; a second census on the same server is all hits.
func TestFleetEndpoint(t *testing.T) {
	srv := testServer(t)
	code, body := postFleet(t, srv.URL, fleetSpecJSON)
	if code != 200 {
		t.Fatalf("status %d: %.300s", code, body)
	}
	if got := strings.Count(body, "event: cohort\n"); got != 2 {
		t.Errorf("cohort events = %d, want 2", got)
	}
	if got := strings.Count(body, "event: fleet\n"); got != 1 {
		t.Fatalf("fleet events = %d, want 1", got)
	}
	idx := strings.Index(body, "event: fleet\ndata: ")
	line := body[idx+len("event: fleet\ndata: "):]
	line = line[:strings.Index(line, "\n")]
	var res dvsync.FleetResult
	if err := json.Unmarshal([]byte(line), &res); err != nil {
		t.Fatalf("fleet payload: %v", err)
	}
	// 2 cohorts × 1 hz × 2 modes × 1 replica = 4 cells, half duplicated.
	if res.Cells != 4 || res.UniqueCells != 2 || res.Simulated != 2 || res.CacheHits != 2 {
		t.Errorf("census accounting = %d cells / %d unique / %d simulated / %d hits, want 4/2/2/2",
			res.Cells, res.UniqueCells, res.Simulated, res.CacheHits)
	}

	// The engine is shared across requests: a repeat census simulates
	// nothing.
	_, again := postFleet(t, srv.URL, fleetSpecJSON)
	idx = strings.Index(again, "event: fleet\ndata: ")
	line = again[idx+len("event: fleet\ndata: "):]
	line = line[:strings.Index(line, "\n")]
	var warm dvsync.FleetResult
	if err := json.Unmarshal([]byte(line), &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Simulated != 0 || warm.CacheHits != 4 {
		t.Errorf("warm census simulated %d / hits %d, want 0/4", warm.Simulated, warm.CacheHits)
	}

	// Fresh servers agree byte for byte: the stream is deterministic.
	srv2 := testServer(t)
	_, body2 := postFleet(t, srv2.URL, fleetSpecJSON)
	if body != body2 {
		t.Error("first census bodies differ between identical servers")
	}
}

// TestFleetEndpointRejections: malformed requests are plain HTTP errors
// before any stream starts.
func TestFleetEndpointRejections(t *testing.T) {
	srv := testServer(t)
	if code, body := get(t, srv.URL+"/fleet"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /fleet: status %d (body %.120q), want 405", code, body)
	}
	bad := []struct {
		name, body string
	}{
		{"empty body", ""},
		{"not json", "census please"},
		{"unknown field", `{"cohorts": [{"devise": "pixel5"}]}`},
		{"trailing data", `{"cohorts": [{}]} {"cohorts": [{}]}`},
		{"no cohorts", `{"cohorts": []}`},
		{"unknown device", `{"cohorts": [{"device": "iphone"}]}`},
		{"severity without fault", `{"cohorts": [{"severity": 0.5}]}`},
	}
	for _, tc := range bad {
		code, body := postFleet(t, srv.URL, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %.120q), want 400", tc.name, code, body)
			continue
		}
		var payload struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &payload); err != nil || payload.Error == "" {
			t.Errorf("%s: body %.120q is not a JSON error object", tc.name, body)
		}
	}
	resp, err := http.Post(srv.URL+"/fleet?x=1", "application/json", strings.NewReader(fleetSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("query parameters on /fleet: status %d, want 400", resp.StatusCode)
	}
}

// TestIndexMentionsFleet: the index document advertises the new endpoint
// and the fault=none escape hatch.
func TestIndexMentionsFleet(t *testing.T) {
	srv := testServer(t)
	_, body := get(t, srv.URL+"/")
	for _, want := range []string{"/fleet", "fault=none"} {
		if !strings.Contains(body, want) {
			t.Errorf("index does not mention %q:\n%s", want, body)
		}
	}
}
