package main

import (
	"sync"

	"dvsync"
	"dvsync/internal/simtime"
)

// runnerCacheSize bounds how many distinct parameter sets keep a wired
// run context alive. Past the bound the oldest entry is evicted FIFO —
// a scrape fleet cycling through more scenarios than this just rebuilds
// graphs as it did before the cache existed.
const runnerCacheSize = 16

// scenarioKey identifies one scenario parameter set: every field of
// params that influences the run (the faults pointer is derived from
// fault+severity+seed, so the scalars cover it).
type scenarioKey struct {
	mode     string
	hz       int
	buffers  int
	frames   int
	seed     int64
	fault    string
	severity float64
}

func (p params) key() scenarioKey {
	return scenarioKey{mode: p.mode, hz: p.hz, buffers: p.buffers,
		frames: p.frames, seed: p.seed, fault: p.fault, severity: p.severity}
}

// runEntry is one cached scenario context: a wired sim.Runner with its
// registry. The entry lock serialises runs on the shared graph; handlers
// finish exporting from the registry before the lock releases.
type runEntry struct {
	mu     sync.Mutex
	rn     *dvsync.Runner
	reg    *dvsync.TelemetryRegistry
	ring   *dvsync.FlightRing // flight recorder wired into the cached graph
	digest string             // config digest pinning the entry's dumps
}

// entry returns the cached run context for p's parameter set, creating
// it — and evicting the oldest entry past the cache bound — on a miss.
// An evicted entry mid-request stays alive through its reference; only
// future requests rebuild it.
func (rn *runner) entry(p params) *runEntry {
	k := p.key()
	rn.cmu.Lock()
	defer rn.cmu.Unlock()
	if rn.cache == nil {
		rn.cache = make(map[scenarioKey]*runEntry)
	}
	e, ok := rn.cache[k]
	if !ok {
		if len(rn.order) >= runnerCacheSize {
			delete(rn.cache, rn.order[0])
			// Compact in place: re-slicing forward (order = order[1:])
			// pins the backing array and keeps evicted keys reachable, so
			// a scrape fleet cycling through many scenarios grows memory
			// it can never release.
			copy(rn.order, rn.order[1:])
			rn.order = rn.order[:len(rn.order)-1]
		}
		e = &runEntry{}
		rn.cache[k] = e
		rn.order = append(rn.order, k)
	}
	return e
}

// serve executes p's scenario and hands the attached registry to emit
// while the run context is locked. onSample, when non-nil, observes every
// sampled row as the virtual clock advances (the SSE stream path).
//
// Without a checkpoint directory the scenario runs on a cached Runner:
// one wired simulation graph per distinct parameter set, rewound per
// request instead of rebuilt. The registry is part of the cached wiring,
// so handlers serialise their export inside emit and never retain the
// registry past it. Checkpointed runs keep the uncached path — their
// graphs are rebuilt or resumed from snapshots by design, and reuse
// would fight the resume machinery for the same state.
// serve also returns the anomaly-dump ids the run's flight recorder
// captured (always empty on the checkpointed path, which runs without a
// recorder by design): the SSE handlers announce them as `anomaly`
// events and GET /anomalies serves the dumps.
func (rn *runner) serve(p params,
	onSample func(*dvsync.TelemetryRegistry, dvsync.TelemetrySample),
	emit func(*dvsync.TelemetryRegistry)) (simtime.Time, []string, error) {
	if rn.dir != "" {
		reg := dvsync.NewTelemetryRegistry()
		if onSample != nil {
			reg.OnSample(func(row dvsync.TelemetrySample) { onSample(reg, row) })
		}
		resumedFrom, err := rn.run(p, reg)
		if err != nil {
			return resumedFrom, nil, err
		}
		emit(reg)
		return resumedFrom, nil, nil
	}
	e := rn.entry(p)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rn == nil {
		e.reg = dvsync.NewTelemetryRegistry()
		e.ring = dvsync.NewFlightRecorder(dvsync.FlightConfig{})
		cfg := p.config(e.reg)
		cfg.Recorder = e.ring
		e.digest = dvsync.ConfigDigest(cfg)
		e.rn = dvsync.NewRunner(cfg)
	}
	if onSample != nil {
		reg := e.reg
		reg.OnSample(func(row dvsync.TelemetrySample) { onSample(reg, row) })
		defer reg.OnSample(nil)
	}
	e.rn.Run()
	ids := rn.anomalies.capture(e.digest, e.ring)
	emit(e.reg)
	return 0, ids, nil
}
