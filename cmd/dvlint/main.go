// Command dvlint runs the determinism and invariant static-analysis suite
// over the module and exits non-zero on violations.
//
// Usage:
//
//	dvlint ./...        # lint every package in the module
//	dvlint -rules       # list the rules and their allowlists
//
// Violations print in the compiler's file:line:col format. A finding can be
// suppressed in place with a justified directive:
//
//	//dvlint:ignore <rule> <reason>
//
// on the offending line or the line directly above it. Directives that name
// an unknown rule or omit the reason are themselves violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dvsync/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "list the rules and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dvlint [-rules] ./...")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *rules {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "dvlint: unsupported pattern %q (only ./...)\n", arg)
			os.Exit(2)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(rel(root, d))
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "dvlint: %d violation(s)\n", n)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// rel prints a diagnostic with its path relative to the module root.
func rel(root string, d lint.Diagnostic) string {
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
		d.Pos.Filename = r
	}
	return d.String()
}
