// Command dvlint runs the determinism and invariant static-analysis suite
// over the module and exits non-zero on violations.
//
// Usage:
//
//	dvlint ./...                          # lint every package in the module
//	dvlint ./internal/sim                 # lint one package
//	dvlint ./internal/...                 # lint a subtree
//	dvlint -list                          # list the rules
//	dvlint -json ./...                    # machine-readable findings
//	dvlint -baseline .dvlint-baseline.json ./...
//	dvlint -write-baseline .dvlint-baseline.json ./...
//
// Violations print in the compiler's file:line:col format. A finding can be
// suppressed in place with a justified directive:
//
//	//dvlint:ignore <rule> <reason>
//
// on the offending line or the line directly above it. Directives that name
// an unknown rule or omit the reason are themselves violations.
//
// # Baseline ratchet
//
// -baseline applies a committed ratchet file: findings recorded there are
// pinned debt and do not fail the run; any finding NOT in the file is fresh
// and fails. Entries whose finding has been fixed are reported as stale —
// remove them from the file, it may only shrink. The default -baseline value
// "auto" uses <module root>/.dvlint-baseline.json when it exists and no
// baseline otherwise; "none" disables baselining explicitly.
//
// Exit status: 0 clean, 1 findings (fresh findings under a baseline), 2
// usage or load errors — including a package pattern that matches nothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dvsync/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive the CLI
// end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the rules and exit")
	rules := fs.Bool("rules", false, "alias for -list (deprecated)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := fs.String("baseline", "auto",
		"baseline ratchet file; 'auto' uses <module>/.dvlint-baseline.json when present, 'none' disables")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: dvlint [-list] [-json] [-baseline file] [-write-baseline file] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list || *rules {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "dvlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "dvlint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "dvlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := selectPackages(loader.ModulePath, pkgs, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "dvlint:", err)
		return 2
	}

	findings := lint.Findings(root, lint.Run(selected, analyzers))

	if *writeBaseline != "" {
		if err := lint.WriteBaselineFile(*writeBaseline, findings); err != nil {
			fmt.Fprintln(stderr, "dvlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "dvlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	base, err := resolveBaseline(root, *baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "dvlint:", err)
		return 2
	}
	report := findings
	if base != nil {
		fresh, stale := lint.ApplyBaseline(findings, base)
		report = fresh
		for _, f := range stale {
			fmt.Fprintf(stderr, "dvlint: stale baseline entry (finding fixed — remove it): %s\n", f)
		}
	}

	if *jsonOut {
		data, err := lint.EncodeFindings(report)
		if err != nil {
			fmt.Fprintln(stderr, "dvlint:", err)
			return 2
		}
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, "dvlint:", err)
			return 2
		}
	} else {
		for _, f := range report {
			fmt.Fprintln(stdout, f)
		}
	}
	if n := len(report); n > 0 {
		if base != nil {
			fmt.Fprintf(stderr, "dvlint: %d fresh violation(s) not covered by the baseline\n", n)
		} else {
			fmt.Fprintf(stderr, "dvlint: %d violation(s)\n", n)
		}
		return 1
	}
	return 0
}

// selectPackages filters the loaded packages down to the given patterns.
// Supported forms: "./..." and "." (whole module), "./dir" (one package),
// "./dir/..." (a subtree). A pattern matching no loaded package is an
// error — a typoed path silently linting nothing would defeat the gate.
func selectPackages(modPath string, pkgs []*lint.Package, patterns []string) ([]*lint.Package, error) {
	type matcher struct {
		pattern   string
		path      string
		recursive bool
		hits      int
	}
	matchers := make([]*matcher, 0, len(patterns))
	for _, pat := range patterns {
		m := &matcher{pattern: pat}
		switch {
		case pat == "." || pat == "./...":
			m.path, m.recursive = modPath, true
		case strings.HasPrefix(pat, "./"):
			rel := strings.TrimPrefix(pat, "./")
			if strings.HasSuffix(rel, "/...") {
				m.recursive = true
				rel = strings.TrimSuffix(rel, "/...")
			}
			rel = strings.Trim(rel, "/")
			if rel == "" || rel == "..." {
				m.path = modPath
				m.recursive = true
			} else {
				m.path = modPath + "/" + filepath.ToSlash(rel)
			}
		default:
			return nil, fmt.Errorf("unsupported pattern %q (use ./dir, ./dir/... or ./...)", pat)
		}
		matchers = append(matchers, m)
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		matched := false
		for _, m := range matchers {
			ok := pkg.Path == m.path || (m.recursive && strings.HasPrefix(pkg.Path, m.path+"/"))
			if ok {
				m.hits++
				matched = true
			}
		}
		if matched {
			out = append(out, pkg)
		}
	}
	for _, m := range matchers {
		if m.hits == 0 {
			return nil, fmt.Errorf("pattern %q matches no Go packages in module %s", m.pattern, modPath)
		}
	}
	return out, nil
}

// resolveBaseline maps the -baseline flag value to a loaded baseline (nil
// when baselining is off).
func resolveBaseline(root, value string) (*lint.Baseline, error) {
	switch value {
	case "none", "":
		return nil, nil
	case "auto":
		path := filepath.Join(root, ".dvlint-baseline.json")
		if _, err := os.Stat(path); err != nil {
			return nil, nil
		}
		return lint.ReadBaselineFile(path)
	default:
		return lint.ReadBaselineFile(value)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
