package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"dvsync/internal/lint"
)

// exec drives the CLI the way main does and returns its exit code plus
// captured output.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestNoMatchingPackagesExits2 is the regression test for the silent-pass
// bug: a pattern matching no Go packages used to exit 0, letting a typoed
// CI path disable the whole gate.
func TestNoMatchingPackagesExits2(t *testing.T) {
	t.Parallel()
	code, _, stderr := exec(t, "-baseline", "none", "./does/not/exist")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "matches no Go packages") {
		t.Fatalf("stderr lacks a clear no-match error: %q", stderr)
	}
	if !strings.Contains(stderr, "./does/not/exist") {
		t.Fatalf("stderr does not name the offending pattern: %q", stderr)
	}
}

func TestUnsupportedPatternExits2(t *testing.T) {
	t.Parallel()
	code, _, stderr := exec(t, "-baseline", "none", "/absolute/path")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "unsupported pattern") {
		t.Fatalf("stderr: %q", stderr)
	}
}

// TestListNamesEveryAnalyzer pins the -list output to the registered rule
// set (and keeps the deprecated -rules alias alive).
func TestListNamesEveryAnalyzer(t *testing.T) {
	t.Parallel()
	for _, flag := range []string{"-list", "-rules"} {
		code, stdout, stderr := exec(t, flag)
		if code != 0 {
			t.Fatalf("%s: exit = %d; stderr: %s", flag, code, stderr)
		}
		for _, a := range lint.Analyzers() {
			if !strings.Contains(stdout, a.Name) {
				t.Errorf("%s output is missing rule %s", flag, a.Name)
			}
		}
	}
}

// TestJSONEmitsArray checks the machine-readable path: valid JSON, an
// array even when empty.
func TestJSONEmitsArray(t *testing.T) {
	t.Parallel()
	code, stdout, stderr := exec(t, "-json", "-baseline", "none", "./internal/lint")
	if code != 0 {
		t.Fatalf("exit = %d; stdout: %s stderr: %s", code, stdout, stderr)
	}
	var findings []lint.Finding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, stdout)
	}
	if findings == nil {
		t.Fatalf("JSON output decodes to nil, want an (empty) array: %s", stdout)
	}
}

// TestSubtreeAndSinglePackagePatterns exercises the ./dir and ./dir/...
// forms over packages known to be clean.
func TestSubtreeAndSinglePackagePatterns(t *testing.T) {
	t.Parallel()
	for _, pat := range []string{"./internal/lint", "./cmd/..."} {
		code, stdout, stderr := exec(t, "-baseline", "none", pat)
		if code != 0 {
			t.Fatalf("%s: exit = %d; stdout: %s stderr: %s", pat, code, stdout, stderr)
		}
	}
}

// TestStaleBaselineEntryWarnsButPasses: a baseline entry whose finding no
// longer exists must not fail the run, but must be called out for removal.
func TestStaleBaselineEntryWarnsButPasses(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "base.json")
	stale := lint.Finding{File: "internal/lint/lint.go", Line: 1, Col: 1,
		Rule: "hotalloc", Message: "finding that was fixed long ago"}
	if err := lint.WriteBaselineFile(path, []lint.Finding{stale}); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, "-baseline", path, "./internal/lint")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline entry") {
		t.Fatalf("stderr lacks the stale warning: %q", stderr)
	}
}

// TestDefaultInvocationIsClean is the tier-1 contract: plain `dvlint ./...`
// (auto-discovering the committed baseline) passes on this repository.
func TestDefaultInvocationIsClean(t *testing.T) {
	t.Parallel()
	code, stdout, stderr := exec(t, "./...")
	if code != 0 {
		t.Fatalf("exit = %d; stdout: %s stderr: %s", code, stdout, stderr)
	}
}

// TestBadBaselineFileExits2 distinguishes configuration errors from
// findings.
func TestBadBaselineFileExits2(t *testing.T) {
	t.Parallel()
	code, _, stderr := exec(t, "-baseline", "./no-such-baseline.json", "./internal/lint")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
}
