// Command dvbench regenerates the paper's tables and figures from
// simulation.
//
// Usage:
//
//	dvbench                 # run every experiment
//	dvbench -exp fig11      # run one experiment
//	dvbench -quick          # reduced configurations where available (CI smoke)
//	dvbench -workers 4      # bound the parallel runner (1 = serial legacy path)
//	dvbench -list           # list experiment IDs
//	dvbench -csv results/   # also export every table as CSV
//	dvbench -trace-dir traces/  # dump one Perfetto export per experiment cell
//	dvbench -metrics-dir metrics/  # dump telemetry snapshots per experiment cell
//	dvbench -bench-json BENCH_pr.json [-bench-baseline BENCH_baseline.json]
//	                        # run the pinned benchmarks; with a baseline,
//	                        # exit 1 if any measure regresses past tolerance
//
// Experiments fan replica simulations out over a deterministic worker pool
// (internal/par); the output is byte-identical at any -workers value, only
// the wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"dvsync"
	"dvsync/internal/bench"
	"dvsync/internal/exp"
	"dvsync/internal/obs"
	"dvsync/internal/par"
)

func main() {
	expID := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	quick := flag.Bool("quick", false, "use reduced experiment configurations where available")
	csvDir := flag.String("csv", "", "directory to export tables as CSV files")
	traceDir := flag.String("trace-dir", "", "directory to dump one Perfetto export per experiment cell")
	metricsDir := flag.String("metrics-dir", "", "directory to dump one telemetry snapshot pair per experiment cell")
	benchJSON := flag.String("bench-json", "", "run the pinned benchmarks and write a perf-trajectory snapshot to this file")
	benchBase := flag.String("bench-baseline", "", "baseline to compare -bench-json results against; exit 1 on regression")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *benchBase != "" && *benchJSON == "" {
		fmt.Fprintln(os.Stderr, "dvbench: -bench-baseline requires -bench-json")
		os.Exit(2)
	}
	if *benchJSON != "" {
		if err := runBenchGate(*benchJSON, *benchBase); err != nil {
			fmt.Fprintln(os.Stderr, "dvbench:", err)
			os.Exit(1)
		}
		return
	}

	par.SetWorkers(*workers)

	if *list {
		for _, e := range dvsync.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	run := dvsync.Experiments()
	if *expID != "" {
		e, ok := dvsync.FindExperiment(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "dvbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		run = []dvsync.Experiment{e}
	}
	for i, e := range run {
		if i > 0 && *csvDir == "" && *traceDir == "" {
			fmt.Println()
		}
		if *traceDir != "" {
			if err := exportTraces(*traceDir, e); err != nil {
				fmt.Fprintln(os.Stderr, "dvbench:", err)
				os.Exit(1)
			}
			continue
		}
		if *metricsDir != "" {
			if err := exportMetrics(*metricsDir, e); err != nil {
				fmt.Fprintln(os.Stderr, "dvbench:", err)
				os.Exit(1)
			}
			continue
		}
		if *csvDir != "" {
			if err := exportCSV(*csvDir, e); err != nil {
				fmt.Fprintln(os.Stderr, "dvbench:", err)
				os.Exit(1)
			}
			continue
		}
		if *quick && e.RunQuick != nil {
			e.RunQuick(os.Stdout)
			continue
		}
		e.Run(os.Stdout)
	}
	if *csvDir != "" {
		fmt.Printf("wrote CSV tables for %d experiments to %s\n", len(run), *csvDir)
	}
	if *traceDir != "" {
		fmt.Printf("wrote Perfetto exports for %d experiments to %s\n", len(run), *traceDir)
	}
	if *metricsDir != "" {
		fmt.Printf("wrote telemetry snapshots for %d experiments to %s\n", len(run), *metricsDir)
	}
}

// runBenchGate measures the pinned benchmark set, writes the trajectory
// snapshot, and — when a baseline is given — fails on any regression past
// the default tolerances.
func runBenchGate(outPath, basePath string) error {
	results := bench.Run()
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	werr := bench.WriteJSON(f, results,
		"perf-trajectory snapshot written by dvbench -bench-json; gated against BENCH_baseline.json")
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	for _, p := range bench.Benchmarks() {
		r := results[p.Name]
		line := fmt.Sprintf("%-28s %12.0f ns/op %10d B/op %8d allocs/op",
			p.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.RunsPerSec > 0 {
			line += fmt.Sprintf(" %10.1f runs/sec", r.RunsPerSec)
		}
		fmt.Println(line)
	}
	if basePath == "" {
		return nil
	}
	bf, err := os.Open(basePath)
	if err != nil {
		return err
	}
	base, err := bench.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		return err
	}
	if msgs := bench.Compare(results, base, bench.DefaultTolerance()); len(msgs) > 0 {
		for _, m := range msgs {
			fmt.Fprintln(os.Stderr, "dvbench: bench regression:", m)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(msgs), basePath)
	}
	fmt.Printf("bench gate passed: %d benchmarks within tolerance of %s\n", len(base), basePath)
	return nil
}

// exportMetrics dumps each canonical cell's telemetry as a Prometheus
// exposition (<cell>.prom) and a JSON snapshot (<cell>.metrics.json).
func exportMetrics(dir string, e dvsync.Experiment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cell := range exp.MetricsCells(e.ID) {
		if err := writeFileWith(filepath.Join(dir, cell.Name+".prom"), cell.Registry.WritePrometheus); err != nil {
			return err
		}
		if err := writeFileWith(filepath.Join(dir, cell.Name+".metrics.json"), cell.Registry.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// writeFileWith creates path and streams write(f) into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportTraces dumps one Perfetto export per canonical cell of the
// experiment into dir.
func exportTraces(dir string, e dvsync.Experiment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cell := range exp.TraceCells(e.ID) {
		f, err := os.Create(filepath.Join(dir, cell.Name+".perfetto.json"))
		if err != nil {
			return err
		}
		if err := obs.ExportPerfetto(cell.Recorder, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func exportCSV(dir string, e dvsync.Experiment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range e.Tables() {
		name := e.ID
		if i > 0 {
			name += "-" + strconv.Itoa(i+1)
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		t.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
