// Command dvbench regenerates the paper's tables and figures from
// simulation.
//
// Usage:
//
//	dvbench                 # run every experiment
//	dvbench -exp fig11      # run one experiment
//	dvbench -quick          # reduced configurations where available (CI smoke)
//	dvbench -workers 4      # bound the parallel runner (1 = serial legacy path)
//	dvbench -list           # list experiment IDs
//	dvbench -csv results/   # also export every table as CSV
//	dvbench -trace-dir traces/  # dump one Perfetto export per experiment cell
//
// Experiments fan replica simulations out over a deterministic worker pool
// (internal/par); the output is byte-identical at any -workers value, only
// the wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"dvsync"
	"dvsync/internal/exp"
	"dvsync/internal/obs"
	"dvsync/internal/par"
)

func main() {
	expID := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	quick := flag.Bool("quick", false, "use reduced experiment configurations where available")
	csvDir := flag.String("csv", "", "directory to export tables as CSV files")
	traceDir := flag.String("trace-dir", "", "directory to dump one Perfetto export per experiment cell")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	par.SetWorkers(*workers)

	if *list {
		for _, e := range dvsync.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	run := dvsync.Experiments()
	if *expID != "" {
		e, ok := dvsync.FindExperiment(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "dvbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		run = []dvsync.Experiment{e}
	}
	for i, e := range run {
		if i > 0 && *csvDir == "" && *traceDir == "" {
			fmt.Println()
		}
		if *traceDir != "" {
			if err := exportTraces(*traceDir, e); err != nil {
				fmt.Fprintln(os.Stderr, "dvbench:", err)
				os.Exit(1)
			}
			continue
		}
		if *csvDir != "" {
			if err := exportCSV(*csvDir, e); err != nil {
				fmt.Fprintln(os.Stderr, "dvbench:", err)
				os.Exit(1)
			}
			continue
		}
		if *quick && e.RunQuick != nil {
			e.RunQuick(os.Stdout)
			continue
		}
		e.Run(os.Stdout)
	}
	if *csvDir != "" {
		fmt.Printf("wrote CSV tables for %d experiments to %s\n", len(run), *csvDir)
	}
	if *traceDir != "" {
		fmt.Printf("wrote Perfetto exports for %d experiments to %s\n", len(run), *traceDir)
	}
}

// exportTraces dumps one Perfetto export per canonical cell of the
// experiment into dir.
func exportTraces(dir string, e dvsync.Experiment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cell := range exp.TraceCells(e.ID) {
		f, err := os.Create(filepath.Join(dir, cell.Name+".perfetto.json"))
		if err != nil {
			return err
		}
		if err := obs.ExportPerfetto(cell.Recorder, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func exportCSV(dir string, e dvsync.Experiment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range e.Tables() {
		name := e.ID
		if i > 0 {
			name += "-" + strconv.Itoa(i+1)
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		t.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
