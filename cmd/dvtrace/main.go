// Command dvtrace records a simulation as a structured event trace (JSONL),
// summarises a previously recorded trace, or exports it as Chrome
// trace-event JSON loadable in Perfetto — the workflow graphics engineers
// use on real devices, on the simulated stack.
//
// Usage:
//
//	dvtrace -record -mode dvsync -o run.jsonl      # simulate and dump JSONL
//	dvtrace -record -mode dvsync -perfetto out.json # simulate and export
//	dvtrace run.jsonl                              # analyse a dump
//	dvtrace -timeline run.jsonl                    # ASCII timeline
//	dvtrace -spans run.jsonl                       # per-frame stage table
//	dvtrace -perfetto out.json run.jsonl           # convert JSONL → Perfetto
//	dvtrace -check out.json                        # validate an export
//	dvtrace -why run.jsonl                         # cause chains per jank
//	dvtrace -why anomaly.dump                      # same, from a flight dump
//
// Open exports at https://ui.perfetto.dev (or chrome://tracing): per-frame
// spans land on ui/render/queue/display tracks, counters and markers below.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dvsync"
	"dvsync/internal/checkpoint"
	"dvsync/internal/flight"
	"dvsync/internal/obs"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks command-line misuse (exit 2, like flag parsing errors).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// run is the testable entry point: it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dvtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		record   = fs.Bool("record", false, "run a simulation and dump its trace")
		mode     = fs.String("mode", "dvsync", "vsync or dvsync (with -record)")
		hz       = fs.Int("hz", 60, "panel refresh rate (with -record)")
		buffers  = fs.Int("buffers", 4, "buffer count (with -record)")
		frames   = fs.Int("frames", 240, "workload frames (with -record)")
		seed     = fs.Int64("seed", 1, "workload seed (with -record)")
		out      = fs.String("o", "", "JSONL output path (default stdout)")
		perfetto = fs.String("perfetto", "", "write a Perfetto (Chrome trace-event JSON) export to this path")
		timeline = fs.Bool("timeline", false, "render an ASCII timeline instead of a summary")
		spans    = fs.Bool("spans", false, "render the per-frame stage table instead of a summary")
		check    = fs.Bool("check", false, "validate a Perfetto export file and exit")
		why      = fs.Bool("why", false, "attribute every jank/edge-missed/fallback of a trace or anomaly dump to its cause chain")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	err := dispatch(fs, set, *record, *mode, *hz, *buffers, *frames, *seed,
		*out, *perfetto, *timeline, *spans, *check, *why, stdout)
	switch err.(type) {
	case nil:
		return 0
	case usageError:
		fmt.Fprintln(stderr, "dvtrace:", err)
		fs.Usage()
		return 2
	default:
		fmt.Fprintln(stderr, "dvtrace:", err)
		return 1
	}
}

// dispatch validates the flag combination and runs the selected action.
// All validation happens before any file is opened or written, and
// meaningless combinations are rejected up front (exit 2) instead of being
// silently ignored: `-record -timeline` can never look like it produced a
// timeline, and `-check -seed 7` can never look like the seed mattered.
// set holds the flags explicitly present on the command line (fs.Visit),
// which distinguishes `-hz 60` (set to its default) from an untouched
// default.
func dispatch(fs *flag.FlagSet, set map[string]bool, record bool, mode string, hz, buffers, frames int,
	seed int64, out, perfetto string, timeline, spans, check, why bool, stdout io.Writer) error {
	if timeline && spans {
		return usageError{"-timeline and -spans are mutually exclusive"}
	}
	switch {
	case why:
		if record || timeline || spans || check || perfetto != "" {
			return usageError{"-why takes only a recorded trace or anomaly dump"}
		}
		if err := rejectSetFlags(set, "-why"); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return usageError{"-why requires exactly one trace or dump file"}
		}
		return doWhy(fs.Arg(0), stdout)
	case check:
		if record || timeline || spans || perfetto != "" {
			return usageError{"-check takes only a Perfetto export file"}
		}
		if err := rejectSetFlags(set, "-check"); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return usageError{"-check requires exactly one export file"}
		}
		return doCheck(fs.Arg(0), stdout)
	case record:
		if timeline || spans {
			return usageError{"-record does not analyse; rerun dvtrace on the recorded file for -timeline/-spans"}
		}
		if fs.NArg() != 0 {
			return usageError{fmt.Sprintf("-record takes no input file (got %q)", fs.Arg(0))}
		}
		m, err := parseMode(mode)
		if err != nil {
			return err
		}
		return doRecord(m, hz, buffers, frames, seed, out, perfetto, stdout)
	case fs.NArg() == 1:
		if err := rejectSetFlags(set, "trace analysis"); err != nil {
			return err
		}
		return doAnalyse(fs.Arg(0), perfetto, timeline, spans, stdout)
	default:
		return usageError{"expected -record, -check, or one recorded trace file"}
	}
}

// recordOnlyFlags only affect `-record` runs; anywhere else their presence
// means the user expected an effect they will not get.
var recordOnlyFlags = []string{"mode", "hz", "buffers", "frames", "seed", "o"}

// rejectSetFlags fails if any recording flag was explicitly set for an
// action that would silently ignore it.
func rejectSetFlags(set map[string]bool, action string) error {
	for _, n := range recordOnlyFlags {
		if set[n] {
			return usageError{fmt.Sprintf("-%s is a recording flag; %s ignores it", n, action)}
		}
	}
	return nil
}

// parseMode maps the -mode flag to an architecture; unknown strings are a
// usage error (exit 2), never a silent dvsync default.
func parseMode(mode string) (dvsync.Mode, error) {
	switch mode {
	case "vsync":
		return dvsync.VSync, nil
	case "dvsync":
		return dvsync.DVSync, nil
	default:
		return 0, usageError{fmt.Sprintf("unknown mode %q (want vsync or dvsync)", mode)}
	}
}

func doRecord(m dvsync.Mode, hz, buffers, frames int, seed int64,
	out, perfetto string, stdout io.Writer) error {
	period := dvsync.PeriodForHz(hz).Milliseconds()
	p := workload.DefaultProfile("dvtrace", period)
	rec := dvsync.NewRecorder()
	dvsync.Run(dvsync.Config{
		Mode: m, Panel: dvsync.PanelConfig{Name: "dvtrace", RefreshHz: hz},
		Buffers: buffers, Trace: p.Generate(frames, seed), Recorder: rec,
	})
	if perfetto != "" {
		if err := writeFile(perfetto, func(w io.Writer) error {
			return obs.ExportPerfetto(rec, w)
		}); err != nil {
			return err
		}
		if out == "" {
			return nil // Perfetto-only recording: don't also spray JSONL at stdout.
		}
	}
	if out != "" {
		return writeFile(out, rec.WriteJSONL)
	}
	return rec.WriteJSONL(stdout)
}

func doAnalyse(path, perfetto string, timeline, spans bool, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	if perfetto != "" {
		return writeFile(perfetto, func(w io.Writer) error {
			return obs.ExportPerfetto(rec, w)
		})
	}
	if timeline {
		fmt.Fprint(stdout, trace.RenderTimeline(rec, 120))
		return nil
	}
	if spans {
		obs.Build(rec).WriteSpanTable(stdout)
		return nil
	}
	s := trace.Summarize(rec)
	fmt.Fprintf(stdout, "events            %d over %s\n", rec.Len(), s.Span)
	kinds := make([]string, 0, len(s.Events))
	for kind := range s.Events {
		kinds = append(kinds, string(kind))
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Fprintf(stdout, "  %-14s  %d\n", kind, s.Events[trace.EventKind(kind)])
	}
	fmt.Fprintf(stdout, "frames presented  %d\n", s.Frames)
	fmt.Fprintf(stdout, "janks             %d\n", s.Janks)
	fmt.Fprintf(stdout, "mean queue wait   %.2f ms\n", s.MeanQueueLatency)
	fmt.Fprintf(stdout, "decoupled share   %.0f%%\n", 100*s.DecoupledShare)
	return nil
}

func doCheck(path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := obs.ValidatePerfettoReport(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: valid Perfetto export (trace schema v%d)\n", path, rep.SchemaVersion)
	fmt.Fprintf(stdout, "  events  %d (%d frame spans over %d frames, %d counter samples, %d instants)\n",
		rep.Events, rep.Spans, rep.Frames, rep.Counters, rep.Instants)
	fmt.Fprintf(stdout, "  tracks  %s\n", strings.Join(rep.Tracks, " "))
	return nil
}

// doWhy attributes every jank / edge-missed / fallback instant of a
// recorded trace — or of the event window inside a flight-recorder
// anomaly dump — to its proximate and root cause.
func doWhy(path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []trace.Event
	switch d, digest, derr := flight.DecodeDump(bytes.NewReader(data), ""); {
	case derr == nil:
		fmt.Fprintf(stdout, "anomaly dump: trigger=%s at %s config=%.12s events=%d\n",
			d.Trigger.Kind, d.Trigger.At, digest, len(d.Events))
		if d.Trigger.Detail != "" {
			fmt.Fprintf(stdout, "  %s\n", d.Trigger.Detail)
		}
		events = d.Events
	case errors.Is(derr, checkpoint.ErrNotCheckpoint):
		// Not an envelope at all: treat it as a JSONL trace.
		rec, rerr := trace.ReadJSONL(bytes.NewReader(data))
		if rerr != nil {
			return rerr
		}
		events = rec.Events()
	default:
		return derr
	}
	obs.WriteCauseTable(stdout, obs.Attribute(events))
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
