// Command dvtrace records a simulation as a structured event trace (JSONL)
// or summarises a previously recorded trace — the workflow graphics
// engineers use with Perfetto, on the simulated stack.
//
// Usage:
//
//	dvtrace -record -mode dvsync -o run.jsonl   # simulate and dump
//	dvtrace run.jsonl                           # analyse a dump
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dvsync"
	"dvsync/internal/trace"
)

func main() {
	var (
		record   = flag.Bool("record", false, "run a simulation and dump its trace")
		mode     = flag.String("mode", "dvsync", "vsync or dvsync (with -record)")
		hz       = flag.Int("hz", 60, "panel refresh rate (with -record)")
		buffers  = flag.Int("buffers", 4, "buffer count (with -record)")
		frames   = flag.Int("frames", 240, "workload frames (with -record)")
		seed     = flag.Int64("seed", 1, "workload seed (with -record)")
		out      = flag.String("o", "", "output path (default stdout)")
		timeline = flag.Bool("timeline", false, "render an ASCII timeline instead of a summary")
	)
	flag.Parse()

	switch {
	case *record:
		if err := doRecord(*mode, *hz, *buffers, *frames, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "dvtrace:", err)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		if err := doSummarize(flag.Arg(0), timeline); err != nil {
			fmt.Fprintln(os.Stderr, "dvtrace:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(mode string, hz, buffers, frames int, seed int64, out string) error {
	m := dvsync.DVSync
	if mode == "vsync" {
		m = dvsync.VSync
	}
	period := dvsync.PeriodForHz(hz).Milliseconds()
	p := dvsync.Profile{
		Name: "dvtrace", ShortMeanMs: 0.4 * period, ShortSigmaMs: 0.13 * period,
		LongRatio: 0.05, LongScaleMs: 1.5 * period, LongAlpha: 2.3,
		Burstiness: 0.2, UIShare: 0.35,
	}
	rec := dvsync.NewRecorder()
	dvsync.Run(dvsync.Config{
		Mode: m, Panel: dvsync.PanelConfig{Name: "dvtrace", RefreshHz: hz},
		Buffers: buffers, Trace: p.Generate(frames, seed), Recorder: rec,
	})
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rec.WriteJSONL(w)
}

func doSummarize(path string, timeline *bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	if *timeline {
		fmt.Print(trace.RenderTimeline(rec, 120))
		return nil
	}
	s := trace.Summarize(rec)
	fmt.Printf("events            %d over %s\n", rec.Len(), s.Span)
	kinds := make([]string, 0, len(s.Events))
	for kind := range s.Events {
		kinds = append(kinds, string(kind))
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Printf("  %-14s  %d\n", kind, s.Events[trace.EventKind(kind)])
	}
	fmt.Printf("frames presented  %d\n", s.Frames)
	fmt.Printf("janks             %d\n", s.Janks)
	fmt.Printf("mean queue wait   %.2f ms\n", s.MeanQueueLatency)
	fmt.Printf("decoupled share   %.0f%%\n", 100*s.DecoupledShare)
	return nil
}
