package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvsync"
	"dvsync/internal/workload"
)

// faultedArtifacts runs one stall-faulted D-VSync simulation with the
// flight recorder attached and writes two kinds of analysable artifact
// into dir: every sealed anomaly dump, and the full trace as JSONL.
func faultedArtifacts(t *testing.T, dir string) (dumpPaths []string, jsonlPath string) {
	t.Helper()
	fc, err := dvsync.FaultScenario("stall", 0.8,
		dvsync.Time(dvsync.FromMillis(500)), dvsync.Time(dvsync.FromMillis(3600)), 99)
	if err != nil {
		t.Fatal(err)
	}
	ring := dvsync.NewFlightRecorder(dvsync.FlightConfig{})
	p := workload.DefaultProfile("dvtrace", dvsync.PeriodForHz(60).Milliseconds())
	cfg := dvsync.Config{
		Mode: dvsync.DVSync, Panel: dvsync.PanelConfig{Name: "dvtrace", RefreshHz: 60},
		Buffers: 4, Trace: p.Generate(400, 1234), Recorder: ring,
		Faults: fc, FPEOverloadAfter: 4, EnableFallback: true,
		Health: dvsync.HealthConfig{MaxFDPS: 6, MaxCalibErrMs: 12,
			StallTimeout: dvsync.FromMillis(250)},
	}
	cfg.DTV.MaxAbsErrMs = 8
	dvsync.Run(cfg)
	dumps := ring.Dumps()
	if len(dumps) == 0 {
		t.Fatal("stall run triggered no anomaly dumps (scenario too tame)")
	}
	digest := dvsync.ConfigDigest(cfg)
	for i := range dumps {
		path := filepath.Join(dir, dvsync.DumpID(digest, i, dumps[i].Trigger.Kind)+".dump")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := dvsync.EncodeAnomalyDump(f, digest, &dumps[i]); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		dumpPaths = append(dumpPaths, path)
	}
	// The ring only retains a bounded tail window; the JSONL artifact wants
	// the whole run, so record it again with an unbounded recorder (the
	// simulation is deterministic, so it is the same run).
	rec := dvsync.NewRecorder()
	cfg.Recorder = rec
	dvsync.Run(cfg)
	jsonlPath = filepath.Join(dir, "run.jsonl")
	g, err := os.Create(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dvsync.WriteEventsJSONL(g, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return dumpPaths, jsonlPath
}

// TestWhyOnAnomalyDump: -why on a sealed dump prints the trigger header
// (kind, config digest prefix, event count) and a cause table; the dumps
// triggered inside the fault window root at the injected class; output is
// byte-identical across invocations.
func TestWhyOnAnomalyDump(t *testing.T) {
	dumpPaths, _ := faultedArtifacts(t, t.TempDir())
	named := false
	for _, dumpPath := range dumpPaths {
		code, stdout, stderr := runCLI("-why", dumpPath)
		if code != 0 {
			t.Fatalf("%s: exit %d (stderr %q)", dumpPath, code, stderr)
		}
		if !strings.HasPrefix(stdout, "anomaly dump: trigger=") {
			t.Errorf("%s: missing dump header: %.80q", dumpPath, stdout)
		}
		for _, want := range []string{"config=", "events=", "attributed instants"} {
			if !strings.Contains(stdout, want) {
				t.Errorf("%s: -why output lacks %q:\n%s", dumpPath, want, stdout)
			}
		}
		if strings.Contains(stdout, "fault-episode(class=stall") {
			named = true
		}
		if _, again, _ := runCLI("-why", dumpPath); again != stdout {
			t.Errorf("%s: -why output differs between identical invocations", dumpPath)
		}
	}
	if !named {
		t.Errorf("none of %d dumps roots a cause chain at the injected stall episode", len(dumpPaths))
	}
}

// TestWhyOnTrace: -why falls back to JSONL when the file is not an
// envelope, attributing the whole recorded run.
func TestWhyOnTrace(t *testing.T) {
	_, jsonlPath := faultedArtifacts(t, t.TempDir())
	code, stdout, stderr := runCLI("-why", jsonlPath)
	if code != 0 {
		t.Fatalf("exit %d (stderr %q)", code, stderr)
	}
	if strings.Contains(stdout, "anomaly dump:") {
		t.Errorf("JSONL input mis-detected as a dump: %.80q", stdout)
	}
	for _, want := range []string{"attributed instants", "jank", "fault-episode(class=stall"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-why output lacks %q:\n%s", want, stdout)
		}
	}
}

// TestWhyRejections: -why keeps the flag-validation contract — bad
// combinations exit 2 before any file is touched, unreadable input exits 1.
func TestWhyRejections(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created.dump")
	for _, args := range [][]string{
		{"-why"},
		{"-why", "a.dump", "b.dump"},
		{"-why", "-record", missing},
		{"-why", "-check", missing},
		{"-why", "-timeline", missing},
		{"-why", "-perfetto", "out.json", missing},
		{"-why", "-seed", "7", missing},
	} {
		if code, _, _ := runCLI(args...); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
	if code, _, stderr := runCLI("-why", missing); code != 1 || stderr == "" {
		t.Errorf("missing file: exit %d stderr %q, want 1 + diagnostic", code, stderr)
	}
}

// TestCheckSuccessReport: the -check success output names the trace schema
// version, event count, span coverage and track list, and is stable across
// invocations.
func TestCheckSuccessReport(t *testing.T) {
	dir := t.TempDir()
	export := filepath.Join(dir, "run.perfetto.json")
	if code, _, stderr := runCLI("-record", "-mode", "dvsync", "-frames", "30",
		"-seed", "7", "-perfetto", export); code != 0 {
		t.Fatalf("record: exit %d (stderr %q)", code, stderr)
	}
	code, stdout, stderr := runCLI("-check", export)
	if code != 0 {
		t.Fatalf("exit %d (stderr %q)", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 report lines, got %d:\n%s", len(lines), stdout)
	}
	if !strings.Contains(lines[0], "valid Perfetto export (trace schema v") {
		t.Errorf("line 1 lacks the schema version: %q", lines[0])
	}
	if !strings.Contains(lines[1], "frame spans over") || !strings.Contains(lines[1], "counter samples") {
		t.Errorf("line 2 lacks span/counter coverage: %q", lines[1])
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[2]), "tracks") {
		t.Errorf("line 3 lacks the track list: %q", lines[2])
	}
	if _, again, _ := runCLI("-check", export); again != stdout {
		t.Error("-check output differs between identical invocations")
	}
}
