package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the CLI entry point and returns exit code + streams.
func runCLI(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestUnknownModeRejected: regression for the silent-dvsync-fallback bug —
// an unrecognised -mode must exit 2 with a diagnostic, not record dvsync.
func TestUnknownModeRejected(t *testing.T) {
	for _, mode := range []string{"both", "VSYNC", "dvsymc", ""} {
		code, _, stderr := runCLI("-record", "-mode", mode, "-o", os.DevNull)
		if code != 2 {
			t.Errorf("-mode %q: exit %d, want 2", mode, code)
		}
		if !strings.Contains(stderr, "unknown mode") {
			t.Errorf("-mode %q: stderr %q lacks diagnostic", mode, stderr)
		}
	}
	// The two valid spellings still work.
	for _, mode := range []string{"vsync", "dvsync"} {
		if code, _, stderr := runCLI("-record", "-mode", mode, "-frames", "5", "-o", os.DevNull); code != 0 {
			t.Errorf("-mode %q: exit %d (stderr %q)", mode, code, stderr)
		}
	}
}

// TestRecordAnalyseConflict: regression for -record -timeline silently
// recording JSONL while claiming nothing — now a usage error.
func TestRecordAnalyseConflict(t *testing.T) {
	cases := [][]string{
		{"-record", "-timeline"},
		{"-record", "-spans"},
		{"-timeline", "-spans", "x.jsonl"},
		{"-record", "stray-arg.jsonl"},
		{"-check"},
		{"-check", "-record", "x.json"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(args...); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}

// TestRecordOnlyFlagsRejectedOutsideRecord: regression for recording
// parameters being silently ignored by -check and trace analysis — a set
// -seed/-hz/-o etc. now exits 2 before any file is opened.
func TestRecordOnlyFlagsRejectedOutsideRecord(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created.json")
	cases := [][]string{
		{"-check", "-seed", "7", missing},
		{"-check", "-mode", "dvsync", missing},
		{"-check", "-hz", "60", missing}, // default value, but explicitly set
		{"-check", "-o", "out.jsonl", missing},
		{"-frames", "240", missing},
		{"-buffers", "4", missing},
		{"-timeline", "-seed", "3", missing},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", args, code, stderr)
		}
		if !strings.Contains(stderr, "recording flag") {
			t.Errorf("%v: stderr %q lacks recording-flag diagnostic", args, stderr)
		}
	}
	// Validation must run before the input file is touched: the exit-2
	// cases above all name a nonexistent file, so any "no such file"
	// leakage in stderr means a file open preceded flag validation.
	code, _, stderr := runCLI("-check", "-seed", "7", missing)
	if code != 2 || strings.Contains(stderr, "no such file") {
		t.Errorf("flag validation did not precede file access: exit %d stderr %q", code, stderr)
	}
}

// TestRecordExportCheckPipeline: record → Perfetto export → -check, plus
// JSONL re-analysis with -spans, end to end in a temp dir.
func TestRecordExportCheckPipeline(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "run.jsonl")
	export := filepath.Join(dir, "run.perfetto.json")

	if code, _, stderr := runCLI("-record", "-mode", "dvsync", "-frames", "30",
		"-seed", "7", "-o", jsonl, "-perfetto", export); code != 0 {
		t.Fatalf("record: exit %d (stderr %q)", code, stderr)
	}
	code, stdout, stderr := runCLI("-check", export)
	if code != 0 {
		t.Fatalf("check: exit %d (stderr %q)", code, stderr)
	}
	if !strings.Contains(stdout, "valid Perfetto export") {
		t.Errorf("check output %q", stdout)
	}
	for _, track := range []string{"queue-depth", "fdps-windowed", "dtv-calib-error-ms"} {
		if !strings.Contains(stdout, track) {
			t.Errorf("check output lacks track %s: %q", track, stdout)
		}
	}

	// Converting the JSONL must reproduce the recorded export exactly.
	converted := filepath.Join(dir, "converted.json")
	if code, _, stderr := runCLI("-perfetto", converted, jsonl); code != 0 {
		t.Fatalf("convert: exit %d (stderr %q)", code, stderr)
	}
	a, err := os.ReadFile(export)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(converted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("JSONL→Perfetto conversion differs from the direct recording export")
	}

	code, stdout, stderr = runCLI("-spans", jsonl)
	if code != 0 {
		t.Fatalf("spans: exit %d (stderr %q)", code, stderr)
	}
	if !strings.Contains(stdout, "frame") || !strings.Contains(stdout, "dvsync") {
		t.Errorf("spans table %q", stdout)
	}
}

// TestCheckRejectsCorruptExport: -check exits 1 on a malformed file.
func TestCheckRejectsCorruptExport(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI("-check", bad); code != 1 || stderr == "" {
		t.Errorf("check on corrupt export: exit %d stderr %q, want 1 + diagnostic", code, stderr)
	}
}

// TestAnalyseMalformedJSONL: the line-numbered ReadJSONL diagnostic
// surfaces through the CLI.
func TestAnalyseMalformedJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.jsonl")
	content := `{"at":0,"kind":"hw-vsync","frame":-1}` + "\n" + `{"at":1,` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "line 2") {
		t.Errorf("stderr %q lacks the failing line number", stderr)
	}
}
