// Package report renders experiment results as aligned text tables, CSV,
// and simple ASCII charts — the output layer for cmd/dvbench and the
// benchmark harness.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title is printed above the table.
	Title string
	// Note is an optional caption (methodology, paper reference).
	Note string
	// Columns are the header labels.
	Columns []string
	// Rows hold the cells; each row must match len(Columns).
	Rows [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row of %d cells in %d-column table %q",
			len(cells), len(t.Columns), t.Title))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly: two decimals, trimming to a
// sensible width for table cells. NaN — the metrics package's empty-sample
// marker — renders as "n/a" so an absent measurement can never be read as
// a real value.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e7:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (quoting cells that need
// it).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

// Bars renders a labelled horizontal ASCII bar chart; maxWidth is the bar
// length of the largest value.
func Bars(w io.Writer, title string, labels []string, values []float64, maxWidth int) {
	if len(labels) != len(values) {
		panic("report: labels/values mismatch")
	}
	if maxWidth <= 0 {
		maxWidth = 50
	}
	max := 0.0
	lw := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > lw {
			lw = len(labels[i])
		}
	}
	if title != "" {
		fmt.Fprintf(w, "== %s ==\n", title)
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(maxWidth))
		}
		fmt.Fprintf(w, "%s  %s %s\n", pad(labels[i], lw), pad(strings.Repeat("#", n), maxWidth), FormatFloat(v))
	}
}
