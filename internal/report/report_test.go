package report

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"name", "value"},
	}
	t.AddRow("alpha", 1.5)
	t.AddRow("beta", 123456.789)
	t.AddRow("gamma", "text")
	return t
}

func TestAddRowTypes(t *testing.T) {
	tb := sampleTable()
	if tb.Rows[0][1] != "1.50" {
		t.Errorf("float cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[2][1] != "text" {
		t.Errorf("string cell = %q", tb.Rows[2][1])
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tb := &Table{Title: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestRenderAligned(t *testing.T) {
	out := sampleTable().String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 3 rows + note
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: the value column starts at the same offset everywhere.
	header := lines[1]
	idx := strings.Index(header, "value")
	for _, l := range lines[3:6] {
		cell := l[idx:]
		if strings.HasPrefix(cell, " ") {
			t.Errorf("misaligned row %q", l)
		}
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,y", `quote"inside`)
	tb.CSV(&b)
	want := "a,b\n\"x,y\",\"quote\"\"inside\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:        "0.00",
		1.234:    "1.23",
		99.99:    "99.99",
		123.456:  "123.5",
		12345678: "1.23e+07",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	Bars(&b, "chart", []string{"a", "bb"}, []float64{2, 4}, 10)
	out := b.String()
	if !strings.Contains(out, "== chart ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "##########") {
		t.Error("largest bar should reach max width")
	}
	if !strings.Contains(out, "#####") {
		t.Error("half bar missing")
	}
}

func TestBarsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bars(&strings.Builder{}, "", []string{"a"}, nil, 10)
}
