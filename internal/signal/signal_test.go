package signal

import (
	"testing"

	"dvsync/internal/event"
	"dvsync/internal/simtime"
)

func TestZeroOffsetDeliversSynchronously(t *testing.T) {
	e := event.NewEngine()
	d := NewDistributor(e, nil)
	var got []Event
	d.Subscribe(VSyncApp, func(ev Event) { got = append(got, ev) })
	d.OnHWEdge(100, 7, 16)
	if len(got) != 1 {
		t.Fatalf("delivered %d events", len(got))
	}
	ev := got[0]
	if ev.At != 100 || ev.HWEdge != 100 || ev.EdgeSeq != 7 || ev.Period != 16 || ev.Kind != VSyncApp {
		t.Errorf("event %+v", ev)
	}
}

func TestOffsetDelaysDelivery(t *testing.T) {
	e := event.NewEngine()
	d := NewDistributor(e, map[Kind]simtime.Duration{VSyncRS: 500})
	var at simtime.Time
	d.Subscribe(VSyncRS, func(ev Event) { at = ev.At })
	e.At(100, event.PriorityHardware, func(now simtime.Time) { d.OnHWEdge(now, 0, 16) })
	e.RunAll()
	if at != 600 {
		t.Errorf("delivered at %v, want 600", at)
	}
}

func TestNoListenersNoEvents(t *testing.T) {
	e := event.NewEngine()
	d := NewDistributor(e, map[Kind]simtime.Duration{VSyncSF: 100})
	d.OnHWEdge(0, 0, 16)
	if e.Pending() != 0 {
		t.Errorf("%d events scheduled with no listeners", e.Pending())
	}
}

func TestInjectDVSync(t *testing.T) {
	e := event.NewEngine()
	d := NewDistributor(e, nil)
	var got []Event
	d.Subscribe(DVSync, func(ev Event) { got = append(got, ev) })
	d.InjectDVSync(250, 200, 12, 16)
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].Kind != DVSync || got[0].At != 250 || got[0].HWEdge != 200 {
		t.Errorf("event %+v", got[0])
	}
	if d.Delivered(DVSync) != 1 {
		t.Errorf("Delivered = %d", d.Delivered(DVSync))
	}
}

func TestMultipleSubscribers(t *testing.T) {
	e := event.NewEngine()
	d := NewDistributor(e, nil)
	n := 0
	d.Subscribe(VSyncApp, func(Event) { n++ })
	d.Subscribe(VSyncApp, func(Event) { n++ })
	d.OnHWEdge(0, 0, 16)
	if n != 2 {
		t.Errorf("fan-out delivered %d", n)
	}
}

func TestNegativeOffsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative offset")
		}
	}()
	NewDistributor(event.NewEngine(), map[Kind]simtime.Duration{VSyncApp: -1})
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		VSyncApp: "VSync-app", VSyncRS: "VSync-rs", VSyncSF: "VSync-sf", DVSync: "D-VSync",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
