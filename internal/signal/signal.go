// Package signal implements the VSync signal distributor: the software
// layer that turns hardware VSync edges into the per-stage software signals
// (VSync-app, VSync-rs, VSync-sf) that drive the classic rendering pipeline
// (§2), and that D-VSync bypasses with its own D-VSync events (§4.1).
//
// Each software signal fires at a fixed offset after the hardware edge, at
// the configured divisor of the hardware rate. Subscribers receive the
// signal timestamp plus the hardware edge it derives from.
package signal

import (
	"fmt"

	"dvsync/internal/event"
	"dvsync/internal/simtime"
)

// Kind identifies a software VSync signal.
type Kind int

// Software VSync signal kinds.
const (
	// VSyncApp triggers the app UI thread (input handling + UI logic).
	VSyncApp Kind = iota
	// VSyncRS triggers the render service / render thread.
	VSyncRS
	// VSyncSF triggers surface compositing (SurfaceFlinger on Android).
	VSyncSF
	// DVSync is the decoupled event injected by the Frame Pre-Executor.
	DVSync
)

// String names the signal like the paper's figures.
func (k Kind) String() string {
	switch k {
	case VSyncApp:
		return "VSync-app"
	case VSyncRS:
		return "VSync-rs"
	case VSyncSF:
		return "VSync-sf"
	case DVSync:
		return "D-VSync"
	}
	return fmt.Sprintf("signal(%d)", int(k))
}

// Event is a delivered signal.
type Event struct {
	// Kind is the signal type.
	Kind Kind
	// At is the delivery timestamp.
	At simtime.Time
	// HWEdge is the hardware VSync edge this signal derives from (for
	// D-VSync events, the most recent edge before injection).
	HWEdge simtime.Time
	// EdgeSeq is the hardware edge index.
	EdgeSeq uint64
	// Period is the refresh period in force.
	Period simtime.Duration
}

// Listener receives signal events.
type Listener func(Event)

// pendingDelivery is one scheduled-but-undelivered offset signal, tracked so
// a checkpoint can capture the delayed deliveries in flight.
type pendingDelivery struct {
	ev Event
	id event.ID
}

// Distributor fans hardware edges out to offset software signals.
type Distributor struct {
	engine    *event.Engine
	offsets   map[Kind]simtime.Duration
	listeners map[Kind][]Listener
	delivered map[Kind]uint64
	delay     func(k Kind, at simtime.Time) simtime.Duration
	pending   []*pendingDelivery
}

// NewDistributor creates a distributor with the given per-signal offsets.
// A missing offset defaults to zero (the signal fires at the edge itself).
func NewDistributor(e *event.Engine, offsets map[Kind]simtime.Duration) *Distributor {
	d := &Distributor{
		engine:    e,
		offsets:   make(map[Kind]simtime.Duration),
		listeners: make(map[Kind][]Listener),
		delivered: make(map[Kind]uint64),
	}
	for k, off := range offsets {
		if off < 0 {
			panic(fmt.Sprintf("signal: negative offset for %v", k))
		}
		d.offsets[k] = off
	}
	return d
}

// Subscribe registers a listener for one signal kind.
func (d *Distributor) Subscribe(k Kind, l Listener) {
	d.listeners[k] = append(d.listeners[k], l)
}

// Offset returns the configured offset of a signal.
func (d *Distributor) Offset(k Kind) simtime.Duration { return d.offsets[k] }

// SetDelay installs a per-delivery delay hook — the fault-injection point
// for clock drift between the panel and the software VSync distributor
// (internal/fault). Negative return values are ignored; the hook only ever
// postpones a signal past its nominal offset.
func (d *Distributor) SetDelay(fn func(k Kind, at simtime.Time) simtime.Duration) {
	d.delay = fn
}

// Delivered returns how many events of kind k have been delivered.
func (d *Distributor) Delivered(k Kind) uint64 { return d.delivered[k] }

// Reset clears the delivery counters and the delayed-delivery in-flight
// list. Subscriptions, offsets and the delay hook persist; the caller's
// engine reset has already dropped any scheduled deliveries.
func (d *Distributor) Reset() {
	clear(d.delivered)
	for i := range d.pending {
		d.pending[i] = nil
	}
	d.pending = d.pending[:0]
}

// fanoutKinds are the software signals derived from each hardware edge, in
// delivery order. Hoisted so OnHWEdge does not rebuild the slice per edge.
var fanoutKinds = [...]Kind{VSyncApp, VSyncRS, VSyncSF}

// OnHWEdge is wired to the panel: for each hardware edge it schedules the
// offset software signals. Register it with Panel.OnEdge.
//
//dvlint:hotpath runs once per hardware VSync edge
func (d *Distributor) OnHWEdge(now simtime.Time, seq uint64, period simtime.Duration) {
	for _, k := range fanoutKinds {
		ls := d.listeners[k]
		if len(ls) == 0 {
			continue
		}
		off := d.offsets[k]
		if d.delay != nil {
			if x := d.delay(k, now); x > 0 {
				off += x
			}
		}
		ev := Event{Kind: k, At: now.Add(off), HWEdge: now, EdgeSeq: seq, Period: period}
		if off == 0 {
			d.deliver(ev)
			continue
		}
		// A FIFO-plus-persistent-handler cannot replace this closure: the
		// fault delay hook makes per-kind delivery times non-monotone, so
		// dispatch order need not match schedule order. Zero-offset signals
		// (the steady-state benchmark path) never reach here. The entry is
		// tracked in d.pending so checkpoints capture deliveries in flight.
		//dvlint:ignore hotalloc delayed delivery must capture its event; only non-zero-offset configs pay it
		pe := &pendingDelivery{ev: ev}
		//dvlint:ignore hotalloc same non-zero-offset-only path as the entry above
		pe.id = d.engine.At(ev.At, event.PrioritySignal, func(simtime.Time) { d.deliverPending(pe) })
		d.pending = append(d.pending, pe)
	}
}

// deliverPending removes a delayed delivery from the in-flight list and
// delivers it. The list is at most a few entries (one per offset signal per
// outstanding edge), so the removal scan is cheap.
//
//dvlint:hotpath runs once per delayed software signal
func (d *Distributor) deliverPending(pe *pendingDelivery) {
	for i, q := range d.pending {
		if q == pe {
			copy(d.pending[i:], d.pending[i+1:])
			d.pending[len(d.pending)-1] = nil
			d.pending = d.pending[:len(d.pending)-1]
			break
		}
	}
	d.deliver(pe.ev)
}

// InjectDVSync delivers a decoupled D-VSync event immediately. The FPE calls
// this when it decides pre-rendering is feasible (§4.3).
func (d *Distributor) InjectDVSync(now, hwEdge simtime.Time, edgeSeq uint64, period simtime.Duration) {
	d.deliver(Event{Kind: DVSync, At: now, HWEdge: hwEdge, EdgeSeq: edgeSeq, Period: period})
}

func (d *Distributor) deliver(ev Event) {
	d.delivered[ev.Kind]++
	for _, l := range d.listeners[ev.Kind] {
		l(ev)
	}
}
