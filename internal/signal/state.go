package signal

import (
	"fmt"

	"dvsync/internal/event"
	"dvsync/internal/simtime"
)

// DeliveredCount is one kind's delivery counter (serialised as a sorted
// slice, never a map, so encoding order is deterministic).
type DeliveredCount struct {
	Kind  Kind   `json:"kind"`
	Count uint64 `json:"count"`
}

// PendingDelivery is one delayed software signal in flight at snapshot time.
type PendingDelivery struct {
	Ev    Event                `json:"ev"`
	Sched event.ScheduledEvent `json:"sched"`
}

// State is the distributor's serialisable checkpoint state.
type State struct {
	Delivered []DeliveredCount  `json:"delivered,omitempty"`
	Pending   []PendingDelivery `json:"pending,omitempty"`
}

// State captures the distributor for a checkpoint.
func (d *Distributor) State() (State, error) {
	var st State
	for _, k := range []Kind{VSyncApp, VSyncRS, VSyncSF, DVSync} {
		if n := d.delivered[k]; n > 0 {
			st.Delivered = append(st.Delivered, DeliveredCount{Kind: k, Count: n})
		}
	}
	for _, pe := range d.pending {
		sched, ok := d.engine.Lookup(pe.id)
		if !ok {
			return State{}, fmt.Errorf("signal: pending %v delivery has no scheduled event", pe.ev.Kind)
		}
		st.Pending = append(st.Pending, PendingDelivery{Ev: pe.ev, Sched: sched})
	}
	return st, nil
}

// Restore loads checkpointed state into a freshly constructed distributor
// and re-inserts the in-flight delayed deliveries.
func (d *Distributor) Restore(st State) error {
	if len(d.pending) != 0 {
		return fmt.Errorf("signal: restore into a used distributor")
	}
	for _, dc := range st.Delivered {
		if dc.Kind < VSyncApp || dc.Kind > DVSync {
			return fmt.Errorf("signal: restored delivery counter for unknown kind %d", int(dc.Kind))
		}
		d.delivered[dc.Kind] = dc.Count
	}
	for i := range st.Pending {
		p := st.Pending[i]
		if p.Ev.Kind < VSyncApp || p.Ev.Kind > DVSync {
			return fmt.Errorf("signal: restored pending delivery of unknown kind %d", int(p.Ev.Kind))
		}
		pe := &pendingDelivery{ev: p.Ev, id: p.Sched.ID}
		if err := d.engine.RestoreEvent(p.Sched, func(simtime.Time) { d.deliverPending(pe) }); err != nil {
			return fmt.Errorf("signal: %w", err)
		}
		d.pending = append(d.pending, pe)
	}
	return nil
}
