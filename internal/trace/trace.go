// Package trace records simulation runs as structured event logs — the
// equivalent of the Perfetto traces the paper's analysis is based on (§3.2)
// — and provides encoding and analysis passes over them.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dvsync/internal/simtime"
)

// SchemaVersion identifies the event vocabulary below. Version 1 is the
// seed vocabulary; version 2 added FrameUIDone (the UI→render stage split
// the observability layer reconstructs spans from); version 3 added the
// marker kinds FaultOnset, FaultEnd and DTVReAnchor, which put fault
// episodes and calibration re-anchors into the event stream itself so
// causal attribution (internal/obs Attribute) is a pure function of the
// trace. Consumers that persist or exchange traces embed this number
// (internal/obs stamps it into every Perfetto export) so a reader can
// tell which kinds it may encounter.
const SchemaVersion = 3

// EventKind classifies trace events.
type EventKind string

// Trace event kinds — the schema-versioned vocabulary. Every simulation
// event is one of these; internal/obs maps each recorded event into
// exactly one Perfetto span boundary, counter sample, or instant:
//
//	FrameStart → FrameUIDone → FrameQueued → FrameLatched → FramePresent
//
// bound the per-frame UI / render / queue-wait / display spans, while
// HWVSync, Jank, RateChange, Fallback and EdgeMissed describe the panel
// and supervisor.
const (
	// HWVSync is a hardware VSync edge.
	HWVSync EventKind = "hw-vsync"
	// FrameStart marks a frame's UI-stage begin.
	FrameStart EventKind = "frame-start"
	// FrameUIDone marks the UI stage handing off to the render service
	// (schema v2; absent from v1 traces, where the UI/render split is
	// unknown and span reconstruction merges the two stages).
	FrameUIDone EventKind = "frame-ui-done"
	// FrameQueued marks a rendered buffer entering the queue.
	FrameQueued EventKind = "frame-queued"
	// FrameLatched marks the panel latching a buffer.
	FrameLatched EventKind = "frame-latched"
	// FramePresent marks the present fence.
	FramePresent EventKind = "frame-present"
	// Jank marks a repeated-frame edge.
	Jank EventKind = "jank"
	// RateChange marks an LTPO refresh-rate switch.
	RateChange EventKind = "rate-change"
	// Fallback marks a supervised runtime switch between D-VSync and VSync
	// (the §4.5 channel driven by the health monitor).
	Fallback EventKind = "fallback"
	// EdgeMissed marks a refresh the panel skipped under an injected
	// missed-VSync fault.
	EdgeMissed EventKind = "edge-missed"
	// FaultOnset marks an injected fault episode opening (schema v3). The
	// Detail field carries "class=<name> episode=<index> severity=<s>" so
	// attribution can name the episode without reaching outside the trace.
	FaultOnset EventKind = "fault-onset"
	// FaultEnd marks a fault episode closing (schema v3); Detail carries
	// "class=<name> episode=<index>".
	FaultEnd EventKind = "fault-end"
	// DTVReAnchor marks the DTV calibration-error bound forcing a re-anchor
	// of the decoupled timestamp stream (schema v3).
	DTVReAnchor EventKind = "dtv-reanchor"
)

// Event is one trace record. Fields are denormalised for easy filtering.
type Event struct {
	// At is the event timestamp (ns on the simulation clock).
	At simtime.Time `json:"at"`
	// Kind is the event type.
	Kind EventKind `json:"kind"`
	// Frame is the frame sequence number (-1 when not frame-related).
	Frame int `json:"frame"`
	// Decoupled marks FPE-triggered frames.
	Decoupled bool `json:"decoupled,omitempty"`
	// DTimestamp is the issued display prediction (0 on the VSync path).
	DTimestamp simtime.Time `json:"dts,omitempty"`
	// EdgeSeq is the panel edge index for edge-aligned events.
	EdgeSeq uint64 `json:"edge,omitempty"`
	// Hz is the refresh rate for RateChange events.
	Hz int `json:"hz,omitempty"`
	// Detail carries event-specific context (fallback direction and reason).
	Detail string `json:"detail,omitempty"`
}

// Sink is the event-capture interface the simulator drives: the plain
// append-everything Recorder and internal/flight's fixed-capacity ring
// both implement it. Add must accept events in non-decreasing time order;
// Events returns the retained window oldest-first (a ring may retain
// fewer events than were added); Restore replaces the retained window
// from checkpointed state and, unlike Add, reports out-of-order input as
// an error because restore paths consume untrusted bytes.
type Sink interface {
	Add(Event)
	Reserve(int)
	Reset()
	Restore(events []Event) error
	Events() []Event
	Len() int
}

// Recorder accumulates events in timestamp order (append order must be
// non-decreasing, which the single-threaded simulation guarantees).
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends one event.
//
//dvlint:hotpath called for every recorded simulation event
func (r *Recorder) Add(ev Event) {
	if n := len(r.events); n > 0 && ev.At < r.events[n-1].At {
		panic(fmt.Sprintf("trace: out-of-order event at %v after %v", ev.At, r.events[n-1].At))
	}
	r.events = append(r.events, ev)
}

// Reserve grows the recorder's capacity so the next n Add calls do not
// reallocate. Simulations know their frame count up front, so they can
// size the buffer once instead of letting append double it repeatedly.
//
//dvlint:hotpath sizing call on the recording path
func (r *Recorder) Reserve(n int) {
	if free := cap(r.events) - len(r.events); free >= n {
		return
	}
	//dvlint:ignore hotalloc Reserve is the preallocation point itself; it grows once so Add never does
	grown := make([]Event, len(r.events), len(r.events)+n)
	copy(grown, r.events)
	r.events = grown
}

// Reset discards recorded events while keeping the allocated buffer, so a
// recorder can be reused across runs without reallocating.
//
//dvlint:hotpath reused across runs on the recording path
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Restore replaces the recorder's contents with checkpointed events. The
// events must already be in non-decreasing time order — out-of-order input
// is an error, never a panic, because restore paths consume untrusted
// bytes.
func (r *Recorder) Restore(events []Event) error {
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return fmt.Errorf("trace: restored events out of order at %d", i)
		}
	}
	r.events = append(r.events[:0], events...)
	return nil
}

// Events returns the recorded events.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteJSONL encodes the trace as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteEventsJSONL(w, r.events)
}

// WriteEventsJSONL encodes an event slice as one JSON object per line —
// the same format WriteJSONL emits, available to any Sink's Events().
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL trace. Lines grow without bound (a bufio.Reader
// reassembles fragments, so no fixed token limit applies — large traces and
// future span payloads with long detail strings read fine), blank lines are
// skipped, and a malformed record reports its 1-based line number.
func ReadJSONL(rd io.Reader) (*Recorder, error) {
	r := NewRecorder()
	br := bufio.NewReader(rd)
	var partial []byte
	for line := 1; ; line++ {
		chunk, err := br.ReadBytes('\n')
		if len(chunk) > 0 {
			partial = append(partial, chunk...)
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("trace: line %d: read: %w", line, err)
		}
		done := err == io.EOF
		raw := bytes.TrimSpace(partial)
		if len(raw) > 0 {
			var ev Event
			if jerr := json.Unmarshal(raw, &ev); jerr != nil {
				return nil, fmt.Errorf("trace: line %d: malformed event: %w", line, jerr)
			}
			r.events = append(r.events, ev)
		}
		partial = partial[:0]
		if done {
			break
		}
	}
	sort.SliceStable(r.events, func(i, j int) bool { return r.events[i].At < r.events[j].At })
	return r, nil
}

// Summary is the analysis pass over a trace.
type Summary struct {
	// Events counts records by kind.
	Events map[EventKind]int
	// Frames is the number of distinct presented frames.
	Frames int
	// Janks is the repeated-frame count.
	Janks int
	// Span is first→last event time.
	Span simtime.Duration
	// MeanQueueLatency averages queued→latched per frame (ms).
	MeanQueueLatency float64
	// DecoupledShare is the fraction of started frames that were
	// FPE-triggered.
	DecoupledShare float64
}

// Summarize computes the analysis pass.
func Summarize(r *Recorder) Summary {
	s := Summary{Events: map[EventKind]int{}}
	if r.Len() == 0 {
		return s
	}
	queued := map[int]simtime.Time{}
	var waitSum simtime.Duration
	var waits int
	starts, decoupled := 0, 0
	for _, ev := range r.events {
		s.Events[ev.Kind]++
		switch ev.Kind {
		case FrameStart:
			starts++
			if ev.Decoupled {
				decoupled++
			}
		case FrameQueued:
			queued[ev.Frame] = ev.At
		case FrameLatched:
			if q, ok := queued[ev.Frame]; ok {
				waitSum += ev.At.Sub(q)
				waits++
			}
		case FramePresent:
			s.Frames++
		case Jank:
			s.Janks++
		}
	}
	s.Span = r.events[len(r.events)-1].At.Sub(r.events[0].At)
	if waits > 0 {
		s.MeanQueueLatency = float64(waitSum) / float64(waits) / float64(simtime.Millisecond)
	}
	if starts > 0 {
		s.DecoupledShare = float64(decoupled) / float64(starts)
	}
	return s
}

// RenderTimeline draws an ASCII view of the trace: one column per VSync
// period, lanes for frame starts and the latch/jank stream — the quick
// visual graphics engineers get from Perfetto, in the terminal.
func RenderTimeline(r *Recorder, maxCols int) string {
	if r.Len() == 0 {
		return "(empty trace)\n"
	}
	if maxCols <= 0 {
		maxCols = 100
	}
	// Derive the period from consecutive HW edges.
	var edges []simtime.Time
	for _, ev := range r.events {
		if ev.Kind == HWVSync {
			edges = append(edges, ev.At)
		}
	}
	if len(edges) < 2 {
		return "(no VSync edges in trace)\n"
	}
	period := edges[1].Sub(edges[0])
	cols := len(edges)
	if cols > maxCols {
		cols = maxCols
	}
	col := func(t simtime.Time) (int, bool) {
		c := int(t.Sub(edges[0]) / simtime.Duration(period))
		if c < 0 || c >= cols {
			return 0, false
		}
		return c, true
	}
	exec := bytesOf(cols)
	disp := bytesOf(cols)
	for _, ev := range r.events {
		c, ok := col(ev.At)
		if !ok {
			continue
		}
		switch ev.Kind {
		case FrameStart:
			mark := byte('e')
			if ev.Decoupled {
				mark = 'd'
			}
			if exec[c] == '.' || exec[c] == 'e' {
				exec[c] = mark
			}
		case FrameLatched:
			disp[c] = '#'
		case Jank:
			disp[c] = 'J'
		case RateChange:
			disp[c] = 'R'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "period %.3fms, %d columns (one per VSync period)\n",
		period.Milliseconds(), cols)
	fmt.Fprintf(&b, "execute %s\n", exec)
	fmt.Fprintf(&b, "display %s\n", disp)
	b.WriteString("legend: e frame start, d decoupled start, # latch, J jank, R rate change\n")
	return b.String()
}

func bytesOf(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = '.'
	}
	return out
}
