package trace

import (
	"bytes"
	"strings"
	"testing"

	"dvsync/internal/simtime"
)

func sample() *Recorder {
	r := NewRecorder()
	r.Add(Event{At: 0, Kind: HWVSync, Frame: -1, EdgeSeq: 0, Hz: 60})
	r.Add(Event{At: 100, Kind: FrameStart, Frame: 0, Decoupled: true, DTimestamp: 5000})
	r.Add(Event{At: 900, Kind: FrameQueued, Frame: 0, Decoupled: true})
	r.Add(Event{At: 1000, Kind: HWVSync, Frame: -1, EdgeSeq: 1, Hz: 60})
	r.Add(Event{At: 1000, Kind: FrameLatched, Frame: 0, EdgeSeq: 1})
	r.Add(Event{At: 2000, Kind: FramePresent, Frame: 0})
	r.Add(Event{At: 3000, Kind: Jank, Frame: -1, EdgeSeq: 2})
	r.Add(Event{At: 4000, Kind: RateChange, Frame: -1, Hz: 90})
	return r
}

func TestRecorderOrdering(t *testing.T) {
	r := NewRecorder()
	r.Add(Event{At: 10, Kind: HWVSync, Frame: -1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order event")
		}
	}()
	r.Add(Event{At: 5, Kind: HWVSync, Frame: -1})
}

func TestJSONLRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != r.Len() {
		t.Errorf("wrote %d lines for %d events", lines, r.Len())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), r.Len())
	}
	for i, ev := range back.Events() {
		if ev != r.Events()[i] {
			t.Errorf("event %d differs: %+v vs %+v", i, ev, r.Events()[i])
		}
	}
}

func TestReadJSONLGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

// TestReadJSONLLongLine: regression for the bufio.Scanner token limit —
// a single event line far beyond 64 KiB must round-trip, not error out.
func TestReadJSONLLongLine(t *testing.T) {
	r := NewRecorder()
	r.Add(Event{At: 1, Kind: Fallback, Frame: -1,
		Detail: "to=VSync reason=" + strings.Repeat("x", 256<<10)})
	r.Add(Event{At: 2, Kind: HWVSync, Frame: -1})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("long line rejected: %v", err)
	}
	if back.Len() != 2 || back.Events()[0] != r.Events()[0] {
		t.Fatalf("long line mangled: %d events", back.Len())
	}
}

// TestReadJSONLErrorLineNumber: malformed input names the failing line.
func TestReadJSONLErrorLineNumber(t *testing.T) {
	in := `{"at":1,"kind":"hw-vsync","frame":-1}
{"at":2,"kind":"hw-vsync","frame":-1}
{"at":3,"kind":`
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected decode error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
}

// TestReadJSONLNoTrailingNewline: the final line parses even without a
// terminating newline, and blank lines are skipped without shifting the
// reported line numbers.
func TestReadJSONLNoTrailingNewline(t *testing.T) {
	in := "{\"at\":1,\"kind\":\"hw-vsync\",\"frame\":-1}\n\n{\"at\":2,\"kind\":\"hw-vsync\",\"frame\":-1}"
	r, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("parsed %d events, want 2", r.Len())
	}
	_, err = ReadJSONL(strings.NewReader("{\"at\":1,\"kind\":\"hw-vsync\",\"frame\":-1}\n\nbogus"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not name line 3", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if s.Frames != 1 {
		t.Errorf("Frames = %d", s.Frames)
	}
	if s.Janks != 1 {
		t.Errorf("Janks = %d", s.Janks)
	}
	if s.Events[HWVSync] != 2 {
		t.Errorf("edges = %d", s.Events[HWVSync])
	}
	if s.Span != simtime.Duration(4000) {
		t.Errorf("Span = %v", s.Span)
	}
	// Frame 0 waited 100ns queued→latched.
	if s.MeanQueueLatency <= 0 {
		t.Errorf("MeanQueueLatency = %v", s.MeanQueueLatency)
	}
	if s.DecoupledShare != 1 {
		t.Errorf("DecoupledShare = %v", s.DecoupledShare)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(NewRecorder())
	if s.Frames != 0 || s.Janks != 0 || s.Span != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestRenderTimeline(t *testing.T) {
	r := NewRecorder()
	p := int64(16666666)
	for i := int64(0); i < 6; i++ {
		r.Add(Event{At: simtime.Time(i * p), Kind: HWVSync, Frame: -1, EdgeSeq: uint64(i)})
		if i == 3 {
			r.Add(Event{At: simtime.Time(i * p), Kind: Jank, Frame: -1, EdgeSeq: uint64(i)})
		} else if i > 0 {
			r.Add(Event{At: simtime.Time(i * p), Kind: FrameLatched, Frame: int(i)})
		}
		r.Add(Event{At: simtime.Time(i*p + p/4), Kind: FrameStart, Frame: int(i), Decoupled: i%2 == 0})
	}
	out := RenderTimeline(r, 100)
	if !strings.Contains(out, "J") {
		t.Error("jank missing from timeline")
	}
	if !strings.Contains(out, "#") {
		t.Error("latches missing from timeline")
	}
	if !strings.Contains(out, "d") || !strings.Contains(out, "e") {
		t.Error("frame-start lane missing kinds")
	}
}

func TestRenderTimelineDegenerate(t *testing.T) {
	if out := RenderTimeline(NewRecorder(), 10); !strings.Contains(out, "empty") {
		t.Errorf("empty trace rendering: %q", out)
	}
	r := NewRecorder()
	r.Add(Event{At: 0, Kind: HWVSync, Frame: -1})
	if out := RenderTimeline(r, 10); !strings.Contains(out, "no VSync edges") {
		t.Errorf("single-edge rendering: %q", out)
	}
}
