package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL feeds arbitrary bytes to the JSONL trace reader: malformed
// lines, truncated fragments and oversized inputs must come back as errors
// (or parse), never as panics — dvsim -resume and external tooling hand
// this reader untrusted files.
func FuzzReadJSONL(f *testing.F) {
	rec := NewRecorder()
	rec.Add(Event{At: 0, Kind: HWVSync, Frame: -1, EdgeSeq: 1, Hz: 60})
	rec.Add(Event{At: 100, Kind: FrameStart, Frame: 0, Decoupled: true})
	rec.Add(Event{At: 200, Kind: FrameLatched, Frame: 0, EdgeSeq: 2})
	var good bytes.Buffer
	if err := rec.WriteJSONL(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"at":1,"kind":"hw-vsync","frame":-1}`)
	f.Add(`{"at":"not a number"}`)
	f.Add("{\"at\":1}\n{\"at\":")
	f.Add(`[1,2,3]`)
	f.Add(strings.Repeat(`{"at":1,"kind":"jank","frame":-1}`+"\n", 64))
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, data string) {
		out, err := ReadJSONL(strings.NewReader(data))
		if err != nil {
			return
		}
		// Parsed traces must satisfy the recorder's ordering invariant:
		// re-encoding and re-reading must succeed.
		var buf bytes.Buffer
		if err := out.WriteJSONL(&buf); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		if _, err := ReadJSONL(&buf); err != nil {
			t.Fatalf("re-read of accepted trace failed: %v", err)
		}
	})
}
