package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dvsync/internal/simtime"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", what)
		}
	}()
	fn()
}

func TestRegistration(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "a")
	g := r.Gauge("b", "b")
	h := r.Histogram("c", "c", []float64{1, 2})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	c.Inc()
	c.Add(2)
	g.Set(-4)
	h.Observe(1.5)
	if c.Value() != 3 || g.Value() != -4 || h.Count() != 1 {
		t.Errorf("values: counter %v gauge %v hist n %d", c.Value(), g.Value(), h.Count())
	}

	mustPanic(t, "duplicate name", func() { r.Gauge("a_total", "dup") })
	mustPanic(t, "invalid name", func() { r.Gauge("7bad", "") })
	mustPanic(t, "invalid char", func() { r.Gauge("bad-name", "") })
	mustPanic(t, "negative counter delta", func() { c.Add(-1) })
	mustPanic(t, "empty bounds", func() { r.Histogram("d", "", nil) })
	mustPanic(t, "non-increasing bounds", func() { r.Histogram("e", "", []float64{1, 1}) })

	r.Sample(0)
	mustPanic(t, "register after sample", func() { r.Counter("late_total", "") })
	mustPanic(t, "time going backwards", func() { r.Sample(-1) })
}

// TestHistogramBuckets pins the inclusive le semantics: a value equal to a
// bound lands in that bound's bucket, values past the last bound in +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5} {
		h.Observe(v)
	}
	want := []uint64{2, 4, 5, 6} // cumulative: le=1, le=2, le=4, +Inf
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for i, le := range []string{`le="1"`, `le="2"`, `le="4"`, `le="+Inf"`} {
		line := "h_bucket{" + le + "} "
		idx := strings.Index(got, line)
		if idx < 0 {
			t.Fatalf("exposition lacks %q:\n%s", line, got)
		}
		rest := got[idx+len(line):]
		end := strings.IndexByte(rest, '\n')
		if rest[:end] != uintString(want[i]) {
			t.Errorf("%s = %s, want %d", le, rest[:end], want[i])
		}
	}
	if !strings.Contains(got, "h_sum 14") || !strings.Contains(got, "h_count 6") {
		t.Errorf("sum/count missing:\n%s", got)
	}
}

func uintString(v uint64) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestSampleSeries: columns freeze in registration order, rows carry
// counter totals, gauge values and histogram counts.
func TestSampleSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10})

	c.Inc()
	g.Set(3)
	r.Sample(simtime.Time(100))
	c.Inc()
	h.Observe(1)
	h.Observe(2)
	r.Sample(simtime.Time(200))
	r.Sample(simtime.Time(200)) // equal instants allowed

	s := r.Series()
	if want := []string{"c_total", "g", "h"}; len(s.Columns) != 3 ||
		s.Columns[0] != want[0] || s.Columns[1] != want[1] || s.Columns[2] != want[2] {
		t.Fatalf("columns %v, want %v", s.Columns, want)
	}
	if len(s.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(s.Rows))
	}
	if v := s.Rows[0].Values; v[0] != 1 || v[1] != 3 || v[2] != 0 {
		t.Errorf("row 0 = %v", v)
	}
	if v := s.Rows[1].Values; v[0] != 2 || v[1] != 3 || v[2] != 2 {
		t.Errorf("row 1 = %v", v)
	}
	if at, ok := r.LastSampleAt(); !ok || at != 200 {
		t.Errorf("LastSampleAt = %v, %v", at, ok)
	}
}

// TestOnSampleHook: the streaming tap sees every row, in order.
func TestOnSampleHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	var got []float64
	r.OnSample(func(row SampleRow) { got = append(got, row.Values[0]) })
	for i := 1; i <= 3; i++ {
		g.Set(float64(i))
		r.Sample(simtime.Time(i))
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("hook saw %v", got)
	}
}

// TestWindowRate pins the shared windowed-rate semantics: start-truncated
// window, inclusive cut, pruning.
func TestWindowRate(t *testing.T) {
	w := NewWindowRate(500 * simtime.Millisecond)
	if got := w.Rate(0); got != 0 {
		t.Errorf("rate at t=0 = %v, want 0 (degenerate window)", got)
	}
	w.Observe(0)
	if got := w.Rate(0); got != 0 {
		t.Errorf("rate at t=0 with event = %v, want 0", got)
	}
	// Truncated window: one event in 100ms → 10/s.
	if got := w.Rate(simtime.Time(100 * simtime.Millisecond)); got != 10 {
		t.Errorf("truncated rate = %v, want 10", got)
	}
	// Full window: the t=0 event sits exactly on the cut at t=500ms —
	// inclusive, still counted.
	if got := w.Rate(simtime.Time(500 * simtime.Millisecond)); got != 2 {
		t.Errorf("rate at cut boundary = %v, want 2", got)
	}
	// One ns later it slides out.
	if got := w.Rate(simtime.Time(500*simtime.Millisecond) + 1); got != 0 {
		t.Errorf("rate past cut = %v, want 0", got)
	}
	mustPanic(t, "non-positive window", func() { NewWindowRate(0) })
}

// TestFDPSWindowsAgree pins telemetry's window to the health default so
// the live gauge, the watchdog and the obs track measure the same
// quantity. (obs.FDPSWindow equality is pinned in the obs bridge test.)
func TestFDPSWindowsAgree(t *testing.T) {
	if FDPSWindow != 500*simtime.Millisecond {
		t.Errorf("FDPSWindow = %v, want 500ms (health default window)", FDPSWindow)
	}
}

// TestWritersDeterministic: identical registry states produce
// byte-identical Prometheus and JSON output, sorted by name.
func TestWritersDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Registered out of name order on purpose.
		b := r.Gauge("zz_gauge", "last registered, first updated")
		a := r.Counter("aa_total", "first in sort order")
		h := r.Histogram("mm_hist", "middle", []float64{0.5, 1.5})
		b.Set(2.5)
		a.Add(7)
		h.Observe(1)
		h.Observe(9)
		r.Sample(simtime.Time(1000))
		return r
	}
	var p1, p2, j1, j2 bytes.Buffer
	if err := build().WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	build().WritePrometheus(&p2)
	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	build().WriteJSON(&j2)
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Error("Prometheus expositions differ between identical builds")
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSON snapshots differ between identical builds")
	}
	// Sorted order: aa before mm before zz.
	text := p1.String()
	if !(strings.Index(text, "aa_total") < strings.Index(text, "mm_hist") &&
		strings.Index(text, "mm_hist") < strings.Index(text, "zz_gauge")) {
		t.Errorf("exposition not name-sorted:\n%s", text)
	}

	var snap Snapshot
	if err := json.Unmarshal(j1.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if snap.Schema != SnapshotSchemaVersion || snap.AtNs != 1000 {
		t.Errorf("snapshot header schema=%d at=%d", snap.Schema, snap.AtNs)
	}
	if len(snap.Metrics) != 3 || snap.Metrics[0].Name != "aa_total" {
		t.Errorf("snapshot metrics %+v", snap.Metrics)
	}
	if len(snap.Series.Rows) != 1 || snap.Series.Rows[0].AtNs != 1000 {
		t.Errorf("snapshot series %+v", snap.Series)
	}
}

// sampleScript drives one fixed instrument sequence and returns the
// registry's JSON export.
func sampleScript(t *testing.T, r *Registry, c *Counter, g *Gauge) []byte {
	t.Helper()
	for i := 1; i <= 5; i++ {
		c.Add(float64(i))
		g.Set(float64(10 * i))
		r.Sample(simtime.Time(i) * simtime.Time(simtime.Millisecond))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestRegistryResetReplaysIdentically checks the run-reuse contract: a
// Reset registry replays an identical instrument script into a byte-
// identical export, with the frozen column order preserved.
func TestRegistryResetReplaysIdentically(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames", "frames")
	g := r.Gauge("depth", "depth")
	first := sampleScript(t, r, c, g)
	r.Reset()
	second := sampleScript(t, r, c, g)
	if !bytes.Equal(first, second) {
		t.Errorf("reset replay export differs:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// TestReserveMakesSamplingAllocationFree checks the ring contract: after
// Reserve sized the ring, a full sample script allocates nothing, and on
// a Reset registry the recycled slots keep it that way.
func TestReserveMakesSamplingAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames", "frames")
	r.Reserve(16)
	r.Sample(0) // freeze columns outside the measurement
	now := simtime.Time(simtime.Millisecond)
	if avg := testing.AllocsPerRun(10, func() {
		c.Inc()
		r.Sample(now)
		now += simtime.Time(simtime.Millisecond)
	}); avg > 0 {
		t.Errorf("reserved Sample allocates %v per row, want 0", avg)
	}
	r.Reset()
	now = 0
	if avg := testing.AllocsPerRun(10, func() {
		c.Inc()
		r.Sample(now)
		now += simtime.Time(simtime.Millisecond)
	}); avg > 0 {
		t.Errorf("recycled Sample allocates %v per row after Reset, want 0", avg)
	}
}

// TestSampleGrowsPastReservation checks that the ring never drops rows:
// sampling past the reserved capacity appends instead of overwriting.
func TestSampleGrowsPastReservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames", "frames")
	r.Reserve(2)
	for i := 0; i < 7; i++ {
		c.Inc()
		r.Sample(simtime.Time(i) * simtime.Time(simtime.Millisecond))
	}
	rows := r.Series().Rows
	if len(rows) != 7 {
		t.Fatalf("sampled %d rows past a 2-row reservation, want 7", len(rows))
	}
	for i, row := range rows {
		if got := row.Values[0]; got != float64(i+1) {
			t.Errorf("row %d counter = %v, want %d", i, got, i+1)
		}
	}
}
