package telemetry

import (
	"fmt"

	"dvsync/internal/simtime"
)

// MetricState is one instrument's serialisable checkpoint state. Counters
// and gauges store their scalar in Value; histograms store the per-bucket
// counts (parallel to the registered bounds plus the +Inf bucket), the sum
// and the observation count. Bounds themselves are configuration — the
// resume side re-registers the same instruments before restoring.
type MetricState struct {
	Name   string   `json:"name"`
	Value  float64  `json:"value,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
	Sum    float64  `json:"sum,omitempty"`
	N      uint64   `json:"n,omitempty"`
}

// RowState is one serialised time-series row.
type RowState struct {
	At     simtime.Time `json:"at"`
	Values []float64    `json:"values"`
}

// RegistryState is the registry's serialisable checkpoint state.
type RegistryState struct {
	Frozen  bool          `json:"frozen,omitempty"`
	Columns []string      `json:"columns,omitempty"`
	Rows    []RowState    `json:"rows,omitempty"`
	Metrics []MetricState `json:"metrics,omitempty"`
}

// State captures the registry for a checkpoint, metrics in registration
// order.
func (r *Registry) State() RegistryState {
	st := RegistryState{Frozen: r.frozen}
	if len(r.series.Columns) > 0 {
		st.Columns = append([]string(nil), r.series.Columns...)
	}
	for _, row := range r.series.Rows {
		st.Rows = append(st.Rows, RowState{At: row.At, Values: append([]float64(nil), row.Values...)})
	}
	for _, m := range r.metrics {
		ms := MetricState{Name: m.name}
		switch m.kind {
		case KindCounter:
			ms.Value = m.counter.v
		case KindGauge:
			ms.Value = m.gauge.v
		default:
			ms.Counts = append([]uint64(nil), m.hist.counts...)
			ms.Sum = m.hist.sum
			ms.N = m.hist.n
		}
		st.Metrics = append(st.Metrics, ms)
	}
	return st
}

// RestoreState loads checkpointed state into a registry that has been wired
// exactly as the checkpointed run was: same instruments registered in the
// same order, no samples taken yet. Mismatches are errors, never panics —
// they mean the checkpoint does not belong to this configuration.
func (r *Registry) RestoreState(st RegistryState) error {
	if r.frozen || len(r.series.Rows) > 0 {
		return fmt.Errorf("telemetry: restore into a sampled registry")
	}
	if len(st.Metrics) != len(r.metrics) {
		return fmt.Errorf("telemetry: checkpoint has %d metrics, registry has %d", len(st.Metrics), len(r.metrics))
	}
	for i, ms := range st.Metrics {
		m := r.metrics[i]
		if ms.Name != m.name {
			return fmt.Errorf("telemetry: checkpoint metric %d is %q, registry has %q", i, ms.Name, m.name)
		}
		if m.kind == KindHistogram {
			if len(ms.Counts) != len(m.hist.counts) {
				return fmt.Errorf("telemetry: histogram %q has %d checkpointed buckets, expected %d", m.name, len(ms.Counts), len(m.hist.counts))
			}
		} else if len(ms.Counts) != 0 {
			return fmt.Errorf("telemetry: %s %q carries histogram buckets", m.kind, m.name)
		}
	}
	if st.Frozen {
		if len(st.Columns) != len(r.metrics) {
			return fmt.Errorf("telemetry: checkpoint has %d columns, registry has %d metrics", len(st.Columns), len(r.metrics))
		}
		for i, c := range st.Columns {
			if c != r.metrics[i].name {
				return fmt.Errorf("telemetry: checkpoint column %d is %q, registry has %q", i, c, r.metrics[i].name)
			}
		}
	} else if len(st.Columns) != 0 || len(st.Rows) != 0 {
		return fmt.Errorf("telemetry: unfrozen checkpoint carries series data")
	}
	for i, row := range st.Rows {
		if len(row.Values) != len(st.Columns) {
			return fmt.Errorf("telemetry: checkpoint row %d has %d values, expected %d", i, len(row.Values), len(st.Columns))
		}
		if i > 0 && row.At < st.Rows[i-1].At {
			return fmt.Errorf("telemetry: checkpoint rows out of time order at %d", i)
		}
	}
	for i, ms := range st.Metrics {
		m := r.metrics[i]
		switch m.kind {
		case KindCounter:
			m.counter.v = ms.Value
		case KindGauge:
			m.gauge.v = ms.Value
		default:
			copy(m.hist.counts, ms.Counts)
			m.hist.sum = ms.Sum
			m.hist.n = ms.N
		}
	}
	r.frozen = st.Frozen
	if st.Frozen {
		r.series.Columns = append([]string(nil), st.Columns...)
	}
	for _, row := range st.Rows {
		r.series.Rows = append(r.series.Rows, SampleRow{At: row.At, Values: append([]float64(nil), row.Values...)})
	}
	return nil
}

// State captures the rate tracker's retained event instants for a
// checkpoint.
func (w *WindowRate) State() []simtime.Time {
	if len(w.times) == 0 {
		return nil
	}
	return append([]simtime.Time(nil), w.times...)
}

// Restore loads checkpointed event instants into a fresh rate tracker.
func (w *WindowRate) Restore(times []simtime.Time) error {
	if len(w.times) != 0 {
		return fmt.Errorf("telemetry: restore into a used rate tracker")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return fmt.Errorf("telemetry: restored rate window out of order at %d", i)
		}
	}
	w.times = append(w.times, times...)
	return nil
}
