package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
)

// SnapshotSchemaVersion versions the JSON snapshot format.
const SnapshotSchemaVersion = 1

// Snapshot is the point-in-time JSON view of a registry: every metric's
// current state plus the sampled time series. All times are virtual-clock
// nanoseconds (exact integers, never floats) so downstream consumers — the
// obs bridge in particular — can match sample instants without rounding.
type Snapshot struct {
	// Schema is SnapshotSchemaVersion.
	Schema int `json:"schema"`
	// AtNs is the last sample instant (0 before any sample).
	AtNs int64 `json:"at_ns"`
	// Metrics lists current metric states sorted by name.
	Metrics []MetricSnapshot `json:"metrics"`
	// Series is the sampled time series.
	Series SeriesSnapshot `json:"series"`
}

// MetricSnapshot is one metric's state inside a Snapshot.
type MetricSnapshot struct {
	// Name and Help identify the metric.
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value is the counter total or gauge value (absent for histograms).
	Value float64 `json:"value"`
	// Sum / Count / Buckets describe a histogram (empty otherwise).
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	// LE is the inclusive upper bound, formatted like the Prometheus le
	// label ("+Inf" for the last bucket).
	LE string `json:"le"`
	// Count is the cumulative count of observations <= LE.
	Count uint64 `json:"count"`
}

// SeriesSnapshot is the sampled time series inside a Snapshot.
type SeriesSnapshot struct {
	// Columns names the metrics, in registration order.
	Columns []string `json:"columns"`
	// Rows lists sample rows in time order.
	Rows []RowSnapshot `json:"rows"`
}

// RowSnapshot is one sample row inside a Snapshot.
type RowSnapshot struct {
	// AtNs is the virtual-time sample instant in nanoseconds.
	AtNs int64 `json:"at_ns"`
	// Values holds one scalar per column.
	Values []float64 `json:"values"`
}

// fmtFloat renders a float the way both writers do: shortest
// representation that round-trips, identical on every platform.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jsonFloat renders v exactly as encoding/json would, except that
// non-finite values — which bare JSON cannot represent and json.Marshal
// rejects wholesale — encode as null. Percentiles over empty sample sets
// are legitimately NaN (metrics.Percentile), and one undefined column
// must not make a whole row or snapshot vanish from an export.
func jsonFloat(v float64) json.RawMessage {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.RawMessage("null")
	}
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // unreachable: finite floats always marshal
	}
	return b
}

// MarshalJSON encodes the row with non-finite values as null, keeping the
// byte-exact encoding of the reflection path for finite values.
func (r RowSnapshot) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16+12*len(r.Values))
	b = append(b, `{"at_ns":`...)
	b = strconv.AppendInt(b, r.AtNs, 10)
	b = append(b, `,"values":`...)
	if r.Values == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, v := range r.Values {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, jsonFloat(v)...)
		}
		b = append(b, ']')
	}
	return append(b, '}'), nil
}

// MarshalJSON encodes the metric with non-finite values as null; field
// set, order and omission rules match the plain struct encoding.
func (m MetricSnapshot) MarshalJSON() ([]byte, error) {
	type shadow struct {
		Name    string           `json:"name"`
		Help    string           `json:"help,omitempty"`
		Kind    string           `json:"kind"`
		Value   json.RawMessage  `json:"value"`
		Sum     json.RawMessage  `json:"sum,omitempty"`
		Count   uint64           `json:"count,omitempty"`
		Buckets []BucketSnapshot `json:"buckets,omitempty"`
	}
	s := shadow{Name: m.Name, Help: m.Help, Kind: m.Kind,
		Value: jsonFloat(m.Value), Count: m.Count, Buckets: m.Buckets}
	if m.Sum != 0 { // NaN compares unequal, so a poisoned sum still exports (as null)
		s.Sum = jsonFloat(m.Sum)
	}
	return json.Marshal(s)
}

// Snapshot captures the registry's current state. The result is detached:
// later updates to the registry do not modify it (series rows are copied
// by reference but never mutated in place).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Schema: SnapshotSchemaVersion,
		Series: SeriesSnapshot{
			Columns: append([]string(nil), r.series.Columns...),
			Rows:    make([]RowSnapshot, len(r.series.Rows)),
		},
	}
	if at, ok := r.LastSampleAt(); ok {
		s.AtNs = int64(at)
	}
	for i, row := range r.series.Rows {
		s.Series.Rows[i] = RowSnapshot{AtNs: int64(row.At), Values: row.Values}
	}
	s.Metrics = make([]MetricSnapshot, 0, len(r.metrics))
	for _, m := range r.sortedMetrics() {
		ms := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			ms.Value = m.counter.v
		case KindGauge:
			ms.Value = m.gauge.v
		case KindHistogram:
			h := m.hist
			ms.Sum, ms.Count = h.sum, h.n
			ms.Buckets = make([]BucketSnapshot, 0, len(h.counts))
			var cum uint64
			for i, c := range h.counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				ms.Buckets = append(ms.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
		}
		s.Metrics = append(s.Metrics, ms)
	}
	return s
}

// sortedMetrics returns the metrics in name order (the exposition order of
// both writers).
func (r *Registry) sortedMetrics() []*metric {
	out := append([]*metric(nil), r.metrics...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
// Field order is fixed by the struct definitions, floats use Go's shortest
// round-trip encoding: byte-identical for identical registry states.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and writes it as JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// WritePrometheus writes the text exposition format (version 0.0.4):
// HELP/TYPE headers, cumulative le-labelled buckets with _sum and _count
// for histograms, metrics in sorted-name order. Deterministic for
// identical registry states.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.sortedMetrics() {
		if m.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(m.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(m.name)
		bw.WriteByte(' ')
		bw.WriteString(m.kind.String())
		bw.WriteByte('\n')
		switch m.kind {
		case KindCounter, KindGauge:
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(fmtFloat(m.sampleValue()))
			bw.WriteByte('\n')
		case KindHistogram:
			h := m.hist
			var cum uint64
			for i, c := range h.counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				bw.WriteString(m.name)
				bw.WriteString(`_bucket{le="`)
				bw.WriteString(le)
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatUint(cum, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(m.name)
			bw.WriteString("_sum ")
			bw.WriteString(fmtFloat(h.sum))
			bw.WriteByte('\n')
			bw.WriteString(m.name)
			bw.WriteString("_count ")
			bw.WriteString(strconv.FormatUint(h.n, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
