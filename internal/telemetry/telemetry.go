// Package telemetry is the live, in-run metrics layer of the simulator:
// counters, gauges and fixed-bucket histograms registered at wiring time,
// updated from hooks on the hot path, and sampled into a time series on
// virtual-time intervals. It complements internal/obs — obs reconstructs
// its views *after* a run from the recorded event trace; telemetry
// aggregates *during* the run, so a scrape or a stream can watch a
// simulation in flight (DESIGN.md §10).
//
// Determinism contract: a registry is single-threaded like the simulation
// that feeds it; sample instants come from the virtual clock, never the
// host clock; and both writers (Prometheus text exposition and the JSON
// snapshot) iterate metrics in sorted-name order with fixed float
// formatting, so the same seed and scenario produce byte-identical output
// at every -workers width. When no registry is attached the simulator's
// hot path pays a nil check and nothing else — zero extra allocations,
// guarded by BenchmarkSimRun against BENCH_baseline.json.
package telemetry

import (
	"fmt"
	"sort"

	"dvsync/internal/simtime"
)

// Kind classifies a registered metric.
type Kind int

// Metric kinds.
const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that moves both ways.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind using the Prometheus type vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Counter is a monotone count. The zero value is ready to use once
// registered.
type Counter struct{ v float64 }

// Inc adds one.
//
//dvlint:hotpath bumped from per-frame and per-edge hooks
func (c *Counter) Inc() { c.v++ }

// Add adds a non-negative delta; negative deltas panic (counters are
// monotone by contract — use a Gauge for values that move both ways).
//
//dvlint:hotpath bumped from per-frame and per-edge hooks
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("telemetry: negative counter delta %v", d))
	}
	c.v += d
}

// Value returns the cumulative count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is an instantaneous value.
type Gauge struct{ v float64 }

// Set replaces the value.
//
//dvlint:hotpath refreshed from per-edge hooks
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by a (possibly negative) delta.
//
//dvlint:hotpath refreshed from per-edge hooks
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution: cumulative counts under each
// upper bound plus an implicit +Inf bucket, with sum and count for mean
// derivation. Bounds are fixed at registration so expositions from
// different runs are always comparable bucket-for-bucket.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds (le)
	counts []uint64  // per-bucket (non-cumulative); len(bounds)+1, last is +Inf
	sum    float64
	n      uint64
}

// NewHistogram builds a standalone, unregistered histogram — scratch
// storage for aggregation pipelines (the fleet census folds per-cell
// latency distributions through one before merging into a registered
// cohort histogram). Bounds follow the same contract as
// Registry.Histogram: strictly increasing upper bounds with an implicit
// +Inf bucket; invalid bounds panic.
func NewHistogram(bounds []float64) *Histogram {
	validateBounds("(standalone)", bounds)
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// validateBounds enforces the shared histogram-bounds contract.
func validateBounds(name string, bounds []float64) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing at %v", name, bounds[i]))
		}
	}
}

// Observe records one value.
//
//dvlint:hotpath fed once per frame
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le is inclusive
	h.counts[i]++
	h.sum += v
	h.n++
}

// Merge folds every observation of o into h. Both histograms must share
// identical bounds; merging mismatched layouts panics, because silently
// rebucketing would make merged distributions incomparable. Merge order
// matters for float determinism — callers that promise byte-identical
// output must merge in a fixed order (the fleet engine merges cells in
// spec-expansion order).
func (h *Histogram) Merge(o *Histogram) {
	if len(o.bounds) != len(h.bounds) {
		panic(fmt.Sprintf("telemetry: merging histograms with %d and %d bounds", len(o.bounds), len(h.bounds)))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			panic(fmt.Sprintf("telemetry: merging histograms with mismatched bound %v != %v", h.bounds[i], o.bounds[i]))
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	h.n += o.n
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// metric is one registered instrument.
type metric struct {
	name, help string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// sampleValue is the scalar a metric contributes to a time-series row:
// counters their cumulative count, gauges their current value, histograms
// their observation count.
func (m *metric) sampleValue() float64 {
	switch m.kind {
	case KindCounter:
		return m.counter.v
	case KindGauge:
		return m.gauge.v
	default:
		return float64(m.hist.n)
	}
}

// SampleRow is one time-series row: every registered metric's scalar at a
// sample instant.
type SampleRow struct {
	// At is the virtual-time sample instant.
	At simtime.Time
	// Values holds one scalar per metric, parallel to Series.Columns.
	Values []float64
}

// Series is the sampled time series of a registry.
type Series struct {
	// Columns names the metrics, in registration order, frozen at the
	// first sample.
	Columns []string
	// Rows lists samples in non-decreasing time order.
	Rows []SampleRow
}

// Registry holds one run's instruments and their sampled series. It is
// single-threaded: the simulation registers metrics at wiring time,
// updates them from hooks, and calls Sample on virtual-time intervals.
// One registry serves one run — re-registering a name panics.
type Registry struct {
	byName  map[string]int
	metrics []*metric
	series  Series
	frozen  bool // first Sample freezes the column set
	onSam   func(SampleRow)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

func (r *Registry) register(m *metric) {
	if r.frozen {
		panic(fmt.Sprintf("telemetry: register %q after first sample", m.name))
	}
	if !validName(m.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", m.name))
	}
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q (one registry serves one run)", m.name))
	}
	r.byName[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* without pulling in regexp.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers a fixed-bucket histogram. Bounds must be strictly
// increasing upper bounds; an implicit +Inf bucket is appended.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	validateBounds(name, bounds)
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// Len returns how many metrics are registered.
func (r *Registry) Len() int { return len(r.metrics) }

// OnSample installs a hook invoked with each new row as it is sampled —
// the streaming tap dvserve's SSE handler feeds from. The row's Values
// slice is owned by the series; treat it as read-only.
func (r *Registry) OnSample(fn func(SampleRow)) { r.onSam = fn }

// Reserve preallocates ring storage for n sample rows — the capacity the
// simulation negotiates from the run length so the steady-state sampling
// path never allocates. Each reserved slot carries its own Values buffer
// sized to the current metric count. Reserving less than the current
// capacity is a no-op; rows past the reservation still append, because the
// series never drops samples (determinism outranks bounded memory).
func (r *Registry) Reserve(n int) {
	if n <= cap(r.series.Rows) {
		return
	}
	rows := make([]SampleRow, n)
	used := len(r.series.Rows)
	copy(rows, r.series.Rows)
	for i := used; i < n; i++ {
		rows[i].Values = make([]float64, 0, len(r.metrics))
	}
	r.series.Rows = rows[:used]
}

// Reset re-arms a sampled registry for another run of the same wiring:
// instrument values return to zero and the row ring rewinds, keeping every
// slot and its Values buffer for recycling. The frozen column set persists
// — the reuse path never re-registers, so a reused run exports the exact
// column order a fresh run would freeze. The OnSample hook persists too.
func (r *Registry) Reset() {
	for _, m := range r.metrics {
		switch m.kind {
		case KindCounter:
			m.counter.v = 0
		case KindGauge:
			m.gauge.v = 0
		default:
			clear(m.hist.counts)
			m.hist.sum = 0
			m.hist.n = 0
		}
	}
	r.series.Rows = r.series.Rows[:0]
}

// Sample appends one time-series row at a virtual-time instant. Instants
// must be non-decreasing. The first sample freezes the column set:
// registering metrics afterwards panics, which keeps every row
// rectangular. Row storage is a recycling ring: slots left behind by
// Reserve (or by a previous run on a Reset registry) are reused in place,
// so a correctly reserved run samples without allocating.
//
//dvlint:hotpath runs at every telemetry sampling tick
func (r *Registry) Sample(now simtime.Time) {
	if !r.frozen {
		r.frozen = true
		//dvlint:ignore hotalloc the column set is built once, at the first sample of a run
		r.series.Columns = make([]string, len(r.metrics))
		for i, m := range r.metrics {
			r.series.Columns[i] = m.name
		}
	}
	rows := r.series.Rows
	n := len(rows)
	if n > 0 && now < rows[n-1].At {
		panic(fmt.Sprintf("telemetry: sample at %v after %v", now, rows[n-1].At))
	}
	var row SampleRow
	if n < cap(rows) {
		rows = rows[:n+1]
		row = rows[n] // recycled slot: its Values buffer is reused below
		row.At = now
		if cap(row.Values) >= len(r.metrics) {
			row.Values = row.Values[:len(r.metrics)]
		} else {
			//dvlint:ignore hotalloc a slot reserved before the metric count grew; never on the negotiated path
			row.Values = make([]float64, len(r.metrics))
		}
	} else {
		//dvlint:ignore hotalloc ring grow path: only runs past the negotiated reservation
		row = SampleRow{At: now, Values: make([]float64, len(r.metrics))}
		//dvlint:ignore hotalloc same past-reservation grow path as the row above
		rows = append(rows, row)
	}
	for i, m := range r.metrics {
		row.Values[i] = m.sampleValue()
	}
	rows[len(rows)-1] = row
	r.series.Rows = rows
	if r.onSam != nil {
		r.onSam(row)
	}
}

// LastSampleAt returns the instant of the most recent row, if any.
func (r *Registry) LastSampleAt() (simtime.Time, bool) {
	if n := len(r.series.Rows); n > 0 {
		return r.series.Rows[n-1].At, true
	}
	return 0, false
}

// Series returns the sampled time series (shared, not copied).
func (r *Registry) Series() *Series { return &r.series }

// WindowRate measures an event rate over a trailing window of virtual
// time, with exactly the semantics of the health monitor's and obs's
// windowed-FDPS tracks: the window is truncated at stream start, an event
// sitting exactly on the cut is still inside, and the rate is
// events-in-window divided by the (truncated) window length.
type WindowRate struct {
	window simtime.Duration
	times  []simtime.Time
}

// NewWindowRate builds a tracker over the given window; the window must be
// positive.
func NewWindowRate(window simtime.Duration) *WindowRate {
	if window <= 0 {
		panic(fmt.Sprintf("telemetry: non-positive rate window %v", window))
	}
	return &WindowRate{window: window}
}

// Reset drops every recorded event, rewinding the tracker for a reused run.
func (w *WindowRate) Reset() { w.times = w.times[:0] }

// Observe records one event. Instants must be non-decreasing.
//
//dvlint:hotpath fed once per jank
func (w *WindowRate) Observe(at simtime.Time) { w.times = append(w.times, at) }

// Rate returns events per second over the window ending at now, pruning
// events that slid out.
//
//dvlint:hotpath queried at every display edge
func (w *WindowRate) Rate(now simtime.Time) float64 {
	cut := now.Add(-w.window)
	i := 0
	for i < len(w.times) && w.times[i] < cut {
		i++
	}
	w.times = w.times[i:]
	win := w.window
	if simtime.Duration(now) < win {
		win = simtime.Duration(now)
	}
	if win <= 0 {
		return 0
	}
	return float64(len(w.times)) / win.Seconds()
}
