package telemetry

import "dvsync/internal/simtime"

// FDPSWindow is the sliding window behind the live windowed-FDPS gauge. It
// matches internal/obs's exported track and the health monitor's default
// evaluation window, so all three layers report the same quantity; a test
// pins the equality.
const FDPSWindow = 500 * simtime.Millisecond

// Canonical instrument names the simulator registers when a registry is
// attached. They live here — not in internal/sim — so consumers like the
// obs bridge and dvserve can address columns without importing the
// simulator.
const (
	// MetricFramesStarted counts frames entering the pipeline.
	MetricFramesStarted = "dvsync_frames_started_total"
	// MetricFramesPresented counts latched (displayed) frames.
	MetricFramesPresented = "dvsync_frames_presented_total"
	// MetricJanks counts repeated-frame edges.
	MetricJanks = "dvsync_janks_total"
	// MetricEdges counts hardware refresh edges.
	MetricEdges = "dvsync_edges_total"
	// MetricMissedEdges counts refreshes skipped by injected faults.
	MetricMissedEdges = "dvsync_missed_edges_total"
	// MetricFallbacks counts §4.5 supervised trips to the VSync channel.
	MetricFallbacks = "dvsync_fallbacks_total"
	// MetricStaleDropped counts frames discarded by the stale-dropping
	// consumer.
	MetricStaleDropped = "dvsync_stale_dropped_total"

	// MetricQueueDepth is the live buffer-queue depth.
	MetricQueueDepth = "dvsync_queue_depth"
	// MetricFDPSWindow is frame drops per second over the trailing
	// FDPSWindow, refreshed at each hardware edge *before* that edge's
	// jank is recorded — the same sampling point obs reconstructs.
	MetricFDPSWindow = "dvsync_fdps_window"
	// MetricFallbackState is 1 while the fallback supervisor holds the
	// system on the VSync channel, else 0.
	MetricFallbackState = "dvsync_fallback_tripped"
	// MetricRefreshHz is the current panel refresh rate.
	MetricRefreshHz = "dvsync_refresh_hz"
	// MetricUIBusy / MetricRSBusy are per-stage pipeline occupancy (1 while
	// the stage is executing at the sample instant).
	MetricUIBusy = "dvsync_pipeline_ui_busy"
	MetricRSBusy = "dvsync_pipeline_rs_busy"
	// MetricInflight counts frames dequeued but not yet queued.
	MetricInflight = "dvsync_pipeline_inflight"
	// MetricHealthTrips / MetricHealthRecoveries mirror the health
	// monitor's transition counts (only registered under EnableFallback).
	MetricHealthTrips      = "dvsync_health_trips"
	MetricHealthRecoveries = "dvsync_health_recoveries"

	// MetricFrameLatencyMs is the §6.3 per-frame rendering latency.
	MetricFrameLatencyMs = "dvsync_frame_latency_ms"
	// MetricCalibErrMs is the DTV |present − D-Timestamp| error.
	MetricCalibErrMs = "dvsync_dtv_calib_error_ms"
	// MetricQueueDepthDist is the queue-depth distribution, observed at
	// every depth change.
	MetricQueueDepthDist = "dvsync_queue_depth_dist"
)

// Fixed bucket layouts. Fixed — never derived from the run — so
// expositions from different scenarios stay comparable bucket-for-bucket.
var (
	// LatencyBucketsMs brackets the 2-to-3-period latencies of §6.3 at 60
	// and 120 Hz plus a jank tail.
	LatencyBucketsMs = []float64{8, 16, 24, 33.4, 40, 50, 66.8, 100}
	// CalibErrBucketsMs brackets DTV prediction error from sub-100µs
	// steady state up to a full 60 Hz period.
	CalibErrBucketsMs = []float64{0.1, 0.25, 0.5, 1, 2, 4, 8, 16.7}
	// QueueDepthBuckets covers the buffer-pool sizes the paper uses.
	QueueDepthBuckets = []float64{0, 1, 2, 3, 4, 6, 8}
)
