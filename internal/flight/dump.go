package flight

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dvsync/internal/checkpoint"
	"dvsync/internal/trace"
)

// DumpKind is the meta stamp distinguishing anomaly dumps from plain
// checkpoints inside the shared envelope format.
const DumpKind = "flight-dump"

// ErrNotDump reports a valid checkpoint envelope that is not an anomaly
// dump (a plain simulation checkpoint, or a foreign meta stamp).
var ErrNotDump = errors.New("flight: envelope is not an anomaly dump")

// dumpMeta is the envelope meta payload: enough to list an anomaly
// without decoding its event window.
type dumpMeta struct {
	Kind    string      `json:"kind"`
	Trigger TriggerKind `json:"trigger"`
	Detail  string      `json:"detail,omitempty"`
	Schema  int         `json:"schema"`
	Events  int         `json:"events"`
}

// DumpID derives the deterministic identifier of the index-th dump of a
// run: a config-digest prefix, the dump index, and the trigger kind —
// e.g. "3f8a2c91b4d0-00-jank-burst". Identical runs yield identical ids,
// which is what lets fleet cache hits reuse cached dumps.
func DumpID(cfgDigest string, index int, kind TriggerKind) string {
	prefix := cfgDigest
	if len(prefix) > 12 {
		prefix = prefix[:12]
	}
	return fmt.Sprintf("%s-%02d-%s", prefix, index, kind)
}

// EncodeDump seals one anomaly dump under the producing run's config
// digest, using the checkpoint envelope discipline: magic, version,
// config digest, content digest, typed errors on the way back in.
func EncodeDump(w io.Writer, cfgDigest string, d *Dump) error {
	meta, err := json.Marshal(dumpMeta{
		Kind: DumpKind, Trigger: d.Trigger.Kind, Detail: d.Trigger.Detail,
		Schema: d.SchemaVersion, Events: len(d.Events),
	})
	if err != nil {
		return fmt.Errorf("flight: encode dump meta: %w", err)
	}
	state, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("flight: encode dump: %w", err)
	}
	return checkpoint.Encode(w, cfgDigest, d.Trigger.At, meta, state)
}

// DecodeDump reads and verifies one anomaly dump. cfgDigest pins the
// producing configuration; pass "" to accept any (dvtrace -why reads
// dumps without knowing the config). Returns the dump and the envelope's
// config digest. Errors are the checkpoint package's typed errors, plus
// ErrNotDump for envelopes that are not anomaly dumps.
func DecodeDump(r io.Reader, cfgDigest string) (*Dump, string, error) {
	env, err := checkpoint.Decode(r)
	if err != nil {
		return nil, "", err
	}
	var meta dumpMeta
	if err := env.DecodeMeta(&meta); err != nil {
		return nil, "", err
	}
	if meta.Kind != DumpKind {
		return nil, "", ErrNotDump
	}
	if cfgDigest != "" {
		if err := env.VerifyConfig(cfgDigest); err != nil {
			return nil, "", err
		}
	}
	var d Dump
	if err := env.DecodeState(&d); err != nil {
		return nil, "", err
	}
	if d.SchemaVersion < 1 || d.SchemaVersion > trace.SchemaVersion {
		return nil, "", &checkpoint.CorruptError{
			Reason: fmt.Sprintf("dump schema v%d outside [1, %d]", d.SchemaVersion, trace.SchemaVersion)}
	}
	if len(d.Events) != meta.Events {
		return nil, "", &checkpoint.CorruptError{
			Reason: fmt.Sprintf("dump has %d events, meta says %d", len(d.Events), meta.Events)}
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].At < d.Events[i-1].At {
			return nil, "", &checkpoint.CorruptError{
				Reason: fmt.Sprintf("dump events out of order at %d", i)}
		}
	}
	return &d, env.ConfigDigest, nil
}
