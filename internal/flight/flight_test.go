package flight

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"dvsync/internal/checkpoint"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
)

func ev(atMs int64, kind trace.EventKind, frame int, detail string) trace.Event {
	return trace.Event{At: simtime.Time(atMs) * simtime.Time(simtime.Millisecond),
		Kind: kind, Frame: frame, Detail: detail}
}

// TestRingRetention: the ring keeps the newest Capacity events in order
// and evicts the oldest beyond it.
func TestRingRetention(t *testing.T) {
	r := New(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		r.Add(ev(int64(i), trace.FrameStart, i, ""))
	}
	got := r.Events()
	if len(got) != 4 || r.Len() != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Frame != 6+i {
			t.Errorf("slot %d holds frame %d, want %d", i, e.Frame, 6+i)
		}
	}
}

// TestRingRejectsOutOfOrder: recording time must be non-decreasing, like
// trace.Recorder.
func TestRingRejectsOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	r := New(Config{})
	r.Add(ev(10, trace.FrameStart, 0, ""))
	r.Add(ev(5, trace.FrameStart, 1, ""))
}

// TestJankBurstTrigger: JankBurst janks inside JankWindow snapshot the
// window; janks spread wider than the window do not.
func TestJankBurstTrigger(t *testing.T) {
	r := New(Config{JankBurst: 3, JankWindow: 100 * simtime.Millisecond})
	for i, at := range []int64{0, 40, 80} {
		r.Add(ev(at, trace.Jank, i, ""))
	}
	if n := len(r.Dumps()); n != 1 {
		t.Fatalf("burst inside window produced %d dumps, want 1", n)
	}
	d := r.Dumps()[0]
	if d.Trigger.Kind != TriggerJankBurst || d.SchemaVersion != trace.SchemaVersion {
		t.Errorf("dump trigger %q schema v%d, want %q v%d",
			d.Trigger.Kind, d.SchemaVersion, TriggerJankBurst, trace.SchemaVersion)
	}
	if len(d.Events) != 3 {
		t.Errorf("dump carries %d events, want the 3 retained", len(d.Events))
	}

	slow := New(Config{JankBurst: 3, JankWindow: 100 * simtime.Millisecond})
	for i, at := range []int64{0, 90, 180} {
		slow.Add(ev(at, trace.Jank, i, ""))
	}
	if n := len(slow.Dumps()); n != 0 {
		t.Errorf("janks wider than the window produced %d dumps, want 0", n)
	}
}

// TestTriggerCooldown: a second same-kind trigger inside the cooldown is
// suppressed; past it, it fires again.
func TestTriggerCooldown(t *testing.T) {
	r := New(Config{JankBurst: 2, JankWindow: 100 * simtime.Millisecond,
		Cooldown: 500 * simtime.Millisecond})
	for i, at := range []int64{0, 50, 100, 150} { // two bursts, 100 ms apart
		r.Add(ev(at, trace.Jank, i, ""))
	}
	if n := len(r.Dumps()); n != 1 {
		t.Fatalf("re-trigger inside cooldown produced %d dumps, want 1", n)
	}
	r.Add(ev(700, trace.Jank, 4, ""))
	r.Add(ev(710, trace.Jank, 5, ""))
	if n := len(r.Dumps()); n != 2 {
		t.Errorf("re-trigger past cooldown produced %d dumps, want 2", n)
	}
}

// TestFallbackTriggerDirection: only the §4.5 D-VSync→VSync direction is
// an anomaly; recovery back to D-VSync is not.
func TestFallbackTriggerDirection(t *testing.T) {
	r := New(Config{})
	r.Add(ev(10, trace.Fallback, -1, "to=VSync reason=fdps"))
	r.Add(ev(900, trace.Fallback, -1, "to=D-VSync reason=none"))
	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("%d dumps, want 1 (recovery must not trigger)", len(dumps))
	}
	if dumps[0].Trigger.Kind != TriggerFallback || dumps[0].Trigger.Detail != "to=VSync reason=fdps" {
		t.Errorf("trigger = %+v, want fallback with the event detail", dumps[0].Trigger)
	}
}

// TestWatchdogAndFaultOnsetTriggers: both remaining trigger kinds fire,
// and distinct kinds do not share a cooldown.
func TestWatchdogAndFaultOnsetTriggers(t *testing.T) {
	r := New(Config{Cooldown: simtime.Second})
	r.Add(ev(10, trace.FaultOnset, -1, "class=stall episode=0 severity=1"))
	r.TripWatchdog(simtime.Time(20*simtime.Millisecond), "starved")
	dumps := r.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("%d dumps, want 2 (kinds have independent cooldowns)", len(dumps))
	}
	if dumps[0].Trigger.Kind != TriggerFaultOnset || dumps[1].Trigger.Kind != TriggerWatchdog {
		t.Errorf("trigger kinds = %q, %q", dumps[0].Trigger.Kind, dumps[1].Trigger.Kind)
	}
}

// TestMaxDumpsCap: the per-run dump bound holds across trigger kinds.
func TestMaxDumpsCap(t *testing.T) {
	r := New(Config{MaxDumps: 2, Cooldown: simtime.Millisecond, JankBurst: 2,
		JankWindow: simtime.Second})
	for i := 0; i < 40; i++ {
		r.Add(ev(int64(i*10), trace.Jank, i, ""))
	}
	r.TripWatchdog(simtime.Time(simtime.Second), "starved")
	if n := len(r.Dumps()); n != 2 {
		t.Errorf("%d dumps, want the MaxDumps cap of 2", n)
	}
}

// TestResetRecyclesDumpStorage: a reused ring reproduces the previous
// run's dumps byte-for-byte without keeping stale state, and the second
// run's snapshots are correct even though they recycle the first run's
// event buffers.
func TestResetRecyclesDumpStorage(t *testing.T) {
	run := func(r *Ring) []Dump {
		for i, at := range []int64{0, 40, 80} {
			r.Add(ev(at, trace.Jank, i, ""))
		}
		dumps := r.Dumps()
		out := make([]Dump, len(dumps))
		for i, d := range dumps {
			out[i] = Dump{SchemaVersion: d.SchemaVersion, Trigger: d.Trigger,
				Events: append([]trace.Event(nil), d.Events...)}
		}
		return out
	}
	r := New(Config{JankBurst: 3, JankWindow: 100 * simtime.Millisecond})
	first := run(r)
	r.Reset()
	if r.Len() != 0 || len(r.Dumps()) != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset left retained events or dumps behind")
	}
	second := run(r)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("reused ring dumps differ:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestStateRoundTrip: capture/restore carries the full trigger
// bookkeeping — the resumed ring suppresses a re-trigger inside the
// cooldown, counts pre-cut dumps against the cap, and continues the
// jank window mid-burst.
func TestStateRoundTrip(t *testing.T) {
	cfg := Config{JankBurst: 3, JankWindow: 100 * simtime.Millisecond,
		Cooldown: 500 * simtime.Millisecond, MaxDumps: 2}
	straight := New(cfg)
	resumed := New(cfg)
	for i, at := range []int64{0, 40, 80} { // burst -> dump 0, cooldown starts
		straight.Add(ev(at, trace.Jank, i, ""))
	}
	if err := resumed.RestoreState(straight.CaptureState()); err != nil {
		t.Fatal(err)
	}
	if got := resumed.PreDumps(); got != 1 {
		t.Fatalf("PreDumps after restore = %d, want 1", got)
	}
	if !reflect.DeepEqual(resumed.Events(), straight.Events()) {
		t.Fatal("restored window differs from the straight run's")
	}
	// Both continue identically: a burst at 120 ms is inside the cooldown
	// (suppressed), one at 700/740/780 ms fires — and hits the cap.
	tail := []int64{120, 700, 740, 780, 1400, 1440, 1480}
	for i, at := range tail {
		straight.Add(ev(at, trace.Jank, 10+i, ""))
		resumed.Add(ev(at, trace.Jank, 10+i, ""))
	}
	if len(straight.Dumps()) != 2 {
		t.Fatalf("straight run took %d dumps, want 2 (cap)", len(straight.Dumps()))
	}
	post := straight.Dumps()[1:]
	if !reflect.DeepEqual(resumed.Dumps(), post) {
		t.Errorf("resumed post-cut dumps differ from the straight run's:\nresumed  %+v\nstraight %+v",
			resumed.Dumps(), post)
	}
}

// TestRestoreStateRejectsCorruptState: every validated field of a State
// is actually validated.
func TestRestoreStateRejectsCorruptState(t *testing.T) {
	base := func() *State {
		r := New(Config{JankBurst: 2, JankWindow: simtime.Second})
		r.Add(ev(0, trace.Jank, 0, ""))
		r.Add(ev(10, trace.Jank, 1, ""))
		return r.CaptureState()
	}
	cases := []struct {
		name   string
		mutate func(*State)
	}{
		{"events out of order", func(st *State) {
			st.Events[0], st.Events[1] = st.Events[1], st.Events[0]
		}},
		{"window exceeds capacity", func(st *State) {
			st.Events = make([]trace.Event, DefaultCapacity+1)
		}},
		{"jank window exceeds burst", func(st *State) {
			st.Janks = append(st.Janks, st.Janks...)
		}},
		{"janks out of order", func(st *State) {
			st.Janks[0], st.Janks[1] = st.Janks[1], st.Janks[0]
		}},
		{"negative dump count", func(st *State) { st.Dumps = -1 }},
		{"dump count over cap", func(st *State) { st.Dumps = DefaultMaxDumps + 1 }},
		{"unknown cooldown kind", func(st *State) {
			st.Cooldowns = append(st.Cooldowns, TriggerMark{Kind: "meteor-strike"})
		}},
	}
	for _, tc := range cases {
		st := base()
		tc.mutate(st)
		r := New(Config{JankBurst: 2, JankWindow: simtime.Second})
		if err := r.RestoreState(st); err == nil {
			t.Errorf("%s: RestoreState accepted the corrupt state", tc.name)
		}
	}
	if err := (&Ring{}).RestoreState(nil); err == nil {
		t.Error("nil state accepted")
	}
}

// TestDumpIDShape: ids are digest-prefixed, zero-padded, and kind-tagged.
func TestDumpIDShape(t *testing.T) {
	got := DumpID("3f8a2c91b4d0ffffffff", 7, TriggerJankBurst)
	if got != "3f8a2c91b4d0-07-jank-burst" {
		t.Errorf("DumpID = %q", got)
	}
	if short := DumpID("ab", 0, TriggerWatchdog); short != "ab-00-watchdog" {
		t.Errorf("short-digest DumpID = %q", short)
	}
}

// TestDumpEncodeDecodeRoundTrip: a sealed dump survives the envelope and
// pins its producing config digest.
func TestDumpEncodeDecodeRoundTrip(t *testing.T) {
	d := &Dump{
		SchemaVersion: trace.SchemaVersion,
		Trigger: Trigger{Kind: TriggerFallback,
			At: simtime.Time(simtime.Second), Detail: "to=VSync reason=fdps"},
		Events: []trace.Event{ev(990, trace.Jank, 3, ""), ev(1000, trace.Fallback, -1, "to=VSync reason=fdps")},
	}
	const digest = "deadbeefdeadbeefdeadbeefdeadbeef"
	var buf bytes.Buffer
	if err := EncodeDump(&buf, digest, d); err != nil {
		t.Fatal(err)
	}
	sealed := buf.Bytes()

	got, gotDigest, err := DecodeDump(bytes.NewReader(sealed), digest)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != digest || !reflect.DeepEqual(got, d) {
		t.Errorf("round trip: digest %q dump %+v", gotDigest, got)
	}
	// "" accepts any digest (the dvtrace -why path) but still reports it.
	if _, gotDigest, err = DecodeDump(bytes.NewReader(sealed), ""); err != nil || gotDigest != digest {
		t.Errorf("unpinned decode: digest %q err %v", gotDigest, err)
	}
	// A mismatched pin is a typed digest error.
	var dgErr *checkpoint.DigestError
	if _, _, err := DecodeDump(bytes.NewReader(sealed), "0000"); !errors.As(err, &dgErr) {
		t.Errorf("wrong digest: err %v, want *checkpoint.DigestError", err)
	}
	// A plain checkpoint (foreign meta) is ErrNotDump.
	var plain bytes.Buffer
	if err := checkpoint.Encode(&plain, digest, 0, []byte(`{"kind":"other"}`), []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeDump(bytes.NewReader(plain.Bytes()), ""); !errors.Is(err, ErrNotDump) {
		t.Errorf("foreign envelope: err %v, want ErrNotDump", err)
	}
	// Flipping a payload byte trips the envelope's content digest.
	bad := append([]byte(nil), sealed...)
	bad[len(bad)-2] ^= 0x40
	if _, _, err := DecodeDump(bytes.NewReader(bad), digest); err == nil {
		t.Error("corrupted envelope decoded cleanly")
	}
}

// FuzzDecodeDump: arbitrary bytes must never panic the decoder, and a
// valid sealed dump must keep round-tripping under mutation of the seed
// corpus.
func FuzzDecodeDump(f *testing.F) {
	d := &Dump{
		SchemaVersion: trace.SchemaVersion,
		Trigger:       Trigger{Kind: TriggerJankBurst, At: simtime.Time(simtime.Millisecond)},
		Events:        []trace.Event{ev(0, trace.Jank, 0, ""), ev(1, trace.Jank, 1, "")},
	}
	var buf bytes.Buffer
	if err := EncodeDump(&buf, "cafef00dcafef00d", d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("not an envelope"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, err := DecodeDump(bytes.NewReader(data), "")
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the dump invariants the decoder
		// promises: schema in range, events in order.
		if got.SchemaVersion < 1 || got.SchemaVersion > trace.SchemaVersion {
			t.Fatalf("decoded schema v%d out of range", got.SchemaVersion)
		}
		for i := 1; i < len(got.Events); i++ {
			if got.Events[i].At < got.Events[i-1].At {
				t.Fatalf("decoded events out of order at %d", i)
			}
		}
	})
}
