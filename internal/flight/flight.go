// Package flight is the always-on flight recorder (DESIGN.md §15): a
// fixed-capacity ring that implements trace.Sink, retains the last N
// events of a run at zero steady-state allocations, and — on a
// deterministic trigger (health-watchdog trip, §4.5 fallback, jank burst,
// fault-episode onset) — snapshots the retained window into a versioned,
// digest-pinned anomaly dump.
//
// Everything is a function of virtual time and the event stream: the same
// run produces the same dumps byte-for-byte at any worker width, from a
// fresh or reused Runner, and across a checkpoint/resume cut (trigger
// bookkeeping snapshots into sim.State as sorted slices, never maps).
package flight

import (
	"fmt"
	"strings"

	"dvsync/internal/simtime"
	"dvsync/internal/trace"
)

// Defaults for Config's zero values.
const (
	// DefaultCapacity is the retained-event window size.
	DefaultCapacity = 512
	// DefaultJankBurst is how many janks inside DefaultJankWindow trip the
	// jank-burst trigger.
	DefaultJankBurst = 3
	// DefaultJankWindow is the jank-burst sliding window.
	DefaultJankWindow = 250 * simtime.Millisecond
	// DefaultCooldown is the per-trigger-kind virtual-time refractory
	// period between dumps.
	DefaultCooldown = 500 * simtime.Millisecond
	// DefaultMaxDumps bounds dumps per run.
	DefaultMaxDumps = 16
)

// TriggerKind names what tripped a dump.
type TriggerKind string

// Trigger kinds.
const (
	// TriggerWatchdog is an engine health-watchdog trip.
	TriggerWatchdog TriggerKind = "watchdog"
	// TriggerFallback is a §4.5 D-VSync→VSync supervisor fallback.
	TriggerFallback TriggerKind = "fallback"
	// TriggerJankBurst is JankBurst janks inside JankWindow.
	TriggerJankBurst TriggerKind = "jank-burst"
	// TriggerFaultOnset is an injected fault episode opening.
	TriggerFaultOnset TriggerKind = "fault-onset"
)

// triggerIdx maps kinds to fixed array slots for cooldown bookkeeping.
const (
	idxWatchdog = iota
	idxFallback
	idxJankBurst
	idxFaultOnset
	numTriggers
)

// triggerKinds maps slots back to kinds, in slot order.
var triggerKinds = [numTriggers]TriggerKind{
	TriggerWatchdog, TriggerFallback, TriggerJankBurst, TriggerFaultOnset,
}

// Config parameterises a Ring. Zero values take the defaults above.
type Config struct {
	// Capacity is the retained-event window size.
	Capacity int
	// JankBurst janks inside JankWindow trip the jank-burst trigger.
	JankBurst int
	// JankWindow is the jank-burst sliding window.
	JankWindow simtime.Duration
	// Cooldown is the per-trigger-kind refractory period (virtual time).
	Cooldown simtime.Duration
	// MaxDumps bounds dumps per run.
	MaxDumps int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.JankBurst <= 0 {
		c.JankBurst = DefaultJankBurst
	}
	if c.JankWindow <= 0 {
		c.JankWindow = DefaultJankWindow
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = DefaultMaxDumps
	}
	return c
}

// Trigger records what tripped a dump.
type Trigger struct {
	// Kind classifies the trigger.
	Kind TriggerKind `json:"kind"`
	// At is the trigger instant.
	At simtime.Time `json:"at"`
	// Detail carries the tripping event's context.
	Detail string `json:"detail,omitempty"`
}

// Dump is one anomaly snapshot: the retained event window at the trigger.
type Dump struct {
	// SchemaVersion is the trace vocabulary the events were recorded under.
	SchemaVersion int `json:"schema"`
	// Trigger is what tripped the snapshot.
	Trigger Trigger `json:"trigger"`
	// Events is the retained window, oldest first.
	Events []trace.Event `json:"events"`
}

// Ring is the flight recorder: a trace.Sink over a fixed-capacity ring.
// The ring and the jank-burst window are reserved at construction; the
// steady-state Add path never allocates. Only a trigger firing (an
// anomaly, by definition off the steady-state path) copies the window out
// into a Dump.
type Ring struct {
	cfg  Config
	buf  []trace.Event
	head int // index of the oldest retained event
	size int

	scratch []trace.Event // linearisation buffer for Events()

	lastAt   simtime.Time
	haveLast bool

	jank     []simtime.Time // last JankBurst jank instants, circular
	jankPos  int
	jankSeen int

	lastDump [numTriggers]simtime.Time
	haveDump [numTriggers]bool
	dumps    []Dump
	preDumps int // dumps taken before a checkpoint cut (resume only)

	burstDetail string // precomputed jank-burst trigger detail
}

// New returns a Ring with all storage reserved up front.
func New(cfg Config) *Ring {
	cfg = cfg.withDefaults()
	return &Ring{
		cfg:     cfg,
		buf:     make([]trace.Event, cfg.Capacity),
		scratch: make([]trace.Event, 0, cfg.Capacity),
		jank:    make([]simtime.Time, cfg.JankBurst),
		dumps:   make([]Dump, 0, cfg.MaxDumps),
		burstDetail: fmt.Sprintf("janks=%d window=%.0fms",
			cfg.JankBurst, cfg.JankWindow.Milliseconds()),
	}
}

// Config returns the ring's effective (default-filled) configuration.
func (r *Ring) Config() Config { return r.cfg }

// Add retains one event, evicting the oldest when full, and runs trigger
// detection. Append order must be non-decreasing in time, like
// trace.Recorder.Add.
//
//dvlint:hotpath called for every recorded simulation event
func (r *Ring) Add(ev trace.Event) {
	if r.haveLast && ev.At < r.lastAt {
		panic(fmt.Sprintf("flight: out-of-order event at %v after %v", ev.At, r.lastAt))
	}
	r.lastAt, r.haveLast = ev.At, true
	tail := r.head + r.size
	if tail >= len(r.buf) {
		tail -= len(r.buf)
	}
	r.buf[tail] = ev
	if r.size < len(r.buf) {
		r.size++
	} else {
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}

	switch ev.Kind {
	case trace.Jank:
		r.jank[r.jankPos] = ev.At
		r.jankPos++
		if r.jankPos == len(r.jank) {
			r.jankPos = 0
		}
		if r.jankSeen < len(r.jank) {
			r.jankSeen++
		}
		if r.jankSeen == len(r.jank) {
			// After the advance, jankPos indexes the oldest of the last
			// JankBurst janks.
			if ev.At.Sub(r.jank[r.jankPos]) <= r.cfg.JankWindow {
				r.maybeTrigger(idxJankBurst, ev.At, r.burstDetail)
			}
		}
	case trace.Fallback:
		if strings.HasPrefix(ev.Detail, "to=VSync") {
			r.maybeTrigger(idxFallback, ev.At, ev.Detail)
		}
	case trace.FaultOnset:
		r.maybeTrigger(idxFaultOnset, ev.At, ev.Detail)
	}
}

// TripWatchdog fires the watchdog trigger: the simulator calls it when
// the engine's health watchdog aborts a run.
func (r *Ring) TripWatchdog(at simtime.Time, detail string) {
	r.maybeTrigger(idxWatchdog, at, detail)
}

// maybeTrigger snapshots the retained window unless the per-kind cooldown
// or the dump cap suppresses it. Runs only on anomalies, so it may
// allocate.
func (r *Ring) maybeTrigger(idx int, at simtime.Time, detail string) {
	if r.preDumps+len(r.dumps) >= r.cfg.MaxDumps {
		return
	}
	if r.haveDump[idx] && at.Sub(r.lastDump[idx]) < r.cfg.Cooldown {
		return
	}
	r.lastDump[idx], r.haveDump[idx] = at, true
	// Recycle the event buffer a previous run's dump left in this slot:
	// Reset rewinds r.dumps to length 0 but keeps the backing array, so a
	// reused Runner that triggers the same dumps every run reaches zero
	// steady-state allocations even on the anomaly path.
	var events []trace.Event
	if n := len(r.dumps); n < cap(r.dumps) {
		events = r.dumps[: n+1 : cap(r.dumps)][n].Events[:0]
	}
	events = append(events, r.window()...)
	r.dumps = append(r.dumps, Dump{
		SchemaVersion: trace.SchemaVersion,
		Trigger:       Trigger{Kind: triggerKinds[idx], At: at, Detail: detail},
		Events:        events,
	})
}

// window linearises the ring into the scratch buffer, oldest first. The
// returned slice is valid until the next Add.
func (r *Ring) window() []trace.Event {
	r.scratch = r.scratch[:0]
	for i := 0; i < r.size; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		r.scratch = append(r.scratch, r.buf[j])
	}
	return r.scratch
}

// Dumps returns the snapshots taken this run, in trigger order. The
// snapshots (including their event slices) are valid until the next
// Reset — a later run recycles their storage. After a checkpoint resume
// it holds only post-cut snapshots; PreDumps reports how many the
// straight run had taken by the cut, so dump indices stay aligned
// between straight and resumed runs.
func (r *Ring) Dumps() []Dump { return r.dumps }

// PreDumps returns the pre-cut dump count after a RestoreState (0 on a
// straight run).
func (r *Ring) PreDumps() int { return r.preDumps }

// Reserve is a no-op: ring storage is fixed at construction.
//
//dvlint:hotpath sizing call on the recording path
func (r *Ring) Reserve(int) {}

// Reset rewinds the ring for the next run, keeping all storage.
//
//dvlint:hotpath reused across runs on the recording path
func (r *Ring) Reset() {
	r.head, r.size = 0, 0
	r.haveLast, r.lastAt = false, 0
	r.jankPos, r.jankSeen = 0, 0
	for i := range r.lastDump {
		r.lastDump[i], r.haveDump[i] = 0, false
	}
	r.dumps = r.dumps[:0]
	r.preDumps = 0
}

// Events returns the retained window, oldest first. The slice is valid
// until the next Add or Reset.
func (r *Ring) Events() []trace.Event { return r.window() }

// Len returns the retained event count.
func (r *Ring) Len() int { return r.size }

// Restore replaces the retained window with checkpointed events (the
// trace.Sink contract). Trigger bookkeeping that cannot be derived from
// the window alone — jank-burst times, cooldowns, the dump count —
// resets; checkpoint resume goes through RestoreState instead, which
// carries all of it.
func (r *Ring) Restore(events []trace.Event) error {
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return fmt.Errorf("flight: restored events out of order at %d", i)
		}
	}
	r.Reset()
	if n := len(events) - len(r.buf); n > 0 {
		events = events[n:]
	}
	copy(r.buf, events)
	r.size = len(events)
	if r.size > 0 {
		r.lastAt, r.haveLast = events[r.size-1].At, true
	}
	return nil
}

// TriggerMark is one per-kind cooldown entry in a State, kept as a sorted
// slice (kind order) so serialisation never depends on map order.
type TriggerMark struct {
	Kind   TriggerKind  `json:"kind"`
	LastAt simtime.Time `json:"last_at"`
}

// State is the ring's checkpoint payload: the retained window plus all
// trigger bookkeeping, so a resumed run's post-cut trigger stream is a
// pure continuation of the straight run's.
type State struct {
	// Events is the retained window, oldest first.
	Events []trace.Event `json:"events"`
	// LastAt / HaveLast pin the order check.
	LastAt   simtime.Time `json:"last_at"`
	HaveLast bool         `json:"have_last,omitempty"`
	// Janks is the jank-burst window contents, oldest first.
	Janks []simtime.Time `json:"janks,omitempty"`
	// Cooldowns lists per-kind last-dump instants in fixed kind order.
	Cooldowns []TriggerMark `json:"cooldowns,omitempty"`
	// Dumps is how many dumps the run had taken by the cut; it counts
	// toward MaxDumps on resume. The dumps themselves stay with the
	// straight run's artifacts — a resumed run reproduces only post-cut
	// dumps.
	Dumps int `json:"dumps"`
}

// CaptureState snapshots the ring for a checkpoint.
func (r *Ring) CaptureState() *State {
	st := &State{
		Events:   append([]trace.Event(nil), r.window()...),
		LastAt:   r.lastAt,
		HaveLast: r.haveLast,
		Dumps:    r.preDumps + len(r.dumps),
	}
	if r.jankSeen > 0 {
		st.Janks = make([]simtime.Time, 0, r.jankSeen)
		start := r.jankPos - r.jankSeen
		if start < 0 {
			start += len(r.jank)
		}
		for i := 0; i < r.jankSeen; i++ {
			j := start + i
			if j >= len(r.jank) {
				j -= len(r.jank)
			}
			st.Janks = append(st.Janks, r.jank[j])
		}
	}
	for i := 0; i < numTriggers; i++ {
		if r.haveDump[i] {
			st.Cooldowns = append(st.Cooldowns, TriggerMark{Kind: triggerKinds[i], LastAt: r.lastDump[i]})
		}
	}
	return st
}

// RestoreState rewinds the ring to a checkpointed state. Pre-cut dumps
// are accounted (the cap and cooldowns continue) but not rematerialised:
// Dumps() after resume returns only post-cut snapshots.
func (r *Ring) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("flight: nil state")
	}
	if len(st.Events) > len(r.buf) {
		return fmt.Errorf("flight: state window %d exceeds ring capacity %d", len(st.Events), len(r.buf))
	}
	if len(st.Janks) > len(r.jank) {
		return fmt.Errorf("flight: state jank window %d exceeds burst size %d", len(st.Janks), len(r.jank))
	}
	if st.Dumps < 0 || st.Dumps > r.cfg.MaxDumps {
		return fmt.Errorf("flight: state dump count %d outside [0, %d]", st.Dumps, r.cfg.MaxDumps)
	}
	if err := r.Restore(st.Events); err != nil {
		return err
	}
	r.lastAt, r.haveLast = st.LastAt, st.HaveLast
	for i, at := range st.Janks {
		if i > 0 && at < st.Janks[i-1] {
			return fmt.Errorf("flight: state janks out of order at %d", i)
		}
		r.jank[i] = at
	}
	r.jankSeen = len(st.Janks)
	r.jankPos = r.jankSeen
	if r.jankPos == len(r.jank) {
		r.jankPos = 0
	}
	for _, cd := range st.Cooldowns {
		idx := -1
		for i, k := range triggerKinds {
			if k == cd.Kind {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("flight: state cooldown for unknown trigger %q", cd.Kind)
		}
		r.lastDump[idx], r.haveDump[idx] = cd.LastAt, true
	}
	r.preDumps = st.Dumps
	return nil
}
