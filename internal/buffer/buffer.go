// Package buffer models the frame buffers and the BufferQueue that connect
// the rendering pipeline (producer) to the display (consumer).
//
// The queue follows the Android/OpenHarmony BufferQueue contract described
// in §2 of the paper: a fixed pool of buffers cycles through the states
// Free → Dequeued (being rendered) → Queued (awaiting display) → Front (on
// screen) → Free. One front buffer feeds the panel while the back buffers
// absorb rendering; VSync enlarges the pool to 3 (triple buffering, Android)
// or 4 (OpenHarmony), and D-VSync enlarges it further so pre-rendered frames
// can accumulate (§4.1).
package buffer

import (
	"fmt"

	"dvsync/internal/simtime"
)

// State is the lifecycle state of a buffer.
type State int

// Buffer lifecycle states.
const (
	// Free means the buffer is available for the producer to dequeue.
	Free State = iota
	// Dequeued means the producer is rendering into the buffer.
	Dequeued
	// Queued means rendering finished and the buffer awaits display.
	Queued
	// Front means the buffer is currently latched/displayed by the panel.
	Front
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Dequeued:
		return "dequeued"
	case Queued:
		return "queued"
	case Front:
		return "front"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// CompositionKind classifies how a displayed frame reached the screen, for
// the Figure 6 breakdown.
type CompositionKind int

// Composition kinds (Figure 6).
const (
	// DirectComposition means the buffer was latched at the first VSync
	// edge after it was queued — no queue waiting.
	DirectComposition CompositionKind = iota
	// BufferStuffing means the buffer waited one or more extra VSync
	// periods inside the queue behind earlier buffers (the latency tax the
	// paper attributes to VSync triple buffering after janks, §3.3).
	BufferStuffing
)

// String returns the breakdown label used in Figure 6.
func (k CompositionKind) String() string {
	if k == DirectComposition {
		return "direct composition"
	}
	return "buffer stuffing"
}

// Frame carries the metadata of one rendered frame through the pipeline.
// All timestamps are on the simulation clock; zero means "not yet".
type Frame struct {
	// Seq is the frame's index in its stream, starting at 0.
	Seq int
	// ContentTime is the timestamp the frame's content represents: the
	// VSync-app tick under VSync, the D-Timestamp under D-VSync.
	ContentTime simtime.Time
	// DTimestamp is the display time predicted by the DTV when the frame
	// was triggered (zero on the VSync path).
	DTimestamp simtime.Time
	// Decoupled records whether the frame was produced by FPE
	// pre-execution rather than a display VSync trigger.
	Decoupled bool
	// UIStart/UIDone bound the app UI-thread stage.
	UIStart, UIDone simtime.Time
	// RSStart/RSDone bound the render-service/render-thread stage.
	RSStart, RSDone simtime.Time
	// QueuedAt is when the rendered buffer entered the queue (== RSDone).
	QueuedAt simtime.Time
	// LatchedAt is the VSync edge at which the compositor latched the
	// buffer.
	LatchedAt simtime.Time
	// PresentAt is when the frame became visible (latch edge + 1 period,
	// the present fence).
	PresentAt simtime.Time
	// RateHz is the refresh rate the frame was produced for (LTPO §5.3).
	RateHz int
	// ContentValue is the sampled content state (animation progress or
	// predicted input position) the frame rendered, for correctness and
	// latency-ball experiments.
	ContentValue float64
	// UICost and RSCost are the stage execution durations.
	UICost, RSCost simtime.Duration
}

// QueueWait returns how long the frame sat in the queue before latch.
func (f *Frame) QueueWait() simtime.Duration { return f.LatchedAt.Sub(f.QueuedAt) }

// Buffer is one graphics buffer in the pool.
type Buffer struct {
	// Slot is the buffer's fixed index in the pool.
	Slot int
	// State is the current lifecycle state.
	State State
	// Frame is the metadata of the frame currently occupying the buffer
	// (valid in Dequeued, Queued and Front states).
	Frame *Frame
}

// Config sizes a Queue.
type Config struct {
	// Buffers is the total pool size including the front buffer. Android
	// triple buffering is 3; OpenHarmony's default is 4; D-VSync raises it
	// further (Figure 11 evaluates 4, 5 and 7).
	Buffers int
	// Width and Height size the memory model (RGBA8888, 4 bytes/pixel).
	Width, Height int
}

// Queue is the FIFO producer/consumer buffer queue.
//
// Queue is not safe for concurrent use: the discrete-event simulation is
// single-threaded by design.
type Queue struct {
	cfg    Config
	pool   []*Buffer
	free   []*Buffer // LIFO of free buffers
	queued []*Buffer // FIFO of queued buffers
	front  *Buffer   // currently displayed, nil before first latch

	allocFault func() bool
	onDepth    func(depth int)

	stats Stats
}

// Stats aggregates queue-level counters.
type Stats struct {
	// Dequeued counts producer acquisitions.
	Dequeued int
	// QueuedTotal counts buffers submitted by the producer.
	QueuedTotal int
	// Latched counts buffers consumed by the display.
	Latched int
	// Direct and Stuffed split latched frames per Figure 6.
	Direct, Stuffed int
	// MaxDepth is the maximum number of simultaneously queued buffers.
	MaxDepth int
	// AllocFailed counts dequeues refused by an injected allocation fault.
	AllocFailed int
	// TotalQueueWait accumulates time buffers spent queued.
	TotalQueueWait simtime.Duration
}

// NewQueue builds a queue with cfg.Buffers free buffers.
func NewQueue(cfg Config) *Queue {
	if cfg.Buffers < 2 {
		panic(fmt.Sprintf("buffer: pool of %d buffers cannot double-buffer", cfg.Buffers))
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		cfg.Width, cfg.Height = 1080, 2340 // Pixel 5 panel, Table 1
	}
	q := &Queue{cfg: cfg}
	for i := 0; i < cfg.Buffers; i++ {
		b := &Buffer{Slot: i, State: Free}
		q.pool = append(q.pool, b)
		q.free = append(q.free, b)
	}
	return q
}

// Capacity returns the total pool size.
func (q *Queue) Capacity() int { return q.cfg.Buffers }

// FreeCount returns the number of buffers available to the producer.
func (q *Queue) FreeCount() int { return len(q.free) }

// QueuedCount returns the number of rendered buffers awaiting display.
func (q *Queue) QueuedCount() int { return len(q.queued) }

// PendingAhead returns how many rendered-but-not-displayed frames exist,
// counting queued buffers only (the quantity DTV multiplies by the period).
func (q *Queue) PendingAhead() int { return len(q.queued) }

// Front returns the buffer currently on screen, or nil.
func (q *Queue) Front() *Buffer { return q.front }

// Stats returns a copy of the accumulated counters.
func (q *Queue) Stats() Stats { return q.stats }

// BufferBytes returns the memory footprint of a single RGBA8888 buffer.
func (q *Queue) BufferBytes() int64 {
	return int64(q.cfg.Width) * int64(q.cfg.Height) * 4
}

// MemoryBytes returns the total memory footprint of the pool (§6.4).
func (q *Queue) MemoryBytes() int64 {
	return q.BufferBytes() * int64(q.cfg.Buffers)
}

// CanDequeue reports whether a free buffer is available.
func (q *Queue) CanDequeue() bool { return len(q.free) > 0 }

// SetAllocFault installs a transient allocation-failure hook (internal/
// fault). When the hook returns true a Dequeue is refused as if the pool
// were exhausted; the producer retries at its next opportunity, so a fault
// never leaks or corrupts a buffer.
func (q *Queue) SetAllocFault(fn func() bool) { q.allocFault = fn }

// SetDepthObserver installs a hook invoked with the new queued-buffer
// count after every enqueue and latch (a stale-dropping latch reports the
// final depth once) — the telemetry layer's queue-depth feed. Nil-guarded
// on the hot path: no cost when unset.
func (q *Queue) SetDepthObserver(fn func(depth int)) { q.onDepth = fn }

func (q *Queue) notifyDepth() {
	if q.onDepth != nil {
		q.onDepth(len(q.queued))
	}
}

// Dequeue hands a free buffer to the producer. It returns nil when the pool
// is exhausted (the producer must wait for OnRelease) or when an injected
// allocation fault refuses the request.
func (q *Queue) Dequeue(f *Frame) *Buffer {
	if len(q.free) == 0 {
		return nil
	}
	if q.allocFault != nil && q.allocFault() {
		q.stats.AllocFailed++
		return nil
	}
	b := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	b.State = Dequeued
	b.Frame = f
	q.stats.Dequeued++
	return b
}

// Enqueue submits a rendered buffer for display. The frame's QueuedAt must
// be set by the caller.
func (q *Queue) Enqueue(b *Buffer) {
	if b.State != Dequeued {
		panic(fmt.Sprintf("buffer: enqueue of %v buffer", b.State))
	}
	b.State = Queued
	q.queued = append(q.queued, b)
	q.stats.QueuedTotal++
	if d := len(q.queued); d > q.stats.MaxDepth {
		q.stats.MaxDepth = d
	}
	q.notifyDepth()
}

// Reset returns every buffer to the free list in construction order (slots
// 0..n−1, so a reused queue hands out the same dequeue sequence as a fresh
// one), clears the queued FIFO and the front buffer, and zeroes the stats.
// Hooks installed at wiring time persist.
func (q *Queue) Reset() {
	q.free = q.free[:0]
	for _, b := range q.pool {
		b.State = Free
		b.Frame = nil
		q.free = append(q.free, b)
	}
	for i := range q.queued {
		q.queued[i] = nil
	}
	q.queued = q.queued[:0]
	q.front = nil
	q.stats = Stats{}
}

// Latch is called by the display at a VSync edge. It takes the oldest
// queued buffer, makes it the front buffer, and frees the previous front.
// It returns nil when the queue is empty (the edge repeats the old frame —
// a jank if an update was due).
//
// period is the current refresh period, used to classify the latch as
// direct composition or buffer stuffing for the Figure 6 breakdown.
func (q *Queue) Latch(now simtime.Time, period simtime.Duration) *Buffer {
	if len(q.queued) == 0 {
		return nil
	}
	b := q.queued[0]
	copy(q.queued, q.queued[1:])
	q.queued = q.queued[:len(q.queued)-1]

	if q.front != nil {
		q.front.State = Free
		q.front.Frame = nil
		q.free = append(q.free, q.front)
	}
	b.State = Front
	q.front = b
	b.Frame.LatchedAt = now

	q.stats.Latched++
	wait := b.Frame.QueueWait()
	q.stats.TotalQueueWait += wait
	// A buffer queued during the immediately preceding period is latched at
	// the first opportunity: direct composition. Anything that waited a
	// full period or more behind other buffers was stuffed.
	if wait >= period {
		q.stats.Stuffed++
	} else {
		q.stats.Direct++
	}
	q.notifyDepth()
	return b
}

// LatchNewest is the stale-dropping consumer variant: at a VSync edge it
// discards every queued buffer except the newest and latches that one.
// Modern SurfaceFlinger does this opportunistically to trim latency after
// backlog episodes, at the cost of throwing away rendered frames. It
// returns the latched buffer (nil when the queue is empty) and the number
// of stale buffers dropped.
func (q *Queue) LatchNewest(now simtime.Time, period simtime.Duration) (*Buffer, int) {
	dropped := 0
	for len(q.queued) > 1 {
		b := q.queued[0]
		copy(q.queued, q.queued[1:])
		q.queued = q.queued[:len(q.queued)-1]
		b.State = Free
		b.Frame = nil
		q.free = append(q.free, b)
		dropped++
	}
	return q.Latch(now, period), dropped
}

// CompositionOf classifies a latched frame after the fact.
func CompositionOf(f *Frame, period simtime.Duration) CompositionKind {
	if f.QueueWait() >= period {
		return BufferStuffing
	}
	return DirectComposition
}

// CancelDequeue returns a dequeued buffer to the free list without queueing
// it (used when a frame is abandoned, e.g. a runtime switch to VSync).
func (q *Queue) CancelDequeue(b *Buffer) {
	if b.State != Dequeued {
		panic(fmt.Sprintf("buffer: cancel of %v buffer", b.State))
	}
	b.State = Free
	b.Frame = nil
	q.free = append(q.free, b)
	q.stats.Dequeued--
}

// PeekQueued returns the i-th oldest queued buffer without removing it.
func (q *Queue) PeekQueued(i int) *Buffer {
	if i < 0 || i >= len(q.queued) {
		return nil
	}
	return q.queued[i]
}

// CheckInvariants validates the conservation invariant: every pool slot is
// in exactly one of free/queued/front/dequeued. It returns an error rather
// than panicking so property tests can report it.
func (q *Queue) CheckInvariants() error {
	seen := make(map[int]State, len(q.pool))
	for _, b := range q.free {
		if b.State != Free {
			return fmt.Errorf("buffer %d on free list in state %v", b.Slot, b.State)
		}
		if _, dup := seen[b.Slot]; dup {
			return fmt.Errorf("buffer %d appears twice", b.Slot)
		}
		seen[b.Slot] = Free
	}
	for _, b := range q.queued {
		if b.State != Queued {
			return fmt.Errorf("buffer %d on queued list in state %v", b.Slot, b.State)
		}
		if _, dup := seen[b.Slot]; dup {
			return fmt.Errorf("buffer %d appears twice", b.Slot)
		}
		seen[b.Slot] = Queued
	}
	if q.front != nil {
		if q.front.State != Front {
			return fmt.Errorf("front buffer %d in state %v", q.front.Slot, q.front.State)
		}
		if _, dup := seen[q.front.Slot]; dup {
			return fmt.Errorf("buffer %d appears twice", q.front.Slot)
		}
		seen[q.front.Slot] = Front
	}
	dequeued := 0
	for _, b := range q.pool {
		if _, ok := seen[b.Slot]; !ok {
			if b.State != Dequeued {
				return fmt.Errorf("unaccounted buffer %d in state %v", b.Slot, b.State)
			}
			dequeued++
		}
	}
	if len(q.free)+len(q.queued)+dequeued+frontCount(q) != len(q.pool) {
		return fmt.Errorf("conservation violated: free=%d queued=%d dequeued=%d front=%d pool=%d",
			len(q.free), len(q.queued), dequeued, frontCount(q), len(q.pool))
	}
	return nil
}

func frontCount(q *Queue) int {
	if q.front != nil {
		return 1
	}
	return 0
}
