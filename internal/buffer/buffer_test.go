package buffer

import (
	"testing"
	"testing/quick"

	"dvsync/internal/simtime"
)

func newTestQueue(n int) *Queue {
	return NewQueue(Config{Buffers: n, Width: 100, Height: 100})
}

func TestNewQueueAllFree(t *testing.T) {
	q := newTestQueue(4)
	if q.FreeCount() != 4 || q.QueuedCount() != 0 || q.Front() != nil {
		t.Fatalf("fresh queue: free=%d queued=%d front=%v", q.FreeCount(), q.QueuedCount(), q.Front())
	}
	if q.Capacity() != 4 {
		t.Errorf("capacity = %d", q.Capacity())
	}
}

func TestNewQueueRejectsSingleBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-buffer pool")
		}
	}()
	newTestQueue(1)
}

func TestDequeueEnqueueLatchCycle(t *testing.T) {
	q := newTestQueue(3)
	period := simtime.FromMillis(16.667)

	f := &Frame{Seq: 0}
	b := q.Dequeue(f)
	if b == nil || b.State != Dequeued {
		t.Fatal("dequeue failed")
	}
	if q.FreeCount() != 2 {
		t.Errorf("free = %d after dequeue", q.FreeCount())
	}
	f.QueuedAt = 5
	q.Enqueue(b)
	if b.State != Queued || q.QueuedCount() != 1 {
		t.Fatal("enqueue failed")
	}
	got := q.Latch(10, period)
	if got != b || b.State != Front || q.Front() != b {
		t.Fatal("latch failed")
	}
	if f.LatchedAt != 10 {
		t.Errorf("LatchedAt = %v", f.LatchedAt)
	}
	// Second frame replaces the front; the old front returns to free.
	f2 := &Frame{Seq: 1}
	b2 := q.Dequeue(f2)
	f2.QueuedAt = 15
	q.Enqueue(b2)
	q.Latch(20, period)
	if b.State != Free {
		t.Errorf("old front state = %v, want free", b.State)
	}
	if q.FreeCount() != 2 {
		t.Errorf("free = %d", q.FreeCount())
	}
}

func TestDequeueExhaustion(t *testing.T) {
	q := newTestQueue(2)
	if q.Dequeue(&Frame{}) == nil || q.Dequeue(&Frame{}) == nil {
		t.Fatal("first two dequeues should succeed")
	}
	if q.Dequeue(&Frame{}) != nil {
		t.Fatal("third dequeue should fail")
	}
	if q.CanDequeue() {
		t.Error("CanDequeue should be false")
	}
}

func TestLatchEmptyReturnsNil(t *testing.T) {
	q := newTestQueue(3)
	if q.Latch(0, 1000) != nil {
		t.Fatal("latch of empty queue should return nil")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := newTestQueue(5)
	period := simtime.Duration(10)
	var frames []*Frame
	for i := 0; i < 4; i++ {
		f := &Frame{Seq: i, QueuedAt: simtime.Time(i)}
		frames = append(frames, f)
		b := q.Dequeue(f)
		q.Enqueue(b)
	}
	for i := 0; i < 4; i++ {
		b := q.Latch(simtime.Time(100+10*i), period)
		if b.Frame.Seq != i {
			t.Fatalf("latch %d returned frame %d", i, b.Frame.Seq)
		}
	}
}

func TestStuffingClassification(t *testing.T) {
	q := newTestQueue(4)
	period := simtime.FromMillis(10)
	// Frame A queued at t=1ms, latched at t=10ms: wait 9ms < period → direct.
	fa := &Frame{Seq: 0, QueuedAt: simtime.Time(simtime.FromMillis(1))}
	ba := q.Dequeue(fa)
	q.Enqueue(ba)
	// Frame B queued at t=2ms, latched at t=20ms: wait 18ms ≥ period → stuffed.
	fb := &Frame{Seq: 1, QueuedAt: simtime.Time(simtime.FromMillis(2))}
	bb := q.Dequeue(fb)
	q.Enqueue(bb)

	q.Latch(simtime.Time(simtime.FromMillis(10)), period)
	q.Latch(simtime.Time(simtime.FromMillis(20)), period)
	st := q.Stats()
	if st.Direct != 1 || st.Stuffed != 1 {
		t.Errorf("direct=%d stuffed=%d, want 1/1", st.Direct, st.Stuffed)
	}
	if CompositionOf(fa, period) != DirectComposition {
		t.Error("frame A should be direct")
	}
	if CompositionOf(fb, period) != BufferStuffing {
		t.Error("frame B should be stuffed")
	}
}

func TestCancelDequeue(t *testing.T) {
	q := newTestQueue(3)
	b := q.Dequeue(&Frame{})
	q.CancelDequeue(b)
	if q.FreeCount() != 3 || b.State != Free {
		t.Fatal("cancel did not free the buffer")
	}
	if q.Stats().Dequeued != 0 {
		t.Errorf("dequeued stat = %d after cancel", q.Stats().Dequeued)
	}
}

func TestMemoryModel(t *testing.T) {
	q := NewQueue(Config{Buffers: 4, Width: 1080, Height: 2340})
	if q.BufferBytes() != 1080*2340*4 {
		t.Errorf("BufferBytes = %d", q.BufferBytes())
	}
	if q.MemoryBytes() != 1080*2340*4*4 {
		t.Errorf("MemoryBytes = %d", q.MemoryBytes())
	}
}

func TestMaxDepthStat(t *testing.T) {
	q := newTestQueue(5)
	for i := 0; i < 4; i++ {
		b := q.Dequeue(&Frame{Seq: i})
		q.Enqueue(b)
	}
	if q.Stats().MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", q.Stats().MaxDepth)
	}
}

func TestEnqueueWrongStatePanics(t *testing.T) {
	q := newTestQueue(3)
	b := q.Dequeue(&Frame{})
	q.Enqueue(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic enqueueing a queued buffer")
		}
	}()
	q.Enqueue(b)
}

func TestPeekQueued(t *testing.T) {
	q := newTestQueue(4)
	for i := 0; i < 2; i++ {
		b := q.Dequeue(&Frame{Seq: i})
		q.Enqueue(b)
	}
	if q.PeekQueued(0).Frame.Seq != 0 || q.PeekQueued(1).Frame.Seq != 1 {
		t.Error("peek order wrong")
	}
	if q.PeekQueued(2) != nil || q.PeekQueued(-1) != nil {
		t.Error("out-of-range peek should be nil")
	}
}

// Property: any random sequence of dequeue/enqueue/latch operations
// preserves buffer conservation and FIFO latch order.
func TestQueueInvariantsProperty(t *testing.T) {
	f := func(ops []uint8, size uint8) bool {
		n := int(size%6) + 2
		q := newTestQueue(n)
		var dequeued []*Buffer
		seq := 0
		now := simtime.Time(0)
		lastLatched := -1
		for _, op := range ops {
			now += 1000
			switch op % 3 {
			case 0: // dequeue
				f := &Frame{Seq: seq}
				if b := q.Dequeue(f); b != nil {
					seq++
					dequeued = append(dequeued, b)
				}
			case 1: // enqueue oldest dequeued
				if len(dequeued) > 0 {
					b := dequeued[0]
					dequeued = dequeued[1:]
					b.Frame.QueuedAt = now
					q.Enqueue(b)
				}
			case 2: // latch
				if b := q.Latch(now, 1000); b != nil {
					if b.Frame.Seq <= lastLatched {
						return false // FIFO violated
					}
					lastLatched = b.Frame.Seq
				}
			}
			if err := q.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Free: "free", Dequeued: "dequeued", Queued: "queued", Front: "front"} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
	if DirectComposition.String() != "direct composition" || BufferStuffing.String() != "buffer stuffing" {
		t.Error("CompositionKind strings wrong")
	}
}

func TestLatchNewestDropsStale(t *testing.T) {
	q := newTestQueue(5)
	period := simtime.FromMillis(10)
	for i := 0; i < 3; i++ {
		f := &Frame{Seq: i, QueuedAt: simtime.Time(i)}
		q.Enqueue(q.Dequeue(f))
	}
	b, dropped := q.LatchNewest(simtime.Time(simtime.FromMillis(30)), period)
	if b == nil || b.Frame.Seq != 2 {
		t.Fatalf("latched %+v, want newest (seq 2)", b)
	}
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if q.QueuedCount() != 0 {
		t.Errorf("queued = %d after latch-newest", q.QueuedCount())
	}
	// Discarded buffers are free again.
	if q.FreeCount() != 4 {
		t.Errorf("free = %d, want 4 (pool 5, one front)", q.FreeCount())
	}
	if err := q.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLatchNewestEmptyAndSingle(t *testing.T) {
	q := newTestQueue(3)
	if b, dropped := q.LatchNewest(0, 1000); b != nil || dropped != 0 {
		t.Error("empty latch-newest should be a no-op")
	}
	f := &Frame{Seq: 0, QueuedAt: 0}
	q.Enqueue(q.Dequeue(f))
	b, dropped := q.LatchNewest(10, 1000)
	if b == nil || dropped != 0 {
		t.Errorf("single-buffer latch-newest: b=%v dropped=%d", b, dropped)
	}
}

// TestConservationUnderAllocFaultStream drives random operation streams
// through a queue whose allocation hook fails on a scripted byte pattern,
// checking the conservation invariant after every single operation. The
// op stream and fault stream both come from testing/quick, so the search
// covers interleavings a hand-written test would not.
func TestConservationUnderAllocFaultStream(t *testing.T) {
	prop := func(ops []uint8, faults []uint8) bool {
		q := newTestQueue(4)
		fi := 0
		q.SetAllocFault(func() bool {
			if len(faults) == 0 {
				return false
			}
			v := faults[fi%len(faults)]
			fi++
			return v%3 == 0 // fail roughly a third of allocations
		})
		var now simtime.Time
		var dequeued []*Buffer
		seq := 0
		for _, op := range ops {
			now = now.Add(simtime.FromMillis(1))
			switch op % 4 {
			case 0: // dequeue
				f := &Frame{Seq: seq}
				if b := q.Dequeue(f); b != nil {
					seq++
					dequeued = append(dequeued, b)
				}
			case 1: // enqueue the oldest dequeued buffer
				if len(dequeued) > 0 {
					b := dequeued[0]
					dequeued = dequeued[1:]
					b.Frame.QueuedAt = now
					q.Enqueue(b)
				}
			case 2: // latch
				q.Latch(now, simtime.FromMillis(16))
			case 3: // cancel the newest dequeued buffer
				if len(dequeued) > 0 {
					b := dequeued[len(dequeued)-1]
					dequeued = dequeued[:len(dequeued)-1]
					q.CancelDequeue(b)
				}
			}
			if err := q.CheckInvariants(); err != nil {
				t.Logf("after op %d: %v", op, err)
				return false
			}
		}
		// Nothing leaked: accounted slots equal the pool.
		return q.FreeCount()+q.QueuedCount()+len(dequeued)+frontCount(q) == q.Capacity()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocFaultCountsAndRefuses(t *testing.T) {
	q := newTestQueue(3)
	fail := true
	q.SetAllocFault(func() bool { return fail })
	if b := q.Dequeue(&Frame{}); b != nil {
		t.Fatal("faulted dequeue returned a buffer")
	}
	if q.Stats().AllocFailed != 1 || q.Stats().Dequeued != 0 {
		t.Fatalf("stats = %+v", q.Stats())
	}
	if q.FreeCount() != 3 {
		t.Fatalf("free = %d after refused dequeue, want 3", q.FreeCount())
	}
	fail = false
	if b := q.Dequeue(&Frame{}); b == nil {
		t.Fatal("dequeue refused after fault cleared")
	}
	// Exhaustion is reported as exhaustion, not as an allocation fault:
	// drain the pool fault-free, then fault the hook — an empty pool never
	// reaches it.
	q.Dequeue(&Frame{})
	q.Dequeue(&Frame{})
	fail = true
	failedBefore := q.Stats().AllocFailed
	if b := q.Dequeue(&Frame{}); b != nil {
		t.Fatal("dequeue from exhausted pool")
	}
	if q.Stats().AllocFailed != failedBefore {
		t.Fatal("pool exhaustion miscounted as an allocation fault")
	}
}
