package buffer

import "fmt"

// Checkpoint surface. A queue's serialisable state is the per-slot lifecycle
// plus the free/queued orderings (LIFO and FIFO respectively — order is
// behaviour) and the accumulated stats. Frames are owned by the pipeline's
// arena, so slots reference them by stream sequence number and the restore
// side resolves pointers through a caller-supplied lookup.

// SlotState is the serialisable state of one pool slot.
type SlotState struct {
	// State is the slot's lifecycle state.
	State State `json:"state"`
	// Frame is the occupying frame's stream seq, or -1 for a Free slot.
	Frame int `json:"frame"`
}

// QueueState is the serialisable state of a Queue.
type QueueState struct {
	Slots  []SlotState `json:"slots"`
	Free   []int       `json:"free,omitempty"`   // slot indices, LIFO order
	Queued []int       `json:"queued,omitempty"` // slot indices, FIFO order
	Front  int         `json:"front"`            // slot index, -1 when none
	Stats  Stats       `json:"stats"`
}

// Slot returns the pool buffer at index i, or nil when out of range. The
// restore path uses it to wire checkpointed references back to pool slots.
func (q *Queue) Slot(i int) *Buffer {
	if i < 0 || i >= len(q.pool) {
		return nil
	}
	return q.pool[i]
}

// State captures the queue for a checkpoint.
func (q *Queue) State() QueueState {
	st := QueueState{
		Slots: make([]SlotState, len(q.pool)),
		Front: -1,
		Stats: q.stats,
	}
	for i, b := range q.pool {
		s := SlotState{State: b.State, Frame: -1}
		if b.Frame != nil {
			s.Frame = b.Frame.Seq
		}
		st.Slots[i] = s
	}
	for _, b := range q.free {
		st.Free = append(st.Free, b.Slot)
	}
	for _, b := range q.queued {
		st.Queued = append(st.Queued, b.Slot)
	}
	if q.front != nil {
		st.Front = q.front.Slot
	}
	return st
}

// Restore loads checkpointed state into a freshly constructed queue of the
// same capacity. frameBySeq resolves frame references against the restored
// pipeline arena (nil for an unknown seq). Restore validates structure and
// the conservation invariant; it returns errors rather than panicking so a
// corrupt snapshot can never crash a resume.
func (q *Queue) Restore(st QueueState, frameBySeq func(seq int) *Frame) error {
	if frameBySeq == nil {
		return fmt.Errorf("buffer: restore without a frame resolver")
	}
	if len(q.free) != len(q.pool) || len(q.queued) != 0 || q.front != nil {
		return fmt.Errorf("buffer: restore into a used queue")
	}
	if len(st.Slots) != len(q.pool) {
		return fmt.Errorf("buffer: checkpoint has %d slots, queue has %d", len(st.Slots), len(q.pool))
	}
	for i, s := range st.Slots {
		if s.State < Free || s.State > Front {
			return fmt.Errorf("buffer: slot %d has invalid state %d", i, int(s.State))
		}
		b := q.pool[i]
		b.State = s.State
		b.Frame = nil
		if s.State == Free {
			if s.Frame != -1 {
				return fmt.Errorf("buffer: free slot %d references frame %d", i, s.Frame)
			}
			continue
		}
		f := frameBySeq(s.Frame)
		if f == nil {
			return fmt.Errorf("buffer: slot %d references unknown frame %d", i, s.Frame)
		}
		b.Frame = f
	}
	q.free = q.free[:0]
	for _, slot := range st.Free {
		b := q.Slot(slot)
		if b == nil {
			return fmt.Errorf("buffer: free list references slot %d outside pool", slot)
		}
		if b.State != Free {
			return fmt.Errorf("buffer: free list references slot %d in state %v", slot, b.State)
		}
		q.free = append(q.free, b)
	}
	for _, slot := range st.Queued {
		b := q.Slot(slot)
		if b == nil {
			return fmt.Errorf("buffer: queued list references slot %d outside pool", slot)
		}
		if b.State != Queued {
			return fmt.Errorf("buffer: queued list references slot %d in state %v", slot, b.State)
		}
		q.queued = append(q.queued, b)
	}
	q.front = nil
	if st.Front != -1 {
		b := q.Slot(st.Front)
		if b == nil {
			return fmt.Errorf("buffer: front references slot %d outside pool", st.Front)
		}
		if b.State != Front {
			return fmt.Errorf("buffer: front references slot %d in state %v", st.Front, b.State)
		}
		q.front = b
	}
	q.stats = st.Stats
	if err := q.CheckInvariants(); err != nil {
		return fmt.Errorf("buffer: restored state inconsistent: %w", err)
	}
	return nil
}
