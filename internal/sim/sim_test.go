package sim

import (
	"testing"

	"dvsync/internal/core"
	"dvsync/internal/display"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// scripted builds a trace of explicit total frame costs (ms) with a 35 % UI
// share.
func scripted(name string, costsMs ...float64) *workload.Trace {
	t := &workload.Trace{Name: name}
	for _, ms := range costsMs {
		total := simtime.FromMillis(ms)
		ui := simtime.Duration(float64(total) * 0.35)
		t.Costs = append(t.Costs, workload.Cost{UI: ui, RS: total - ui, Class: workload.Deterministic})
	}
	return t
}

func panel60() display.Config {
	return display.Config{Name: "test", RefreshHz: 60, Width: 1080, Height: 2340}
}

func repeat(ms float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = ms
	}
	return out
}

// TestVSyncSmoothShortFrames: frames well under one period produce zero
// janks and pure direct composition under VSync.
func TestVSyncSmoothShortFrames(t *testing.T) {
	tr := scripted("short", repeat(5, 60)...)
	r := Run(Config{Mode: ModeVSync, Panel: panel60(), Buffers: 3, Trace: tr})
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if len(r.Janks) != 0 {
		t.Fatalf("janks = %d, want 0", len(r.Janks))
	}
	if r.Skipped != 0 {
		t.Fatalf("skipped = %d, want 0", r.Skipped)
	}
	if len(r.Presented) != 60 {
		t.Fatalf("presented = %d, want 60", len(r.Presented))
	}
	if r.Stuffed != 0 {
		t.Errorf("stuffed = %d, want 0 on a healthy stream", r.Stuffed)
	}
	// Direct-composition latency is 2 periods (UI tick → latch next edge →
	// photon one more edge later).
	ls := r.LatencySummary()
	if ls.Mean < 2*16.5 || ls.Mean > 2*16.9 {
		t.Errorf("mean latency %.2fms, want ≈33.3ms", ls.Mean)
	}
}

// TestVSyncLongFrameJanksAndStuffing reproduces the Figure 2 trace: one
// heavy frame causes janks and all subsequent frames get stuffed (+1 period
// of latency).
func TestVSyncLongFrameJanksAndStuffing(t *testing.T) {
	costs := repeat(5, 40)
	costs[10] = 40 // ~2.4 periods of work
	tr := scripted("fig2", costs...)
	r := Run(Config{Mode: ModeVSync, Panel: panel60(), Buffers: 3, Trace: tr})
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if len(r.Janks) == 0 {
		t.Fatal("expected janks from the long frame")
	}
	if r.Stuffed == 0 {
		t.Fatal("expected buffer stuffing after the jank")
	}
	// Latency of direct frames before the jank ≈ 2 periods; frames after
	// it ≈ 3 periods (Figure 2's dark-gray arrow).
	early := r.LatencyMs[2]
	late := r.LatencyMs[len(r.LatencyMs)-2]
	if late < early+14 {
		t.Errorf("post-jank latency %.1fms not one period above pre-jank %.1fms", late, early)
	}
	if !r.Janks[0].KeyFrame {
		t.Error("jank should be attributed to a key frame")
	}
}

// TestDVSyncHidesLongFrame reproduces Figure 10: the same workload that
// janks under VSync is perfectly smooth under D-VSync because accumulated
// short frames cover the long one.
func TestDVSyncHidesLongFrame(t *testing.T) {
	costs := repeat(5, 40)
	costs[10] = 40
	tr := scripted("fig10", costs...)
	v := Run(Config{Mode: ModeVSync, Panel: panel60(), Buffers: 3, Trace: tr})
	d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if !d.Completed {
		t.Fatal("D-VSync run did not complete")
	}
	if len(v.Janks) == 0 {
		t.Fatal("baseline should jank")
	}
	if len(d.Janks) != 0 {
		t.Fatalf("D-VSync janks = %d, want 0 (cushion %d periods)", len(d.Janks), 3)
	}
	if d.Skipped != 0 {
		t.Errorf("D-VSync skipped %d frames, must render all", d.Skipped)
	}
	if len(d.Presented) != 40 {
		t.Errorf("D-VSync presented %d frames, want 40", len(d.Presented))
	}
	if d.FPEPreStarts == 0 {
		t.Error("FPE never pre-started a frame")
	}
	if d.FPESyncBlocks == 0 {
		t.Error("FPE never hit the pre-render limit (sync stage)")
	}
}

// TestDVSyncOverwhelmedStillJanks: a frame longer than the whole cushion
// still drops (D-VSync is not a panacea, §6.1).
func TestDVSyncOverwhelmedStillJanks(t *testing.T) {
	costs := repeat(5, 40)
	costs[20] = 120 // ~7 periods of work against a 3-period cushion
	tr := scripted("overwhelm", costs...)
	d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if !d.Completed {
		t.Fatal("run did not complete")
	}
	if len(d.Janks) == 0 {
		t.Fatal("a 7-period frame must jank even under D-VSync")
	}
}

// TestDVSyncDTimestampAccuracy: with a jitter-free panel and no janks,
// every D-Timestamp must match the actual present time exactly.
func TestDVSyncDTimestampAccuracy(t *testing.T) {
	tr := scripted("clean", repeat(5, 50)...)
	d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if !d.Completed {
		t.Fatal("run did not complete")
	}
	if len(d.Janks) != 0 {
		t.Fatalf("unexpected janks: %d", len(d.Janks))
	}
	if d.DTVMaxAbsErrMs > 0.001 {
		t.Errorf("max DTV error %.4fms, want 0 on a jitter-free panel", d.DTVMaxAbsErrMs)
	}
}

// TestDVSyncDTimestampPacing: D-Timestamps of consecutive presented frames
// advance by exactly one period — uniform animation pacing (§4.4).
func TestDVSyncDTimestampPacing(t *testing.T) {
	tr := scripted("pacing", repeat(6, 50)...)
	d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	period := d.Period
	for i := 1; i < len(d.Presented); i++ {
		dt := d.Presented[i].DTimestamp.Sub(d.Presented[i-1].DTimestamp)
		if dt != period {
			t.Fatalf("frame %d: D-Timestamp step %v, want %v", i, dt, period)
		}
	}
}

// TestDVSyncJitterCalibration: with panel jitter, DTV error stays bounded
// near the jitter scale thanks to periodic calibration.
func TestDVSyncJitterCalibration(t *testing.T) {
	tr := scripted("jitter", repeat(5, 100)...)
	cfg := Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr}
	cfg.Panel.JitterStdDev = simtime.FromMicros(80)
	cfg.Panel.JitterSeed = 7
	d := Run(cfg)
	if !d.Completed {
		t.Fatal("run did not complete")
	}
	// Error should be on the order of the jitter (~0.08 ms), far below a
	// period (16.7 ms). Allow generous headroom.
	if d.DTVMeanAbsErrMs > 1.0 {
		t.Errorf("mean DTV error %.3fms too large under 80µs jitter", d.DTVMeanAbsErrMs)
	}
}

// TestVSyncSkipsContent: under VSync, blocked ticks skip animation content;
// under D-VSync every frame is rendered (the §6.7 power accounting).
func TestVSyncSkipsContent(t *testing.T) {
	costs := repeat(5, 60)
	for i := 10; i < 50; i += 8 {
		costs[i] = 38
	}
	tr := scripted("skips", costs...)
	v := Run(Config{Mode: ModeVSync, Panel: panel60(), Buffers: 3, Trace: tr})
	d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if v.Skipped == 0 {
		t.Error("VSync should skip content when blocked")
	}
	if d.Skipped != 0 {
		t.Error("D-VSync must not skip content")
	}
	if d.ExecutedWork <= v.ExecutedWork {
		t.Error("D-VSync should execute at least the work VSync skipped")
	}
}

// TestRealtimeFramesStayOnVSyncPath: Realtime frames never decouple.
func TestRealtimeFramesStayOnVSyncPath(t *testing.T) {
	tr := scripted("rt", repeat(5, 30)...).WithClass(workload.Realtime)
	d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if d.DecoupledFrames != 0 {
		t.Errorf("decoupled %d realtime frames", d.DecoupledFrames)
	}
	if d.VSyncPathFrames == 0 {
		t.Error("no frames on VSync path")
	}
}

// TestInteractiveNeedsPredictor: Interactive frames decouple only when an
// IPL predictor is registered (§4.5 dual channels).
func TestInteractiveNeedsPredictor(t *testing.T) {
	tr := scripted("ia", repeat(5, 30)...).WithClass(workload.Interactive)
	oblivious := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if oblivious.DecoupledFrames != 0 {
		t.Error("interactive frames decoupled without a predictor")
	}
	aware := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr,
		Predictor: constPredictor{}})
	if aware.DecoupledFrames == 0 {
		t.Error("interactive frames not decoupled with a predictor")
	}
}

type constPredictor struct{}

func (constPredictor) Predict(_ []core.InputSample, _ simtime.Time) float64 { return 0 }

// TestRuntimeSwitchOff: with the controller disabled, D-VSync mode behaves
// like VSync (no decoupled frames).
func TestRuntimeSwitchOff(t *testing.T) {
	tr := scripted("off", repeat(5, 30)...)
	d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr, DisableDVSync: true})
	if d.DecoupledFrames != 0 {
		t.Errorf("decoupled %d frames with controller off", d.DecoupledFrames)
	}
}

// TestQueueInvariantsThroughout runs a bursty workload and validates buffer
// conservation at the end.
func TestQueueInvariantsThroughout(t *testing.T) {
	costs := repeat(5, 80)
	costs[10], costs[30], costs[55] = 45, 30, 60
	tr := scripted("inv", costs...)
	for _, mode := range []Mode{ModeVSync, ModeDVSync} {
		s := New(Config{Mode: mode, Panel: panel60(), Buffers: 5, Trace: tr})
		s.Run()
		if err := s.Queue().CheckInvariants(); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// TestMemoryAccounting checks the §6.4 memory model.
func TestMemoryAccounting(t *testing.T) {
	tr := scripted("mem", repeat(5, 10)...)
	r := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4, Trace: tr})
	want := int64(1080) * 2340 * 4 * 4
	if r.MemoryBytes != want {
		t.Errorf("memory = %d, want %d", r.MemoryBytes, want)
	}
}

// TestRuntimeSwitchWindow toggles D-VSync mid-run (the §6.5 pattern: active
// only while zooming): frames inside the window decouple, frames outside
// ride the VSync path.
func TestRuntimeSwitchWindow(t *testing.T) {
	tr := scripted("window", repeat(5, 90)...)
	period := simtime.PeriodForHz(60)
	winStart := simtime.Time(30 * int64(period))
	winEnd := simtime.Time(60 * int64(period))
	r := Run(Config{
		Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr,
		RuntimeSwitch: func(now simtime.Time) bool {
			return now >= winStart && now < winEnd
		},
	})
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if r.DecoupledFrames == 0 || r.VSyncPathFrames == 0 {
		t.Fatalf("both channels should be used: decoupled=%d vsync=%d",
			r.DecoupledFrames, r.VSyncPathFrames)
	}
	for _, f := range r.Presented {
		if f.Decoupled && (f.UIStart < winStart || f.UIStart >= winEnd+simtime.Time(period)) {
			t.Fatalf("frame %d decoupled at %v outside the window", f.Seq, f.UIStart)
		}
	}
}

// TestDropStaleUnderDVSync: a stale-dropping consumer discards the
// pre-rendered cushion (why §4.4 requires FIFO consumption).
func TestDropStaleUnderDVSync(t *testing.T) {
	costs := repeat(5, 60)
	costs[30] = 40
	tr := scripted("stale", costs...)
	fifo := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	drop := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr,
		DropStaleBuffers: true})
	if drop.StaleDropped == 0 {
		t.Fatal("stale consumer should discard accumulated buffers")
	}
	if fifo.StaleDropped != 0 {
		t.Fatal("FIFO consumer must not discard")
	}
	if len(drop.Janks) <= len(fifo.Janks) {
		t.Errorf("discarding the cushion should cost janks: fifo=%d drop=%d",
			len(fifo.Janks), len(drop.Janks))
	}
}

// TestRecorderCapturesLifecycle: the structured trace contains the full
// frame lifecycle in order.
func TestRecorderCapturesLifecycle(t *testing.T) {
	tr := scripted("rec", repeat(5, 20)...)
	rec := trace.NewRecorder()
	r := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4, Trace: tr, Recorder: rec})
	s := trace.Summarize(rec)
	if s.Frames != len(r.Presented) {
		t.Errorf("trace presents %d frames, result has %d", s.Frames, len(r.Presented))
	}
	if s.Events[trace.FrameStart] != 20 || s.Events[trace.FrameQueued] != 20 {
		t.Errorf("lifecycle events missing: %v", s.Events)
	}
	// Schema v2: every frame also records the UI→render handoff, strictly
	// between its start and queue boundaries.
	if s.Events[trace.FrameUIDone] != 20 {
		t.Errorf("ui-done events = %d, want 20", s.Events[trace.FrameUIDone])
	}
	bound := map[int][3]simtime.Time{}
	for _, ev := range rec.Events() {
		b := bound[ev.Frame]
		switch ev.Kind {
		case trace.FrameStart:
			b[0] = ev.At
		case trace.FrameUIDone:
			b[1] = ev.At
		case trace.FrameQueued:
			b[2] = ev.At
		}
		bound[ev.Frame] = b
	}
	for frame, b := range bound {
		if frame < 0 {
			continue
		}
		if b[1] <= b[0] || b[2] < b[1] {
			t.Errorf("frame %d: start %v, ui-done %v, queued %v out of order", frame, b[0], b[1], b[2])
		}
	}
	if s.DecoupledShare != 1 {
		t.Errorf("all frames decoupled, share = %v", s.DecoupledShare)
	}
}
