//go:build !race

package sim

import (
	"testing"

	"dvsync/internal/flight"
	"dvsync/internal/ipl"
)

// TestRunnerSteadyStateAllocs pins the reuse-path allocation budget: once
// every arena and ring has grown to the workload's high-water mark, a
// rewound run must stay at or under 8 allocations (the trajectory
// baseline pins the benchmark's exact count). Race instrumentation
// perturbs allocation accounting, so this file is excluded from -race
// runs — BenchmarkRunnerReuse and the perf gate cover the same budget.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	p := ckptProfile()
	rn := NewRunner(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4,
		Trace: p.Generate(200, 42), Predictor: ipl.Kalman{}})
	rn.Run()
	rn.Run()
	if avg := testing.AllocsPerRun(5, func() { rn.Run() }); avg > 8 {
		t.Errorf("steady-state allocations per reused run = %v, want <= 8", avg)
	}
}

// TestRunnerSteadyStateAllocsFlight pins the always-on flight recorder's
// steady-state price at zero: a reused run recording into the ring must
// hold the same ≤ 8 allocation budget as a bare run. The ring's event
// storage is preallocated at construction and Reset between runs keeps
// it, so recording a frame is a copy into owned memory, never an append
// that grows.
func TestRunnerSteadyStateAllocsFlight(t *testing.T) {
	p := ckptProfile()
	rn := NewRunner(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4,
		Trace: p.Generate(200, 42), Predictor: ipl.Kalman{},
		Recorder: flight.New(flight.Config{})})
	rn.Run()
	rn.Run()
	if avg := testing.AllocsPerRun(5, func() { rn.Run() }); avg > 8 {
		t.Errorf("steady-state allocations per reused run with flight recorder = %v, want <= 8", avg)
	}
}
