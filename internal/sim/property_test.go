package sim

import (
	"testing"
	"testing/quick"

	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// randomTrace builds a bounded random workload from raw fuzz bytes.
func randomTrace(raw []byte) *workload.Trace {
	if len(raw) < 8 {
		return nil
	}
	t := &workload.Trace{Name: "prop"}
	for _, b := range raw {
		// 1..30 ms frames: bodies, near-period frames and multi-period
		// key frames all occur.
		ms := 1 + float64(b%30)
		total := simtime.FromMillis(ms)
		ui := simtime.Duration(float64(total) * 0.35)
		t.Costs = append(t.Costs, workload.Cost{UI: ui, RS: total - ui,
			Class: workload.Deterministic})
	}
	return t
}

// TestSimulationInvariants fuzzes workloads through both architectures and
// checks the conservation laws every run must satisfy.
func TestSimulationInvariants(t *testing.T) {
	f := func(raw []byte, dvsync bool, bufSel uint8) bool {
		tr := randomTrace(raw)
		if tr == nil {
			return true
		}
		mode := ModeVSync
		buffers := 3 + int(bufSel%3) // 3..5
		if dvsync {
			mode = ModeDVSync
			buffers = 4 + int(bufSel%4) // 4..7
		}
		s := New(Config{Mode: mode, Panel: panel60(), Buffers: buffers, Trace: tr})
		r := s.Run()
		if !r.Completed {
			t.Logf("watchdog expired for %d frames", tr.Len())
			return false
		}
		// Conservation: every trace index was presented or skipped.
		if len(r.Presented)+r.Skipped != tr.Len() {
			t.Logf("presented %d + skipped %d != %d", len(r.Presented), r.Skipped, tr.Len())
			return false
		}
		// D-VSync never skips content.
		if mode == ModeDVSync && r.Skipped != 0 {
			t.Logf("D-VSync skipped %d", r.Skipped)
			return false
		}
		// Display window accounting: edges = latches−1 + janks.
		if r.EdgesInWindow != len(r.Presented)-1+len(r.Janks) {
			t.Logf("edges %d != %d latches−1 + %d janks",
				r.EdgesInWindow, len(r.Presented), len(r.Janks))
			return false
		}
		// Frames present in latch order with monotone present times, and
		// sequence numbers strictly increase (FIFO, no reordering).
		for i := 1; i < len(r.Presented); i++ {
			if r.Presented[i].Seq <= r.Presented[i-1].Seq {
				t.Log("sequence order violated")
				return false
			}
			if !r.Presented[i].PresentAt.After(r.Presented[i-1].PresentAt) {
				t.Log("present times not monotone")
				return false
			}
		}
		// Every presented frame has a consistent lifecycle.
		for _, f := range r.Presented {
			if !(f.UIStart <= f.UIDone && f.UIDone <= f.RSStart &&
				f.RSStart <= f.RSDone && f.RSDone == f.QueuedAt &&
				f.QueuedAt <= f.LatchedAt && f.LatchedAt < f.PresentAt) {
				t.Logf("frame %d lifecycle out of order: %+v", f.Seq, f)
				return false
			}
		}
		// Buffer conservation at the end of the run.
		if err := s.Queue().CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		// Stuffing split covers all latched frames.
		if r.Stuffed+r.Direct != len(r.Presented) {
			t.Logf("stuffed %d + direct %d != %d", r.Stuffed, r.Direct, len(r.Presented))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDVSyncDTimestampMonotoneProperty: issued D-Timestamps never regress
// across the presented stream, whatever the workload (§4.4's uniform
// pacing, elastic to drops).
func TestDVSyncDTimestampMonotoneProperty(t *testing.T) {
	f := func(raw []byte) bool {
		tr := randomTrace(raw)
		if tr == nil {
			return true
		}
		r := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
		for i := 1; i < len(r.Presented); i++ {
			if r.Presented[i].DTimestamp < r.Presented[i-1].DTimestamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDVSyncNeverWorseJanksProperty: on any deterministic-animation
// workload, D-VSync with one extra buffer never janks more than VSync.
func TestDVSyncNeverWorseJanksProperty(t *testing.T) {
	f := func(raw []byte) bool {
		tr := randomTrace(raw)
		if tr == nil {
			return true
		}
		v := Run(Config{Mode: ModeVSync, Panel: panel60(), Buffers: 3, Trace: tr})
		d := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4, Trace: tr})
		// D-VSync renders the frames VSync skipped, so compare drop *rates*
		// over the display window rather than raw counts.
		return d.FDPS() <= v.FDPS()+0.75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
