package sim

import (
	"bytes"
	"testing"

	"dvsync/internal/fault"
	"dvsync/internal/ipl"
	"dvsync/internal/par"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
	"dvsync/internal/workload"
)

func telemetryConfig(mode Mode, faults *fault.Config, reg *telemetry.Registry) Config {
	p := workload.Profile{
		Name: "telemetry", ShortMeanMs: 6, ShortSigmaMs: 2.5,
		LongRatio: 0.1, LongScaleMs: 24, LongAlpha: 1.7,
		Burstiness: 0.35, UIShare: 0.4, Class: workload.Interactive,
	}
	return Config{
		Mode: mode, Panel: panel60(), Buffers: 4,
		Trace: p.Generate(240, 77), Predictor: ipl.Kalman{},
		Faults:  faults,
		Metrics: reg,
	}
}

// TestTelemetryCountersMatchResult: the live counters agree with the
// result the run returns — the registry is a second view of the same run,
// not an independent estimate.
func TestTelemetryCountersMatchResult(t *testing.T) {
	for _, mode := range []Mode{ModeVSync, ModeDVSync} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			res := Run(telemetryConfig(mode, nil, reg))
			snap := reg.Snapshot()
			byName := map[string]telemetry.MetricSnapshot{}
			for _, m := range snap.Metrics {
				byName[m.Name] = m
			}
			if got := byName[telemetry.MetricFramesPresented].Value; int(got) != len(res.Presented) {
				t.Errorf("frames_presented %v, want %d", got, len(res.Presented))
			}
			if got := byName[telemetry.MetricJanks].Value; int(got) != len(res.Janks) {
				t.Errorf("janks %v, want %d", got, len(res.Janks))
			}
			if got := byName[telemetry.MetricStaleDropped].Value; int(got) != res.StaleDropped {
				t.Errorf("stale_dropped %v, want %d", got, res.StaleDropped)
			}
			lat := byName[telemetry.MetricFrameLatencyMs]
			if int(lat.Count) != len(res.LatencyMs) {
				t.Errorf("latency count %d, want %d", lat.Count, len(res.LatencyMs))
			}
			var sum float64
			for _, v := range res.LatencyMs {
				sum += v
			}
			if lat.Sum != sum {
				t.Errorf("latency sum %v, want %v", lat.Sum, sum)
			}
			if len(snap.Series.Rows) == 0 {
				t.Fatal("no sampled rows")
			}
			last := snap.Series.Rows[len(snap.Series.Rows)-1]
			if last.AtNs != snap.AtNs {
				t.Errorf("snapshot at %d, last row at %d", snap.AtNs, last.AtNs)
			}
		})
	}
}

// TestTelemetryZeroSampleAtStart: the sampler ticks at t=0 after the first
// edge (hardware priority precedes the control-band sampler), so row 0
// reflects the edge having fired.
func TestTelemetryZeroSampleAtStart(t *testing.T) {
	reg := telemetry.NewRegistry()
	Run(telemetryConfig(ModeDVSync, nil, reg))
	s := reg.Series()
	if len(s.Rows) == 0 || s.Rows[0].At != 0 {
		t.Fatalf("first sample at %v, want 0", s.Rows[0].At)
	}
	edgeCol := -1
	for i, c := range s.Columns {
		if c == telemetry.MetricEdges {
			edgeCol = i
		}
	}
	if edgeCol < 0 {
		t.Fatal("edges column missing")
	}
	if got := s.Rows[0].Values[edgeCol]; got != 1 {
		t.Errorf("edges at t=0 sample = %v, want 1 (edge fires before sampler)", got)
	}
}

// TestValidateMetricsConfig: interval without registry and negative
// intervals are configuration errors, not silent no-ops.
func TestValidateMetricsConfig(t *testing.T) {
	cfg := telemetryConfig(ModeVSync, nil, nil)
	cfg.MetricsInterval = simtime.FromMillis(5)
	if _, err := TryRun(cfg); err == nil {
		t.Error("MetricsInterval without Metrics accepted")
	}
	cfg = telemetryConfig(ModeVSync, nil, telemetry.NewRegistry())
	cfg.MetricsInterval = -1
	if _, err := TryRun(cfg); err == nil {
		t.Error("negative MetricsInterval accepted")
	}
}

// renderTelemetry runs `runs` identical simulations through par.Map under
// the given worker count and renders each run's Prometheus exposition and
// JSON snapshot to bytes.
func renderTelemetry(t *testing.T, workers, runs int, faulted bool) [][]byte {
	t.Helper()
	par.SetWorkers(workers)
	defer par.SetWorkers(0)
	out := par.Map(runs, func(i int) []byte {
		var faults *fault.Config
		if faulted {
			fc, err := fault.Scenario("stall", 0.6, 0, simtime.Time(4*simtime.Second), 99)
			if err != nil {
				panic(err)
			}
			faults = fc
		}
		reg := telemetry.NewRegistry()
		Run(telemetryConfig(ModeDVSync, faults, reg))
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			panic(err)
		}
		buf.WriteByte('\n')
		if err := reg.WriteJSON(&buf); err != nil {
			panic(err)
		}
		return buf.Bytes()
	})
	return out
}

// TestTelemetryDeterministicAcrossWorkers is the histogram-determinism
// gate: the same seed and scenario produce byte-identical Prometheus
// exposition and JSON snapshot whether runs are fanned out at -workers 1
// or 4, with and without fault injection.
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		name := "clean"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			serial := renderTelemetry(t, 1, 4, faulted)
			wide := renderTelemetry(t, 4, 4, faulted)
			if len(serial[0]) == 0 {
				t.Fatal("empty exposition")
			}
			for i := range serial {
				if !bytes.Equal(serial[i], serial[0]) {
					t.Fatalf("run %d diverged from run 0 at workers=1", i)
				}
				if !bytes.Equal(wide[i], serial[0]) {
					t.Fatalf("run %d at workers=4 diverged from workers=1 (%d vs %d bytes)",
						i, len(wide[i]), len(serial[0]))
				}
			}
		})
	}
}
