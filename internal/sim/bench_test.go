package sim_test

import (
	"testing"

	"dvsync/internal/bench"
	"dvsync/internal/sim"
)

// BenchmarkSimRun measures an end-to-end simulation of a 400-frame
// interactive workload under both architectures — the unit of work every
// experiment replica fans out. The body lives in internal/bench so that
// `dvbench -bench-json` measures exactly this workload when emitting the
// perf-trajectory snapshot CI gates against BENCH_baseline.json.
// Allocation counts here are the target of the hot-path cuts and of the
// zero-cost-without-registry telemetry contract.
func BenchmarkSimRun(b *testing.B) {
	for _, mode := range []sim.Mode{sim.ModeVSync, sim.ModeDVSync} {
		b.Run(mode.String(), bench.SimRun(mode))
	}
}

// BenchmarkRunnerReuse measures the reuse path: one Runner replaying the
// pinned workload back to back. It reports runs/sec and the steady-state
// allocs/op of a rewound run (gated at ≤ 8 by TestRunnerSteadyStateAllocs
// and the trajectory baseline). The body lives in internal/bench for the
// same single-definition reason as BenchmarkSimRun.
func BenchmarkRunnerReuse(b *testing.B) {
	bench.RunnerReuse(b)
}

// BenchmarkRunnerReuseFlight is the reuse path with the flight recorder
// attached: the always-on observability contract pins its steady-state
// cost at zero extra allocations over BenchmarkRunnerReuse.
func BenchmarkRunnerReuseFlight(b *testing.B) {
	bench.RunnerReuseFlight(b)
}
