package sim

import (
	"testing"

	"dvsync/internal/ipl"
	"dvsync/internal/workload"
)

// BenchmarkSimRun measures an end-to-end simulation of a 400-frame
// interactive workload under both architectures — the unit of work every
// experiment replica fans out. Allocation counts here are the target of
// the hot-path cuts (event free list, preallocated result and trace
// buffers); regressions show up as allocs/op growth against
// BENCH_baseline.json.
func BenchmarkSimRun(b *testing.B) {
	p := workload.Profile{
		Name: "bench", ShortMeanMs: 5, ShortSigmaMs: 2,
		LongRatio: 0.06, LongScaleMs: 20, LongAlpha: 1.8,
		Burstiness: 0.3, UIShare: 0.4, Class: workload.Interactive,
	}
	tr := p.Generate(400, 1234)
	for _, mode := range []Mode{ModeVSync, ModeDVSync} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Run(Config{
					Mode: mode, Panel: panel60(), Buffers: 4,
					Trace: tr, Predictor: ipl.Kalman{},
				})
			}
		})
	}
}
