package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"dvsync/internal/fault"
	"dvsync/internal/health"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
)

func msT(x float64) simtime.Time { return simtime.Time(simtime.FromMillis(x)) }

func TestValidateFaultConfigs(t *testing.T) {
	base := func() Config {
		return Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5,
			Trace: scripted("v", repeat(5, 10)...)}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the error; "" means valid
	}{
		{"fault-free", func(*Config) {}, ""},
		{"valid faults", func(c *Config) {
			c.Faults = &fault.Config{Stalls: []fault.Episode{{Start: msT(10), End: msT(50), Severity: 1}}}
		}, ""},
		{"negative severity", func(c *Config) {
			c.Faults = &fault.Config{Stalls: []fault.Episode{{Start: 0, End: msT(50), Severity: -2}}}
		}, "negative severity"},
		{"overlapping episodes", func(c *Config) {
			c.Faults = &fault.Config{AllocFail: []fault.Episode{
				{Start: 0, End: msT(50), Severity: 0.1},
				{Start: msT(40), End: msT(90), Severity: 0.2},
			}}
		}, "overlapping"},
		{"zero fallback threshold", func(c *Config) {
			c.EnableFallback = true // Health.MaxFDPS left zero
		}, "threshold must be positive"},
		{"valid fallback", func(c *Config) {
			c.EnableFallback = true
			c.Health = health.Config{MaxFDPS: 5}
		}, ""},
		{"fallback on VSync path", func(c *Config) {
			c.Mode = ModeVSync
			c.Buffers = 3
			c.EnableFallback = true
			c.Health = health.Config{MaxFDPS: 5}
		}, "requires D-VSync"},
		{"negative overload threshold", func(c *Config) {
			c.FPEOverloadAfter = -1
		}, "overload"},
		{"negative recovery threshold", func(c *Config) {
			c.FPERecoverAfter = -3
		}, "recovery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			err := Validate(cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

// Buffer conservation under random allocation-failure sequences: whatever
// the fault stream does, every pool slot stays in exactly one lifecycle
// state, the run completes, and every trace index is either presented or
// (VSync only) skipped.
func TestBufferConservationUnderAllocFaults(t *testing.T) {
	prop := func(seed int64, sevRaw uint8, mode bool) bool {
		sev := float64(sevRaw%10) / 10 // 0.0 … 0.9
		cfg := Config{
			Mode:    ModeVSync,
			Panel:   panel60(),
			Buffers: 3,
			Trace:   scripted("alloc-prop", repeat(5, 90)...),
			Faults: &fault.Config{
				Seed: seed,
				AllocFail: []fault.Episode{
					{Start: msT(200), End: msT(900), Severity: sev},
				},
			},
		}
		if mode {
			cfg.Mode = ModeDVSync
			cfg.Buffers = 5
		}
		s := New(cfg)
		r := s.Run()
		if err := s.Queue().CheckInvariants(); err != nil {
			t.Logf("invariants violated (seed=%d sev=%.1f mode=%v): %v", seed, sev, cfg.Mode, err)
			return false
		}
		if !r.Completed {
			t.Logf("run did not complete (seed=%d sev=%.1f mode=%v)", seed, sev, cfg.Mode)
			return false
		}
		if sev > 0 && r.AllocFailed != r.FaultCounters.AllocFailures {
			t.Logf("alloc accounting mismatch: queue=%d injector=%d", r.AllocFailed, r.FaultCounters.AllocFailures)
			return false
		}
		n := cfg.Trace.Len()
		if cfg.Mode == ModeDVSync {
			if len(r.Presented) != n {
				t.Logf("D-VSync presented %d of %d", len(r.Presented), n)
				return false
			}
			return true
		}
		if len(r.Presented)+r.Skipped != n {
			t.Logf("VSync presented %d + skipped %d != %d", len(r.Presented), r.Skipped, n)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// fallbackScenario is the scripted degradation used by the golden fallback
// test: a healthy lead-in, a sustained overload burst that trips the FDPS
// watchdog, then a long healthy tail for the hysteresis recovery.
func fallbackScenario(rec *trace.Recorder) Config {
	// 35 ms total is 22.75 ms in the RS stage alone — beyond one 60 Hz
	// period, so the pipelined producer genuinely falls behind (a 25 ms
	// frame would not: its longest stage still fits a period).
	costs := append(append(repeat(5, 30), repeat(35, 25)...), repeat(5, 60)...)
	cfg := Config{
		Mode:           ModeDVSync,
		Panel:          panel60(),
		Buffers:        5,
		Trace:          scripted("fallback", costs...),
		EnableFallback: true,
		Health: health.Config{
			Window:       200 * simtime.Millisecond,
			MaxFDPS:      10,
			RecoverAfter: 300 * simtime.Millisecond,
		},
	}
	if rec != nil {
		// Assign only when present: a typed-nil *Recorder inside the Sink
		// interface would defeat the Recorder != nil guards.
		cfg.Recorder = rec
	}
	return cfg
}

// TestGoldenFallbackScenario pins the exact supervised-fallback behaviour:
// the trip edge, the recovery edge, and the digest of the full event trace.
// Any timing change in the control path shows up here first.
func TestGoldenFallbackScenario(t *testing.T) {
	rec := trace.NewRecorder()
	r := Run(fallbackScenario(rec))
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if len(r.Fallbacks) != 2 {
		t.Fatalf("fallbacks = %d, want trip + recovery", len(r.Fallbacks))
	}
	trip, recov := r.Fallbacks[0], r.Fallbacks[1]
	if trip.To != ModeVSync || trip.Reason != health.ReasonFDPS {
		t.Fatalf("trip = {to %v, reason %v}, want VSync/fdps", trip.To, trip.Reason)
	}
	if recov.To != ModeDVSync || recov.Reason != health.ReasonNone {
		t.Fatalf("recovery = {to %v, reason %v}, want D-VSync/none", recov.To, recov.Reason)
	}
	// Golden timings: pinned from the deterministic engine. The trip lands
	// on the edge where the overload burst has janked past MaxFDPS; the
	// recovery lands RecoverAfter of clean edges later.
	const wantTrip, wantRecov = "733.333ms", "1333.333ms"
	if got := fmt.Sprint(trip.At); got != wantTrip {
		t.Errorf("trip at %s, want %s", got, wantTrip)
	}
	if got := fmt.Sprint(recov.At); got != wantRecov {
		t.Errorf("recovery at %s, want %s", got, wantRecov)
	}
	// While the fallback held, frames must have been produced on the VSync
	// channel; after recovery, decoupled production resumes.
	if r.DecoupledFrames == 0 || r.VSyncPathFrames == 0 {
		t.Fatalf("channel split decoupled=%d vsync=%d, want both non-zero",
			r.DecoupledFrames, r.VSyncPathFrames)
	}
	var sb strings.Builder
	if err := rec.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	// Digest of the schema-v2 trace (v2 added frame-ui-done events).
	const wantDigest = "2f4c882cba8e686d"
	if got := hex.EncodeToString(sum[:8]); got != wantDigest {
		t.Errorf("trace digest = %s, want %s", got, wantDigest)
	}
}

// Mid-run fallback preserves pipeline invariants: re-run the golden
// scenario and check the queue after the dust settles. While the fallback
// holds, the app is on time-based VSync triggering, so overloaded slots are
// skipped like the baseline — presented + skipped must still cover the
// whole trace.
func TestFallbackPreservesInvariants(t *testing.T) {
	s := New(fallbackScenario(nil))
	r := s.Run()
	if err := s.Queue().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if got, n := len(r.Presented)+r.Skipped, s.cfg.Trace.Len(); got != n {
		t.Fatalf("presented %d + skipped %d != %d", len(r.Presented), r.Skipped, n)
	}
	if r.Skipped == 0 {
		t.Fatal("overload burst skipped nothing: fallback is not on the time-based path")
	}
}
