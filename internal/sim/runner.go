package sim

import "dvsync/internal/workload"

// Runner is a reusable run context: it wires the full simulation graph —
// event engine, panel, signal distributor, buffer queue, producer arena,
// D-VSync core, telemetry registry and result buffers — exactly once, and
// replays runs against it. Construction is the expensive part of a
// simulation at experiment scale (every wire-up allocates the whole object
// graph); Run rewinds the graph in place instead, so back-to-back runs
// settle at a near-zero steady-state allocation count
// (BenchmarkRunnerReuse pins the number).
//
// The contract is strict equivalence, not approximation: a run replayed
// through a reused Runner produces byte-identical outputs — Result
// scalars, presented-frame sequence, trace JSONL, Perfetto export and
// telemetry rows — to New(cfg).Run() on the same inputs. The golden-
// scenario tests in runner_test.go hold that line.
//
// Reuse is explicit, not pooled: callers own the Runner and its lifetime
// (typically one per par worker, via par.MapLocal). A Runner is NOT safe
// for concurrent use; concurrent runs need one Runner each.
//
// Between runs only the trace may change (RunTrace) — replica loops draw
// independent frame sequences from one calibrated scenario. Everything
// else (panel, faults, policies, hooks) is fixed at construction; runs
// needing a different configuration need a new Runner.
type Runner struct {
	sys  *System
	runs int
}

// NewRunner validates the config and wires the graph once. Invalid
// configurations panic, exactly like New.
func NewRunner(cfg Config) *Runner {
	return &Runner{sys: New(cfg)}
}

// Run replays the configured scenario and returns the collected result.
// Every call — including the first — starts from a rewound graph, so a
// Runner needs no "already used" bookkeeping.
//
// The returned Result (and its slices) is owned by the Runner and is
// INVALIDATED by the next Run/RunTrace call: callers that keep results
// across runs must copy what they need first, exactly as with the
// scratch buffers of any reused context.
//
//dvlint:hotpath runs once per reused run
func (r *Runner) Run() *Result {
	return r.RunTrace(r.sys.cfg.Trace)
}

// RunTrace replays the scenario against a different workload trace — the
// replica pattern: one calibrated configuration, independent frame
// sequences. The trace must be non-empty. The result ownership rule of
// Run applies.
//
//dvlint:hotpath runs once per reused run
func (r *Runner) RunTrace(tr *workload.Trace) *Result {
	r.sys.reset(tr)
	r.runs++
	return r.sys.Run()
}

// Reset rewinds the graph without running, leaving the System ready for
// segmented execution — checkpointing (RunCheckpointed, Snapshot) or
// manual engine stepping through System().
func (r *Runner) Reset() {
	r.sys.reset(r.sys.cfg.Trace)
	r.runs++
}

// System exposes the wired simulation for segmented runs after Reset.
// The usual caveat applies: it is rewound, and therefore invalidated, by
// the next Run/RunTrace/Reset.
func (r *Runner) System() *System { return r.sys }

// Runs reports how many runs (or Resets) this Runner has served — the
// observability hook for reuse-path tests and stats.
func (r *Runner) Runs() int { return r.runs }
