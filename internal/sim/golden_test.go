package sim

import (
	"testing"

	"dvsync/internal/simtime"
)

// Golden tests pin the exact event timing of the canonical workloads. The
// simulation is deterministic, so any change to the pipeline mechanics that
// shifts a single latch or jank shows up here.

const p60ns = 16666666 // one 60 Hz period in ns

func edges(ns ...int64) []simtime.Time {
	out := make([]simtime.Time, len(ns))
	for i, v := range ns {
		out[i] = simtime.Time(v)
	}
	return out
}

// TestGoldenVSyncSteadyState: 4 ms frames on a 60 Hz panel. Frame k's UI
// starts at tick k, queues at k·P+4 ms, latches at (k+1)·P, presents at
// (k+2)·P — the textbook 2-period pipeline of Figure 2.
func TestGoldenVSyncSteadyState(t *testing.T) {
	tr := scripted("golden-steady", repeat(4, 6)...)
	r := Run(Config{Mode: ModeVSync, Panel: panel60(), Buffers: 3, Trace: tr})
	if len(r.Presented) != 6 || len(r.Janks) != 0 {
		t.Fatalf("presented=%d janks=%d", len(r.Presented), len(r.Janks))
	}
	for k, f := range r.Presented {
		wantUI := simtime.Time(int64(k) * p60ns)
		wantLatch := simtime.Time(int64(k+1) * p60ns)
		wantPresent := simtime.Time(int64(k+2) * p60ns)
		if f.UIStart != wantUI {
			t.Errorf("frame %d UIStart %v, want %v", k, f.UIStart, wantUI)
		}
		if f.QueuedAt != wantUI.Add(simtime.FromMillis(4)) {
			t.Errorf("frame %d QueuedAt %v", k, f.QueuedAt)
		}
		if f.LatchedAt != wantLatch {
			t.Errorf("frame %d LatchedAt %v, want %v", k, f.LatchedAt, wantLatch)
		}
		if f.PresentAt != wantPresent {
			t.Errorf("frame %d PresentAt %v, want %v", k, f.PresentAt, wantPresent)
		}
		if f.ContentTime != wantUI {
			t.Errorf("frame %d ContentTime %v, want trigger tick", k, f.ContentTime)
		}
	}
}

// TestGoldenFigure2: short frames with one 2.4-period key frame at index 4.
// The exact Figure 2 cascade: the key frame misses its slots (janks), and
// the frames behind it are stuffed one extra period from then on.
func TestGoldenFigure2(t *testing.T) {
	costs := repeat(4, 10)
	costs[4] = 40 // 2.4 periods
	tr := scripted("golden-fig2", costs...)
	r := Run(Config{Mode: ModeVSync, Panel: panel60(), Buffers: 3, Trace: tr})

	// Frame 4's UI starts at tick 4 and queues 40 ms later, missing edges
	// 5 and 6; with nothing queued behind frame 3, both edges jank.
	wantJanks := edges(5*p60ns, 6*p60ns)
	if len(r.Janks) != len(wantJanks) {
		t.Fatalf("janks = %d at %v, want %d", len(r.Janks), r.Janks, len(wantJanks))
	}
	for i, j := range r.Janks {
		if j.At != wantJanks[i] {
			t.Errorf("jank %d at %v, want %v", i, j.At, wantJanks[i])
		}
		if !j.KeyFrame {
			t.Errorf("jank %d not attributed to the key frame", i)
		}
	}

	// One slot was skipped while blocked (the time-based animation jumped).
	if r.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", r.Skipped)
	}

	// Frame 5's UI still fit at tick 5 (the key frame's UI stage had
	// finished), so its render queued behind the key frame; tick 6 found
	// every buffer occupied and its content slot was skipped. The key
	// frame latches at edge 7, frame 5 — stuffed behind it — at edge 8.
	bySeq := map[int]int{}
	for i, f := range r.Presented {
		bySeq[f.Seq] = i
	}
	if _, ok := bySeq[6]; ok {
		t.Fatal("slot 6 should have been skipped")
	}
	kf := r.Presented[bySeq[4]]
	if kf.LatchedAt != simtime.Time(7*p60ns) {
		t.Errorf("key frame latched at %v, want edge 7", kf.LatchedAt)
	}
	nf := r.Presented[bySeq[5]]
	if nf.LatchedAt != simtime.Time(8*p60ns) {
		t.Errorf("frame 5 latched at %v, want edge 8", nf.LatchedAt)
	}
	if nf.QueueWait() < simtime.Duration(p60ns) {
		t.Errorf("frame 5 queue wait %v: should be buffer-stuffed", nf.QueueWait())
	}
	// Post-recovery steady state: frame 7 starts at tick 7 and presents at
	// edge 10 — the persistent 3-period latency of Figure 2's dark-gray
	// arrow.
	sf := r.Presented[bySeq[7]]
	wantLat := 3 * simtime.Duration(p60ns).Milliseconds()
	if lat := sf.PresentAt.Sub(sf.ContentTime).Milliseconds(); lat < wantLat-0.01 || lat > wantLat+0.01 {
		t.Errorf("steady-state latency %.2f ms, want %.2f", lat, wantLat)
	}
}

// TestGoldenDVSyncAccumulation: D-VSync with 5 buffers on 4 ms frames.
// Frames 0..3 pre-execute back to back (accumulation); the queue reaches
// the pre-render limit and execution enters the sync stage.
func TestGoldenDVSyncAccumulation(t *testing.T) {
	tr := scripted("golden-accum", repeat(4, 8)...)
	r := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if len(r.Janks) != 0 {
		t.Fatalf("janks = %d", len(r.Janks))
	}
	// Frame 0 starts at the first tick; frames 1..3 start as the previous
	// UI stage completes (UI cost = 1.4 ms of the 4 ms total).
	ui := simtime.Duration(float64(simtime.FromMillis(4)) * 0.35)
	for k := 0; k < 4; k++ {
		want := simtime.Time(int64(k) * int64(ui))
		if got := r.Presented[k].UIStart; got != want {
			t.Errorf("frame %d UIStart %v, want %v (back-to-back accumulation)", k, got, want)
		}
	}
	// Frame 4 must wait for the first slot release: the latch at edge 1.
	if got := r.Presented[4].UIStart; got != simtime.Time(1*p60ns) {
		t.Errorf("frame 4 UIStart %v, want the edge-1 slot release (sync stage)", got)
	}
	// D-Timestamps: frame k displays at edge k+1 + one scan-out period.
	for k, f := range r.Presented {
		want := simtime.Time(int64(k+2) * p60ns)
		if f.DTimestamp != want {
			t.Errorf("frame %d D-Timestamp %v, want %v", k, f.DTimestamp, want)
		}
		if f.PresentAt != want {
			t.Errorf("frame %d PresentAt %v, want %v (perfect prediction)", k, f.PresentAt, want)
		}
	}
}

// TestGoldenDVSyncKeyFrameCoverage: the Figure 10 trace. The 2.4-period
// key frame at index 4 is fully covered by the accumulated cushion: not a
// single jank, and every frame still presents exactly one period apart.
func TestGoldenDVSyncKeyFrameCoverage(t *testing.T) {
	costs := repeat(4, 10)
	costs[4] = 40
	tr := scripted("golden-fig10", costs...)
	r := Run(Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 5, Trace: tr})
	if len(r.Janks) != 0 {
		t.Fatalf("janks = %d, Figure 10(b) is perfectly smooth", len(r.Janks))
	}
	if len(r.Presented) != 10 || r.Skipped != 0 {
		t.Fatalf("presented=%d skipped=%d", len(r.Presented), r.Skipped)
	}
	for k := 1; k < len(r.Presented); k++ {
		dt := r.Presented[k].PresentAt.Sub(r.Presented[k-1].PresentAt)
		if dt != simtime.Duration(p60ns) {
			t.Errorf("present step %d = %v, want exactly one period", k, dt)
		}
	}
}
