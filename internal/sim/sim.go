// Package sim binds the panel, buffer queue, signal distributor, rendering
// pipeline and scheduler (VSync or D-VSync) into a runnable full-system
// simulation, and collects the per-frame records every experiment is
// computed from.
package sim

import (
	"fmt"
	"sort"

	"dvsync/internal/buffer"
	"dvsync/internal/core"
	"dvsync/internal/display"
	"dvsync/internal/event"
	"dvsync/internal/fault"
	"dvsync/internal/health"
	"dvsync/internal/ltpo"
	"dvsync/internal/metrics"
	"dvsync/internal/pipeline"
	"dvsync/internal/signal"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// Mode selects the rendering architecture.
type Mode int

// Rendering architectures.
const (
	// ModeVSync is the conventional architecture: frame execution is
	// triggered by software VSync signals, pacing production 1:1 with the
	// display (Figure 10a).
	ModeVSync Mode = iota
	// ModeDVSync is the decoupled architecture: the FPE pre-executes
	// frames ahead of display VSyncs under the pre-render limit
	// (Figure 10b).
	ModeDVSync
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeVSync {
		return "VSync"
	}
	return "D-VSync"
}

// DefaultDVSyncOverhead is the per-frame FPE+DTV bookkeeping cost measured
// in §6.4 (102.6 µs on a little core).
const DefaultDVSyncOverhead = 102600 * simtime.Nanosecond

// Config describes one simulation run.
type Config struct {
	// Mode selects VSync or D-VSync.
	Mode Mode
	// Panel configures the screen.
	Panel display.Config
	// Buffers is the total buffer-pool size (front + back).
	Buffers int
	// PreRenderLimit caps frames rendered ahead in D-VSync mode. Zero
	// defaults to Buffers−1: every back buffer usable for pre-rendering,
	// matching §5.1's OpenHarmony configuration (4 buffers ⇒ at most 3
	// back buffers for pre-rendering).
	PreRenderLimit int
	// Trace is the frame workload.
	Trace *workload.Trace
	// AppOffset delays VSync-app after the hardware edge.
	AppOffset simtime.Duration
	// DTV tunes the Display Time Virtualizer.
	DTV core.DTVConfig
	// Predictor optionally registers an IPL predictor, enabling the
	// decoupling-aware channel for Interactive frames.
	Predictor core.InputPredictor
	// PerFrameOverhead is the bookkeeping cost charged per started frame
	// in D-VSync mode; negative disables, zero uses the §6.4 default.
	PerFrameOverhead simtime.Duration
	// ContentSample, when set, is invoked at each frame start so the
	// scenario can record what the frame rendered (animation progress or
	// predicted input state). now is the execution time.
	ContentSample func(f *buffer.Frame, now simtime.Time)
	// DisableDVSync starts the runtime controller switched off (frames
	// fall back to the VSync path even in D-VSync mode).
	DisableDVSync bool
	// RuntimeSwitch, when set, drives the §4.5 runtime switch per frame:
	// it is consulted as trigger opportunities arise and toggles the
	// controller, the way the map app activates D-VSync only while zooming
	// (§6.5). It overrides DisableDVSync.
	RuntimeSwitch func(now simtime.Time) bool
	// DropStaleBuffers switches the consumer to SurfaceFlinger's
	// opportunistic stale-dropping: at each edge the newest queued buffer
	// is latched and older ones are discarded. It trims post-jank latency
	// on the VSync path at the cost of wasted rendering — and it destroys
	// D-VSync's accumulated cushion, which is why D-VSync pins the FIFO
	// discipline instead (§4.4: the screen HAL consumes the queue in FIFO
	// order).
	DropStaleBuffers bool
	// VSyncPipelineDepth caps frames in flight (queued + rendering) on the
	// classic VSync path. Tick-paced production keeps at most one buffer
	// queued while the next frame renders (Figure 2's pipeline), so the
	// depth is 2 regardless of pool size: extra back buffers ease parallel
	// rendering of consecutive frames (§2) but are never used to
	// accumulate frames — accumulation is precisely the capability
	// D-VSync's explicit frame timing management adds (§3.4, §4.1).
	// Zero defaults to 2.
	VSyncPipelineDepth int
	// MaxSimTime bounds the run as a watchdog; zero derives a generous
	// bound from the trace length.
	MaxSimTime simtime.Duration
	// Recorder, when set, captures a structured event trace of the run
	// (hardware edges, frame lifecycle, janks, rate changes). Any
	// trace.Sink works: *trace.Recorder keeps everything; *flight.Ring
	// retains a bounded window and snapshots anomaly dumps on trigger
	// (DESIGN.md §15). With a sink attached the run also emits the
	// schema-v3 marker events (fault-onset/fault-end/dtv-reanchor).
	Recorder trace.Sink
	// Metrics, when set, attaches a live telemetry registry: the run
	// registers its instruments at wiring time, updates them from hooks,
	// and samples them into the registry's time series on MetricsInterval
	// boundaries of the virtual clock (DESIGN.md §10). One registry serves
	// one run. Nil keeps the hot path metric-free.
	Metrics *telemetry.Registry
	// MetricsInterval is the virtual-time sampling interval; zero defaults
	// to the initial panel refresh period (the interval stays fixed even
	// when LTPO retargets the rate mid-run). Requires Metrics.
	MetricsInterval simtime.Duration
	// LTPOPolicy, together with LTPOVelocity, enables variable refresh:
	// at every edge the coordinator observes the content velocity and
	// retargets the rate under the §5.3 drain rule.
	LTPOPolicy ltpo.Policy
	// LTPOVelocity reports the content velocity (e.g. scroll px/s) at an
	// instant. Required when LTPOPolicy is set.
	LTPOVelocity func(simtime.Time) float64
	// Faults optionally injects seeded deterministic faults (stall episodes,
	// VSync jitter and misses, clock drift, allocation failures) through the
	// hooks each subsystem exposes. Nil or an empty config runs fault-free.
	Faults *fault.Config
	// FPEOverloadAfter enables FPE accumulation backoff after this many
	// consecutive over-period frames (zero keeps the seed behaviour).
	FPEOverloadAfter int
	// FPERecoverAfter ends the backoff after this many consecutive
	// under-period frames; zero defaults to FPEOverloadAfter.
	FPERecoverAfter int
	// EnableFallback supervises a D-VSync run with a health monitor that
	// drives the §4.5 runtime switch back to the VSync channel when the
	// system degrades, and back once it recovers (with hysteresis).
	EnableFallback bool
	// Health tunes the fallback monitor; required when EnableFallback is
	// set (MaxFDPS must be positive).
	Health health.Config
}

// FallbackRecord is one supervised runtime-switch transition.
type FallbackRecord struct {
	// At is the transition instant.
	At simtime.Time
	// To is the channel switched to (ModeVSync on a trip, ModeDVSync on a
	// recovery).
	To Mode
	// Reason is the health check behind the transition (ReasonNone on
	// recoveries).
	Reason health.Reason
}

// JankRecord is one repeated-frame edge.
type JankRecord struct {
	// At is the edge timestamp.
	At simtime.Time
	// EdgeSeq is the panel edge index.
	EdgeSeq uint64
	// KeyFrame marks janks attributable to a heavily loaded frame.
	KeyFrame bool
}

// Result carries everything measured in one run.
type Result struct {
	// Mode is the architecture simulated.
	Mode Mode
	// Period is the nominal refresh period.
	Period simtime.Duration
	// Presented lists latched frames in latch order.
	Presented []*buffer.Frame
	// Janks lists repeated-frame edges inside the display window.
	Janks []JankRecord
	// Skipped counts frame indices never rendered (VSync falls behind and
	// the time-based animation jumps over them).
	Skipped int
	// FirstLatch/LastLatch bound the active display window.
	FirstLatch, LastLatch simtime.Time
	// ExecutedWork is the total pipeline stage time spent.
	ExecutedWork simtime.Duration
	// OverheadWork is the total FPE/DTV bookkeeping charged.
	OverheadWork simtime.Duration
	// Stuffed and Direct split presented frames per Figure 6.
	Stuffed, Direct int
	// LatencyMs holds per-presented-frame rendering latency (ms).
	LatencyMs []float64
	// DTVMeanAbsErrMs / DTVMaxAbsErrMs are D-Timestamp prediction errors.
	DTVMeanAbsErrMs, DTVMaxAbsErrMs float64
	// FPEStage statistics (D-VSync only).
	FPEStarts, FPEPreStarts, FPESyncBlocks int
	// DecoupledFrames / VSyncPathFrames split frames by channel.
	DecoupledFrames, VSyncPathFrames int
	// MemoryBytes is the buffer-pool footprint.
	MemoryBytes int64
	// StaleDropped counts rendered frames discarded by the stale-dropping
	// consumer (zero under the FIFO discipline).
	StaleDropped int
	// Completed is false if the watchdog expired first.
	Completed bool
	// EdgesInWindow counts refresh edges in (FirstLatch, LastLatch].
	EdgesInWindow int
	// Fallbacks lists supervised runtime-switch transitions in time order.
	Fallbacks []FallbackRecord
	// FaultCounters aggregates injected-fault activity (zero when no
	// injector is configured).
	FaultCounters fault.Counters
	// MissedEdges counts panel refreshes skipped by injected faults.
	MissedEdges int
	// AllocFailed counts dequeues refused by injected allocation faults.
	AllocFailed int
	// DTVReAnchors / DTVMissedEdges are the DTV hardening counters.
	DTVReAnchors, DTVMissedEdges int
	// FPEBackoffs / FPEStartFailures are the FPE hardening counters.
	FPEBackoffs, FPEStartFailures int
	// WatchdogTripped carries the engine watchdog error of a stalled run
	// (empty on healthy runs).
	WatchdogTripped string
}

// Jank converts the run into the FDPS report.
func (r *Result) Jank() metrics.JankReport {
	return metrics.JankReport{
		Janks:         len(r.Janks),
		Edges:         r.EdgesInWindow,
		WindowSeconds: r.LastLatch.Sub(r.FirstLatch).Seconds(),
	}
}

// FDPS returns frame drops per second.
func (r *Result) FDPS() float64 { return r.Jank().FDPS() }

// LatencySummary summarises per-frame rendering latency in ms.
func (r *Result) LatencySummary() metrics.Summary {
	return metrics.Summarize(r.LatencyMs)
}

// JankEvents adapts the jank list for the stutter detector.
func (r *Result) JankEvents() []metrics.JankEvent {
	out := make([]metrics.JankEvent, len(r.Janks))
	for i, j := range r.Janks {
		out[i] = metrics.JankEvent{EdgeSeq: j.EdgeSeq, KeyFrame: j.KeyFrame}
	}
	return out
}

// WorkMs returns executed + overhead work in milliseconds.
func (r *Result) WorkMs() float64 {
	return (r.ExecutedWork + r.OverheadWork).Milliseconds()
}

// WindowMs returns the display window in milliseconds.
func (r *Result) WindowMs() float64 { return r.LastLatch.Sub(r.FirstLatch).Milliseconds() }

// System is a wired simulation ready to run.
type System struct {
	cfg      Config
	engine   *event.Engine
	panel    *display.Panel
	dist     *signal.Distributor
	queue    *buffer.Queue
	producer *pipeline.Producer
	dtv      *core.DTV
	fpe      *core.FPE
	ctl      *core.Controller
	ltpo     *ltpo.Coordinator
	inj      *fault.Injector
	monitor  *health.Monitor
	tel      *telemetryState

	res Result

	// driver state
	nextIdx        int  // next trace index to start
	started        bool // stream has begun (first VSync-app seen)
	ticks          int  // VSync-app ticks since stream start
	appSwitch      bool // the application's §4.5 switch position
	fallbackActive bool // the supervisor is holding the system on VSync
	prepared       bool // buffers sized and panel started (first Run segment)

	// marks holds the precomputed schema-v3 marker events (fault episode
	// boundaries), sorted by time with details formatted at wiring time;
	// record() lazily interleaves them into the event stream so the hot
	// path never formats a string. nextMark is the first unemitted mark:
	// after any record(ev), nextMark indexes past every mark with
	// at <= ev.At — the invariant checkpoint restore rebuilds.
	marks    []traceMark
	nextMark int
	// lastReAnchors mirrors dtv.ReAnchors() so the recorder path can emit
	// a DTVReAnchor marker the instant the counter moves.
	lastReAnchors int

	// presentPending holds latched frames whose present fence has not fired
	// yet; presentFn is the persistent handler that replaces a per-latch
	// closure on the recorder path. Entries are matched by fence time, not
	// FIFO position: an LTPO retarget can make PresentAt non-monotone
	// across consecutive latches.
	presentPending []presentEntry
	presentFn      event.Handler
}

// presentEntry is one scheduled present fence awaiting dispatch.
type presentEntry struct {
	at        simtime.Time
	frame     int
	decoupled bool
	id        event.ID
}

// traceMark is one precomputed schema-v3 marker event awaiting emission.
type traceMark struct {
	at     simtime.Time
	kind   trace.EventKind
	detail string
}

// Validate reports configuration errors: everything a caller could get
// wrong by construction, checked up front so library users get an error
// value instead of a panic from deep inside the wiring.
func Validate(cfg Config) error {
	switch {
	case cfg.Trace == nil || cfg.Trace.Len() == 0:
		return fmt.Errorf("sim: empty trace")
	case cfg.Buffers < 2:
		return fmt.Errorf("sim: %d buffers cannot double-buffer", cfg.Buffers)
	case cfg.Panel.RefreshHz <= 0:
		return fmt.Errorf("sim: invalid panel refresh rate %d", cfg.Panel.RefreshHz)
	case cfg.AppOffset < 0:
		return fmt.Errorf("sim: negative VSync-app offset %v", cfg.AppOffset)
	case cfg.PreRenderLimit < 0:
		return fmt.Errorf("sim: negative pre-render limit %d", cfg.PreRenderLimit)
	case cfg.VSyncPipelineDepth < 0:
		return fmt.Errorf("sim: negative VSync pipeline depth %d", cfg.VSyncPipelineDepth)
	case cfg.LTPOPolicy != nil && cfg.LTPOVelocity == nil:
		return fmt.Errorf("sim: LTPOPolicy requires LTPOVelocity")
	case cfg.FPEOverloadAfter < 0:
		return fmt.Errorf("sim: negative FPE overload threshold %d", cfg.FPEOverloadAfter)
	case cfg.FPERecoverAfter < 0:
		return fmt.Errorf("sim: negative FPE recovery threshold %d", cfg.FPERecoverAfter)
	case cfg.MetricsInterval < 0:
		return fmt.Errorf("sim: negative metrics interval %v", cfg.MetricsInterval)
	case cfg.MetricsInterval > 0 && cfg.Metrics == nil:
		return fmt.Errorf("sim: MetricsInterval set without a Metrics registry")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if cfg.EnableFallback {
		if cfg.Mode != ModeDVSync {
			return fmt.Errorf("sim: fallback supervision requires D-VSync mode")
		}
		if err := cfg.Health.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// New wires a simulation from the config. Invalid configurations panic;
// use TryRun (or Validate first) to get an error value instead.
func New(cfg Config) *System {
	if err := Validate(cfg); err != nil {
		panic(err)
	}
	cfg = normalized(cfg)

	s := &System{cfg: cfg, engine: event.NewEngine()}
	s.presentPending = make([]presentEntry, 0, 8)
	s.presentFn = s.dispatchPresent
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		s.inj = fault.NewInjector(*cfg.Faults)
		if cfg.Recorder != nil {
			s.marks = episodeMarks(cfg.Faults)
		}
	}
	panelCfg := cfg.Panel
	if s.inj != nil {
		panelCfg.EdgeDelay = s.inj.EdgeDelay
		panelCfg.EdgeMiss = s.inj.EdgeMiss
	}
	s.panel = display.NewPanel(s.engine, panelCfg)
	s.dist = signal.NewDistributor(s.engine, map[signal.Kind]simtime.Duration{
		signal.VSyncApp: cfg.AppOffset,
	})
	s.queue = buffer.NewQueue(buffer.Config{
		Buffers: cfg.Buffers,
		Width:   cfg.Panel.Width,
		Height:  cfg.Panel.Height,
	})
	s.producer = pipeline.NewProducer(s.engine, s.queue, cfg.Trace)
	if s.inj != nil {
		s.dist.SetDelay(func(_ signal.Kind, at simtime.Time) simtime.Duration {
			return s.inj.SignalDelay(at)
		})
		s.queue.SetAllocFault(func() bool { return s.inj.AllocFails(s.engine.Now()) })
		s.producer.CostScale = s.inj.CostScale
		s.panel.OnMissedEdge(s.onMissedEdge)
	}

	period := simtime.PeriodForHz(cfg.Panel.RefreshHz)
	s.res.Mode = cfg.Mode
	s.res.Period = period
	s.res.MemoryBytes = s.queue.MemoryBytes()

	if cfg.Mode == ModeDVSync {
		s.dtv = core.NewDTV(cfg.DTV, period)
		s.ctl = core.NewController(cfg.PreRenderLimit, s.dtv)
		if cfg.Predictor != nil {
			s.ctl.RegisterPredictor(cfg.Predictor)
		}
		s.appSwitch = !cfg.DisableDVSync
		if cfg.EnableFallback {
			s.monitor = health.NewMonitor(cfg.Health)
		}
		s.applyEnabled()
		s.fpe = core.NewFPE(core.FPEConfig{
			MaxAhead:      cfg.PreRenderLimit,
			OverloadAfter: cfg.FPEOverloadAfter,
			RecoverAfter:  cfg.FPERecoverAfter,
		}, (*fpeView)(s))
		s.producer.PerFrameOverhead = cfg.PerFrameOverhead
		// DTV observes edges before the consumer latches at the same edge.
		s.panel.OnEdge(func(now simtime.Time, seq uint64, p simtime.Duration) {
			s.dtv.ObserveEdge(now, seq, p)
		})
	}

	s.panel.OnEdge(s.onEdge)
	s.panel.OnEdge(s.dist.OnHWEdge)
	s.dist.Subscribe(signal.VSyncApp, s.onAppTick)

	s.producer.OnUIDone = func(now simtime.Time, f *buffer.Frame) {
		if cfg.Recorder != nil {
			s.record(trace.Event{At: now, Kind: trace.FrameUIDone, Frame: f.Seq,
				Decoupled: f.Decoupled})
		}
		if s.fpe != nil {
			s.fpe.Pump(now)
		}
	}
	if cfg.LTPOPolicy != nil {
		s.ltpo = ltpo.NewCoordinator(cfg.LTPOPolicy, s.panel, (*pendingRates)(s))
	}
	s.producer.OnQueued = func(now simtime.Time, f *buffer.Frame) {
		if s.monitor != nil {
			s.monitor.ObserveProgress(now)
		}
		if cfg.Recorder != nil {
			s.record(trace.Event{At: now, Kind: trace.FrameQueued, Frame: f.Seq,
				Decoupled: f.Decoupled})
		}
	}
	if cfg.Metrics != nil {
		interval := cfg.MetricsInterval
		if interval <= 0 {
			interval = period
		}
		s.tel = newTelemetryState(cfg.Metrics, interval, cfg.Panel.RefreshHz, s.monitor != nil)
		s.tel.tick = s.onSampleTick
		s.queue.SetDepthObserver(func(depth int) {
			d := float64(depth)
			s.tel.queueDepth.Set(d)
			s.tel.depthDist.Observe(d)
		})
		s.panel.OnRateChange(func(hz int) { s.tel.refreshHz.Set(float64(hz)) })
	}
	return s
}

// episodeMarks precomputes the schema-v3 fault marker events for a run:
// one FaultOnset/FaultEnd pair per configured episode, details formatted
// here (wiring time) so the hot path only copies strings. Sorted by time;
// at equal instants episode ends sort before onsets so a window closes
// before the next opens.
func episodeMarks(fc *fault.Config) []traceMark {
	refs := fc.Episodes()
	marks := make([]traceMark, 0, 2*len(refs))
	for _, ref := range refs {
		marks = append(marks,
			traceMark{at: ref.Episode.Start, kind: trace.FaultOnset,
				detail: fmt.Sprintf("class=%s episode=%d severity=%g", ref.Class, ref.Index, ref.Episode.Severity)},
			traceMark{at: ref.Episode.End, kind: trace.FaultEnd,
				detail: fmt.Sprintf("class=%s episode=%d", ref.Class, ref.Index)})
	}
	sort.SliceStable(marks, func(i, j int) bool {
		if marks[i].at != marks[j].at {
			return marks[i].at < marks[j].at
		}
		return marks[i].kind == trace.FaultEnd && marks[j].kind == trace.FaultOnset
	})
	return marks
}

// record emits one trace event through the configured sink, first
// interleaving every precomputed marker due at or before it. The caller
// must hold cfg.Recorder != nil. After any record(ev), nextMark indexes
// past every mark with at <= ev.At — the invariant checkpoint restore
// rebuilds from the restored event stream.
//
//dvlint:hotpath wraps every recorded simulation event
func (s *System) record(ev trace.Event) {
	for s.nextMark < len(s.marks) {
		m := &s.marks[s.nextMark]
		if m.at > ev.At {
			break
		}
		s.cfg.Recorder.Add(trace.Event{At: m.at, Kind: m.kind, Frame: -1, Detail: m.detail})
		s.nextMark++
	}
	s.cfg.Recorder.Add(ev)
}

// noteReAnchors emits a DTVReAnchor marker when the DTV's re-anchor
// counter moved since the last check. The caller must hold
// cfg.Recorder != nil and s.dtv != nil.
//
//dvlint:hotpath checked at every latch on the recording path
func (s *System) noteReAnchors(now simtime.Time) {
	if ra := s.dtv.ReAnchors(); ra > s.lastReAnchors {
		s.lastReAnchors = ra
		s.record(trace.Event{At: now, Kind: trace.DTVReAnchor, Frame: -1})
	}
}

// watchdogTripper is the optional sink hook the flight recorder exposes:
// finish() fires it when the engine watchdog aborted the run.
type watchdogTripper interface {
	TripWatchdog(at simtime.Time, detail string)
}

// fallbackDetail precomputes the supervise() trace annotation for every
// (channel, reason) pair, so the per-transition path indexes a table
// instead of formatting on the hot path.
var fallbackDetail = func() (d [2][4]string) {
	for m := ModeVSync; m <= ModeDVSync; m++ {
		for r := health.ReasonNone; r <= health.ReasonStall; r++ {
			d[m][r] = fmt.Sprintf("to=%s reason=%s", m, r)
		}
	}
	return
}()

// applyEnabled resolves the §4.5 switch position: the application's wish
// gated by the fallback supervisor.
func (s *System) applyEnabled() {
	if s.ctl != nil {
		s.ctl.SetEnabled(s.appSwitch && !s.fallbackActive)
	}
}

// supervise evaluates the health monitor at a display edge and drives the
// runtime switch on trip/recovery transitions.
//
//dvlint:hotpath evaluated at every display edge
func (s *System) supervise(now simtime.Time) {
	if s.monitor == nil {
		return
	}
	busy := len(s.producer.Inflight()) > 0
	tripped := s.monitor.Evaluate(now, busy)
	if tripped == s.fallbackActive {
		return
	}
	s.fallbackActive = tripped
	s.applyEnabled()
	to := ModeDVSync
	if tripped {
		to = ModeVSync
	}
	reason := s.monitor.LastReason()
	s.res.Fallbacks = append(s.res.Fallbacks, FallbackRecord{At: now, To: to, Reason: reason})
	if t := s.tel; t != nil {
		if tripped {
			t.fallbacks.Inc()
			t.fallbackState.Set(1)
		} else {
			t.fallbackState.Set(0)
		}
	}
	if s.cfg.Recorder != nil {
		s.record(trace.Event{At: now, Kind: trace.Fallback, Frame: -1,
			Detail: fallbackDetail[to][reason]})
	}
}

// onMissedEdge accounts a refresh the panel skipped under an injected fault:
// the screen repeats the old frame, which is a jank whenever an update was
// due, and the supervisor still evaluates (skipped refreshes are exactly
// when degradation must be noticed).
//
//dvlint:hotpath runs at every skipped refresh under edge faults
func (s *System) onMissedEdge(now simtime.Time, seq uint64, period simtime.Duration) {
	if s.cfg.Recorder != nil {
		s.record(trace.Event{At: now, Kind: trace.EdgeMissed, Frame: -1, EdgeSeq: seq})
	}
	if t := s.tel; t != nil {
		// Refresh the FDPS gauge before this edge's jank enters the
		// window, mirroring the obs sampling point at real edges.
		t.missedEdges.Inc()
		t.fdps.Set(t.window.Rate(now))
	}
	if s.queue.Front() != nil && !s.streamDone() {
		key := false
		if inflight := s.producer.OldestInflight(); inflight != nil {
			key = inflight.UICost+inflight.RSCost > period
		}
		s.res.Janks = append(s.res.Janks, JankRecord{At: now, EdgeSeq: seq, KeyFrame: key})
		if s.monitor != nil {
			s.monitor.ObserveJank(now)
		}
		if t := s.tel; t != nil {
			t.observeJank(now)
		}
		if s.cfg.Recorder != nil {
			s.record(trace.Event{At: now, Kind: trace.Jank, Frame: -1, EdgeSeq: seq})
		}
	}
	s.supervise(now)
}

// pendingRates adapts the queue and in-flight frames to ltpo.QueueView:
// the rate bounds of every rendered-but-undisplayed buffer.
type pendingRates System

// PendingRates implements ltpo.QueueView.
func (v *pendingRates) PendingRates() []int {
	var out []int
	for i := 0; ; i++ {
		b := v.queue.PeekQueued(i)
		if b == nil {
			break
		}
		out = append(out, b.Frame.RateHz)
	}
	for _, f := range v.producer.Inflight() {
		out = append(out, f.RateHz)
	}
	return out
}

// fpeView adapts System to core.PipelineView.
type fpeView System

// Ahead implements core.PipelineView.
func (v *fpeView) Ahead() int { return v.producer.Ahead() }

// CanDequeue implements core.PipelineView.
func (v *fpeView) CanDequeue() bool { return v.queue.CanDequeue() }

// UIFree implements core.PipelineView.
func (v *fpeView) UIFree(now simtime.Time) bool { return v.producer.UIFree(now) }

// HasPendingRequest implements core.PipelineView: the next frame exists,
// the stream has begun, and the frame is routed to the decoupled channel.
func (v *fpeView) HasPendingRequest() bool {
	s := (*System)(v)
	if !s.started || s.nextIdx >= s.cfg.Trace.Len() {
		return false
	}
	return s.ctl.Decoupled(s.cfg.Trace.Costs[s.nextIdx].Class)
}

// StartFrame implements core.PipelineView.
func (v *fpeView) StartFrame(now simtime.Time) bool {
	s := (*System)(v)
	ahead := s.producer.Ahead()
	dts := s.dtv.DTimestamp(now, ahead)
	return s.startFrame(now, pipeline.StartRequest{
		Index:       s.nextIdx,
		ContentTime: dts,
		DTimestamp:  dts,
		Decoupled:   true,
		RateHz:      s.frameRate(),
	})
}

// startFrame starts one frame, reporting false when the queue refused the
// buffer (a transient allocation fault); the request stays pending and the
// driver retries at its next trigger.
//
//dvlint:hotpath runs once per produced frame
func (s *System) startFrame(now simtime.Time, req pipeline.StartRequest) bool {
	f := s.producer.TryStart(now, req)
	if f == nil {
		return false
	}
	if s.fpe != nil {
		s.fpe.ObserveFrameCost(f.UICost+f.RSCost, s.res.Period)
	}
	if s.cfg.Recorder != nil {
		s.record(trace.Event{At: now, Kind: trace.FrameStart, Frame: f.Seq,
			Decoupled: f.Decoupled, DTimestamp: f.DTimestamp})
	}
	if s.cfg.ContentSample != nil {
		s.cfg.ContentSample(f, now)
	}
	if t := s.tel; t != nil {
		t.framesStarted.Inc()
	}
	s.nextIdx = req.Index + 1
	if req.Decoupled {
		s.res.DecoupledFrames++
	} else {
		s.res.VSyncPathFrames++
	}
	return true
}

// onAppTick is the VSync-app software signal handler: the classic trigger
// path, also used by D-VSync for non-decoupled frames.
//
//dvlint:hotpath runs at every VSync-app tick
func (s *System) onAppTick(ev signal.Event) {
	n := s.cfg.Trace.Len()
	if !s.started {
		s.started = true
		s.ticks = 0
	} else {
		s.ticks++
	}
	if s.fpe != nil {
		if s.cfg.RuntimeSwitch != nil {
			s.appSwitch = s.cfg.RuntimeSwitch(ev.At)
			s.applyEnabled()
		}
		// D-VSync: decoupled frames are pumped; if the next frame is
		// routed to the VSync path, trigger it on this tick.
		s.fpe.Pump(ev.At)
		if s.fallbackActive {
			// Supervised fallback (§4.5): the app is back on classic VSync
			// triggering, where the animation is time-based — under
			// sustained overload missed slots are skipped exactly like the
			// VSync baseline, instead of falling ever further behind.
			s.vsyncTick(ev.At, n)
			return
		}
		if s.nextIdx < n && !s.ctl.Decoupled(s.cfg.Trace.Costs[s.nextIdx].Class) &&
			s.producer.UIFree(ev.At) && s.queue.CanDequeue() &&
			s.producer.Ahead() < s.cfg.VSyncPipelineDepth {
			s.startFrame(ev.At, pipeline.StartRequest{
				Index:       s.nextIdx,
				ContentTime: ev.At,
				RateHz:      s.frameRate(),
			})
		}
		return
	}
	s.vsyncTick(ev.At, n)
}

// vsyncTick is the VSync-baseline production step: the animation is
// time-based; the content slot for this tick is s.ticks. If production fell
// behind, the indices in between are skipped (the animation jumps), exactly
// like a real app missing Choreographer callbacks.
//
//dvlint:hotpath runs at every VSync-app tick on the classic path
func (s *System) vsyncTick(at simtime.Time, n int) {
	target := s.ticks
	if target >= n {
		target = n - 1
	}
	if target < s.nextIdx {
		return // already produced this slot (or decoupled production ran ahead)
	}
	if !s.producer.UIFree(at) || !s.queue.CanDequeue() ||
		s.producer.Ahead() >= s.cfg.VSyncPipelineDepth {
		return // blocked: this slot's content will be skipped
	}
	skipped := target - s.nextIdx
	if !s.startFrame(at, pipeline.StartRequest{
		Index:       target,
		ContentTime: at,
		RateHz:      s.frameRate(),
	}) {
		return // allocation fault: retry at the next tick
	}
	s.res.Skipped += skipped
}

// frameRate is the rate new frames are produced for: the LTPO render rate
// when variable refresh is active, else the panel rate.
func (s *System) frameRate() int {
	if s.ltpo != nil {
		return s.ltpo.RenderHz()
	}
	return s.panel.RefreshHz()
}

// streamDone reports whether all content has been produced and displayed:
// every trace index has been started (indices VSync skipped never will be)
// and nothing is in flight or queued.
func (s *System) streamDone() bool {
	return s.nextIdx >= s.cfg.Trace.Len() && s.producer.Ahead() == 0
}

// onEdge is the display consumer: latch one queued buffer per hardware
// edge, or account a jank when updates are due but none is ready.
//
//dvlint:hotpath runs at every hardware VSync edge
func (s *System) onEdge(now simtime.Time, seq uint64, period simtime.Duration) {
	if s.cfg.Recorder != nil {
		s.record(trace.Event{At: now, Kind: trace.HWVSync, Frame: -1, EdgeSeq: seq,
			Hz: simtime.HzForPeriod(period)})
	}
	if t := s.tel; t != nil {
		// The FDPS gauge is refreshed before this edge's jank (if any)
		// enters the window — the sampling point obs reconstructs from the
		// HWVSync event, which precedes the Jank event at the same instant.
		t.edges.Inc()
		t.fdps.Set(t.window.Rate(now))
	}
	var b *buffer.Buffer
	if s.cfg.DropStaleBuffers {
		var dropped int
		b, dropped = s.queue.LatchNewest(now, period)
		s.res.StaleDropped += dropped
		if t := s.tel; t != nil && dropped > 0 {
			t.staleDropped.Add(float64(dropped))
		}
	} else {
		b = s.queue.Latch(now, period)
	}
	if b != nil {
		f := b.Frame
		f.PresentAt = now.Add(period)
		if len(s.res.Presented) == 0 {
			s.res.FirstLatch = now
		}
		s.res.LastLatch = now
		s.res.Presented = append(s.res.Presented, f)
		s.recordLatency(f)
		if t := s.tel; t != nil {
			t.framesPresented.Inc()
		}
		if s.cfg.Recorder != nil {
			s.record(trace.Event{At: now, Kind: trace.FrameLatched, Frame: f.Seq,
				Decoupled: f.Decoupled, EdgeSeq: seq})
			s.presentPending = append(s.presentPending,
				presentEntry{at: f.PresentAt, frame: f.Seq, decoupled: f.Decoupled,
					id: s.engine.At(f.PresentAt, event.PriorityControl, s.presentFn)})
		}
		if s.fpe != nil {
			if f.Decoupled {
				s.dtv.RecordPresent(f.DTimestamp, f.PresentAt)
				if s.cfg.Recorder != nil {
					s.noteReAnchors(now)
				}
				if s.monitor != nil || s.tel != nil {
					errAbs := f.PresentAt.Sub(f.DTimestamp)
					if errAbs < 0 {
						errAbs = -errAbs
					}
					errMs := errAbs.Milliseconds()
					if s.monitor != nil {
						s.monitor.ObserveCalibError(now, errMs)
					}
					if t := s.tel; t != nil {
						t.calibErr.Observe(errMs)
					}
				}
			}
			// The latch freed the previous front buffer: a slot opened.
			s.fpe.Pump(now)
		}
	} else if s.queue.Front() != nil && !s.streamDone() {
		key := false
		if inflight := s.producer.OldestInflight(); inflight != nil {
			key = inflight.UICost+inflight.RSCost > period
		}
		s.res.Janks = append(s.res.Janks, JankRecord{At: now, EdgeSeq: seq, KeyFrame: key})
		if s.monitor != nil {
			s.monitor.ObserveJank(now)
		}
		if t := s.tel; t != nil {
			t.observeJank(now)
		}
		if s.cfg.Recorder != nil {
			s.record(trace.Event{At: now, Kind: trace.Jank, Frame: -1, EdgeSeq: seq})
		}
	}
	s.supervise(now)

	if s.ltpo != nil {
		prev := s.panel.RefreshHz()
		s.ltpo.Observe(now, s.cfg.LTPOVelocity(now))
		if cur := s.panel.RefreshHz(); cur != prev && s.cfg.Recorder != nil {
			s.record(trace.Event{At: now, Kind: trace.RateChange, Frame: -1,
				EdgeSeq: seq, Hz: cur})
		}
	}

	if s.queue.Front() != nil && s.streamDone() && s.queue.QueuedCount() == 0 {
		if s.tel != nil {
			s.tel.done = true
		}
		s.panel.Stop()
		s.engine.Stop()
	}
}

// dispatchPresent fires one present fence: it records the FramePresent
// trace event for the pending frame whose fence time matches. First match
// wins — at equal times the engine dispatches in insertion order, so a
// forward scan reproduces the tie-break exactly.
//
//dvlint:hotpath runs once per presented frame when a recorder is attached
func (s *System) dispatchPresent(t simtime.Time) {
	for i := range s.presentPending {
		e := s.presentPending[i]
		if e.at != t {
			continue
		}
		copy(s.presentPending[i:], s.presentPending[i+1:])
		s.presentPending = s.presentPending[:len(s.presentPending)-1]
		s.record(trace.Event{At: t, Kind: trace.FramePresent, Frame: e.frame,
			Decoupled: e.decoupled})
		return
	}
	panic(fmt.Sprintf("sim: present fence at %v with no pending frame", t))
}

// recordLatency computes the rendering-latency metric of §6.3.
//
// A VSync-path frame's content is sampled at its trigger tick, so its
// latency is present − trigger: 2 periods for direct composition, 3 when
// stuffed, more after janks. A decoupled frame renders content *for* its
// D-Timestamp, so waiting in the queue does not age it; its effective
// latency is the just-in-time pipeline depth (2 periods) plus the DTV
// prediction error — the mechanism by which §6.3's 31 % reduction arises.
//
//dvlint:hotpath runs once per presented frame
func (s *System) recordLatency(f *buffer.Frame) {
	var lat simtime.Duration
	if f.Decoupled {
		err := f.PresentAt.Sub(f.DTimestamp)
		if err < 0 {
			err = -err
		}
		lat = 2*s.res.Period + err
	} else {
		lat = f.PresentAt.Sub(f.ContentTime)
	}
	latMs := lat.Milliseconds()
	s.res.LatencyMs = append(s.res.LatencyMs, latMs)
	if t := s.tel; t != nil {
		t.latency.Observe(latMs)
	}
}

// Engine exposes the event engine (examples drive extra events through it).
func (s *System) Engine() *event.Engine { return s.engine }

// Controller exposes the runtime controller in D-VSync mode (nil otherwise).
func (s *System) Controller() *core.Controller { return s.ctl }

// Queue exposes the buffer queue for inspection.
func (s *System) Queue() *buffer.Queue { return s.queue }

// normalized applies New's config defaulting, hoisted out so a
// configuration digest computed before construction matches the wired
// system (checkpoint envelopes pin snapshots to the normalized config).
func normalized(cfg Config) Config {
	if cfg.PreRenderLimit == 0 {
		cfg.PreRenderLimit = cfg.Buffers - 1
	}
	if cfg.PreRenderLimit < 1 {
		cfg.PreRenderLimit = 1
	}
	if cfg.PerFrameOverhead == 0 {
		cfg.PerFrameOverhead = DefaultDVSyncOverhead
	}
	if cfg.PerFrameOverhead < 0 {
		cfg.PerFrameOverhead = 0
	}
	if cfg.VSyncPipelineDepth == 0 {
		cfg.VSyncPipelineDepth = 2
	}
	return cfg
}

// reset rewinds every component of the wired graph to its as-constructed
// condition so the System can replay another run — same scenario, possibly
// a new trace — without rebuilding the object graph. It is the Runner's
// per-run hot path: a reset run must behave byte-identically to
// New(cfg).Run() on the same inputs.
//
// Order matters in three places: the injector reseeds before the panel
// resets (the panel's fault hooks stay wired, so a half-reset injector
// would desynchronise its RNG streams), the LTPO coordinator resets after
// the panel (it re-reads the configured base rate), and the telemetry
// binding resets after the supervisor state is rebuilt (its gauges are
// re-primed from the same values the constructor used).
//
//dvlint:hotpath runs once per reused run
func (s *System) reset(tr *workload.Trace) {
	s.engine.Reset()
	if s.inj != nil {
		s.inj.Reset()
	}
	s.panel.Reset()
	s.dist.Reset()
	s.queue.Reset()
	s.cfg.Trace = tr
	s.producer.Reset(tr)
	if s.cfg.Mode == ModeDVSync {
		s.dtv.Reset(s.res.Period)
		s.ctl.Reset(s.cfg.PreRenderLimit)
		s.appSwitch = !s.cfg.DisableDVSync
		if s.monitor != nil {
			s.monitor.Reset()
		}
		s.fallbackActive = false
		s.applyEnabled()
		s.fpe.Reset()
	}
	if s.ltpo != nil {
		s.ltpo.Reset()
	}
	if s.tel != nil {
		s.tel.reset(s.cfg.Panel.RefreshHz)
	}
	if s.cfg.Recorder != nil {
		// A fresh run starts with an empty recorder; so does a reused one.
		s.cfg.Recorder.Reset()
	}
	s.nextMark = 0
	s.lastReAnchors = 0

	// Re-prime the result exactly as New does, handing the previous run's
	// slice capacity back to prepare for reuse.
	s.res = Result{
		Mode:        s.cfg.Mode,
		Period:      s.res.Period,
		MemoryBytes: s.queue.MemoryBytes(),
		Presented:   s.res.Presented[:0],
		LatencyMs:   s.res.LatencyMs[:0],
		Janks:       s.res.Janks[:0],
		Fallbacks:   s.res.Fallbacks[:0],
	}

	s.nextIdx = 0
	s.started = false
	s.ticks = 0
	s.prepared = false
	s.presentPending = s.presentPending[:0]
}

// prepare runs the once-per-run setup before the first engine segment:
// size the result and trace buffers from the frame count up front (at most
// one presented frame and latency sample per trace entry, and roughly six
// trace records per frame — start, ui-done, queued, vsync, latched,
// present — saving the append doubling churn on the hot path), reserve the
// telemetry row ring, arm the sampling chain, and start the panel. On the
// Runner's reuse path the buffers usually still hold enough capacity from
// the previous run, so nothing here allocates.
func (s *System) prepare() {
	s.prepared = true
	n := s.cfg.Trace.Len()
	if cap(s.res.Presented) < n {
		s.res.Presented = make([]*buffer.Frame, 0, n)
	}
	if cap(s.res.LatencyMs) < n {
		s.res.LatencyMs = make([]float64, 0, n)
	}
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.Reserve(6*n + 64)
	}
	if s.tel != nil {
		// One row per sampling interval over the expected run, with slack
		// for fault-stretched tails. The estimate only sizes the ring:
		// Sample still grows past it if a run overshoots, so row content
		// never depends on this number.
		run := simtime.Duration(n+64) * s.res.Period * 2
		s.tel.reg.Reserve(int(run/s.tel.interval) + 8)
		s.scheduleSample(0)
	}
	s.panel.Start(0)
}

// horizonEnd is the virtual-time bound the engine runs to: the configured
// watchdog, or a generous bound derived from the trace length.
func (s *System) horizonEnd() simtime.Time {
	horizon := s.cfg.MaxSimTime
	if horizon <= 0 {
		horizon = simtime.Duration(s.cfg.Trace.Len()+64)*s.res.Period*8 + simtime.Second
	}
	return simtime.Time(0).Add(horizon)
}

// Run executes the simulation to completion (or watchdog) and returns the
// collected result.
func (s *System) Run() *Result {
	if !s.prepared {
		s.prepare()
	}
	s.engine.Run(s.horizonEnd())
	return s.finish()
}

// finish closes the run once the engine has gone quiet: final telemetry
// row, recorder drain, and the counters harvested into the result.
func (s *System) finish() *Result {
	if s.tel != nil {
		// Close the series with a run-end row so the final counter state is
		// observable, then stop the sampling chain (a recorder drain below
		// may still replay the pending tick; the done flag makes it inert).
		s.tel.done = true
		now := s.engine.Now()
		if at, ok := s.tel.reg.LastSampleAt(); !ok || now > at {
			s.sampleTelemetry(now)
		}
	}
	if s.cfg.Recorder != nil {
		// Drain pending present-fence recordings scheduled past the last
		// latch (the panel is stopped, so only bookkeeping events remain).
		s.engine.RunAll()
	}
	s.res.Completed = s.streamDone()

	st := s.queue.Stats()
	s.res.Stuffed, s.res.Direct = st.Stuffed, st.Direct
	s.res.ExecutedWork = s.producer.ExecutedWork()
	s.res.OverheadWork = s.producer.OverheadWork()
	if s.dtv != nil {
		s.res.DTVMeanAbsErrMs = s.dtv.MeanAbsErrorMs()
		s.res.DTVMaxAbsErrMs = s.dtv.MaxAbsErrorMs()
	}
	if s.fpe != nil {
		s.res.FPEStarts = s.fpe.Starts()
		s.res.FPEPreStarts = s.fpe.PreStarts()
		s.res.FPESyncBlocks = s.fpe.SyncBlocks()
		s.res.FPEBackoffs = s.fpe.Backoffs()
		s.res.FPEStartFailures = s.fpe.StartFailures()
	}
	if s.dtv != nil {
		s.res.DTVReAnchors = s.dtv.ReAnchors()
		s.res.DTVMissedEdges = s.dtv.MissedEdges()
	}
	if s.inj != nil {
		s.res.FaultCounters = s.inj.Counters()
	}
	s.res.MissedEdges = int(s.panel.Missed())
	s.res.AllocFailed = st.AllocFailed
	if err := s.engine.Err(); err != nil {
		s.res.WatchdogTripped = err.Error()
		if w, ok := s.cfg.Recorder.(watchdogTripper); ok {
			w.TripWatchdog(s.engine.Now(), s.res.WatchdogTripped)
		}
	}
	if s.res.LastLatch > s.res.FirstLatch {
		s.res.EdgesInWindow = len(s.res.Presented) - 1 + len(s.res.Janks)
	}
	return &s.res
}

// Run is the convenience one-shot entry point. Invalid configurations
// panic; TryRun returns an error instead.
func Run(cfg Config) *Result { return New(cfg).Run() }

// TryRun executes one simulation, reporting configuration errors as values
// — the entry point for library integrations that cannot afford a panic on
// user-supplied configs.
func TryRun(cfg Config) (*Result, error) {
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	return New(cfg).Run(), nil
}
