package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"dvsync/internal/fault"
	"dvsync/internal/flight"
	"dvsync/internal/health"
	"dvsync/internal/ipl"
	"dvsync/internal/obs"
	"dvsync/internal/par"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
)

// attrScenario is one golden scenario for the attribution contract.
type attrScenario struct {
	name string
	mk   func() Config
}

// faultClassConfig builds a D-VSync run with the full hardening stack and
// one injected fault class — the per-class arm of the attribution goldens.
func faultClassConfig(cls string) Config {
	fc, err := fault.Scenario(cls, 0.8, msT(500), msT(3600), 99)
	if err != nil {
		panic(err)
	}
	p := ckptProfile()
	cfg := Config{
		Mode: ModeDVSync, Panel: panel60(), Buffers: 4,
		Trace:            p.Generate(400, 1234),
		Predictor:        ipl.Kalman{},
		Recorder:         trace.NewRecorder(),
		Faults:           fc,
		FPEOverloadAfter: 4,
		EnableFallback:   true,
		Health: health.Config{MaxFDPS: 6, MaxCalibErrMs: 12,
			StallTimeout: 250 * simtime.Millisecond},
	}
	cfg.DTV.MaxAbsErrMs = 8
	return cfg
}

// attrScenarios is the golden set: every checkpoint scenario plus one
// scenario per sweepable fault class.
func attrScenarios() []attrScenario {
	var scs []attrScenario
	for _, sc := range ckptScenarios() {
		scs = append(scs, attrScenario{name: sc.name, mk: sc.mk})
	}
	for _, cls := range fault.Classes() {
		cls := cls
		scs = append(scs, attrScenario{
			name: "fault-" + cls,
			mk:   func() Config { return faultClassConfig(cls) },
		})
	}
	return scs
}

// causeTable runs one scenario and renders its attribution as the
// dvtrace -why cause table, returning the table bytes plus the recorded
// events for structural checks.
func causeTable(mk func() Config) (string, []trace.Event, error) {
	cfg := mk()
	if _, err := TryRun(cfg); err != nil {
		return "", nil, err
	}
	events := append([]trace.Event(nil), cfg.Recorder.Events()...)
	var buf bytes.Buffer
	obs.WriteCauseTable(&buf, obs.Attribute(events))
	return buf.String(), events, nil
}

// TestAttributionGolden is the causal-attribution contract over the
// golden scenarios and every fault class: each jank, missed edge and
// fallback gets exactly one cause chain, no chain is unattributed, and
// the rendered cause table is byte-identical across worker widths.
func TestAttributionGolden(t *testing.T) {
	scs := attrScenarios()
	type out struct {
		table  string
		events []trace.Event
		err    error
	}
	run := func(workers int) []out {
		par.SetWorkers(workers)
		defer par.SetWorkers(0)
		return par.Map(len(scs), func(i int) out {
			table, events, err := causeTable(scs[i].mk)
			return out{table: table, events: events, err: err}
		})
	}
	base := run(1)
	for i, o := range base {
		if o.err != nil {
			t.Fatalf("%s: %v", scs[i].name, o.err)
		}
		symptoms := 0
		for _, ev := range o.events {
			switch ev.Kind {
			case trace.Jank, trace.EdgeMissed, trace.Fallback:
				symptoms++
			}
		}
		chains := obs.Attribute(o.events)
		if len(chains) != symptoms {
			t.Errorf("%s: %d cause chains for %d symptom instants — every jank, missed edge and fallback gets exactly one",
				scs[i].name, len(chains), symptoms)
		}
		for _, c := range chains {
			if len(c.Causes) == 0 {
				t.Fatalf("%s: chain at %v has no causes", scs[i].name, c.At)
			}
			for _, cause := range c.Causes {
				if cause.Kind == obs.CauseUnattributed {
					t.Errorf("%s: %s at %v is unattributed", scs[i].name, c.Instant, c.At)
				}
			}
		}
	}
	wide := run(4)
	for i := range scs {
		if wide[i].err != nil {
			t.Fatalf("workers=4 %s: %v", scs[i].name, wide[i].err)
		}
		if wide[i].table != base[i].table {
			t.Errorf("%s: cause table differs between workers 1 and 4", scs[i].name)
		}
	}
}

// TestAttributionNamesInjectedClass: with a single fault class injected,
// at least one chain roots at a fault episode naming that class — the
// "-why names the fault" contract the CI smoke also checks end to end.
func TestAttributionNamesInjectedClass(t *testing.T) {
	for _, cls := range fault.Classes() {
		cfg := faultClassConfig(cls)
		if _, err := TryRun(cfg); err != nil {
			t.Fatalf("%s: %v", cls, err)
		}
		chains := obs.Attribute(cfg.Recorder.Events())
		if len(chains) == 0 {
			t.Fatalf("%s: no symptoms to attribute (scenario too tame)", cls)
		}
		// Markers carry the injector's class vocabulary ("vsync-jitter"),
		// not Scenario's sweep shorthand ("jitter").
		want := fmt.Sprintf("class=%s", cfg.Faults.Episodes()[0].Class)
		found := false
		for _, c := range chains {
			if r := c.Root(); r.Kind == obs.CauseFaultEpisode && bytes.Contains([]byte(r.Detail), []byte(want)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no cause chain roots at a %s episode", cls, cls)
		}
	}
}

// flightMk wraps a golden scenario so its run records into a flight ring
// instead of a plain recorder.
func flightMk(mk func() Config) func() Config {
	return func() Config {
		cfg := mk()
		cfg.Recorder = flight.New(flight.Config{})
		return cfg
	}
}

// flightDigest folds a finished run's anomaly dumps — ids and sealed
// envelope bytes, in trigger order with resume-aligned indices — into one
// hex digest.
func flightDigest(cfg Config) (string, error) {
	ids, sealed, err := sealedDumps(cfg)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	for i := range ids {
		fmt.Fprintf(&buf, "%s\n", ids[i])
		buf.Write(sealed[i])
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// sealedDumps encodes every dump the config's ring holds, with the
// PreDumps offset applied so a resumed run's indices line up with the
// straight run's.
func sealedDumps(cfg Config) ([]string, [][]byte, error) {
	ring, ok := cfg.Recorder.(*flight.Ring)
	if !ok {
		return nil, nil, fmt.Errorf("config recorder is %T, not a flight ring", cfg.Recorder)
	}
	digest := ConfigDigest(cfg)
	dumps := ring.Dumps()
	ids := make([]string, len(dumps))
	sealed := make([][]byte, len(dumps))
	for i := range dumps {
		ids[i] = flight.DumpID(digest, ring.PreDumps()+i, dumps[i].Trigger.Kind)
		var buf bytes.Buffer
		if err := flight.EncodeDump(&buf, digest, &dumps[i]); err != nil {
			return nil, nil, err
		}
		sealed[i] = buf.Bytes()
	}
	return ids, sealed, nil
}

// TestFlightDumpsDeterministic is the anomaly-dump determinism contract:
// for every golden scenario, the sealed dump set is byte-identical from a
// fresh run, from a reused Runner (three rounds), and at worker widths
// 1, 4 and 8.
func TestFlightDumpsDeterministic(t *testing.T) {
	scs := ckptScenarios()
	type out struct {
		fresh  string
		reused []string
		err    error
	}
	defer par.SetWorkers(0)
	var baseline []string
	for _, w := range []int{1, 4, 8} {
		outs := func() []out {
			par.SetWorkers(w)
			defer par.SetWorkers(0)
			return par.Map(len(scs), func(i int) out {
				mk := flightMk(scs[i].mk)
				cfg := mk()
				if _, err := TryRun(cfg); err != nil {
					return out{err: err}
				}
				fresh, err := flightDigest(cfg)
				if err != nil {
					return out{err: err}
				}
				rcfg := mk()
				rn := NewRunner(rcfg)
				var reused []string
				for round := 0; round < 3; round++ {
					rn.Run()
					d, err := flightDigest(rcfg)
					if err != nil {
						return out{err: fmt.Errorf("reused round %d: %w", round, err)}
					}
					reused = append(reused, d)
				}
				return out{fresh: fresh, reused: reused}
			})
		}()
		for i, o := range outs {
			if o.err != nil {
				t.Fatalf("workers=%d %s: %v", w, scs[i].name, o.err)
			}
			for round, d := range o.reused {
				if d != o.fresh {
					t.Errorf("workers=%d %s round %d: reused-Runner dumps differ from a fresh run's",
						w, scs[i].name, round)
				}
			}
		}
		if w == 1 {
			for _, o := range outs {
				baseline = append(baseline, o.fresh)
			}
			continue
		}
		for i, o := range outs {
			if o.fresh != baseline[i] {
				t.Errorf("workers=%d %s: dumps differ from workers=1", w, scs[i].name)
			}
		}
	}
}

// TestFlightDumpsSurviveResume: a run resumed from a mid-run checkpoint
// reproduces the straight run's post-cut dumps byte for byte, with ids
// aligned through the PreDumps offset; pre-cut dumps stay with the
// straight run's artifacts.
func TestFlightDumpsSurviveResume(t *testing.T) {
	for _, sc := range ckptScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			mk := flightMk(sc.mk)
			cfg := mk()
			if _, err := TryRun(cfg); err != nil {
				t.Fatal(err)
			}
			wantIDs, wantSealed, err := sealedDumps(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, cut := range sc.cuts {
				cfg1 := mk()
				st, err := New(cfg1).Snapshot(cut)
				if err != nil {
					t.Fatalf("snapshot at %v: %v", cut, err)
				}
				payload, err := json.Marshal(st)
				if err != nil {
					t.Fatal(err)
				}
				cfg2 := mk()
				var st2 State
				if err := json.Unmarshal(payload, &st2); err != nil {
					t.Fatal(err)
				}
				sys, err := Resume(cfg2, &st2)
				if err != nil {
					t.Fatalf("resume at %v: %v", cut, err)
				}
				sys.Run()
				gotIDs, gotSealed, err := sealedDumps(cfg2)
				if err != nil {
					t.Fatal(err)
				}
				pre := cfg2.Recorder.(*flight.Ring).PreDumps()
				if pre+len(gotIDs) != len(wantIDs) {
					t.Fatalf("cut %v: resumed run has %d pre + %d post dumps, straight run %d",
						cut, pre, len(gotIDs), len(wantIDs))
				}
				for i := range gotIDs {
					if gotIDs[i] != wantIDs[pre+i] {
						t.Errorf("cut %v dump %d: id %q != straight %q", cut, i, gotIDs[i], wantIDs[pre+i])
					}
					if !bytes.Equal(gotSealed[i], wantSealed[pre+i]) {
						t.Errorf("cut %v dump %s: sealed bytes differ from the straight run's", cut, gotIDs[i])
					}
				}
			}
		})
	}
}
