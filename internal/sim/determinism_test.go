package sim

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"dvsync/internal/ipl"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// replayDigest runs one seeded scenario and folds the full structured event
// trace plus the result summary into a hash. Any nondeterminism anywhere in
// the stack — an unseeded draw, a wall-clock read, map-order iteration, a
// goroutine race — perturbs at least one event timestamp or counter and
// changes the digest.
func replayDigest(t *testing.T, mode Mode) [sha256.Size]byte {
	t.Helper()
	p := workload.Profile{
		Name: "determinism", ShortMeanMs: 5, ShortSigmaMs: 2,
		LongRatio: 0.06, LongScaleMs: 20, LongAlpha: 1.8,
		Burstiness: 0.3, UIShare: 0.4, Class: workload.Interactive,
	}
	rec := trace.NewRecorder()
	r := Run(Config{
		Mode: mode, Panel: panel60(), Buffers: 4,
		Trace:     p.Generate(400, 1234),
		Predictor: ipl.Kalman{},
		Recorder:  rec,
	})

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	fmt.Fprintf(&buf, "fdps=%v janks=%d presented=%d stuffed=%d direct=%d "+
		"decoupled=%d vsyncpath=%d work=%v latency=%+v\n",
		r.FDPS(), len(r.Janks), len(r.Presented), r.Stuffed, r.Direct,
		r.DecoupledFrames, r.VSyncPathFrames, r.ExecutedWork, r.LatencySummary())
	return sha256.Sum256(buf.Bytes())
}

// TestDeterministicReplay is the determinism regression gate: the same
// seeded scenario, run twice in the same process, must produce bit-for-bit
// identical trace output under both architectures. It complements the
// golden tests (which pin timings across versions) by catching run-to-run
// nondeterminism directly, the contract dvlint enforces statically.
func TestDeterministicReplay(t *testing.T) {
	for _, mode := range []Mode{ModeVSync, ModeDVSync} {
		t.Run(mode.String(), func(t *testing.T) {
			first := replayDigest(t, mode)
			for run := 2; run <= 3; run++ {
				if got := replayDigest(t, mode); got != first {
					t.Fatalf("run %d diverged from run 1: %x != %x", run, got, first)
				}
			}
		})
	}
}
