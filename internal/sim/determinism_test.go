package sim

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"dvsync/internal/fault"
	"dvsync/internal/health"
	"dvsync/internal/ipl"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// replayDigest runs one seeded scenario and folds the full structured event
// trace plus the result summary into a hash. Any nondeterminism anywhere in
// the stack — an unseeded draw, a wall-clock read, map-order iteration, a
// goroutine race — perturbs at least one event timestamp or counter and
// changes the digest.
func replayDigest(t *testing.T, mode Mode) [sha256.Size]byte {
	t.Helper()
	p := workload.Profile{
		Name: "determinism", ShortMeanMs: 5, ShortSigmaMs: 2,
		LongRatio: 0.06, LongScaleMs: 20, LongAlpha: 1.8,
		Burstiness: 0.3, UIShare: 0.4, Class: workload.Interactive,
	}
	rec := trace.NewRecorder()
	r := Run(Config{
		Mode: mode, Panel: panel60(), Buffers: 4,
		Trace:     p.Generate(400, 1234),
		Predictor: ipl.Kalman{},
		Recorder:  rec,
	})

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	fmt.Fprintf(&buf, "fdps=%v janks=%d presented=%d stuffed=%d direct=%d "+
		"decoupled=%d vsyncpath=%d work=%v latency=%+v\n",
		r.FDPS(), len(r.Janks), len(r.Presented), r.Stuffed, r.Direct,
		r.DecoupledFrames, r.VSyncPathFrames, r.ExecutedWork, r.LatencySummary())
	return sha256.Sum256(buf.Bytes())
}

// TestDeterministicReplay is the determinism regression gate: the same
// seeded scenario, run twice in the same process, must produce bit-for-bit
// identical trace output under both architectures. It complements the
// golden tests (which pin timings across versions) by catching run-to-run
// nondeterminism directly, the contract dvlint enforces statically.
func TestDeterministicReplay(t *testing.T) {
	for _, mode := range []Mode{ModeVSync, ModeDVSync} {
		t.Run(mode.String(), func(t *testing.T) {
			first := replayDigest(t, mode)
			for run := 2; run <= 3; run++ {
				if got := replayDigest(t, mode); got != first {
					t.Fatalf("run %d diverged from run 1: %x != %x", run, got, first)
				}
			}
		})
	}
}

// faultedReplayDigest runs a seeded scenario with every fault class active
// at once and (in D-VSync mode) the full hardening stack engaged — DTV
// re-anchoring, FPE backoff, supervised fallback — and digests the trace
// plus the robustness counters. The injector's per-class RNG streams, the
// health monitor and the fallback transitions are all inside the hash.
func faultedReplayDigest(t *testing.T, mode Mode) [sha256.Size]byte {
	t.Helper()
	p := workload.Profile{
		Name: "faulted-determinism", ShortMeanMs: 5, ShortSigmaMs: 2,
		LongRatio: 0.06, LongScaleMs: 20, LongAlpha: 1.8,
		Burstiness: 0.3, UIShare: 0.4, Class: workload.Interactive,
	}
	faults := &fault.Config{
		Seed:        99,
		Stalls:      []fault.Episode{{Start: msT(500), End: msT(1200), Severity: 1.5}},
		VSyncJitter: []fault.Episode{{Start: msT(1300), End: msT(2000), Severity: 1}},
		MissedVSync: []fault.Episode{{Start: msT(2100), End: msT(2700), Severity: 0.3}},
		ClockDrift:  []fault.Episode{{Start: msT(2800), End: msT(3600), Severity: 2000}},
		AllocFail:   []fault.Episode{{Start: msT(3700), End: msT(4400), Severity: 0.4}},
	}
	cfg := Config{
		Mode: mode, Panel: panel60(), Buffers: 4,
		Trace:     p.Generate(400, 1234),
		Predictor: ipl.Kalman{},
		Recorder:  trace.NewRecorder(),
		Faults:    faults,
	}
	if mode == ModeDVSync {
		cfg.DTV.MaxAbsErrMs = 8
		cfg.FPEOverloadAfter = 4
		cfg.EnableFallback = true
		cfg.Health = health.Config{MaxFDPS: 6, MaxCalibErrMs: 12,
			StallTimeout: 250 * simtime.Millisecond}
	}
	r := Run(cfg)

	var buf bytes.Buffer
	if err := trace.WriteEventsJSONL(&buf, cfg.Recorder.Events()); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	fmt.Fprintf(&buf, "fdps=%v janks=%d presented=%d skipped=%d counters=%+v "+
		"missed=%d allocfailed=%d reanchors=%d dtvmissed=%d backoffs=%d "+
		"startfail=%d fallbacks=%+v watchdog=%q\n",
		r.FDPS(), len(r.Janks), len(r.Presented), r.Skipped, r.FaultCounters,
		r.MissedEdges, r.AllocFailed, r.DTVReAnchors, r.DTVMissedEdges,
		r.FPEBackoffs, r.FPEStartFailures, r.Fallbacks, r.WatchdogTripped)
	return sha256.Sum256(buf.Bytes())
}

// TestDeterministicFaultedReplay extends the gate to the fault-injection
// and graceful-degradation stack: three replays per mode must be identical.
func TestDeterministicFaultedReplay(t *testing.T) {
	for _, mode := range []Mode{ModeVSync, ModeDVSync} {
		t.Run(mode.String(), func(t *testing.T) {
			first := faultedReplayDigest(t, mode)
			for run := 2; run <= 3; run++ {
				if got := faultedReplayDigest(t, mode); got != first {
					t.Fatalf("run %d diverged from run 1: %x != %x", run, got, first)
				}
			}
		})
	}
}
