package sim

import (
	"dvsync/internal/event"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
)

// telemetryState binds one run to a live metrics registry: instruments are
// registered at wiring time, updated from the same hook sites the trace
// recorder uses, and sampled into the registry's time series by a
// recurring virtual-time tick. Every hot-path access is behind a single
// `s.tel != nil` check, so runs without a registry pay a branch and
// nothing else (BenchmarkSimRun pins the allocation count).
//
// The windowed-FDPS gauge is refreshed at the start of each hardware edge,
// before that edge's jank (if any) is recorded — the same sampling point
// internal/obs reconstructs from the trace, so the two layers agree
// exactly (see obs.TracksFromSnapshot and its equivalence test).
type telemetryState struct {
	reg      *telemetry.Registry
	interval simtime.Duration
	done     bool // run finished: the sampling chain stops rescheduling
	tick     func(simtime.Time)
	tickID   event.ID // the armed sampling tick, captured at snapshot

	framesStarted   *telemetry.Counter
	framesPresented *telemetry.Counter
	janks           *telemetry.Counter
	edges           *telemetry.Counter
	missedEdges     *telemetry.Counter
	fallbacks       *telemetry.Counter
	staleDropped    *telemetry.Counter

	queueDepth    *telemetry.Gauge
	fdps          *telemetry.Gauge
	fallbackState *telemetry.Gauge
	refreshHz     *telemetry.Gauge
	uiBusy        *telemetry.Gauge
	rsBusy        *telemetry.Gauge
	inflight      *telemetry.Gauge
	healthTrips   *telemetry.Gauge // nil unless the run is supervised
	healthRecov   *telemetry.Gauge

	latency   *telemetry.Histogram
	calibErr  *telemetry.Histogram
	depthDist *telemetry.Histogram

	window *telemetry.WindowRate
}

func newTelemetryState(reg *telemetry.Registry, interval simtime.Duration, hz int, supervised bool) *telemetryState {
	t := &telemetryState{
		reg:      reg,
		interval: interval,
		window:   telemetry.NewWindowRate(telemetry.FDPSWindow),
	}
	t.framesStarted = reg.Counter(telemetry.MetricFramesStarted, "frames entering the pipeline")
	t.framesPresented = reg.Counter(telemetry.MetricFramesPresented, "frames latched for display")
	t.janks = reg.Counter(telemetry.MetricJanks, "repeated-frame edges")
	t.edges = reg.Counter(telemetry.MetricEdges, "hardware refresh edges")
	t.missedEdges = reg.Counter(telemetry.MetricMissedEdges, "refreshes skipped by injected faults")
	t.fallbacks = reg.Counter(telemetry.MetricFallbacks, "supervised trips to the VSync channel")
	t.staleDropped = reg.Counter(telemetry.MetricStaleDropped, "frames discarded by the stale-dropping consumer")

	t.queueDepth = reg.Gauge(telemetry.MetricQueueDepth, "buffers queued awaiting display")
	t.fdps = reg.Gauge(telemetry.MetricFDPSWindow, "frame drops per second over the trailing 500ms, refreshed at each edge")
	t.fallbackState = reg.Gauge(telemetry.MetricFallbackState, "1 while the fallback supervisor holds the VSync channel")
	t.refreshHz = reg.Gauge(telemetry.MetricRefreshHz, "current panel refresh rate")
	t.uiBusy = reg.Gauge(telemetry.MetricUIBusy, "1 while the UI stage is executing at the sample instant")
	t.rsBusy = reg.Gauge(telemetry.MetricRSBusy, "1 while the render-service stage is executing at the sample instant")
	t.inflight = reg.Gauge(telemetry.MetricInflight, "frames dequeued but not yet queued")
	if supervised {
		t.healthTrips = reg.Gauge(telemetry.MetricHealthTrips, "health monitor trip transitions")
		t.healthRecov = reg.Gauge(telemetry.MetricHealthRecoveries, "health monitor recovery transitions")
	}

	t.latency = reg.Histogram(telemetry.MetricFrameLatencyMs, "per-frame rendering latency (§6.3), ms", telemetry.LatencyBucketsMs)
	t.calibErr = reg.Histogram(telemetry.MetricCalibErrMs, "DTV |present − D-Timestamp| per decoupled frame, ms", telemetry.CalibErrBucketsMs)
	t.depthDist = reg.Histogram(telemetry.MetricQueueDepthDist, "queue depth observed at each depth change", telemetry.QueueDepthBuckets)

	t.refreshHz.Set(float64(hz))
	return t
}

// reset re-arms the telemetry binding for another run on the same wiring:
// the registry's instruments and row ring rewind, the FDPS window empties,
// and the refresh-rate gauge is re-primed exactly as newTelemetryState
// does (Registry.Reset zeroes every gauge, including that priming).
func (t *telemetryState) reset(hz int) {
	t.reg.Reset()
	t.window.Reset()
	t.done = false
	t.tickID = 0
	t.refreshHz.Set(float64(hz))
}

// observeJank feeds one repeated-frame edge into the counter and the
// trailing FDPS window.
//
//dvlint:hotpath runs at every jank edge
func (t *telemetryState) observeJank(now simtime.Time) {
	t.janks.Inc()
	t.window.Observe(now)
}

// scheduleSample arms the next sampling tick. Ticks run at
// PriorityControl, the lowest band, so a sample at instant T sees every
// hardware, signal and pipeline effect of T already applied.
func (s *System) scheduleSample(at simtime.Time) {
	s.tel.tickID = s.engine.At(at, event.PriorityControl, s.tel.tick)
}

//dvlint:hotpath runs at every telemetry sampling tick
func (s *System) onSampleTick(now simtime.Time) {
	t := s.tel
	if t.done {
		// The run stopped (or a recorder drain is replaying the pending
		// tick): do not sample, do not reschedule.
		return
	}
	s.sampleTelemetry(now)
	s.scheduleSample(now.Add(t.interval))
}

// sampleTelemetry refreshes the sampled-on-read gauges (per-stage pipeline
// occupancy, health transition counts) and appends one time-series row.
//
//dvlint:hotpath runs at every telemetry sampling tick
func (s *System) sampleTelemetry(now simtime.Time) {
	t := s.tel
	t.uiBusy.Set(boolGauge(!s.producer.UIFree(now)))
	t.rsBusy.Set(boolGauge(!s.producer.RSFree(now)))
	t.inflight.Set(float64(len(s.producer.Inflight())))
	if s.monitor != nil {
		t.healthTrips.Set(float64(s.monitor.Trips()))
		t.healthRecov.Set(float64(s.monitor.Recoveries()))
	}
	t.reg.Sample(now)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
