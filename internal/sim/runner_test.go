package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"dvsync/internal/checkpoint"
	"dvsync/internal/ipl"
	"dvsync/internal/par"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// TestRunnerReuseMatchesFresh is the reuse tentpole contract: for every
// golden scenario, a Runner rewound and replayed — at -workers 1 and 4 —
// produces byte-identical trace JSONL, Perfetto, telemetry exports and
// Result scalars to a freshly wired run, on the first use and after.
func TestRunnerReuseMatchesFresh(t *testing.T) {
	scs := ckptScenarios()
	type out struct {
		fresh  string
		reused []string
		err    error
	}
	defer par.SetWorkers(0)
	for _, w := range []int{1, 4} {
		outs := func() []out {
			par.SetWorkers(w)
			defer par.SetWorkers(0)
			return par.Map(len(scs), func(i int) out {
				sc := scs[i]
				fresh, err := straightDigest(sc.mk)
				if err != nil {
					return out{err: fmt.Errorf("straight: %w", err)}
				}
				cfg := sc.mk()
				rn := NewRunner(cfg)
				var reused []string
				for round := 0; round < 3; round++ {
					d, err := outputsDigest(cfg, rn.Run())
					if err != nil {
						return out{err: fmt.Errorf("reused round %d: %w", round, err)}
					}
					reused = append(reused, d)
				}
				return out{fresh: fresh, reused: reused}
			})
		}()
		for i, o := range outs {
			if o.err != nil {
				t.Fatalf("workers=%d %s: %v", w, scs[i].name, o.err)
			}
			for round, d := range o.reused {
				if d != o.fresh {
					t.Errorf("workers=%d %s round %d: reused digest %s != fresh %s",
						w, scs[i].name, round, d, o.fresh)
				}
			}
		}
	}
}

// TestRunnerTraceSwap checks the replica pattern: one Runner serving
// traces of different lengths and seeds — including one longer than the
// construction trace, forcing every arena to grow — matches a fresh run
// of each trace exactly, in any order.
func TestRunnerTraceSwap(t *testing.T) {
	p := ckptProfile()
	mkCfg := func(tr *workload.Trace) Config {
		return Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4, Trace: tr,
			Predictor: ipl.Kalman{}, Recorder: trace.NewRecorder()}
	}
	trA := p.Generate(300, 7)
	trB := p.Generate(220, 99)
	trC := p.Generate(360, 5) // longer than the construction trace

	cfg := mkCfg(trA)
	rn := NewRunner(cfg)
	for _, step := range []struct {
		name string
		tr   *workload.Trace
	}{{"B", trB}, {"A", trA}, {"C-grow", trC}, {"B-again", trB}} {
		freshCfg := mkCfg(step.tr)
		want, err := outputsDigest(freshCfg, New(freshCfg).Run())
		if err != nil {
			t.Fatalf("%s fresh: %v", step.name, err)
		}
		got, err := outputsDigest(cfg, rn.RunTrace(step.tr))
		if err != nil {
			t.Fatalf("%s reused: %v", step.name, err)
		}
		if got != want {
			t.Errorf("%s: reused digest %s != fresh %s", step.name, got, want)
		}
	}
	if rn.Runs() != 4 {
		t.Errorf("Runs() = %d, want 4", rn.Runs())
	}
}

// reusedResumedDigest mirrors resumedDigest, except the snapshotted system
// is a Runner that already served (and was rewound from) a full run — the
// checkpoint-from-a-reused-Runner contract.
func reusedResumedDigest(mk func() Config, cut simtime.Time) (string, error) {
	cfg1 := mk()
	rn := NewRunner(cfg1)
	rn.Run() // dirty every component first
	rn.Reset()
	st, err := rn.System().Snapshot(cut)
	if err != nil {
		return "", fmt.Errorf("snapshot at %v: %w", cut, err)
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return "", fmt.Errorf("marshal state: %w", err)
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, ConfigDigest(cfg1), st.At, nil, payload); err != nil {
		return "", fmt.Errorf("encode envelope: %w", err)
	}
	env, err := checkpoint.Decode(&buf)
	if err != nil {
		return "", fmt.Errorf("decode envelope: %w", err)
	}
	cfg2 := mk()
	if err := env.VerifyConfig(ConfigDigest(cfg2)); err != nil {
		return "", err
	}
	var st2 State
	if err := env.DecodeState(&st2); err != nil {
		return "", err
	}
	sys, err := Resume(cfg2, &st2)
	if err != nil {
		return "", fmt.Errorf("resume at %v: %w", cut, err)
	}
	return outputsDigest(cfg2, sys.Run())
}

// TestCheckpointFromReusedRunner holds the resume contract on the reuse
// path: a snapshot cut from a rewound Runner restores into a run whose
// outputs match the straight run byte for byte, for every golden scenario.
func TestCheckpointFromReusedRunner(t *testing.T) {
	for _, sc := range ckptScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			want, err := straightDigest(sc.mk)
			if err != nil {
				t.Fatalf("straight run: %v", err)
			}
			got, err := reusedResumedDigest(sc.mk, sc.cuts[0])
			if err != nil {
				t.Fatalf("cut %v: %v", sc.cuts[0], err)
			}
			if got != want {
				t.Errorf("cut %v: reused-runner resumed digest %s != straight %s",
					sc.cuts[0], got, want)
			}
		})
	}
}

// TestRunnerMapLocalStress drives per-worker Runner reuse through
// par.MapLocal under contention (run with -race): many replicas, few
// workers, every worker rewinding its own Runner. Results must match the
// serial fresh-run reference at every width.
func TestRunnerMapLocalStress(t *testing.T) {
	p := ckptProfile()
	const replicas = 24
	cfg := Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4,
		Predictor: ipl.Kalman{}}
	traces := make([]*workload.Trace, replicas)
	want := make([]float64, replicas)
	for i := range traces {
		traces[i] = p.Generate(120, int64(i)*17+1)
		c := cfg
		c.Trace = traces[i]
		want[i] = Run(c).FDPS()
	}
	defer par.SetWorkers(0)
	for _, w := range []int{1, 4} {
		par.SetWorkers(w)
		got := par.MapLocal(replicas,
			func() *Runner {
				c := cfg
				c.Trace = traces[0]
				return NewRunner(c)
			},
			func(rn *Runner, i int) float64 {
				return rn.RunTrace(traces[i]).FDPS()
			})
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d replica %d: FDPS %v != fresh %v", w, i, got[i], want[i])
			}
		}
	}
	par.SetWorkers(0)
}
