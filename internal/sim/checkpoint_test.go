package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"dvsync/internal/checkpoint"
	"dvsync/internal/fault"
	"dvsync/internal/health"
	"dvsync/internal/ipl"
	"dvsync/internal/ltpo"
	"dvsync/internal/obs"
	"dvsync/internal/par"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// ckptScenario is one golden scenario for the resume-equals-straight-run
// contract. mk must build a FRESH config on every call (recorder and
// registry are stateful), and cuts are mid-run snapshot instants.
type ckptScenario struct {
	name string
	mk   func() Config
	cuts []simtime.Time
}

func ckptProfile() workload.Profile {
	return workload.Profile{
		Name: "checkpoint", ShortMeanMs: 5, ShortSigmaMs: 2,
		LongRatio: 0.06, LongScaleMs: 20, LongAlpha: 1.8,
		Burstiness: 0.3, UIShare: 0.4, Class: workload.Interactive,
	}
}

func faultedCkptConfig(mode Mode) Config {
	p := ckptProfile()
	cfg := Config{
		Mode: mode, Panel: panel60(), Buffers: 4,
		Trace:     p.Generate(400, 1234),
		Predictor: ipl.Kalman{},
		Recorder:  trace.NewRecorder(),
		Faults: &fault.Config{
			Seed:        99,
			Stalls:      []fault.Episode{{Start: msT(500), End: msT(1200), Severity: 1.5}},
			VSyncJitter: []fault.Episode{{Start: msT(1300), End: msT(2000), Severity: 1}},
			MissedVSync: []fault.Episode{{Start: msT(2100), End: msT(2700), Severity: 0.3}},
			ClockDrift:  []fault.Episode{{Start: msT(2800), End: msT(3600), Severity: 2000}},
			AllocFail:   []fault.Episode{{Start: msT(3700), End: msT(4400), Severity: 0.4}},
		},
	}
	if mode == ModeDVSync {
		cfg.DTV.MaxAbsErrMs = 8
		cfg.FPEOverloadAfter = 4
		cfg.EnableFallback = true
		cfg.Health = health.Config{MaxFDPS: 6, MaxCalibErrMs: 12,
			StallTimeout: 250 * simtime.Millisecond}
	}
	return cfg
}

func ltpoCkptConfig() Config {
	p := ckptProfile()
	panel := panel60()
	panel.RefreshHz = 120
	return Config{
		Mode: ModeDVSync, Panel: panel, Buffers: 4,
		Trace:      p.Generate(400, 5),
		LTPOPolicy: ltpo.DefaultUIPolicy(),
		LTPOVelocity: func(tt simtime.Time) float64 {
			return 3000 * math.Exp(-tt.Seconds()*1.2)
		},
		Recorder: trace.NewRecorder(),
	}
}

func ckptScenarios() []ckptScenario {
	return []ckptScenario{
		{
			name: "vsync-steady",
			cuts: []simtime.Time{msT(400), msT(2000)},
			mk: func() Config {
				p := ckptProfile()
				return Config{Mode: ModeVSync, Panel: panel60(), Buffers: 4,
					Trace: p.Generate(300, 7), Recorder: trace.NewRecorder()}
			},
		},
		{
			name: "dvsync-steady",
			cuts: []simtime.Time{msT(400), msT(2000)},
			mk: func() Config {
				p := ckptProfile()
				return Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4,
					Trace: p.Generate(300, 7), Predictor: ipl.Kalman{},
					Recorder: trace.NewRecorder()}
			},
		},
		{
			name: "dvsync-faulted-fallback",
			cuts: []simtime.Time{msT(900), msT(2400), msT(4000)},
			mk:   func() Config { return faultedCkptConfig(ModeDVSync) },
		},
		{
			name: "vsync-faulted",
			cuts: []simtime.Time{msT(900), msT(3100)},
			mk:   func() Config { return faultedCkptConfig(ModeVSync) },
		},
		{
			name: "vsync-stale-drop",
			cuts: []simtime.Time{msT(300), msT(900)},
			mk: func() Config {
				costs := repeat(5, 40)
				costs = append(costs, repeat(34, 12)...)
				costs = append(costs, repeat(5, 60)...)
				return Config{Mode: ModeVSync, Panel: panel60(), Buffers: 4,
					Trace:            scripted("stale", costs...),
					DropStaleBuffers: true, Recorder: trace.NewRecorder()}
			},
		},
		{
			name: "jitter-skew-offset",
			cuts: []simtime.Time{msT(700), msT(2500)},
			mk: func() Config {
				p := ckptProfile()
				panel := panel60()
				panel.JitterStdDev = 80 * simtime.Microsecond
				panel.JitterSeed = 42
				panel.PeriodSkewPPM = 350
				return Config{Mode: ModeDVSync, Panel: panel, Buffers: 4,
					Trace: p.Generate(300, 11), AppOffset: 2 * simtime.Millisecond,
					Recorder: trace.NewRecorder()}
			},
		},
		{
			name: "dvsync-ltpo",
			cuts: []simtime.Time{msT(250), msT(1500)},
			mk:   ltpoCkptConfig,
		},
		{
			name: "dvsync-metrics",
			cuts: []simtime.Time{msT(400), msT(2000)},
			mk: func() Config {
				p := ckptProfile()
				return Config{Mode: ModeDVSync, Panel: panel60(), Buffers: 4,
					Trace: p.Generate(300, 7), Predictor: ipl.Kalman{},
					Recorder: trace.NewRecorder(), Metrics: telemetry.NewRegistry()}
			},
		},
	}
}

func frameSeqs(r *Result) []int {
	out := make([]int, len(r.Presented))
	for i, f := range r.Presented {
		out[i] = f.Seq
	}
	return out
}

// outputsDigest folds every observable output of a finished run — trace
// JSONL, Perfetto export, telemetry JSON + Prometheus exposition, and the
// full result summary — into one hex digest.
func outputsDigest(cfg Config, r *Result) (string, error) {
	var buf bytes.Buffer
	if cfg.Recorder != nil {
		if err := trace.WriteEventsJSONL(&buf, cfg.Recorder.Events()); err != nil {
			return "", fmt.Errorf("trace: %w", err)
		}
		if err := obs.ExportPerfetto(cfg.Recorder, &buf); err != nil {
			return "", fmt.Errorf("perfetto: %w", err)
		}
	}
	if cfg.Metrics != nil {
		if err := cfg.Metrics.WriteJSON(&buf); err != nil {
			return "", fmt.Errorf("telemetry json: %w", err)
		}
		if err := cfg.Metrics.WritePrometheus(&buf); err != nil {
			return "", fmt.Errorf("telemetry prom: %w", err)
		}
	}
	fmt.Fprintf(&buf, "fdps=%v janks=%+v skipped=%d presented=%v stuffed=%d direct=%d "+
		"decoupled=%d vsyncpath=%d work=%v overhead=%v latency=%v fallbacks=%+v "+
		"counters=%+v missed=%d allocfailed=%d reanchors=%d dtvmissed=%d backoffs=%d "+
		"startfail=%d stale=%d completed=%v edges=%d first=%v last=%v watchdog=%q\n",
		r.FDPS(), r.Janks, r.Skipped, frameSeqs(r), r.Stuffed, r.Direct,
		r.DecoupledFrames, r.VSyncPathFrames, r.ExecutedWork, r.OverheadWork,
		r.LatencyMs, r.Fallbacks, r.FaultCounters, r.MissedEdges, r.AllocFailed,
		r.DTVReAnchors, r.DTVMissedEdges, r.FPEBackoffs, r.FPEStartFailures,
		r.StaleDropped, r.Completed, r.EdgesInWindow, r.FirstLatch, r.LastLatch,
		r.WatchdogTripped)
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// straightDigest runs a scenario uninterrupted.
func straightDigest(mk func() Config) (string, error) {
	cfg := mk()
	res, err := TryRun(cfg)
	if err != nil {
		return "", err
	}
	return outputsDigest(cfg, res)
}

// resumedDigest runs a scenario to cut, seals the snapshot through a real
// checkpoint envelope (JSON payload, digest verification included), then
// resumes a second, freshly wired system from the decoded state and runs
// it to completion.
func resumedDigest(mk func() Config, cut simtime.Time) (string, error) {
	cfg1 := mk()
	st, err := New(cfg1).Snapshot(cut)
	if err != nil {
		return "", fmt.Errorf("snapshot at %v: %w", cut, err)
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return "", fmt.Errorf("marshal state: %w", err)
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, ConfigDigest(cfg1), st.At, nil, payload); err != nil {
		return "", fmt.Errorf("encode envelope: %w", err)
	}
	env, err := checkpoint.Decode(&buf)
	if err != nil {
		return "", fmt.Errorf("decode envelope: %w", err)
	}
	cfg2 := mk()
	if err := env.VerifyConfig(ConfigDigest(cfg2)); err != nil {
		return "", err
	}
	var st2 State
	if err := env.DecodeState(&st2); err != nil {
		return "", err
	}
	sys, err := Resume(cfg2, &st2)
	if err != nil {
		return "", fmt.Errorf("resume at %v: %w", cut, err)
	}
	return outputsDigest(cfg2, sys.Run())
}

// TestResumeEqualsStraightRun is the tentpole contract: for every golden
// scenario and every snapshot instant, run(0→T) and
// run(0→t)+snapshot+resume(t→T) produce byte-identical trace, Perfetto,
// telemetry and result digests.
func TestResumeEqualsStraightRun(t *testing.T) {
	for _, sc := range ckptScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			want, err := straightDigest(sc.mk)
			if err != nil {
				t.Fatalf("straight run: %v", err)
			}
			for _, cut := range sc.cuts {
				got, err := resumedDigest(sc.mk, cut)
				if err != nil {
					t.Fatalf("cut %v: %v", cut, err)
				}
				if got != want {
					t.Errorf("cut %v: resumed digest %s != straight %s", cut, got, want)
				}
			}
		})
	}
}

// TestResumeEquivalenceAcrossWorkers re-checks the contract at -workers 1
// and 4: the checkpoint pipeline shares no state across goroutines, so
// digests must not depend on the parallel width the sweep runs under.
func TestResumeEquivalenceAcrossWorkers(t *testing.T) {
	scs := ckptScenarios()
	type out struct {
		straight, resumed string
		err               error
	}
	runAll := func() []out {
		return par.Map(len(scs), func(i int) out {
			sc := scs[i]
			var o out
			if o.straight, o.err = straightDigest(sc.mk); o.err != nil {
				return o
			}
			o.resumed, o.err = resumedDigest(sc.mk, sc.cuts[0])
			return o
		})
	}
	old := par.Workers()
	defer par.SetWorkers(old)
	par.SetWorkers(1)
	serial := runAll()
	par.SetWorkers(4)
	wide := runAll()
	for i, sc := range scs {
		for width, got := range map[string]out{"workers=1": serial[i], "workers=4": wide[i]} {
			if got.err != nil {
				t.Fatalf("%s %s: %v", sc.name, width, got.err)
			}
			if got.resumed != got.straight {
				t.Errorf("%s %s: resumed %s != straight %s", sc.name, width, got.resumed, got.straight)
			}
		}
		if serial[i].straight != wide[i].straight {
			t.Errorf("%s: straight digest differs across widths", sc.name)
		}
	}
}

// TestRunCheckpointedMatchesRun drives the periodic auto-checkpointing
// loop: snapshots every 100 virtual ms must not perturb the run, every
// captured state must resume to the same final digest, and the store
// rotation must leave a loadable latest snapshot.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	mk := func() Config { return faultedCkptConfig(ModeDVSync) }
	want, err := straightDigest(mk)
	if err != nil {
		t.Fatalf("straight run: %v", err)
	}

	cfg := mk()
	store, err := checkpoint.NewStore(t.TempDir(), "run")
	if err != nil {
		t.Fatal(err)
	}
	cfgDigest := ConfigDigest(cfg)
	var snaps int
	res, err := New(cfg).RunCheckpointed(100*simtime.Millisecond, func(st *State) error {
		snaps++
		payload, err := json.Marshal(st)
		if err != nil {
			return err
		}
		return store.Save(cfgDigest, int64(st.At), nil, payload)
	})
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if snaps < 10 {
		t.Fatalf("expected tens of periodic snapshots, got %d", snaps)
	}
	got, err := outputsDigest(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("checkpointed run digest %s != straight %s", got, want)
	}

	env, err := store.Load()
	if err != nil {
		t.Fatalf("loading last snapshot: %v", err)
	}
	if err := env.VerifyConfig(cfgDigest); err != nil {
		t.Fatal(err)
	}
	var st State
	if err := env.DecodeState(&st); err != nil {
		t.Fatal(err)
	}
	cfg2 := mk()
	sys, err := Resume(cfg2, &st)
	if err != nil {
		t.Fatalf("resume from store: %v", err)
	}
	got2, err := outputsDigest(cfg2, sys.Run())
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Errorf("store-resumed digest %s != straight %s", got2, want)
	}
}

// TestSnapshotMidFallback pins the awkwardest checkpoint instant of the
// robustness stack: while the supervisor holds the system on the VSync
// channel. The snapshot must carry the tripped state and resume must
// reproduce the recovery transition at the same instant.
func TestSnapshotMidFallback(t *testing.T) {
	mk := func() Config { return faultedCkptConfig(ModeDVSync) }
	cfg := mk()
	res, err := TryRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cut simtime.Time
	found := false
	for _, f := range res.Fallbacks {
		if f.To == ModeVSync {
			cut = f.At.Add(20 * simtime.Millisecond)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("scenario produced no fallback trip; pick a harsher fault config")
	}
	st, err := New(mk()).Snapshot(cut)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Driver.FallbackActive {
		t.Errorf("snapshot at %v should be inside the fallback window", cut)
	}
	if st.Health == nil || !st.Health.Tripped {
		t.Errorf("snapshot at %v should carry a tripped health monitor", cut)
	}
	want, err := straightDigest(mk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumedDigest(mk, cut)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("mid-fallback resume digest %s != straight %s", got, want)
	}
}

// TestSnapshotMidFaultEpisode checkpoints inside active fault episodes
// (stall at 900ms, drift at 3s): the injector's per-class RNG streams must
// restore to the exact draw position.
func TestSnapshotMidFaultEpisode(t *testing.T) {
	mk := func() Config { return faultedCkptConfig(ModeDVSync) }
	want, err := straightDigest(mk)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []simtime.Time{msT(900), msT(1700), msT(3000)} {
		st, err := New(mk()).Snapshot(cut)
		if err != nil {
			t.Fatalf("snapshot at %v: %v", cut, err)
		}
		if st.Fault == nil {
			t.Fatalf("snapshot at %v carries no injector state", cut)
		}
		got, err := resumedDigest(mk, cut)
		if err != nil {
			t.Fatalf("cut %v: %v", cut, err)
		}
		if got != want {
			t.Errorf("cut %v: resumed digest %s != straight %s", cut, got, want)
		}
	}
}

// TestSnapshotOnRateChangeEdge checkpoints exactly at an LTPO rate-change
// instant — the edge where the panel period, the coordinator state and the
// pending edge event all just changed.
func TestSnapshotOnRateChangeEdge(t *testing.T) {
	cfg := ltpoCkptConfig()
	res, err := TryRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("LTPO scenario did not complete")
	}
	var cuts []simtime.Time
	for _, ev := range cfg.Recorder.Events() {
		if ev.Kind == trace.RateChange {
			cuts = append(cuts, ev.At)
		}
	}
	if len(cuts) == 0 {
		t.Fatal("LTPO scenario produced no rate changes; steepen the velocity decay")
	}
	if len(cuts) > 3 {
		cuts = cuts[:3]
	}
	want, err := straightDigest(ltpoCkptConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range cuts {
		got, err := resumedDigest(ltpoCkptConfig, cut)
		if err != nil {
			t.Fatalf("cut %v: %v", cut, err)
		}
		if got != want {
			t.Errorf("rate-change cut %v: resumed digest %s != straight %s", cut, got, want)
		}
	}
}

// TestSnapshotSweep slides the snapshot instant across a whole scenario in
// coarse steps — every quiescent boundary must satisfy the contract, not
// just hand-picked ones.
func TestSnapshotSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is minutes of simulated time")
	}
	mk := func() Config { return faultedCkptConfig(ModeDVSync) }
	want, err := straightDigest(mk)
	if err != nil {
		t.Fatal(err)
	}
	for ms := 250.0; ms <= 4250; ms += 500 {
		cut := msT(ms)
		got, err := resumedDigest(mk, cut)
		if err != nil {
			t.Fatalf("cut %v: %v", cut, err)
		}
		if got != want {
			t.Errorf("cut %v: resumed digest %s != straight %s", cut, got, want)
		}
	}
}

// TestSnapshotErrors pins the misuse surface: past instants, finished
// runs, and resume under a mismatched configuration all return typed
// errors, never panic.
func TestSnapshotErrors(t *testing.T) {
	mk := ckptScenarios()[0].mk
	sys := New(mk())
	if _, err := sys.Snapshot(msT(1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(msT(500)); err == nil {
		t.Error("snapshot in the past should fail")
	}
	if res := sys.Run(); res == nil || !res.Completed {
		t.Fatal("run after snapshot should complete")
	}
	if _, err := sys.Snapshot(simtime.Time(1 << 62)); err == nil {
		t.Error("snapshot after completion should fail")
	}

	st, err := New(mk()).Snapshot(msT(1000))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong wiring: the snapshot has no telemetry state but the config
	// wires a registry.
	cfg := mk()
	cfg.Metrics = telemetry.NewRegistry()
	if _, err := Resume(cfg, st); err == nil {
		t.Error("resume with mismatched component wiring should fail")
	}
	if _, err := Resume(mk(), nil); err == nil {
		t.Error("resume from nil state should fail")
	}
	// A mangled frame reference must surface as an error, not a panic.
	st.Accum.PresentedSeqs = append(st.Accum.PresentedSeqs, 99999)
	if _, err := Resume(mk(), st); err == nil {
		t.Error("resume with a dangling frame reference should fail")
	}
}
