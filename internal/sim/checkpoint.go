package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"dvsync/internal/buffer"
	"dvsync/internal/core"
	"dvsync/internal/display"
	"dvsync/internal/event"
	"dvsync/internal/fault"
	"dvsync/internal/flight"
	"dvsync/internal/health"
	"dvsync/internal/ltpo"
	"dvsync/internal/pipeline"
	"dvsync/internal/signal"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// ErrRunFinished reports a snapshot requested at or past the end of the
// run: the simulation completed (or drained) before the requested instant,
// so there is nothing left to resume.
var ErrRunFinished = errors.New("sim: run already finished")

// PresentState is one scheduled present fence awaiting dispatch at
// snapshot time.
type PresentState struct {
	At        simtime.Time         `json:"at"`
	Frame     int                  `json:"frame"`
	Decoupled bool                 `json:"decoupled,omitempty"`
	Sched     event.ScheduledEvent `json:"sched"`
}

// DriverState is the simulation driver's serialisable state: the trace
// cursor, the §4.5 switch positions, and the pending present fences.
type DriverState struct {
	NextIdx        int            `json:"next_idx"`
	Started        bool           `json:"started,omitempty"`
	Ticks          int            `json:"ticks,omitempty"`
	AppSwitch      bool           `json:"app_switch,omitempty"`
	FallbackActive bool           `json:"fallback_active,omitempty"`
	PresentPending []PresentState `json:"present_pending,omitempty"`
}

// TelemetryState is the live-metrics layer's serialisable state: the
// registry contents, the trailing FDPS window, and the armed sampling
// tick.
type TelemetryState struct {
	Registry telemetry.RegistryState `json:"registry"`
	Window   []simtime.Time          `json:"window,omitempty"`
	Done     bool                    `json:"done,omitempty"`
	Tick     *event.ScheduledEvent   `json:"tick,omitempty"`
}

// AccumState is the run-so-far result accumulation: everything Run gathers
// incrementally that cannot be re-derived from the restored components.
type AccumState struct {
	PresentedSeqs []int            `json:"presented,omitempty"`
	Janks         []JankRecord     `json:"janks,omitempty"`
	Skipped       int              `json:"skipped,omitempty"`
	FirstLatch    simtime.Time     `json:"first_latch"`
	LastLatch     simtime.Time     `json:"last_latch"`
	LatencyMs     []float64        `json:"latency_ms,omitempty"`
	Fallbacks     []FallbackRecord `json:"fallbacks,omitempty"`
	Decoupled     int              `json:"decoupled,omitempty"`
	VSyncPath     int              `json:"vsync_path,omitempty"`
	StaleDropped  int              `json:"stale_dropped,omitempty"`
}

// State is the complete serialisable simulation state at a quiescent
// virtual-time boundary: every event dispatched up to At, every component's
// internal state, every scheduled event with its exact agenda position
// (time, priority, tie-break sequence, id), and the run-so-far
// accumulators. Resuming from it reproduces the remainder of the run
// byte-for-byte — same dispatch order, same RNG draws, same trace,
// telemetry and Perfetto output.
type State struct {
	At       simtime.Time      `json:"at"`
	Engine   event.State       `json:"engine"`
	Panel    display.State     `json:"panel"`
	Signal   signal.State      `json:"signal"`
	Queue    buffer.QueueState `json:"queue"`
	Producer pipeline.State    `json:"producer"`

	DTV        *core.DTVState        `json:"dtv,omitempty"`
	FPE        *core.FPEState        `json:"fpe,omitempty"`
	Controller *core.ControllerState `json:"controller,omitempty"`
	LTPO       *ltpo.State           `json:"ltpo,omitempty"`
	Fault      *fault.State          `json:"fault,omitempty"`
	Health     *health.State         `json:"health,omitempty"`
	Telemetry  *TelemetryState       `json:"telemetry,omitempty"`

	Trace  []trace.Event `json:"trace,omitempty"`
	Flight *flight.State `json:"flight,omitempty"`
	Driver DriverState   `json:"driver"`
	Accum  AccumState    `json:"accum"`
}

// cfgDigestView mirrors Config's deterministic fields for digesting.
// Closures and interfaces cannot be serialised, so they contribute
// presence booleans: a snapshot taken with a predictor (or recorder,
// registry, LTPO policy…) attached schedules different events than one
// without, so resuming under different presence must be refused.
type cfgDigestView struct {
	Mode               Mode
	PanelName          string
	RefreshHz          int
	Width, Height      int
	JitterStdDev       simtime.Duration
	JitterSeed         int64
	PeriodSkewPPM      float64
	Buffers            int
	PreRenderLimit     int
	TraceName          string
	TraceCosts         []workload.Cost
	AppOffset          simtime.Duration
	DTV                core.DTVConfig
	HasPredictor       bool
	PerFrameOverhead   simtime.Duration
	HasContentSample   bool
	DisableDVSync      bool
	HasRuntimeSwitch   bool
	DropStaleBuffers   bool
	VSyncPipelineDepth int
	MaxSimTime         simtime.Duration
	HasRecorder        bool
	// FlightRecorder carries the flight ring's trigger parameters when the
	// attached sink is a flight recorder, empty otherwise. omitempty keeps
	// every pre-flight digest byte-identical.
	FlightRecorder   string `json:",omitempty"`
	HasMetrics       bool
	MetricsInterval  simtime.Duration
	HasLTPO          bool
	Faults           *fault.Config
	FPEOverloadAfter int
	FPERecoverAfter  int
	EnableFallback   bool
	Health           health.Config
}

// ConfigDigest fingerprints a configuration for checkpoint pinning: two
// configs with the same digest wire identical simulations (up to the
// behaviour of attached closures, which contribute presence only — see
// cfgDigestView). The digest is computed over the normalized config, so a
// digest taken before New and one taken after agree.
func ConfigDigest(cfg Config) string {
	cfg = normalized(cfg)
	v := cfgDigestView{
		Mode:               cfg.Mode,
		PanelName:          cfg.Panel.Name,
		RefreshHz:          cfg.Panel.RefreshHz,
		Width:              cfg.Panel.Width,
		Height:             cfg.Panel.Height,
		JitterStdDev:       cfg.Panel.JitterStdDev,
		JitterSeed:         cfg.Panel.JitterSeed,
		PeriodSkewPPM:      cfg.Panel.PeriodSkewPPM,
		Buffers:            cfg.Buffers,
		PreRenderLimit:     cfg.PreRenderLimit,
		AppOffset:          cfg.AppOffset,
		DTV:                cfg.DTV,
		HasPredictor:       cfg.Predictor != nil,
		PerFrameOverhead:   cfg.PerFrameOverhead,
		HasContentSample:   cfg.ContentSample != nil,
		DisableDVSync:      cfg.DisableDVSync,
		HasRuntimeSwitch:   cfg.RuntimeSwitch != nil,
		DropStaleBuffers:   cfg.DropStaleBuffers,
		VSyncPipelineDepth: cfg.VSyncPipelineDepth,
		MaxSimTime:         cfg.MaxSimTime,
		HasRecorder:        cfg.Recorder != nil,
		HasMetrics:         cfg.Metrics != nil,
		MetricsInterval:    cfg.MetricsInterval,
		HasLTPO:            cfg.LTPOPolicy != nil,
		Faults:             cfg.Faults,
		FPEOverloadAfter:   cfg.FPEOverloadAfter,
		FPERecoverAfter:    cfg.FPERecoverAfter,
		EnableFallback:     cfg.EnableFallback,
		Health:             cfg.Health,
	}
	if r, ok := cfg.Recorder.(*flight.Ring); ok {
		fc := r.Config()
		v.FlightRecorder = fmt.Sprintf("cap=%d burst=%d window=%v cooldown=%v max=%d",
			fc.Capacity, fc.JankBurst, fc.JankWindow, fc.Cooldown, fc.MaxDumps)
	}
	if cfg.Trace != nil {
		v.TraceName = cfg.Trace.Name
		v.TraceCosts = cfg.Trace.Costs
	}
	b, err := json.Marshal(&v)
	if err != nil {
		panic(fmt.Sprintf("sim: config digest: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Snapshot runs the simulation to the quiescent boundary at the given
// virtual instant and captures its complete state. The instant must not be
// in the past of the engine clock; if the run completes (or its watchdog
// trips) before the instant, Snapshot reports that instead of capturing a
// useless end-state. The system remains runnable: call Run (or Snapshot
// again, later) to continue.
func (s *System) Snapshot(at simtime.Time) (*State, error) {
	if !s.prepared {
		s.prepare()
	}
	if at < s.engine.Now() {
		return nil, fmt.Errorf("sim: snapshot at %v is in the past of %v", at, s.engine.Now())
	}
	s.engine.Run(at)
	if err := s.engine.Err(); err != nil {
		return nil, fmt.Errorf("sim: snapshot: %w", err)
	}
	if s.engine.Stopped() || s.engine.Pending() == 0 {
		return nil, ErrRunFinished
	}
	return s.captureState()
}

// RunCheckpointed executes the run like Run, pausing every virtual-time
// interval to capture a snapshot and hand it to fn (which typically seals
// it into a checkpoint.Store). An fn error aborts the run. Intervals that
// land past the run's end are skipped — the final stretch runs
// uninterrupted, so the result is identical to a plain Run.
func (s *System) RunCheckpointed(every simtime.Duration, fn func(*State) error) (*Result, error) {
	if every <= 0 {
		return nil, fmt.Errorf("sim: non-positive checkpoint interval %v", every)
	}
	if fn == nil {
		return nil, fmt.Errorf("sim: RunCheckpointed without a snapshot sink")
	}
	if !s.prepared {
		s.prepare()
	}
	end := s.horizonEnd()
	for {
		next := s.engine.Now().Add(every)
		if next >= end {
			s.engine.Run(end)
			break
		}
		s.engine.Run(next)
		if s.engine.Err() != nil || s.engine.Stopped() {
			break
		}
		st, err := s.captureState()
		if err != nil {
			return nil, err
		}
		if err := fn(st); err != nil {
			return nil, err
		}
	}
	return s.finish(), nil
}

// captureState serialises the full system at the current (quiescent)
// engine instant. It cross-checks completeness: every scheduled event in
// the engine agenda must be owned by exactly one captured surface, so a
// subsystem growing a new event source without a checkpoint surface fails
// loudly here instead of silently diverging on resume.
func (s *System) captureState() (*State, error) {
	st := &State{At: s.engine.Now(), Engine: s.engine.State()}
	var err error
	if st.Panel, err = s.panel.State(); err != nil {
		return nil, fmt.Errorf("sim: snapshot: %w", err)
	}
	if st.Signal, err = s.dist.State(); err != nil {
		return nil, fmt.Errorf("sim: snapshot: %w", err)
	}
	st.Queue = s.queue.State()
	if st.Producer, err = s.producer.State(); err != nil {
		return nil, fmt.Errorf("sim: snapshot: %w", err)
	}
	if s.dtv != nil {
		v := s.dtv.State()
		st.DTV = &v
	}
	if s.fpe != nil {
		v := s.fpe.State()
		st.FPE = &v
	}
	if s.ctl != nil {
		v := s.ctl.State()
		st.Controller = &v
	}
	if s.ltpo != nil {
		v := s.ltpo.State()
		st.LTPO = &v
	}
	if s.inj != nil {
		v := s.inj.State()
		st.Fault = &v
	}
	if s.monitor != nil {
		v := s.monitor.State()
		st.Health = &v
	}
	if s.tel != nil {
		tc := &TelemetryState{Registry: s.tel.reg.State(), Window: s.tel.window.State(), Done: s.tel.done}
		if !s.tel.done {
			sched, ok := s.engine.Lookup(s.tel.tickID)
			if !ok {
				return nil, fmt.Errorf("sim: snapshot: armed telemetry tick has no scheduled event")
			}
			tc.Tick = &sched
		}
		st.Telemetry = tc
	}
	if s.cfg.Recorder != nil {
		if r, ok := s.cfg.Recorder.(*flight.Ring); ok {
			st.Flight = r.CaptureState()
		} else {
			st.Trace = append([]trace.Event(nil), s.cfg.Recorder.Events()...)
		}
	}
	d := DriverState{
		NextIdx:        s.nextIdx,
		Started:        s.started,
		Ticks:          s.ticks,
		AppSwitch:      s.appSwitch,
		FallbackActive: s.fallbackActive,
	}
	for _, e := range s.presentPending {
		sched, ok := s.engine.Lookup(e.id)
		if !ok {
			return nil, fmt.Errorf("sim: snapshot: present fence of frame %d has no scheduled event", e.frame)
		}
		d.PresentPending = append(d.PresentPending, PresentState{
			At: e.at, Frame: e.frame, Decoupled: e.decoupled, Sched: sched,
		})
	}
	st.Driver = d
	a := AccumState{
		Skipped:      s.res.Skipped,
		FirstLatch:   s.res.FirstLatch,
		LastLatch:    s.res.LastLatch,
		Decoupled:    s.res.DecoupledFrames,
		VSyncPath:    s.res.VSyncPathFrames,
		StaleDropped: s.res.StaleDropped,
	}
	for _, f := range s.res.Presented {
		a.PresentedSeqs = append(a.PresentedSeqs, f.Seq)
	}
	if len(s.res.Janks) > 0 {
		a.Janks = append([]JankRecord(nil), s.res.Janks...)
	}
	if len(s.res.LatencyMs) > 0 {
		a.LatencyMs = append([]float64(nil), s.res.LatencyMs...)
	}
	if len(s.res.Fallbacks) > 0 {
		a.Fallbacks = append([]FallbackRecord(nil), s.res.Fallbacks...)
	}
	st.Accum = a

	captured := len(st.Producer.UIPending) + len(st.Producer.RSPending) +
		len(st.Signal.Pending) + len(st.Driver.PresentPending)
	if st.Panel.Pending != nil {
		captured++
	}
	if st.Telemetry != nil && st.Telemetry.Tick != nil {
		captured++
	}
	if captured != s.engine.Pending() {
		return nil, fmt.Errorf("sim: snapshot captured %d scheduled events, engine holds %d", captured, s.engine.Pending())
	}
	return st, nil
}

// Resume wires a fresh simulation from cfg and loads a snapshot into it.
// cfg must be the configuration that produced the snapshot (callers
// crossing a process boundary verify via ConfigDigest before decoding);
// structural mismatches are reported as errors, never panics. The returned
// system continues from the snapshot instant: Run completes the run with
// results byte-identical to an uninterrupted one.
func Resume(cfg Config, st *State) (*System, error) {
	if st == nil {
		return nil, fmt.Errorf("sim: resume from nil state")
	}
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	s := New(cfg)
	if err := s.restore(st); err != nil {
		return nil, err
	}
	return s, nil
}

// presence reports a component-presence mismatch between the wired system
// and the snapshot as a typed error.
func presence(name string, wired, snapshotted bool) error {
	switch {
	case wired && !snapshotted:
		return fmt.Errorf("sim: resume: config wires %s but the snapshot has no %s state", name, name)
	case !wired && snapshotted:
		return fmt.Errorf("sim: resume: snapshot carries %s state but the config does not wire it", name)
	}
	return nil
}

// restore loads a snapshot into a freshly wired system. Order matters: the
// engine's counters first (so re-inserted events validate against them),
// then the producer (which owns the frame arena every other reference
// resolves through), then the queue, then the remaining components.
func (s *System) restore(st *State) error {
	if err := s.engine.Restore(st.Engine); err != nil {
		return fmt.Errorf("sim: resume: %w", err)
	}
	if err := s.producer.Restore(st.Producer); err != nil {
		return fmt.Errorf("sim: resume: %w", err)
	}
	if err := s.queue.Restore(st.Queue, s.producer.FrameBySeq); err != nil {
		return fmt.Errorf("sim: resume: %w", err)
	}
	if err := s.producer.ValidateRestored(); err != nil {
		return fmt.Errorf("sim: resume: %w", err)
	}
	if err := s.panel.Restore(st.Panel); err != nil {
		return fmt.Errorf("sim: resume: %w", err)
	}
	if err := s.dist.Restore(st.Signal); err != nil {
		return fmt.Errorf("sim: resume: %w", err)
	}
	for _, c := range []struct {
		name        string
		wired, snap bool
	}{
		{"DTV", s.dtv != nil, st.DTV != nil},
		{"FPE", s.fpe != nil, st.FPE != nil},
		{"controller", s.ctl != nil, st.Controller != nil},
		{"LTPO", s.ltpo != nil, st.LTPO != nil},
		{"fault injector", s.inj != nil, st.Fault != nil},
		{"health monitor", s.monitor != nil, st.Health != nil},
		{"telemetry", s.tel != nil, st.Telemetry != nil},
		{"trace recorder", s.cfg.Recorder != nil,
			st.Trace != nil || st.Flight != nil || len(st.Driver.PresentPending) > 0},
	} {
		if err := presence(c.name, c.wired, c.snap); err != nil {
			return err
		}
	}
	if s.dtv != nil {
		if err := s.dtv.Restore(*st.DTV); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
	}
	if s.fpe != nil {
		if err := s.fpe.Restore(*st.FPE); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
	}
	if s.ctl != nil {
		if err := s.ctl.Restore(*st.Controller); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
	}
	if s.ltpo != nil {
		if err := s.ltpo.Restore(*st.LTPO); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
	}
	if s.inj != nil {
		if err := s.inj.Restore(*st.Fault); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
	}
	if s.monitor != nil {
		if err := s.monitor.Restore(*st.Health); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
	}
	if s.tel != nil {
		tc := st.Telemetry
		if err := s.tel.reg.RestoreState(tc.Registry); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
		if err := s.tel.window.Restore(tc.Window); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
		s.tel.done = tc.Done
		if !tc.Done {
			if tc.Tick == nil {
				return fmt.Errorf("sim: resume: live telemetry without an armed sampling tick")
			}
			if err := s.engine.RestoreEvent(*tc.Tick, s.tel.tick); err != nil {
				return fmt.Errorf("sim: resume: %w", err)
			}
			s.tel.tickID = tc.Tick.ID
		}
	}
	n := s.cfg.Trace.Len()
	if s.cfg.Recorder != nil {
		if r, ok := s.cfg.Recorder.(*flight.Ring); ok {
			if st.Flight == nil {
				return fmt.Errorf("sim: resume: config wires a flight recorder but the snapshot carries plain trace state")
			}
			if err := r.RestoreState(st.Flight); err != nil {
				return fmt.Errorf("sim: resume: %w", err)
			}
		} else {
			if st.Flight != nil {
				return fmt.Errorf("sim: resume: snapshot carries flight-recorder state but the config wires a plain recorder")
			}
			if err := s.cfg.Recorder.Restore(st.Trace); err != nil {
				return fmt.Errorf("sim: resume: %w", err)
			}
			s.cfg.Recorder.Reserve(6*n + 64)
		}
		// Rebuild the marker cursor from the restored stream: every mark at
		// or before the newest restored event has already been emitted (for
		// a flight ring the newest retained event is still the newest
		// recorded one, so the rule holds there too).
		var lastAt simtime.Time
		if events := s.cfg.Recorder.Events(); len(events) > 0 {
			lastAt = events[len(events)-1].At
		}
		s.nextMark = 0
		for s.nextMark < len(s.marks) && s.marks[s.nextMark].at <= lastAt {
			s.nextMark++
		}
		if s.dtv != nil {
			s.lastReAnchors = s.dtv.ReAnchors()
		}
	}
	s.nextIdx = st.Driver.NextIdx
	if s.nextIdx < 0 || s.nextIdx > n {
		return fmt.Errorf("sim: resume: trace cursor %d out of range", s.nextIdx)
	}
	s.started = st.Driver.Started
	s.ticks = st.Driver.Ticks
	s.appSwitch = st.Driver.AppSwitch
	s.fallbackActive = st.Driver.FallbackActive
	s.applyEnabled()
	for _, p := range st.Driver.PresentPending {
		if err := s.engine.RestoreEvent(p.Sched, s.presentFn); err != nil {
			return fmt.Errorf("sim: resume: %w", err)
		}
		s.presentPending = append(s.presentPending, presentEntry{
			at: p.At, frame: p.Frame, decoupled: p.Decoupled, id: p.Sched.ID,
		})
	}
	s.res.Presented = make([]*buffer.Frame, 0, n)
	for _, seq := range st.Accum.PresentedSeqs {
		f := s.producer.FrameBySeq(seq)
		if f == nil {
			return fmt.Errorf("sim: resume: presented list references unknown frame %d", seq)
		}
		s.res.Presented = append(s.res.Presented, f)
	}
	s.res.Janks = append([]JankRecord(nil), st.Accum.Janks...)
	s.res.Skipped = st.Accum.Skipped
	s.res.FirstLatch = st.Accum.FirstLatch
	s.res.LastLatch = st.Accum.LastLatch
	s.res.LatencyMs = make([]float64, 0, n)
	s.res.LatencyMs = append(s.res.LatencyMs, st.Accum.LatencyMs...)
	s.res.Fallbacks = append([]FallbackRecord(nil), st.Accum.Fallbacks...)
	s.res.DecoupledFrames = st.Accum.Decoupled
	s.res.VSyncPathFrames = st.Accum.VSyncPath
	s.res.StaleDropped = st.Accum.StaleDropped

	expected := len(st.Producer.UIPending) + len(st.Producer.RSPending) +
		len(st.Signal.Pending) + len(st.Driver.PresentPending)
	if st.Panel.Pending != nil {
		expected++
	}
	if st.Telemetry != nil && st.Telemetry.Tick != nil {
		expected++
	}
	if got := s.engine.Pending(); got != expected {
		return fmt.Errorf("sim: resume: restored %d scheduled events, snapshot describes %d", got, expected)
	}
	s.prepared = true
	return nil
}
