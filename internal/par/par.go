// Package par is the repository's single sanctioned concurrency point: a
// deterministic fan-out runner for independent simulation jobs.
//
// Everything else in this module is single-threaded by decree — dvlint's
// nogoroutine rule fails the build if any other package spawns a goroutine
// or touches a channel (DESIGN.md §6, §8). Experiments parallelise by
// submitting independent, seeded jobs through Map and folding the returned
// slice serially in index order, so the floating-point arithmetic — and
// therefore every golden table and replay digest — is byte-identical
// whether the pool runs one worker or sixteen.
//
// The determinism rules Map relies on:
//
//   - jobs share no mutable state: each builds its own sim.System, engine
//     and recorder (workload traces and profiles are read-only and may be
//     shared);
//   - randomness inside a job comes only from a seed the job owns — a
//     deterministic function of the job index such as seed+i or SplitSeed,
//     mirroring the fault injector's split-RNG discipline — never from a
//     shared stream whose draw order would depend on scheduling;
//   - callers aggregate the result slice serially in index order after Map
//     returns (floating-point addition is not associative, so a reduction
//     inside the workers would make the sum depend on completion order).
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is the process-wide worker budget. tokens holds workers−1 slots:
// every Map call also runs jobs on its calling goroutine, so the slots
// bound how many helper goroutines exist across all concurrent and nested
// Map calls. A nested Map that finds the bucket empty simply runs its jobs
// inline on the caller — fan-out composes without goroutine explosion.
type pool struct {
	workers int
	tokens  chan struct{}
}

// cur is swapped atomically by SetWorkers; in-flight Map calls keep the
// pool they loaded (helpers return their token to the bucket they took it
// from), so resizing never loses or double-counts a slot.
var cur atomic.Pointer[pool]

func init() { SetWorkers(0) }

// SetWorkers sets the process-wide worker budget. n <= 0 resets to
// runtime.GOMAXPROCS(0), the default. n == 1 forces the legacy serial
// path: Map degenerates to a plain loop on the calling goroutine and no
// goroutine is ever spawned.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &pool{workers: n}
	if n > 1 {
		p.tokens = make(chan struct{}, n-1)
		for i := 0; i < n-1; i++ {
			p.tokens <- struct{}{}
		}
	}
	cur.Store(p)
}

// Workers returns the current worker budget.
func Workers() int { return cur.Load().workers }

// JobPanic is the value Map re-panics with after a job panics: the run is
// poisoned and the failure carries the lowest panicking job index, so a
// crash inside a 125-cell sweep is attributable from the panic value alone.
type JobPanic struct {
	// Index is the lowest job index whose function panicked.
	Index int
	// Value is that job's original panic value.
	Value any
}

// Error implements error so recovered JobPanics read well in test output.
func (p JobPanic) Error() string {
	return fmt.Sprintf("par: job %d panicked: %v", p.Index, p.Value)
}

// Map runs fn(0) … fn(n−1) and returns the results in index order. Jobs
// are claimed from an atomic counter in ascending order by the calling
// goroutine plus up to Workers()−1 token-bounded helpers; with a budget of
// one (or a single job) it is a plain serial loop. If any job panics, the
// remaining unclaimed jobs are abandoned and Map re-panics with a JobPanic
// once all in-flight jobs have finished.
func Map[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p := cur.Load()
	if p.workers <= 1 || n == 1 {
		for i := range out {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(JobPanic{Index: i, Value: r})
					}
				}()
				out[i] = fn(i)
			}()
		}
		return out
	}

	var (
		next  atomic.Int64
		mu    sync.Mutex
		first *JobPanic
	)
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						next.Store(int64(n)) // poison: abandon unclaimed jobs
						mu.Lock()
						if first == nil || i < first.Index {
							first = &JobPanic{Index: i, Value: r}
						}
						mu.Unlock()
					}
				}()
				out[i] = fn(i)
			}()
		}
	}

	var wg sync.WaitGroup
spawn:
	for h := 0; h < p.workers-1 && h < n-1; h++ {
		select {
		case <-p.tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { p.tokens <- struct{}{} }()
				run()
			}()
		default:
			break spawn // budget exhausted (nested Map): run inline only
		}
	}
	run()
	wg.Wait()
	if first != nil {
		panic(*first)
	}
	return out
}

// MapLocal is Map with per-goroutine scratch state: every goroutine that
// executes jobs — the caller and each token-bounded helper — lazily builds
// one local L via newLocal and threads it through every job it claims.
// The canonical local is a reused simulation context (sim.Runner): replica
// loops rewind one wired graph per worker instead of reconstructing it per
// job, which is where the runs/sec of the experiment harness comes from.
//
// The determinism rules of Map apply unchanged, plus one: a job's RESULT
// must not depend on its local beyond reuse of scratch capacity. Which
// goroutine claims which job varies with scheduling, so any local whose
// history leaks into the output (an RNG stream, an accumulator) would
// break the byte-identical-at-any-width contract. Locals are never shared
// between goroutines and need no locking; they are discarded when MapLocal
// returns.
func MapLocal[L, T any](n int, newLocal func() L, fn func(local L, i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p := cur.Load()
	if p.workers <= 1 || n == 1 {
		local := newLocal()
		for i := range out {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(JobPanic{Index: i, Value: r})
					}
				}()
				out[i] = fn(local, i)
			}()
		}
		return out
	}

	var (
		next  atomic.Int64
		mu    sync.Mutex
		first *JobPanic
	)
	run := func() {
		// The local is built only once this goroutine has claimed a job:
		// helpers that lose the race for the first claim never pay for a
		// context they would not use.
		var (
			local L
			built bool
		)
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if !built {
				local = newLocal()
				built = true
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						next.Store(int64(n)) // poison: abandon unclaimed jobs
						mu.Lock()
						if first == nil || i < first.Index {
							first = &JobPanic{Index: i, Value: r}
						}
						mu.Unlock()
					}
				}()
				out[i] = fn(local, i)
			}()
		}
	}

	var wg sync.WaitGroup
spawn:
	for h := 0; h < p.workers-1 && h < n-1; h++ {
		select {
		case <-p.tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { p.tokens <- struct{}{} }()
				run()
			}()
		default:
			break spawn // budget exhausted (nested Map): run inline only
		}
	}
	run()
	wg.Wait()
	if first != nil {
		panic(*first)
	}
	return out
}

// SplitSeed derives the seed for one job from a parent seed and a stream
// label — the same FNV-1a splitting discipline dist.RNG.Split gives the
// fault injector, extended with the job index. Jobs that draw randomness
// must own a stream derived deterministically from their index; SplitSeed
// is the canonical way to mint one when plain seed+i arithmetic would
// collide across streams.
func SplitSeed(parent int64, label string, job int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	u := uint64(job)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		u >>= 8
		h *= prime64
	}
	return int64(h&(1<<63-1)) ^ parent
}
