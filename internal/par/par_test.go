package par_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"dvsync/internal/par"
)

// withWorkers pins the budget for one test and restores the default after.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	par.SetWorkers(n)
	t.Cleanup(func() { par.SetWorkers(0) })
}

// job is a small deterministic computation whose value depends only on the
// job index and seed — the contract every par.Map job must satisfy.
func job(seed int64, i int) int64 {
	s := par.SplitSeed(seed, "par.test", i)
	for k := 0; k < 1000; k++ {
		s = s*6364136223846793005 + 1442695040888963407
	}
	return s
}

func TestMapOrderAndEquality(t *testing.T) {
	const n = 200
	withWorkers(t, 1)
	serial := par.Map(n, func(i int) int64 { return job(42, i) })

	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		parallel := par.Map(n, func(i int) int64 { return job(42, i) })
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: result[%d] = %d, serial = %d", w, i, parallel[i], serial[i])
			}
		}
	}
}

func TestMapSerialPathStaysOnCaller(t *testing.T) {
	withWorkers(t, 1)
	var concurrent, peak atomic.Int64
	par.Map(64, func(i int) int {
		c := concurrent.Add(1)
		defer concurrent.Add(-1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		return i
	})
	if got := peak.Load(); got != 1 {
		t.Fatalf("workers=1 ran %d jobs concurrently, want 1", got)
	}
}

func TestMapBoundsConcurrencyAcrossNesting(t *testing.T) {
	const workers = 4
	withWorkers(t, workers)
	var concurrent, peak atomic.Int64
	outer := par.Map(6, func(i int) int64 {
		inner := par.Map(6, func(j int) int64 {
			c := concurrent.Add(1)
			defer concurrent.Add(-1)
			for {
				m := peak.Load()
				if c <= m || peak.CompareAndSwap(m, c) {
					break
				}
			}
			return job(int64(i), j)
		})
		var sum int64
		for _, v := range inner {
			sum += v
		}
		return sum
	})
	if len(outer) != 6 {
		t.Fatalf("outer len = %d", len(outer))
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds worker budget %d", got, workers)
	}

	par.SetWorkers(1)
	want := par.Map(6, func(i int) int64 {
		var sum int64
		for j := 0; j < 6; j++ {
			sum += job(int64(i), j)
		}
		return sum
	})
	for i := range want {
		if outer[i] != want[i] {
			t.Fatalf("nested result[%d] = %d, serial = %d", i, outer[i], want[i])
		}
	}
}

func TestMapPanicCarriesLowestJobIndex(t *testing.T) {
	for _, w := range []int{1, 8} {
		withWorkers(t, w)
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			par.Map(100, func(i int) int {
				if i >= 37 {
					panic("boom")
				}
				return i
			})
		}()
		jp, ok := recovered.(par.JobPanic)
		if !ok {
			t.Fatalf("workers=%d: recovered %#v, want par.JobPanic", w, recovered)
		}
		// Jobs are claimed in ascending index order, so 37 always runs and
		// its recover records the lowest index even if a later job panicked
		// first in wall time.
		if jp.Index != 37 || jp.Value != "boom" {
			t.Fatalf("workers=%d: got JobPanic{%d, %v}, want {37, boom}", w, jp.Index, jp.Value)
		}
		if jp.Error() == "" {
			t.Fatal("JobPanic.Error is empty")
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	withWorkers(t, 8)
	if got := par.Map(0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v, want nil", got)
	}
	if got := par.Map(1, func(i int) int { return i + 7 }); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Map(1) = %v", got)
	}
	// More workers than jobs.
	got := par.Map(3, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map(3)[%d] = %d", i, v)
		}
	}
}

func TestSetWorkersDefault(t *testing.T) {
	par.SetWorkers(0)
	if got, want := par.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
	par.SetWorkers(3)
	if got := par.Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	par.SetWorkers(0)
}

func TestSplitSeedStreams(t *testing.T) {
	seen := map[int64]bool{}
	for job := 0; job < 100; job++ {
		s := par.SplitSeed(20250330, "stream", job)
		if seen[s] {
			t.Fatalf("SplitSeed collision at job %d", job)
		}
		seen[s] = true
	}
	if par.SplitSeed(1, "a", 0) == par.SplitSeed(1, "b", 0) {
		t.Fatal("SplitSeed ignores the label")
	}
	if par.SplitSeed(1, "a", 0) != par.SplitSeed(1, "a", 0) {
		t.Fatal("SplitSeed is not deterministic")
	}
}

// TestMapRaceStress exists so `go test -race ./internal/par` exercises the
// pool hard: many short jobs, workers resized between rounds.
func TestMapRaceStress(t *testing.T) {
	for round, w := range []int{2, 4, 8, 16} {
		withWorkers(t, w)
		sum := par.Map(500, func(i int) int64 { return job(int64(round), i) })
		if len(sum) != 500 {
			t.Fatalf("round %d: len = %d", round, len(sum))
		}
	}
}

// TestMapLocalMatchesMap checks that MapLocal computes the same results
// as Map at every worker width when the local is pure scratch.
func TestMapLocalMatchesMap(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := par.Map(100, fn)
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w)
		got := par.MapLocal(100,
			func() []int { return make([]int, 0, 8) }, // scratch, unused content
			func(scratch []int, i int) int { return fn(i) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: MapLocal[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestMapLocalOneLocalPerGoroutine checks the lazy-local contract: the
// number of locals built never exceeds the worker budget (each executing
// goroutine builds at most one), and the serial path builds exactly one.
func TestMapLocalOneLocalPerGoroutine(t *testing.T) {
	var built atomic.Int64
	newLocal := func() int { return int(built.Add(1)) }

	withWorkers(t, 1)
	built.Store(0)
	par.MapLocal(50, newLocal, func(local, i int) int { return local })
	if n := built.Load(); n != 1 {
		t.Errorf("serial path built %d locals, want 1", n)
	}

	withWorkers(t, 4)
	built.Store(0)
	par.MapLocal(50, newLocal, func(local, i int) int { return local })
	if n := built.Load(); n < 1 || n > 4 {
		t.Errorf("parallel path built %d locals, want 1..4", n)
	}
}

// TestMapLocalPanicPoisoning checks that a panicking job surfaces as a
// JobPanic with the lowest panicking index, like Map.
func TestMapLocalPanicPoisoning(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w)
		func() {
			defer func() {
				r := recover()
				jp, ok := r.(par.JobPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %v, want JobPanic", w, r)
				}
				if jp.Index != 7 {
					t.Errorf("workers=%d: JobPanic.Index = %d, want 7", w, jp.Index)
				}
			}()
			par.MapLocal(64,
				func() struct{} { return struct{}{} },
				func(_ struct{}, i int) int {
					if i == 7 {
						panic("boom")
					}
					return i
				})
			t.Fatalf("workers=%d: MapLocal did not panic", w)
		}()
	}
}

// TestMapLocalZeroJobs mirrors Map's n<=0 contract.
func TestMapLocalZeroJobs(t *testing.T) {
	if got := par.MapLocal(0, func() int { return 0 }, func(int, int) int { return 1 }); got != nil {
		t.Errorf("MapLocal(0) = %v, want nil", got)
	}
}
