// Package simtime provides the virtual time base used throughout the
// simulator. All simulation timestamps are nanoseconds on a virtual clock
// that starts at zero; durations are plain nanosecond counts.
//
// The package deliberately mirrors the shape of the standard library's
// time.Time / time.Duration split so that code reads naturally, but it is a
// distinct type universe: simulated instants must never be confused with
// wall-clock readings.
package simtime

import (
	"fmt"
	"math"
)

// Time is an instant on the virtual simulation clock, in nanoseconds since
// the simulation epoch (t = 0).
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel instant later than any reachable simulation time.
const Never Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Milliseconds returns the instant expressed in (fractional) milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the instant expressed in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as milliseconds with microsecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// Milliseconds returns the duration expressed in (fractional) milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns the duration expressed in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration as milliseconds with microsecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fms", d.Milliseconds()) }

// FromMillis converts a millisecond count to a Duration.
func FromMillis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// FromMicros converts a microsecond count to a Duration.
func FromMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// FromSeconds converts a second count to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// PeriodForHz returns the refresh period of a display running at the given
// rate, e.g. 60 Hz → 16.667 ms.
func PeriodForHz(hz int) Duration {
	if hz <= 0 {
		panic(fmt.Sprintf("simtime: non-positive refresh rate %d", hz))
	}
	return Duration(int64(Second) / int64(hz))
}

// HzForPeriod returns the (rounded) refresh rate whose period is d.
func HzForPeriod(d Duration) int {
	if d <= 0 {
		panic(fmt.Sprintf("simtime: non-positive period %d", int64(d)))
	}
	return int((int64(Second) + int64(d)/2) / int64(d))
}

// AlignUp returns the earliest instant ≥ t that lands on the grid defined by
// phase + k·period (k ∈ ℤ, k ≥ 0).
func AlignUp(t Time, period Duration, phase Time) Time {
	if period <= 0 {
		panic("simtime: non-positive period")
	}
	if t <= phase {
		return phase
	}
	off := int64(t - phase)
	p := int64(period)
	k := (off + p - 1) / p
	return phase + Time(k*p)
}

// AlignDown returns the latest instant ≤ t on the grid phase + k·period.
// t must not precede phase.
func AlignDown(t Time, period Duration, phase Time) Time {
	if period <= 0 {
		panic("simtime: non-positive period")
	}
	if t < phase {
		panic("simtime: AlignDown before phase")
	}
	off := int64(t - phase)
	p := int64(period)
	return phase + Time((off/p)*p)
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxDuration returns the longer of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinDuration returns the shorter of a and b.
func MinDuration(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Clamp limits d to the inclusive range [lo, hi].
func Clamp(d, lo, hi Duration) Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
