package simtime

import (
	"testing"
	"testing/quick"
)

func TestPeriodForHz(t *testing.T) {
	cases := []struct {
		hz   int
		want Duration
	}{
		{60, 16666666},
		{90, 11111111},
		{120, 8333333},
		{30, 33333333},
		{1, Duration(Second)},
	}
	for _, c := range cases {
		if got := PeriodForHz(c.hz); got != c.want {
			t.Errorf("PeriodForHz(%d) = %d, want %d", c.hz, got, c.want)
		}
	}
}

func TestPeriodForHzPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 Hz")
		}
	}()
	PeriodForHz(0)
}

func TestHzForPeriodRoundTrip(t *testing.T) {
	for _, hz := range []int{30, 60, 90, 120, 144, 165} {
		if got := HzForPeriod(PeriodForHz(hz)); got != hz {
			t.Errorf("HzForPeriod(PeriodForHz(%d)) = %d", hz, got)
		}
	}
}

func TestAddSub(t *testing.T) {
	t0 := Time(1000)
	if got := t0.Add(500); got != 1500 {
		t.Errorf("Add = %d", got)
	}
	if got := Time(1500).Sub(t0); got != 500 {
		t.Errorf("Sub = %d", got)
	}
	if !t0.Before(1500) || !Time(1500).After(t0) {
		t.Error("Before/After inconsistent")
	}
}

func TestAlignUp(t *testing.T) {
	p := Duration(100)
	cases := []struct {
		t, phase, want Time
	}{
		{0, 0, 0},
		{1, 0, 100},
		{100, 0, 100},
		{101, 0, 200},
		{5, 10, 10},
		{10, 10, 10},
		{11, 10, 110},
		{250, 50, 250},
		{251, 50, 350},
	}
	for _, c := range cases {
		if got := AlignUp(c.t, p, c.phase); got != c.want {
			t.Errorf("AlignUp(%d, %d, %d) = %d, want %d", c.t, p, c.phase, got, c.want)
		}
	}
}

func TestAlignDown(t *testing.T) {
	p := Duration(100)
	cases := []struct {
		t, phase, want Time
	}{
		{0, 0, 0},
		{99, 0, 0},
		{100, 0, 100},
		{199, 0, 100},
		{110, 10, 110},
		{109, 10, 10},
	}
	for _, c := range cases {
		if got := AlignDown(c.t, p, c.phase); got != c.want {
			t.Errorf("AlignDown(%d, %d, %d) = %d, want %d", c.t, p, c.phase, got, c.want)
		}
	}
}

func TestAlignUpProperties(t *testing.T) {
	f := func(rawT int32, rawPhase int16, rawPeriod uint16) bool {
		period := Duration(rawPeriod%5000) + 1
		phase := Time(rawPhase)
		tt := Time(rawT)
		got := AlignUp(tt, period, phase)
		if got < tt && got != phase {
			return false
		}
		if got < phase {
			return false
		}
		// Result must be on the grid.
		return (got-phase)%Time(period) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(1, 2) != 1 || Max(1, 2) != 2 {
		t.Error("Min/Max broken")
	}
	if MaxDuration(3, 4) != 4 || MinDuration(3, 4) != 3 {
		t.Error("Min/MaxDuration broken")
	}
	if Clamp(5, 1, 3) != 3 || Clamp(-5, 1, 3) != 1 || Clamp(2, 1, 3) != 2 {
		t.Error("Clamp broken")
	}
}

func TestConversions(t *testing.T) {
	if FromMillis(16.667) != 16667000 {
		t.Errorf("FromMillis = %d", FromMillis(16.667))
	}
	if FromMicros(100) != 100000 {
		t.Errorf("FromMicros = %d", FromMicros(100))
	}
	if FromSeconds(2) != 2*Second {
		t.Errorf("FromSeconds = %d", FromSeconds(2))
	}
	if got := Duration(Second).Milliseconds(); got != 1000 {
		t.Errorf("Milliseconds = %v", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if s := Time(16666666).String(); s != "16.667ms" {
		t.Errorf("Time.String = %q", s)
	}
	if s := Never.String(); s != "never" {
		t.Errorf("Never.String = %q", s)
	}
	if s := Duration(1500000).String(); s != "1.500ms" {
		t.Errorf("Duration.String = %q", s)
	}
}
