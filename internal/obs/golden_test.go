package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dvsync/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden Perfetto exports")

// TestGoldenPerfetto pins the full export bytes for one VSync and one
// D-VSync run of the canonical dvtrace recording (60 frames, 60 Hz,
// seed 3). The same fixture is what CI reproduces through the CLI:
//
//	go run ./cmd/dvtrace -record -mode dvsync -frames 60 -seed 3 -perfetto out.json
//	cmp out.json internal/obs/testdata/dvsync.perfetto.json
//
// Any diff here means the export format or the simulation timing moved;
// regenerate deliberately with `go test ./internal/obs -run Golden -update`.
func TestGoldenPerfetto(t *testing.T) {
	cases := []struct {
		file string
		mode sim.Mode
	}{
		{"vsync.perfetto.json", sim.ModeVSync},
		{"dvsync.perfetto.json", sim.ModeDVSync},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ExportPerfetto(record(t, tc.mode), &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("export differs from %s (%d vs %d bytes); regenerate with -update if intended",
					path, buf.Len(), len(want))
			}
			if tracks, err := ValidatePerfetto(want); err != nil {
				t.Errorf("golden fails validation: %v", err)
			} else if tc.mode == sim.ModeDVSync && len(tracks) < 3 {
				t.Errorf("dvsync golden has %d counter tracks %v, want ≥ 3", len(tracks), tracks)
			}
		})
	}
}
