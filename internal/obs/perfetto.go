package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dvsync/internal/simtime"
)

// Perfetto track layout: one process, one thread per pipeline stage plus a
// marker lane. Counter tracks attach to the process.
const (
	pidSim      = 1
	tidUI       = 1
	tidRender   = 2
	tidQueue    = 3
	tidDisplay  = 4
	tidMarkers  = 5
	processName = "dvsync-sim"
)

// traceEvent is one Chrome trace-event record. Field order is the JSON key
// order, and args maps marshal with sorted keys, so the export is
// byte-deterministic.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON-object form of the Chrome trace-event format.
type traceDoc struct {
	TraceEvents     []traceEvent  `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       traceDocOther `json:"otherData"`
}

// traceDocOther stamps provenance into the export.
type traceDocOther struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schemaVersion"`
}

// usOf converts a simulation instant to Chrome's microsecond timebase.
func usOf(t simtime.Time) float64 { return float64(t) / float64(simtime.Microsecond) }

// usDur converts a simulated duration to microseconds.
func usDur(d simtime.Duration) *float64 {
	v := float64(d) / float64(simtime.Microsecond)
	return &v
}

// Perfetto assembles the Chrome trace-event document for the model.
func (m *Model) perfettoDoc() traceDoc {
	evs := make([]traceEvent, 0, 2*len(m.Spans)+len(m.Counters)+len(m.Instants)+8)

	meta := func(name string, tid int, value string) {
		evs = append(evs, traceEvent{
			Name: name, Ph: "M", Pid: pidSim, Tid: tid,
			Args: map[string]any{"name": value},
		})
	}
	meta("process_name", 0, processName)
	meta("thread_name", tidUI, "ui")
	meta("thread_name", tidRender, "render")
	meta("thread_name", tidQueue, "queue")
	meta("thread_name", tidDisplay, "display")
	meta("thread_name", tidMarkers, "markers")

	var body []traceEvent
	spanArgs := func(f *FrameSpan, extra map[string]any) map[string]any {
		args := map[string]any{"frame": f.Frame, "decoupled": f.Decoupled}
		if f.DTimestamp != 0 {
			args["dtsMs"] = f.DTimestamp.Milliseconds()
		}
		for k, v := range extra {
			args[k] = v
		}
		return args
	}
	x := func(name string, tid int, f *FrameSpan, from, to simtime.Time, extra map[string]any) {
		body = append(body, traceEvent{
			Name: name, Cat: "frame", Ph: "X", Ts: usOf(from), Dur: usDur(to.Sub(from)),
			Pid: pidSim, Tid: tid, Args: spanArgs(f, extra),
		})
	}
	for i := range m.Spans {
		f := &m.Spans[i]
		label := fmt.Sprintf("frame %d", f.Frame)
		switch {
		case f.HasUIDone:
			x(label+" ui", tidUI, f, f.Start, f.UIDone, nil)
			if f.HasQueued {
				x(label+" render", tidRender, f, f.UIDone, f.Queued, nil)
			}
		case f.HasQueued:
			// Schema-v1 trace: the UI/render split is unknown.
			x(label+" ui+render", tidUI, f, f.Start, f.Queued, nil)
		}
		switch {
		case f.HasQueued && f.HasLatched:
			x(label+" queued", tidQueue, f, f.Queued, f.Latched, nil)
		case f.Dropped:
			x(label+" queued", tidQueue, f, f.Queued, m.End,
				map[string]any{"dropped": true})
		}
		if f.HasLatched && f.HasPresent {
			x(label+" display", tidDisplay, f, f.Latched, f.Present, nil)
		}
	}
	for _, c := range m.Counters {
		body = append(body, traceEvent{
			Name: c.Track, Cat: "counter", Ph: "C", Ts: usOf(c.At),
			Pid: pidSim, Tid: 0, Args: map[string]any{"value": c.Value},
		})
	}
	for _, in := range m.Instants {
		args := map[string]any{}
		if in.EdgeSeq != 0 || in.Name == "jank" || in.Name == "edge-missed" {
			args["edge"] = in.EdgeSeq
		}
		if in.Hz != 0 {
			args["hz"] = in.Hz
		}
		if in.Detail != "" {
			args["detail"] = in.Detail
		}
		body = append(body, traceEvent{
			Name: in.Name, Cat: "marker", Ph: "i", Ts: usOf(in.At),
			Pid: pidSim, Tid: tidMarkers, S: "p", Args: args,
		})
	}
	// Chronological body after the metadata header; the pre-sort order is
	// itself deterministic, so the stable sort yields identical bytes on
	// every run.
	sort.SliceStable(body, func(i, j int) bool { return body[i].Ts < body[j].Ts })
	evs = append(evs, body...)

	return traceDoc{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData:       traceDocOther{Schema: "dvsync-trace", SchemaVersion: m.SchemaVersion},
	}
}

// WritePerfetto encodes the model as Chrome trace-event JSON, the format
// Perfetto's UI (ui.perfetto.dev) and chrome://tracing load directly. The
// output is byte-identical for identical traces.
func (m *Model) WritePerfetto(w io.Writer) error {
	data, err := json.MarshalIndent(m.perfettoDoc(), "", " ")
	if err != nil {
		return fmt.Errorf("obs: encode perfetto: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write perfetto: %w", err)
	}
	return nil
}

// ExportPerfetto is the one-call path from a recorded trace to Perfetto
// JSON.
func ExportPerfetto(src EventSource, w io.Writer) error {
	return Build(src).WritePerfetto(w)
}

// ExportReport summarises a validated Perfetto export: the schema stamp,
// event totals, and the per-view coverage `dvtrace -check` prints.
type ExportReport struct {
	// SchemaVersion is the stamped trace vocabulary version.
	SchemaVersion int
	// Events is the total traceEvents count (metadata included).
	Events int
	// Spans / Counters / Instants count the X / C / i records.
	Spans, Counters, Instants int
	// Frames is the number of distinct frames covered by span records.
	Frames int
	// Tracks lists the counter track names, sorted.
	Tracks []string
}

// ValidatePerfetto checks an export against the schema contract:
// a JSON object with a non-empty traceEvents array whose records carry a
// name, a known phase, and the per-phase required fields; duration events
// must not run backwards; span records must not collide on the same
// (name, pid, tid, ts) identity; counter samples on one track must be in
// non-decreasing time order; the document must stamp the trace schema
// version. On success it returns the sorted counter track names, so
// callers (tests, the CI gate behind `dvtrace -check`) can assert the
// expected tracks are present.
func ValidatePerfetto(data []byte) ([]string, error) {
	rep, err := ValidatePerfettoReport(data)
	if err != nil {
		return nil, err
	}
	return rep.Tracks, nil
}

// ValidatePerfettoReport is ValidatePerfetto returning the full coverage
// report instead of just the counter tracks.
func ValidatePerfettoReport(data []byte) (*ExportReport, error) {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
		} `json:"traceEvents"`
		OtherData struct {
			Schema        string `json:"schema"`
			SchemaVersion int    `json:"schemaVersion"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: not a trace-event JSON object: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("obs: empty traceEvents array")
	}
	if doc.OtherData.Schema != "dvsync-trace" || doc.OtherData.SchemaVersion < 1 {
		return nil, fmt.Errorf("obs: missing schema stamp (got %q v%d)",
			doc.OtherData.Schema, doc.OtherData.SchemaVersion)
	}
	rep := &ExportReport{SchemaVersion: doc.OtherData.SchemaVersion, Events: len(doc.TraceEvents)}
	counters := map[string]bool{}
	lastCounterTs := map[string]float64{}
	type spanID struct {
		name     string
		pid, tid int
		ts       float64
	}
	spans := map[spanID]bool{}
	frames := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("obs: event %d: empty name", i)
		}
		if ev.Pid == nil {
			return nil, fmt.Errorf("obs: event %d (%s): missing pid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			if _, ok := ev.Args["name"]; !ok {
				return nil, fmt.Errorf("obs: event %d (%s): metadata without args.name", i, ev.Name)
			}
		case "X":
			if ev.Ts == nil || ev.Dur == nil {
				return nil, fmt.Errorf("obs: event %d (%s): duration event without ts/dur", i, ev.Name)
			}
			if *ev.Dur < 0 {
				return nil, fmt.Errorf("obs: event %d (%s): negative duration %v", i, ev.Name, *ev.Dur)
			}
			tid := 0
			if ev.Tid != nil {
				tid = *ev.Tid
			}
			id := spanID{name: ev.Name, pid: *ev.Pid, tid: tid, ts: *ev.Ts}
			if spans[id] {
				return nil, fmt.Errorf("obs: event %d (%s): duplicate span id (pid %d tid %d ts %v)",
					i, ev.Name, id.pid, id.tid, id.ts)
			}
			spans[id] = true
			rep.Spans++
			if f, ok := ev.Args["frame"].(float64); ok {
				frames[fmt.Sprintf("%v", f)] = true
			}
		case "C":
			if ev.Ts == nil {
				return nil, fmt.Errorf("obs: event %d (%s): counter without ts", i, ev.Name)
			}
			if _, ok := ev.Args["value"].(float64); !ok {
				return nil, fmt.Errorf("obs: event %d (%s): counter without numeric args.value", i, ev.Name)
			}
			if last, seen := lastCounterTs[ev.Name]; seen && *ev.Ts < last {
				return nil, fmt.Errorf("obs: event %d (%s): counter sample at %v before previous sample at %v",
					i, ev.Name, *ev.Ts, last)
			}
			lastCounterTs[ev.Name] = *ev.Ts
			counters[ev.Name] = true
			rep.Counters++
		case "i":
			if ev.Ts == nil {
				return nil, fmt.Errorf("obs: event %d (%s): instant without ts", i, ev.Name)
			}
			rep.Instants++
		default:
			return nil, fmt.Errorf("obs: event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	rep.Frames = len(frames)
	tracks := make([]string, 0, len(counters))
	for t := range counters {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	rep.Tracks = tracks
	return rep, nil
}
