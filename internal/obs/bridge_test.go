package obs

import (
	"testing"

	"dvsync/internal/display"
	"dvsync/internal/fault"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// TestFDPSWindowsAgree pins the obs track window to the telemetry layer's
// constant: both derive the same windowed-FDPS quantity, and a drift here
// would silently decouple the two observability layers.
func TestFDPSWindowsAgree(t *testing.T) {
	if FDPSWindow != telemetry.FDPSWindow {
		t.Fatalf("obs.FDPSWindow %v != telemetry.FDPSWindow %v", FDPSWindow, telemetry.FDPSWindow)
	}
}

// bridgeRun executes one D-VSync run with both observability layers
// attached: the trace recorder for post-hoc reconstruction and a
// telemetry registry sampled every panel period.
func bridgeRun(t *testing.T, faults *fault.Config) (*Model, *telemetry.Snapshot) {
	t.Helper()
	p := workload.Profile{
		Name: "bridge", ShortMeanMs: 7, ShortSigmaMs: 3,
		LongRatio: 0.12, LongScaleMs: 26, LongAlpha: 1.7,
		Burstiness: 0.4, UIShare: 0.4, Class: workload.Interactive,
	}
	rec := trace.NewRecorder()
	reg := telemetry.NewRegistry()
	sim.Run(sim.Config{
		Mode:     sim.ModeDVSync,
		Panel:    display.Config{Name: "bridge", RefreshHz: 60},
		Buffers:  4,
		Trace:    p.Generate(240, 4242),
		Recorder: rec,
		Metrics:  reg,
		Faults:   faults,
	})
	return Build(rec), reg.Snapshot()
}

// TestBridgeEquivalence is the satellite gate: the windowed-FDPS and
// queue-depth tracks derived from a telemetry snapshot must agree exactly
// with the trace-reconstructed values, at every instant where both layers
// sampled. FDPS is compared at hardware edges (obs's sampling points);
// queue depth is compared by evaluating obs's event-driven track as a step
// function at each telemetry sample instant.
func TestBridgeEquivalence(t *testing.T) {
	stall, err := fault.Scenario("stall", 0.5, 0, simtime.Time(4*simtime.Second), 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		faults *fault.Config
	}{
		{"clean", nil},
		{"stall-faulted", stall},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, snap := bridgeRun(t, tc.faults)
			fdps, depth, err := TracksFromSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}

			// Index the trace-reconstructed FDPS samples by instant. Edges
			// are unique instants, so last-writer-wins is exact.
			obsFDPS := map[simtime.Time]float64{}
			var obsDepth []CounterSample
			for _, c := range model.Counters {
				switch c.Track {
				case TrackFDPS:
					obsFDPS[c.At] = c.Value
				case TrackQueueDepth:
					obsDepth = append(obsDepth, c)
				}
			}

			matched := 0
			for _, c := range fdps {
				want, ok := obsFDPS[c.At]
				if !ok {
					continue // sampler tick between edges: obs has no point here
				}
				if c.Value != want {
					t.Fatalf("FDPS at %v: telemetry %v, obs %v", c.At, c.Value, want)
				}
				matched++
			}
			if matched < 100 {
				t.Fatalf("only %d FDPS instants matched; sampling grids diverged", matched)
			}

			// Evaluate obs's event-driven depth track as a step function at
			// each telemetry sample instant. Depth events at instant T carry
			// pipeline/hardware priority and therefore precede the control-
			// band sampler tick at T: samples with At <= T are included.
			j, cur := 0, 0.0
			for _, c := range depth {
				for j < len(obsDepth) && obsDepth[j].At <= c.At {
					cur = obsDepth[j].Value
					j++
				}
				if c.Value != cur {
					t.Fatalf("queue depth at %v: telemetry %v, obs step %v", c.At, c.Value, cur)
				}
			}
			if len(depth) < 100 {
				t.Fatalf("only %d depth samples; series too short", len(depth))
			}
		})
	}
}
