package obs

import (
	"fmt"

	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
)

// TracksFromSnapshot derives the windowed-FDPS and queue-depth counter
// tracks from a live-telemetry snapshot's sampled series — the same tracks
// Build reconstructs from a recorded event trace, so the two observability
// layers can be cross-checked point for point (the equivalence test in
// bridge_test.go does exactly that). Sample instants are exact virtual-
// clock nanoseconds, so values can be matched against trace-reconstructed
// samples without rounding.
//
// The FDPS column is refreshed by the simulator at each hardware edge
// before that edge's jank enters the window; Build samples its FDPS track
// from the HWVSync event, which precedes the Jank event at the same
// instant. A telemetry row taken at an edge therefore carries exactly the
// value obs reconstructs there.
func TracksFromSnapshot(s *telemetry.Snapshot) (fdps, depth []CounterSample, err error) {
	fi, di := -1, -1
	for i, c := range s.Series.Columns {
		switch c {
		case telemetry.MetricFDPSWindow:
			fi = i
		case telemetry.MetricQueueDepth:
			di = i
		}
	}
	if fi < 0 {
		return nil, nil, fmt.Errorf("obs: snapshot series lacks column %s", telemetry.MetricFDPSWindow)
	}
	if di < 0 {
		return nil, nil, fmt.Errorf("obs: snapshot series lacks column %s", telemetry.MetricQueueDepth)
	}
	fdps = make([]CounterSample, 0, len(s.Series.Rows))
	depth = make([]CounterSample, 0, len(s.Series.Rows))
	for _, row := range s.Series.Rows {
		at := simtime.Time(row.AtNs)
		fdps = append(fdps, CounterSample{At: at, Track: TrackFDPS, Value: row.Values[fi]})
		depth = append(depth, CounterSample{At: at, Track: TrackQueueDepth, Value: row.Values[di]})
	}
	return fdps, depth, nil
}
