package obs

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"dvsync/internal/display"
	"dvsync/internal/health"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// record runs the canonical dvtrace recording: the same workload, panel
// and buffer count `dvtrace -record -hz 60 -frames 60 -seed 3` uses, so
// the goldens here and the CI cross-check against the CLI agree byte for
// byte.
func record(t *testing.T, mode sim.Mode) *trace.Recorder {
	t.Helper()
	p := workload.DefaultProfile("dvtrace", simtime.PeriodForHz(60).Milliseconds())
	rec := trace.NewRecorder()
	sim.Run(sim.Config{
		Mode:     mode,
		Panel:    display.Config{Name: "dvtrace", RefreshHz: 60},
		Buffers:  4,
		Trace:    p.Generate(60, 3),
		Recorder: rec,
	})
	return rec
}

// TestCoverageContract: every recorded event lands in exactly one of the
// three views — span boundary, counter sample, or instant — for both
// architectures and for a supervised faulted run that trips the fallback
// (exercising the jank/edge-missed/fallback instant kinds).
func TestCoverageContract(t *testing.T) {
	recs := map[string]*trace.Recorder{
		"vsync":  record(t, sim.ModeVSync),
		"dvsync": record(t, sim.ModeDVSync),
		"fallback": func() *trace.Recorder {
			// Healthy lead-in, sustained overload burst that trips the FDPS
			// watchdog, long healthy tail for the hysteresis recovery — the
			// same shape the sim package's golden fallback test pins.
			tr := &workload.Trace{Name: "obs-fallback"}
			addCost := func(ms float64, n int) {
				for i := 0; i < n; i++ {
					total := simtime.FromMillis(ms)
					ui := simtime.Duration(float64(total) * 0.35)
					tr.Costs = append(tr.Costs, workload.Cost{UI: ui, RS: total - ui, Class: workload.Deterministic})
				}
			}
			addCost(5, 30)
			addCost(35, 25)
			addCost(5, 60)
			rec := trace.NewRecorder()
			sim.Run(sim.Config{
				Mode:           sim.ModeDVSync,
				Panel:          display.Config{Name: "obs-fallback", RefreshHz: 60},
				Buffers:        5,
				Trace:          tr,
				EnableFallback: true,
				Health: health.Config{
					Window:       200 * simtime.Millisecond,
					MaxFDPS:      10,
					RecoverAfter: 300 * simtime.Millisecond,
				},
				Recorder: rec,
			})
			return rec
		}(),
	}
	for name, rec := range recs {
		m := Build(rec)
		if un := m.Unmatched(); len(un) != 0 {
			t.Errorf("%s: %d events unclassified (first at index %d: %+v)",
				name, len(un), un[0], rec.Events()[un[0]])
		}
		if len(m.Roles) != rec.Len() {
			t.Fatalf("%s: %d roles for %d events", name, len(m.Roles), rec.Len())
		}
		// Cross-count every kind against the view that must consume it.
		counts := map[trace.EventKind]int{}
		for _, ev := range rec.Events() {
			counts[ev.Kind]++
		}
		spanEvents := counts[trace.FrameStart] + counts[trace.FrameUIDone] +
			counts[trace.FrameQueued] + counts[trace.FrameLatched] + counts[trace.FramePresent]
		instantEvents := counts[trace.Jank] + counts[trace.EdgeMissed] +
			counts[trace.RateChange] + counts[trace.Fallback]
		var gotSpan, gotCounter, gotInstant int
		for _, r := range m.Roles {
			switch r {
			case RoleSpan:
				gotSpan++
			case RoleCounter:
				gotCounter++
			case RoleInstant:
				gotInstant++
			}
		}
		if gotSpan != spanEvents {
			t.Errorf("%s: %d span-role events, want %d", name, gotSpan, spanEvents)
		}
		if gotCounter != counts[trace.HWVSync] {
			t.Errorf("%s: %d counter-role events, want %d edges", name, gotCounter, counts[trace.HWVSync])
		}
		if gotInstant != instantEvents {
			t.Errorf("%s: %d instant-role events, want %d", name, gotInstant, instantEvents)
		}
		if gotSpan+gotCounter+gotInstant != rec.Len() {
			t.Errorf("%s: roles sum to %d, want %d", name,
				gotSpan+gotCounter+gotInstant, rec.Len())
		}
		if len(m.Spans) != counts[trace.FrameStart] {
			t.Errorf("%s: %d spans for %d frame starts", name, len(m.Spans), counts[trace.FrameStart])
		}
		if name == "fallback" && counts[trace.Fallback] == 0 {
			t.Errorf("fallback scenario recorded no fallback events")
		}
	}
}

// TestSpanStageOrdering: reconstructed stage boundaries are monotone and
// the UI/render split is present on schema-v2 traces.
func TestSpanStageOrdering(t *testing.T) {
	m := Build(record(t, sim.ModeDVSync))
	if len(m.Spans) == 0 {
		t.Fatal("no spans")
	}
	for _, f := range m.Spans {
		if !f.HasUIDone {
			t.Fatalf("frame %d: schema-v2 trace without ui-done", f.Frame)
		}
		if f.UIDone < f.Start || (f.HasQueued && f.Queued < f.UIDone) {
			t.Errorf("frame %d: ui/render boundaries out of order: %+v", f.Frame, f)
		}
		if f.HasLatched && f.Latched < f.Queued {
			t.Errorf("frame %d: latched before queued", f.Frame)
		}
		if f.HasPresent && f.Present < f.Latched {
			t.Errorf("frame %d: present before latch", f.Frame)
		}
		if !f.Decoupled {
			t.Errorf("frame %d: dvsync steady-state frame not decoupled", f.Frame)
		}
	}
}

// TestSchemaV1Fallback: a trace without ui-done events (schema v1) still
// reconstructs, with the UI/render stages merged.
func TestSchemaV1Fallback(t *testing.T) {
	rec := trace.NewRecorder()
	rec.Add(trace.Event{At: 0, Kind: trace.HWVSync, Frame: -1, Hz: 60})
	rec.Add(trace.Event{At: 100, Kind: trace.FrameStart, Frame: 0})
	rec.Add(trace.Event{At: 900, Kind: trace.FrameQueued, Frame: 0})
	rec.Add(trace.Event{At: 1000, Kind: trace.FrameLatched, Frame: 0, EdgeSeq: 1})
	rec.Add(trace.Event{At: 2000, Kind: trace.FramePresent, Frame: 0})
	m := Build(rec)
	if len(m.Spans) != 1 || m.Spans[0].HasUIDone {
		t.Fatalf("v1 spans = %+v", m.Spans)
	}
	var buf bytes.Buffer
	if err := m.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ui+render") {
		t.Error("v1 export should merge the ui and render stages")
	}
	if _, err := ValidatePerfetto(buf.Bytes()); err != nil {
		t.Errorf("v1 export invalid: %v", err)
	}
}

// TestDroppedFrameAnnotation: a queued-but-never-latched frame is marked
// dropped and its queue span is annotated in the export.
func TestDroppedFrameAnnotation(t *testing.T) {
	rec := trace.NewRecorder()
	rec.Add(trace.Event{At: 0, Kind: trace.FrameStart, Frame: 0})
	rec.Add(trace.Event{At: 500, Kind: trace.FrameQueued, Frame: 0})
	rec.Add(trace.Event{At: 1000, Kind: trace.Jank, Frame: -1, EdgeSeq: 1})
	m := Build(rec)
	if len(m.Spans) != 1 || !m.Spans[0].Dropped {
		t.Fatalf("spans = %+v, want one dropped frame", m.Spans)
	}
	var buf bytes.Buffer
	if err := m.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"dropped\": true") {
		t.Error("export should annotate the dropped frame")
	}
}

// TestCounterTracks: the dvsync export carries at least the three
// pipeline counters, and the windowed-FDPS track rises after janks.
func TestCounterTracks(t *testing.T) {
	m := Build(record(t, sim.ModeDVSync))
	var buf bytes.Buffer
	if err := m.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	tracks, err := ValidatePerfetto(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) < 3 {
		t.Fatalf("counter tracks = %v, want ≥ 3", tracks)
	}
	want := map[string]bool{TrackQueueDepth: false, TrackFDPS: false, TrackCalibErr: false}
	for _, tr := range tracks {
		if _, ok := want[tr]; ok {
			want[tr] = true
		}
	}
	for _, name := range []string{TrackQueueDepth, TrackFDPS, TrackCalibErr} {
		if !want[name] {
			t.Errorf("track %s missing from export (got %v)", name, tracks)
		}
	}
}

// TestWindowedFDPS: the counter divides trailing-window janks by the
// (start-truncated) window length.
func TestWindowedFDPS(t *testing.T) {
	win := simtime.Duration(FDPSWindow)
	janks := []simtime.Time{
		simtime.Time(win / 2),
		simtime.Time(win),
	}
	now := simtime.Time(win + win/4)
	// Both janks inside [now-win, now]: 2 / 0.5 s = 4.
	if got := windowedFDPS(janks, now); got != 2/win.Seconds() {
		t.Errorf("windowedFDPS = %v, want %v", got, 2/win.Seconds())
	}
	// Early in the run the window truncates at t=0.
	if got := windowedFDPS([]simtime.Time{0}, simtime.Time(win/5)); got != 1/(win/5).Seconds() {
		t.Errorf("truncated windowedFDPS = %v", got)
	}
	if got := windowedFDPS(nil, 0); got != 0 {
		t.Errorf("empty windowedFDPS = %v", got)
	}
}

// TestValidateRejectsMalformed: the minimal schema check catches the
// obvious corruption classes.
func TestValidateRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportPerfetto(record(t, sim.ModeVSync), &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"not-json":        "[1,2,3",
		"no-events":       `{"traceEvents":[],"otherData":{"schema":"dvsync-trace","schemaVersion":2}}`,
		"no-schema-stamp": `{"traceEvents":[{"name":"x","ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"bad-phase":       strings.Replace(good, `"ph": "X"`, `"ph": "Z"`, 1),
		"negative-dur":    strings.Replace(good, `"dur": `, `"dur": -`, 1),
	}
	for name, doc := range cases {
		if _, err := ValidatePerfetto([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	if _, err := ValidatePerfetto([]byte(good)); err != nil {
		t.Errorf("good export rejected: %v", err)
	}
}

// adversarialDoc wraps hand-built traceEvents records in a validly
// stamped document, so each fixture isolates one corruption class.
func adversarialDoc(events string) string {
	return `{"traceEvents":[` + events +
		`],"otherData":{"schema":"dvsync-trace","schemaVersion":3}}`
}

// TestValidateAdversarial: fixtures that are well-formed JSON with a
// valid schema stamp but violate the structural contract — the cases a
// subtly buggy exporter (not random corruption) would produce.
func TestValidateAdversarial(t *testing.T) {
	cases := map[string]struct {
		events  string
		wantErr string
	}{
		"duplicate span id": {
			events: `{"name":"frame 3 ui","ph":"X","ts":100,"dur":5,"pid":1,"tid":1},` +
				`{"name":"frame 3 ui","ph":"X","ts":100,"dur":7,"pid":1,"tid":1}`,
			wantErr: "duplicate span id",
		},
		"negative duration": {
			events:  `{"name":"frame 3 ui","ph":"X","ts":100,"dur":-5,"pid":1,"tid":1}`,
			wantErr: "negative duration",
		},
		"counter time regression": {
			events: `{"name":"fdps","ph":"C","ts":100,"pid":1,"args":{"value":1}},` +
				`{"name":"fdps","ph":"C","ts":50,"pid":1,"args":{"value":2}}`,
			wantErr: "before previous sample",
		},
		"counter without value": {
			events:  `{"name":"fdps","ph":"C","ts":100,"pid":1,"args":{"note":"x"}}`,
			wantErr: "numeric args.value",
		},
		"instant without ts": {
			events:  `{"name":"jank","ph":"i","pid":1,"tid":5,"s":"t"}`,
			wantErr: "instant without ts",
		},
		"missing pid": {
			events:  `{"name":"jank","ph":"i","ts":100,"tid":5}`,
			wantErr: "missing pid",
		},
	}
	for name, tc := range cases {
		_, err := ValidatePerfetto([]byte(adversarialDoc(tc.events)))
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
	// The same shapes on distinct identities are legal: two spans that
	// differ only in tid, and independent counter tracks regressing
	// relative to each other.
	legal := `{"name":"frame 3 ui","ph":"X","ts":100,"dur":5,"pid":1,"tid":1},` +
		`{"name":"frame 3 ui","ph":"X","ts":100,"dur":5,"pid":1,"tid":2},` +
		`{"name":"fdps","ph":"C","ts":100,"pid":1,"args":{"value":1}},` +
		`{"name":"janks","ph":"C","ts":50,"pid":1,"args":{"value":0}}`
	if _, err := ValidatePerfetto([]byte(adversarialDoc(legal))); err != nil {
		t.Errorf("distinct identities rejected: %v", err)
	}
}

// TestValidateReportCoverage: the success-path report carries the counts
// `dvtrace -check` prints, and they match the model that produced the
// export.
func TestValidateReportCoverage(t *testing.T) {
	rec := record(t, sim.ModeDVSync)
	var buf bytes.Buffer
	if err := ExportPerfetto(rec, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidatePerfettoReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m := Build(rec)
	if rep.SchemaVersion != m.SchemaVersion {
		t.Errorf("report schema v%d, model v%d", rep.SchemaVersion, m.SchemaVersion)
	}
	if rep.Events == 0 || rep.Spans == 0 || rep.Counters != len(m.Counters) ||
		rep.Instants != len(m.Instants) {
		t.Errorf("report coverage %+v does not match model (%d counters, %d instants)",
			rep, len(m.Counters), len(m.Instants))
	}
	if rep.Frames != len(m.Spans) {
		t.Errorf("report covers %d frames, model has %d spans", rep.Frames, len(m.Spans))
	}
	if !sort.StringsAreSorted(rep.Tracks) || len(rep.Tracks) == 0 {
		t.Errorf("report tracks %v are empty or unsorted", rep.Tracks)
	}
}

// TestExportDeterminism: repeated exports of the same recording are
// byte-identical.
func TestExportDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := ExportPerfetto(record(t, sim.ModeDVSync), &a); err != nil {
		t.Fatal(err)
	}
	if err := ExportPerfetto(record(t, sim.ModeDVSync), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same recording differ")
	}
}

// TestEmptyTrace: a model over no events exports a valid (if dull)
// document and renders an empty table.
func TestEmptyTrace(t *testing.T) {
	m := Build(trace.NewRecorder())
	if len(m.Spans)+len(m.Counters)+len(m.Instants) != 0 {
		t.Fatalf("empty model: %+v", m)
	}
	var buf bytes.Buffer
	if err := m.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	// Only metadata events: still structurally valid.
	if _, err := ValidatePerfetto(buf.Bytes()); err != nil {
		t.Errorf("empty export invalid: %v", err)
	}
	var tbl strings.Builder
	m.WriteSpanTable(&tbl)
	if !strings.Contains(tbl.String(), "0 frames") {
		t.Errorf("span table = %q", tbl.String())
	}
}
