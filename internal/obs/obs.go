// Package obs is the observability layer over internal/trace: it
// reconstructs per-frame spans (UI → render → queue wait → display, with
// drop and fallback annotations), counter timelines (buffer-queue depth,
// windowed FDPS, DTV calibration error, health-watchdog state) and instant
// markers (janks, missed edges, fallback trips, rate changes) from a
// recorded event stream, and exports them as Chrome trace-event JSON
// loadable in Perfetto (DESIGN.md §9).
//
// The mapping contract is total: every recorded event is consumed by
// exactly one of the three views — lifecycle events
// (frame-start/ui-done/queued/latched/present) become span boundaries,
// HWVSync edges become counter samples, and everything else becomes an
// instant. Build records the classification per event so tests can assert
// nothing is silently dropped.
//
// Everything here is a pure function of the recorded events: no wall
// clock, no randomness, no map-order dependence. The same trace produces
// byte-identical exports on every run and at every -workers width.
package obs

import (
	"fmt"
	"io"
	"strings"

	"dvsync/internal/simtime"
	"dvsync/internal/trace"
)

// FDPSWindow is the sliding window of the exported frame-drop counter,
// matching the health monitor's default evaluation window.
const FDPSWindow = 500 * simtime.Millisecond

// Counter track names in the Perfetto export.
const (
	TrackQueueDepth = "queue-depth"
	TrackFDPS       = "fdps-windowed"
	TrackCalibErr   = "dtv-calib-error-ms"
	TrackFallback   = "fallback-tripped"
)

// Role classifies how Build consumed one recorded event.
type Role int

// Event roles.
const (
	// RoleUnmatched marks events of kinds unknown to this schema version.
	RoleUnmatched Role = iota
	// RoleSpan marks frame-lifecycle events consumed as span boundaries.
	RoleSpan
	// RoleCounter marks events consumed as counter samples (HWVSync edges
	// drive the windowed-FDPS track).
	RoleCounter
	// RoleInstant marks events exported as instant markers.
	RoleInstant
)

// FrameSpan is one frame's reconstructed lifecycle. Stage boundaries that
// never appeared in the trace leave their Has flag false; a frame that was
// rendered but never latched (stale-dropped, or still queued when the
// trace ended) is marked Dropped.
type FrameSpan struct {
	// Frame is the frame sequence number.
	Frame int
	// Decoupled marks FPE-triggered frames.
	Decoupled bool
	// DTimestamp is the issued display prediction (0 on the VSync path).
	DTimestamp simtime.Time
	// Start/UIDone/Queued/Latched/Present are the stage boundaries.
	Start, UIDone, Queued, Latched, Present simtime.Time
	// HasUIDone is false on schema-v1 traces (no UI/render split).
	HasUIDone bool
	// HasQueued/HasLatched/HasPresent report which boundaries were seen.
	HasQueued, HasLatched, HasPresent bool
	// Dropped marks frames queued but never latched.
	Dropped bool
}

// CalibErrMs returns |present − D-Timestamp| in ms for presented decoupled
// frames, and (0, false) otherwise.
func (f *FrameSpan) CalibErrMs() (float64, bool) {
	if !f.Decoupled || !f.HasPresent || f.DTimestamp == 0 {
		return 0, false
	}
	err := f.Present.Sub(f.DTimestamp)
	if err < 0 {
		err = -err
	}
	return err.Milliseconds(), true
}

// CounterSample is one point on a counter track.
type CounterSample struct {
	// At is the sample instant.
	At simtime.Time
	// Track names the counter.
	Track string
	// Value is the sampled value.
	Value float64
}

// Instant is one point marker.
type Instant struct {
	// At is the marker instant.
	At simtime.Time
	// Name is the marker kind (jank, edge-missed, fallback, rate-change).
	Name string
	// EdgeSeq is the panel edge index where applicable.
	EdgeSeq uint64
	// Hz is the refresh rate for rate changes.
	Hz int
	// Detail carries event context (fallback direction and reason).
	Detail string
}

// Model is the reconstructed observability view of one trace.
type Model struct {
	// SchemaVersion is the vocabulary version the trace was read under.
	SchemaVersion int
	// Spans lists per-frame lifecycles in frame-start order.
	Spans []FrameSpan
	// Counters lists counter samples in emission (time) order.
	Counters []CounterSample
	// Instants lists point markers in time order.
	Instants []Instant
	// Roles classifies each recorded event, parallel to the input trace.
	Roles []Role
	// Start/End bound the trace.
	Start, End simtime.Time
}

// EventSource is any holder of a recorded event stream: *trace.Recorder,
// a flight-recorder ring, or a decoded anomaly dump wrapped in one.
type EventSource interface {
	Events() []trace.Event
}

// Build reconstructs the observability model from a recorded trace in one
// deterministic forward pass.
func Build(src EventSource) *Model {
	return BuildEvents(src.Events())
}

// BuildEvents is Build over a raw event slice (non-decreasing time order,
// as every Sink guarantees).
func BuildEvents(events []trace.Event) *Model {
	m := &Model{SchemaVersion: trace.SchemaVersion, Roles: make([]Role, len(events))}
	if len(events) == 0 {
		return m
	}
	m.Start, m.End = events[0].At, events[len(events)-1].At

	// byFrame indexes the span under construction for each frame id; spans
	// themselves live in the slice, appended in frame-start order, so no
	// map iteration ever happens.
	byFrame := map[int]int{}
	span := func(frame int) *FrameSpan {
		i, ok := byFrame[frame]
		if !ok {
			return nil
		}
		return &m.Spans[i]
	}

	depth := 0
	tripped := false
	emittedState := false
	var jankTimes []simtime.Time

	for i, ev := range events {
		switch ev.Kind {
		case trace.FrameStart:
			m.Roles[i] = RoleSpan
			byFrame[ev.Frame] = len(m.Spans)
			m.Spans = append(m.Spans, FrameSpan{
				Frame: ev.Frame, Decoupled: ev.Decoupled,
				DTimestamp: ev.DTimestamp, Start: ev.At,
			})
		case trace.FrameUIDone:
			m.Roles[i] = RoleSpan
			if f := span(ev.Frame); f != nil {
				f.UIDone, f.HasUIDone = ev.At, true
			}
		case trace.FrameQueued:
			m.Roles[i] = RoleSpan
			if f := span(ev.Frame); f != nil {
				f.Queued, f.HasQueued = ev.At, true
			}
			depth++
			m.Counters = append(m.Counters, CounterSample{At: ev.At, Track: TrackQueueDepth, Value: float64(depth)})
		case trace.FrameLatched:
			m.Roles[i] = RoleSpan
			if f := span(ev.Frame); f != nil {
				f.Latched, f.HasLatched = ev.At, true
			}
			if depth > 0 {
				depth--
			}
			m.Counters = append(m.Counters, CounterSample{At: ev.At, Track: TrackQueueDepth, Value: float64(depth)})
		case trace.FramePresent:
			m.Roles[i] = RoleSpan
			if f := span(ev.Frame); f != nil {
				f.Present, f.HasPresent = ev.At, true
				if errMs, ok := f.CalibErrMs(); ok {
					m.Counters = append(m.Counters, CounterSample{At: ev.At, Track: TrackCalibErr, Value: errMs})
				}
			}
		case trace.HWVSync:
			m.Roles[i] = RoleCounter
			m.Counters = append(m.Counters, CounterSample{
				At: ev.At, Track: TrackFDPS, Value: windowedFDPS(jankTimes, ev.At),
			})
		case trace.Jank:
			m.Roles[i] = RoleInstant
			jankTimes = append(jankTimes, ev.At)
			m.Instants = append(m.Instants, Instant{At: ev.At, Name: "jank", EdgeSeq: ev.EdgeSeq})
		case trace.EdgeMissed:
			m.Roles[i] = RoleInstant
			m.Instants = append(m.Instants, Instant{At: ev.At, Name: "edge-missed", EdgeSeq: ev.EdgeSeq})
		case trace.RateChange:
			m.Roles[i] = RoleInstant
			m.Instants = append(m.Instants, Instant{At: ev.At, Name: "rate-change", EdgeSeq: ev.EdgeSeq, Hz: ev.Hz})
		case trace.FaultOnset, trace.FaultEnd, trace.DTVReAnchor:
			// Schema-v3 markers: fault-episode boundaries and calibration
			// re-anchors ride the marker lane so attribution stays a pure
			// function of the event stream.
			m.Roles[i] = RoleInstant
			m.Instants = append(m.Instants, Instant{At: ev.At, Name: string(ev.Kind), Detail: ev.Detail})
		case trace.Fallback:
			m.Roles[i] = RoleInstant
			m.Instants = append(m.Instants, Instant{At: ev.At, Name: "fallback", Detail: ev.Detail})
			if !emittedState {
				// Anchor the state track at the trace start so the step is
				// visible even when the first transition is late.
				m.Counters = append(m.Counters, CounterSample{At: m.Start, Track: TrackFallback, Value: 0})
				emittedState = true
			}
			tripped = strings.HasPrefix(ev.Detail, "to=VSync")
			v := 0.0
			if tripped {
				v = 1
			}
			m.Counters = append(m.Counters, CounterSample{At: ev.At, Track: TrackFallback, Value: v})
		default:
			m.Roles[i] = RoleUnmatched
		}
	}

	// Frames queued but never latched were discarded (stale-dropping
	// consumer) or stranded when the trace ended: annotate them.
	for i := range m.Spans {
		f := &m.Spans[i]
		if f.HasQueued && !f.HasLatched {
			f.Dropped = true
		}
	}
	return m
}

// windowedFDPS counts janks inside the trailing window ending at now,
// divided by the (start-truncated) window length.
func windowedFDPS(janks []simtime.Time, now simtime.Time) float64 {
	win := simtime.Duration(FDPSWindow)
	if simtime.Duration(now) < win {
		win = simtime.Duration(now)
	}
	if win <= 0 {
		return 0
	}
	cut := now.Add(-win)
	n := 0
	for i := len(janks) - 1; i >= 0; i-- {
		if janks[i] < cut {
			break
		}
		n++
	}
	return float64(n) / win.Seconds()
}

// Unmatched returns the indices of recorded events no view consumed
// (always empty for traces written by this schema version).
func (m *Model) Unmatched() []int {
	var out []int
	for i, r := range m.Roles {
		if r == RoleUnmatched {
			out = append(out, i)
		}
	}
	return out
}

// WriteSpanTable renders the per-frame stage breakdown as an aligned text
// table: the `dvtrace -spans` view.
func (m *Model) WriteSpanTable(w io.Writer) {
	fmt.Fprintf(w, "%d frames, %d counters, %d instants (schema v%d)\n",
		len(m.Spans), len(m.Counters), len(m.Instants), m.SchemaVersion)
	fmt.Fprintf(w, "%6s  %-6s  %10s  %8s  %8s  %8s  %8s  %s\n",
		"frame", "chan", "start ms", "ui ms", "rend ms", "queue ms", "disp ms", "flags")
	for i := range m.Spans {
		f := &m.Spans[i]
		ch := "vsync"
		if f.Decoupled {
			ch = "dvsync"
		}
		ui, rend := "-", "-"
		if f.HasUIDone {
			ui = fmt.Sprintf("%.3f", f.UIDone.Sub(f.Start).Milliseconds())
			if f.HasQueued {
				rend = fmt.Sprintf("%.3f", f.Queued.Sub(f.UIDone).Milliseconds())
			}
		} else if f.HasQueued {
			// Schema-v1 trace: UI and render are indistinguishable.
			ui = fmt.Sprintf("%.3f", f.Queued.Sub(f.Start).Milliseconds())
		}
		queue, disp := "-", "-"
		if f.HasQueued && f.HasLatched {
			queue = fmt.Sprintf("%.3f", f.Latched.Sub(f.Queued).Milliseconds())
		}
		if f.HasLatched && f.HasPresent {
			disp = fmt.Sprintf("%.3f", f.Present.Sub(f.Latched).Milliseconds())
		}
		var flags []string
		if f.Dropped {
			flags = append(flags, "dropped")
		}
		if !f.HasQueued {
			flags = append(flags, "unfinished")
		}
		fmt.Fprintf(w, "%6d  %-6s  %10.3f  %8s  %8s  %8s  %8s  %s\n",
			f.Frame, ch, f.Start.Milliseconds(), ui, rend, queue, disp,
			strings.Join(flags, ","))
	}
}
