// Causal attribution: walk every jank / edge-missed / fallback instant in
// a recorded event stream back to its proximate and root cause. This is
// the "why was this frame late?" half of the flight-recorder contract
// (DESIGN.md §15): Attribute is a pure function of the events — fault
// episodes and DTV re-anchors arrive as schema-v3 in-stream markers, so a
// flight-recorder dump attributes identically to the full trace it was
// cut from, byte-for-byte at any worker width.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dvsync/internal/simtime"
	"dvsync/internal/trace"
)

// CauseKind names one link in a cause chain. The attribution priority is
// fixed and documented: fault-episode > render-stall > queue-starvation >
// dtv-reanchor > ltpo-rate-change; health links annotate fallback
// transitions; unattributed marks instants no rule matched (never emitted
// for traces recorded by this schema version's simulator).
type CauseKind string

// Cause kinds, strongest root first.
const (
	// CauseFaultEpisode roots a chain in an injected fault episode.
	CauseFaultEpisode CauseKind = "fault-episode"
	// CauseRenderStall marks a frame still in UI/render at the instant.
	CauseRenderStall CauseKind = "render-stall"
	// CauseQueueStarvation marks an empty buffer queue with no frame in
	// flight — the producer had nothing underway at the edge.
	CauseQueueStarvation CauseKind = "queue-starvation"
	// CauseDTVReAnchor links a calibration re-anchor just before the instant.
	CauseDTVReAnchor CauseKind = "dtv-reanchor"
	// CauseRateChange links an LTPO refresh-rate switch just before it.
	CauseRateChange CauseKind = "ltpo-rate-change"
	// CauseHealth carries the §4.5 supervisor transition (direction+reason).
	CauseHealth CauseKind = "health"
	// CausePanelMiss marks a skipped refresh with no fault in stream.
	CausePanelMiss CauseKind = "panel-miss"
	// CauseUnattributed marks an instant no rule matched.
	CauseUnattributed CauseKind = "unattributed"
)

// recentWindow bounds how far back a rate change or DTV re-anchor may sit
// and still count as the cause of a starved edge: three 60 Hz periods.
const recentWindow = 50 * simtime.Millisecond

// Cause is one link in a chain, proximate to root.
type Cause struct {
	// Kind classifies the link.
	Kind CauseKind `json:"kind"`
	// At is when the causing condition took effect.
	At simtime.Time `json:"at"`
	// Frame is the implicated frame (-1 when not frame-related).
	Frame int `json:"frame"`
	// Detail carries the condition's own context (fault episode id and
	// severity, fallback direction and reason, stall length).
	Detail string `json:"detail,omitempty"`
}

// CauseChain explains one jank / edge-missed / fallback instant. Causes
// run proximate-first; the last element is the root cause.
type CauseChain struct {
	// At is the explained instant.
	At simtime.Time `json:"at"`
	// Instant names it: jank, edge-missed, or fallback.
	Instant string `json:"instant"`
	// EdgeSeq is the panel edge index where applicable.
	EdgeSeq uint64 `json:"edge,omitempty"`
	// Causes is the proximate→root chain, never empty.
	Causes []Cause `json:"causes"`
}

// Root returns the chain's root (last) cause.
func (c *CauseChain) Root() Cause { return c.Causes[len(c.Causes)-1] }

// faultWindow is one fault episode reconstructed from in-stream markers.
type faultWindow struct {
	key    string // "class=<name> episode=<i>", the FaultEnd match key
	detail string // full FaultOnset detail, including severity
	start  simtime.Time
	end    simtime.Time
	open   bool
}

// Attribute walks every jank, edge-missed and fallback instant of the
// event stream back through its frame's span chain to a proximate and
// root cause, in time order. Chains are deterministic: the same events
// yield the same chains, byte-for-byte once serialised.
func Attribute(events []trace.Event) []CauseChain {
	m := BuildEvents(events)

	// Fault windows from schema-v3 markers, in onset order. A FaultEnd
	// closes the matching open window; markers never interleave within one
	// class+episode key, so a linear scan suffices.
	var windows []faultWindow
	var reAnchors, rateChanges []simtime.Time
	for _, ev := range events {
		switch ev.Kind {
		case trace.FaultOnset:
			windows = append(windows, faultWindow{
				key: episodeKey(ev.Detail), detail: ev.Detail, start: ev.At, open: true,
			})
		case trace.FaultEnd:
			key := episodeKey(ev.Detail)
			for i := len(windows) - 1; i >= 0; i-- {
				if windows[i].open && windows[i].key == key {
					windows[i].end, windows[i].open = ev.At, false
					break
				}
			}
		case trace.DTVReAnchor:
			reAnchors = append(reAnchors, ev.At)
		case trace.RateChange:
			rateChanges = append(rateChanges, ev.At)
		}
	}

	// activeAt returns the latest-started fault window covering t (episode
	// ends are exclusive, matching fault.Episode.Active).
	activeAt := func(t simtime.Time) *faultWindow {
		var hit *faultWindow
		for i := range windows {
			w := &windows[i]
			if w.start <= t && (w.open || t < w.end) {
				if hit == nil || w.start >= hit.start {
					hit = w
				}
			}
		}
		return hit
	}
	// overlapping returns the latest-started fault window intersecting
	// [from, to].
	overlapping := func(from, to simtime.Time) *faultWindow {
		var hit *faultWindow
		for i := range windows {
			w := &windows[i]
			if w.start <= to && (w.open || from < w.end) {
				if hit == nil || w.start >= hit.start {
					hit = w
				}
			}
		}
		return hit
	}
	// recent returns the latest time in ts within recentWindow before t.
	recent := func(ts []simtime.Time, t simtime.Time) (simtime.Time, bool) {
		for i := len(ts) - 1; i >= 0; i-- {
			if ts[i] <= t {
				if t.Sub(ts[i]) <= recentWindow {
					return ts[i], true
				}
				return 0, false
			}
		}
		return 0, false
	}
	// inFlight returns the oldest frame started but not yet queued at t:
	// the frame the display was waiting on.
	inFlight := func(t simtime.Time) *FrameSpan {
		for i := range m.Spans {
			f := &m.Spans[i]
			if f.Start > t {
				break
			}
			if !f.HasQueued || f.Queued > t {
				return f
			}
		}
		return nil
	}
	faultCause := func(w *faultWindow) Cause {
		return Cause{Kind: CauseFaultEpisode, At: w.start, Frame: -1, Detail: w.detail}
	}

	var chains []CauseChain
	for _, in := range m.Instants {
		chain := CauseChain{At: in.At, Instant: in.Name, EdgeSeq: in.EdgeSeq}
		switch in.Name {
		case "jank":
			if f := inFlight(in.At); f != nil {
				chain.Causes = append(chain.Causes, Cause{
					Kind: CauseRenderStall, At: f.Start, Frame: f.Frame,
					Detail: fmt.Sprintf("frame %d in flight %.3fms", f.Frame, in.At.Sub(f.Start).Milliseconds()),
				})
				if w := overlapping(f.Start, in.At); w != nil {
					chain.Causes = append(chain.Causes, faultCause(w))
				}
			} else {
				chain.Causes = append(chain.Causes, Cause{
					Kind: CauseQueueStarvation, At: in.At, Frame: -1,
					Detail: "no frame in flight at edge",
				})
				switch {
				case activeAt(in.At) != nil:
					chain.Causes = append(chain.Causes, faultCause(activeAt(in.At)))
				default:
					if at, ok := recent(rateChanges, in.At); ok {
						chain.Causes = append(chain.Causes, Cause{Kind: CauseRateChange, At: at, Frame: -1})
					} else if at, ok := recent(reAnchors, in.At); ok {
						chain.Causes = append(chain.Causes, Cause{Kind: CauseDTVReAnchor, At: at, Frame: -1})
					}
				}
			}
		case "edge-missed":
			chain.Causes = append(chain.Causes, Cause{
				Kind: CausePanelMiss, At: in.At, Frame: -1, Detail: "panel skipped refresh",
			})
			if w := activeAt(in.At); w != nil {
				chain.Causes = append(chain.Causes, faultCause(w))
			}
		case "fallback":
			chain.Causes = append(chain.Causes, Cause{
				Kind: CauseHealth, At: in.At, Frame: -1, Detail: in.Detail,
			})
			if strings.HasPrefix(in.Detail, "to=VSync") {
				if strings.Contains(in.Detail, "reason=stall") {
					if f := inFlight(in.At); f != nil {
						chain.Causes = append(chain.Causes, Cause{
							Kind: CauseRenderStall, At: f.Start, Frame: f.Frame,
							Detail: fmt.Sprintf("frame %d in flight %.3fms", f.Frame, in.At.Sub(f.Start).Milliseconds()),
						})
					}
				}
				if w := activeAt(in.At); w != nil {
					chain.Causes = append(chain.Causes, faultCause(w))
				}
			}
		default:
			continue // rate changes and markers are causes, not symptoms
		}
		if len(chain.Causes) == 0 {
			chain.Causes = append(chain.Causes, Cause{Kind: CauseUnattributed, At: in.At, Frame: -1})
		}
		chains = append(chains, chain)
	}
	return chains
}

// episodeKey strips the severity suffix from a fault marker detail so
// onset and end markers of one episode share a key.
func episodeKey(detail string) string {
	if i := strings.Index(detail, " severity="); i >= 0 {
		return detail[:i]
	}
	return detail
}

// String renders one cause link as kind(detail).
func (c Cause) String() string {
	if c.Detail == "" {
		return fmt.Sprintf("%s(at %.3fms)", c.Kind, c.At.Milliseconds())
	}
	return fmt.Sprintf("%s(%s)", c.Kind, c.Detail)
}

// chainString renders the proximate→root chain with " <- " separators.
func (c *CauseChain) chainString() string {
	parts := make([]string, len(c.Causes))
	for i, cause := range c.Causes {
		parts[i] = cause.String()
	}
	return strings.Join(parts, " <- ")
}

// WriteCauseTable renders chains as the aligned text table behind
// `dvtrace -why`: one line per explained instant, proximate→root.
func WriteCauseTable(w io.Writer, chains []CauseChain) {
	fmt.Fprintf(w, "%d attributed instants\n", len(chains))
	for i := range chains {
		c := &chains[i]
		loc := ""
		if c.EdgeSeq != 0 {
			loc = fmt.Sprintf(" edge=%d", c.EdgeSeq)
		}
		fmt.Fprintf(w, "%12.3fms  %-11s%s: %s\n",
			c.At.Milliseconds(), c.Instant, loc, c.chainString())
	}
}

// ExportPerfettoAnnotated writes the Perfetto export with each explained
// instant's cause chain attached to its marker args ("cause" = root kind,
// "chain" = full proximate→root rendering). The plain ExportPerfetto
// output stays byte-stable; annotation is a separate surface.
func ExportPerfettoAnnotated(src EventSource, w io.Writer) error {
	events := src.Events()
	m := BuildEvents(events)
	chains := Attribute(events)
	doc := m.perfettoDoc()

	// Chains and instant records are both in time order per name, so a
	// per-name cursor matches each chain to its marker record.
	byName := map[string][]*CauseChain{}
	for i := range chains {
		byName[chains[i].Instant] = append(byName[chains[i].Instant], &chains[i])
	}
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph != "i" {
			continue
		}
		queue := byName[ev.Name]
		if len(queue) == 0 || usOf(queue[0].At) != ev.Ts {
			continue
		}
		c := queue[0]
		byName[ev.Name] = queue[1:]
		if ev.Args == nil {
			ev.Args = map[string]any{}
		}
		ev.Args["cause"] = string(c.Root().Kind)
		ev.Args["chain"] = c.chainString()
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obs: encode annotated perfetto: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write annotated perfetto: %w", err)
	}
	return nil
}
