package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dvsync/internal/par"
	"dvsync/internal/sim"
)

// demoQuickDuplicates is the duplicate-cell count DemoSpec(true) bakes
// in: the pixel5-rerun cohort repeats pixel5-moderate's four cells.
const demoQuickDuplicates = 4

// TestCensusDeterminismAcrossWorkers is the fleet contract: the same
// spec produces byte-identical aggregate output at -workers 1, 4 and 8,
// and the cache hit count matches the duplicate cells of the spec
// exactly — duplicates are simulated once, never twice and never
// miscounted by shard races.
func TestCensusDeterminismAcrossWorkers(t *testing.T) {
	t.Cleanup(func() { par.SetWorkers(0) })
	spec := DemoSpec(true)
	var want []byte
	for _, w := range []int{1, 4, 8} {
		par.SetWorkers(w)
		res, err := NewEngine().Census(spec, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatalf("workers=%d: WriteJSON: %v", w, err)
		}
		if want == nil {
			want = buf.Bytes()
		} else if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("workers=%d: census output differs from workers=1", w)
		}
		if res.CacheHits != demoQuickDuplicates {
			t.Errorf("workers=%d: cache hits = %d, want %d (the spec's duplicate cells)",
				w, res.CacheHits, demoQuickDuplicates)
		}
		if res.Simulated != res.UniqueCells {
			t.Errorf("workers=%d: simulated %d cells but %d are unique",
				w, res.Simulated, res.UniqueCells)
		}
		if res.Simulated+res.CacheHits != res.Cells {
			t.Errorf("workers=%d: simulated %d + hits %d != cells %d",
				w, res.Simulated, res.CacheHits, res.Cells)
		}
	}
}

// TestCensusCacheAccounting pins the memoisation ledger: the duplicated
// cohort is all hits, and a second census on the same engine simulates
// nothing while producing the identical result.
func TestCensusCacheAccounting(t *testing.T) {
	eng := NewEngine()
	spec := DemoSpec(true)
	first, err := eng.Census(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rerun *CohortResult
	for _, c := range first.Cohorts {
		if c.Name == "pixel5-rerun" {
			rerun = c
		}
	}
	if rerun == nil {
		t.Fatal("demo spec lost its pixel5-rerun cohort")
	}
	if rerun.Simulated != 0 || rerun.CacheHits != rerun.Cells {
		t.Errorf("duplicated cohort: simulated=%d hits=%d cells=%d, want 0/%d/%d",
			rerun.Simulated, rerun.CacheHits, rerun.Cells, rerun.Cells, rerun.Cells)
	}

	second, err := eng.Census(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Simulated != 0 || second.CacheHits != second.Cells {
		t.Errorf("warm census: simulated=%d hits=%d, want 0/%d", second.Simulated, second.CacheHits, second.Cells)
	}
	var a, b bytes.Buffer
	if err := first.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	// Cold and warm censuses must agree except for the hit accounting.
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatal("empty census output")
	}
	for _, c := range second.Cohorts {
		if c.Simulated != 0 {
			t.Errorf("warm cohort %q simulated %d cells", c.Name, c.Simulated)
		}
	}
}

// TestCensusStreamsCohortsInOrder: the onCohort tap fires once per
// cohort, in spec order, with the same aggregates the final result holds.
func TestCensusStreamsCohortsInOrder(t *testing.T) {
	var streamed []string
	res, err := NewEngine().Census(DemoSpec(true), func(c *CohortResult) {
		streamed = append(streamed, c.Name)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Cohorts) {
		t.Fatalf("streamed %d cohorts, result has %d", len(streamed), len(res.Cohorts))
	}
	for i, c := range res.Cohorts {
		if streamed[i] != c.Name {
			t.Errorf("cohort %d streamed as %q, want %q", i, streamed[i], c.Name)
		}
	}
}

// TestCensusMatchesFreshRun: a pooled, possibly cached census cell
// reports exactly what an independent sim.Run of the same config
// measures — the cache and Runner pooling must be invisible.
func TestCensusMatchesFreshRun(t *testing.T) {
	spec := Spec{Cohorts: []Cohort{{
		Name: "solo", Device: "mate60", Hz: []int{120},
		Modes: []string{"dvsync"}, Workload: "heavy-tail",
		Frames: 300, Replicas: 1,
	}}}
	cohorts, err := spec.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(cohorts) != 1 || len(cohorts[0].cells) != 1 {
		t.Fatalf("expected one cell, got %+v", cohorts)
	}
	want := sim.Run(cohorts[0].cells[0].config())

	res, err := NewEngine().Census(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Cohorts[0]
	if got.MeanFDPS != want.FDPS() {
		t.Errorf("census FDPS %v, fresh run %v", got.MeanFDPS, want.FDPS())
	}
	if got.Janks != len(want.Janks) {
		t.Errorf("census janks %d, fresh run %d", got.Janks, len(want.Janks))
	}
}

// TestCacheEvictionCompacts: the engine's FIFO eviction must compact the
// order slice in place. Once the cache is full its capacity never moves
// again — a re-slicing eviction (order = order[1:]) shrinks and
// reallocates the backing array forever instead.
func TestCacheEvictionCompacts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < cacheCap; i++ {
		e.insert(fmt.Sprintf("digest-%d", i), nil)
	}
	base := cap(e.order)
	for i := 0; i < 3*cacheCap; i++ {
		e.insert(fmt.Sprintf("evict-%d", i), nil)
		if got := cap(e.order); got != base {
			t.Fatalf("insert %d: order capacity moved %d -> %d; eviction re-slices instead of compacting", i, base, got)
		}
	}
	if len(e.order) != cacheCap || len(e.cache) != cacheCap {
		t.Errorf("cache size %d / order %d, want %d", len(e.cache), len(e.order), cacheCap)
	}
	for _, d := range e.order {
		if _, ok := e.cache[d]; !ok {
			t.Fatalf("order holds evicted digest %q", d)
		}
	}
}

// TestSpecValidation sweeps the rejection surface: every malformed spec
// is an error naming the problem, never a panicking run.
func TestSpecValidation(t *testing.T) {
	sev := func(v float64) *float64 { return &v }
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no cohorts", Spec{}, "at least one cohort"},
		{"unknown device", Spec{Cohorts: []Cohort{{Device: "iphone"}}}, "unknown device"},
		{"unknown workload", Spec{Cohorts: []Cohort{{Workload: "spiky"}}}, "unknown workload"},
		{"unknown mode", Spec{Cohorts: []Cohort{{Modes: []string{"turbo"}}}}, "unknown mode"},
		{"bad hz", Spec{Cohorts: []Cohort{{Hz: []int{0}}}}, "refresh rate"},
		{"single buffer", Spec{Cohorts: []Cohort{{Buffers: 1}}}, "double-buffer"},
		{"bad frames", Spec{Cohorts: []Cohort{{Frames: MaxFrames + 1}}}, "invalid frames"},
		{"severity without fault", Spec{Cohorts: []Cohort{{Severity: sev(0.5)}}}, "without a fault class"},
		{"severity with fault none", Spec{Cohorts: []Cohort{{Fault: "none", Severity: sev(0.5)}}}, "without a fault class"},
		{"unknown fault", Spec{Cohorts: []Cohort{{Fault: "gremlins"}}}, "unknown"},
		{"severity out of range", Spec{Cohorts: []Cohort{{Fault: "stall", Severity: sev(1.5)}}}, "outside [0, 1]"},
		{"duplicate names", Spec{Cohorts: []Cohort{{Name: "a"}, {Name: "a"}}}, "duplicate cohort name"},
		{"too many cells", Spec{Replicas: MaxReplicas,
			Cohorts: []Cohort{{Hz: []int{30, 60, 90, 120, 144, 165, 240, 360, 480}}}}, "expands past"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: validated clean, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// fault "none" without severity is a clean cohort, not an error.
	if err := (Spec{Cohorts: []Cohort{{Fault: "none"}}}).Validate(); err != nil {
		t.Errorf("fault=none: %v, want clean validation", err)
	}
}
