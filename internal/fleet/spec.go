// Package fleet is the batch census engine: it expands a declarative
// device-population spec into a deterministic grid of simulation cells,
// shards the cells over internal/par with pooled sim.Runners, and
// aggregates per-cohort FDPS/jank/latency distributions into
// internal/telemetry instruments. Identical cells — same panel, refresh,
// mode, workload, fault plan and seed — are memoised in a
// content-addressed result cache keyed by sim.ConfigDigest, so a cohort
// sharing a parameter set is simulated once fleet-wide.
//
// Determinism contract (DESIGN.md §14): cell expansion order is fixed
// (cohort → hz → mode → replica), cells are classified against the cache
// serially in that order, and shard results merge back serially in the
// same order. Census output is therefore byte-identical at every
// -workers width, and cache hit counts are exact, not racy.
package fleet

import (
	"fmt"

	"dvsync/internal/fault"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// Expansion limits. A census is bounded work: the spec is rejected up
// front when it would expand past these, never truncated silently.
const (
	// MaxCells bounds the expanded grid of one census.
	MaxCells = 65536
	// MaxCohorts bounds the cohort list.
	MaxCohorts = 256
	// MaxReplicas bounds replicas per cohort cell.
	MaxReplicas = 4096
	// MaxFrames matches dvserve's per-run frame bound.
	MaxFrames = 100_000
)

// Defaults applied by normalize when the spec leaves a field zero.
const (
	// DefaultSeed is the census base seed.
	DefaultSeed int64 = 1
	// DefaultFrames is the per-cell workload length.
	DefaultFrames = 240
	// DefaultSeverity matches dvserve's -fault-severity default.
	DefaultSeverity = 0.5
)

// Spec declares one census: a named population of cohorts plus
// spec-level defaults. The zero value of every optional field means
// "use the default" — an all-defaults spec still needs at least one
// cohort.
type Spec struct {
	// Name labels the census in results (optional).
	Name string `json:"name,omitempty"`
	// Seed is the base workload seed; replica r of any cell uses Seed+r.
	// 0 means DefaultSeed.
	Seed int64 `json:"seed,omitempty"`
	// Frames is the default per-cell workload length (0 = DefaultFrames).
	Frames int `json:"frames,omitempty"`
	// Replicas is the default replica count per cell (0 = 1).
	Replicas int `json:"replicas,omitempty"`
	// Cohorts lists the population segments; at least one is required.
	Cohorts []Cohort `json:"cohorts"`
}

// Cohort is one population segment: a device model swept over refresh
// rates, architectures and replicas under one workload and fault plan.
type Cohort struct {
	// Name labels the cohort in aggregates ("" = cohort<N>). Names must
	// be unique within a spec.
	Name string `json:"name,omitempty"`
	// Device is the panel model: "pixel5", "mate40" or "mate60".
	// "" means pixel5.
	Device string `json:"device,omitempty"`
	// Hz lists panel refresh rates to sweep (empty = the device default).
	Hz []int `json:"hz,omitempty"`
	// Modes lists architectures to sweep: "vsync" and/or "dvsync"
	// (empty = both).
	Modes []string `json:"modes,omitempty"`
	// Buffers overrides the device's buffer-queue size (0 = device
	// default: Android triple buffering, OpenHarmony four).
	Buffers int `json:"buffers,omitempty"`
	// Workload selects the frame-cost shape: "default", "scattered",
	// "moderate", "heavy-tail" or "mixed" ("" = default).
	Workload string `json:"workload,omitempty"`
	// Fault injects a seeded fault plan: any internal/fault class, or
	// "none"/"" for clean runs.
	Fault string `json:"fault,omitempty"`
	// Severity is the fault severity in [0, 1]; only valid with a fault
	// class (nil = DefaultSeverity when a class is set).
	Severity *float64 `json:"severity,omitempty"`
	// Frames overrides the spec default for this cohort.
	Frames int `json:"frames,omitempty"`
	// Replicas overrides the spec default for this cohort.
	Replicas int `json:"replicas,omitempty"`
}

// deviceFor maps a spec device key to the Table 1 catalog.
func deviceFor(key string) (scenarios.Device, error) {
	switch key {
	case "", "pixel5":
		return scenarios.Pixel5, nil
	case "mate40":
		return scenarios.Mate40Pro, nil
	case "mate60":
		return scenarios.Mate60Pro, nil
	}
	return scenarios.Device{}, fmt.Errorf("unknown device %q (want pixel5, mate40 or mate60)", key)
}

// profileFor builds the workload profile for a cohort on a (refresh-
// overridden) device. Profile names are canonical per workload key — two
// cohorts differing only in their label expand to identical traces and
// therefore share cache cells.
func profileFor(key string, dev scenarios.Device) (workload.Profile, error) {
	switch key {
	case "", "default":
		return workload.DefaultProfile("fleet-default", dev.Period().Milliseconds()), nil
	case "scattered":
		return scenarios.BaseProfile("fleet-scattered", dev, scenarios.Scattered, workload.Deterministic), nil
	case "moderate":
		return scenarios.BaseProfile("fleet-moderate", dev, scenarios.Moderate, workload.Deterministic), nil
	case "heavy-tail":
		return scenarios.BaseProfile("fleet-heavy-tail", dev, scenarios.HeavyTail, workload.Deterministic), nil
	case "mixed":
		return scenarios.MixedRealWorldProfile(), nil
	}
	return workload.Profile{}, fmt.Errorf("unknown workload %q (want default, scattered, moderate, heavy-tail or mixed)", key)
}

// cell is one fully resolved simulation of the census grid.
type cell struct {
	dev      scenarios.Device // refresh rate already overridden
	mode     sim.Mode
	buffers  int
	frames   int
	seed     int64 // trace seed (spec seed + replica index)
	profile  workload.Profile
	faults   *fault.Config // nil for clean cells
	faultCls string        // normalized class ("" when clean), for shape keying
	faultSev float64
}

// config builds the cell's simulation configuration. The trace is
// generated here — deterministically from the profile and seed — so the
// returned config is exactly what sim.ConfigDigest keys the result cache
// on: two cells with equal configs are the same simulation.
func (c cell) config() sim.Config {
	return sim.Config{
		Mode:    c.mode,
		Panel:   c.dev.Panel(),
		Buffers: c.buffers,
		Trace:   c.profile.Generate(c.frames, c.seed),
		Faults:  c.faults,
	}
}

// shape identifies the wired-graph shape of the cell: every config field
// except the trace. Cells sharing a shape can share one sim.Runner per
// worker, swapping traces through RunTrace.
func (c cell) shape() string {
	f := "none"
	if c.faults != nil {
		f = fmt.Sprintf("%s/%v/%d", c.faultCls, c.faultSev, c.faults.Seed)
	}
	return fmt.Sprintf("%s|%d|%d|%d|%s", c.dev.Name, c.dev.RefreshHz, int(c.mode), c.buffers, f)
}

// resolvedCohort is one cohort expanded to its cells, in deterministic
// hz → mode → replica order.
type resolvedCohort struct {
	name  string
	cells []cell
}

// Validate reports whether the spec would resolve; it is what /fleet
// checks before committing to a streamed response.
func (s Spec) Validate() error {
	_, err := s.resolve()
	return err
}

// resolve normalizes defaults and expands the spec into its cell grid.
// The expansion order is the determinism anchor: cohorts in declaration
// order, then hz, then mode, then replica.
func (s Spec) resolve() ([]resolvedCohort, error) {
	if len(s.Cohorts) == 0 {
		return nil, fmt.Errorf("fleet: spec needs at least one cohort")
	}
	if len(s.Cohorts) > MaxCohorts {
		return nil, fmt.Errorf("fleet: %d cohorts exceed the %d bound", len(s.Cohorts), MaxCohorts)
	}
	seed := s.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	defFrames, err := boundedDefault("frames", s.Frames, DefaultFrames, MaxFrames)
	if err != nil {
		return nil, err
	}
	defReplicas, err := boundedDefault("replicas", s.Replicas, 1, MaxReplicas)
	if err != nil {
		return nil, err
	}
	out := make([]resolvedCohort, 0, len(s.Cohorts))
	names := make(map[string]bool, len(s.Cohorts))
	total := 0
	for i, c := range s.Cohorts {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("cohort%d", i+1)
		}
		if names[name] {
			return nil, fmt.Errorf("fleet: duplicate cohort name %q", name)
		}
		names[name] = true
		rc, n, err := s.resolveCohort(c, seed, defFrames, defReplicas)
		if err != nil {
			return nil, fmt.Errorf("fleet: cohort %q: %w", name, err)
		}
		rc.name = name
		total += n
		if total > MaxCells {
			return nil, fmt.Errorf("fleet: spec expands past %d cells", MaxCells)
		}
		out = append(out, rc)
	}
	return out, nil
}

// resolveCohort expands one cohort; the returned count is len(cells).
func (s Spec) resolveCohort(c Cohort, seed int64, defFrames, defReplicas int) (resolvedCohort, int, error) {
	dev, err := deviceFor(c.Device)
	if err != nil {
		return resolvedCohort{}, 0, err
	}
	hzs := c.Hz
	if len(hzs) == 0 {
		hzs = []int{dev.RefreshHz}
	}
	modes := c.Modes
	if len(modes) == 0 {
		modes = []string{"vsync", "dvsync"}
	}
	buffers := c.Buffers
	if buffers == 0 {
		buffers = dev.Buffers
	}
	if buffers < 2 {
		return resolvedCohort{}, 0, fmt.Errorf("%d buffers cannot double-buffer", buffers)
	}
	frames, err := boundedDefault("frames", c.Frames, defFrames, MaxFrames)
	if err != nil {
		return resolvedCohort{}, 0, err
	}
	replicas, err := boundedDefault("replicas", c.Replicas, defReplicas, MaxReplicas)
	if err != nil {
		return resolvedCohort{}, 0, err
	}
	faults, faultCls, faultSev, err := faultsFor(c, seed)
	if err != nil {
		return resolvedCohort{}, 0, err
	}
	var cells []cell
	for _, hz := range hzs {
		if hz <= 0 || hz > 1000 {
			return resolvedCohort{}, 0, fmt.Errorf("invalid refresh rate %d (want 1..1000)", hz)
		}
		d := dev
		d.RefreshHz = hz
		prof, err := profileFor(c.Workload, d)
		if err != nil {
			return resolvedCohort{}, 0, err
		}
		for _, m := range modes {
			var mode sim.Mode
			switch m {
			case "vsync":
				mode = sim.ModeVSync
			case "dvsync":
				mode = sim.ModeDVSync
			default:
				return resolvedCohort{}, 0, fmt.Errorf("unknown mode %q (want vsync or dvsync)", m)
			}
			for r := 0; r < replicas; r++ {
				cells = append(cells, cell{
					dev: d, mode: mode, buffers: buffers, frames: frames,
					seed: seed + int64(r), profile: prof,
					faults: faults, faultCls: faultCls, faultSev: faultSev,
				})
			}
		}
	}
	return resolvedCohort{cells: cells}, len(cells), nil
}

// faultsFor builds the cohort's shared fault plan. The plan is seeded by
// the spec seed — not the replica index — so replicas of a faulted cell
// share one wired fault config and can share a pooled Runner. The
// injection window mirrors dvserve's: onset after a 500 ms warm-up,
// active for the rest of the run.
func faultsFor(c Cohort, seed int64) (*fault.Config, string, float64, error) {
	cls := c.Fault
	if cls == "none" {
		cls = ""
	}
	if cls == "" {
		if c.Severity != nil {
			return nil, "", 0, fmt.Errorf("severity %v without a fault class has no effect", *c.Severity)
		}
		return nil, "", 0, nil
	}
	sev := DefaultSeverity
	if c.Severity != nil {
		sev = *c.Severity
	}
	fc, err := fault.Scenario(cls, sev,
		simtime.Time(simtime.FromMillis(500)), simtime.Time(simtime.FromSeconds(3600)), seed)
	if err != nil {
		return nil, "", 0, err
	}
	return fc, cls, sev, nil
}

// boundedDefault applies a zero-means-default rule under an upper bound.
func boundedDefault(what string, v, def, max int) (int, error) {
	if v == 0 {
		v = def
	}
	if v < 0 || v > max {
		return 0, fmt.Errorf("invalid %s %d (want 1..%d)", what, v, max)
	}
	return v, nil
}
