package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"

	"dvsync/internal/flight"
	"dvsync/internal/par"
	"dvsync/internal/sim"
	"dvsync/internal/telemetry"
)

// SchemaVersion versions the census result JSON.
const SchemaVersion = 1

// cacheCap bounds the content-addressed result cache. Eviction is FIFO
// with in-place compaction — the order slice never pins evicted keys in
// its backing array (the dvserve runner cache had exactly that leak).
const cacheCap = 4096

// dumpIndexCap bounds the engine's anomaly-dump index (FIFO, like the
// result cache).
const dumpIndexCap = 1024

// AnomalyJankThreshold classifies a cell anomalous on total jank count:
// at or above it the cell is re-run once with the flight recorder
// attached. Matches the recorder's own burst trigger default.
const AnomalyJankThreshold = flight.DefaultJankBurst

// Per-cell distribution buckets of the cohort aggregates.
var (
	// CellFDPSBuckets brackets per-cell frame drops per second from the
	// sub-1 FDPS the paper calls smooth up to hopeless.
	CellFDPSBuckets = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}
	// CellJankBuckets brackets per-cell jank counts.
	CellJankBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100}
)

// cellOutcome is the memoised measurement of one unique cell. Outcomes
// are immutable once cached: aggregation only reads them, so a hit from
// a previous census folds in byte-identically to a fresh run.
type cellOutcome struct {
	fdps      float64
	janks     int
	presented int
	edges     int
	skipped   int
	stale     int
	fallbacks int
	completed bool
	latency   *telemetry.Histogram // per-frame latency, LatencyBucketsMs

	// anomalous marks cells that met the anomaly predicate and were
	// re-run once under the flight recorder. dumpIDs/dumps carry the
	// resulting envelope-sealed anomaly dumps, keyed by the cell's plain
	// config digest — cache hits reuse them without re-running anything.
	anomalous bool
	dumpIDs   []string
	dumps     [][]byte
}

// Engine runs censuses and owns the fleet-wide result cache. One engine
// serialises its censuses under a mutex — the cache classification that
// makes hit counts deterministic requires it — so dvserve shares a
// single engine across requests for cross-request memoisation.
type Engine struct {
	mu    sync.Mutex
	cache map[string]*cellOutcome // sim.ConfigDigest → outcome
	order []string                // FIFO eviction order, compacted on evict

	dumps     map[string][]byte // anomaly dump id → sealed envelope bytes
	dumpOrder []string          // FIFO eviction order of the dump index
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{cache: map[string]*cellOutcome{}, dumps: map[string][]byte{}}
}

// AnomalyIDs lists every indexed anomaly-dump id in registration order
// (census expansion order — deterministic across repeats and -workers
// widths).
func (e *Engine) AnomalyIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.dumpOrder...)
}

// AnomalyDump returns the sealed envelope bytes of one anomaly dump.
func (e *Engine) AnomalyDump(id string) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.dumps[id]
	return b, ok
}

// indexDumps publishes one outcome's dumps, FIFO-evicting past the
// bound. Re-registration (cache hits, warm repeats) is a no-op, so ids
// stay in first-seen order. Caller holds e.mu.
func (e *Engine) indexDumps(out *cellOutcome) {
	for i, id := range out.dumpIDs {
		if _, ok := e.dumps[id]; ok {
			continue
		}
		if len(e.dumpOrder) >= dumpIndexCap {
			delete(e.dumps, e.dumpOrder[0])
			copy(e.dumpOrder, e.dumpOrder[1:])
			e.dumpOrder = e.dumpOrder[:len(e.dumpOrder)-1]
		}
		e.dumps[id] = out.dumps[i]
		e.dumpOrder = append(e.dumpOrder, id)
	}
}

// CohortResult is the aggregate of one cohort's cells.
type CohortResult struct {
	// Name is the cohort label from the spec.
	Name string `json:"name"`
	// Cells is how many cells the cohort expanded to.
	Cells int `json:"cells"`
	// Simulated counts cells this cohort ran fresh (first occurrence
	// fleet-wide); CacheHits counts cells served from the result cache.
	Simulated int `json:"simulated"`
	CacheHits int `json:"cache_hits"`
	// MeanFDPS averages per-cell FDPS over the cohort.
	MeanFDPS float64 `json:"mean_fdps"`
	// MeanLatencyMs averages per-frame rendering latency over every
	// presented frame of the cohort (0 when nothing presented).
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	// Janks totals repeated-frame edges across the cohort.
	Janks int `json:"janks"`
	// Anomalies counts cells that met the anomaly predicate (watchdog
	// trip, fallback, or ≥ AnomalyJankThreshold janks) and were re-run
	// under the flight recorder; AnomalyDumps lists their dump ids in
	// expansion order.
	Anomalies    int      `json:"anomalies"`
	AnomalyDumps []string `json:"anomaly_dumps,omitempty"`
	// Metrics is the cohort's telemetry snapshot: counters, mean gauges
	// and the FDPS/jank/latency distribution histograms.
	Metrics *telemetry.Snapshot `json:"metrics"`

	// Registry backs Metrics, for callers that want the Prometheus
	// exposition instead of the snapshot.
	Registry *telemetry.Registry `json:"-"`
}

// Result is one census outcome.
type Result struct {
	// Schema is SchemaVersion.
	Schema int `json:"schema"`
	// Name echoes the spec name.
	Name string `json:"name,omitempty"`
	// Cells is the total expanded grid size; UniqueCells counts distinct
	// parameter sets among them.
	Cells       int `json:"cells"`
	UniqueCells int `json:"unique_cells"`
	// Simulated and CacheHits partition Cells: every cell was either run
	// fresh or served from the content-addressed cache (including hits
	// left behind by earlier censuses on the same engine).
	Simulated int `json:"simulated"`
	CacheHits int `json:"cache_hits"`
	// Anomalies totals anomalous cells across every cohort.
	Anomalies int `json:"anomalies"`
	// Cohorts lists per-cohort aggregates in spec order.
	Cohorts []*CohortResult `json:"cohorts"`
}

// WriteJSON writes the census result as indented JSON with a trailing
// newline — byte-identical for identical specs at any -workers width.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// plan is one cell scheduled within a census: its config, cache digest,
// runner-shape key, and (after classification/simulation) its outcome.
type plan struct {
	cfg    sim.Config
	digest string
	shape  string
	out    *cellOutcome
}

// Census expands the spec, simulates every cell not already memoised,
// and aggregates per-cohort telemetry. When onCohort is non-nil it is
// invoked with each cohort's aggregate as soon as that cohort completes
// — the /fleet SSE stream taps it. The returned Result is complete and
// detached.
//
// Cohorts are sharded one at a time over par.MapLocal with a pooled
// Runner per worker; classification against the cache and the merge of
// shard results both run serially in cell-expansion order, which is what
// makes the output byte-identical at every -workers width and the hit
// counters exact.
func (e *Engine) Census(spec Spec, onCohort func(*CohortResult)) (*Result, error) {
	cohorts, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	res := &Result{Schema: SchemaVersion, Name: spec.Name}
	seen := map[string]bool{} // digests encountered in this census
	for _, rc := range cohorts {
		cr := e.censusCohort(rc, seen)
		res.Cohorts = append(res.Cohorts, cr)
		res.Cells += cr.Cells
		res.Simulated += cr.Simulated
		res.CacheHits += cr.CacheHits
		res.Anomalies += cr.Anomalies
		if onCohort != nil {
			onCohort(cr)
		}
	}
	res.UniqueCells = len(seen)
	return res, nil
}

// censusCohort runs one cohort batch: classify → shard → merge.
func (e *Engine) censusCohort(rc resolvedCohort, seen map[string]bool) *CohortResult {
	plans := make([]plan, len(rc.cells))
	var need []int              // plan indices to simulate, in expansion order
	pending := map[string]int{} // digest → index into need, for intra-batch duplicates
	hits := 0
	for i, c := range rc.cells {
		cfg := c.config()
		plans[i] = plan{cfg: cfg, digest: sim.ConfigDigest(cfg), shape: c.shape()}
		d := plans[i].digest
		seen[d] = true
		if out, ok := e.cache[d]; ok {
			plans[i].out = out
			hits++
			continue
		}
		if _, ok := pending[d]; ok {
			hits++
			continue
		}
		pending[d] = len(need)
		need = append(need, i)
	}

	// Shard the unique uncached cells. Each worker goroutine lazily pools
	// one Runner per graph shape and swaps traces through RunTrace, so
	// replica sweeps rebuild nothing (DESIGN.md §13).
	outs := par.MapLocal(len(need), newWorker, func(wk *worker, j int) *cellOutcome {
		return wk.run(plans[need[j]])
	})

	// Serial merge, back in expansion order: publish fresh outcomes to
	// the cache and resolve intra-batch duplicates.
	for j, i := range need {
		plans[i].out = outs[j]
		e.insert(plans[i].digest, outs[j])
	}
	for i := range plans {
		if plans[i].out == nil {
			plans[i].out = outs[pending[plans[i].digest]]
		}
		e.indexDumps(plans[i].out)
	}
	return aggregate(rc.name, plans, len(need), hits)
}

// insert publishes one outcome, evicting FIFO past the cache bound. The
// eviction compacts the order slice in place instead of re-slicing it
// forward, so the backing array stays bounded and evicted digests are
// actually released.
func (e *Engine) insert(digest string, out *cellOutcome) {
	if len(e.order) >= cacheCap {
		delete(e.cache, e.order[0])
		copy(e.order, e.order[1:])
		e.order = e.order[:len(e.order)-1]
	}
	e.cache[digest] = out
	e.order = append(e.order, digest)
}

// worker is one shard goroutine's private state.
type worker struct {
	runners map[string]*sim.Runner // graph shape → pooled Runner
}

func newWorker() *worker { return &worker{runners: map[string]*sim.Runner{}} }

// run simulates one cell on the worker's pooled Runner for its shape.
func (wk *worker) run(p plan) *cellOutcome {
	rn, ok := wk.runners[p.shape]
	if !ok {
		rn = sim.NewRunner(p.cfg)
		wk.runners[p.shape] = rn
	}
	res := rn.RunTrace(p.cfg.Trace)
	out := &cellOutcome{
		fdps:      res.FDPS(),
		janks:     len(res.Janks),
		presented: len(res.Presented),
		edges:     res.EdgesInWindow,
		skipped:   res.Skipped,
		stale:     res.StaleDropped,
		fallbacks: len(res.Fallbacks),
		completed: res.Completed,
		latency:   telemetry.NewHistogram(telemetry.LatencyBucketsMs),
	}
	for _, ms := range res.LatencyMs {
		out.latency.Observe(ms)
	}
	if !out.completed || out.fallbacks > 0 || out.janks >= AnomalyJankThreshold {
		out.anomalous = true
		flightRerun(p, out)
	}
	return out
}

// flightRerun replays one anomalous cell fresh with the flight recorder
// attached and seals whatever it triggered into envelope dumps keyed by
// the cell's plain config digest. The replay is a pure function of the
// cell config, so dumps are byte-identical no matter which worker (or
// which census) produced them.
func flightRerun(p plan, out *cellOutcome) {
	cfg := p.cfg
	ring := flight.New(flight.Config{})
	cfg.Recorder = ring
	sim.Run(cfg)
	for i, d := range ring.Dumps() {
		var buf bytes.Buffer
		if err := flight.EncodeDump(&buf, p.digest, &d); err != nil {
			continue
		}
		out.dumpIDs = append(out.dumpIDs, flight.DumpID(p.digest, i, d.Trigger.Kind))
		out.dumps = append(out.dumps, buf.Bytes())
	}
}

// aggregate folds the cohort's outcomes — in expansion order, so float
// accumulation is deterministic — into a fresh telemetry registry.
func aggregate(name string, plans []plan, simulated, hits int) *CohortResult {
	reg := telemetry.NewRegistry()
	cells := reg.Counter("fleet_cells_total", "census cells aggregated into this cohort")
	simc := reg.Counter("fleet_cells_simulated_total", "cells simulated fresh (first occurrence fleet-wide)")
	hitc := reg.Counter("fleet_cache_hits_total", "cells served from the content-addressed result cache")
	frames := reg.Counter("fleet_frames_presented_total", "frames latched across the cohort")
	janks := reg.Counter("fleet_janks_total", "repeated-frame edges across the cohort")
	edges := reg.Counter("fleet_edges_total", "hardware refresh edges across the cohort")
	incomplete := reg.Counter("fleet_cells_incomplete_total", "cells whose run hit the watchdog")
	anom := reg.Counter("fleet_cells_anomalous_total", "cells re-run under the flight recorder")
	anomDumps := reg.Counter("fleet_anomaly_dumps_total", "anomaly dumps captured across the cohort")
	meanFDPS := reg.Gauge("fleet_fdps_mean", "mean per-cell FDPS of the cohort")
	meanLat := reg.Gauge("fleet_latency_mean_ms", "mean per-frame rendering latency of the cohort")
	hFDPS := reg.Histogram("fleet_cell_fdps", "per-cell FDPS distribution", CellFDPSBuckets)
	hJank := reg.Histogram("fleet_cell_janks", "per-cell jank-count distribution", CellJankBuckets)
	hLat := reg.Histogram("fleet_frame_latency_ms", "per-frame rendering latency distribution", telemetry.LatencyBucketsMs)

	simc.Add(float64(simulated))
	hitc.Add(float64(hits))
	var fdpsSum float64
	jankTotal := 0
	anomalies := 0
	var dumpIDs []string
	for i := range plans {
		out := plans[i].out
		cells.Inc()
		if out.anomalous {
			anomalies++
			anom.Inc()
			anomDumps.Add(float64(len(out.dumpIDs)))
			dumpIDs = append(dumpIDs, out.dumpIDs...)
		}
		frames.Add(float64(out.presented))
		janks.Add(float64(out.janks))
		edges.Add(float64(out.edges))
		if !out.completed {
			incomplete.Inc()
		}
		hFDPS.Observe(out.fdps)
		hJank.Observe(float64(out.janks))
		hLat.Merge(out.latency)
		fdpsSum += out.fdps
		jankTotal += out.janks
	}
	cr := &CohortResult{Name: name, Cells: len(plans), Simulated: simulated,
		CacheHits: hits, Janks: jankTotal, Anomalies: anomalies, AnomalyDumps: dumpIDs}
	if len(plans) > 0 {
		cr.MeanFDPS = fdpsSum / float64(len(plans))
	}
	if hLat.Count() > 0 {
		cr.MeanLatencyMs = hLat.Sum() / float64(hLat.Count())
	}
	meanFDPS.Set(cr.MeanFDPS)
	meanLat.Set(cr.MeanLatencyMs)
	cr.Metrics = reg.Snapshot()
	cr.Registry = reg
	return cr
}
