package fleet

// DemoSpec is the canonical census dvbench's fleet experiment and the CI
// smoke run: every Table 1 device, an LTPO refresh sweep, clean and
// faulted cohorts, and a deliberately duplicated cohort that exercises
// the result cache. The quick variant shrinks frames and replicas for CI.
//
// The pixel5-rerun cohort repeats pixel5-moderate parameter-for-parameter
// — its cells are all cache hits, which the determinism tests assert
// exactly.
func DemoSpec(quick bool) Spec {
	frames, replicas := 600, 5
	if quick {
		frames, replicas = 120, 2
	}
	sev := func(v float64) *float64 { return &v }
	return Spec{
		Name:     "device-census",
		Seed:     7,
		Frames:   frames,
		Replicas: replicas,
		Cohorts: []Cohort{
			{Name: "pixel5-moderate", Device: "pixel5", Hz: []int{60},
				Workload: "moderate"},
			{Name: "mate40-ltpo", Device: "mate40", Hz: []int{60, 90},
				Modes: []string{"dvsync"}, Workload: "scattered"},
			{Name: "mate60-ltpo", Device: "mate60", Hz: []int{60, 90, 120},
				Modes: []string{"dvsync"}, Workload: "scattered"},
			{Name: "mate40-stall", Device: "mate40", Hz: []int{90},
				Modes: []string{"dvsync"}, Workload: "heavy-tail",
				Fault: "stall", Severity: sev(0.6)},
			{Name: "pixel5-rerun", Device: "pixel5", Hz: []int{60},
				Workload: "moderate"},
		},
	}
}
