package fleet

import (
	"bytes"
	"testing"

	"dvsync/internal/flight"
	"dvsync/internal/par"
)

// anomalySpec is a census guaranteed to contain anomalous cells: a
// stall-faulted cohort plus a clean low-rate cohort, with the faulted
// cohort duplicated so cache hits must reuse cached dumps.
func anomalySpec() Spec {
	sev := 0.8
	return Spec{
		Name: "anomaly-test", Frames: 400,
		Cohorts: []Cohort{
			{Name: "stalled", Device: "pixel5", Hz: []int{60},
				Modes: []string{"dvsync"}, Fault: "stall", Severity: &sev},
			{Name: "clean", Device: "pixel5", Hz: []int{60},
				Modes: []string{"dvsync"}},
			{Name: "stalled-again", Device: "pixel5", Hz: []int{60},
				Modes: []string{"dvsync"}, Fault: "stall", Severity: &sev},
		},
	}
}

// TestCensusAnomalyAccounting: anomalous cells are re-run with the flight
// recorder and their dumps indexed; cohort anomaly counts and dump ids
// are deterministic across worker widths; cache-hit cells reuse the
// cached dumps (a warm census re-reports identical anomalies without
// re-simulating); and every announced id resolves to decodable bytes.
func TestCensusAnomalyAccounting(t *testing.T) {
	t.Cleanup(func() { par.SetWorkers(0) })
	spec := anomalySpec()
	type snap struct {
		anomalies int
		dumpIDs   []string
		dumps     map[string][]byte
	}
	var want *snap
	for _, w := range []int{1, 4, 8} {
		par.SetWorkers(w)
		eng := NewEngine()
		res, err := eng.Census(spec, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.Simulated+res.CacheHits != res.Cells {
			t.Fatalf("workers=%d: simulated %d + hits %d != cells %d",
				w, res.Simulated, res.CacheHits, res.Cells)
		}
		if res.Anomalies == 0 {
			t.Fatalf("workers=%d: stall census found no anomalies (spec too tame)", w)
		}
		got := snap{anomalies: res.Anomalies, dumpIDs: eng.AnomalyIDs(),
			dumps: map[string][]byte{}}
		for _, id := range got.dumpIDs {
			data, ok := eng.AnomalyDump(id)
			if !ok {
				t.Fatalf("workers=%d: announced dump %q is not retrievable", w, id)
			}
			d, _, err := flight.DecodeDump(bytes.NewReader(data), "")
			if err != nil {
				t.Fatalf("workers=%d: dump %q does not decode: %v", w, id, err)
			}
			if len(d.Events) == 0 {
				t.Errorf("workers=%d: dump %q carries no events", w, id)
			}
			got.dumps[id] = data
		}

		// The duplicated cohort must report the same anomalies as the
		// original without contributing new dump ids.
		byName := map[string]*CohortResult{}
		for _, c := range res.Cohorts {
			byName[c.Name] = c
		}
		orig, again := byName["stalled"], byName["stalled-again"]
		if orig == nil || again == nil {
			t.Fatal("census lost a cohort")
		}
		if orig.Anomalies == 0 {
			t.Fatalf("workers=%d: stalled cohort has no anomalies", w)
		}
		if again.Anomalies != orig.Anomalies {
			t.Errorf("workers=%d: duplicated cohort reports %d anomalies, original %d",
				w, again.Anomalies, orig.Anomalies)
		}
		if again.Simulated != 0 {
			t.Errorf("workers=%d: duplicated cohort simulated %d cells", w, again.Simulated)
		}
		if !equalStrings(again.AnomalyDumps, orig.AnomalyDumps) {
			t.Errorf("workers=%d: duplicated cohort dump ids %v != original %v",
				w, again.AnomalyDumps, orig.AnomalyDumps)
		}

		// A warm repeat simulates nothing and reproduces the anomaly
		// accounting and dump bytes exactly.
		warm, err := eng.Census(spec, nil)
		if err != nil {
			t.Fatalf("workers=%d warm: %v", w, err)
		}
		if warm.Simulated != 0 || warm.Anomalies != res.Anomalies {
			t.Errorf("workers=%d warm: simulated=%d anomalies=%d, want 0/%d",
				w, warm.Simulated, warm.Anomalies, res.Anomalies)
		}
		for _, id := range got.dumpIDs {
			data, ok := eng.AnomalyDump(id)
			if !ok || !bytes.Equal(data, got.dumps[id]) {
				t.Errorf("workers=%d warm: dump %q changed or vanished", w, id)
			}
		}

		if want == nil {
			w1 := got
			want = &w1
			continue
		}
		if got.anomalies != want.anomalies || !equalStrings(got.dumpIDs, want.dumpIDs) {
			t.Errorf("workers=%d: anomalies=%d ids=%v differ from workers=1 (%d, %v)",
				w, got.anomalies, got.dumpIDs, want.anomalies, want.dumpIDs)
		}
		for id, data := range want.dumps {
			if !bytes.Equal(got.dumps[id], data) {
				t.Errorf("workers=%d: dump %q bytes differ from workers=1", w, id)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
