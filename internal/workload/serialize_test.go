package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	p := testProfile()
	orig := p.Generate(200, 7)
	orig.Costs[3].Class = Interactive
	orig.Costs[4].Class = Realtime

	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Len() != orig.Len() {
		t.Fatalf("identity lost: %q/%d vs %q/%d", back.Name, back.Len(), orig.Name, orig.Len())
	}
	for i := range orig.Costs {
		if back.Costs[i].Class != orig.Costs[i].Class {
			t.Fatalf("frame %d class changed", i)
		}
		// Costs are stored at µs precision.
		if d := back.Costs[i].UI - orig.Costs[i].UI; d < -1000 || d > 0 {
			t.Fatalf("frame %d UI cost drifted by %d", i, d)
		}
		if d := back.Costs[i].RS - orig.Costs[i].RS; d < -1000 || d > 0 {
			t.Fatalf("frame %d RS cost drifted by %d", i, d)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"negative cost": `{"name":"x","frames":[{"ui_us":-1,"rs_us":5}]}`,
		"unknown class": `{"name":"x","frames":[{"ui_us":1,"rs_us":5,"class":"psychic"}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadJSONDefaultsClass(t *testing.T) {
	tr, err := ReadJSON(strings.NewReader(`{"name":"x","frames":[{"ui_us":100,"rs_us":200}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Costs[0].Class != Deterministic {
		t.Error("missing class should default to deterministic")
	}
}
