package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dvsync/internal/simtime"
)

// traceJSON is the on-disk form of a Trace: stage costs in microseconds to
// keep files compact and diffable (the paper's game traces record CPU/GPU
// time per frame at comparable precision, §6.1).
type traceJSON struct {
	Name   string      `json:"name"`
	Frames []frameJSON `json:"frames"`
}

type frameJSON struct {
	UIUs  int64  `json:"ui_us"`
	RSUs  int64  `json:"rs_us"`
	Class string `json:"class,omitempty"`
}

// WriteJSON encodes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := traceJSON{Name: t.Name, Frames: make([]frameJSON, len(t.Costs))}
	for i, c := range t.Costs {
		fj := frameJSON{
			UIUs: int64(c.UI) / int64(simtime.Microsecond),
			RSUs: int64(c.RS) / int64(simtime.Microsecond),
		}
		if c.Class != Deterministic {
			fj.Class = c.Class.String()
		}
		out.Frames[i] = fj
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("workload: encode trace %q: %w", t.Name, err)
	}
	return bw.Flush()
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	t := &Trace{Name: in.Name, Costs: make([]Cost, len(in.Frames))}
	for i, fj := range in.Frames {
		if fj.UIUs < 0 || fj.RSUs < 0 {
			return nil, fmt.Errorf("workload: frame %d has negative cost", i)
		}
		c := Cost{
			UI: simtime.Duration(fj.UIUs) * simtime.Microsecond,
			RS: simtime.Duration(fj.RSUs) * simtime.Microsecond,
		}
		switch fj.Class {
		case "", "deterministic":
			c.Class = Deterministic
		case "interactive":
			c.Class = Interactive
		case "realtime":
			c.Class = Realtime
		default:
			return nil, fmt.Errorf("workload: frame %d has unknown class %q", i, fj.Class)
		}
		t.Costs[i] = c
	}
	return t, nil
}
