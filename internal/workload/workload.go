// Package workload models frame rendering costs.
//
// The paper's characterisation study (§3) found that frame rendering time
// follows a power-law-like distribution: ≥95 % of frames are short while
// ≤5 % of key frames are heavily loaded, and it is these bursty long frames
// that cause janks. This package generates per-frame (UI cost, render cost)
// pairs from parameterised profiles that reproduce that shape, with a Markov
// burst model so long frames can cluster (the QQMusic-style skew of §6.1) or
// scatter (the Walmart-style pattern that D-VSync absorbs completely).
package workload

import (
	"fmt"
	"math"
	"sort"

	"dvsync/internal/dist"
	"dvsync/internal/simtime"
)

// Class tags a frame with the D-VSync applicability categories of §4.2.
type Class int

// Frame classes (Figure 9).
const (
	// Deterministic frames belong to animations (app opening, page
	// transitions, notification clearing, …) — pre-renderable by default.
	Deterministic Class = iota
	// Interactive frames follow a fingertip on the screen — pre-renderable
	// with IPL curve fitting.
	Interactive
	// Realtime frames depend on sensors or online data — D-VSync stays off.
	Realtime
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Deterministic:
		return "deterministic"
	case Interactive:
		return "interactive"
	case Realtime:
		return "realtime"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Cost is the execution demand of one frame.
type Cost struct {
	// UI is the app UI-thread stage duration.
	UI simtime.Duration
	// RS is the render-service/render-thread stage duration.
	RS simtime.Duration
	// Class is the frame's D-VSync applicability.
	Class Class
}

// Total returns UI + RS.
func (c Cost) Total() simtime.Duration { return c.UI + c.RS }

// Trace is a fixed sequence of frame costs — either synthesised from a
// Profile or recorded (the paper's game traces record per-frame CPU and GPU
// time, §6.1).
type Trace struct {
	// Name labels the trace.
	Name string
	// Costs holds one entry per frame.
	Costs []Cost
}

// Len returns the number of frames.
func (t *Trace) Len() int { return len(t.Costs) }

// Scale returns a copy with every stage cost multiplied by f. Calibration
// uses this to match a measured baseline FDPS.
func (t *Trace) Scale(f float64) *Trace {
	out := &Trace{Name: t.Name, Costs: make([]Cost, len(t.Costs))}
	for i, c := range t.Costs {
		out.Costs[i] = Cost{
			UI:    simtime.Duration(float64(c.UI) * f),
			RS:    simtime.Duration(float64(c.RS) * f),
			Class: c.Class,
		}
	}
	return out
}

// TotalCost sums all stage costs.
func (t *Trace) TotalCost() simtime.Duration {
	var sum simtime.Duration
	for _, c := range t.Costs {
		sum += c.Total()
	}
	return sum
}

// CDF returns the empirical CDF of total frame cost evaluated at the given
// thresholds (used to regenerate Figure 1).
func (t *Trace) CDF(thresholds []simtime.Duration) []float64 {
	totals := make([]simtime.Duration, len(t.Costs))
	for i, c := range t.Costs {
		totals[i] = c.Total()
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	out := make([]float64, len(thresholds))
	for i, th := range thresholds {
		idx := sort.Search(len(totals), func(j int) bool { return totals[j] > th })
		out[i] = float64(idx) / float64(len(totals))
	}
	return out
}

// FractionOver returns the share of frames whose total cost exceeds d.
func (t *Trace) FractionOver(d simtime.Duration) float64 {
	n := 0
	for _, c := range t.Costs {
		if c.Total() > d {
			n++
		}
	}
	return float64(n) / float64(len(t.Costs))
}

// Profile parameterises a synthetic workload. All durations are in
// milliseconds to keep scenario tables readable.
type Profile struct {
	// Name labels the profile.
	Name string
	// ShortMeanMs / ShortSigmaMs shape the lognormal body of short frames.
	ShortMeanMs, ShortSigmaMs float64
	// LongRatio is the stationary probability of a frame being a key
	// (long) frame. The paper pins this at ≤5 % (Figure 1).
	LongRatio float64
	// LongScaleMs is the Pareto scale (minimum long-frame cost).
	LongScaleMs float64
	// LongAlpha is the Pareto shape; smaller is heavier-tailed. Apps that
	// resist even 7 buffers (QQMusic) have alpha near 1.2; scattered
	// profiles (Walmart) sit near 3.
	LongAlpha float64
	// Burstiness is P(long | previous long) − the clustering of key
	// frames. 0 ⇒ independent; values near 1 produce runs of long frames.
	Burstiness float64
	// UIShare is the fraction of a frame's cost spent on the UI thread;
	// the remainder is render-service time. Typical UI-heavy apps ≈ 0.4.
	UIShare float64
	// Class is the frame class emitted for every frame.
	Class Class
	// MaxFrameMs caps pathological samples (0 = 10× the Pareto scale · 8).
	MaxFrameMs float64
}

// DefaultProfile is the canonical period-relative workload the CLIs (and
// the observability goldens) share: a lognormal short-frame body at 40 %
// of the refresh period with the paper's ≤5 % key-frame rate. Keeping it
// in one place means `dvtrace -record`, `dvbench -trace-dir` and the
// golden Perfetto fixtures all describe the same workload byte for byte.
func DefaultProfile(name string, periodMs float64) Profile {
	return Profile{
		Name:         name,
		ShortMeanMs:  0.4 * periodMs,
		ShortSigmaMs: 0.13 * periodMs,
		LongRatio:    0.05,
		LongScaleMs:  1.5 * periodMs,
		LongAlpha:    2.3,
		Burstiness:   0.2,
		UIShare:      0.35,
	}
}

// Validate reports configuration errors.
func (p *Profile) Validate() error {
	switch {
	case p.ShortMeanMs <= 0:
		return fmt.Errorf("workload %q: non-positive short mean", p.Name)
	case p.ShortSigmaMs < 0:
		return fmt.Errorf("workload %q: negative short sigma", p.Name)
	case p.LongRatio < 0 || p.LongRatio > 0.5:
		return fmt.Errorf("workload %q: long ratio %v outside [0, 0.5]", p.Name, p.LongRatio)
	case p.LongRatio > 0 && p.LongScaleMs <= 0:
		return fmt.Errorf("workload %q: non-positive long scale", p.Name)
	case p.LongRatio > 0 && p.LongAlpha <= 1:
		return fmt.Errorf("workload %q: pareto alpha %v must exceed 1", p.Name, p.LongAlpha)
	case p.Burstiness < 0 || p.Burstiness >= 1:
		return fmt.Errorf("workload %q: burstiness %v outside [0, 1)", p.Name, p.Burstiness)
	case p.UIShare <= 0 || p.UIShare >= 1:
		return fmt.Errorf("workload %q: UI share %v outside (0, 1)", p.Name, p.UIShare)
	}
	return nil
}

// TryGenerate synthesises an n-frame trace, reporting profile errors as
// values instead of panicking — the entry point for callers building
// profiles from external input.
func (p *Profile) TryGenerate(n int, seed int64) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.Generate(n, seed), nil
}

// Generate synthesises an n-frame trace. Generation is deterministic in
// (profile, n, seed). Invalid profiles panic; use TryGenerate to get an
// error value instead.
func (p *Profile) Generate(n int, seed int64) *Trace {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := dist.New(seed).Split(p.Name)
	short := dist.LognormalFromMoments(p.ShortMeanMs, math.Max(p.ShortSigmaMs, 1e-6))
	long := dist.Pareto{Xm: p.LongScaleMs, Alpha: p.LongAlpha}
	maxMs := p.MaxFrameMs
	if maxMs <= 0 {
		maxMs = p.LongScaleMs * 8
		if maxMs < p.ShortMeanMs*8 {
			maxMs = p.ShortMeanMs * 8
		}
	}

	// Two-state Markov chain with stationary long probability LongRatio
	// and P(long|long) = Burstiness. Solving π_long = LongRatio gives
	// P(long|short) = LongRatio·(1−Burstiness) / (1−LongRatio).
	pLongAfterShort := 0.0
	if p.LongRatio > 0 && p.LongRatio < 1 {
		pLongAfterShort = p.LongRatio * (1 - p.Burstiness) / (1 - p.LongRatio)
		if pLongAfterShort > 1 {
			pLongAfterShort = 1
		}
	}

	t := &Trace{Name: p.Name, Costs: make([]Cost, n)}
	inLong := g.Float64() < p.LongRatio
	for i := 0; i < n; i++ {
		var ms float64
		if inLong {
			ms = long.Sample(g)
		} else {
			ms = short.Sample(g)
		}
		if ms > maxMs {
			ms = maxMs
		}
		if ms < 0.05 {
			ms = 0.05
		}
		total := simtime.FromMillis(ms)
		ui := simtime.Duration(float64(total) * p.UIShare)
		t.Costs[i] = Cost{UI: ui, RS: total - ui, Class: p.Class}
		if inLong {
			inLong = g.Float64() < p.Burstiness
		} else {
			inLong = g.Float64() < pLongAfterShort
		}
	}
	return t
}

// Concat joins traces into one (used to build composite UX tasks).
func Concat(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	for _, t := range traces {
		out.Costs = append(out.Costs, t.Costs...)
	}
	return out
}

// WithClass returns a copy of the trace with every frame re-tagged.
func (t *Trace) WithClass(c Class) *Trace {
	out := &Trace{Name: t.Name, Costs: make([]Cost, len(t.Costs))}
	for i, fc := range t.Costs {
		fc.Class = c
		out.Costs[i] = fc
	}
	return out
}

// Slice returns the sub-trace [from, to).
func (t *Trace) Slice(from, to int) *Trace {
	return &Trace{Name: t.Name, Costs: t.Costs[from:to]}
}
