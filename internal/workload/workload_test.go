package workload

import (
	"testing"
	"testing/quick"

	"dvsync/internal/simtime"
)

func testProfile() Profile {
	return Profile{
		Name:         "test",
		ShortMeanMs:  5,
		ShortSigmaMs: 1.5,
		LongRatio:    0.05,
		LongScaleMs:  18,
		LongAlpha:    2.2,
		Burstiness:   0.3,
		UIShare:      0.35,
		Class:        Deterministic,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := testProfile()
	a := p.Generate(500, 42)
	b := p.Generate(500, 42)
	for i := range a.Costs {
		if a.Costs[i] != b.Costs[i] {
			t.Fatalf("frame %d differs across identical generations", i)
		}
	}
	c := p.Generate(500, 43)
	same := 0
	for i := range a.Costs {
		if a.Costs[i] == c.Costs[i] {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d identical frames", same)
	}
}

func TestGeneratePowerLawShape(t *testing.T) {
	p := testProfile()
	tr := p.Generate(20000, 1)
	period := simtime.PeriodForHz(60)
	// The Figure 1 shape: most frames fast, a small heavy tail.
	overOne := tr.FractionOver(period)
	if overOne < 0.02 || overOne > 0.12 {
		t.Errorf("fraction over one 60Hz period = %v, want a small tail", overOne)
	}
	under := tr.FractionOver(simtime.FromMillis(3))
	if under < 0.5 {
		t.Errorf("fraction over 3ms = %v; body should sit near 5ms", under)
	}
}

func TestGenerateBurstiness(t *testing.T) {
	base := testProfile()
	base.LongRatio = 0.10

	runs := func(burst float64) int {
		p := base
		p.Burstiness = burst
		tr := p.Generate(20000, 9)
		period := simtime.FromMillis(15)
		longRuns := 0
		prevLong := false
		for _, c := range tr.Costs {
			long := c.Total() > period
			if long && prevLong {
				longRuns++
			}
			prevLong = long
		}
		return longRuns
	}
	if runs(0.8) <= runs(0.0)*2 {
		t.Errorf("bursty profile should cluster long frames: %d vs %d", runs(0.8), runs(0.0))
	}
}

func TestStationaryLongRatio(t *testing.T) {
	p := testProfile()
	p.LongRatio = 0.08
	p.Burstiness = 0.6
	tr := p.Generate(50000, 5)
	// Long frames sample from the Pareto at ≥ LongScaleMs; the body stays
	// well below it, so the threshold splits them.
	th := simtime.FromMillis(p.LongScaleMs * 0.9)
	frac := tr.FractionOver(th)
	if frac < 0.05 || frac > 0.11 {
		t.Errorf("long fraction %v, want ≈0.08", frac)
	}
}

func TestUIShareSplit(t *testing.T) {
	p := testProfile()
	p.UIShare = 0.4
	tr := p.Generate(1000, 2)
	for i, c := range tr.Costs {
		total := float64(c.Total())
		got := float64(c.UI) / total
		if got < 0.39 || got > 0.41 {
			t.Fatalf("frame %d UI share %v", i, got)
		}
	}
}

func TestScale(t *testing.T) {
	p := testProfile()
	tr := p.Generate(100, 3)
	scaled := tr.Scale(2)
	for i := range tr.Costs {
		if scaled.Costs[i].UI != 2*tr.Costs[i].UI || scaled.Costs[i].RS != 2*tr.Costs[i].RS {
			t.Fatalf("frame %d not scaled", i)
		}
		if scaled.Costs[i].Class != tr.Costs[i].Class {
			t.Fatalf("frame %d class changed", i)
		}
	}
	if scaled.TotalCost() != 2*tr.TotalCost() {
		t.Error("total cost not doubled")
	}
}

func TestCDFMonotone(t *testing.T) {
	p := testProfile()
	tr := p.Generate(5000, 4)
	ths := []simtime.Duration{
		simtime.FromMillis(1), simtime.FromMillis(5), simtime.FromMillis(10),
		simtime.FromMillis(20), simtime.FromMillis(50),
	}
	cdf := tr.CDF(ths)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone: %v", cdf)
		}
	}
	if cdf[len(cdf)-1] < 0.95 {
		t.Errorf("CDF(50ms) = %v, want ≈1", cdf[len(cdf)-1])
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.ShortMeanMs = 0 },
		func(p *Profile) { p.ShortSigmaMs = -1 },
		func(p *Profile) { p.LongRatio = 0.9 },
		func(p *Profile) { p.LongAlpha = 0.9 },
		func(p *Profile) { p.LongScaleMs = 0 },
		func(p *Profile) { p.Burstiness = 1 },
		func(p *Profile) { p.UIShare = 0 },
		func(p *Profile) { p.UIShare = 1 },
	}
	for i, mutate := range bad {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	p := testProfile()
	if err := p.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestConcatAndSlice(t *testing.T) {
	p := testProfile()
	a := p.Generate(10, 1)
	b := p.Generate(20, 2)
	c := Concat("joined", a, b)
	if c.Len() != 30 {
		t.Fatalf("concat len %d", c.Len())
	}
	s := c.Slice(10, 30)
	if s.Len() != 20 || s.Costs[0] != b.Costs[0] {
		t.Error("slice wrong")
	}
}

func TestWithClass(t *testing.T) {
	p := testProfile()
	tr := p.Generate(50, 1).WithClass(Interactive)
	for _, c := range tr.Costs {
		if c.Class != Interactive {
			t.Fatal("class not applied")
		}
	}
}

func TestClassString(t *testing.T) {
	if Deterministic.String() != "deterministic" || Interactive.String() != "interactive" || Realtime.String() != "realtime" {
		t.Error("class strings wrong")
	}
}

// Property: generated costs are always positive and capped.
func TestGeneratedCostsBounded(t *testing.T) {
	f := func(seed int64) bool {
		p := testProfile()
		tr := p.Generate(200, seed)
		cap := simtime.FromMillis(p.LongScaleMs * 8)
		for _, c := range tr.Costs {
			if c.UI < 0 || c.RS < 0 || c.Total() <= 0 || c.Total() > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
