// Fixture for the hotalloc analyzer: function-scoped hot paths.
package fixture

import "fmt"

type sink struct {
	fn  func(int)
	buf []byte
}

func take(v any) {}

// hot is held to the zero-allocation discipline by its directive.
//
//dvlint:hotpath fixture: per-frame handler
func hot(s *sink, xs []int, name string) string {
	s.fn = func(x int) { _ = x } // want hotalloc
	p := &sink{}                 // want hotalloc
	_ = p
	lit := []int{1, 2, 3} // want hotalloc
	_ = lit
	m := map[string]int{} // want hotalloc
	_ = m
	b := make([]byte, 16) // want hotalloc
	_ = b
	msg := fmt.Sprintf("x=%d", len(xs)) // want hotalloc
	msg += name                         // want hotalloc
	out := name + msg                   // want hotalloc
	v := sink{}                         // ok: by-value struct literal stays on the stack
	_ = v
	return out
}

// hotAppend grows an unpreallocated slice inside a loop.
//
//dvlint:hotpath fixture: per-iteration growth
func hotAppend(n int, presized []int) []int {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i)           // want hotalloc
		presized = append(presized, i) // ok: the caller owns (and presizes) the backing array
	}
	acc = append(acc, n) // ok: growth outside the loop is one-shot, not per-iteration
	return acc
}

// hotBox boxes a concrete value into an interface parameter.
//
//dvlint:hotpath fixture: boxing call site
func hotBox(n int, s *sink) {
	take(n) // want hotalloc
	take(s) // ok: pointers carry no new heap object
	take(nil)
	take(3) // ok: constants are boxed without a per-call allocation
}

// hotPanic allocates only on the panicking path, which is already dead.
//
//dvlint:hotpath fixture: panic arguments are exempt
func hotPanic(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n=%d", n)) // ok: panic path
	}
}

// hotIIFE invokes its literal immediately; the compiler inlines it.
//
//dvlint:hotpath fixture: immediate invocation
func hotIIFE() int {
	return func() int { return 1 }() // ok: no closure object escapes
}

// hotIgnored documents a sanctioned exception in place.
//
//dvlint:hotpath fixture: sanctioned exception
func hotIgnored() *sink {
	//dvlint:ignore hotalloc fixture: one-time setup allocation
	return &sink{}
}

// coldAllocs is not marked hot: the same constructs are fine here.
func coldAllocs() *sink {
	s := &sink{buf: make([]byte, 4)}
	s.fn = func(int) {}
	return s
}

// misplacedHolder hosts a directive that claims no scope.
func misplacedHolder() {
	//dvlint:hotpath this placement claims nothing // want hotalloc
	_ = 0
}
