// Fixture for the nowallclock analyzer.
package fixture

import "time"

// elapsed exercises the banned wall-clock reads.
func elapsed() time.Duration {
	t0 := time.Now()              // want nowallclock
	time.Sleep(time.Millisecond)  // want nowallclock
	ch := time.After(time.Second) // want nowallclock
	_ = ch
	return time.Since(t0) // want nowallclock
}

// smuggled shows that references (not just calls) are caught.
var smuggled = time.Now // want nowallclock

// justified is allowed through a justified suppression directive.
var justified = time.Now //dvlint:ignore nowallclock fixture: host profiling helper

// durations shows plain time.Duration values are fine: only clock reads and
// waits are banned.
func durations() time.Duration {
	d := 3 * time.Second
	return d.Round(time.Millisecond)
}
