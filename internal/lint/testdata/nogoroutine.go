// Fixture for the nogoroutine analyzer; checked as if it were part of the
// simulation core (dvsync/internal/sim).
package fixture

// pump exercises every banned concurrency construct.
func pump(done chan struct{}) { // want nogoroutine
	ch := make(chan int, 1) // want nogoroutine
	go func() {             // want nogoroutine
		ch <- 1 // want nogoroutine
	}()
	<-ch     // want nogoroutine
	select { // want nogoroutine
	default:
	}
	for range ch { // want nogoroutine
	}
	close(done)
}

// serial shows ordinary single-threaded code is untouched.
func serial(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
