// Fixture for the errflow analyzer.
package fixture

import (
	"io"

	"dvsync/internal/fault"
	"dvsync/internal/sim"
	"dvsync/internal/trace"
)

// discarded drops a control-path error on the floor.
func discarded(r *trace.Recorder, w io.Writer) {
	r.WriteJSONL(w) // want errflow
}

// deferredDiscard hides the drop behind defer.
func deferredDiscard(r *trace.Recorder, w io.Writer) {
	defer r.WriteJSONL(w) // want errflow
}

// blankAssign routes the error position of a multi-result call into the
// blank identifier.
func blankAssign(cfg sim.Config) *sim.Result {
	res, _ := sim.TryRun(cfg) // want errflow
	return res
}

// handled propagates the error.
func handled(r *trace.Recorder, w io.Writer) error {
	return r.WriteJSONL(w)
}

// checked consumes the error locally.
func checked(c *fault.Config) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
}

// nonControlPath drops an error from a package outside the control path;
// that contract belongs to the caller, not dvlint.
func nonControlPath(w io.Writer) {
	io.WriteString(w, "x")
}

// explicitBlank is an acknowledged single-value discard, visible in review.
func explicitBlank(c *fault.Config) {
	_ = c.Validate()
}

// ignoredDiscard carries a justification.
func ignoredDiscard(r *trace.Recorder, w io.Writer) {
	//dvlint:ignore errflow fixture: best-effort trace dump on shutdown
	r.WriteJSONL(w)
}
