// Fixture for the maporder analyzer.
package fixture

import (
	"fmt"
	"sort"
)

// emitter stands in for a scheduler, trace recorder, or event sink.
type emitter struct{ log []string }

// Emit records one entry.
func (e *emitter) Emit(s string) { e.log = append(e.log, s) }

// unsortedAppend leaks iteration order into a slice.
func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder
	}
	return keys
}

// printed leaks iteration order into program output.
func printed(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want maporder
	}
}

// emitted leaks iteration order into an outer sink.
func emitted(m map[string]int, e *emitter) {
	for k := range m {
		e.Emit(k) // want maporder
	}
}

// sortedCollect is the sanctioned idiom: collect, sort, then iterate.
func sortedCollect(m map[string]int, e *emitter) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Emit(k)
	}
}

// commutative accumulation and map-to-map writes are order-insensitive.
func commutative(m map[string]int) (int, map[string]bool) {
	total := 0
	seen := map[string]bool{}
	for k, v := range m {
		total += v
		seen[k] = true
	}
	return total, seen
}

// loopLocal appends to a slice scoped inside the iteration, which cannot
// observe cross-key ordering.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}
