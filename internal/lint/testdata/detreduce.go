// Fixture for the detreduce analyzer.
package fixture

import "sort"

type stats struct{ total float64 }

// mapSum accumulates floats in random iteration order.
func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want detreduce
	}
	return sum
}

// spelledOut writes the same reduction longhand.
func spelledOut(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want detreduce
	}
	return sum
}

// reversed self-references from the other operand.
func reversed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = v + sum // want detreduce
	}
	return sum
}

// product is order-sensitive the same way addition is.
func product(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want detreduce
	}
	return p
}

// fieldSum accumulates into outer struct state through a selector.
func fieldSum(m map[string]float64, s *stats) {
	for _, v := range m {
		s.total += v // want detreduce
	}
}

// intSum is exact: integer addition is associative, any order agrees.
func intSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// sliceSum reduces in index order; nothing is left to the map iterator.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// loopLocal accumulates only into per-iteration temporaries, which cannot
// carry order across iterations.
func loopLocal(m map[string]float64) float64 {
	var maxv float64
	for _, v := range m {
		scaled := v
		scaled *= 2
		if scaled > maxv {
			maxv = scaled
		}
	}
	return maxv
}

// rebind assigns a fresh value each iteration instead of accumulating.
func rebind(m map[string]float64, base float64) float64 {
	var last float64
	for _, v := range m {
		last = base + v
	}
	return last
}

// sortedReduce is the sanctioned idiom: collect, sort, reduce in slice
// order.
func sortedReduce(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// ignoredSum documents an accepted tolerance.
func ignoredSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//dvlint:ignore detreduce fixture: tolerance documented in DESIGN.md
		sum += v
	}
	return sum
}
