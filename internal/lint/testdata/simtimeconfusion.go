// Fixture for the simtimeconfusion analyzer.
package fixture

import (
	"time"

	"dvsync/internal/simtime"
)

// crossings exercises both illegal conversion directions.
func crossings(sd simtime.Duration, wd time.Duration, st simtime.Time) {
	_ = time.Duration(sd)    // want simtimeconfusion
	_ = simtime.Duration(wd) // want simtimeconfusion
	_ = time.Duration(st)    // want simtimeconfusion
}

// sameFamily conversions and untyped constants are fine.
func sameFamily(ns int64) (simtime.Duration, time.Duration) {
	sd := simtime.Duration(ns)
	wd := time.Duration(42)
	_ = simtime.Time(ns)
	return sd, wd
}
