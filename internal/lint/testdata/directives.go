// Fixture for the //dvlint:ignore suppression machinery.
package fixture

import "time"

// A justified trailing directive suppresses the finding on its line.
var trailing = time.Now //dvlint:ignore nowallclock fixture: justified trailing directive

//dvlint:ignore nowallclock fixture: justified own-line directive
var ownLine = time.Now

// A directive without a justification is itself a violation and suppresses
// nothing.
// want dvlint nowallclock
var unjustified = time.Now //dvlint:ignore nowallclock

// A directive naming an unknown rule is itself a violation and suppresses
// nothing.
// want dvlint nowallclock
var unknownRule = time.Now //dvlint:ignore bogusrule because reasons

// A justified directive for the wrong rule does not suppress.
// want nowallclock
var wrongRule = time.Now //dvlint:ignore maporder fixture: names the wrong rule
