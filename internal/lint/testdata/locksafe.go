// Fixture for the locksafe analyzer.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

// byValueParam copies the lock through the parameter list.
func byValueParam(mu sync.Mutex) {} // want locksafe

// wgParam copies a WaitGroup the same way.
func wgParam(wg sync.WaitGroup) {} // want locksafe

// byValueResult declares a lock-holding result and returns it by value.
func byValueResult() (g guarded) { // want locksafe
	return g // want locksafe
}

// assignCopy duplicates an existing lock into a local.
func assignCopy(g *guarded) {
	cp := g.mu // want locksafe
	cp.Lock()
	cp.Unlock()
}

// lockSink takes its argument by value — itself a finding.
func lockSink(g guarded) { // want locksafe
	_ = g.n
}

// callArgCopy passes an existing lock by value at the call site.
func callArgCopy(g *guarded) {
	lockSink(*g) // want locksafe
}

// litParam hides the copy inside a function literal.
func litParam() {
	f := func(mu sync.Mutex) {} // want locksafe
	_ = f
}

// neverReleased acquires without any matching release.
func neverReleased(g *guarded) {
	g.mu.Lock() // want locksafe
	g.n++
}

// earlyReturn releases on only one path: the return escapes with the lock
// held.
func earlyReturn(g *guarded, cond bool) int {
	g.mu.Lock() // want locksafe
	if cond {
		return 0
	}
	g.n++
	g.mu.Unlock()
	return g.n
}

// readNeverReleased pairs RLock with nothing.
func readNeverReleased(g *rwGuarded) int {
	g.mu.RLock() // want locksafe
	return g.n
}

// deferred is the sanctioned discipline.
func deferred(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// straightLine releases before any return at the same nesting level.
func straightLine(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// readDeferred is the read-lock variant of the sanctioned discipline.
func readDeferred(g *rwGuarded) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// pointerParam shares the lock correctly.
func pointerParam(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

// ignoredCopy documents a sanctioned copy of a quiescent struct.
func ignoredCopy(g *guarded) int {
	//dvlint:ignore locksafe fixture: snapshot of a quiescent struct
	cp := *g
	return cp.n
}
