// Fixture for the seededrand analyzer.
package fixture

import (
	"math/rand"
	"time"
)

// global draws from the process-global, unseeded source.
func global() int {
	rand.Shuffle(3, func(i, j int) {}) // want seededrand
	_ = rand.Float64()                 // want seededrand
	return rand.Intn(6)                // want seededrand
}

// wallSeed seeds from the wall clock: every run gets a new stream.
func wallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want seededrand seededrand nowallclock
}

// opaqueSource hides the seed behind an arbitrary call.
func opaqueSource(mk func() rand.Source) *rand.Rand {
	return rand.New(mk()) // want seededrand
}

// constSeed is reproducible: a constant seed fully determines the stream.
func constSeed() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// propagatedSeed is reproducible: the caller owns the seed.
func propagatedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 1))
}

// methods on an already-seeded generator are fine.
func methods(r *rand.Rand) int { return r.Intn(6) }
