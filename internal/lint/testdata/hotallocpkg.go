// Fixture for the hotalloc analyzer: a package-scoped hot path. The
// directive below the doc comment marks every function in the file hot.
//
//dvlint:hotpath fixture: whole package is hot
package fixture

// anyFunc is hot purely through the package directive.
func anyFunc(n int) []byte {
	return make([]byte, n) // want hotalloc
}

// ignoredFunc carries a sanctioned exception.
func ignoredFunc(n int) []byte {
	//dvlint:ignore hotalloc fixture: sanctioned setup allocation
	return make([]byte, n)
}
