package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dvsync/internal/lint"
)

func finding(file, rule, msg string, line int) lint.Finding {
	return lint.Finding{File: file, Line: line, Col: 1, Rule: rule, Message: msg}
}

// TestRatchetRejectsNewFinding: a finding absent from the baseline is
// fresh, regardless of how many pinned neighbours it has.
func TestRatchetRejectsNewFinding(t *testing.T) {
	base := &lint.Baseline{Version: 1, Findings: []lint.Finding{
		finding("a.go", "hotalloc", "closure allocates", 10),
	}}
	cur := []lint.Finding{
		finding("a.go", "hotalloc", "closure allocates", 10),
		finding("b.go", "locksafe", "Lock without Unlock", 5),
	}
	fresh, stale := lint.ApplyBaseline(cur, base)
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none", stale)
	}
	if len(fresh) != 1 || fresh[0].File != "b.go" {
		t.Fatalf("fresh = %v, want exactly the b.go finding", fresh)
	}
}

// TestRatchetAcceptsRemovedFinding: fixing a pinned finding leaves a stale
// baseline entry but no failure.
func TestRatchetAcceptsRemovedFinding(t *testing.T) {
	base := &lint.Baseline{Version: 1, Findings: []lint.Finding{
		finding("a.go", "hotalloc", "closure allocates", 10),
		finding("b.go", "errflow", "error discarded", 3),
	}}
	cur := []lint.Finding{
		finding("a.go", "hotalloc", "closure allocates", 10),
	}
	fresh, stale := lint.ApplyBaseline(cur, base)
	if len(fresh) != 0 {
		t.Fatalf("fresh = %v, want none", fresh)
	}
	if len(stale) != 1 || stale[0].File != "b.go" {
		t.Fatalf("stale = %v, want exactly the b.go entry", stale)
	}
}

// TestRatchetMatchesByContentNotLine: unrelated edits shift lines; a
// pinned finding must keep matching after drifting.
func TestRatchetMatchesByContentNotLine(t *testing.T) {
	base := &lint.Baseline{Version: 1, Findings: []lint.Finding{
		finding("a.go", "hotalloc", "closure allocates", 10),
	}}
	cur := []lint.Finding{
		finding("a.go", "hotalloc", "closure allocates", 42),
	}
	fresh, stale := lint.ApplyBaseline(cur, base)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("fresh = %v stale = %v, want a clean line-drift match", fresh, stale)
	}
}

// TestRatchetCountsDuplicates: N pinned copies of an identical message
// absorb at most N current findings — duplicating a pinned violation is a
// fresh finding.
func TestRatchetCountsDuplicates(t *testing.T) {
	dup := finding("a.go", "hotalloc", "make allocates", 7)
	base := &lint.Baseline{Version: 1, Findings: []lint.Finding{dup}}
	cur := []lint.Finding{dup, finding("a.go", "hotalloc", "make allocates", 30)}
	fresh, _ := lint.ApplyBaseline(cur, base)
	if len(fresh) != 1 {
		t.Fatalf("fresh = %v, want the duplicated finding to fail", fresh)
	}
}

// TestBaselineRoundTrip pins the on-disk format: write, read back, equal
// and sorted.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	in := []lint.Finding{
		finding("z.go", "locksafe", "copied", 9),
		finding("a.go", "hotalloc", "boxed", 2),
	}
	if err := lint.WriteBaselineFile(path, in); err != nil {
		t.Fatal(err)
	}
	got, err := lint.ReadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []lint.Finding{in[1], in[0]} // sorted by file
	if !reflect.DeepEqual(got.Findings, want) {
		t.Fatalf("round trip = %+v, want %+v", got.Findings, want)
	}
}

// TestBaselineRejectsUnknownVersion guards the schema.
func TestBaselineRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := lint.WriteBaselineFile(path, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version in place.
	data := []byte(`{"version": 99, "findings": []}`)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.ReadBaselineFile(path); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want a version error", err)
	}
}

// TestFindingsRelativizePaths: diagnostics inside the module render as
// module-relative slash paths; outside paths are left untouched.
func TestFindingsRelativizePaths(t *testing.T) {
	root := t.TempDir()
	diags := []lint.Diagnostic{
		{Pos: token.Position{Filename: filepath.Join(root, "internal", "x.go"), Line: 3, Column: 7},
			Rule: "hotalloc", Message: "m"},
		{Pos: token.Position{Filename: "/elsewhere/y.go", Line: 1, Column: 1},
			Rule: "locksafe", Message: "n"},
	}
	fs := lint.Findings(root, diags)
	if fs[0].File != "internal/x.go" {
		t.Errorf("File = %q, want module-relative internal/x.go", fs[0].File)
	}
	if fs[0].Line != 3 || fs[0].Col != 7 {
		t.Errorf("position = %d:%d, want 3:7", fs[0].Line, fs[0].Col)
	}
	if fs[1].File != "/elsewhere/y.go" {
		t.Errorf("File = %q, want untouched outside path", fs[1].File)
	}
}

// TestEncodeFindingsNeverNull: consumers iterate the JSON unconditionally.
func TestEncodeFindingsNeverNull(t *testing.T) {
	data, err := lint.EncodeFindings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Fatalf("EncodeFindings(nil) = %q, want []", data)
	}
}
