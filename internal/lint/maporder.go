package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags map iteration whose body performs order-sensitive effects.
//
// Go randomises map iteration order on purpose; a range over a map that
// appends to a slice, emits through a method (events, trace records,
// scheduler pushes), or prints, produces a different sequence every run.
// Order-insensitive bodies — writes into another map, commutative
// accumulation, pure value reads — are allowed, as is the collect-then-sort
// idiom (append the keys, sort, iterate the slice).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag range over a map whose body emits, appends, or writes output in iteration order",
	Run:  runMapOrder,
}

// printFuncs are fmt functions whose call inside a map range serialises the
// iteration order into program output. The Sprint family is pure and
// exempt.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		// Walk top-level declarations so each range statement can be
		// related to its enclosing function (for the sorted-collect check).
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(p, fd, rng)
				return true
			})
		}
	}
}

// checkMapRange reports order-sensitive effects inside one map range body.
func checkMapRange(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside map range: iteration order is random")
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" &&
				isBuiltin(info, id) && len(n.Args) > 0 {
				if target := rootIdent(n.Args[0]); target != nil &&
					declaredOutside(info, target, rng) &&
					!sortedLater(info, fn, rng, target) {
					p.Reportf(n.Pos(),
						"append to %s inside map range: iteration order is random; sort the keys first",
						target.Name)
				}
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj := useOf(info, sel); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "fmt" && printFuncs[obj.Name()] {
				p.Reportf(n.Pos(),
					"fmt.%s inside map range: output order is random; sort the keys first",
					obj.Name())
				return true
			}
			if s, isSel := info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
				if recv := rootIdent(sel.X); recv != nil && declaredOutside(info, recv, rng) {
					p.Reportf(n.Pos(),
						"method call %s.%s on outer state inside map range: effects follow random iteration order; sort the keys first",
						recv.Name, sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// isBuiltin reports whether id resolves to a predeclared builtin (i.e. is
// not shadowed by a user declaration).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// rootIdent walks selector/index chains to the base identifier, e.g.
// s.engine.At → s, keys[i] → keys.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's declaration lies outside the range
// statement — loop-local accumulators do not leak iteration order.
func declaredOutside(info *types.Info, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return true // unresolvable: be conservative and treat as outer
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedLater recognises the collect-then-sort idiom: the slice appended to
// inside the map range is passed to a sort or slices call elsewhere in the
// same function, which erases the random collection order.
func sortedLater(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := info.Uses[target]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found || (n != nil && n.Pos() >= rng.Pos() && n.End() <= rng.End()) {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fobj := useOf(info, sel)
		if fobj == nil || fobj.Pkg() == nil ||
			(fobj.Pkg().Path() != "sort" && fobj.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && info.Uses[root] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
