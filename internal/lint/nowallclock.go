package lint

import (
	"go/ast"
)

// wallClockFuncs are the package-time functions that read or wait on the
// host clock. Referencing one — even without calling it — smuggles
// wall-clock readings into code paths that must depend only on
// simtime.Time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// NoWallClock forbids host wall-clock reads outside host-facing binaries.
//
// Simulated decisions must be functions of simulated state alone: a single
// time.Now() in a scheduler path makes every golden trace and FDPS
// comparison irreproducible. Host-facing mains (cmd/*, examples/*) are
// allowlisted; host-profiling helpers elsewhere (e.g. internal/exp's ZDP
// cost measurement) must carry an explicit //dvlint:ignore justification.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Sleep/Since/After and friends outside host-facing binaries",
	Skip: func(pkgPath string) bool {
		return pathMatchesAny(pkgPath, "dvsync/cmd", "dvsync/examples")
	},
	Run: runNoWallClock,
}

func runNoWallClock(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := useOf(p.Pkg.Info, sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if wallClockFuncs[obj.Name()] {
				p.Reportf(sel.Pos(),
					"wall-clock read time.%s in simulation code; use simtime, or justify with %s",
					obj.Name(), ignorePrefix)
			}
			return true
		})
	}
}
