package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation-inducing constructs inside //dvlint:hotpath
// scopes.
//
// ROADMAP item 4 drives the steady-state simulation loop toward zero
// allocations; this analyzer is the mechanical half of that contract. Any
// function (or package) marked hot must not, per call: allocate a closure,
// build strings through fmt or concatenation, box a concrete value into an
// interface parameter, grow an unpreallocated slice inside a loop, or
// evaluate an allocating composite literal (&T{...}, []T{...},
// map[K]V{...}) or make(). Panic arguments are exempt — a panicking hot
// path is already dead — as are immediately-invoked function literals,
// which the compiler inlines. Sanctioned allocations (free-list grow
// paths, setup inside a hot package) carry justified //dvlint:ignore
// directives; everything else is either fixed or pinned in the baseline
// ratchet.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-inducing constructs inside //dvlint:hotpath scopes",
	Run:  runHotAlloc,
}

// allocFmtFuncs are the fmt functions that allocate on every call: the
// formatting machinery itself plus the returned string or []byte.
var allocFmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
}

func runHotAlloc(p *Pass) {
	hot := hotScopes(p.Pkg)
	for _, pos := range hot.misplaced {
		p.Reportf(pos,
			"misplaced %s directive: attach it to a function declaration or the package clause",
			hotpathPrefix)
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hot.covers(fd) {
				continue
			}
			checkHotBody(p, fd.Body)
		}
	}
}

// checkHotBody inspects one hot function body, tracking ancestry so loop
// context, panic arguments and immediate closure calls can be recognised.
func checkHotBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var stack []ast.Node
	parent := func() ast.Node {
		if len(stack) < 2 {
			return nil
		}
		return stack[len(stack)-2]
	}
	inPanic := func() bool {
		for _, n := range stack {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, isID := call.Fun.(*ast.Ident); isID && id.Name == "panic" && isBuiltin(info, id) {
				return true
			}
		}
		return false
	}
	inLoop := func() bool {
		// The last element is the node under inspection itself.
		for _, n := range stack[:len(stack)-1] {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			if call, ok := parent().(*ast.CallExpr); ok && call.Fun == n {
				return true // immediately invoked: inlined, no closure object
			}
			p.Reportf(n.Pos(), "closure allocates in hot path; hoist it to setup and reuse it")

		case *ast.CallExpr:
			checkHotCall(p, n, inPanic, inLoop, body)

		case *ast.CompositeLit:
			if inPanic() {
				return true
			}
			if u, ok := parent().(*ast.UnaryExpr); ok && u.Op == token.AND {
				p.Reportf(u.Pos(), "&composite literal allocates in hot path; reuse pooled or preallocated storage")
				return true
			}
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					p.Reportf(n.Pos(), "slice literal allocates in hot path; hoist it to a package variable or preallocate")
				case *types.Map:
					p.Reportf(n.Pos(), "map literal allocates in hot path; hoist it to setup")
				}
			}

		case *ast.BinaryExpr:
			if n.Op != token.ADD || inPanic() {
				return true
			}
			tv, ok := info.Types[n]
			if !ok || tv.Value != nil || !isStringType(tv.Type) {
				return true
			}
			// Report only the outermost + of a concatenation chain.
			if pb, ok := parent().(*ast.BinaryExpr); ok && pb.Op == token.ADD {
				if ptv, ok := info.Types[pb]; ok && isStringType(ptv.Type) {
					return true
				}
			}
			p.Reportf(n.Pos(), "string concatenation allocates in hot path; precompute or use fixed buffers")

		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && !inPanic() {
				if tv, ok := info.Types[n.Lhs[0]]; ok && isStringType(tv.Type) {
					p.Reportf(n.Pos(), "string concatenation allocates in hot path; precompute or use fixed buffers")
				}
			}
		}
		return true
	})
}

// checkHotCall applies the call-site rules: allocating fmt helpers, make,
// unpreallocated append-in-loop growth, and interface boxing of concrete
// arguments.
func checkHotCall(p *Pass, call *ast.CallExpr, inPanic, inLoop func() bool, body *ast.BlockStmt) {
	info := p.Pkg.Info
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(info, id) {
		switch id.Name {
		case "make":
			if !inPanic() {
				p.Reportf(call.Pos(), "make allocates in hot path; hoist the allocation to setup and reuse it")
			}
		case "append":
			if inLoop() && len(call.Args) > 0 {
				if target := rootIdent(call.Args[0]); target != nil &&
					declaredWithoutCapacity(info, body, target) {
					p.Reportf(call.Pos(),
						"append to %s in a hot-path loop without preallocation; size the slice up front",
						target.Name)
				}
			}
		}
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := useOf(info, sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			if allocFmtFuncs[obj.Name()] && !inPanic() {
				p.Reportf(call.Pos(), "fmt.%s allocates in hot path; precompute the string or record raw fields",
					obj.Name())
			}
			return // fmt's ...any boxing is subsumed by the report above
		}
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || inPanic() {
		return
	}
	checkBoxing(p, call, sig)
}

// checkBoxing reports concrete non-pointer values passed to interface
// parameters: each such call site allocates to box the value.
func checkBoxing(p *Pass, call *ast.CallExpr, sig *types.Signature) {
	info := p.Pkg.Info
	params := sig.Params()
	if params.Len() == 0 || call.Ellipsis != token.NoPos {
		return
	}
	paramType := func(i int) types.Type {
		if sig.Variadic() && i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				return sl.Elem()
			}
			return last
		}
		if i < params.Len() {
			return params.At(i).Type()
		}
		return nil
	}
	for i, arg := range call.Args {
		pt := paramType(i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Value != nil || atv.IsNil() || atv.Type == nil {
			continue // constants and nil box without a per-call heap object
		}
		switch atv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Map, *types.Chan, *types.Slice:
			continue // already boxed, or a reference type: no new heap object
		}
		p.Reportf(arg.Pos(),
			"argument boxes a %s into an interface parameter in hot path; pass a pointer or restructure the call",
			atv.Type)
	}
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// declaredWithoutCapacity reports whether target is a slice declared in
// this function body with no capacity to grow into: `var s []T`,
// `s := []T{}` or an uncapped make. Slices preallocated with an explicit
// capacity, resliced from existing storage (s := b[:0]), or owned by an
// enclosing scope (fields, parameters, package variables — whose
// preallocation this function cannot see) are exempt.
func declaredWithoutCapacity(info *types.Info, body *ast.BlockStmt, target *ast.Ident) bool {
	obj := info.Uses[target]
	if obj == nil {
		obj = info.Defs[target]
	}
	if obj == nil || obj.Pos() < body.Pos() || obj.Pos() > body.End() {
		return false // declared outside this body: assume the owner presized it
	}
	uncapped := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] != obj {
					continue
				}
				if len(n.Values) == 0 {
					uncapped = true // var s []T
				} else if i < len(n.Values) {
					uncapped = uncapped || rhsLacksCapacity(info, n.Values[i])
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
					continue
				}
				if i < len(n.Rhs) {
					uncapped = uncapped || rhsLacksCapacity(info, n.Rhs[i])
				}
			}
		}
		return true
	})
	return uncapped
}

// rhsLacksCapacity classifies a slice initialiser: empty literals and
// two-argument make calls leave nothing to grow into; capped makes,
// reslices and calls are treated as preallocated.
func rhsLacksCapacity(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(info, id) {
			return len(e.Args) < 3 // make([]T, n) grows past n immediately under append
		}
		return false
	case *ast.SliceExpr:
		return false // backed by existing storage
	}
	return false
}
