package lint

import (
	"go/ast"
	"go/types"
)

// randPkgs are the unseeded-randomness sources. Both rand generations are
// covered: math/rand/v2 has no Seed at all and its top-level functions are
// always process-global.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// SeededRand forbids unseeded randomness outside internal/dist.
//
// All randomness must flow through dist.RNG so a scenario seed fully
// determines a run. Top-level math/rand functions draw from the global,
// process-seeded source; rand.New is tolerated only when its rand.NewSource
// argument is a constant or propagated seed expression (no function calls —
// in particular no time.Now().UnixNano()).
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid math/rand top-level functions and non-propagated rand.New seeds outside internal/dist",
	Skip: func(pkgPath string) bool {
		return pathIn(pkgPath, "dvsync/internal/dist")
	},
	Run: runSeededRand,
}

func runSeededRand(p *Pass) {
	info := p.Pkg.Info
	// handled marks selector expressions already judged as part of an
	// accepted rand.New(rand.NewSource(seed)) composition.
	handled := map[*ast.SelectorExpr]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fnSel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := useOf(info, fnSel)
			if obj == nil || obj.Pkg() == nil || !randPkgs[obj.Pkg().Path()] {
				return true
			}
			if obj.Name() != "New" || len(call.Args) != 1 {
				return true // judged as a bare selector use below
			}
			srcCall, ok := call.Args[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			srcSel, ok := srcCall.Fun.(*ast.SelectorExpr)
			if !ok || !isPkgFunc(useOf(info, srcSel), obj.Pkg().Path(), "NewSource") {
				return true
			}
			if len(srcCall.Args) == 1 && seedPropagated(srcCall.Args[0]) {
				handled[fnSel] = true
				handled[srcSel] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || handled[sel] {
				return true
			}
			obj := useOf(info, sel)
			if obj == nil || obj.Pkg() == nil || !randPkgs[obj.Pkg().Path()] {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc || fn.Type().(*types.Signature).Recv() != nil {
				// Type and method references (rand.Rand, r.Intn) are fine:
				// determinism hinges on how the generator was seeded.
				return true
			}
			switch obj.Name() {
			case "New", "NewSource":
				p.Reportf(sel.Pos(),
					"rand.%s without a constant or propagated seed; route randomness through internal/dist",
					obj.Name())
			default:
				p.Reportf(sel.Pos(),
					"global math/rand source rand.%s is unseeded; route randomness through internal/dist",
					obj.Name())
			}
			return true
		})
	}
}

// seedPropagated reports whether a seed expression is a constant or a
// propagated value: any expression free of function calls (identifiers,
// selectors, literals, arithmetic over them). A call in the seed — e.g.
// time.Now().UnixNano() — makes the stream irreproducible.
func seedPropagated(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isCall := n.(*ast.CallExpr); isCall {
			ok = false
			return false
		}
		return true
	})
	return ok
}
