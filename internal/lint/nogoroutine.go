package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// corePkgs are the single-threaded simulation core: every simulated
// decision flows through these packages, and replayability requires that
// no goroutine interleaving can reorder them.
var corePkgs = []string{
	"dvsync/internal/sim",
	"dvsync/internal/core",
	"dvsync/internal/pipeline",
	"dvsync/internal/buffer",
	"dvsync/internal/display",
	"dvsync/internal/event",
}

// NoGoroutine forbids concurrency constructs inside the simulation core.
//
// The discrete-event engine serialises everything on the virtual clock; a
// goroutine or channel in the core would reintroduce scheduler
// nondeterminism that no seed can pin down. The rule bans go statements,
// select, channel sends/receives, and channel types themselves (so channels
// cannot even appear in signatures or struct fields).
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid go statements and channel operations inside the simulation core",
	Skip: func(pkgPath string) bool {
		return !pathMatchesAny(pkgPath, corePkgs...)
	},
	Run: runNoGoroutine,
}

func runNoGoroutine(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement in simulation core; the core must stay single-threaded")
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select statement in simulation core; the core must stay single-threaded")
			case *ast.SendStmt:
				p.Reportf(n.Pos(), "channel send in simulation core; the core must stay single-threaded")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(), "channel receive in simulation core; the core must stay single-threaded")
				}
			case *ast.ChanType:
				p.Reportf(n.Pos(), "channel type in simulation core; the core must stay single-threaded")
			case *ast.RangeStmt:
				if tv, ok := p.Pkg.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						p.Reportf(n.Pos(), "range over channel in simulation core; the core must stay single-threaded")
					}
				}
			}
			return true
		})
	}
}
