package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// concurrencyPkgs are the packages sanctioned to use concurrency
// constructs: internal/par, the deterministic fan-out runner, and
// cmd/dvserve, whose net/http server hands each request to a goroutine by
// design — its handlers run simulations that are themselves
// single-threaded and deterministic. Everything else in the module — the
// simulation core, the experiment harness, the other commands — must stay
// single-threaded and parallelise by submitting independent jobs through
// par.Map.
var concurrencyPkgs = []string{
	"dvsync/internal/par",
	"dvsync/cmd/dvserve",
}

// NoGoroutine forbids concurrency constructs everywhere except the
// sanctioned worker pool (internal/par).
//
// The discrete-event engine serialises everything on the virtual clock; a
// goroutine or channel anywhere else would reintroduce scheduler
// nondeterminism that no seed can pin down — in the core by reordering
// simulated decisions, in the harness by reordering floating-point
// aggregation. The rule bans go statements, select, channel
// sends/receives, and channel types themselves (so channels cannot even
// appear in signatures or struct fields).
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid go statements and channel operations outside internal/par",
	Skip: func(pkgPath string) bool {
		return pathMatchesAny(pkgPath, concurrencyPkgs...)
	},
	Run: runNoGoroutine,
}

func runNoGoroutine(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement outside internal/par; fan out through par.Map instead")
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select statement outside internal/par; fan out through par.Map instead")
			case *ast.SendStmt:
				p.Reportf(n.Pos(), "channel send outside internal/par; fan out through par.Map instead")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(), "channel receive outside internal/par; fan out through par.Map instead")
				}
			case *ast.ChanType:
				p.Reportf(n.Pos(), "channel type outside internal/par; fan out through par.Map instead")
			case *ast.RangeStmt:
				if tv, ok := p.Pkg.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						p.Reportf(n.Pos(), "range over channel outside internal/par; fan out through par.Map instead")
					}
				}
			}
			return true
		})
	}
}
