package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is the machine-readable form of a Diagnostic: positions are
// module-relative slash paths so the JSON is stable across checkouts.
type Finding struct {
	// File is the module-root-relative, slash-separated path.
	File string `json:"file"`
	// Line and Col locate the finding for navigation. They are NOT part of
	// the baseline matching key — unrelated edits shift lines, and a
	// baseline that rots on every reflow would be regenerated reflexively,
	// defeating the ratchet.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Rule names the analyzer that fired.
	Rule string `json:"rule"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

// key is the identity used for baseline matching: file + rule + message.
func (f Finding) key() string {
	return f.File + "\x00" + f.Rule + "\x00" + f.Message
}

// String formats the finding the way compilers do.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Baseline is the committed ratchet file: the set of findings that existed
// when the ratchet was installed. It may only shrink — new findings fail,
// fixed findings must be removed.
type Baseline struct {
	// Version guards the schema; bump on incompatible changes.
	Version int `json:"version"`
	// Findings is the pinned set, sorted by file/line/col/rule.
	Findings []Finding `json:"findings"`
}

// baselineVersion is the current schema version.
const baselineVersion = 1

// Findings converts diagnostics to machine-readable findings with paths
// made relative to root.
func Findings(root string, diags []Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		out = append(out, Finding{
			File:    filepath.ToSlash(file),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	return out
}

// sortFindings orders findings by file, line, column, rule for stable
// output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// EncodeFindings renders findings as indented JSON (always an array, never
// null, so consumers can iterate unconditionally).
func EncodeFindings(fs []Finding) ([]byte, error) {
	if fs == nil {
		fs = []Finding{}
	}
	b, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ReadBaselineFile loads and validates a committed baseline.
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// WriteBaselineFile writes the findings as a fresh baseline at path.
func WriteBaselineFile(path string, fs []Finding) error {
	sorted := append([]Finding(nil), fs...)
	sortFindings(sorted)
	b := Baseline{Version: baselineVersion, Findings: sorted}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline splits current findings against the baseline:
//
//   - fresh: findings not covered by the baseline — these fail the ratchet;
//   - stale: baseline entries with no current finding — fixed debt that
//     must be removed from the committed file (shrink-only discipline).
//
// Matching is a multiset over file+rule+message: N pinned occurrences of
// the same message in a file absorb at most N current ones, so duplicating
// a pinned violation still fails.
func ApplyBaseline(current []Finding, base *Baseline) (fresh, stale []Finding) {
	credit := map[string]int{}
	for _, f := range base.Findings {
		credit[f.key()]++
	}
	for _, f := range current {
		k := f.key()
		if credit[k] > 0 {
			credit[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	// Whatever credit survives is stale: walk the baseline in its committed
	// order so the report is deterministic.
	for _, f := range base.Findings {
		k := f.key()
		if credit[k] > 0 {
			credit[k]--
			stale = append(stale, f)
		}
	}
	return fresh, stale
}
