package lint

import (
	"go/ast"
	"go/types"
)

// simtimePkg is the virtual-clock type universe.
const simtimePkg = "dvsync/internal/simtime"

// SimtimeConfusion flags conversions between the virtual-clock types
// (simtime.Time, simtime.Duration) and the host-clock types (time.Time,
// time.Duration).
//
// The two families deliberately share shape so code reads naturally, but a
// conversion between them is almost always a bug: it either injects a
// wall-clock reading into simulated state or interprets a simulated instant
// as a host timestamp. Genuine boundary crossings (host profiling reports)
// must carry a //dvlint:ignore justification.
var SimtimeConfusion = &Analyzer{
	Name: "simtimeconfusion",
	Doc:  "flag conversions mixing simtime.Time/Duration with time.Time/Duration",
	Run:  runSimtimeConfusion,
}

// clockFamily classifies a type: "sim" for simtime named types, "wall" for
// package time named types, "" for everything else.
func clockFamily(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case simtimePkg:
		return "sim"
	case "time":
		return "wall"
	}
	return ""
}

func runSimtimeConfusion(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true // a call, not a conversion
			}
			dst := clockFamily(tv.Type)
			if dst == "" {
				return true
			}
			argTV, ok := info.Types[call.Args[0]]
			if !ok {
				return true
			}
			src := clockFamily(argTV.Type)
			if src == "" || src == dst {
				return true
			}
			p.Reportf(call.Pos(),
				"conversion from %s to %s mixes the virtual clock with the host clock",
				argTV.Type, tv.Type)
			return true
		})
	}
}
