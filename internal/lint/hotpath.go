package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// hotpathPrefix introduces a hot-path scope directive. The directive marks
// code the allocation analyzer (hotalloc) must hold to steady-state
// zero-allocation discipline:
//
//	//dvlint:hotpath <optional scope note>
//
// Placement decides the scope:
//
//   - on (or inside) the doc comment of a function or method, or trailing
//     on the declaration line: that one function body is hot;
//   - before the package clause of any file (package doc or a detached
//     comment above it): every function of the package is hot.
//
// A directive anywhere else is itself a finding — misplacement would
// silently analyze nothing.
const hotpathPrefix = "//dvlint:hotpath"

// hotSet is the resolved hot-path scope of one package.
type hotSet struct {
	// pkgHot marks the whole package hot.
	pkgHot bool
	// funcs holds the individually marked declarations.
	funcs map[*ast.FuncDecl]bool
	// misplaced lists directives attached to neither a function nor the
	// package clause.
	misplaced []token.Pos
}

// covers reports whether fd's body is inside a hot scope.
func (h hotSet) covers(fd *ast.FuncDecl) bool {
	return h.pkgHot || h.funcs[fd]
}

// hotScopes resolves every //dvlint:hotpath directive of the package.
func hotScopes(pkg *Package) hotSet {
	h := hotSet{funcs: map[*ast.FuncDecl]bool{}}
	fset := pkg.Fset
	for _, f := range pkg.Files {
		claimed := map[*ast.Comment]bool{}
		var directives []*ast.Comment
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, hotpathPrefix) {
					directives = append(directives, c)
				}
			}
		}
		if len(directives) == 0 {
			continue
		}
		pkgLine := fset.Position(f.Package).Line
		for _, c := range directives {
			// Before (or on) the package clause: package-level scope. This
			// covers both the package doc group and a detached comment above
			// it.
			if fset.Position(c.Pos()).Line <= pkgLine {
				h.pkgHot = true
				claimed[c] = true
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			declLine := fset.Position(fd.Pos()).Line
			for _, c := range directives {
				if claimed[c] {
					continue
				}
				inDoc := fd.Doc != nil && c.Pos() >= fd.Doc.Pos() && c.End() <= fd.Doc.End()
				trailing := fset.Position(c.Pos()).Line == declLine && c.Pos() > fd.Pos()
				if inDoc || trailing {
					h.funcs[fd] = true
					claimed[c] = true
				}
			}
		}
		for _, c := range directives {
			if !claimed[c] {
				h.misplaced = append(h.misplaced, c.Pos())
			}
		}
	}
	return h
}
