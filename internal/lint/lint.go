// Package lint implements dvlint, the determinism and invariant
// static-analysis suite for the D-VSync reproduction.
//
// The whole value of the simulator is that runs are bit-for-bit
// deterministic: the paper's FDPS and latency comparisons are only
// trustworthy if no wall-clock reading, unseeded randomness, or goroutine
// scheduling can leak into simulated decisions. Those rules used to be
// enforced by convention (package comments in internal/simtime); dvlint
// machine-checks them on every build.
//
// The suite is built directly on go/ast + go/parser + go/types — the module
// is dependency-free and must stay buildable offline, so golang.org/x/tools
// is deliberately not used. See Analyzers for the rule set and DESIGN.md's
// "Determinism contract" section for the policy rationale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule names the analyzer that fired (or "dvlint" for directive
	// errors).
	Rule string
	// Message explains the violation.
	Message string
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Analyzer is one dvlint rule.
type Analyzer struct {
	// Name is the rule identifier used in reports and suppression
	// directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Skip, when set, exempts whole packages by import path (the
	// allowlist). Suppressions inside checked packages use
	// //dvlint:ignore directives instead.
	Skip func(pkgPath string) bool
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass)
}

// Pass carries one (package, analyzer) invocation.
type Pass struct {
	// Pkg is the loaded, type-checked package under inspection.
	Pkg *Package
	// Analyzer is the running rule.
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full dvlint rule set in stable order. The first
// five are the v1 determinism rules; the last four are the v2 hot-path
// allocation and concurrency-safety suite (DESIGN.md §11).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoWallClock,
		SeededRand,
		NoGoroutine,
		MapOrder,
		SimtimeConfusion,
		HotAlloc,
		LockSafe,
		ErrFlow,
		DetReduce,
	}
}

// Run applies the analyzers to every package, resolves //dvlint:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Skip != nil && a.Skip(pkg.Path) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, Analyzer: a, diags: &raw})
		}
		dirs, bad := directives(pkg, known)
		all = append(all, bad...)
		for _, d := range raw {
			if !dirs.suppresses(d) {
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return all
}

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//dvlint:ignore"

// directiveSet indexes suppression directives by (file, line, rule).
type directiveSet map[string]map[int]map[string]bool

// suppresses reports whether a directive covers the diagnostic: an ignore
// for the rule on the same line (trailing comment) or on the line directly
// above (own-line comment).
func (s directiveSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Rule] || lines[d.Pos.Line-1][d.Rule]
}

// directives collects //dvlint:ignore comments across the package. A
// directive must name a known rule and give a non-empty justification;
// malformed directives are themselves diagnostics so suppressions cannot
// silently rot.
func directives(pkg *Package, known map[string]bool) (directiveSet, []Diagnostic) {
	set := directiveSet{}
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Rule:    "dvlint",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "ignore directive missing rule name: %q", c.Text)
					continue
				}
				rule := fields[0]
				if !known[rule] {
					report(c.Pos(), "ignore directive names unknown rule %q", rule)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "ignore directive for %s needs a justification", rule)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[pos.Line] = rules
				}
				rules[rule] = true
			}
		}
	}
	return set, bad
}

// pathIn reports whether pkgPath is path itself or a subpackage of it.
func pathIn(pkgPath, path string) bool {
	return pkgPath == path || strings.HasPrefix(pkgPath, path+"/")
}

// pathMatchesAny reports whether pkgPath falls under any of the prefixes.
func pathMatchesAny(pkgPath string, prefixes ...string) bool {
	for _, p := range prefixes {
		if pathIn(pkgPath, p) {
			return true
		}
	}
	return false
}

// useOf resolves an identifier or selector to the object it denotes.
func useOf(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the named function from the named
// package.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
