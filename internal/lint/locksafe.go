package lint

import (
	"go/ast"
	"go/types"
)

// LockSafe flags the two sync-primitive misuses that survive the race
// detector: locks copied by value (the copy and the original guard nothing
// together — each party serialises against itself) and Lock calls whose
// Unlock is not guaranteed on every return path (an early return leaves the
// mutex held forever, deadlocking the next Lock).
//
// Concurrency lives only in internal/par and cmd/dvserve (see NoGoroutine),
// but this rule runs everywhere: a copied sync.Mutex in single-threaded
// code is a latent bug the day the package is parallelised, and `go vet`'s
// copylocks does not cover the missing-Unlock class at all.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flag sync primitives copied by value and Lock calls without a guaranteed Unlock",
	Run:  runLockSafe,
}

// syncLockTypes are the by-value-uncopyable sync primitives.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// unlockFor pairs each acquire method with its release.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockSafe(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(p, fd)
			if fd.Body != nil {
				checkLockRelease(p, fd.Body)
			}
		}
	}
}

// holdsLock reports whether t is (or transitively contains, by value) one
// of the sync primitives. seen breaks cycles through recursive types.
func holdsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsLock(u.Elem(), seen)
	}
	return false
}

// isLockValue reports whether e denotes an existing lock-holding value
// (not a fresh composite literal, not a pointer to one).
func isLockValue(info *types.Info, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
	default:
		return false // literals, calls and &x create or hand over fresh/pointed-to state
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return holdsLock(tv.Type, map[types.Type]bool{})
}

// checkLockCopies flags by-value lock movement: parameters and results
// declared with lock types, assignments duplicating an existing lock, and
// lock values passed to or returned from calls.
func checkLockCopies(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if holdsLock(tv.Type, map[types.Type]bool{}) {
				p.Reportf(field.Type.Pos(), "%s of type %s copies a sync primitive by value; use a pointer",
					what, tv.Type)
			}
		}
	}
	checkFieldList(fd.Type.Params, "parameter")
	checkFieldList(fd.Type.Results, "result")
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for _, rhs := range n.Rhs {
				if isLockValue(info, rhs) {
					p.Reportf(rhs.Pos(), "assignment copies %s by value; share it through a pointer",
						info.Types[rhs].Type)
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range n.Args {
				if isLockValue(info, arg) {
					p.Reportf(arg.Pos(), "call copies %s by value; pass a pointer",
						info.Types[arg].Type)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isLockValue(info, res) {
					p.Reportf(res.Pos(), "return copies %s by value; return a pointer",
						info.Types[res].Type)
				}
			}
		}
		return true
	})
}

// lockCall matches a call to a sync acquire/release method and resolves
// the receiver's root object (nil when the receiver is not a simple chain).
func lockCall(info *types.Info, call *ast.CallExpr, names map[string]bool) (types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !names[sel.Sel.Name] {
		return nil, "", false
	}
	obj := useOf(info, sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	var recv types.Object
	if root := rootIdent(sel.X); root != nil {
		recv = info.Uses[root]
	}
	return recv, sel.Sel.Name, true
}

// checkLockRelease enforces the release discipline per function body: every
// Lock/RLock must have a matching (R)Unlock, and when that release is not
// deferred, no return may sit between the acquire and the release.
func checkLockRelease(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	acquireNames := map[string]bool{"Lock": true, "RLock": true}
	releaseNames := map[string]bool{"Unlock": true, "RUnlock": true}

	type release struct {
		recv     types.Object
		name     string
		deferred bool
		pos      ast.Node
	}
	var releases []release
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if recv, name, ok := lockCall(info, n.Call, releaseNames); ok {
				releases = append(releases, release{recv, name, true, n.Call})
			}
			return false // the call inside defer is consumed here
		case *ast.CallExpr:
			if recv, name, ok := lockCall(info, n, releaseNames); ok {
				releases = append(releases, release{recv, name, false, n})
			}
		}
		return true
	})
	matches := func(r release, recv types.Object, want string) bool {
		if r.name != want {
			return false
		}
		return r.recv == nil || recv == nil || r.recv == recv
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := lockCall(info, call, acquireNames)
		if !ok {
			return true
		}
		want := unlockFor[name]
		var deferred, direct bool
		for _, r := range releases {
			if !matches(r, recv, want) {
				continue
			}
			if r.deferred {
				deferred = true
			} else {
				direct = true
			}
		}
		switch {
		case !deferred && !direct:
			p.Reportf(call.Pos(), "%s without any %s in this function; the lock is never released", name, want)
		case !deferred:
			if ret := returnBetweenLockAndUnlock(info, body, call, recv, want); ret != nil {
				p.Reportf(call.Pos(),
					"%s is not released on every return path (return at line %d before %s); defer the %s",
					name, p.Pkg.Fset.Position(ret.Pos()).Line, want, want)
			}
		}
		return true
	})
}

// returnBetweenLockAndUnlock scans the statement block containing the
// acquire: statements after it, up to the first non-deferred matching
// release at the same nesting level, must not return (or hide the release
// inside a branch, which the linear scan treats the same way). Returns the
// offending return statement, or nil when the discipline holds.
func returnBetweenLockAndUnlock(info *types.Info, body *ast.BlockStmt, acquire *ast.CallExpr, recv types.Object, want string) *ast.ReturnStmt {
	block := enclosingBlock(body, acquire)
	if block == nil {
		return nil
	}
	releaseNames := map[string]bool{want: true}
	started := false
	var offending *ast.ReturnStmt
	for _, stmt := range block.List {
		if !started {
			if stmt.Pos() <= acquire.Pos() && acquire.End() <= stmt.End() {
				started = true
			}
			continue
		}
		// A matching release directly in this statement ends the window.
		done := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if done || offending != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.ReturnStmt:
				offending = n
				return false
			case *ast.CallExpr:
				if r, _, ok := lockCall(info, n, releaseNames); ok {
					if r == nil || recv == nil || r == recv {
						done = true
						return false
					}
				}
			}
			return true
		})
		if offending != nil || done {
			break
		}
	}
	return offending
}

// enclosingBlock finds the innermost block whose statement list contains
// the given expression.
func enclosingBlock(body *ast.BlockStmt, target ast.Expr) *ast.BlockStmt {
	var found *ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for _, stmt := range b.List {
			if stmt.Pos() <= target.Pos() && target.End() <= stmt.End() {
				found = b // keep descending: a nested block wins
			}
		}
		return true
	})
	return found
}
