package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dvsync/internal/lint"
)

// moduleRoot is the repo root relative to this package's directory.
const moduleRoot = "../.."

func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := lint.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// wantRE matches expectation markers in fixture files.
var wantRE = regexp.MustCompile(`// want (.+)$`)

// wants extracts the expected diagnostics of a fixture: line → sorted rule
// names. A trailing marker refers to its own line; a marker alone on a line
// refers to the line below it.
func wants(t *testing.T, filename string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	out := map[int][]string{}
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatchIndex(line)
		if m == nil {
			continue
		}
		target := i + 1 // 1-based line of the marker
		if strings.TrimSpace(line[:m[0]]) == "" {
			target++ // own-line marker describes the next line
		}
		rules := strings.Fields(line[m[2]:m[3]])
		sort.Strings(rules)
		out[target] = rules
	}
	return out
}

// fixtures maps each fixture to the import path it is checked under: the
// nogoroutine fixture masquerades as dvsync/internal/sim — any path other
// than the internal/par carve-out would do (see
// TestNoGoroutineParCarveOut for the skip side).
var fixtures = []struct {
	file   string
	asPath string
}{
	{"nowallclock.go", "dvsync/internal/fixture"},
	{"seededrand.go", "dvsync/internal/fixture"},
	{"nogoroutine.go", "dvsync/internal/sim"},
	{"maporder.go", "dvsync/internal/fixture"},
	{"simtimeconfusion.go", "dvsync/internal/fixture"},
	{"directives.go", "dvsync/internal/fixture"},
	{"hotalloc.go", "dvsync/internal/fixture"},
	{"hotallocpkg.go", "dvsync/internal/fixture"},
	{"locksafe.go", "dvsync/internal/fixture"},
	{"errflow.go", "dvsync/internal/fixture"},
	{"detreduce.go", "dvsync/internal/fixture"},
}

// TestFixtures proves every analyzer catches its violation class and stays
// quiet on the sanctioned idioms, by checking each fixture's diagnostics
// against its // want markers exactly.
func TestFixtures(t *testing.T) {
	loader := newLoader(t)
	for _, fx := range fixtures {
		t.Run(strings.TrimSuffix(fx.file, ".go"), func(t *testing.T) {
			filename := filepath.Join("testdata", fx.file)
			pkg, err := loader.CheckFile(fx.asPath, filename)
			if err != nil {
				t.Fatalf("CheckFile: %v", err)
			}
			diags := lint.Run([]*lint.Package{pkg}, lint.Analyzers())

			got := map[int][]string{}
			for _, d := range diags {
				got[d.Pos.Line] = append(got[d.Pos.Line], d.Rule)
			}
			for _, rules := range got {
				sort.Strings(rules)
			}

			want := wants(t, filename)
			for line, rules := range want {
				if fmt.Sprint(got[line]) != fmt.Sprint(rules) {
					t.Errorf("line %d: got %v, want %v", line, got[line], rules)
				}
			}
			for line, rules := range got {
				if want[line] == nil {
					t.Errorf("line %d: unexpected diagnostics %v", line, rules)
				}
			}
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want markers", fx.file)
			}
		})
	}
}

// TestNoGoroutineParCarveOut pins the one allowlist exception: the same
// fixture that produces a page of diagnostics inside any other package
// must produce none when checked as dvsync/internal/par, the sanctioned
// worker pool.
func TestNoGoroutineParCarveOut(t *testing.T) {
	loader := newLoader(t)
	filename := filepath.Join("testdata", "nogoroutine.go")

	for _, tc := range []struct {
		asPath string
		clean  bool
	}{
		{"dvsync/internal/par", true},
		{"dvsync/cmd/dvserve", true},    // the HTTP server serves via goroutines by design
		{"dvsync/internal/exp", false},  // the harness is not exempt
		{"dvsync/cmd/dvbench", false},   // nor are other commands
		{"dvsync/internal/sim", false},  // nor the core
		{"dvsync/internal/part", false}, // prefix must not leak past the path boundary
		{"dvsync/cmd/dvserver", false},  // same for the dvserve carve-out
		{"dvsync/cmd/dvserve/x", true},  // subpackages inherit the carve-out, like par's
	} {
		pkg, err := loader.CheckFile(tc.asPath, filename)
		if err != nil {
			t.Fatalf("CheckFile(%s): %v", tc.asPath, err)
		}
		diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.NoGoroutine})
		if tc.clean && len(diags) != 0 {
			t.Errorf("%s: nogoroutine fired %d diagnostics inside the carve-out, want 0 (first: %s)",
				tc.asPath, len(diags), diags[0])
		}
		if !tc.clean && len(diags) == 0 {
			t.Errorf("%s: nogoroutine reported nothing, want diagnostics", tc.asPath)
		}
	}
}

// TestEachAnalyzerHasFailingFixture asserts the suite cannot silently lose
// coverage: every registered rule must be exercised by at least one
// expected violation across the fixtures.
func TestEachAnalyzerHasFailingFixture(t *testing.T) {
	covered := map[string]bool{}
	for _, fx := range fixtures {
		for _, rules := range wants(t, filepath.Join("testdata", fx.file)) {
			for _, r := range rules {
				covered[r] = true
			}
		}
	}
	for _, a := range lint.Analyzers() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no failing fixture", a.Name)
		}
	}
	if !covered["dvlint"] {
		t.Error("directive validation has no failing fixture")
	}
}

// TestLoaderDiscoversModule sanity-checks ./... discovery: the facade, the
// simulation core, and the lint tooling itself must all be loaded, and
// testdata must not be.
func TestLoaderDiscoversModule(t *testing.T) {
	loader := newLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	byPath := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	for _, want := range []string{
		"dvsync",
		"dvsync/internal/sim",
		"dvsync/internal/simtime",
		"dvsync/internal/lint",
		"dvsync/cmd/dvlint",
	} {
		if !byPath[want] {
			t.Errorf("LoadAll missed %s (got %d packages)", want, len(pkgs))
		}
	}
	for p := range byPath {
		if strings.Contains(p, "testdata") {
			t.Errorf("LoadAll must skip testdata, loaded %s", p)
		}
	}
}

// TestRepoIsClean enforces the static-analysis contract on the repository
// itself, the same gate cmd/dvlint applies in CI: the full ./... walk,
// checked against the committed baseline ratchet, must show no fresh
// findings — and no stale entries either, so the baseline only ever
// shrinks in step with the code.
func TestRepoIsClean(t *testing.T) {
	loader := newLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	findings := lint.Findings(root, lint.Run(pkgs, lint.Analyzers()))
	base, err := lint.ReadBaselineFile(filepath.Join(root, ".dvlint-baseline.json"))
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	fresh, stale := lint.ApplyBaseline(findings, base)
	for _, f := range fresh {
		t.Errorf("fresh finding not covered by the baseline: %s", f)
	}
	for _, f := range stale {
		t.Errorf("stale baseline entry (the finding is fixed — remove it): %s", f)
	}
}
