package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetReduce flags floating-point accumulation inside range-over-map bodies.
//
// This closes the determinism gap MapOrder tolerates: MapOrder allows
// "commutative accumulation" inside a map range, but floating-point
// addition and multiplication are commutative without being associative —
// summing shard results in randomised map order produces run-to-run ULP
// drift, which the byte-identical -workers contract (DESIGN.md §8) cannot
// absorb. The merge loop over a map of per-cell results is exactly the
// non-index-ordered reduction that breaks it; collect the keys, sort, and
// reduce in slice order instead (the same idiom par.Map enforces by
// returning index-ordered results).
var DetReduce = &Analyzer{
	Name: "detreduce",
	Doc:  "flag floating-point accumulation inside range-over-map bodies",
	Run:  runDetReduce,
}

// accumOps are the compound assignments whose repetition order changes a
// floating-point result.
var accumOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

// binaryAccumOps are the binary forms of the same operators, for the
// spelled-out `x = x + v` shape.
var binaryAccumOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
}

func runDetReduce(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkFPAccum(p, rng)
			return true
		})
	}
}

// isFloatType reports whether t's underlying type is a floating-point or
// complex kind.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// checkFPAccum reports order-sensitive floating-point reductions inside
// one map-range body: compound or spelled-out accumulation into a variable
// declared outside the range (loop-local temporaries cannot carry order
// across iterations).
func checkFPAccum(p *Pass, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		ltv, ok := info.Types[lhs]
		if !ok || !isFloatType(ltv.Type) {
			return true
		}
		root := rootIdent(lhs)
		if root == nil || !declaredOutside(info, root, rng) {
			return true
		}
		if accumOps[as.Tok] {
			p.Reportf(as.Pos(),
				"floating-point accumulation into %s inside map range: iteration order changes the result; sort the keys and reduce in slice order",
				root.Name)
			return true
		}
		if as.Tok != token.ASSIGN || len(as.Rhs) != 1 {
			return true
		}
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || !binaryAccumOps[bin.Op] {
			return true
		}
		lobj := info.Uses[root]
		if lobj == nil {
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if r := rootIdent(side); r != nil && info.Uses[r] == lobj {
				p.Reportf(as.Pos(),
					"floating-point accumulation into %s inside map range: iteration order changes the result; sort the keys and reduce in slice order",
					root.Name)
				return true
			}
		}
		return true
	})
}
