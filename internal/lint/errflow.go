package lint

import (
	"go/ast"
	"go/types"
)

// controlPathPkgs are the packages whose exported APIs sit on the
// simulation control path: a silently dropped error from one of these
// means a run continues on state it believes is valid — a trace that was
// never written, a fault config that never validated, a sim that never
// ran.
var controlPathPkgs = []string{
	"dvsync/internal/sim",
	"dvsync/internal/fault",
	"dvsync/internal/health",
	"dvsync/internal/trace",
	"dvsync/internal/telemetry",
}

// ErrFlow flags discarded error results from control-path APIs: a bare
// call statement that drops the error on the floor, an assignment that
// routes it into the blank identifier, or a defer/go statement doing
// either. Errors from other packages (and from unexported helpers, whose
// callers own the contract) are out of scope; `go vet` has no equivalent
// check because it cannot know which packages are load-bearing here.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "flag discarded error results from sim/fault/health/trace/telemetry exported APIs",
	Run:  runErrFlow,
}

// errType is the predeclared error interface.
var errType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// controlPathErrFunc reports whether the call resolves to an exported
// function or method of a control-path package, returning its name and the
// result indices that carry errors.
func controlPathErrFunc(info *types.Info, call *ast.CallExpr) (string, []int, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return "", nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || !fn.Exported() || fn.Pkg() == nil {
		return "", nil, false
	}
	if !pathMatchesAny(fn.Pkg().Path(), controlPathPkgs...) {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", nil, false
	}
	var errIdx []int
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if types.Implements(results.At(i).Type(), errType) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return "", nil, false
	}
	return fn.Name(), errIdx, true
}

func runErrFlow(p *Pass) {
	info := p.Pkg.Info
	report := func(call *ast.CallExpr, how string) {
		if name, _, ok := controlPathErrFunc(info, call); ok {
			p.Reportf(call.Pos(), "error result of %s %s; handle or propagate it", name, how)
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "is discarded")
				}
			case *ast.DeferStmt:
				report(n.Call, "is discarded by defer")
			case *ast.GoStmt:
				report(n.Call, "is discarded by go")
			case *ast.AssignStmt:
				checkBlankErr(p, n)
			}
			return true
		})
	}
}

// checkBlankErr flags `v, _ := F()` where the blank position is an error
// result of a control-path call.
func checkBlankErr(p *Pass, n *ast.AssignStmt) {
	info := p.Pkg.Info
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok || len(n.Lhs) < 2 {
		return
	}
	name, errIdx, ok := controlPathErrFunc(info, call)
	if !ok {
		return
	}
	for _, i := range errIdx {
		if i >= len(n.Lhs) {
			continue
		}
		if id, isID := n.Lhs[i].(*ast.Ident); isID && id.Name == "_" {
			p.Reportf(id.Pos(), "error result of %s is assigned to _; handle or propagate it", name)
		}
	}
}
