package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("dvsync/internal/sim").
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Fset maps positions (shared across the whole load).
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression annotations.
	Info *types.Info
}

// Loader loads and type-checks the module's packages from source, resolving
// stdlib imports through the compiler's source importer so the whole
// pipeline works offline with zero external dependencies.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path prefix.
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader prepares a loader for the module rooted at dir.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// LoadAll discovers every package under the module root (the ./... pattern)
// and returns them loaded and type-checked, sorted by import path. Hidden
// directories, testdata, and vendor trees are skipped, as are _test.go
// files: the contract is enforced on code that can reach the simulation,
// and tests are covered separately by `go test -race`.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if len(sourceFiles(p)) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// sourceFiles lists the non-test .go files of a directory, sorted.
func sourceFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files
}

// Import implements types.Importer: module-local paths load from source
// here, everything else falls through to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pathIn(path, l.ModulePath) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-local package, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	names := sourceFiles(dir)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check type-checks a parsed file set as the package at path.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// CheckFile type-checks a single standalone file as a package with the
// given import path — the fixture harness used by the analyzer tests.
// Imports resolve exactly as in a full load, so fixtures may import both
// stdlib and module-local packages (e.g. internal/simtime).
func (l *Loader) CheckFile(path, filename string) (*Package, error) {
	f, err := parser.ParseFile(l.fset, filename, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.check(path, filepath.Dir(filename), []*ast.File{f})
}
