package checkpoint

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvsync/internal/simtime"
)

func sealed(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	state := []byte(`{"engine":{"now":42},"queue":[1,2,3]}`)
	meta := []byte(`{"scenario":"steady"}`)
	if err := Encode(&buf, "cfg-digest-abc", simtime.Time(42), meta, state); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := sealed(t)
	env, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if env.At() != simtime.Time(42) {
		t.Errorf("at = %v, want 42ns", env.At())
	}
	if err := env.VerifyConfig("cfg-digest-abc"); err != nil {
		t.Errorf("config verify: %v", err)
	}
	var st struct {
		Engine struct {
			Now int64 `json:"now"`
		} `json:"engine"`
		Queue []int `json:"queue"`
	}
	if err := env.DecodeState(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Now != 42 || len(st.Queue) != 3 {
		t.Errorf("state round trip mangled: %+v", st)
	}
	var meta map[string]string
	if err := env.DecodeMeta(&meta); err != nil {
		t.Fatal(err)
	}
	if meta["scenario"] != "steady" {
		t.Errorf("meta round trip mangled: %v", meta)
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	data := sealed(t)
	// Flip one bit inside the state payload region and require a typed
	// digest error (or a corrupt error if the flip breaks JSON framing).
	idx := bytes.Index(data, []byte(`"queue"`))
	if idx < 0 {
		t.Fatal("payload marker not found")
	}
	for _, at := range []int{idx + 1, idx + 3, len(data) / 2} {
		flipped := append([]byte(nil), data...)
		flipped[at] ^= 0x01
		_, err := Decode(bytes.NewReader(flipped))
		if err == nil {
			t.Fatalf("bit flip at %d: decode accepted corrupt snapshot", at)
		}
		var de *DigestError
		var ce *CorruptError
		if !errors.As(err, &de) && !errors.As(err, &ce) && !errors.Is(err, ErrNotCheckpoint) {
			t.Errorf("bit flip at %d: untyped error %v", at, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := sealed(t)
	for _, n := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 2} {
		_, err := Decode(bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("truncation to %d bytes: decode accepted", n)
		}
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data := bytes.Replace(sealed(t), []byte(`"version":1`), []byte(`"version":2`), 1)
	_, err := Decode(bytes.NewReader(data))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want VersionError, got %v", err)
	}
	if ve.Got != 2 || ve.Want != Version {
		t.Errorf("version error fields: %+v", ve)
	}
}

func TestDecodeRejectsNonCheckpoints(t *testing.T) {
	for _, in := range []string{"", "   ", "not json", `[1,2,3]`, `{"magic":"something-else","version":1,"state":{}}`, `{}`} {
		_, err := Decode(strings.NewReader(in))
		if err == nil {
			t.Fatalf("input %q: decode accepted", in)
		}
	}
	_, err := Decode(strings.NewReader(`{"magic":"dvsync-checkpoint"}`))
	if err == nil {
		t.Fatal("envelope without state accepted")
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	data := append(sealed(t), []byte("{}")...)
	var ce *CorruptError
	if _, err := Decode(bytes.NewReader(data)); !errors.As(err, &ce) {
		t.Fatalf("want CorruptError for trailing data, got %v", err)
	}
}

func TestVerifyConfigMismatch(t *testing.T) {
	env, err := Decode(bytes.NewReader(sealed(t)))
	if err != nil {
		t.Fatal(err)
	}
	var de *DigestError
	if err := env.VerifyConfig("other-digest"); !errors.As(err, &de) {
		t.Fatalf("want DigestError, got %v", err)
	}
	if de.Field != "config" {
		t.Errorf("digest error field = %q, want config", de.Field)
	}
}

func TestEncodeRejectsInvalidPayloads(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, "d", 0, nil, []byte("not json")); err == nil {
		t.Error("invalid state accepted")
	}
	if err := Encode(&buf, "d", 0, []byte("not json"), []byte(`{}`)); err == nil {
		t.Error("invalid meta accepted")
	}
}

func TestStoreSaveLoadRotate(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty slot: want fs.ErrNotExist, got %v", err)
	}
	if err := st.Save("d", 100, nil, []byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("d", 200, nil, []byte(`{"gen":2}`)); err != nil {
		t.Fatal(err)
	}
	env, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if env.AtNs != 200 {
		t.Errorf("loaded at %d, want the newest (200)", env.AtNs)
	}
	if _, err := ReadFile(st.PrevPath()); err != nil {
		t.Errorf("rotation should keep the previous snapshot: %v", err)
	}

	// Corrupt the current snapshot: Load must fall back to .prev.
	if err := os.WriteFile(st.Path(), []byte(`{"magic":"dvsync-checkpoint",garbage`), 0o644); err != nil {
		t.Fatal(err)
	}
	env, err = st.Load()
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if env.AtNs != 100 {
		t.Errorf("fallback loaded at %d, want the previous (100)", env.AtNs)
	}

	// Corrupt both: Load must fail with a non-NotExist error.
	if err := os.WriteFile(st.PrevPath(), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(); err == nil || errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("doubly corrupt slot: want hard error, got %v", err)
	}

	if err := st.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("cleared slot: want fs.ErrNotExist, got %v", err)
	}
}

func TestStoreRejectsBadSlotNames(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"", ".hidden", "a/b", "../escape", "x y", strings.Repeat("n", 200)} {
		if _, err := NewStore(dir, name); err == nil {
			t.Errorf("slot name %q accepted", name)
		}
	}
	if _, err := NewStore("", "ok"); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestStoreSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("d", 1, nil, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %q left behind", e.Name())
		}
	}
	if filepath.Base(st.Path()) != "run.ckpt" {
		t.Errorf("unexpected snapshot name %q", st.Path())
	}
}
