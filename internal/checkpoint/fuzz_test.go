package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the snapshot decoder. The contract
// under fuzz is narrow and absolute: Decode returns (env, nil) only for a
// digest-valid envelope, returns an error for everything else, and never
// panics — resume paths consume untrusted files.
func FuzzDecode(f *testing.F) {
	var good bytes.Buffer
	if err := Encode(&good, "cfg", 42, []byte(`{"k":"v"}`), []byte(`{"state":1}`)); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"dvsync-checkpoint","version":1,"state":{}}`))
	f.Add([]byte(`{"magic":"dvsync-checkpoint","version":99,"state":{},"state_digest":"x"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[1,2,3]`))
	f.Add(good.Bytes()[:good.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted envelopes must verify their own digest and expose a
		// decodable state payload (or a typed error, not a panic).
		if env.Magic != Magic || env.Version != Version {
			t.Fatalf("accepted envelope with magic %q version %d", env.Magic, env.Version)
		}
		var v any
		_ = env.DecodeState(&v)
		_ = env.DecodeMeta(&v)
	})
}
