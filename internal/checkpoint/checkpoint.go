// Package checkpoint implements the versioned, digest-pinned snapshot
// format behind deterministic resume (DESIGN.md §12). An envelope wraps an
// opaque state payload with a magic string, a format version, a digest of
// the producing configuration, the virtual-time instant of the snapshot,
// and a content digest over the whole envelope. Decoding verifies all of
// them with typed errors — a wrong-version, wrong-config, truncated or
// bit-flipped snapshot is rejected, never misinterpreted and never a
// panic.
//
// The payload is JSON: human-greppable, diffable between two snapshots of
// the same run, and append-stable under Go's deterministic struct-field
// encoding, which is what makes byte-identical resume digests testable at
// all.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dvsync/internal/simtime"
)

// Magic identifies a checkpoint file.
const Magic = "dvsync-checkpoint"

// Version is the current envelope format version. Decoding any other
// version fails with a VersionError — state layouts are not
// forward-compatible across format bumps.
const Version = 1

// MaxSnapshotBytes bounds how much a decoder will read. Snapshots of real
// simulations are a few megabytes; anything approaching this cap is
// corrupt or hostile input.
const MaxSnapshotBytes = 1 << 28

// ErrNotCheckpoint reports input that is not a checkpoint envelope at all
// (wrong magic, not JSON, empty).
var ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint envelope")

// VersionError reports an envelope from an unsupported format version.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: format version %d, this build reads %d", e.Got, e.Want)
}

// DigestError reports a digest mismatch: the content digest (bit rot,
// truncation mid-payload) or the config digest (resuming under a different
// configuration than the one that produced the snapshot).
type DigestError struct {
	Field     string // "state" or "config"
	Want, Got string
}

func (e *DigestError) Error() string {
	return fmt.Sprintf("checkpoint: %s digest mismatch: want %s, got %s", e.Field, e.Want, e.Got)
}

// CorruptError reports a structurally damaged envelope or payload.
type CorruptError struct {
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("checkpoint: corrupt snapshot: %s: %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("checkpoint: corrupt snapshot: %s", e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Envelope is the on-disk checkpoint frame. State is the opaque simulation
// payload; Meta carries optional caller annotations (scenario name, CLI
// arguments) that are digest-protected but not interpreted here.
type Envelope struct {
	Magic        string          `json:"magic"`
	Version      int             `json:"version"`
	ConfigDigest string          `json:"config_digest"`
	AtNs         int64           `json:"at_ns"`
	Meta         json.RawMessage `json:"meta,omitempty"`
	State        json.RawMessage `json:"state"`
	StateDigest  string          `json:"state_digest"`
}

// At returns the snapshot's virtual-time instant.
func (e *Envelope) At() simtime.Time { return simtime.Time(e.AtNs) }

// digestOf computes the content digest: a sha256 over the digest-relevant
// header fields and both payloads, with explicit lengths so no field can
// masquerade as another.
func digestOf(cfgDigest string, atNs int64, meta, state []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%d\n%s\n%d\n%d\n%d\n", Magic, Version, cfgDigest, atNs, len(meta), len(state))
	h.Write(meta)
	h.Write(state)
	return hex.EncodeToString(h.Sum(nil))
}

// Encode seals state (and optional meta) taken at the given instant under
// the given config digest, and writes the envelope to w.
func Encode(w io.Writer, cfgDigest string, at simtime.Time, meta, state json.RawMessage) error {
	if !json.Valid(state) {
		return fmt.Errorf("checkpoint: state payload is not valid JSON")
	}
	if len(meta) > 0 && !json.Valid(meta) {
		return fmt.Errorf("checkpoint: meta payload is not valid JSON")
	}
	env := Envelope{
		Magic:        Magic,
		Version:      Version,
		ConfigDigest: cfgDigest,
		AtNs:         int64(at),
		Meta:         meta,
		State:        state,
		StateDigest:  digestOf(cfgDigest, int64(at), meta, state),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&env)
}

// Decode reads and verifies one envelope: magic, version, size cap, and
// content digest. It does not interpret the state payload — callers unpack
// it with DecodeState after VerifyConfig.
func Decode(r io.Reader) (*Envelope, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxSnapshotBytes+1))
	if err != nil {
		return nil, &CorruptError{Reason: "read", Err: err}
	}
	if len(data) > MaxSnapshotBytes {
		return nil, &CorruptError{Reason: fmt.Sprintf("snapshot exceeds %d bytes", MaxSnapshotBytes)}
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return nil, ErrNotCheckpoint
	}
	// Probe the magic leniently before the strict decode: a well-formed
	// JSON object that simply isn't ours (a JSONL trace line, some other
	// tool's output) is "not a checkpoint", not a corrupt envelope —
	// callers dispatch on that distinction to fall back to other formats.
	// A Decoder reads just the first object, so trailing JSONL lines don't
	// defeat the probe; trailing data after a real envelope still fails in
	// ensureEOF below.
	var probe struct {
		Magic string `json:"magic"`
	}
	if err := json.NewDecoder(bytes.NewReader(trimmed)).Decode(&probe); err == nil && probe.Magic != Magic {
		return nil, ErrNotCheckpoint
	}
	var env Envelope
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, &CorruptError{Reason: "envelope", Err: err}
	}
	if err := ensureEOF(dec); err != nil {
		return nil, err
	}
	if env.Magic != Magic {
		return nil, ErrNotCheckpoint
	}
	if env.Version != Version {
		return nil, &VersionError{Got: env.Version, Want: Version}
	}
	if len(env.State) == 0 {
		return nil, &CorruptError{Reason: "empty state payload"}
	}
	want := digestOf(env.ConfigDigest, env.AtNs, env.Meta, env.State)
	if env.StateDigest != want {
		return nil, &DigestError{Field: "state", Want: want, Got: env.StateDigest}
	}
	return &env, nil
}

// ensureEOF rejects trailing garbage after the envelope object.
func ensureEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return &CorruptError{Reason: "trailing data after envelope"}
	}
	return nil
}

// VerifyConfig checks that the envelope was produced under the given
// configuration digest.
func (e *Envelope) VerifyConfig(cfgDigest string) error {
	if e.ConfigDigest != cfgDigest {
		return &DigestError{Field: "config", Want: cfgDigest, Got: e.ConfigDigest}
	}
	return nil
}

// DecodeState unpacks the state payload into v, rejecting unknown fields
// so a payload from a different state layout fails loudly.
func (e *Envelope) DecodeState(v any) error {
	dec := json.NewDecoder(bytes.NewReader(e.State))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &CorruptError{Reason: "state payload", Err: err}
	}
	return nil
}

// DecodeMeta unpacks the optional meta payload into v; a missing meta
// payload leaves v untouched.
func (e *Envelope) DecodeMeta(v any) error {
	if len(e.Meta) == 0 {
		return nil
	}
	if err := json.Unmarshal(e.Meta, v); err != nil {
		return &CorruptError{Reason: "meta payload", Err: err}
	}
	return nil
}
