package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dvsync/internal/simtime"
)

// Store manages one named checkpoint slot inside a directory with
// crash-safe rotation: every Save writes to a temp file, fsyncs, rotates
// the previous snapshot to a .prev sibling, then renames into place. Load
// verifies the current snapshot and falls back to .prev when the current
// one is corrupt — so a crash mid-Save (or bit rot in the newest file)
// costs at most one checkpoint interval, never the whole run.
type Store struct {
	dir  string
	name string
}

// NewStore opens (creating if needed) a checkpoint directory for the given
// slot name. Names are restricted to a filename-safe alphabet so a slot
// can never escape the directory.
func NewStore(dir, name string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if !validSlotName(name) {
		return nil, fmt.Errorf("checkpoint: invalid slot name %q", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store directory: %w", err)
	}
	return &Store{dir: dir, name: name}, nil
}

// validSlotName admits [a-zA-Z0-9._-]+ without leading dots.
func validSlotName(s string) bool {
	if s == "" || s[0] == '.' || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Path returns the current snapshot's path.
func (s *Store) Path() string { return filepath.Join(s.dir, s.name+".ckpt") }

// PrevPath returns the rotated previous snapshot's path.
func (s *Store) PrevPath() string { return filepath.Join(s.dir, s.name+".ckpt.prev") }

// Save atomically replaces the slot's snapshot with a new envelope. The
// previous snapshot (if any) survives as .prev until the next Save.
func (s *Store) Save(cfgDigest string, atNs int64, meta, state []byte) error {
	var buf strings.Builder
	if err := Encode(&buf, cfgDigest, simtime.Time(atNs), meta, state); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, s.name+".ckpt.tmp-")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp snapshot: %w", err)
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	if _, err := io.WriteString(tmp, buf.String()); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close snapshot: %w", err)
	}
	if _, err := os.Stat(s.Path()); err == nil {
		if err := os.Rename(s.Path(), s.PrevPath()); err != nil {
			return fmt.Errorf("checkpoint: rotate previous snapshot: %w", err)
		}
	}
	if err := os.Rename(tmpPath, s.Path()); err != nil {
		return fmt.Errorf("checkpoint: install snapshot: %w", err)
	}
	return nil
}

// Load reads and verifies the newest usable snapshot: the current file
// first, falling back to the rotated .prev when the current one is
// missing or fails verification. It returns fs.ErrNotExist when the slot
// holds no usable snapshot at all.
func (s *Store) Load() (*Envelope, error) {
	env, errCur := ReadFile(s.Path())
	if errCur == nil {
		return env, nil
	}
	env, errPrev := ReadFile(s.PrevPath())
	if errPrev == nil {
		return env, nil
	}
	if errors.Is(errCur, fs.ErrNotExist) && errors.Is(errPrev, fs.ErrNotExist) {
		return nil, fmt.Errorf("checkpoint: no snapshot for slot %q: %w", s.name, fs.ErrNotExist)
	}
	return nil, fmt.Errorf("checkpoint: slot %q unusable: current: %w; previous: %v", s.name, errCur, errPrev)
}

// Clear removes the slot's snapshots. Missing files are not errors.
func (s *Store) Clear() error {
	var first error
	for _, p := range []string{s.Path(), s.PrevPath()} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) && first == nil {
			first = err
		}
	}
	return first
}

// ReadFile decodes and verifies a snapshot file.
func ReadFile(path string) (*Envelope, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
