package exp

import (
	"strings"
	"testing"
)

// TestFaultsQuickDeterministic runs the quick fault matrix twice and demands
// bit-identical tables: the whole sweep is seeded, so any divergence is a
// determinism regression.
func TestFaultsQuickDeterministic(t *testing.T) {
	a, b := Faults(true), Faults(true)
	if got, want := a.Table.String(), b.Table.String(); got != want {
		t.Fatalf("fault matrix diverged between runs:\n%s\nvs\n%s", got, want)
	}
	if got, want := a.InputTable.String(), b.InputTable.String(); got != want {
		t.Fatalf("input fault table diverged between runs:\n%s\nvs\n%s", got, want)
	}
	t.Logf("\n%s", a.Table.String())
	t.Logf("\n%s", a.InputTable.String())
}

// TestFaultsDegradationShape checks the acceptance properties of the quick
// degradation curves per fault class:
//
//  1. FDPS is monotone non-decreasing in severity (within a small tolerance
//     for averaging noise), and
//  2. the hardened D-VSync+fallback arm never degrades materially past the
//     VSync baseline at the same severity — the whole point of the §4.5
//     supervised switch.
func TestFaultsDegradationShape(t *testing.T) {
	const tol = 0.35
	res := Faults(true)
	byClass := map[string][]FaultsPoint{}
	for _, pt := range res.Points {
		byClass[pt.Class] = append(byClass[pt.Class], pt)
	}
	for _, cls := range SimFaultClasses() {
		pts := byClass[cls]
		if len(pts) != len(FaultSeverities(true)) {
			t.Fatalf("%s: %d points, want %d", cls, len(pts), len(FaultSeverities(true)))
		}
		for i := 1; i < len(pts); i++ {
			for _, arm := range []struct {
				name       string
				prev, curr float64
			}{
				{"VSync", pts[i-1].VSyncFDPS, pts[i].VSyncFDPS},
				{"D-VSync", pts[i-1].DVSyncFDPS, pts[i].DVSyncFDPS},
				{"D-VSync+fb", pts[i-1].FallbackFDPS, pts[i].FallbackFDPS},
			} {
				if arm.curr < arm.prev-tol {
					t.Errorf("%s/%s: FDPS fell from %.2f to %.2f as severity rose %.2f→%.2f",
						cls, arm.name, arm.prev, arm.curr, pts[i-1].Severity, pts[i].Severity)
				}
			}
		}
		for _, pt := range pts {
			if pt.FallbackFDPS > pt.VSyncFDPS+tol {
				t.Errorf("%s sev %.2f: hardened FDPS %.2f exceeds VSync baseline %.2f",
					cls, pt.Severity, pt.FallbackFDPS, pt.VSyncFDPS)
			}
		}
	}
}

// TestFaultsTableShape sanity-checks the rendered output consumed by dvbench.
func TestFaultsTableShape(t *testing.T) {
	res := Faults(true)
	wantRows := len(SimFaultClasses()) * len(FaultSeverities(true))
	if got := len(res.Table.Rows); got != wantRows {
		t.Fatalf("matrix rows = %d, want %d", got, wantRows)
	}
	if got := len(res.InputTable.Rows); got != 2*len(FaultSeverities(true)) {
		t.Fatalf("input rows = %d, want %d", got, 2*len(FaultSeverities(true)))
	}
	out := res.Table.String()
	for _, cls := range SimFaultClasses() {
		if !strings.Contains(out, cls) {
			t.Errorf("matrix output missing class %q", cls)
		}
	}
}
