package exp

import (
	"fmt"
	"io"
	"sort"

	"dvsync/internal/report"
)

// Experiment is a runnable table/figure regeneration.
type Experiment struct {
	// ID is the short name used by `dvbench -exp`.
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment and writes its table(s) to w.
	Run func(w io.Writer)
	// Tables re-runs the experiment and returns its tables for machine
	// consumption (CSV export).
	Tables func() []*report.Table
}

// Registry returns every experiment, keyed for dvbench, in presentation
// order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table 1 — platform configuration", func(w io.Writer) {
			Table1().Render(w)
		}, func() []*report.Table {
			return []*report.Table{Table1()}
		}},
		{"fig1", "Figure 1 — frame rendering time CDF", func(w io.Writer) {
			r := Fig1()
			r.Table.Render(w)
			fmt.Fprintf(w, "within one 60 Hz period: %.1f%% (paper: 78.3%%)\n", 100*r.WithinOnePeriod)
			fmt.Fprintf(w, "beyond triple buffering:  %.1f%% (paper: ≈5%%)\n", 100*r.BeyondTriple)
		}, func() []*report.Table {
			return []*report.Table{Fig1().Table}
		}},
		{"fig3", "Figure 3 — pixels-per-second trend", func(w io.Writer) {
			Fig3().Render(w)
		}, func() []*report.Table {
			return []*report.Table{Fig3()}
		}},
		{"fig5", "Figure 5 — frame-drop summary", func(w io.Writer) {
			Fig5().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{Fig5().Table}
		}},
		{"fig6", "Figure 6 — frame distribution", func(w io.Writer) {
			r := Fig6()
			r.Table.Render(w)
			fmt.Fprintf(w, "overall buffer-stuffing share: %.0f%%\n", 100*r.StuffedShare)
		}, func() []*report.Table {
			return []*report.Table{Fig6().Table}
		}},
		{"fig7", "Figure 7 — touch-follow latency", func(w io.Writer) {
			r := Fig7()
			r.Table.Render(w)
			fmt.Fprintf(w, "max displacement: %.0f px (paper: ≈400 px / 2.4 cm)\n", r.MaxDisplacementPx)
		}, func() []*report.Table {
			return []*report.Table{Fig7().Table}
		}},
		{"fig9", "Figure 9 — scope of D-VSync", func(w io.Writer) {
			Fig9().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{Fig9().Table}
		}},
		{"fig10", "Figure 10 — execution patterns", func(w io.Writer) {
			r := Fig10()
			r.Table.Render(w)
			fmt.Fprintln(w, r.Timeline)
		}, func() []*report.Table {
			return []*report.Table{Fig10().Table}
		}},
		{"fig11", "Figure 11 — FDPS, 25 apps (Pixel 5)", func(w io.Writer) {
			r := Fig11()
			r.Table.Render(w)
			printReductions(w, r)
		}, func() []*report.Table {
			return []*report.Table{Fig11().Table}
		}},
		{"fig12", "Figure 12 — FDPS, OS cases (Mate 60 Pro, Vulkan)", func(w io.Writer) {
			r := Fig12()
			r.Table.Render(w)
			printReductions(w, r)
		}, func() []*report.Table {
			return []*report.Table{Fig12().Table}
		}},
		{"fig13", "Figure 13 — FDPS, OS cases (GLES)", func(w io.Writer) {
			a, b := Fig13Mate40(), Fig13Mate60()
			a.Table.Render(w)
			printReductions(w, a)
			b.Table.Render(w)
			printReductions(w, b)
		}, func() []*report.Table {
			return []*report.Table{Fig13Mate40().Table, Fig13Mate60().Table}
		}},
		{"fig14", "Figure 14 — FDPS, 15 games", func(w io.Writer) {
			r := Fig14()
			r.Table.Render(w)
			printReductions(w, r)
		}, func() []*report.Table {
			return []*report.Table{Fig14().Table}
		}},
		{"fig15", "Figure 15 — rendering latency", func(w io.Writer) {
			Fig15().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{Fig15().Table}
		}},
		{"fig16", "Figure 16 — map app case study", func(w io.Writer) {
			Fig16().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{Fig16().Table}
		}},
		{"table2", "Table 2 — UX stutters", func(w io.Writer) {
			r := Table2()
			r.Table.Render(w)
			fmt.Fprintf(w, "average stutter reduction: %.1f%% (paper: 72.3%%)\n", r.AvgReductionPct)
		}, func() []*report.Table {
			return []*report.Table{Table2().Table}
		}},
		{"costs", "§6.4 — execution/memory costs", func(w io.Writer) {
			Costs().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{Costs().Table}
		}},
		{"chromium", "§6.6 — Chromium case study", func(w io.Writer) {
			r := Chromium()
			r.Table.Render(w)
			printReductions(w, r)
		}, func() []*report.Table {
			return []*report.Table{Chromium().Table}
		}},
		{"power", "§6.7 — power consumption", func(w io.Writer) {
			Power().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{Power().Table}
		}},
		{"census", "Appendix A — 75-case testing-framework census", func(w io.Writer) {
			r := Census()
			r.Table.Render(w)
			fmt.Fprintf(w, "total-jank reduction across all 75 cases: %.1f%%\n", r.JankReductionPct)
		}, func() []*report.Table {
			return []*report.Table{Census().Table}
		}},
		{"future", "Projection — future high-refresh panels", func(w io.Writer) {
			Future().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{Future().Table}
		}},
		{"ablations", "Ablation studies — design-choice sweeps", func(w io.Writer) {
			AblatePreRenderLimit().Table.Render(w)
			fmt.Fprintln(w)
			AblateDTVCalibration().Table.Render(w)
			fmt.Fprintln(w)
			AblateIPLPredictors().Table.Render(w)
			fmt.Fprintln(w)
			AblateVSyncPipelineDepth().Table.Render(w)
			fmt.Fprintln(w)
			AblateDTVPacing().Table.Render(w)
			fmt.Fprintln(w)
			AblateConsumerPolicy().Table.Render(w)
			fmt.Fprintln(w)
			AblateAppOffset().Table.Render(w)
		}, func() []*report.Table {
			return []*report.Table{AblatePreRenderLimit().Table, AblateDTVCalibration().Table, AblateIPLPredictors().Table, AblateVSyncPipelineDepth().Table, AblateDTVPacing().Table, AblateConsumerPolicy().Table, AblateAppOffset().Table}
		}},
	}
}

func printReductions(w io.Writer, r *FDPSResult) {
	red := r.Reductions()
	var bufs []int
	for b := range red {
		bufs = append(bufs, b)
	}
	sort.Ints(bufs)
	for _, b := range bufs {
		fmt.Fprintf(w, "FDPS reduction with %d buffers: %.1f%%\n", b, red[b])
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
