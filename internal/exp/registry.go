package exp

import (
	"fmt"
	"io"
	"sort"

	"dvsync/internal/report"
)

// Experiment is a runnable table/figure regeneration.
type Experiment struct {
	// ID is the short name used by `dvbench -exp`.
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment and writes its table(s) to w.
	Run func(w io.Writer)
	// RunQuick, when non-nil, is a reduced configuration suitable for CI
	// smoke runs (`dvbench -quick`); experiments without one always run in
	// full.
	RunQuick func(w io.Writer)
	// Tables re-runs the experiment and returns its tables for machine
	// consumption (CSV export).
	Tables func() []*report.Table
}

// Registry returns every experiment, keyed for dvbench, in presentation
// order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1 — platform configuration", Run: func(w io.Writer) {
			Table1().Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Table1()}
		}},
		{ID: "fig1", Title: "Figure 1 — frame rendering time CDF", Run: func(w io.Writer) {
			r := Fig1()
			r.Table.Render(w)
			fmt.Fprintf(w, "within one 60 Hz period: %.1f%% (paper: 78.3%%)\n", 100*r.WithinOnePeriod)
			fmt.Fprintf(w, "beyond triple buffering:  %.1f%% (paper: ≈5%%)\n", 100*r.BeyondTriple)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig1().Table}
		}},
		{ID: "fig3", Title: "Figure 3 — pixels-per-second trend", Run: func(w io.Writer) {
			Fig3().Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig3()}
		}},
		{ID: "fig5", Title: "Figure 5 — frame-drop summary", Run: func(w io.Writer) {
			Fig5().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig5().Table}
		}},
		{ID: "fig6", Title: "Figure 6 — frame distribution", Run: func(w io.Writer) {
			r := Fig6()
			r.Table.Render(w)
			fmt.Fprintf(w, "overall buffer-stuffing share: %.0f%%\n", 100*r.StuffedShare)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig6().Table}
		}},
		{ID: "fig7", Title: "Figure 7 — touch-follow latency", Run: func(w io.Writer) {
			r := Fig7()
			r.Table.Render(w)
			fmt.Fprintf(w, "max displacement: %.0f px (paper: ≈400 px / 2.4 cm)\n", r.MaxDisplacementPx)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig7().Table}
		}},
		{ID: "fig9", Title: "Figure 9 — scope of D-VSync", Run: func(w io.Writer) {
			Fig9().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig9().Table}
		}},
		{ID: "fig10", Title: "Figure 10 — execution patterns", Run: func(w io.Writer) {
			r := Fig10()
			r.Table.Render(w)
			fmt.Fprintln(w, r.Timeline)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig10().Table}
		}},
		{ID: "fig11", Title: "Figure 11 — FDPS, 25 apps (Pixel 5)", Run: func(w io.Writer) {
			r := Fig11()
			r.Table.Render(w)
			printReductions(w, r)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig11().Table}
		}},
		{ID: "fig12", Title: "Figure 12 — FDPS, OS cases (Mate 60 Pro, Vulkan)", Run: func(w io.Writer) {
			r := Fig12()
			r.Table.Render(w)
			printReductions(w, r)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig12().Table}
		}},
		{ID: "fig13", Title: "Figure 13 — FDPS, OS cases (GLES)", Run: func(w io.Writer) {
			a, b := Fig13Mate40(), Fig13Mate60()
			a.Table.Render(w)
			printReductions(w, a)
			b.Table.Render(w)
			printReductions(w, b)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig13Mate40().Table, Fig13Mate60().Table}
		}},
		{ID: "fig14", Title: "Figure 14 — FDPS, 15 games", Run: func(w io.Writer) {
			r := Fig14()
			r.Table.Render(w)
			printReductions(w, r)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig14().Table}
		}},
		{ID: "fig15", Title: "Figure 15 — rendering latency", Run: func(w io.Writer) {
			Fig15().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig15().Table}
		}},
		{ID: "fig16", Title: "Figure 16 — map app case study", Run: func(w io.Writer) {
			Fig16().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fig16().Table}
		}},
		{ID: "table2", Title: "Table 2 — UX stutters", Run: func(w io.Writer) {
			r := Table2()
			r.Table.Render(w)
			fmt.Fprintf(w, "average stutter reduction: %.1f%% (paper: 72.3%%)\n", r.AvgReductionPct)
		}, Tables: func() []*report.Table {
			return []*report.Table{Table2().Table}
		}},
		{ID: "costs", Title: "§6.4 — execution/memory costs", Run: func(w io.Writer) {
			Costs().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Costs().Table}
		}},
		{ID: "chromium", Title: "§6.6 — Chromium case study", Run: func(w io.Writer) {
			r := Chromium()
			r.Table.Render(w)
			printReductions(w, r)
		}, Tables: func() []*report.Table {
			return []*report.Table{Chromium().Table}
		}},
		{ID: "power", Title: "§6.7 — power consumption", Run: func(w io.Writer) {
			Power().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Power().Table}
		}},
		{ID: "census", Title: "Appendix A — 75-case testing-framework census", Run: func(w io.Writer) {
			r := Census()
			r.Table.Render(w)
			fmt.Fprintf(w, "total-jank reduction across all 75 cases: %.1f%%\n", r.JankReductionPct)
		}, Tables: func() []*report.Table {
			return []*report.Table{Census().Table}
		}},
		{ID: "future", Title: "Projection — future high-refresh panels", Run: func(w io.Writer) {
			Future().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{Future().Table}
		}},
		{ID: "ablations", Title: "Ablation studies — design-choice sweeps", Run: func(w io.Writer) {
			AblatePreRenderLimit().Table.Render(w)
			fmt.Fprintln(w)
			AblateDTVCalibration().Table.Render(w)
			fmt.Fprintln(w)
			AblateIPLPredictors().Table.Render(w)
			fmt.Fprintln(w)
			AblateVSyncPipelineDepth().Table.Render(w)
			fmt.Fprintln(w)
			AblateDTVPacing().Table.Render(w)
			fmt.Fprintln(w)
			AblateConsumerPolicy().Table.Render(w)
			fmt.Fprintln(w)
			AblateAppOffset().Table.Render(w)
		}, Tables: func() []*report.Table {
			return []*report.Table{AblatePreRenderLimit().Table, AblateDTVCalibration().Table, AblateIPLPredictors().Table, AblateVSyncPipelineDepth().Table, AblateDTVPacing().Table, AblateConsumerPolicy().Table, AblateAppOffset().Table}
		}},
		{ID: "fleet", Title: "Fleet census — batch device-population runs", Run: func(w io.Writer) {
			renderFleet(w, false)
		}, RunQuick: func(w io.Writer) {
			renderFleet(w, true)
		}, Tables: func() []*report.Table {
			return []*report.Table{Fleet(false).Table}
		}},
		{ID: "faults", Title: "Fault matrix — degradation under injected faults", Run: func(w io.Writer) {
			r := Faults(false)
			r.Table.Render(w)
			fmt.Fprintln(w)
			r.InputTable.Render(w)
		}, RunQuick: func(w io.Writer) {
			r := Faults(true)
			r.Table.Render(w)
			fmt.Fprintln(w)
			r.InputTable.Render(w)
		}, Tables: func() []*report.Table {
			r := Faults(false)
			return []*report.Table{r.Table, r.InputTable}
		}},
	}
}

func printReductions(w io.Writer, r *FDPSResult) {
	red := r.Reductions()
	var bufs []int
	for b := range red {
		bufs = append(bufs, b)
	}
	sort.Ints(bufs)
	for _, b := range bufs {
		fmt.Fprintf(w, "FDPS reduction with %d buffers: %.1f%%\n", b, red[b])
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
