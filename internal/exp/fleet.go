package exp

import (
	"fmt"
	"io"

	"dvsync/internal/fleet"
	"dvsync/internal/report"
)

// FleetResult pairs the canonical census outcome with its printable
// table.
type FleetResult struct {
	Table  *report.Table
	Result *fleet.Result
}

// Fleet runs the canonical device-census (fleet.DemoSpec) on a fresh
// engine: every Table 1 device, an LTPO refresh sweep, clean and faulted
// cohorts, and a duplicated cohort exercising the content-addressed cell
// cache. Like every experiment, the output is byte-identical at any
// -workers width.
func Fleet(quick bool) *FleetResult {
	res, err := fleet.NewEngine().Census(fleet.DemoSpec(quick), nil)
	if err != nil {
		// The demo spec is static; failing to resolve it is a programming
		// error, not an input error.
		panic(fmt.Sprintf("exp: fleet demo spec invalid: %v", err))
	}
	t := &report.Table{
		Title: "Fleet census — batch device-population run",
		Note: "cohorts sweep Table 1 devices, LTPO refresh rates, architectures and fault classes; " +
			"duplicate cells are served from the content-addressed result cache (DESIGN.md §14)",
		Columns: []string{"cohort", "cells", "simulated", "cache hits", "mean FDPS", "mean latency (ms)", "janks"},
	}
	for _, c := range res.Cohorts {
		t.AddRow(c.Name, c.Cells, c.Simulated, c.CacheHits, c.MeanFDPS, c.MeanLatencyMs, c.Janks)
	}
	return &FleetResult{Table: t, Result: res}
}

// renderFleet writes the census table plus the fleet-wide cache ledger.
func renderFleet(w io.Writer, quick bool) {
	r := Fleet(quick)
	r.Table.Render(w)
	fmt.Fprintf(w, "fleet total: %d cells, %d unique, %d simulated, %d cache hits\n",
		r.Result.Cells, r.Result.UniqueCells, r.Result.Simulated, r.Result.CacheHits)
}
