package exp

import (
	"dvsync/internal/display"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/telemetry"
	"dvsync/internal/workload"
)

// CellMetrics is one canonical telemetry cell of an experiment: the same
// representative simulation TraceCells records, run with a live metrics
// registry instead of (or alongside) a trace recorder. dvbench's
// -metrics-dir flag exports each cell's Prometheus exposition and JSON
// snapshot so a report's numbers can be compared against what a live
// scrape of the same scenario would have shown.
type CellMetrics struct {
	// Name is the export file stem, "<experiment>-<mode>".
	Name string
	// Mode is the architecture the cell simulated.
	Mode sim.Mode
	// Registry holds the cell's sampled instruments.
	Registry *telemetry.Registry
}

// MetricsCells runs the canonical cells of one experiment — a VSync and a
// D-VSync run over the identical exp.Seed workload — each with a fresh
// telemetry registry sampled every panel period. Like TraceCells, the
// result is a pure function of the experiment ID, so exported snapshots
// are byte-identical across runs and -workers widths.
func MetricsCells(id string) []CellMetrics {
	hz := cellHz(id)
	p := workload.DefaultProfile(id, simtime.PeriodForHz(hz).Milliseconds())
	tr := p.Generate(cellFrames, Seed)
	cells := []struct {
		name    string
		mode    sim.Mode
		buffers int
	}{
		{id + "-vsync", sim.ModeVSync, 3},
		{id + "-dvsync", sim.ModeDVSync, 4},
	}
	out := make([]CellMetrics, 0, len(cells))
	for _, c := range cells {
		reg := telemetry.NewRegistry()
		sim.Run(sim.Config{
			Mode:    c.mode,
			Panel:   display.Config{Name: id, RefreshHz: hz},
			Buffers: c.buffers,
			Trace:   tr,
			Metrics: reg,
		})
		out = append(out, CellMetrics{Name: c.name, Mode: c.mode, Registry: reg})
	}
	return out
}
