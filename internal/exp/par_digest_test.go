package exp

import (
	"bytes"
	"testing"

	"dvsync/internal/par"
	"dvsync/internal/scenarios"
	"dvsync/internal/workload"
)

// withWorkers runs fn under the given pool width and restores the default
// afterwards, so the package-level pool does not leak across tests.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	par.SetWorkers(n)
	defer par.SetWorkers(0)
	fn()
}

// renderExperiment renders one registry experiment (quick variant when
// available) to bytes under a given worker count, from a cold calibration
// cache so memoisation cannot mask a parallelism bug.
func renderExperiment(t *testing.T, id string, workers int) []byte {
	t.Helper()
	e, ok := find(id)
	if !ok {
		t.Fatalf("experiment %q not in registry", id)
	}
	resetCalibCache()
	var buf bytes.Buffer
	withWorkers(t, workers, func() {
		if e.RunQuick != nil {
			e.RunQuick(&buf)
		} else {
			e.Run(&buf)
		}
	})
	return buf.Bytes()
}

func find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// TestParallelDigestEquality is the tentpole's determinism gate: rendering
// an experiment with the serial legacy path and with an 8-wide pool must
// produce byte-identical output. "future" covers the replica fan-out and
// calibration under par.Map; "faults" covers the (class, severity) matrix
// with seeded fault injection — the scenario most sensitive to stream
// splitting mistakes; "fleet" covers the census engine's shard→merge
// order and cache-hit accounting under par.MapLocal.
func TestParallelDigestEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment rendering is slow")
	}
	for _, id := range []string{"future", "faults", "fleet"} {
		t.Run(id, func(t *testing.T) {
			serial := renderExperiment(t, id, 1)
			if len(serial) == 0 {
				t.Fatalf("experiment %q produced no output", id)
			}
			for _, workers := range []int{2, 8} {
				if got := renderExperiment(t, id, workers); !bytes.Equal(got, serial) {
					t.Errorf("workers=%d output diverged from serial (%d vs %d bytes)",
						workers, len(got), len(serial))
				}
			}
		})
	}
}

// TestCalibrationMemoised proves the process-level cache returns the exact
// calibration the search produced — and that repeat lookups hit the cache
// instead of re-running the bisection.
func TestCalibrationMemoised(t *testing.T) {
	dev := scenarios.Pixel5
	p := scenarios.BaseProfile("memo-test", dev, scenarios.Moderate, workload.Deterministic)

	resetCalibCache()
	fresh := calibrateParams(p, 300, dev, dev.Buffers, 2.0, Seed)
	if got := calibSearches.Load(); got != 1 {
		t.Fatalf("first lookup ran %d searches, want 1", got)
	}
	cached := calibrateParams(p, 300, dev, dev.Buffers, 2.0, Seed)
	if got := calibSearches.Load(); got != 1 {
		t.Errorf("second lookup ran the search again (%d searches total), want cache hit", got)
	}
	if cached != fresh {
		t.Errorf("cached calibration %+v differs from fresh %+v", cached, fresh)
	}

	// A cold cache must reproduce the identical calibration: the memo is a
	// pure shortcut, never a source of state.
	resetCalibCache()
	recomputed := calibrateParams(p, 300, dev, dev.Buffers, 2.0, Seed)
	if recomputed != fresh {
		t.Errorf("recomputed calibration %+v differs from first run %+v", recomputed, fresh)
	}
	if got := calibSearches.Load(); got != 1 {
		t.Errorf("recompute after reset ran %d searches, want 1", got)
	}

	// Distinct targets must not collide in the key space.
	other := calibrateParams(p, 300, dev, dev.Buffers, 2.5, Seed)
	if other == fresh {
		t.Errorf("different target returned identical calibration %+v; key collision", other)
	}
	if got := calibSearches.Load(); got != 2 {
		t.Errorf("distinct key ran %d searches total, want 2", got)
	}
}
