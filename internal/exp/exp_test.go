package exp

import (
	"math"
	"strings"
	"testing"

	"dvsync/internal/scenarios"
	"dvsync/internal/workload"
)

// These tests assert the *shape* of every reproduced result against the
// paper: who wins, by roughly what factor, and where the outliers fall.
// Absolute tolerances are deliberately loose — the substrate is a
// simulator, not the authors' testbed (see EXPERIMENTS.md).

func TestCalibrationHitsTarget(t *testing.T) {
	for _, target := range []float64{0.5, 2, 8, 22} {
		p := scenarios.BaseProfile("cal", scenarios.Mate60Pro, scenarios.Moderate,
			workload.Deterministic)
		reps := CalibrateReplicas(p, 600, scenarios.Mate60Pro, 4, target, Seed)
		var got float64
		for _, tr := range reps {
			got += VSyncRun(tr, scenarios.Mate60Pro, 4).FDPS()
		}
		got /= float64(len(reps))
		if math.Abs(got-target) > 0.25*target+0.3 {
			t.Errorf("target %v: calibrated replica-mean baseline %v", target, got)
		}
	}
}

func TestCalibrationZeroTarget(t *testing.T) {
	p := scenarios.BaseProfile("cal0", scenarios.Pixel5, scenarios.Scattered,
		workload.Deterministic)
	tr := CalibrateFDPS(p, 400, scenarios.Pixel5, 3, 0, Seed)
	if got := VSyncRun(tr, scenarios.Pixel5, 3).FDPS(); got > 0.7 {
		t.Errorf("zero-target calibration produced FDPS %v", got)
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11()
	// Paper: 2.04 → 0.58 / 0.25 / 0.06 (71.6 % / 87.7 % / ~97 %).
	if math.Abs(r.AvgBaseline-2.04) > 0.15 {
		t.Errorf("baseline avg %v, want ≈2.04", r.AvgBaseline)
	}
	red := r.Reductions()
	if red[4] < 55 || red[4] > 85 {
		t.Errorf("4-buffer reduction %v%%, paper 71.6%%", red[4])
	}
	if red[5] < 75 || red[5] > 95 {
		t.Errorf("5-buffer reduction %v%%, paper 87.7%%", red[5])
	}
	if red[7] < 88 {
		t.Errorf("7-buffer reduction %v%%, paper ≈97%%", red[7])
	}
	if !(r.AvgDVSync[4] > r.AvgDVSync[5] && r.AvgDVSync[5] > r.AvgDVSync[7]) {
		t.Error("more buffers must eliminate more drops")
	}
	// §6.1's analysis: Walmart fully fixed, QQMusic resists even 7 buffers.
	var walmart, qqmusic FDPSRow
	for _, row := range r.Rows {
		switch row.Name {
		case "Walmart":
			walmart = row
		case "QQMusic":
			qqmusic = row
		}
	}
	if walmart.DVSync[5] > 0.25*walmart.Baseline {
		t.Errorf("Walmart should be nearly eliminated at 5 buffers: %v of %v",
			walmart.DVSync[5], walmart.Baseline)
	}
	if qqmusic.DVSync[7] < 0.3*qqmusic.Baseline {
		t.Errorf("QQMusic should resist even 7 buffers: %v of %v",
			qqmusic.DVSync[7], qqmusic.Baseline)
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12()
	if math.Abs(r.AvgBaseline-scenarios.PaperFig12[0]) > 1.0 {
		t.Errorf("baseline avg %v, paper %v", r.AvgBaseline, scenarios.PaperFig12[0])
	}
	if red := r.Reductions()[4]; red < 65 || red > 95 {
		t.Errorf("reduction %v%%, paper 83.5%%", red)
	}
}

func TestFig13Shape(t *testing.T) {
	a := Fig13Mate40()
	if red := a.Reductions()[4]; red < 50 || red > 88 {
		t.Errorf("Mate 40 reduction %v%%, paper 69.4%%", red)
	}
	b := Fig13Mate60()
	if red := b.Reductions()[4]; red < 48 || red > 85 {
		t.Errorf("Mate 60 reduction %v%%, paper 66.4%%", red)
	}
}

func TestFig14Shape(t *testing.T) {
	r := Fig14()
	if math.Abs(r.AvgBaseline-0.79) > 0.12 {
		t.Errorf("games baseline %v, paper 0.79", r.AvgBaseline)
	}
	red := r.Reductions()
	if red[4] < 45 || red[5] < 70 {
		t.Errorf("reductions 4:%v%% 5:%v%%, paper 68.4%%/87.3%%", red[4], red[5])
	}
	if red[5] <= red[4] {
		t.Error("5 buffers must beat 4")
	}
}

func TestFig15Shape(t *testing.T) {
	r := Fig15()
	paper := map[string][2]float64{
		"Google Pixel 5": {45.8, 31.2},
		"Mate 40 Pro":    {32.2, 22.3},
		"Mate 60 Pro":    {24.2, 16.8},
	}
	for dev, want := range paper {
		got := r.Rows[dev]
		// Baselines should land within ~20 % of the measured devices.
		if math.Abs(got[0]-want[0]) > 0.2*want[0] {
			t.Errorf("%s VSync latency %v, paper %v", dev, got[0], want[0])
		}
		red := Reduction(got[0], got[1])
		if red < 22 || red > 42 {
			t.Errorf("%s latency reduction %v%%, paper ≈31%%", dev, red)
		}
	}
	// Higher refresh rate ⇒ lower absolute latency (period-scaled).
	if !(r.Rows["Google Pixel 5"][0] > r.Rows["Mate 40 Pro"][0] &&
		r.Rows["Mate 40 Pro"][0] > r.Rows["Mate 60 Pro"][0]) {
		t.Error("latency should fall with refresh rate")
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6()
	// Figure 6: "most frames wait inside the buffer queue" — stuffing
	// dominates direct composition.
	if r.StuffedShare < 0.5 {
		t.Errorf("stuffed share %v, paper shows stuffing dominant", r.StuffedShare)
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7()
	if r.MaxDisplacementPx < 250 || r.MaxDisplacementPx > 600 {
		t.Errorf("max displacement %v px, paper ≈400 px", r.MaxDisplacementPx)
	}
	if len(r.Table.Rows) != 17 {
		t.Errorf("rows = %d, figure shows 17 frames", len(r.Table.Rows))
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1()
	if r.WithinOnePeriod < 0.72 || r.WithinOnePeriod > 0.85 {
		t.Errorf("within one period %v, paper 78.3%%", r.WithinOnePeriod)
	}
	if r.BeyondTriple < 0.01 || r.BeyondTriple > 0.08 {
		t.Errorf("beyond triple buffering %v, paper ≈5%%", r.BeyondTriple)
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9()
	if math.Abs(r.DecoupledShareOblivious-0.85) > 0.02 {
		t.Errorf("oblivious share %v, want 0.85", r.DecoupledShareOblivious)
	}
	if math.Abs(r.DecoupledShareAware-0.95) > 0.02 {
		t.Errorf("aware share %v, want 0.95", r.DecoupledShareAware)
	}
}

func TestFig10Shape(t *testing.T) {
	r := Fig10()
	if r.VSyncJanks < 2 {
		t.Errorf("VSync janks %d, Figure 10a shows a run of janks", r.VSyncJanks)
	}
	if r.DVSyncJanks != 0 {
		t.Errorf("D-VSync janks %d, Figure 10b is perfectly smooth", r.DVSyncJanks)
	}
	if !strings.Contains(r.Timeline, "J") {
		t.Error("timeline should show the janks")
	}
}

func TestFig16Shape(t *testing.T) {
	r := Fig16()
	if r.DVSyncFDPS > 0.25*r.BaselineFDPS {
		t.Errorf("map app FDPS %v of %v; paper eliminates 100%%", r.DVSyncFDPS, r.BaselineFDPS)
	}
	if r.LatencyReductionPct < 22 || r.LatencyReductionPct > 42 {
		t.Errorf("latency reduction %v%%, paper 30.2%%", r.LatencyReductionPct)
	}
	if r.ZDPMeanNs <= 0 || r.ZDPMeanNs > 151_600 {
		t.Errorf("ZDP cost %v ns; must be positive and below the paper's Java 151.6 µs", r.ZDPMeanNs)
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2()
	if r.AvgReductionPct < 55 || r.AvgReductionPct > 95 {
		t.Errorf("stutter reduction %v%%, paper 72.3%%", r.AvgReductionPct)
	}
	// The shopping task resists (paper: 7 %); the news tasks nearly vanish.
	shop := r.Rows["shopping-products"]
	if shop[1] < shop[0]/3 {
		t.Errorf("shopping task should resist: %d → %d", shop[0], shop[1])
	}
	news := r.Rows["cold-start-news-swipe"]
	if news[1] > news[0]/3 {
		t.Errorf("news task should nearly vanish: %d → %d", news[0], news[1])
	}
}

func TestChromiumShape(t *testing.T) {
	r := Chromium()
	if math.Abs(r.AvgBaseline-1.47) > 0.25 {
		t.Errorf("baseline %v, paper 1.47", r.AvgBaseline)
	}
	if red := r.Reductions()[4]; red < 80 {
		t.Errorf("reduction %v%%, paper 94.3%%", red)
	}
}

func TestPowerShape(t *testing.T) {
	r := Power()
	if r.EnergyIncreasePct <= 0 || r.EnergyIncreasePct > 1.5 {
		t.Errorf("energy increase %v%%, paper 0.13–0.37%%", r.EnergyIncreasePct)
	}
	if r.EnergyIncreaseZDPPct < r.EnergyIncreasePct {
		t.Error("ZDP must cost extra energy")
	}
	if math.Abs(r.InstrIncreasePct-0.52) > 0.3 {
		t.Errorf("instruction increase %v%%, paper 0.52%%", r.InstrIncreasePct)
	}
	if math.Abs(r.InstrVSyncM-10.793) > 2.5 {
		t.Errorf("per-frame instructions %vM, paper 10.793M", r.InstrVSyncM)
	}
}

func TestCostsShape(t *testing.T) {
	r := Costs()
	if r.OverheadPerFrameUs != 102.6 {
		t.Errorf("overhead %v µs, paper 102.6 µs", r.OverheadPerFrameUs)
	}
	if r.OverheadShareOfPeriod > 0.02 {
		t.Errorf("overhead share %v, paper ≈1.2%% of a 120 Hz period", r.OverheadShareOfPeriod)
	}
	if r.AndroidExtraMB < 8 || r.AndroidExtraMB > 12 {
		t.Errorf("Android extra memory %v MB, paper ≈10 MB", r.AndroidExtraMB)
	}
	if r.OHExtraMB != 0 {
		t.Errorf("OpenHarmony extra memory %v MB, paper reports none", r.OHExtraMB)
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5()
	// Figure 5's summary: 3.4 % / 3.5 % / 6.3 % / 7.0 %.
	want := map[string]float64{
		"Google Pixel 5 (AOSP 60Hz, GLES)": 3.4,
		"Mate 40 Pro (OH 90Hz, GLES)":      3.5,
		"Mate 60 Pro (OH 120Hz, GLES)":     6.3,
		"Mate 60 Pro (OH 120Hz, Vulkan)":   7.0,
	}
	for label, w := range want {
		got := r.AvgPercent[label]
		if math.Abs(got-w) > 1.0 {
			t.Errorf("%s: FD%% %v, paper %v", label, got, w)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig1", "fig5", "fig6", "fig7",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"costs", "chromium", "power", "fig3", "census", "future", "ablations"} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, ok := Find("fig11"); !ok {
		t.Error("Find failed")
	}
	if _, ok := Find("nonsense"); ok {
		t.Error("Find should miss")
	}
}

func TestDeterministicReproduction(t *testing.T) {
	a, b := Fig12(), Fig12()
	if a.AvgBaseline != b.AvgBaseline || a.AvgDVSync[4] != b.AvgDVSync[4] {
		t.Error("experiments must be fully deterministic")
	}
}

func TestAblatePreRenderLimitShape(t *testing.T) {
	r := AblatePreRenderLimit()
	// More pre-rendering absorbs more janks, monotonically.
	for l := 1; l < 4; l++ {
		if r.FDPS[l] < r.FDPS[l+1] {
			t.Errorf("limit %d FDPS %v < limit %d FDPS %v", l, r.FDPS[l], l+1, r.FDPS[l+1])
		}
	}
	if r.FDPS[1] < 2*r.FDPS[4] {
		t.Error("the pre-render window should matter substantially")
	}
}

func TestAblateDTVCalibrationShape(t *testing.T) {
	r := AblateDTVCalibration()
	// §5.1: without calibration the virtual clock drifts off the skewed
	// panel and error accumulates; with it, error stays near the jitter.
	if r.MeanAbsErrMs[0] < 5*r.MeanAbsErrMs[4] {
		t.Errorf("calibration off (%v ms) should be far worse than every-4 (%v ms)",
			r.MeanAbsErrMs[0], r.MeanAbsErrMs[4])
	}
	if r.MeanAbsErrMs[4] > 0.5 {
		t.Errorf("calibrated error %v ms should stay near the 0.08 ms jitter", r.MeanAbsErrMs[4])
	}
}

func TestAblateIPLPredictorsShape(t *testing.T) {
	r := AblateIPLPredictors()
	// Linear fitting must beat holding the last sample on every gesture
	// (the entire point of IPL, §4.6); the quadratic should win on the
	// decelerating fling.
	for _, g := range []string{"swipe 1500 px/s", "fling (decelerating)", "pinch with tremor"} {
		if r.ErrPx[g+"/linear"] >= r.ErrPx[g+"/last"] {
			t.Errorf("%s: linear (%v) should beat last-value (%v)",
				g, r.ErrPx[g+"/linear"], r.ErrPx[g+"/last"])
		}
	}
	if r.ErrPx["fling (decelerating)/quadratic"] >= r.ErrPx["fling (decelerating)/linear"] {
		t.Error("quadratic should capture fling deceleration better than linear")
	}
}

func TestAblateVSyncPipelineDepthShape(t *testing.T) {
	r := AblateVSyncPipelineDepth()
	// Depth 1 (double buffering) janks hardest; deeper pipelines trade
	// latency for drops — the VSync dilemma D-VSync escapes.
	if r.FDPS[1] <= r.FDPS[2] {
		t.Error("double buffering should drop more frames than depth 2")
	}
	if r.LatencyMs[4] <= r.LatencyMs[2] {
		t.Error("deeper passive pipelines must pay latency")
	}
}

func TestAblateDTVPacingShape(t *testing.T) {
	r := AblateDTVPacing()
	if r.WithDTV > r.WithExecTime/4 {
		t.Errorf("DTV pacing error %v should be far below naive %v (§4.4)",
			r.WithDTV, r.WithExecTime)
	}
}

func TestFutureShape(t *testing.T) {
	r := Future()
	// The same absolute app load degrades super-linearly as the panel
	// speeds up (§3.1's gap), and D-VSync keeps absorbing most of it.
	if r.BaselineFDPS[165] < 2*r.BaselineFDPS[120] {
		t.Errorf("165 Hz baseline %v should far exceed 120 Hz %v",
			r.BaselineFDPS[165], r.BaselineFDPS[120])
	}
	for _, hz := range []int{90, 120, 144, 165} {
		if r.ReductionPct[hz] < 50 {
			t.Errorf("%d Hz reduction %v%%, cushion should keep most drops away",
				hz, r.ReductionPct[hz])
		}
	}
}

func TestAblateConsumerPolicyShape(t *testing.T) {
	r := AblateConsumerPolicy()
	vFIFO, vDrop := r.Rows["VSync/FIFO"], r.Rows["VSync/drop-stale"]
	dFIFO, dDrop := r.Rows["D-VSync/FIFO"], r.Rows["D-VSync/drop-stale"]
	// Stale dropping trims the VSync path's latency by discarding frames…
	if vDrop[1] >= vFIFO[1] {
		t.Error("drop-stale should reduce VSync latency")
	}
	if vDrop[2] == 0 {
		t.Error("drop-stale must discard frames on the VSync path")
	}
	// …but it destroys D-VSync's accumulated cushion entirely.
	if dDrop[0] <= dFIFO[0] {
		t.Error("drop-stale should wreck D-VSync's jank absorption")
	}
	// D-VSync with FIFO dominates VSync with drop-stale on BOTH axes —
	// the design point the paper picks.
	if !(dFIFO[0] < vDrop[0] && dFIFO[1] <= vDrop[1]+1) {
		t.Errorf("D-VSync/FIFO (%v FDPS, %v ms) should dominate VSync/drop-stale (%v, %v)",
			dFIFO[0], dFIFO[1], vDrop[0], vDrop[1])
	}
}

func TestCensusShape(t *testing.T) {
	r := Census()
	if r.VSyncCases < 15 || r.VSyncCases > 45 {
		t.Errorf("VSync census %d of 75, paper reports 20-29", r.VSyncCases)
	}
	if r.DVSyncCases >= r.VSyncCases/2 {
		t.Errorf("D-VSync should cure most cases: %d vs %d", r.DVSyncCases, r.VSyncCases)
	}
	if r.JankReductionPct < 55 {
		t.Errorf("census jank reduction %v%%, paper's headline is 72.7%%", r.JankReductionPct)
	}
}

func TestAblateAppOffsetShape(t *testing.T) {
	r := AblateAppOffset()
	// Later triggers sample fresher input…
	if r.InputAgeMs[60] >= r.InputAgeMs[0] {
		t.Errorf("input age should fall with offset: %v vs %v",
			r.InputAgeMs[60], r.InputAgeMs[0])
	}
	// …but shrink the deadline, so drops rise.
	if r.FDPS[60] <= r.FDPS[0] {
		t.Errorf("FDPS should rise with offset: %v vs %v", r.FDPS[60], r.FDPS[0])
	}
}
