package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"dvsync/internal/par"
	"dvsync/internal/telemetry"
)

// digestMetricsCells exports every telemetry cell of the given experiments
// through the par worker pool and returns one digest over the Prometheus
// and JSON bytes of each.
func digestMetricsCells(t *testing.T, ids []string) string {
	t.Helper()
	exports := par.Map(len(ids), func(i int) []byte {
		var all bytes.Buffer
		for _, cell := range MetricsCells(ids[i]) {
			all.WriteString(cell.Name)
			all.WriteByte('\n')
			if err := cell.Registry.WritePrometheus(&all); err != nil {
				t.Errorf("%s: %v", cell.Name, err)
				return nil
			}
			if err := cell.Registry.WriteJSON(&all); err != nil {
				t.Errorf("%s: %v", cell.Name, err)
				return nil
			}
		}
		return all.Bytes()
	})
	h := sha256.New()
	for _, b := range exports {
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// TestMetricsCellDeterminismAcrossWorkers: the -metrics-dir exports are
// byte-identical whether the cells run serially or on a 4-wide worker
// pool — the same contract the trace cells and experiment tables honour.
func TestMetricsCellDeterminismAcrossWorkers(t *testing.T) {
	ids := []string{"fig7", "fig14"} // one 60 Hz cell pair, one 120 Hz
	defer par.SetWorkers(0)

	par.SetWorkers(1)
	serial := digestMetricsCells(t, ids)
	par.SetWorkers(4)
	wide := digestMetricsCells(t, ids)

	if serial != wide {
		t.Errorf("metrics-cell exports diverge across worker widths: workers=1 %s, workers=4 %s",
			serial, wide)
	}
}

// TestMetricsCellsShape: one vsync and one dvsync cell per experiment,
// each with presented frames counted and at least one sampled row.
func TestMetricsCellsShape(t *testing.T) {
	cells := MetricsCells("fig7")
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Name != "fig7-vsync" || cells[1].Name != "fig7-dvsync" {
		t.Fatalf("cell names = %s, %s", cells[0].Name, cells[1].Name)
	}
	for _, c := range cells {
		snap := c.Registry.Snapshot()
		if len(snap.Series.Rows) == 0 {
			t.Errorf("%s: no sampled rows", c.Name)
		}
		presented := -1.0
		for _, m := range snap.Metrics {
			if m.Name == telemetry.MetricFramesPresented {
				presented = m.Value
			}
		}
		if presented <= 0 {
			t.Errorf("%s: frames presented = %v, want > 0", c.Name, presented)
		}
	}
}
