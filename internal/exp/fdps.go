package exp

import (
	"strconv"

	"dvsync/internal/ipl"
	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
)

// FDPSRow is one scenario's outcome across configurations.
type FDPSRow struct {
	// Name labels the scenario.
	Name string
	// Baseline is the simulated VSync FDPS (calibrated to the paper).
	Baseline float64
	// DVSync maps buffer count → simulated D-VSync FDPS.
	DVSync map[int]float64
}

// FDPSResult aggregates a whole figure.
type FDPSResult struct {
	// Table is the printable figure.
	Table *report.Table
	// Rows hold per-scenario outcomes.
	Rows []FDPSRow
	// AvgBaseline and AvgDVSync are column averages.
	AvgBaseline float64
	AvgDVSync   map[int]float64
}

// Reductions returns the percentage FDPS reduction per buffer count.
func (r *FDPSResult) Reductions() map[int]float64 {
	out := make(map[int]float64, len(r.AvgDVSync))
	for b, v := range r.AvgDVSync {
		out[b] = Reduction(r.AvgBaseline, v)
	}
	return out
}

// Fig11 regenerates Figure 11: FDPS for the 25 apps on Google Pixel 5 under
// VSync (3 buffers) and D-VSync with 4, 5 and 7 buffers.
func Fig11() *FDPSResult {
	res := &FDPSResult{
		Table: &report.Table{
			Title:   "Figure 11 — FDPS on Google Pixel 5 (60 Hz), 25 apps",
			Note:    "VSync baseline calibrated to the paper's measured bars; D-VSync values are simulated outcomes",
			Columns: []string{"app", "VSync 3 bufs", "D-VSync 4 bufs", "D-VSync 5 bufs", "D-VSync 7 bufs"},
		},
		AvgDVSync: map[int]float64{},
	}
	dev := scenarios.Pixel5
	apps := scenarios.Apps()
	// One par.Map job per app: each job calibrates and measures its own
	// scenario, the table is assembled serially in catalog order below.
	rows := par.Map(len(apps), func(i int) FDPSRow {
		app := apps[i]
		reps := CalibrateReplicas(app.Profile(), scenarios.AppFrames, dev, dev.Buffers,
			app.PaperVSyncFDPS, Seed)
		row := FDPSRow{Name: app.Name, DVSync: map[int]float64{}}
		row.Baseline = avgFDPS(reps, VSyncConfig(dev, dev.Buffers))
		for _, b := range scenarios.AppBufferSweep {
			row.DVSync[b] = avgFDPS(reps, DVSyncConfig(dev, b))
		}
		return row
	})
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name, row.Baseline, row.DVSync[4], row.DVSync[5], row.DVSync[7])
	}
	res.finishAverages(scenarios.AppBufferSweep)
	res.Table.AddRow("average", res.AvgBaseline, res.AvgDVSync[4], res.AvgDVSync[5], res.AvgDVSync[7])
	return res
}

func (r *FDPSResult) finishAverages(buffers []int) {
	var base []float64
	per := map[int][]float64{}
	for _, row := range r.Rows {
		base = append(base, row.Baseline)
		for _, b := range buffers {
			per[b] = append(per[b], row.DVSync[b])
		}
	}
	r.AvgBaseline = Average(base)
	if r.AvgDVSync == nil {
		r.AvgDVSync = map[int]float64{}
	}
	for _, b := range buffers {
		r.AvgDVSync[b] = Average(per[b])
	}
}

// caseFigure runs a Figure 12/13-style panel: VSync vs D-VSync at the
// device's default buffer count over a set of OS use cases.
func caseFigure(title string, dev scenarios.Device, cases []scenarios.CaseRun) *FDPSResult {
	res := &FDPSResult{
		Table: &report.Table{
			Title: title,
			Note:  "baseline calibrated to the paper's bars; D-VSync simulated",
			Columns: []string{"use case", "VSync " + strconv.Itoa(dev.Buffers) + " bufs",
				"D-VSync " + strconv.Itoa(dev.Buffers) + " bufs"},
		},
		AvgDVSync: map[int]float64{},
	}
	rows := par.Map(len(cases), func(i int) FDPSRow {
		c := cases[i]
		reps := CalibrateReplicas(c.Profile(dev), scenarios.UseCaseFrames, dev, dev.Buffers,
			c.PaperVSyncFDPS, Seed)
		row := FDPSRow{Name: c.Case.Abbrev, DVSync: map[int]float64{}}
		row.Baseline = avgFDPS(reps, VSyncConfig(dev, dev.Buffers))
		row.DVSync[dev.Buffers] = avgFDPS(reps, DVSyncConfig(dev, dev.Buffers))
		return row
	})
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name, row.Baseline, row.DVSync[dev.Buffers])
	}
	res.finishAverages([]int{dev.Buffers})
	res.Table.AddRow("average", res.AvgBaseline, res.AvgDVSync[dev.Buffers])
	return res
}

// Fig12 regenerates Figure 12: the 29 OS use cases with frame drops on
// Mate 60 Pro under the Vulkan backend.
func Fig12() *FDPSResult {
	return caseFigure("Figure 12 — FDPS on Mate 60 Pro (120 Hz), Vulkan backend, 29 OS use cases",
		scenarios.Mate60Pro, scenarios.Mate60VulkanCases())
}

// Fig13Mate40 regenerates the left panel of Figure 13 (Mate 40 Pro, GLES).
func Fig13Mate40() *FDPSResult {
	return caseFigure("Figure 13 (left) — FDPS on Mate 40 Pro (90 Hz), GLES, 9 OS use cases",
		scenarios.Mate40Pro, scenarios.Mate40GLESCases())
}

// Fig13Mate60 regenerates the right panel of Figure 13 (Mate 60 Pro, GLES).
func Fig13Mate60() *FDPSResult {
	return caseFigure("Figure 13 (right) — FDPS on Mate 60 Pro (120 Hz), GLES, 20 OS use cases",
		scenarios.Mate60Pro, scenarios.Mate60GLESCases())
}

// Fig14 regenerates Figure 14: the 15 mobile-game simulations, VSync with 3
// buffers versus decoupling-aware D-VSync with 4 and 5. Games bypass the OS
// UI framework, so their frames ride the aware channel with a predictor
// registered (§6.1, §4.5).
func Fig14() *FDPSResult {
	res := &FDPSResult{
		Table: &report.Table{
			Title:   "Figure 14 — FDPS for 15 mobile games on Mate 60 Pro (game-capped rates)",
			Note:    "decoupling-aware simulation over recorded-style traces, as in §6.1",
			Columns: []string{"game", "rate", "VSync 3 bufs", "D-VSync 4 bufs", "D-VSync 5 bufs"},
		},
		AvgDVSync: map[int]float64{},
	}
	games := scenarios.Games()
	rows := par.Map(len(games), func(i int) FDPSRow {
		g := games[i]
		dev := scenarios.Mate60Pro
		dev.RefreshHz = g.RateHz
		reps := CalibrateReplicas(g.Profile(), scenarios.GameFrames, dev, 3, g.PaperVSyncFDPS, Seed)
		row := FDPSRow{Name: g.Name, DVSync: map[int]float64{}}
		row.Baseline = avgFDPS(reps, VSyncConfig(dev, 3))
		aware := func(c *sim.Config) { c.Predictor = ipl.Linear{} }
		for _, b := range []int{4, 5} {
			row.DVSync[b] = avgFDPS(reps, DVSyncConfig(dev, b, aware))
		}
		return row
	})
	for i, row := range rows {
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name, strconv.Itoa(games[i].RateHz)+" Hz", row.Baseline, row.DVSync[4], row.DVSync[5])
	}
	res.finishAverages([]int{4, 5})
	res.Table.AddRow("average", "", res.AvgBaseline, res.AvgDVSync[4], res.AvgDVSync[5])
	return res
}

// Chromium regenerates the §6.6 case study: flinging on three pages with
// the decoupled compositor.
func Chromium() *FDPSResult {
	res := &FDPSResult{
		Table: &report.Table{
			Title:   "§6.6 — Chromium compositor flings on Mate 60 Pro",
			Note:    "compositor pre-renders through the decoupling-aware APIs",
			Columns: []string{"page", "VSync", "D-VSync"},
		},
		AvgDVSync: map[int]float64{},
	}
	dev := scenarios.Mate60Pro
	pages := scenarios.BrowserPages()
	rows := par.Map(len(pages), func(i int) FDPSRow {
		p := pages[i]
		reps := CalibrateReplicas(p.Profile(), scenarios.BrowserFrames, dev, dev.Buffers,
			p.PaperVSyncFDPS, Seed)
		row := FDPSRow{Name: p.Name, DVSync: map[int]float64{}}
		row.Baseline = avgFDPS(reps, VSyncConfig(dev, dev.Buffers))
		row.DVSync[dev.Buffers] = avgFDPS(reps, DVSyncConfig(dev, dev.Buffers,
			func(c *sim.Config) { c.Predictor = ipl.Linear{} }))
		return row
	})
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name, row.Baseline, row.DVSync[dev.Buffers])
	}
	res.finishAverages([]int{dev.Buffers})
	res.Table.AddRow("average", res.AvgBaseline, res.AvgDVSync[dev.Buffers])
	return res
}
