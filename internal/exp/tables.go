package exp

import (
	"strconv"
	"strings"

	"dvsync/internal/ipl"
	"dvsync/internal/metrics"
	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// Table1 renders the platform-configuration table.
func Table1() *report.Table {
	t := &report.Table{
		Title:   "Table 1 — platform configuration",
		Columns: []string{"device", "release", "OS", "backend", "screen", "refresh rate"},
	}
	for _, d := range scenarios.Devices() {
		var backends []string
		for _, b := range d.Backends {
			backends = append(backends, string(b))
		}
		t.AddRow(d.Name, d.Release, d.OS, strings.Join(backends, "/"),
			strconv.Itoa(d.Width)+" x "+strconv.Itoa(d.Height),
			strconv.Itoa(d.RefreshHz)+"Hz / "+report.FormatFloat(d.Period().Milliseconds())+"ms")
	}
	return t
}

// Table2Result carries the UX-stutter outcome.
type Table2Result struct {
	Table *report.Table
	// Rows maps task name → (VSync stutters, D-VSync stutters).
	Rows map[string][2]int
	// AvgReductionPct averages per-task stutter reductions.
	AvgReductionPct float64
}

// calibrateStutters tunes a task's key-frame rate until the simulated VSync
// run produces the paper's perceived-stutter count.
func calibrateStutters(task scenarios.UXTask, dev scenarios.Device) *workload.Trace {
	cfg := metrics.DefaultStutterConfig()
	measure := func(tr *workload.Trace) float64 {
		r := VSyncRun(tr, dev, dev.Buffers)
		return float64(metrics.CountStutters(r.JankEvents(), cfg))
	}
	gen := func(ratio float64) *workload.Trace {
		p := scenarios.BaseProfile(task.Name, dev, task.Tail, workload.Deterministic)
		p.LongRatio = ratio
		var scenes []*workload.Trace
		for i := 0; i < task.Scenes; i++ {
			scenes = append(scenes, p.Generate(task.SceneFrames, Seed+int64(i)*7919))
		}
		return workload.Concat(task.Name, scenes...)
	}
	ratio := bisect(func(r float64) float64 { return measure(gen(r)) },
		float64(task.PaperVSyncStutters), 0.001, 0.30)
	return gen(ratio)
}

// Table2 regenerates Table 2: perceived stutters across the eight
// professional-UX composite tasks on Mate 60 Pro, detected with the
// industrial stutter criteria over the simulated jank streams.
func Table2() *Table2Result {
	res := &Table2Result{
		Table: &report.Table{
			Title: "Table 2 — perceived stutters in UX evaluation tasks (Mate 60 Pro)",
			Note: "stutter = camera-confirmable jank pattern: a key-frame jank or a run of " +
				"consecutive janks; VSync calibrated to the paper's counts",
			Columns: []string{"task", "VSync", "D-VSync", "reduction %"},
		},
		Rows: map[string][2]int{},
	}
	dev := scenarios.Mate60Pro
	cfg := metrics.DefaultStutterConfig()
	tasks := scenarios.UXTasks()
	counts := par.Map(len(tasks), func(i int) [2]int {
		tr := calibrateStutters(tasks[i], dev)
		v := VSyncRun(tr, dev, dev.Buffers)
		d := DVSyncRun(tr, dev, dev.Buffers)
		return [2]int{metrics.CountStutters(v.JankEvents(), cfg),
			metrics.CountStutters(d.JankEvents(), cfg)}
	})
	var reds []float64
	for i, c := range counts {
		vs, ds := c[0], c[1]
		res.Rows[tasks[i].Name] = [2]int{vs, ds}
		red := Reduction(float64(vs), float64(ds))
		reds = append(reds, red)
		res.Table.AddRow(tasks[i].Name, strconv.Itoa(vs), strconv.Itoa(ds), red)
	}
	res.AvgReductionPct = Average(reds)
	res.Table.AddRow("average", "", "", res.AvgReductionPct)
	return res
}

// CostsResult carries the §6.4 overhead accounting.
type CostsResult struct {
	Table *report.Table
	// OverheadPerFrameUs is the modelled FPE+DTV cost per frame.
	OverheadPerFrameUs float64
	// OverheadShareOfPeriod is that cost as a share of a 120 Hz period.
	OverheadShareOfPeriod float64
	// AndroidExtraMB is the added buffer memory on Android (4 vs 3).
	AndroidExtraMB float64
	// OHExtraMB is the added buffer memory on OpenHarmony (4 vs 4).
	OHExtraMB float64
}

// Costs regenerates the §6.4 execution-time and memory accounting.
func Costs() *CostsResult {
	res := &CostsResult{Table: &report.Table{
		Title:   "§6.4 — costs of D-VSync",
		Columns: []string{"cost", "value"},
	}}
	res.OverheadPerFrameUs = float64(sim.DefaultDVSyncOverhead) / float64(simtime.Microsecond)
	p120 := simtime.PeriodForHz(120)
	res.OverheadShareOfPeriod = float64(sim.DefaultDVSyncOverhead) / float64(p120)

	perBuf := func(dev scenarios.Device) float64 {
		return float64(dev.Width) * float64(dev.Height) * 4 / (1 << 20)
	}
	res.AndroidExtraMB = perBuf(scenarios.Pixel5) * 1 // 4 buffers vs triple buffering
	res.OHExtraMB = 0                                 // render service already uses 4 (§6.4)

	res.Table.AddRow("FPE+DTV execution per frame (µs)", res.OverheadPerFrameUs)
	res.Table.AddRow("share of a 120 Hz period (%)", 100*res.OverheadShareOfPeriod)
	res.Table.AddRow("Pixel 5 buffer size (MB)", perBuf(scenarios.Pixel5))
	res.Table.AddRow("Mate 60 Pro buffer size (MB)", perBuf(scenarios.Mate60Pro))
	res.Table.AddRow("Android extra memory, D-VSync 4 bufs (MB/app)", res.AndroidExtraMB)
	res.Table.AddRow("OpenHarmony extra memory (MB)", res.OHExtraMB)
	return res
}

// PowerResult carries the §6.7 outcome.
type PowerResult struct {
	Table *report.Table
	// EnergyIncreasePct is the end-to-end power increase for the map-app
	// animation without ZDP.
	EnergyIncreasePct float64
	// EnergyIncreaseZDPPct adds the input curve fitting on 10 % of frames.
	EnergyIncreaseZDPPct float64
	// InstrVSyncM / InstrDVSyncM are render-service mega-instructions per
	// frame over the OS use cases with D-VSync off/on.
	InstrVSyncM, InstrDVSyncM float64
	// InstrIncreasePct is the relative instruction overhead.
	InstrIncreasePct float64
}

// Power regenerates §6.7: end-to-end energy on the map-app animation and
// the CPU-instruction accounting over the OS use cases on Mate 60 Pro.
func Power() *PowerResult {
	res := &PowerResult{Table: &report.Table{
		Title: "§6.7 — power consumption",
		Note: "energy model charges active power for executed pipeline work over the display " +
			"window; D-VSync additionally renders the frames VSync would have dropped",
		Columns: []string{"metric", "VSync", "D-VSync", "increase %"},
	}}
	model := metrics.DefaultPowerModel()
	dev := scenarios.Pixel5
	app := scenarios.TheMapApp()
	tr := CalibrateFDPS(app.Profile(), app.ZoomFrames, dev, dev.Buffers,
		app.PaperVSyncFDPS, Seed)
	v := VSyncRun(tr, dev, dev.Buffers)
	d := DVSyncRun(tr, dev, app.Buffers)
	// The paper's power test runs a fixed 30-minute wall window in both
	// configurations; energy therefore differs only in executed work (the
	// frames VSync would have dropped, plus FPE/DTV bookkeeping).
	window := v.WindowMs()
	if d.WindowMs() > window {
		window = d.WindowMs()
	}
	ev := model.EnergyJoules(v.WorkMs(), window)
	ed := model.EnergyJoules(d.WorkMs(), window)
	res.EnergyIncreasePct = metrics.PercentIncrease(ev, ed)
	// ZDP variant: 10 % of frames additionally run the paper's measured
	// 151.6 µs curve fit.
	zdpMs := 0.10 * float64(len(d.Presented)) * 151.6 / 1000
	edz := model.EnergyJoules(d.WorkMs()+zdpMs, window)
	res.EnergyIncreaseZDPPct = metrics.PercentIncrease(ev, edz)
	res.Table.AddRow("map animation energy (J)", ev, ed, res.EnergyIncreasePct)
	res.Table.AddRow("  + ZDP on 10% of frames (J)", ev, edz, res.EnergyIncreaseZDPPct)

	// Instruction proxy over the Mate 60 Pro GLES use cases.
	m60 := scenarios.Mate60Pro
	m60Cases := scenarios.Mate60GLESCases()
	type workRow struct {
		rsV, rsD, ovD    float64
		framesV, framesD int
	}
	works := par.Map(len(m60Cases), func(i int) workRow {
		ctr := CalibrateFDPS(m60Cases[i].Profile(m60), scenarios.UseCaseFrames, m60, m60.Buffers,
			m60Cases[i].PaperVSyncFDPS, Seed)
		rv := VSyncRun(ctr, m60, m60.Buffers)
		rd := DVSyncRun(ctr, m60, m60.Buffers)
		return workRow{
			rsV: rv.ExecutedWork.Milliseconds(), framesV: len(rv.Presented),
			rsD: rd.ExecutedWork.Milliseconds(), ovD: rd.OverheadWork.Milliseconds(),
			framesD: len(rd.Presented),
		}
	})
	var rsV, rsD, ovD float64
	var framesV, framesD int
	for _, wr := range works {
		rsV += wr.rsV
		framesV += wr.framesV
		rsD += wr.rsD
		ovD += wr.ovD
		framesD += wr.framesD
	}
	// The §6.7 instruction comparison isolates the architectural overhead:
	// the same rendering work per frame plus the FPE/DTV/API logic running
	// on the little cores. (The extra frames D-VSync renders instead of
	// dropping are charged in the energy rows above.)
	_ = rsD
	perFrame := rsV / float64(framesV)
	res.InstrVSyncM = model.RenderInstructions(perFrame) / 1e6
	res.InstrDVSyncM = (model.RenderInstructions(perFrame) +
		model.LittleInstructions(ovD/float64(framesD))) / 1e6
	res.InstrIncreasePct = metrics.PercentIncrease(res.InstrVSyncM, res.InstrDVSyncM)
	res.Table.AddRow("instructions per frame (M, OS use cases)",
		res.InstrVSyncM, res.InstrDVSyncM, res.InstrIncreasePct)
	return res
}

// Fig3 renders the pixels-per-second trend (Figure 3).
func Fig3() *report.Table {
	t := &report.Table{
		Title:   "Figure 3 — pixels to render per second across flagship devices",
		Note:    "growth max/min = " + report.FormatFloat(scenarios.TrendGrowth()) + "x",
		Columns: []string{"series", "model", "year", "pixels/second"},
	}
	for _, p := range scenarios.Trend() {
		t.AddRow(p.Series, p.Model, strconv.Itoa(p.Year), float64(p.PixelsPerSecond()))
	}
	return t
}

// Fig9Result validates the D-VSync applicability scope.
type Fig9Result struct {
	Table *report.Table
	// DecoupledShareAware is the fraction of frames decoupled when the app
	// registers an IPL predictor; Oblivious without one.
	DecoupledShareAware, DecoupledShareOblivious float64
}

// Fig9 regenerates Figure 9: the frame-scope breakdown (85 % deterministic
// animations, 10 % predictable interactions, 5 % realtime), validated by
// routing a mixed-class stream through the runtime controller.
func Fig9() *Fig9Result {
	res := &Fig9Result{Table: &report.Table{
		Title:   "Figure 9 — the scope of the D-VSync approach",
		Columns: []string{"category", "share of frames", "channel"},
	}}
	for _, s := range scenarios.Scope() {
		channel := "decoupling-oblivious (default on)"
		switch {
		case strings.Contains(s.Category, "interactions"):
			channel = "decoupling-aware (IPL required)"
		case strings.Contains(s.Category, "realtime"):
			channel = "VSync path (D-VSync off)"
		}
		res.Table.AddRow(s.Category, 100*s.Share, channel)
	}

	// Build a mixed stream matching the Figure 9 shares and route it.
	dev := scenarios.Mate60Pro
	p := scenarios.BaseProfile("scope-mix", dev, scenarios.Scattered, workload.Deterministic)
	p.LongRatio = 0.04
	tr := p.Generate(2000, Seed)
	for i := range tr.Costs {
		switch {
		case i%20 >= 17 && i%20 < 19: // 10 % interactive
			tr.Costs[i].Class = workload.Interactive
		case i%20 == 19: // 5 % realtime
			tr.Costs[i].Class = workload.Realtime
		}
	}
	oblivious := DVSyncRun(tr, dev, dev.Buffers)
	aware := DVSyncRun(tr, dev, dev.Buffers, func(c *sim.Config) {
		c.Predictor = ipl.Linear{}
	})
	total := float64(tr.Len())
	res.DecoupledShareOblivious = float64(oblivious.DecoupledFrames) / total
	res.DecoupledShareAware = float64(aware.DecoupledFrames) / total
	res.Table.AddRow("measured decoupled share (oblivious app)",
		100*res.DecoupledShareOblivious, "simulated")
	res.Table.AddRow("measured decoupled share (aware app)",
		100*res.DecoupledShareAware, "simulated")
	return res
}
