package exp

import (
	"strconv"

	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/workload"
)

// FutureResult projects D-VSync's benefit onto upcoming panels.
type FutureResult struct {
	Table *report.Table
	// ReductionPct maps refresh rate → FDPS reduction.
	ReductionPct map[int]float64
	// BaselineFDPS maps refresh rate → the VSync baseline.
	BaselineFDPS map[int]float64
}

// Future extends the evaluation along the §3.1 trend: the *same absolute
// workload* — an app tuned for a 120 Hz flagship — displayed on 90–165 Hz
// panels. Buying a faster screen does not buy faster silicon, so every
// rate step shrinks the per-frame budget under the same costs: the VSync
// baseline degrades super-linearly, and the pre-render cushion matters
// more. 144 Hz and 165 Hz panels are "gradually entering production"
// (§3.1); this is the experiment a vendor would run before adopting them.
func Future() *FutureResult {
	res := &FutureResult{
		Table: &report.Table{
			Title: "Projection — D-VSync on future high-refresh panels (fixed absolute app load)",
			Note:  "an app comfortable at 90-120 Hz, unchanged, on faster panels; VSync 4 bufs vs D-VSync 5 bufs",
			Columns: []string{"refresh rate", "VSync FDPS", "D-VSync FDPS", "reduction %",
				"VSync FD%", "D-VSync FD%"},
		},
		ReductionPct: map[int]float64{},
		BaselineFDPS: map[int]float64{},
	}
	// The app's costs are fixed in absolute milliseconds: tuned against the
	// Mate 60 Pro's 8.3 ms budget with a moderate key-frame tail.
	base := scenarios.BaseProfile("future", scenarios.Mate60Pro, scenarios.Moderate,
		workload.Deterministic)
	base.LongRatio = 0.05
	for _, hz := range []int{90, 120, 144, 165} {
		dev := scenarios.Mate60Pro
		dev.RefreshHz = hz
		var vSum, dSum, vPct, dPct float64
		for i := int64(0); i < Replicas; i++ {
			tr := base.Generate(900, Seed+i)
			v := VSyncRun(tr, dev, 4)
			d := sim.Run(sim.Config{Mode: sim.ModeDVSync, Panel: dev.Panel(), Buffers: 5, Trace: tr})
			vSum += v.FDPS()
			dSum += d.FDPS()
			vPct += v.Jank().DropPercent()
			dPct += d.Jank().DropPercent()
		}
		n := float64(Replicas)
		res.BaselineFDPS[hz] = vSum / n
		res.ReductionPct[hz] = Reduction(vSum/n, dSum/n)
		res.Table.AddRow(strconv.Itoa(hz)+" Hz", vSum/n, dSum/n,
			res.ReductionPct[hz], vPct/n, dPct/n)
	}
	return res
}
