package exp

import (
	"strconv"

	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/workload"
)

// FutureResult projects D-VSync's benefit onto upcoming panels.
type FutureResult struct {
	Table *report.Table
	// ReductionPct maps refresh rate → FDPS reduction.
	ReductionPct map[int]float64
	// BaselineFDPS maps refresh rate → the VSync baseline.
	BaselineFDPS map[int]float64
}

// Future extends the evaluation along the §3.1 trend: the *same absolute
// workload* — an app tuned for a 120 Hz flagship — displayed on 90–165 Hz
// panels. Buying a faster screen does not buy faster silicon, so every
// rate step shrinks the per-frame budget under the same costs: the VSync
// baseline degrades super-linearly, and the pre-render cushion matters
// more. 144 Hz and 165 Hz panels are "gradually entering production"
// (§3.1); this is the experiment a vendor would run before adopting them.
func Future() *FutureResult {
	res := &FutureResult{
		Table: &report.Table{
			Title: "Projection — D-VSync on future high-refresh panels (fixed absolute app load)",
			Note:  "an app comfortable at 90-120 Hz, unchanged, on faster panels; VSync 4 bufs vs D-VSync 5 bufs",
			Columns: []string{"refresh rate", "VSync FDPS", "D-VSync FDPS", "reduction %",
				"VSync FD%", "D-VSync FD%"},
		},
		ReductionPct: map[int]float64{},
		BaselineFDPS: map[int]float64{},
	}
	// The app's costs are fixed in absolute milliseconds: tuned against the
	// Mate 60 Pro's 8.3 ms budget with a moderate key-frame tail.
	base := scenarios.BaseProfile("future", scenarios.Mate60Pro, scenarios.Moderate,
		workload.Deterministic)
	base.LongRatio = 0.05
	for _, hz := range []int{90, 120, 144, 165} {
		dev := scenarios.Mate60Pro
		dev.RefreshHz = hz
		type rep struct{ v, d, vPct, dPct float64 }
		reps := par.Map(Replicas, func(i int) rep {
			tr := base.Generate(900, Seed+int64(i))
			v := VSyncRun(tr, dev, 4)
			d := sim.Run(sim.Config{Mode: sim.ModeDVSync, Panel: dev.Panel(), Buffers: 5, Trace: tr})
			return rep{v.FDPS(), d.FDPS(), v.Jank().DropPercent(), d.Jank().DropPercent()}
		})
		var vSum, dSum, vPct, dPct float64
		for _, r := range reps {
			vSum += r.v
			dSum += r.d
			vPct += r.vPct
			dPct += r.dPct
		}
		n := float64(Replicas)
		res.BaselineFDPS[hz] = vSum / n
		res.ReductionPct[hz] = Reduction(vSum/n, dSum/n)
		res.Table.AddRow(strconv.Itoa(hz)+" Hz", vSum/n, dSum/n,
			res.ReductionPct[hz], vPct/n, dPct/n)
	}
	return res
}
