// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§3 and §6) from simulation.
//
// Methodology. The paper measured its VSync baselines on real devices; a
// simulator cannot derive those absolute numbers from first principles.
// Each scenario therefore carries the paper's measured baseline as a
// *calibration target*: the harness scales the scenario's workload until
// the simulated conventional-VSync system reproduces that baseline, then
// runs D-VSync (and buffer sweeps, latency measurements, …) on the exact
// same calibrated workload. Every D-VSync-side number is thus an output of
// the mechanism under test, never a transcribed constant.
package exp

import (
	"fmt"
	"sync/atomic"

	"dvsync/internal/par"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/workload"
)

// Seed is the master seed for all synthesised workloads; experiments are
// fully deterministic.
const Seed int64 = 20250330

// VSyncConfig is the conventional-architecture configuration for a device
// and queue size, without a trace — the shape replica loops hand to a
// reusable sim.Runner before swapping traces in.
func VSyncConfig(dev scenarios.Device, buffers int) sim.Config {
	return sim.Config{
		Mode:    sim.ModeVSync,
		Panel:   dev.Panel(),
		Buffers: buffers,
	}
}

// DVSyncConfig is the D-VSync configuration for a device and queue size.
// Option functions tune the config (predictor registration, fallback
// supervision, …) exactly as DVSyncRun's always did.
func DVSyncConfig(dev scenarios.Device, buffers int, cfg ...func(*sim.Config)) sim.Config {
	c := sim.Config{
		Mode:    sim.ModeDVSync,
		Panel:   dev.Panel(),
		Buffers: buffers,
	}
	for _, f := range cfg {
		f(&c)
	}
	return c
}

// VSyncRun simulates the conventional architecture.
func VSyncRun(tr *workload.Trace, dev scenarios.Device, buffers int) *sim.Result {
	c := VSyncConfig(dev, buffers)
	c.Trace = tr
	return sim.Run(c)
}

// DVSyncRun simulates D-VSync with the given queue size. For Interactive
// workloads the decoupling-aware channel is enabled with the supplied
// predictor (nil leaves interactive frames on the VSync path).
func DVSyncRun(tr *workload.Trace, dev scenarios.Device, buffers int, cfg ...func(*sim.Config)) *sim.Result {
	c := DVSyncConfig(dev, buffers, cfg...)
	c.Trace = tr
	return sim.Run(c)
}

// runnerFor builds a reusable Runner for a traceless experiment config.
// The one-frame placeholder trace only satisfies construction-time
// validation; every run swaps a real trace in through RunTrace.
func runnerFor(cfg sim.Config) *sim.Runner {
	cfg.Trace = placeholderTrace
	return sim.NewRunner(cfg)
}

// placeholderTrace is the shared construction-time stand-in (read-only,
// like all traces, so workers may share it).
var placeholderTrace = func() *workload.Trace {
	p := workload.Profile{Name: "placeholder", ShortMeanMs: 1, UIShare: 0.5,
		Class: workload.Deterministic}
	return p.Generate(1, 1)
}()

// Replicas is the number of measurement runs averaged per scenario,
// following the paper's methodology: "Averages are derived from five runs
// to mitigate fluctuations" (Appendix A.2). Replicas share the calibrated
// workload parameters but draw independent frame sequences.
const Replicas = 5

// calibration is the tuned workload parameterisation for one scenario.
type calibration struct {
	ratio float64 // key-frame rate (Profile.LongRatio)
	scale float64 // cost multiplier (1 unless the rate ceiling was hit)
}

// calibMap is the memoised (scenario, device, buffers) → calibration view.
type calibMap map[string]calibration

// calibCache memoises calibrations: several experiments (Figures 5, 6, 15,
// §6.7) reuse the same scenario sets, and calibration dominates their cost.
// It is a mutex-free copy-on-write map: lookups are one atomic load, and a
// miss publishes by CAS-swapping a copied map. Concurrent par.Map jobs may
// race to compute the same entry, but calibration is deterministic, so
// whichever copy publishes first is identical to the losers' — the cache
// never affects results, only how often the search runs.
var calibCache atomic.Pointer[calibMap]

// calibSearches counts full (uncached) calibration searches — the test
// hook asserting the memoisation contract.
var calibSearches atomic.Int64

func init() {
	m := calibMap{}
	calibCache.Store(&m)
}

// resetCalibCache empties the cache and search counter (tests only).
func resetCalibCache() {
	m := calibMap{}
	calibCache.Store(&m)
	calibSearches.Store(0)
}

func calibKey(p workload.Profile, frames int, dev scenarios.Device, buffers int,
	target float64, seed int64) string {
	return fmt.Sprintf("%+v|%d|%s|%d|%g|%d", p, frames, dev.Name, buffers, target, seed)
}

// calibrateParams tunes the profile until the simulated VSync baseline FDPS
// matches the paper's measured target.
//
// The primary knob is the key-frame rate (Profile.LongRatio): frame drops
// on real devices come from how often heavy key frames occur, not from the
// whole workload scaling up (§3's power-law characterisation keeps the
// short-frame body well under the period). If even a high key-frame rate
// cannot reach the target — very hot cases — a secondary cost-scale search
// takes over with the rate pinned at its ceiling.
func calibrateParams(p workload.Profile, frames int, dev scenarios.Device, buffers int,
	target float64, seed int64) calibration {
	if target <= 0 {
		return calibration{ratio: 0.01, scale: 1}
	}
	key := calibKey(p, frames, dev, buffers, target, seed)
	if c, ok := (*calibCache.Load())[key]; ok {
		return c
	}
	c := calibrateParamsUncached(p, frames, dev, buffers, target, seed)
	for {
		old := calibCache.Load()
		if prev, ok := (*old)[key]; ok {
			return prev // a concurrent job published first; values agree
		}
		next := make(calibMap, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
		next[key] = c
		if calibCache.CompareAndSwap(old, &next) {
			return c
		}
	}
}

func calibrateParamsUncached(p workload.Profile, frames int, dev scenarios.Device, buffers int,
	target float64, seed int64) calibration {
	calibSearches.Add(1)
	const maxRatio = 0.30
	// The search matches the *replica mean* — the quantity the experiments
	// report — so the five-run averages land on the measured baselines. The
	// replicas fan out through par.Map; summing the returned slice in index
	// order keeps the mean bit-identical to the serial loop.
	measureRatio := func(ratio float64) float64 {
		q := p
		q.LongRatio = ratio
		vals := par.MapLocal(Replicas,
			func() *sim.Runner { return runnerFor(VSyncConfig(dev, buffers)) },
			func(rn *sim.Runner, i int) float64 {
				return rn.RunTrace(q.Generate(frames, seed+int64(i))).FDPS()
			})
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum / Replicas
	}
	if measureRatio(maxRatio) >= target {
		ratio := bisect(measureRatio, target, 0.002, maxRatio)
		return calibration{ratio: ratio, scale: 1}
	}
	// Rate ceiling insufficient: scale costs on top.
	q := p
	q.LongRatio = maxRatio
	bases := make([]*workload.Trace, Replicas)
	for i := range bases {
		bases[i] = q.Generate(frames, seed+int64(i))
	}
	measureScale := func(s float64) float64 {
		vals := par.MapLocal(len(bases),
			func() *sim.Runner { return runnerFor(VSyncConfig(dev, buffers)) },
			func(rn *sim.Runner, i int) float64 {
				return rn.RunTrace(bases[i].Scale(s)).FDPS()
			})
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum / Replicas
	}
	scale := bisect(measureScale, target, 1.0, 6.0)
	return calibration{ratio: maxRatio, scale: scale}
}

func (c calibration) trace(p workload.Profile, frames int, seed int64) *workload.Trace {
	p.LongRatio = c.ratio
	tr := p.Generate(frames, seed)
	if c.scale != 1 {
		tr = tr.Scale(c.scale)
	}
	return tr
}

// CalibrateFDPS calibrates the profile to the target baseline and returns
// the seed trace.
func CalibrateFDPS(p workload.Profile, frames int, dev scenarios.Device, buffers int,
	target float64, seed int64) *workload.Trace {
	return calibrateParams(p, frames, dev, buffers, target, seed).trace(p, frames, seed)
}

// CalibrateReplicas calibrates the profile and returns Replicas independent
// traces drawn from the tuned parameters (seed, seed+1, …).
func CalibrateReplicas(p workload.Profile, frames int, dev scenarios.Device, buffers int,
	target float64, seed int64) []*workload.Trace {
	c := calibrateParams(p, frames, dev, buffers, target, seed)
	out := make([]*workload.Trace, Replicas)
	for i := range out {
		out[i] = c.trace(p, frames, seed+int64(i))
	}
	return out
}

// avgFDPS measures mean FDPS across replica traces. Replicas fan out
// through par.MapLocal — each worker rewinds one reusable Runner wired for
// the config instead of rebuilding the simulation graph per replica — and
// are summed serially in index order, so the mean matches the legacy
// serial loop exactly at any worker count.
func avgFDPS(traces []*workload.Trace, cfg sim.Config) float64 {
	vals := par.MapLocal(len(traces),
		func() *sim.Runner { return runnerFor(cfg) },
		func(rn *sim.Runner, i int) float64 {
			return rn.RunTrace(traces[i]).FDPS()
		})
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(traces))
}

// bisect finds x in [lo, hi] where measure(x) ≈ target (measure monotone
// non-decreasing up to simulation noise).
func bisect(measure func(float64) float64, target, lo, hi float64) float64 {
	for i := 0; i < 26; i++ {
		mid := (lo + hi) / 2
		if measure(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Average returns the arithmetic mean.
func Average(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Reduction returns the percentage reduction from a to b.
func Reduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (a - b) / a
}
