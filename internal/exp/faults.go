// Fault-matrix experiment: degradation curves of FDPS and rendering latency
// versus fault severity, for VSync, D-VSync, and D-VSync with supervised
// fallback. Each fault class from internal/fault is swept separately; the
// input classes (dropout, bursts) do not touch the display path, so they
// are measured as IPL prediction error over perturbed digitizer streams.
package exp

import (
	"fmt"

	"dvsync/internal/core"
	"dvsync/internal/display"
	"dvsync/internal/fault"
	"dvsync/internal/health"
	"dvsync/internal/input"
	"dvsync/internal/ipl"
	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// FaultsPoint is one (class, severity) cell of the degradation matrix,
// averaged over replicas.
type FaultsPoint struct {
	// Class is the fault class swept.
	Class string
	// Severity is the normalised fault severity in [0, 1].
	Severity float64
	// VSyncFDPS / DVSyncFDPS / FallbackFDPS are frame drops per second for
	// the three architectures.
	VSyncFDPS, DVSyncFDPS, FallbackFDPS float64
	// VSyncLatMs / DVSyncLatMs / FallbackLatMs are mean rendering latencies.
	VSyncLatMs, DVSyncLatMs, FallbackLatMs float64
	// FallbackTransitions counts supervised runtime switches in the
	// fallback-hardened runs (summed over replicas).
	FallbackTransitions int
}

// FaultsResult is the full fault-matrix output.
type FaultsResult struct {
	// Table is the FDPS/latency degradation matrix.
	Table *report.Table
	// InputTable is the IPL prediction-error sweep for the input classes.
	InputTable *report.Table
	// Points holds the sim-class curves in sweep order.
	Points []FaultsPoint
}

// SimFaultClasses are the fault classes exercised through the full
// simulation (the input classes are measured separately).
func SimFaultClasses() []string {
	return []string{"stall", "jitter", "missed-vsync", "drift", "alloc"}
}

// FaultSeverities returns the severity grid. quick keeps CI smoke runs
// under a few seconds.
func FaultSeverities(quick bool) []float64 {
	if quick {
		return []float64{0, 0.5, 1}
	}
	return []float64{0, 0.25, 0.5, 0.75, 1}
}

func faultsWorkload(frames int, seed int64) *workload.Trace {
	p := workload.Profile{
		Name: "faults", ShortMeanMs: 5, ShortSigmaMs: 2,
		LongRatio: 0.06, LongScaleMs: 20, LongAlpha: 1.8,
		Burstiness: 0.3, UIShare: 0.4, Class: workload.Deterministic,
	}
	return p.Generate(frames, seed)
}

// faultsHealth is the supervision tuning used by the fallback runs (and
// documented in DESIGN.md §7).
func faultsHealth() health.Config {
	return health.Config{
		Window:        500 * simtime.Millisecond,
		MaxFDPS:       5,
		MaxCalibErrMs: 10,
		StallTimeout:  250 * simtime.Millisecond,
		RecoverAfter:  simtime.Second,
	}
}

// Faults runs the degradation matrix. quick shrinks frames, severities and
// replicas for the CI smoke configuration.
func Faults(quick bool) *FaultsResult {
	frames, replicas := 600, 3
	if quick {
		frames, replicas = 250, 2
	}
	sevs := FaultSeverities(quick)
	res := &FaultsResult{
		Table: &report.Table{
			Title: "Fault matrix — FDPS and latency vs severity",
			Note: "mean over seeded replicas; fault window starts 1 s into the run; " +
				"fb = D-VSync with supervised §4.5 fallback",
			Columns: []string{"class", "severity",
				"VSync FDPS", "D-VSync FDPS", "D-VSync+fb FDPS",
				"VSync lat (ms)", "D-VSync lat (ms)", "D-VSync+fb lat (ms)", "fb switches"},
		},
	}
	// The fault window opens after the stream has warmed up and stays open
	// past its end, so severity scales exposure, not duration.
	fStart := simtime.Time(simtime.Second)
	fEnd := simtime.Time(60 * simtime.Second)

	// One par.Map job per (class, severity) cell. The replica loop inside
	// each job keeps its serial accumulation order, so every cell's
	// floating-point arithmetic is identical to the legacy nested loops and
	// the rendered matrix is byte-identical at any worker count.
	type cell struct {
		cls string
		sev float64
	}
	var cells []cell
	for _, cls := range SimFaultClasses() {
		for _, sev := range sevs {
			cells = append(cells, cell{cls, sev})
		}
	}
	pts := par.Map(len(cells), func(ci int) FaultsPoint {
		pt := FaultsPoint{Class: cells[ci].cls, Severity: cells[ci].sev}
		for r := 0; r < replicas; r++ {
			tr := faultsWorkload(frames, 1234+int64(r))
			fcfg, err := fault.Scenario(pt.Class, pt.Severity, fStart, fEnd, 7000+int64(r))
			if err != nil {
				panic(err) // classes and severities are from our own grids
			}
			v := sim.Run(sim.Config{Mode: sim.ModeVSync, Panel: faultPanel(),
				Buffers: 3, Trace: tr, Faults: fcfg})
			d := sim.Run(sim.Config{Mode: sim.ModeDVSync, Panel: faultPanel(),
				Buffers: 5, Trace: tr, Faults: fcfg})
			fb := sim.Run(hardenedConfig(tr, fcfg))
			pt.VSyncFDPS += v.FDPS() / float64(replicas)
			pt.DVSyncFDPS += d.FDPS() / float64(replicas)
			pt.FallbackFDPS += fb.FDPS() / float64(replicas)
			pt.VSyncLatMs += v.LatencySummary().MeanOrZero() / float64(replicas)
			pt.DVSyncLatMs += d.LatencySummary().MeanOrZero() / float64(replicas)
			pt.FallbackLatMs += fb.LatencySummary().MeanOrZero() / float64(replicas)
			pt.FallbackTransitions += len(fb.Fallbacks)
		}
		return pt
	})
	for _, pt := range pts {
		res.Points = append(res.Points, pt)
		res.Table.AddRow(pt.Class, fmt.Sprintf("%.2f", pt.Severity),
			fmt.Sprintf("%.2f", pt.VSyncFDPS),
			fmt.Sprintf("%.2f", pt.DVSyncFDPS),
			fmt.Sprintf("%.2f", pt.FallbackFDPS),
			fmt.Sprintf("%.1f", pt.VSyncLatMs),
			fmt.Sprintf("%.1f", pt.DVSyncLatMs),
			fmt.Sprintf("%.1f", pt.FallbackLatMs),
			pt.FallbackTransitions)
	}
	res.InputTable = inputFaultTable(sevs)
	return res
}

func faultPanel() display.Config { return scenarios.Pixel5.Panel() }

// hardenedConfig is the D-VSync+fallback arm: supervision plus the DTV
// re-anchor bound and FPE accumulation backoff.
func hardenedConfig(tr *workload.Trace, fcfg *fault.Config) sim.Config {
	cfg := sim.Config{
		Mode: sim.ModeDVSync, Panel: faultPanel(), Buffers: 5, Trace: tr,
		Faults:           fcfg,
		EnableFallback:   true,
		Health:           faultsHealth(),
		FPEOverloadAfter: 4,
	}
	cfg.DTV.MaxAbsErrMs = 8
	return cfg
}

// inputFaultTable sweeps the input fault classes as IPL prediction error:
// the predictor sees the perturbed digitizer stream and is judged against
// the ground-truth trajectory two periods ahead (the D-VSync lookahead).
func inputFaultTable(sevs []float64) *report.Table {
	tbl := &report.Table{
		Title: "Input faults — IPL prediction error vs severity",
		Note: "mean |predicted − actual| px over a fling, horizon 2 periods; " +
			"dropout loses reports, bursts batch-deliver them late",
		Columns: []string{"class", "severity", "Kalman err (px)", "LastValue err (px)"},
	}
	traj := input.Fling{Start: 500, Velocity: 1800,
		DownFor: 600 * simtime.Millisecond, Friction: 3,
		Settle: 900 * simtime.Millisecond}
	samples := input.Digitizer{RateHz: 120}.Samples(traj)
	period := simtime.PeriodForHz(60)
	type icell struct {
		cls string
		sev float64
	}
	var cells []icell
	for _, cls := range []string{"input-drop", "input-burst"} {
		for _, sev := range sevs {
			cells = append(cells, icell{cls, sev})
		}
	}
	errs := par.Map(len(cells), func(i int) [2]float64 {
		fcfg, err := fault.Scenario(cells[i].cls, cells[i].sev, 0, traj.End()+1, 31)
		if err != nil {
			panic(err)
		}
		perturbed := samples
		if fcfg.Enabled() {
			perturbed = input.Perturb(samples, fault.NewInjector(*fcfg))
		}
		hist := coreSamples(perturbed)
		return [2]float64{meanPredErr(ipl.Kalman{}, hist, traj, period),
			meanPredErr(ipl.LastValue{}, hist, traj, period)}
	})
	for i, e := range errs {
		tbl.AddRow(cells[i].cls, fmt.Sprintf("%.2f", cells[i].sev),
			fmt.Sprintf("%.1f", e[0]), fmt.Sprintf("%.1f", e[1]))
	}
	return tbl
}

func meanPredErr(p core.InputPredictor, hist []core.InputSample, traj input.Trajectory,
	period simtime.Duration) float64 {
	var sum float64
	var n int
	step := 8 * simtime.Millisecond
	for t := simtime.Time(100 * simtime.Millisecond); t < traj.End(); t = t.Add(step) {
		at := t.Add(2 * period)
		seen := coreHistory(hist, t)
		if len(seen) == 0 {
			continue
		}
		err := p.Predict(seen, at) - traj.Value(at)
		if err < 0 {
			err = -err
		}
		sum += err
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
