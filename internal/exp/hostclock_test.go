package exp

import (
	"testing"
	"time"
)

// TestHostClockInjectable proves the profiling clock is injectable: a fake
// clock fully determines hostSince, so nothing in the harness needs a real
// wall-clock reading under test.
func TestHostClockInjectable(t *testing.T) {
	defer func(orig func() time.Time) { hostNow = orig }(hostNow)

	base := time.Unix(1000, 0)
	now := base
	hostNow = func() time.Time { return now }

	t0 := hostNow()
	now = base.Add(151600 * time.Nanosecond) // the paper's ZDP cost per frame
	if got := hostSince(t0); got != 151600*time.Nanosecond {
		t.Fatalf("hostSince = %v, want 151.6µs", got)
	}
}
