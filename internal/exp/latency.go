package exp

import (
	stdstrconv "strconv"
	"time"

	"dvsync/internal/buffer"
	"dvsync/internal/core"
	"dvsync/internal/input"
	"dvsync/internal/ipl"
	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// LatencyResult carries Figure 15's per-device outcome.
type LatencyResult struct {
	Table *report.Table
	// Rows maps device name → (VSync ms, D-VSync ms).
	Rows map[string][2]float64
}

// deviceWorkloads returns the calibrated traces of a device's scenario set
// (the runtime traces §6.3 aggregates over). Each scenario calibrates in
// its own par.Map job; par.Map returns them in catalog order.
func deviceWorkloads(dev scenarios.Device) []*workload.Trace {
	switch dev.Name {
	case scenarios.Pixel5.Name:
		apps := scenarios.Apps()
		return par.Map(len(apps), func(i int) *workload.Trace {
			return CalibrateFDPS(apps[i].Profile(), scenarios.AppFrames, dev,
				dev.Buffers, apps[i].PaperVSyncFDPS, Seed)
		})
	case scenarios.Mate40Pro.Name:
		cases := scenarios.Mate40GLESCases()
		return par.Map(len(cases), func(i int) *workload.Trace {
			return CalibrateFDPS(cases[i].Profile(dev), scenarios.UseCaseFrames, dev,
				dev.Buffers, cases[i].PaperVSyncFDPS, Seed)
		})
	case scenarios.Mate60Pro.Name:
		cases := scenarios.Mate60GLESCases()
		return par.Map(len(cases), func(i int) *workload.Trace {
			return CalibrateFDPS(cases[i].Profile(dev), scenarios.UseCaseFrames, dev,
				dev.Buffers, cases[i].PaperVSyncFDPS, Seed)
		})
	}
	return nil
}

// Fig15 regenerates Figure 15: average rendering latency per device under
// VSync and D-VSync, over each device's recorded workload set.
func Fig15() *LatencyResult {
	res := &LatencyResult{
		Table: &report.Table{
			Title: "Figure 15 — rendering latency (ms)",
			Note: "latency = present − effective content time; decoupled frames stay at the " +
				"2-period pipeline depth plus DTV error (§6.3)",
			Columns: []string{"device", "VSync", "D-VSync", "reduction %"},
		},
		Rows: map[string][2]float64{},
	}
	for _, dev := range scenarios.Devices() {
		dvBuffers := dev.Buffers
		if dev.Name == scenarios.Pixel5.Name {
			dvBuffers = 4 // Android D-VSync default (§6.4)
		}
		trs := deviceWorkloads(dev)
		type latencies struct{ v, d []float64 }
		per := par.Map(len(trs), func(i int) latencies {
			return latencies{
				v: VSyncRun(trs[i], dev, dev.Buffers).LatencyMs,
				d: DVSyncRun(trs[i], dev, dvBuffers).LatencyMs,
			}
		})
		var v, d []float64
		for _, l := range per {
			v = append(v, l.v...)
			d = append(d, l.d...)
		}
		vm, dm := Average(v), Average(d)
		res.Rows[dev.Name] = [2]float64{vm, dm}
		res.Table.AddRow(dev.Name, vm, dm, Reduction(vm, dm))
	}
	return res
}

// Fig5Result is the frame-drop summary of Figure 5.
type Fig5Result struct {
	Table *report.Table
	// AvgPercent maps the configuration label → average FD%.
	AvgPercent map[string]float64
}

// Fig5 regenerates Figure 5: average and maximum frame-drop percentage of
// display time per device/backend under VSync.
func Fig5() *Fig5Result {
	res := &Fig5Result{
		Table: &report.Table{
			Title:   "Figure 5 — frame drops over total display time (VSync)",
			Columns: []string{"configuration", "avg FD%", "max FD%"},
		},
		AvgPercent: map[string]float64{},
	}
	addSet := func(label string, dev scenarios.Device, traces []*workload.Trace) {
		pcts := par.Map(len(traces), func(i int) float64 {
			return VSyncRun(traces[i], dev, dev.Buffers).Jank().DropPercent()
		})
		var avg []float64
		max := 0.0
		for _, p := range pcts {
			avg = append(avg, p)
			if p > max {
				max = p
			}
		}
		a := Average(avg)
		res.AvgPercent[label] = a
		res.Table.AddRow(label, a, max)
	}
	addSet("Google Pixel 5 (AOSP 60Hz, GLES)", scenarios.Pixel5, deviceWorkloads(scenarios.Pixel5))
	addSet("Mate 40 Pro (OH 90Hz, GLES)", scenarios.Mate40Pro, deviceWorkloads(scenarios.Mate40Pro))
	addSet("Mate 60 Pro (OH 120Hz, GLES)", scenarios.Mate60Pro, deviceWorkloads(scenarios.Mate60Pro))
	vkCases := scenarios.Mate60VulkanCases()
	vkTraces := par.Map(len(vkCases), func(i int) *workload.Trace {
		return CalibrateFDPS(vkCases[i].Profile(scenarios.Mate60Pro),
			scenarios.UseCaseFrames, scenarios.Mate60Pro, scenarios.Mate60Pro.Buffers,
			vkCases[i].PaperVSyncFDPS, Seed)
	})
	addSet("Mate 60 Pro (OH 120Hz, Vulkan)", scenarios.Mate60Pro, vkTraces)
	return res
}

// Fig6Result is the frame-distribution breakdown.
type Fig6Result struct {
	Table *report.Table
	// StuffedShare is the overall share of frames that waited in the queue.
	StuffedShare float64
}

// Fig6 regenerates Figure 6: the distribution of frames into frame drops,
// buffer stuffing and direct composition for the 25 apps under VSync.
func Fig6() *Fig6Result {
	res := &Fig6Result{
		Table: &report.Table{
			Title:   "Figure 6 — distribution of frames on Google Pixel 5 (VSync, % of total)",
			Columns: []string{"app", "frame drop", "buffer stuffing", "direct composition"},
		},
	}
	dev := scenarios.Pixel5
	apps := scenarios.Apps()
	type fig6Row struct {
		drop, stuff, direct float64
		stuffed, total      int
	}
	rows := par.Map(len(apps), func(i int) fig6Row {
		tr := CalibrateFDPS(apps[i].Profile(), scenarios.AppFrames, dev, dev.Buffers,
			apps[i].PaperVSyncFDPS, Seed)
		r := VSyncRun(tr, dev, dev.Buffers)
		total := len(r.Presented) + len(r.Janks)
		return fig6Row{
			drop:    100 * float64(len(r.Janks)) / float64(total),
			stuff:   100 * float64(r.Stuffed) / float64(total),
			direct:  100 * float64(r.Direct) / float64(total),
			stuffed: r.Stuffed,
			total:   total,
		}
	})
	totStuff, tot := 0, 0
	for i, row := range rows {
		res.Table.AddRow(apps[i].Name, row.drop, row.stuff, row.direct)
		totStuff += row.stuffed
		tot += row.total
	}
	res.StuffedShare = float64(totStuff) / float64(tot)
	return res
}

// Fig7Result is the touch-follow latency visualisation data.
type Fig7Result struct {
	Table *report.Table
	// MaxDisplacementPx is the worst ball-to-finger distance.
	MaxDisplacementPx float64
}

// Fig7 regenerates Figure 7: an app draws a ball at the touch position
// every frame; rendering latency makes the ball trail the fingertip. The
// paper observes ≈400 px (2.4 cm) at 45 ms latency during a fast swipe.
func Fig7() *Fig7Result {
	res := &Fig7Result{
		Table: &report.Table{
			Title:   "Figure 7 — touch-follow displacement during a fast swipe (Pixel 5, VSync)",
			Columns: []string{"frame", "finger y (px)", "ball y (px)", "displacement (px)"},
		},
	}
	dev := scenarios.Pixel5
	// A fast upward swipe, like flicking a list hard.
	traj := input.Swipe{Start: 0, Velocity: 6200, Duration: simtime.FromMillis(400)}
	app := scenarios.Apps()[6] // a representative stuffed app (Facebook)
	tr := CalibrateFDPS(app.Profile(), 24, dev, dev.Buffers, app.PaperVSyncFDPS, Seed)
	r := sim.Run(sim.Config{
		Mode: sim.ModeVSync, Panel: dev.Panel(), Buffers: dev.Buffers, Trace: tr,
		ContentSample: func(f *buffer.Frame, now simtime.Time) {
			f.ContentValue = traj.Value(f.ContentTime)
		},
	})
	for i, f := range r.Presented {
		if i >= 17 {
			break
		}
		finger := traj.Value(f.PresentAt)
		disp := finger - f.ContentValue
		if disp > res.MaxDisplacementPx {
			res.MaxDisplacementPx = disp
		}
		res.Table.AddRow(stdstrconv.Itoa(i+1), finger, f.ContentValue, disp)
	}
	return res
}

// Fig1Result is the frame-time CDF.
type Fig1Result struct {
	Table *report.Table
	// WithinOnePeriod is the share of frames finishing within one 60 Hz
	// period (the paper reports 78.3 %).
	WithinOnePeriod float64
	// Over budget (3 periods, beyond triple buffering): ≈5 % in the paper.
	BeyondTriple float64
}

// Fig1 regenerates Figure 1: the CDF of frame rendering time for a typical
// mixed real-world workload on a 60 Hz screen.
func Fig1() *Fig1Result {
	res := &Fig1Result{
		Table: &report.Table{
			Title:   "Figure 1 — CDF of frame rendering time (60 Hz screen)",
			Columns: []string{"rendering time (ms)", "cumulative probability"},
		},
	}
	mixed := scenarios.MixedRealWorldProfile()
	tr := mixed.Generate(20000, Seed)
	period := scenarios.Pixel5.Period()
	var ths []simtime.Duration
	for ms := 0.0; ms <= 60; ms += 2.5 {
		ths = append(ths, simtime.FromMillis(ms))
	}
	cdf := tr.CDF(ths)
	for i, th := range ths {
		res.Table.AddRow(report.FormatFloat(th.Milliseconds()), cdf[i])
	}
	res.WithinOnePeriod = 1 - tr.FractionOver(period)
	res.BeyondTriple = tr.FractionOver(3 * period)
	return res
}

// Fig16Result is the map-app case study outcome.
type Fig16Result struct {
	Table *report.Table
	// BaselineFDPS / DVSyncFDPS during zooming.
	BaselineFDPS, DVSyncFDPS float64
	// LatencyReductionPct is the rendering-latency improvement.
	LatencyReductionPct float64
	// ZDPMeanNs is the measured wall-clock cost of one ZDP prediction in
	// this implementation (the paper's Java ZDP costs 151.6 µs/frame).
	ZDPMeanNs float64
	// MeanZoomErrorPx is the mean |predicted − actual| fingertip distance
	// at display time with ZDP.
	MeanZoomErrorPx float64
}

// Fig16 regenerates Figure 16 (§6.5): the decoupling-aware map app. The
// app registers a linear Zooming Distance Predictor through the IPL and
// configures 5 buffers; D-VSync activates only while zooming.
func Fig16() *Fig16Result {
	res := &Fig16Result{Table: &report.Table{
		Title:   "Figure 16 — map app zooming case study (Pixel 5)",
		Columns: []string{"metric", "VSync 3 bufs", "D-VSync 5 bufs + ZDP"},
	}}
	dev := scenarios.Pixel5
	app := scenarios.TheMapApp()
	tr := CalibrateFDPS(app.Profile(), app.ZoomFrames, dev, dev.Buffers,
		app.PaperVSyncFDPS, Seed)

	pinch := input.Pinch{StartDistance: 220, RatePxPerSec: 380, TremorAmp: 5,
		TremorHz: 7, Duration: simtime.FromSeconds(70)}
	samples := coreSamples(input.Digitizer{RateHz: 120}.Samples(pinch))

	v := sim.Run(sim.Config{
		Mode: sim.ModeVSync, Panel: dev.Panel(), Buffers: dev.Buffers, Trace: tr,
		ContentSample: func(f *buffer.Frame, now simtime.Time) {
			f.ContentValue = pinch.Value(f.ContentTime)
		},
	})

	zdp := ipl.Linear{}
	var zdpTotal time.Duration
	var zdpCalls int
	d := sim.Run(sim.Config{
		Mode: sim.ModeDVSync, Panel: dev.Panel(), Buffers: app.Buffers, Trace: tr,
		Predictor: zdp,
		ContentSample: func(f *buffer.Frame, now simtime.Time) {
			if !f.Decoupled {
				f.ContentValue = pinch.Value(now)
				return
			}
			h := coreHistory(samples, now)
			t0 := hostNow()
			f.ContentValue = zdp.Predict(h, f.DTimestamp)
			zdpTotal += hostSince(t0)
			zdpCalls++
		},
	})

	res.BaselineFDPS = v.FDPS()
	res.DVSyncFDPS = d.FDPS()
	vl, dl := v.LatencySummary().MeanOrZero(), d.LatencySummary().MeanOrZero()
	res.LatencyReductionPct = Reduction(vl, dl)
	if zdpCalls > 0 {
		res.ZDPMeanNs = float64(zdpTotal.Nanoseconds()) / float64(zdpCalls)
	}
	var errSum float64
	var n int
	for _, f := range d.Presented {
		if !f.Decoupled {
			continue
		}
		e := f.ContentValue - pinch.Value(f.PresentAt)
		if e < 0 {
			e = -e
		}
		errSum += e
		n++
	}
	if n > 0 {
		res.MeanZoomErrorPx = errSum / float64(n)
	}

	res.Table.AddRow("FDPS", res.BaselineFDPS, res.DVSyncFDPS)
	res.Table.AddRow("rendering latency (ms)", vl, dl)
	res.Table.AddRow("ZDP overhead (ns/frame, measured)", "-", res.ZDPMeanNs)
	res.Table.AddRow("mean zoom prediction error (px)", "-", res.MeanZoomErrorPx)
	return res
}

func coreSamples(in []input.Sample) []core.InputSample {
	out := make([]core.InputSample, len(in))
	for i, s := range in {
		out[i] = core.InputSample{At: s.At, Value: s.Value}
	}
	return out
}

func coreHistory(samples []core.InputSample, t simtime.Time) []core.InputSample {
	hi := len(samples)
	for hi > 0 && samples[hi-1].At.After(t) {
		hi--
	}
	return samples[:hi]
}
