package exp

import (
	"dvsync/internal/display"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/trace"
	"dvsync/internal/workload"
)

// CellTrace is one canonical recorded cell of an experiment: a
// representative simulation of one architecture under the experiment's
// panel rate, with the full structured event trace attached. dvbench's
// -trace-dir flag exports one Perfetto file per cell so every table in a
// report can be cross-examined frame by frame.
type CellTrace struct {
	// Name is the export file stem, "<experiment>-<mode>".
	Name string
	// Mode is the architecture the cell simulated.
	Mode sim.Mode
	// Recorder holds the cell's recorded events.
	Recorder *trace.Recorder
}

// cellFrames is the canonical cell length: long enough to show steady
// state, janks and queue dynamics, short enough that a full -trace-dir
// sweep stays cheap.
const cellFrames = 240

// cellHz returns the panel rate a cell records at: experiments built on
// high-refresh panels trace at 120 Hz, everything else at the 60 Hz
// baseline.
func cellHz(id string) int {
	switch id {
	case "fig14", "future", "fig12", "fig13":
		return 120
	default:
		return 60
	}
}

// TraceCells records the canonical cells of one experiment — a VSync and a
// D-VSync run over the identical exp.Seed workload. The recording is a
// pure function of the experiment ID, so exports are byte-identical across
// runs and -workers widths.
func TraceCells(id string) []CellTrace {
	hz := cellHz(id)
	p := workload.DefaultProfile(id, simtime.PeriodForHz(hz).Milliseconds())
	tr := p.Generate(cellFrames, Seed)
	cells := []struct {
		name    string
		mode    sim.Mode
		buffers int
	}{
		{id + "-vsync", sim.ModeVSync, 3},
		{id + "-dvsync", sim.ModeDVSync, 4},
	}
	out := make([]CellTrace, 0, len(cells))
	for _, c := range cells {
		rec := trace.NewRecorder()
		sim.Run(sim.Config{
			Mode:     c.mode,
			Panel:    display.Config{Name: id, RefreshHz: hz},
			Buffers:  c.buffers,
			Trace:    tr,
			Recorder: rec,
		})
		out = append(out, CellTrace{Name: c.name, Mode: c.mode, Recorder: rec})
	}
	return out
}
