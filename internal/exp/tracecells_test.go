package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"dvsync/internal/obs"
	"dvsync/internal/par"
	"dvsync/internal/sim"
)

// digestCells exports every trace cell of the given experiments through
// the par worker pool and returns one digest over all export bytes.
func digestCells(t *testing.T, ids []string) string {
	t.Helper()
	exports := par.Map(len(ids), func(i int) []byte {
		var all bytes.Buffer
		for _, cell := range TraceCells(ids[i]) {
			all.WriteString(cell.Name)
			all.WriteByte('\n')
			if err := obs.ExportPerfetto(cell.Recorder, &all); err != nil {
				t.Errorf("%s: %v", cell.Name, err)
				return nil
			}
		}
		return all.Bytes()
	})
	h := sha256.New()
	for _, b := range exports {
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// TestTraceCellDeterminismAcrossWorkers: the -trace-dir exports are
// byte-identical whether the cells are recorded serially or on a 4-wide
// worker pool — the same contract every experiment table already honours.
func TestTraceCellDeterminismAcrossWorkers(t *testing.T) {
	ids := []string{"fig7", "fig14"} // one 60 Hz cell pair, one 120 Hz
	defer par.SetWorkers(0)

	par.SetWorkers(1)
	serial := digestCells(t, ids)
	par.SetWorkers(4)
	wide := digestCells(t, ids)

	if serial != wide {
		t.Errorf("trace-cell exports diverge across worker widths: workers=1 %s, workers=4 %s",
			serial, wide)
	}
}

// TestTraceCellsShape: each experiment yields exactly one vsync and one
// dvsync cell over the same workload, with non-empty recordings.
func TestTraceCellsShape(t *testing.T) {
	cells := TraceCells("fig7")
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Name != "fig7-vsync" || cells[1].Name != "fig7-dvsync" {
		t.Fatalf("cell names = %s, %s", cells[0].Name, cells[1].Name)
	}
	for _, c := range cells {
		if c.Recorder.Len() == 0 {
			t.Errorf("%s: empty recording", c.Name)
		}
		m := obs.Build(c.Recorder)
		// D-VSync renders every slot; the VSync baseline skips overloaded
		// ones, so its trace can start fewer frames.
		if c.Mode == sim.ModeDVSync && len(m.Spans) != cellFrames {
			t.Errorf("%s: %d spans, want %d", c.Name, len(m.Spans), cellFrames)
		}
		if len(m.Spans) == 0 || len(m.Spans) > cellFrames {
			t.Errorf("%s: implausible span count %d", c.Name, len(m.Spans))
		}
		if un := m.Unmatched(); len(un) != 0 {
			t.Errorf("%s: %d unclassified events", c.Name, len(un))
		}
	}
}
