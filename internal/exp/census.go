package exp

import (
	"strconv"

	"dvsync/internal/autotest"
	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
)

// CensusResult is the full 75-case benchmark outcome.
type CensusResult struct {
	Table *report.Table
	// VSyncCases / DVSyncCases count cases with consistent frame drops.
	VSyncCases, DVSyncCases int
	// JankReductionPct is the total-jank reduction across all 75 cases.
	JankReductionPct float64
}

// Census runs the Appendix A testing framework end to end: all 75 OS use
// cases compiled to operation scripts and executed under both
// architectures on Mate 60 Pro — the §3.2 methodology made runnable.
func Census() *CensusResult {
	// The two architectures are independent replays of the same catalog;
	// each inner RunCensus additionally fans its 75 cases out through par.
	runs := par.Map(2, func(i int) *autotest.Census {
		mode := sim.ModeVSync
		if i == 1 {
			mode = sim.ModeDVSync
		}
		return autotest.RunCensus(scenarios.Mate60Pro, mode, Seed)
	})
	v, d := runs[0], runs[1]
	res := &CensusResult{
		Table: &report.Table{
			Title: "Appendix A census — all 75 OS use cases on Mate 60 Pro (5 runs each)",
			Note: "cases shown only if either architecture dropped frames; " +
				"the paper finds 20 (GLES) / 29 (Vulkan) of 75 with drops",
			Columns: []string{"#", "use case", "VSync janks", "VSync FDPS",
				"D-VSync janks", "D-VSync FDPS"},
		},
		VSyncCases:  v.CasesWithDrops,
		DVSyncCases: d.CasesWithDrops,
	}
	for i := range v.Reports {
		rv, rd := v.Reports[i], d.Reports[i]
		if rv.Janks < 1 && rd.Janks < 1 {
			continue
		}
		res.Table.AddRow(strconv.Itoa(rv.Case.ID), rv.Case.Abbrev,
			rv.Janks, rv.FDPS, rd.Janks, rd.FDPS)
	}
	res.JankReductionPct = Reduction(v.TotalJanks, d.TotalJanks)
	res.Table.AddRow("", "cases with drops", strconv.Itoa(v.CasesWithDrops), "",
		strconv.Itoa(d.CasesWithDrops), "")
	return res
}
