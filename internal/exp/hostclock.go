// Host-clock access for the experiment harness.
//
// Experiments measure two unrelated kinds of time: simulated instants
// (simtime.Time, driving every FDPS/latency result) and the host wall clock
// (only to report what this implementation's predictor code costs to run,
// the way §6.5 reports the Java ZDP at 151.6 µs/frame). The helpers here
// are the single sanctioned crossing point to the host clock; everything
// else in the harness is dvlint-checked to stay on the virtual clock.
package exp

import "time"

// hostNow reads the host wall clock. It exists so profiling call sites stay
// injectable in tests and greppable in audits; it must never feed a
// simulated decision.
var hostNow = time.Now //dvlint:ignore nowallclock host profiling only: measures implementation cost, never simulation state

// hostSince returns the host wall-clock span since t0, for profiling the
// real cost of predictor implementations.
func hostSince(t0 time.Time) time.Duration { return hostNow().Sub(t0) }
