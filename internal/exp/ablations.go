package exp

import (
	"math"
	"strconv"

	"dvsync/internal/anim"
	"dvsync/internal/buffer"
	"dvsync/internal/core"
	"dvsync/internal/input"
	"dvsync/internal/ipl"
	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify *why* each mechanism is
// configured the way it is.

// PreRenderLimitResult sweeps the §4.5 pre-rendering limit API at a fixed
// buffer count.
type PreRenderLimitResult struct {
	Table *report.Table
	// FDPS maps limit → frame drops per second.
	FDPS map[int]float64
	// LatencyMs maps limit → mean rendering latency.
	LatencyMs map[int]float64
}

// AblatePreRenderLimit holds the pool at 5 buffers and sweeps the
// pre-render limit 1..4: the knob a decoupling-aware app uses to balance
// performance and memory/recency (§4.5 API #2).
func AblatePreRenderLimit() *PreRenderLimitResult {
	res := &PreRenderLimitResult{
		Table: &report.Table{
			Title:   "Ablation — pre-render limit at fixed 5-buffer pool (Pixel 5, moderate app)",
			Note:    "limit 1 ≈ conventional pacing; larger limits buy jank absorption",
			Columns: []string{"pre-render limit", "FDPS", "mean latency (ms)", "FPE sync blocks"},
		},
		FDPS:      map[int]float64{},
		LatencyMs: map[int]float64{},
	}
	dev := scenarios.Pixel5
	p := scenarios.BaseProfile("ablate-limit", dev, scenarios.Moderate, workload.Deterministic)
	tr := CalibrateFDPS(p, 1000, dev, dev.Buffers, 2.0, Seed)
	runs := par.Map(4, func(i int) *sim.Result {
		return sim.Run(sim.Config{
			Mode: sim.ModeDVSync, Panel: dev.Panel(), Buffers: 5,
			PreRenderLimit: i + 1, Trace: tr,
		})
	})
	for i, r := range runs {
		limit := i + 1
		res.FDPS[limit] = r.FDPS()
		res.LatencyMs[limit] = r.LatencySummary().MeanOrZero()
		res.Table.AddRow(strconv.Itoa(limit), r.FDPS(), r.LatencySummary().MeanOrZero(),
			strconv.Itoa(r.FPESyncBlocks))
	}
	return res
}

// DTVCalibrationResult compares DTV error with calibration intervals on a
// jittered, skewed panel (§5.1's error-accumulation claim).
type DTVCalibrationResult struct {
	Table *report.Table
	// MeanAbsErrMs maps calibration interval (0 = off) → DTV error.
	MeanAbsErrMs map[int]float64
}

// AblateDTVCalibration runs D-VSync on a panel with 80 µs edge jitter and
// a 300 ppm oscillator skew, sweeping how often DTV recalibrates.
func AblateDTVCalibration() *DTVCalibrationResult {
	res := &DTVCalibrationResult{
		Table: &report.Table{
			Title:   "Ablation — DTV calibration interval (80 µs jitter, 300 ppm skew panel)",
			Note:    "0 = calibration disabled: the virtual clock drifts off the real panel",
			Columns: []string{"calibrate every N edges", "mean |error| (ms)", "max |error| (ms)"},
		},
		MeanAbsErrMs: map[int]float64{},
	}
	dev := scenarios.Pixel5
	p := scenarios.BaseProfile("ablate-dtv", dev, scenarios.Scattered, workload.Deterministic)
	p.LongRatio = 0.02
	tr := p.Generate(1500, Seed)
	panel := dev.Panel()
	panel.JitterStdDev = simtime.FromMicros(80)
	panel.JitterSeed = 11
	panel.PeriodSkewPPM = 300
	intervals := []int{2, 4, 16, 64, 0}
	runs := par.Map(len(intervals), func(i int) *sim.Result {
		cfg := core.DTVConfig{CalibrateEvery: intervals[i], PeriodSmoothing: 0.25}
		if intervals[i] == 0 {
			cfg.CalibrateEvery = 1 << 30 // effectively never
		}
		return sim.Run(sim.Config{
			Mode: sim.ModeDVSync, Panel: panel, Buffers: 5, Trace: tr, DTV: cfg,
		})
	})
	for i, r := range runs {
		every := intervals[i]
		res.MeanAbsErrMs[every] = r.DTVMeanAbsErrMs
		label := strconv.Itoa(every)
		if every == 0 {
			label = "off"
		}
		res.Table.AddRow(label, r.DTVMeanAbsErrMs, r.DTVMaxAbsErrMs)
	}
	return res
}

// IPLPredictorResult compares IPL predictors on the evaluated gestures.
type IPLPredictorResult struct {
	Table *report.Table
	// ErrPx maps predictor name → mean |prediction − truth| in px at a
	// 3-period horizon.
	ErrPx map[string]float64
}

// AblateIPLPredictors measures prediction error of last-value (no IPL),
// linear (the paper's ZDP) and quadratic fits across swipe, fling and
// pinch trajectories at the D-Timestamp horizon D-VSync actually uses.
func AblateIPLPredictors() *IPLPredictorResult {
	res := &IPLPredictorResult{
		Table: &report.Table{
			Title:   "Ablation — IPL predictors at a 3-period (50 ms) horizon, 120 Hz digitizer",
			Columns: []string{"gesture", "last-value (px)", "linear/ZDP (px)", "quadratic (px)", "kalman (px)"},
		},
		ErrPx: map[string]float64{},
	}
	horizon := 3 * simtime.PeriodForHz(60)
	gestures := []struct {
		name string
		traj input.Trajectory
	}{
		{"swipe 1500 px/s", input.Swipe{Velocity: 1500, Duration: simtime.FromSeconds(1)}},
		{"fling (decelerating)", input.Fling{Velocity: 2500, DownFor: simtime.FromMillis(200),
			Friction: 3, Settle: simtime.FromMillis(800)}},
		{"pinch with tremor", input.Pinch{StartDistance: 200, RatePxPerSec: 350,
			TremorAmp: 5, TremorHz: 7, Duration: simtime.FromSeconds(1)}},
	}
	predictors := []struct {
		name string
		p    core.InputPredictor
	}{
		{"last", ipl.LastValue{}},
		{"linear", ipl.Linear{}},
		{"quadratic", ipl.Quadratic{}},
		{"kalman", ipl.Kalman{}},
	}
	for _, g := range gestures {
		samples := coreSamples(input.Digitizer{RateHz: 120}.Samples(g.traj))
		errs := map[string]float64{}
		for _, pr := range predictors {
			var sum float64
			var n int
			for ms := 150.0; ; ms += 25 {
				now := simtime.Time(simtime.FromMillis(ms))
				target := now.Add(horizon)
				if target > g.traj.End() {
					break
				}
				got := pr.p.Predict(coreHistory(samples, now), target)
				sum += math.Abs(got - g.traj.Value(target))
				n++
			}
			errs[pr.name] = sum / float64(n)
			res.ErrPx[g.name+"/"+pr.name] = errs[pr.name]
		}
		res.Table.AddRow(g.name, errs["last"], errs["linear"], errs["quadratic"], errs["kalman"])
	}
	return res
}

// PipelineDepthResult sweeps the classic VSync pipeline-depth cap.
type PipelineDepthResult struct {
	Table *report.Table
	// FDPS and LatencyMs map depth → baseline behaviour.
	FDPS, LatencyMs map[int]float64
}

// AblateVSyncPipelineDepth shows why the baseline models depth 2: depth 1
// double-buffers (janky), depth ≥3 turns the baseline into an accidental
// accumulator with ever-higher latency (the trade the paper's Figure 2
// architecture actually makes).
func AblateVSyncPipelineDepth() *PipelineDepthResult {
	res := &PipelineDepthResult{
		Table: &report.Table{
			Title:   "Ablation — classic VSync pipeline depth (Pixel 5, moderate app, 5-buffer pool)",
			Note:    "depth 2 reproduces the measured devices; deeper = stale accumulation",
			Columns: []string{"pipeline depth", "FDPS", "mean latency (ms)"},
		},
		FDPS:      map[int]float64{},
		LatencyMs: map[int]float64{},
	}
	dev := scenarios.Pixel5
	p := scenarios.BaseProfile("ablate-depth", dev, scenarios.Moderate, workload.Deterministic)
	tr := CalibrateFDPS(p, 1000, dev, dev.Buffers, 2.0, Seed)
	runs := par.Map(4, func(i int) *sim.Result {
		return sim.Run(sim.Config{
			Mode: sim.ModeVSync, Panel: dev.Panel(), Buffers: 5,
			VSyncPipelineDepth: i + 1, Trace: tr,
		})
	})
	for i, r := range runs {
		depth := i + 1
		res.FDPS[depth] = r.FDPS()
		res.LatencyMs[depth] = r.LatencySummary().MeanOrZero()
		res.Table.AddRow(strconv.Itoa(depth), r.FDPS(), r.LatencySummary().MeanOrZero())
	}
	return res
}

// PacingResult quantifies the §4.4 DTV correctness guarantee.
type PacingResult struct {
	Table *report.Table
	// WithDTV / WithExecTime are max pacing errors (normalised progress)
	// when sampling the animation at the D-Timestamp vs. at the execution
	// time.
	WithDTV, WithExecTime float64
}

// AblateDTVPacing pre-renders an app-opening animation and compares the
// on-screen motion uniformity when frames sample the curve at their
// D-Timestamp (DTV, correct) versus at their execution time (naive): the
// naive variant visibly runs fast during accumulation and stalls on long
// frames — the artifact DTV exists to prevent.
func AblateDTVPacing() *PacingResult {
	res := &PacingResult{Table: &report.Table{
		Title:   "Ablation — animation pacing with and without the DTV timestamp (§4.4)",
		Columns: []string{"sampling basis", "max pacing error", "RMS pacing error"},
	}}
	dev := scenarios.Pixel5
	p := scenarios.BaseProfile("ablate-pacing", dev, scenarios.Moderate, workload.Deterministic)
	tr := CalibrateFDPS(p, 120, dev, dev.Buffers, 2.0, Seed)
	a := &anim.Animation{
		Name: "app-open", Curve: anim.EaseInOut{},
		Start: 0, Duration: 2 * simtime.Second, From: 0, To: 1000,
	}
	run := func(useDTV bool) anim.PacingReport {
		r := sim.Run(sim.Config{
			Mode: sim.ModeDVSync, Panel: dev.Panel(), Buffers: 5, Trace: tr,
			ContentSample: func(f *buffer.Frame, now simtime.Time) {
				basis := f.DTimestamp
				if !useDTV {
					basis = now
				}
				f.ContentValue = a.SampleAt(basis)
			},
		})
		var at []simtime.Time
		var vals []float64
		for _, f := range r.Presented {
			at = append(at, f.PresentAt)
			vals = append(vals, f.ContentValue)
		}
		return a.Pacing(at, vals)
	}
	reports := par.Map(2, func(i int) anim.PacingReport { return run(i == 0) })
	dtv, naive := reports[0], reports[1]
	res.WithDTV, res.WithExecTime = dtv.MaxAbsError, naive.MaxAbsError
	res.Table.AddRow("D-Timestamp (DTV)", dtv.MaxAbsError, dtv.RMSError)
	res.Table.AddRow("execution time (naive)", naive.MaxAbsError, naive.RMSError)
	return res
}

// ConsumerPolicyResult compares the FIFO queue discipline against
// SurfaceFlinger-style stale dropping under both architectures.
type ConsumerPolicyResult struct {
	Table *report.Table
	// Rows maps "mode/policy" → (FDPS, latency ms, frames discarded).
	Rows map[string][3]float64
}

// AblateConsumerPolicy shows why D-VSync pins FIFO consumption (§4.4): a
// stale-dropping consumer trims the VSync path's post-jank latency, but
// under D-VSync it throws away the accumulated cushion — wasted rendering
// with no smoothness to show for it.
func AblateConsumerPolicy() *ConsumerPolicyResult {
	res := &ConsumerPolicyResult{
		Table: &report.Table{
			Title:   "Ablation — consumer policy: FIFO vs drop-stale (Pixel 5, moderate app)",
			Columns: []string{"architecture", "consumer", "FDPS", "latency (ms)", "frames discarded"},
		},
		Rows: map[string][3]float64{},
	}
	dev := scenarios.Pixel5
	p := scenarios.BaseProfile("ablate-consumer", dev, scenarios.Moderate, workload.Deterministic)
	tr := CalibrateFDPS(p, 1000, dev, dev.Buffers, 2.0, Seed)
	type combo struct {
		mode sim.Mode
		drop bool
	}
	var combos []combo
	for _, mode := range []sim.Mode{sim.ModeVSync, sim.ModeDVSync} {
		for _, drop := range []bool{false, true} {
			combos = append(combos, combo{mode, drop})
		}
	}
	runs := par.Map(len(combos), func(i int) *sim.Result {
		buffers := 3
		if combos[i].mode == sim.ModeDVSync {
			buffers = 4
		}
		return sim.Run(sim.Config{
			Mode: combos[i].mode, Panel: dev.Panel(), Buffers: buffers,
			Trace: tr, DropStaleBuffers: combos[i].drop,
		})
	})
	for i, r := range runs {
		mode, drop := combos[i].mode, combos[i].drop
		policy := "FIFO"
		if drop {
			policy = "drop-stale"
		}
		key := mode.String() + "/" + policy
		res.Rows[key] = [3]float64{r.FDPS(), r.LatencySummary().MeanOrZero(), float64(r.StaleDropped)}
		res.Table.AddRow(mode.String(), policy, r.FDPS(), r.LatencySummary().MeanOrZero(),
			strconv.Itoa(r.StaleDropped))
	}
	return res
}

// AppOffsetResult sweeps the software VSync-app offset.
type AppOffsetResult struct {
	Table *report.Table
	// FDPS and InputAgeMs map offset (as a fraction of the period) to the
	// drop rate and the input-to-photon staleness.
	FDPS, InputAgeMs map[int]float64
}

// AblateAppOffset sweeps the classic Android tuning knob: the VSync-app
// software offset. Triggering the UI later in the period samples fresher
// input (lower input-to-photon age) but shrinks the frame's deadline, so
// drops rise — the trade-off D-VSync sidesteps by decoupling execution
// from the display clock entirely.
func AblateAppOffset() *AppOffsetResult {
	res := &AppOffsetResult{
		Table: &report.Table{
			Title:   "Ablation — VSync-app offset (classic VSync, Pixel 5, moderate app)",
			Note:    "later triggers = fresher input but tighter deadlines; D-VSync escapes the trade",
			Columns: []string{"offset (% of period)", "FDPS", "input age at photon (ms)"},
		},
		FDPS:       map[int]float64{},
		InputAgeMs: map[int]float64{},
	}
	dev := scenarios.Pixel5
	period := dev.Period()
	p := scenarios.BaseProfile("ablate-offset", dev, scenarios.Moderate, workload.Deterministic)
	tr := CalibrateFDPS(p, 1000, dev, dev.Buffers, 2.0, Seed)
	pcts := []int{0, 20, 40, 60}
	runs := par.Map(len(pcts), func(i int) *sim.Result {
		off := simtime.Duration(int64(period) * int64(pcts[i]) / 100)
		return sim.Run(sim.Config{
			Mode: sim.ModeVSync, Panel: dev.Panel(), Buffers: dev.Buffers,
			Trace: tr, AppOffset: off,
		})
	})
	for i, r := range runs {
		pct := pcts[i]
		// Input age = present − trigger: triggering later in the period
		// trims the age by the offset.
		var age float64
		for _, f := range r.Presented {
			age += f.PresentAt.Sub(f.UIStart).Milliseconds()
		}
		age /= float64(len(r.Presented))
		res.FDPS[pct] = r.FDPS()
		res.InputAgeMs[pct] = age
		res.Table.AddRow(strconv.Itoa(pct)+"%", r.FDPS(), age)
	}
	return res
}
