package exp

import (
	"fmt"
	"strings"

	"dvsync/internal/par"
	"dvsync/internal/report"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// Fig10Result is the execution-pattern comparison.
type Fig10Result struct {
	Table *report.Table
	// Timeline is an ASCII rendering of both runtime traces.
	Timeline string
	// VSyncJanks / DVSyncJanks for the identical workload.
	VSyncJanks, DVSyncJanks int
}

// Fig10 regenerates Figure 10: the execution patterns of VSync and D-VSync
// on the exact same series of workloads — short frames with one heavy key
// frame. The baseline produces janks in a row while D-VSync consumes
// pre-rendered buffers and stays perfectly smooth.
func Fig10() *Fig10Result {
	dev := scenarios.Pixel5
	period := dev.Period()
	// Figure 10's workload: steady short frames, one red key frame worth
	// ~3.5 periods of work.
	tr := &workload.Trace{Name: "fig10"}
	for i := 0; i < 28; i++ {
		ms := 0.38 * period.Milliseconds()
		if i == 12 {
			ms = 3.5 * period.Milliseconds()
		}
		total := simtime.FromMillis(ms)
		ui := simtime.Duration(float64(total) * 0.35)
		tr.Costs = append(tr.Costs, workload.Cost{UI: ui, RS: total - ui,
			Class: workload.Deterministic})
	}

	// Both architectures replay the identical (read-only) trace; the two
	// runs are independent, so they fan out as a two-job par.Map.
	runs := par.Map(2, func(i int) *sim.Result {
		if i == 0 {
			return VSyncRun(tr, dev, 3)
		}
		return DVSyncRun(tr, dev, 5)
	})
	v, d := runs[0], runs[1]

	res := &Fig10Result{
		Table: &report.Table{
			Title:   "Figure 10 — execution patterns on the same workload (one 3.5-period key frame)",
			Columns: []string{"architecture", "buffers", "janks", "frames presented", "max queue depth"},
		},
		VSyncJanks:  len(v.Janks),
		DVSyncJanks: len(d.Janks),
	}
	res.Table.AddRow("VSync (a)", "3", fmt.Sprintf("%d", len(v.Janks)),
		fmt.Sprintf("%d", len(v.Presented)), "-")
	res.Table.AddRow("D-VSync (b)", "5 (1 front + 4 back)", fmt.Sprintf("%d", len(d.Janks)),
		fmt.Sprintf("%d", len(d.Presented)), "-")
	res.Timeline = renderTimeline(v, "VSync (a)") + "\n" + renderTimeline(d, "D-VSync (b)")
	return res
}

// renderTimeline draws one lane per concept: frame starts (execution), the
// latch/jank stream at the panel, one column per VSync period.
func renderTimeline(r *sim.Result, label string) string {
	period := r.Period
	cols := int(r.LastLatch/simtime.Time(period)) + 2
	if cols > 120 {
		cols = 120
	}
	exec := make([]byte, cols)
	disp := make([]byte, cols)
	for i := range exec {
		exec[i], disp[i] = '.', '.'
	}
	col := func(t simtime.Time) int {
		c := int(t / simtime.Time(period))
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	for _, f := range r.Presented {
		c := col(f.UIStart)
		if f.UICost+f.RSCost > period {
			exec[c] = 'K' // key frame execution start
		} else if exec[c] == '.' {
			exec[c] = 'e'
		}
		disp[col(f.LatchedAt)] = '#'
	}
	for _, j := range r.Janks {
		disp[col(j.At)] = 'J'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  execute %s\n  display %s\n", label, exec, disp)
	b.WriteString("  (e/K frame start, # latch, J jank, one column per VSync period)\n")
	return b.String()
}
