package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", w.Mean())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.N() != 0 {
		t.Error("empty Welford should be zero")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 0.5); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("P50 = %v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40})
	if s.N != 4 || s.Mean != 25 || s.Min != 10 || s.Max != 40 {
		t.Errorf("summary %+v", s)
	}
	if s.P50 != 25 {
		t.Errorf("P50 = %v", s.P50)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := CDF(xs, []float64{0, 1, 2.5, 4, 10})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestJankReport(t *testing.T) {
	r := JankReport{Janks: 12, Edges: 120, WindowSeconds: 2}
	if r.FDPS() != 6 {
		t.Errorf("FDPS = %v", r.FDPS())
	}
	if r.DropPercent() != 10 {
		t.Errorf("DropPercent = %v", r.DropPercent())
	}
	if got := r.EffectiveFPS(60); got != 54 {
		t.Errorf("EffectiveFPS = %v", got)
	}
	zero := JankReport{}
	if zero.FDPS() != 0 || zero.DropPercent() != 0 {
		t.Error("zero report should be zero")
	}
}

func TestCountStutters(t *testing.T) {
	cfg := DefaultStutterConfig()
	cases := []struct {
		name  string
		janks []JankEvent
		want  int
	}{
		{"none", nil, 0},
		{"single non-key", []JankEvent{{EdgeSeq: 5}}, 0},
		{"single key", []JankEvent{{EdgeSeq: 5, KeyFrame: true}}, 1},
		{"run of two", []JankEvent{{EdgeSeq: 5}, {EdgeSeq: 6}}, 1},
		{"two separate runs", []JankEvent{{EdgeSeq: 5}, {EdgeSeq: 6}, {EdgeSeq: 20}, {EdgeSeq: 21}, {EdgeSeq: 22}}, 2},
		{"isolated non-key janks", []JankEvent{{EdgeSeq: 5}, {EdgeSeq: 10}, {EdgeSeq: 15}}, 0},
		{"isolated key janks", []JankEvent{{EdgeSeq: 5, KeyFrame: true}, {EdgeSeq: 10, KeyFrame: true}}, 2},
	}
	for _, c := range cases {
		if got := CountStutters(c.janks, cfg); got != c.want {
			t.Errorf("%s: stutters = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCountStuttersMinRunOnly(t *testing.T) {
	cfg := StutterConfig{MinRun: 3, KeyFrameJank: false}
	janks := []JankEvent{{EdgeSeq: 1, KeyFrame: true}, {EdgeSeq: 2}, {EdgeSeq: 4}, {EdgeSeq: 5}, {EdgeSeq: 6}}
	if got := CountStutters(janks, cfg); got != 1 {
		t.Errorf("stutters = %d, want 1 (only the 3-run)", got)
	}
}

func TestPowerModel(t *testing.T) {
	m := DefaultPowerModel()
	e1 := m.EnergyJoules(1000, 60000)
	e2 := m.EnergyJoules(1100, 60000)
	if e2 <= e1 {
		t.Error("more work must cost more energy")
	}
	inc := PercentIncrease(e1, e2)
	if inc <= 0 || inc > 1 {
		t.Errorf("increase = %v%%, want small positive", inc)
	}
	if m.RenderInstructions(1) != m.RenderInstructionsPerMs {
		t.Error("render instruction proxy wrong")
	}
	if m.LittleInstructions(2) != 2*m.LittleInstructionsPerMs {
		t.Error("little instruction proxy wrong")
	}
}

func TestPercentHelpers(t *testing.T) {
	if PercentIncrease(100, 110) != 10 {
		t.Error("PercentIncrease")
	}
	if PercentReduction(100, 25) != 75 {
		t.Error("PercentReduction")
	}
	if PercentIncrease(0, 5) != 0 || PercentReduction(0, 5) != 0 {
		t.Error("zero base should yield 0")
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		pa, pb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := Percentile(xs, pa), Percentile(xs, pb)
		return qa <= qb && qa >= xs[0] && qb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
