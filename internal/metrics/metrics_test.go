package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", w.Mean())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.N() != 0 {
		t.Error("empty Welford should be zero")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	// Table over the boundary cases of the documented contract: NaN on an
	// empty sample, clamping at p ≤ 0 / p ≥ 1, and the n = 1 degeneracy.
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"p0-min", ten, 0, 1},
		{"p-negative-clamps", ten, -0.5, 1},
		{"p1-max", ten, 1, 10},
		{"p-over-one-clamps", ten, 1.5, 10},
		{"p50-interpolates", ten, 0.5, 5.5},
		{"n1-p0", []float64{7}, 0, 7},
		{"n1-p50", []float64{7}, 0.5, 7},
		{"n1-p1", []float64{7}, 1, 7},
		{"n2-p25", []float64{2, 4}, 0.25, 2.5},
	}
	for _, tc := range cases {
		if got := Percentile(tc.sorted, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
	// Regression for the original defect: the empty-sample quantile used to
	// be a silent 0, indistinguishable from a real zero-latency sample.
	for _, p := range []float64{0, 0.5, 1} {
		if got := Percentile(nil, p); !math.IsNaN(got) {
			t.Errorf("Percentile(nil, %v) = %v, want NaN", p, got)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40})
	if s.N != 4 || s.Mean != 25 || s.Min != 10 || s.Max != 40 {
		t.Errorf("summary %+v", s)
	}
	if s.P50 != 25 {
		t.Errorf("P50 = %v", s.P50)
	}
	if !s.Valid() || s.MeanOrZero() != 25 {
		t.Errorf("non-empty summary should be valid: %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.Std != 0 {
		t.Errorf("singleton summary %+v", s)
	}
	for name, q := range map[string]float64{"P50": s.P50, "P90": s.P90, "P95": s.P95, "P99": s.P99} {
		if q != 3.5 {
			t.Errorf("singleton %s = %v, want 3.5", name, q)
		}
	}
}

func TestSummarizeEmptyContract(t *testing.T) {
	empty := Summarize(nil)
	if empty.N != 0 || empty.Valid() {
		t.Errorf("empty summary should be invalid: %+v", empty)
	}
	// Regression for the original defect: every statistic of an empty
	// sample used to read as a plausible 0.
	for name, v := range map[string]float64{
		"Mean": empty.Mean, "Std": empty.Std, "Min": empty.Min, "Max": empty.Max,
		"P50": empty.P50, "P90": empty.P90, "P95": empty.P95, "P99": empty.P99,
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %v, want NaN", name, v)
		}
	}
	if empty.MeanOrZero() != 0 {
		t.Errorf("MeanOrZero on empty = %v, want 0", empty.MeanOrZero())
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := CDF(xs, []float64{0, 1, 2.5, 4, 10})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestJankReport(t *testing.T) {
	r := JankReport{Janks: 12, Edges: 120, WindowSeconds: 2}
	if r.FDPS() != 6 {
		t.Errorf("FDPS = %v", r.FDPS())
	}
	if r.DropPercent() != 10 {
		t.Errorf("DropPercent = %v", r.DropPercent())
	}
	if got := r.EffectiveFPS(60); got != 54 {
		t.Errorf("EffectiveFPS = %v", got)
	}
	zero := JankReport{}
	if zero.FDPS() != 0 || zero.DropPercent() != 0 {
		t.Error("zero report should be zero")
	}
}

func TestCountStutters(t *testing.T) {
	cfg := DefaultStutterConfig()
	cases := []struct {
		name  string
		janks []JankEvent
		want  int
	}{
		{"none", nil, 0},
		{"single non-key", []JankEvent{{EdgeSeq: 5}}, 0},
		{"single key", []JankEvent{{EdgeSeq: 5, KeyFrame: true}}, 1},
		{"run of two", []JankEvent{{EdgeSeq: 5}, {EdgeSeq: 6}}, 1},
		{"two separate runs", []JankEvent{{EdgeSeq: 5}, {EdgeSeq: 6}, {EdgeSeq: 20}, {EdgeSeq: 21}, {EdgeSeq: 22}}, 2},
		{"isolated non-key janks", []JankEvent{{EdgeSeq: 5}, {EdgeSeq: 10}, {EdgeSeq: 15}}, 0},
		{"isolated key janks", []JankEvent{{EdgeSeq: 5, KeyFrame: true}, {EdgeSeq: 10, KeyFrame: true}}, 2},
	}
	for _, c := range cases {
		if got := CountStutters(c.janks, cfg); got != c.want {
			t.Errorf("%s: stutters = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCountStuttersMinRunOnly(t *testing.T) {
	cfg := StutterConfig{MinRun: 3, KeyFrameJank: false}
	janks := []JankEvent{{EdgeSeq: 1, KeyFrame: true}, {EdgeSeq: 2}, {EdgeSeq: 4}, {EdgeSeq: 5}, {EdgeSeq: 6}}
	if got := CountStutters(janks, cfg); got != 1 {
		t.Errorf("stutters = %d, want 1 (only the 3-run)", got)
	}
}

func TestPowerModel(t *testing.T) {
	m := DefaultPowerModel()
	e1 := m.EnergyJoules(1000, 60000)
	e2 := m.EnergyJoules(1100, 60000)
	if e2 <= e1 {
		t.Error("more work must cost more energy")
	}
	inc := PercentIncrease(e1, e2)
	if inc <= 0 || inc > 1 {
		t.Errorf("increase = %v%%, want small positive", inc)
	}
	if m.RenderInstructions(1) != m.RenderInstructionsPerMs {
		t.Error("render instruction proxy wrong")
	}
	if m.LittleInstructions(2) != 2*m.LittleInstructionsPerMs {
		t.Error("little instruction proxy wrong")
	}
}

func TestPercentHelpers(t *testing.T) {
	if PercentIncrease(100, 110) != 10 {
		t.Error("PercentIncrease")
	}
	if PercentReduction(100, 25) != 75 {
		t.Error("PercentReduction")
	}
	if PercentIncrease(0, 5) != 0 || PercentReduction(0, 5) != 0 {
		t.Error("zero base should yield 0")
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		pa, pb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := Percentile(xs, pa), Percentile(xs, pb)
		return qa <= qb && qa >= xs[0] && qb <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
