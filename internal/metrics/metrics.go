// Package metrics provides the statistics used to evaluate rendering
// performance: frame drops per second (FDPS), frame-drop percentage of
// display time, rendering latency, buffer-stuffing breakdowns, perceived
// stutters, and the power/instruction proxies of §6.4–§6.7.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean/variance online (numerically stable).
type Welford struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	if !w.hasExtrema || x < w.min {
		w.min = x
	}
	if !w.hasExtrema || x > w.max {
		w.max = x
	}
	w.hasExtrema = true
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// WelfordState is the serialisable snapshot of a Welford accumulator. Go's
// JSON encoding round-trips float64 exactly (shortest representation), so a
// restored accumulator continues bit-identically.
type WelfordState struct {
	N          int     `json:"n"`
	Mean       float64 `json:"mean"`
	M2         float64 `json:"m2"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	HasExtrema bool    `json:"has_extrema,omitempty"`
}

// State captures the accumulator for a checkpoint.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max, HasExtrema: w.hasExtrema}
}

// Restore overwrites the accumulator with a checkpointed state.
func (w *Welford) Restore(st WelfordState) error {
	if st.N < 0 {
		return fmt.Errorf("metrics: negative welford count %d", st.N)
	}
	if st.N > 0 != st.HasExtrema {
		return fmt.Errorf("metrics: welford count %d inconsistent with extrema flag %t", st.N, st.HasExtrema)
	}
	w.n, w.mean, w.m2 = st.N, st.Mean, st.M2
	w.min, w.max, w.hasExtrema = st.Min, st.Max, st.HasExtrema
	return nil
}

// Summary is a five-number-style description of a sample. On an empty
// sample (N == 0) every statistic is NaN — check Valid before formatting.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
	P50, P90, P95, P99  float64
}

// Valid reports whether the summary describes a non-empty sample; an
// invalid summary's statistics are all NaN.
func (s Summary) Valid() bool { return s.N > 0 }

// MeanOrZero returns the mean, or 0 for an empty sample — the guard for
// report columns where an absent sample should render as zero rather than
// NaN.
func (s Summary) MeanOrZero() float64 {
	if !s.Valid() {
		return 0
	}
	return s.Mean
}

// Summarize computes a Summary of xs (xs is not modified).
//
// Empty-input contract: a zero-length sample has no mean, extrema or
// quantiles, so every statistic is NaN (never a misleading 0 — a 0 ms
// latency summary reads as "instant", not "absent"). N stays 0 so callers
// can branch with Valid.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{
			Mean: nan, Std: nan, Min: nan, Max: nan,
			P50: nan, P90: nan, P95: nan, P99: nan,
		}
	}
	s := Summary{N: len(xs)}
	var w Welford
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, x := range xs {
		w.Add(x)
	}
	s.Mean, s.Std, s.Min, s.Max = w.Mean(), w.Std(), w.Min(), w.Max()
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile interpolates the p-quantile (p ∈ [0,1]) of an ascending-sorted
// sample. p ≤ 0 returns the minimum and p ≥ 1 the maximum.
//
// Empty-input contract: the quantile of an empty sample does not exist, so
// the result is NaN (the old silent 0 masqueraded as a real observation in
// latency tables).
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF evaluates the empirical CDF of a sample at the given thresholds.
func CDF(xs []float64, thresholds []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(thresholds))
	for i, th := range thresholds {
		idx := sort.Search(len(sorted), func(j int) bool { return sorted[j] > th })
		out[i] = float64(idx) / float64(len(sorted))
	}
	return out
}

// Histogram bins a sample into equal-width buckets over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic(fmt.Sprintf("metrics: invalid histogram [%v,%v)/%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations added.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// JankReport summarises frame drops over a display window.
type JankReport struct {
	// Janks is the number of refresh edges that had to repeat the previous
	// frame while updates were due.
	Janks int
	// Edges is the number of refresh edges in the active display window.
	Edges int
	// WindowSeconds is the active display window length.
	WindowSeconds float64
}

// FDPS returns frame drops per second — the industry metric of §3.2.
func (r JankReport) FDPS() float64 {
	if r.WindowSeconds <= 0 {
		return 0
	}
	return float64(r.Janks) / r.WindowSeconds
}

// DropPercent returns frame drops as a share of total display time
// (Figure 5's FD%).
func (r JankReport) DropPercent() float64 {
	if r.Edges == 0 {
		return 0
	}
	return 100 * float64(r.Janks) / float64(r.Edges)
}

// EffectiveFPS returns the achieved update rate given the nominal rate.
func (r JankReport) EffectiveFPS(nominalHz float64) float64 {
	if r.Edges == 0 {
		return nominalHz
	}
	return nominalHz * float64(r.Edges-r.Janks) / float64(r.Edges)
}

// StutterConfig tunes the perceived-stutter detector used for Table 2.
type StutterConfig struct {
	// MinRun is the number of consecutive janks that a user perceives as a
	// stutter even on non-key frames. The paper's UX evaluators confirm
	// janks with a high-speed camera; isolated single drops at high
	// refresh rates are typically below perception.
	MinRun int
	// KeyFrameJank counts a single jank as a stutter when it lands on a
	// key frame ("users may experience a stutter if it is a key frame in a
	// series of screen updates", §2).
	KeyFrameJank bool
}

// DefaultStutterConfig mirrors the industrial criteria described in §6.2.
func DefaultStutterConfig() StutterConfig {
	return StutterConfig{MinRun: 2, KeyFrameJank: true}
}

// JankEvent is one repeated-frame edge, tagged with whether the missed
// update was a key (heavily loaded) frame.
type JankEvent struct {
	// EdgeSeq is the refresh edge index.
	EdgeSeq uint64
	// KeyFrame marks janks caused by heavily loaded frames.
	KeyFrame bool
}

// CountStutters applies the detector to a jank sequence. Consecutive edges
// (by EdgeSeq) form runs; each qualifying run counts as one stutter.
func CountStutters(janks []JankEvent, cfg StutterConfig) int {
	if len(janks) == 0 {
		return 0
	}
	stutters := 0
	runLen := 0
	runKey := false
	var prev uint64
	flush := func() {
		if runLen == 0 {
			return
		}
		if runLen >= cfg.MinRun || (cfg.KeyFrameJank && runKey) {
			stutters++
		}
		runLen = 0
		runKey = false
	}
	for i, j := range janks {
		if i > 0 && j.EdgeSeq != prev+1 {
			flush()
		}
		runLen++
		runKey = runKey || j.KeyFrame
		prev = j.EdgeSeq
	}
	flush()
	return stutters
}

// PowerModel converts execution accounting into the §6.7 proxies.
type PowerModel struct {
	// ActiveMilliwatts is drawn while the rendering stack executes.
	ActiveMilliwatts float64
	// BaseMilliwatts is the device's static draw over the same window.
	BaseMilliwatts float64
	// RenderInstructionsPerMs approximates instructions retired per
	// millisecond of render-service work on the middle/big cores
	// (calibrated so the per-frame count over the OS use cases lands near
	// the paper's 10.8 M instructions/frame at 120 Hz, §6.7).
	RenderInstructionsPerMs float64
	// LittleInstructionsPerMs approximates instructions retired per
	// millisecond on the little cores where the VSync/D-VSync threads run
	// (§6.4), converting the 102.6 µs FPE+DTV cost into the paper's
	// ≈56 k-instruction (0.52 %) overhead.
	LittleInstructionsPerMs float64
}

// DefaultPowerModel returns coefficients calibrated against §6.4/§6.7:
// little-core render-service work at roughly 1.3 GIPS effective.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		ActiveMilliwatts:        850,
		BaseMilliwatts:          1900,
		RenderInstructionsPerMs: 2.14e6,
		LittleInstructionsPerMs: 0.55e6,
	}
}

// EnergyJoules returns total energy for a run that executed workMs of
// rendering work over windowMs of wall time.
func (m PowerModel) EnergyJoules(workMs, windowMs float64) float64 {
	return (m.ActiveMilliwatts*workMs + m.BaseMilliwatts*windowMs) / 1e6
}

// RenderInstructions returns the instruction proxy for workMs of
// render-service work.
func (m PowerModel) RenderInstructions(workMs float64) float64 {
	return m.RenderInstructionsPerMs * workMs
}

// LittleInstructions returns the instruction proxy for workMs of
// control-plane (FPE/DTV) work on the little cores.
func (m PowerModel) LittleInstructions(workMs float64) float64 {
	return m.LittleInstructionsPerMs * workMs
}

// PercentIncrease returns 100·(b−a)/a.
func PercentIncrease(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (b - a) / a
}

// PercentReduction returns 100·(a−b)/a.
func PercentReduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (a - b) / a
}
