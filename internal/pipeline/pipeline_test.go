package pipeline

import (
	"testing"

	"dvsync/internal/buffer"
	"dvsync/internal/event"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

func fixedTrace(n int, uiMs, rsMs float64) *workload.Trace {
	t := &workload.Trace{Name: "fixed"}
	for i := 0; i < n; i++ {
		t.Costs = append(t.Costs, workload.Cost{
			UI: simtime.FromMillis(uiMs),
			RS: simtime.FromMillis(rsMs),
		})
	}
	return t
}

func setup(n int, uiMs, rsMs float64, buffers int) (*event.Engine, *buffer.Queue, *Producer) {
	e := event.NewEngine()
	q := buffer.NewQueue(buffer.Config{Buffers: buffers, Width: 10, Height: 10})
	p := NewProducer(e, q, fixedTrace(n, uiMs, rsMs))
	return e, q, p
}

func TestStageTiming(t *testing.T) {
	e, _, p := setup(4, 2, 5, 4)
	f := p.Start(0, StartRequest{Index: 0, ContentTime: 0})
	if f.UIDone != simtime.Time(simtime.FromMillis(2)) {
		t.Errorf("UIDone = %v", f.UIDone)
	}
	if f.RSStart != f.UIDone {
		t.Errorf("RSStart = %v, want UIDone", f.RSStart)
	}
	if f.RSDone != simtime.Time(simtime.FromMillis(7)) {
		t.Errorf("RSDone = %v", f.RSDone)
	}
	e.RunAll()
	if f.QueuedAt != f.RSDone {
		t.Errorf("QueuedAt = %v, want %v", f.QueuedAt, f.RSDone)
	}
}

func TestPipelinedStages(t *testing.T) {
	// Frame 1's UI runs while frame 0's RS is busy; frame 1's RS waits for
	// the RS thread (§2's parallel rendering of consecutive frames).
	e, _, p := setup(4, 2, 10, 4)
	f0 := p.Start(0, StartRequest{Index: 0})
	e.Run(f0.UIDone) // advance to UI-done so the thread is free
	f1 := p.Start(f0.UIDone, StartRequest{Index: 1})
	if f1.UIStart != f0.UIDone {
		t.Errorf("UI not pipelined: %v", f1.UIStart)
	}
	if f1.RSStart != f0.RSDone {
		t.Errorf("RS must serialise: RSStart %v, want %v", f1.RSStart, f0.RSDone)
	}
}

func TestCallbacks(t *testing.T) {
	e, q, p := setup(2, 1, 2, 3)
	var uiDone, queued []int
	p.OnUIDone = func(_ simtime.Time, f *buffer.Frame) { uiDone = append(uiDone, f.Seq) }
	p.OnQueued = func(_ simtime.Time, f *buffer.Frame) { queued = append(queued, f.Seq) }
	p.Start(0, StartRequest{Index: 0})
	e.RunAll()
	if len(uiDone) != 1 || uiDone[0] != 0 {
		t.Errorf("uiDone = %v", uiDone)
	}
	if len(queued) != 1 || queued[0] != 0 {
		t.Errorf("queued = %v", queued)
	}
	if q.QueuedCount() != 1 {
		t.Errorf("queue holds %d", q.QueuedCount())
	}
}

func TestAheadAccounting(t *testing.T) {
	e, q, p := setup(3, 1, 4, 4)
	if p.Ahead() != 0 {
		t.Fatal("fresh producer should have 0 ahead")
	}
	p.Start(0, StartRequest{Index: 0})
	if p.Ahead() != 1 {
		t.Errorf("ahead = %d after start", p.Ahead())
	}
	e.RunAll() // frame queues
	if p.Ahead() != 1 {
		t.Errorf("ahead = %d after queue (still undisplayed)", p.Ahead())
	}
	q.Latch(100, 1000)
	if p.Ahead() != 0 {
		t.Errorf("ahead = %d after latch", p.Ahead())
	}
}

func TestWorkAccounting(t *testing.T) {
	e, _, p := setup(3, 2, 3, 4)
	p.PerFrameOverhead = simtime.FromMicros(100)
	p.Start(0, StartRequest{Index: 0})
	e.RunAll()
	p.Start(e.Now(), StartRequest{Index: 1})
	e.RunAll()
	if got := p.ExecutedWork(); got != simtime.FromMillis(10) {
		t.Errorf("executed = %v", got)
	}
	if got := p.OverheadWork(); got != simtime.FromMicros(200) {
		t.Errorf("overhead = %v", got)
	}
	if p.Started() != 2 {
		t.Errorf("started = %d", p.Started())
	}
}

func TestStartPreconditionsPanic(t *testing.T) {
	_, _, p := setup(2, 5, 5, 3)
	p.Start(0, StartRequest{Index: 0})
	for name, fn := range map[string]func(){
		"ui busy":   func() { p.Start(1, StartRequest{Index: 1}) },
		"bad index": func() { p.Start(simtime.Time(simtime.Second), StartRequest{Index: 99}) },
		"neg index": func() { p.Start(simtime.Time(simtime.Second), StartRequest{Index: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestInflightOrder(t *testing.T) {
	e, _, p := setup(3, 1, 20, 5)
	p.Start(0, StartRequest{Index: 0})
	e.Run(simtime.Time(simtime.FromMillis(1)))
	p.Start(e.Now(), StartRequest{Index: 1})
	e.Run(simtime.Time(simtime.FromMillis(2)))
	p.Start(e.Now(), StartRequest{Index: 2})
	fl := p.Inflight()
	if len(fl) != 3 {
		t.Fatalf("inflight = %d", len(fl))
	}
	for i, f := range fl {
		if f.Seq != i {
			t.Fatalf("inflight order %v", fl)
		}
	}
	if p.OldestInflight().Seq != 0 {
		t.Error("oldest inflight wrong")
	}
}

func TestFrameMetadata(t *testing.T) {
	_, _, p := setup(2, 1, 1, 3)
	f := p.Start(0, StartRequest{
		Index: 0, ContentTime: 123, DTimestamp: 456, Decoupled: true, RateHz: 90,
	})
	if f.ContentTime != 123 || f.DTimestamp != 456 || !f.Decoupled || f.RateHz != 90 {
		t.Errorf("metadata not propagated: %+v", f)
	}
	if p.CostOf(0).UI != simtime.FromMillis(1) {
		t.Error("CostOf wrong")
	}
	if p.TraceLen() != 2 {
		t.Error("TraceLen wrong")
	}
}
