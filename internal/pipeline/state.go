package pipeline

import (
	"fmt"

	"dvsync/internal/buffer"
	"dvsync/internal/event"
	"dvsync/internal/simtime"
)

// PendingStage is one scheduled UI-stage completion at snapshot time.
type PendingStage struct {
	Frame int                  `json:"frame"`
	Sched event.ScheduledEvent `json:"sched"`
}

// PendingRender is one scheduled render-stage completion at snapshot time,
// carrying the queue slot its buffer occupies.
type PendingRender struct {
	Frame int                  `json:"frame"`
	Slot  int                  `json:"slot"`
	Sched event.ScheduledEvent `json:"sched"`
}

// State is the producer's serialisable checkpoint state. Frames are stored
// by value in start order; every other structure references them by seq.
type State struct {
	UIBusyUntil simtime.Time     `json:"ui_busy_until"`
	RSBusyUntil simtime.Time     `json:"rs_busy_until"`
	Started     int              `json:"started"`
	Executed    simtime.Duration `json:"executed"`
	Overhead    simtime.Duration `json:"overhead"`
	Frames      []buffer.Frame   `json:"frames,omitempty"`
	Inflight    []int            `json:"inflight,omitempty"` // frame seqs, oldest first
	UIPending   []PendingStage   `json:"ui_pending,omitempty"`
	RSPending   []PendingRender  `json:"rs_pending,omitempty"`
}

// FrameBySeq returns the started frame with the given stream seq, or nil.
// Frame.Seq doubles as the arena index, so this is the canonical resolver
// for checkpointed frame references (queue slots, presented lists).
func (p *Producer) FrameBySeq(seq int) *buffer.Frame {
	if seq < 0 || seq >= len(p.arena) || !p.startedIdx[seq] {
		return nil
	}
	return &p.arena[seq]
}

// State captures the producer for a checkpoint.
func (p *Producer) State() (State, error) {
	st := State{
		UIBusyUntil: p.uiBusyUntil,
		RSBusyUntil: p.rsBusyUntil,
		Started:     p.started,
		Executed:    p.executed,
		Overhead:    p.overhead,
	}
	if len(p.frames) > 0 {
		st.Frames = make([]buffer.Frame, len(p.frames))
		for i, f := range p.frames {
			st.Frames[i] = *f
		}
	}
	for _, f := range p.inflight {
		st.Inflight = append(st.Inflight, f.Seq)
	}
	for _, e := range p.uiPending {
		sched, ok := p.engine.Lookup(e.id)
		if !ok {
			return State{}, fmt.Errorf("pipeline: pending UI completion of frame %d has no scheduled event", e.f.Seq)
		}
		st.UIPending = append(st.UIPending, PendingStage{Frame: e.f.Seq, Sched: sched})
	}
	for _, e := range p.rsPending {
		sched, ok := p.engine.Lookup(e.id)
		if !ok {
			return State{}, fmt.Errorf("pipeline: pending RS completion of frame %d has no scheduled event", e.f.Seq)
		}
		st.RSPending = append(st.RSPending, PendingRender{Frame: e.f.Seq, Slot: e.b.Slot, Sched: sched})
	}
	return st, nil
}

// Restore loads checkpointed state into a freshly constructed producer:
// refills the arena, re-links the bookkeeping lists, and re-inserts the
// scheduled stage completions. The queue must be restored *after* the
// producer (its slots resolve frames through FrameBySeq); call
// ValidateRestored once both sides are loaded.
func (p *Producer) Restore(st State) error {
	if p.started != 0 {
		return fmt.Errorf("pipeline: restore into a used producer")
	}
	if st.Started != len(st.Frames) {
		return fmt.Errorf("pipeline: started count %d does not match %d frames", st.Started, len(st.Frames))
	}
	if len(st.Frames) > len(p.arena) {
		return fmt.Errorf("pipeline: checkpoint has %d frames, trace has %d", len(st.Frames), len(p.arena))
	}
	p.uiBusyUntil, p.rsBusyUntil = st.UIBusyUntil, st.RSBusyUntil
	p.started = st.Started
	p.executed, p.overhead = st.Executed, st.Overhead
	for i := range st.Frames {
		f := st.Frames[i]
		if f.Seq < 0 || f.Seq >= len(p.arena) {
			return fmt.Errorf("pipeline: restored frame seq %d out of range", f.Seq)
		}
		if p.startedIdx[f.Seq] {
			return fmt.Errorf("pipeline: restored frame seq %d appears twice", f.Seq)
		}
		p.arena[f.Seq] = f
		p.startedIdx[f.Seq] = true
		p.frames = append(p.frames, &p.arena[f.Seq])
	}
	for _, seq := range st.Inflight {
		f := p.FrameBySeq(seq)
		if f == nil {
			return fmt.Errorf("pipeline: inflight references unknown frame %d", seq)
		}
		p.inflight = append(p.inflight, f)
	}
	for _, e := range st.UIPending {
		f := p.FrameBySeq(e.Frame)
		if f == nil {
			return fmt.Errorf("pipeline: pending UI completion references unknown frame %d", e.Frame)
		}
		if err := p.engine.RestoreEvent(e.Sched, p.uiDoneFn); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		p.uiPending = append(p.uiPending, uiEntry{f: f, id: e.Sched.ID})
	}
	for _, e := range st.RSPending {
		f := p.FrameBySeq(e.Frame)
		if f == nil {
			return fmt.Errorf("pipeline: pending RS completion references unknown frame %d", e.Frame)
		}
		b := p.queue.Slot(e.Slot)
		if b == nil {
			return fmt.Errorf("pipeline: pending RS completion references slot %d outside pool", e.Slot)
		}
		if err := p.engine.RestoreEvent(e.Sched, p.rsDoneFn); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		p.rsPending = append(p.rsPending, rsEntry{f: f, b: b, id: e.Sched.ID})
	}
	return nil
}

// ValidateRestored cross-checks the producer against the restored queue:
// every pending render must target a slot the queue holds in Dequeued state
// for the same frame. Run it after both Restore calls.
func (p *Producer) ValidateRestored() error {
	for _, e := range p.rsPending {
		if e.b.State != buffer.Dequeued {
			return fmt.Errorf("pipeline: pending render of frame %d targets slot %d in state %v", e.f.Seq, e.b.Slot, e.b.State)
		}
		if e.b.Frame != e.f {
			return fmt.Errorf("pipeline: pending render of frame %d targets slot %d holding a different frame", e.f.Seq, e.b.Slot)
		}
	}
	return nil
}
