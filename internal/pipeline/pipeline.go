// Package pipeline implements the frame production machinery shared by the
// VSync baseline and D-VSync: the app UI-thread stage and the render
// service/render-thread stage, executing frame workloads into the buffer
// queue (Figure 2's producer side).
//
// The two stages are distinct serial resources, so the UI stage of frame
// N+1 may overlap the render stage of frame N — the pipelining that lets
// OpenHarmony render consecutive frames in parallel (§2).
package pipeline

import (
	"fmt"

	"dvsync/internal/buffer"
	"dvsync/internal/event"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// StartRequest describes one frame execution.
type StartRequest struct {
	// Index is the frame's position in the workload trace.
	Index int
	// ContentTime is the timestamp the frame renders its content for.
	ContentTime simtime.Time
	// DTimestamp is the DTV prediction (zero on the VSync path).
	DTimestamp simtime.Time
	// Decoupled marks FPE-triggered frames.
	Decoupled bool
	// RateHz is the refresh rate the frame targets (LTPO rate binding).
	RateHz int
}

// Producer executes frames through the two-stage pipeline into the queue.
type Producer struct {
	engine *event.Engine
	queue  *buffer.Queue
	trace  *workload.Trace

	uiBusyUntil simtime.Time
	rsBusyUntil simtime.Time
	inflight    []*buffer.Frame // dequeued, not yet queued (FIFO)

	// arena preallocates one Frame slot per trace index; TryStart hands out
	// pointers into it instead of heap-allocating per frame. startedIdx
	// guards the aliasing invariant: each index may be started successfully
	// at most once, or two live frames would share storage.
	arena      []buffer.Frame
	startedIdx []bool

	// uiPending/rsPending are the frames whose stage-completion events are
	// scheduled but not yet dispatched, in schedule order. UIDone and RSDone
	// are monotone in start order and the engine dispatches equal
	// (time, priority) events in insertion order, so the head of each queue
	// is always the frame the next dispatch belongs to — which lets a single
	// persistent handler replace the two per-frame closures TryStart used to
	// allocate. Each entry carries its event ID so checkpoints can capture
	// the scheduled completions.
	uiPending []uiEntry
	rsPending []rsEntry
	uiDoneFn  event.Handler
	rsDoneFn  event.Handler

	// OnUIDone fires when a frame's UI stage completes (the moment the
	// next frame's request becomes actionable for the FPE).
	OnUIDone func(now simtime.Time, f *buffer.Frame)
	// OnQueued fires when a frame's buffer enters the queue.
	OnQueued func(now simtime.Time, f *buffer.Frame)

	// PerFrameOverhead is charged to the work accounting for every started
	// frame (the FPE+DTV bookkeeping cost of §6.4 when running D-VSync).
	PerFrameOverhead simtime.Duration

	// CostScale, when set, multiplies both stage costs of frames started at
	// now — the fault-injection hook for render/UI stall episodes
	// (internal/fault). Must return >= 1.
	CostScale func(now simtime.Time) float64

	started  int
	executed simtime.Duration // total stage time spent
	overhead simtime.Duration // total bookkeeping time spent
	frames   []*buffer.Frame  // all frames started, by start order
}

// uiEntry is one scheduled UI-stage completion.
type uiEntry struct {
	f  *buffer.Frame
	id event.ID
}

// rsEntry pairs a frame with the buffer it renders into, for the RS-done
// dispatch queue.
type rsEntry struct {
	f  *buffer.Frame
	b  *buffer.Buffer
	id event.ID
}

// NewProducer builds a producer over the given queue and workload trace.
// All per-frame storage is preallocated here so the steady-state start
// path does not allocate.
func NewProducer(e *event.Engine, q *buffer.Queue, t *workload.Trace) *Producer {
	if t.Len() == 0 {
		panic("pipeline: empty workload trace")
	}
	p := &Producer{
		engine:     e,
		queue:      q,
		trace:      t,
		arena:      make([]buffer.Frame, t.Len()),
		startedIdx: make([]bool, t.Len()),
		frames:     make([]*buffer.Frame, 0, t.Len()),
		inflight:   make([]*buffer.Frame, 0, 8),
		uiPending:  make([]uiEntry, 0, 8),
		rsPending:  make([]rsEntry, 0, 8),
	}
	p.uiDoneFn = p.dispatchUIDone
	p.rsDoneFn = p.dispatchRSDone
	return p
}

// Reset re-arms the producer for another run over tr, reusing the frame
// arena and pending queues when their capacity allows. Handlers and hooks
// wired at construction persist. A reset producer satisfies the
// checkpoint-restore precondition (no started frames), so pooled runs
// snapshot exactly like fresh ones.
//
//dvlint:hotpath runs once per reused run
func (p *Producer) Reset(tr *workload.Trace) {
	if tr.Len() == 0 {
		panic("pipeline: empty workload trace")
	}
	p.trace = tr
	n := tr.Len()
	if cap(p.arena) >= n {
		p.arena = p.arena[:n]
		p.startedIdx = p.startedIdx[:n]
	} else {
		//dvlint:ignore hotalloc arena grow path: paid only when a longer trace swaps into the runner
		p.arena = make([]buffer.Frame, n)
		//dvlint:ignore hotalloc same grow path as the arena above
		p.startedIdx = make([]bool, n)
	}
	clear(p.startedIdx)
	p.uiBusyUntil = 0
	p.rsBusyUntil = 0
	for i := range p.inflight {
		p.inflight[i] = nil
	}
	p.inflight = p.inflight[:0]
	if cap(p.frames) < n {
		//dvlint:ignore hotalloc same grow path as the arena above
		p.frames = make([]*buffer.Frame, 0, n)
	}
	for i := range p.frames {
		p.frames[i] = nil
	}
	p.frames = p.frames[:0]
	for i := range p.uiPending {
		p.uiPending[i] = uiEntry{}
	}
	p.uiPending = p.uiPending[:0]
	for i := range p.rsPending {
		p.rsPending[i] = rsEntry{}
	}
	p.rsPending = p.rsPending[:0]
	p.started = 0
	p.executed = 0
	p.overhead = 0
}

// dispatchUIDone completes the oldest pending UI stage.
func (p *Producer) dispatchUIDone(t simtime.Time) {
	f := p.uiPending[0].f
	copy(p.uiPending, p.uiPending[1:])
	p.uiPending = p.uiPending[:len(p.uiPending)-1]
	if p.OnUIDone != nil {
		p.OnUIDone(t, f)
	}
}

// dispatchRSDone completes the oldest pending render stage and queues its
// buffer.
func (p *Producer) dispatchRSDone(t simtime.Time) {
	e := p.rsPending[0]
	copy(p.rsPending, p.rsPending[1:])
	p.rsPending = p.rsPending[:len(p.rsPending)-1]
	f := e.f
	f.QueuedAt = t
	// Remove from inflight (always the head: RS is FIFO because RSStart is
	// monotone in start order).
	if len(p.inflight) == 0 || p.inflight[0] != f {
		panic("pipeline: inflight order violated")
	}
	copy(p.inflight, p.inflight[1:])
	p.inflight = p.inflight[:len(p.inflight)-1]
	p.queue.Enqueue(e.b)
	if p.OnQueued != nil {
		p.OnQueued(t, f)
	}
}

// UIFree reports whether the UI thread is idle at now.
func (p *Producer) UIFree(now simtime.Time) bool { return p.uiBusyUntil <= now }

// RSFree reports whether the render-service stage is idle at now — the
// second per-stage occupancy signal the telemetry sampler reads.
func (p *Producer) RSFree(now simtime.Time) bool { return p.rsBusyUntil <= now }

// Ahead returns the number of frames rendered or rendering but not yet
// latched: the quantity the FPE limits and the DTV multiplies by the
// period.
func (p *Producer) Ahead() int { return p.queue.QueuedCount() + len(p.inflight) }

// Started returns how many frames have been started.
func (p *Producer) Started() int { return p.started }

// Frames returns every started frame in start order.
func (p *Producer) Frames() []*buffer.Frame { return p.frames }

// ExecutedWork returns total stage time executed.
func (p *Producer) ExecutedWork() simtime.Duration { return p.executed }

// OverheadWork returns total per-frame bookkeeping time charged.
func (p *Producer) OverheadWork() simtime.Duration { return p.overhead }

// TraceLen returns the workload length.
func (p *Producer) TraceLen() int { return p.trace.Len() }

// CostOf returns the workload cost of frame i.
func (p *Producer) CostOf(i int) workload.Cost { return p.trace.Costs[i] }

// Inflight returns the frames currently being rendered, oldest first. The
// returned slice is the producer's internal buffer; callers must not
// modify it.
func (p *Producer) Inflight() []*buffer.Frame { return p.inflight }

// OldestInflight returns the earliest frame still being rendered, or nil.
func (p *Producer) OldestInflight() *buffer.Frame {
	if len(p.inflight) == 0 {
		return nil
	}
	return p.inflight[0]
}

// Start begins executing frame req.Index at now. The caller must have
// verified UIFree and queue availability; Start panics otherwise, because a
// violated precondition means the driver logic is wrong.
func (p *Producer) Start(now simtime.Time, req StartRequest) *buffer.Frame {
	f := p.TryStart(now, req)
	if f == nil {
		panic(fmt.Sprintf("pipeline: start at %v with no free buffer", now))
	}
	return f
}

// TryStart is Start without the no-free-buffer panic: it returns nil when
// the queue refuses the dequeue (pool exhausted or an injected allocation
// fault), leaving all pipeline state untouched so the caller can retry at
// its next trigger. Stage-cost preconditions still panic.
//
//dvlint:hotpath runs once per produced frame
func (p *Producer) TryStart(now simtime.Time, req StartRequest) *buffer.Frame {
	if req.Index < 0 || req.Index >= p.trace.Len() {
		panic(fmt.Sprintf("pipeline: frame index %d out of range", req.Index))
	}
	if p.startedIdx[req.Index] {
		panic(fmt.Sprintf("pipeline: frame index %d started twice", req.Index))
	}
	if !p.UIFree(now) {
		panic(fmt.Sprintf("pipeline: start at %v while UI busy until %v", now, p.uiBusyUntil))
	}
	cost := p.trace.Costs[req.Index]
	if p.CostScale != nil {
		if s := p.CostScale(now); s != 1 {
			cost.UI = simtime.Duration(float64(cost.UI) * s)
			cost.RS = simtime.Duration(float64(cost.RS) * s)
		}
	}
	f := &p.arena[req.Index]
	*f = buffer.Frame{
		Seq:         req.Index,
		ContentTime: req.ContentTime,
		DTimestamp:  req.DTimestamp,
		Decoupled:   req.Decoupled,
		UIStart:     now,
		RateHz:      req.RateHz,
		UICost:      cost.UI,
		RSCost:      cost.RS,
	}
	b := p.queue.Dequeue(f)
	if b == nil {
		return nil
	}
	p.startedIdx[req.Index] = true

	f.UIDone = now.Add(cost.UI)
	p.uiBusyUntil = f.UIDone
	f.RSStart = simtime.Max(f.UIDone, p.rsBusyUntil)
	f.RSDone = f.RSStart.Add(cost.RS)
	p.rsBusyUntil = f.RSDone

	p.inflight = append(p.inflight, f)
	p.frames = append(p.frames, f)
	p.started++
	p.executed += cost.UI + cost.RS
	p.overhead += p.PerFrameOverhead

	uiID := p.engine.At(f.UIDone, event.PriorityPipeline, p.uiDoneFn)
	p.uiPending = append(p.uiPending, uiEntry{f: f, id: uiID})
	rsID := p.engine.At(f.RSDone, event.PriorityPipeline, p.rsDoneFn)
	p.rsPending = append(p.rsPending, rsEntry{f: f, b: b, id: rsID})
	return f
}
