// Package scenarios catalogs every workload the paper evaluates: the three
// devices of Table 1, the 25 Android apps of Figure 11, the 75 OS use cases
// of Appendix A (subsets of which appear in Figures 12 and 13), the 15
// mobile games of Figure 14, the professional-UX composite tasks of
// Table 2, and the Chromium case-study pages of §6.6.
//
// Each scenario couples a descriptive record (names, figure membership,
// measured baseline numbers from the paper) with a workload profile shape.
// The paper's absolute baseline FDPS values are *calibration targets*: the
// experiment harness scales each profile until the simulated VSync baseline
// matches the measured one, and only then runs D-VSync — so every D-VSync
// number in this repository is a prediction of the mechanism, not a copied
// constant.
package scenarios

import (
	"fmt"

	"dvsync/internal/display"
	"dvsync/internal/simtime"
)

// Backend is the GPU API used in an experiment (§3.2 evaluates both).
type Backend string

// Rendering backends of Table 1.
const (
	GLES   Backend = "GLES"
	Vulkan Backend = "Vulkan"
)

// Device is one row of Table 1.
type Device struct {
	// Name is the marketing name.
	Name string
	// Release is the launch date.
	Release string
	// OS is the system under test.
	OS string
	// Backends lists supported GPU APIs.
	Backends []Backend
	// Width, Height are panel pixels.
	Width, Height int
	// RefreshHz is the panel refresh rate.
	RefreshHz int
	// Buffers is the default VSync buffer-queue size: Android triple
	// buffering, OpenHarmony four (§2).
	Buffers int
	// PaperLatencyMs is the measured average VSync rendering latency
	// (§3.3), kept for EXPERIMENTS.md comparison.
	PaperLatencyMs float64
}

// Period returns the refresh period.
func (d Device) Period() simtime.Duration { return simtime.PeriodForHz(d.RefreshHz) }

// Panel returns the display configuration for simulations on this device.
func (d Device) Panel() display.Config {
	return display.Config{
		Name:      d.Name,
		RefreshHz: d.RefreshHz,
		Width:     d.Width,
		Height:    d.Height,
	}
}

// The three evaluation devices (Table 1).
var (
	Pixel5 = Device{
		Name: "Google Pixel 5", Release: "Oct 2020", OS: "AOSP 13",
		Backends: []Backend{GLES},
		Width:    1080, Height: 2340, RefreshHz: 60, Buffers: 3,
		PaperLatencyMs: 45.8,
	}
	Mate40Pro = Device{
		Name: "Mate 40 Pro", Release: "Nov 2020", OS: "OpenHarmony 4.0",
		Backends: []Backend{GLES},
		Width:    1344, Height: 2772, RefreshHz: 90, Buffers: 4,
		PaperLatencyMs: 32.2,
	}
	Mate60Pro = Device{
		Name: "Mate 60 Pro", Release: "Aug 2023", OS: "OpenHarmony 4.0",
		Backends: []Backend{GLES, Vulkan},
		Width:    1260, Height: 2720, RefreshHz: 120, Buffers: 4,
		PaperLatencyMs: 24.2,
	}
)

// Devices lists Table 1 in paper order.
func Devices() []Device { return []Device{Pixel5, Mate40Pro, Mate60Pro} }

// DeviceByName looks a device up; it panics on unknown names because the
// catalog is static.
func DeviceByName(name string) Device {
	for _, d := range Devices() {
		if d.Name == name {
			return d
		}
	}
	panic(fmt.Sprintf("scenarios: unknown device %q", name))
}
