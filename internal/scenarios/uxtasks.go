package scenarios

import "dvsync/internal/workload"

// UXTask is one row of Table 2: a composite multi-scene task performed by
// professional UX evaluators on Mate 60 Pro, scored by perceived stutters
// (later confirmed with a high-speed camera).
type UXTask struct {
	// Name is a short label.
	Name string
	// Description is the Table 2 task text.
	Description string
	// Scenes is the number of distinct animation scenes the task chains.
	Scenes int
	// SceneFrames is the length of each scene.
	SceneFrames int
	// PaperVSyncStutters is the measured VSync stutter count — the
	// calibration target.
	PaperVSyncStutters int
	// PaperDVSyncStutters is the paper's D-VSync outcome, recorded for
	// EXPERIMENTS.md comparison.
	PaperDVSyncStutters int
	// Tail classifies the workload shape; the shopping task's image-heavy
	// long frames are what limit its improvement to 7 %.
	Tail TailClass
}

// UXTasks lists Table 2 in order.
func UXTasks() []UXTask {
	return []UXTask{
		{
			Name: "cold-start-top20",
			Description: "Cold start and close the Top 20 apps, then slide through " +
				"the multitasking interface.",
			Scenes: 21, SceneFrames: 140,
			PaperVSyncStutters: 20, PaperDVSyncStutters: 12,
			Tail: Moderate,
		},
		{
			Name: "cold-start-news-swipe",
			Description: "Cold start every Top 10 news/social apps, and immediately " +
				"swipe upwards after start.",
			Scenes: 10, SceneFrames: 200,
			PaperVSyncStutters: 28, PaperDVSyncStutters: 3,
			Tail: Scattered,
		},
		{
			Name: "hot-start-news-swipe",
			Description: "Hot start every Top 10 news/social apps, and immediately " +
				"swipe upwards after start.",
			Scenes: 10, SceneFrames: 200,
			PaperVSyncStutters: 25, PaperDVSyncStutters: 2,
			Tail: Scattered,
		},
		{
			Name: "game-news-switch",
			Description: "In a game app, switch to a news app and swipe upwards " +
				"(switch back to the game and repeat 5 times).",
			Scenes: 10, SceneFrames: 180,
			PaperVSyncStutters: 20, PaperDVSyncStutters: 3,
			Tail: Scattered,
		},
		{
			Name: "short-video-comments",
			Description: "In a short video app, open up the comments and swipe " +
				"upwards (slide to the next video and repeat 5 times).",
			Scenes: 10, SceneFrames: 170,
			PaperVSyncStutters: 20, PaperDVSyncStutters: 2,
			Tail: Scattered,
		},
		{
			Name: "music-swipe-play",
			Description: "In a music app, swipe through the music page and click on " +
				"one to play (switch back and repeat 5 times).",
			Scenes: 10, SceneFrames: 150,
			PaperVSyncStutters: 7, PaperDVSyncStutters: 0,
			Tail: Scattered,
		},
		{
			Name: "shopping-products",
			Description: "In a shopping app, swipe through the products page, and " +
				"open up a product to swipe through the details.",
			Scenes: 4, SceneFrames: 300,
			PaperVSyncStutters: 14, PaperDVSyncStutters: 13,
			Tail: HeavyTail,
		},
		{
			Name: "lifestyle-restaurants",
			Description: "In a lifestyle app, swipe through the advertisements, and " +
				"open up all nearby restaurants to swipe through.",
			Scenes: 8, SceneFrames: 220,
			PaperVSyncStutters: 40, PaperDVSyncStutters: 10,
			Tail: Moderate,
		},
	}
}

// Trace synthesises the composite workload for the task on Mate 60 Pro:
// one profile instance per scene, concatenated, each scene with its own
// seed so scene boundaries vary.
func (u UXTask) Trace(seed int64) *workload.Trace {
	var scenes []*workload.Trace
	for i := 0; i < u.Scenes; i++ {
		p := BaseProfile(u.Name, Mate60Pro, u.Tail, workload.Deterministic)
		scenes = append(scenes, p.Generate(u.SceneFrames, seed+int64(i)*7919))
	}
	return workload.Concat(u.Name, scenes...)
}

// PaperUXReduction is the average stutter reduction Table 2 reports.
const PaperUXReduction = 72.3
