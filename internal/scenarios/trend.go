package scenarios

// TrendPoint is one device in Figure 3's pixels-per-second trend: screen
// height × width × refresh rate across flagship phones since 2010.
type TrendPoint struct {
	// Series is the product line ("iPhone", "Galaxy S", …).
	Series string
	// Model is the specific device.
	Model string
	// Year is the release year.
	Year int
	// Width, Height, RefreshHz size the rendering demand.
	Width, Height, RefreshHz int
}

// PixelsPerSecond returns the Figure 3 y-value.
func (p TrendPoint) PixelsPerSecond() int64 {
	return int64(p.Width) * int64(p.Height) * int64(p.RefreshHz)
}

// Trend lists representative flagship devices per series. The paper's point
// is the ≈25× growth from the 2010 baseline (iPhone 4 / Galaxy S) to
// current flagships and foldables.
func Trend() []TrendPoint {
	return []TrendPoint{
		{"iPhone", "iPhone 4", 2010, 640, 960, 60},
		{"iPhone", "iPhone 6", 2014, 750, 1334, 60},
		{"iPhone", "iPhone X", 2017, 1125, 2436, 60},
		{"iPhone Pro Max", "iPhone 13 Pro Max", 2021, 1284, 2778, 120},
		{"iPhone Pro Max", "iPhone 15 Pro Max", 2023, 1290, 2796, 120},
		{"Galaxy S", "Galaxy S", 2010, 480, 800, 60},
		{"Galaxy S", "Galaxy S8", 2017, 1440, 2960, 60},
		{"Galaxy S Ultra", "Galaxy S21 Ultra", 2021, 1440, 3200, 120},
		{"Galaxy S Ultra", "Galaxy S24 Ultra", 2024, 1440, 3120, 120},
		{"Galaxy Z Fold", "Galaxy Z Fold 5", 2023, 1812, 2176, 120},
		{"Mate Pro", "Mate 20 Pro", 2018, 1440, 3120, 60},
		{"Mate Pro", "Mate 40 Pro", 2020, 1344, 2772, 90},
		{"Mate Pro", "Mate 60 Pro", 2023, 1260, 2720, 120},
		{"Mate X", "Mate X3", 2023, 2224, 2496, 120},
		{"Pixel", "Pixel", 2016, 1080, 1920, 60},
		{"Pixel", "Pixel 5", 2020, 1080, 2340, 60},
		{"Pixel Pro", "Pixel 8 Pro", 2023, 1344, 2992, 120},
		{"Pixel Fold", "Pixel Fold", 2023, 1840, 2208, 120},
		{"ROG Phone", "ROG Phone 7", 2023, 1080, 2448, 165},
		{"Oppo Find X Pro", "Find X6 Pro", 2023, 1440, 3168, 120},
		{"Oppo Find N", "Find N3", 2023, 1792, 2240, 120},
		{"Xiaomi Pro", "Xiaomi 13 Pro", 2023, 1440, 3200, 120},
	}
}

// TrendGrowth returns the max/min pixels-per-second ratio across the trend
// (the paper cites ≈25×).
func TrendGrowth() float64 {
	pts := Trend()
	min, max := pts[0].PixelsPerSecond(), pts[0].PixelsPerSecond()
	for _, p := range pts {
		v := p.PixelsPerSecond()
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return float64(max) / float64(min)
}

// ScopeShare is Figure 9's frame-scope breakdown: the share of all frames
// in each D-VSync applicability category for a typical user.
type ScopeShare struct {
	// Category matches workload.Class semantics.
	Category string
	// Share is the fraction of total frames.
	Share float64
}

// Scope returns Figure 9's breakdown: 85 % deterministic animations, 10 %
// simple (predictable) interactions, 5 % realtime.
func Scope() []ScopeShare {
	return []ScopeShare{
		{"deterministic animations", 0.85},
		{"predictable interactions", 0.10},
		{"realtime (sensor/online)", 0.05},
	}
}
