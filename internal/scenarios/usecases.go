package scenarios

import (
	"fmt"

	"dvsync/internal/workload"
)

// UseCase is one of the 75 common OS use cases of Appendix A: the
// industrial benchmark that drives the §3.2 characterisation and the
// Figure 12/13 end-to-end evaluations.
type UseCase struct {
	// ID is the row number in Table 3 (1-based).
	ID int
	// Category groups related cases ("Phone Unlocking", "Folder", …).
	Category string
	// Description is the full operation description.
	Description string
	// Abbrev is the x-axis label used in Figures 12 and 13.
	Abbrev string
}

// UseCases lists all 75 rows of Table 3 in order.
func UseCases() []UseCase {
	return []UseCase{
		{1, "Phone Unlocking", "Swipe upwards in the lock screen to enter the password page", "lock to pswd"},
		{2, "Phone Unlocking", "The fly-in animation of the sceneboard after entering the last digit of the password", "pswd to desk"},
		{3, "Phone Unlocking", "Swipe upwards in the lock screen to unlock the phone (without password)", "unlock lock"},
		{4, "Phone Unlocking", "The fly-in animation of the sceneboard (without password)", "lock to desk"},
		{5, "Sceneboard", "Slide the sceneboard pages left and right (with default pre-installed apps)", "slide desk"},
		{6, "Sceneboard", "Slide the sceneboard pages left and right when exiting an app", "exit app slide"},
		{7, "Sceneboard", "Slide the sceneboard pages left and right with full folders", "slide full fd"},
		{8, "App Operation", "App opening animation when clicking an app", "open app"},
		{9, "App Operation", "App closing animation when swiping upwards", "close app"},
		{10, "App Operation", "App closing animation when sliding rightwards", "sld cls app"},
		{11, "App Operation", "Quickly open and close apps one after another", "qk opn apps"},
		{12, "Folder", "Folder opening animation when clicking a folder", "open fd"},
		{13, "Folder", "Folder closing animation when tapping the empty space outside", "tap cls fd"},
		{14, "Folder", "Folder closing animation when sliding rightwards", "sld cls fd"},
		{15, "Folder", "Folder closing animation when swiping upwards", "swp cls fd"},
		{16, "Cards", "Long click the photos app and the cards show up", "shw ph cd"},
		{17, "Cards", "Tap the empty space outside to close the cards of the photos app", "cls ph cd"},
		{18, "Cards", "Long click the memos app and the cards show up", "shw mem cd"},
		{19, "Cards", "Tap the empty space outside to close the cards of the memos app", "cls mem cd"},
		{20, "Notification Center", "Swipe downwards to open the notification center", "open notif ctr"},
		{21, "Notification Center", "Swipe upwards to close the notification center", "cls notif ctr"},
		{22, "Notification Center", "Tap the empty space to close the notification center", "tap cls notif"},
		{23, "Notification Center", "Click the trash can button to clear all notifications", "clr all notif"},
		{24, "Notification Center", "Slide rightwards to delete one notification and the bottom ones move up", "del one notif"},
		{25, "Control Center", "Swipe downwards to open the control center", "open ctrl ctr"},
		{26, "Control Center", "Swipe upwards to close the control center", "cls ctrl ctr"},
		{27, "Control Center", "Tap the empty space to close the control center", "tap cls ctrl"},
		{28, "Control Center", "Click the unfold button to show all control buttons", "shw ctrl btns"},
		{29, "Control Center", "Screen rotation button animation when clicking on the button", "rot btn anim"},
		{30, "Control Center", "Click the settings button in the control center to enter the settings", "clck settings"},
		{31, "Control Center", "Adjust the screen brightness in the control center", "brtness adj"},
		{32, "Volume Bar", "The volume bar appears when clicking the physical volume adjustment button", "shw vol bar"},
		{33, "Volume Bar", "Disappearing animation of the volume bar after some time of no operation", "vol bar gone"},
		{34, "Volume Bar", "Short click the physical volume adjustment button to adjust volume", "clck adj vol"},
		{35, "Volume Bar", "Long click the physical volume adjustment button to adjust volume", "lclck adj vol"},
		{36, "Volume Bar", "Slide the volume bar on the screen to adjust volume", "sld adj vol"},
		{37, "Volume Bar", "Tap the empty space to hide the volume bar", "hide vol bar"},
		{38, "Tasks", "Swipe upwards on the sceneboard to enter tasks", "opn tasks dsk"},
		{39, "Tasks", "Swipe upwards on the app to enter tasks", "opn tasks app"},
		{40, "Tasks", "Slide the tasks left and right", "sld tasks"},
		{41, "Tasks", "Swipe upwards to delete one task and the last task moves rightwards", "del one task"},
		{42, "Tasks", "Click the trash can button to clear all tasks and go back to the sceneboard", "clr all tasks"},
		{43, "Tasks", "Tap the empty space to leave the tasks", "leave tasks"},
		{44, "Tasks", "Click one task to enter the app", "task open app"},
		{45, "HiBoard", "Slide rightwards from the first page of the sceneboard to enter HiBoard", "enter hibd"},
		{46, "HiBoard", "Click the weather card on HiBoard to enter weather app", "clck hibd cd"},
		{47, "HiBoard", "Swipe upwards in the weather app to return to HiBoard", "swp ret hibd"},
		{48, "HiBoard", "Slide rightwards in the weather app to return to HiBoard", "sld ret hibd"},
		{49, "Global Search", "Swipe downwards to open global search", "open search"},
		{50, "Global Search", "Slide rightwards to close global search", "cls search"},
		{51, "Keyboard", "Click the browser search bar to show the virtual keyboard", "shw kb"},
		{52, "Keyboard", "Click the keyboard hide button to hide the virtual keyboard", "hide kb"},
		{53, "Screen Rotation", "Rotate the screen from vertical to horizontal when displaying a full-screen photo", "vert ph hori"},
		{54, "Screen Rotation", "Rotate the screen from horizontal to vertical when displaying a full-screen photo", "hori ph vert"},
		{55, "Screen Rotation", "Rotate the screen from vertical to horizontal when displaying an app", "vert to hori"},
		{56, "Screen Rotation", "Rotate the screen from horizontal to vertical when displaying an app", "hori to vert"},
		{57, "Photos", "Scroll the albums in the photos app", "scrl albums"},
		{58, "Photos", "Click into one album and enter its photo list", "open album"},
		{59, "Photos", "Scroll the photo list in the photos app", "scrl photos"},
		{60, "Photos", "Click into one photo and view the photo in full screen", "clck photo"},
		{61, "Photos", "Browse the full-screen photo", "brws photo"},
		{62, "Photos", "Swipe downwards the full-screen photo to return to the photo list", "ret photos"},
		{63, "Photos", "Slide rightwards the full-screen photo to return to the photo list", "sld ret photos"},
		{64, "Photos", "Click the back button in the photo list to return to the album list", "ret albums"},
		{65, "Camera", "Click the photo preview in the camera app to enter the photos app", "cam to pht"},
		{66, "Camera", "Slide rightwards from the photos app to return to the camera app", "pht to cam"},
		{67, "Camera", "Slide inside the camera app to select between camera modes", "cam mode sel"},
		{68, "Browser", "Click the pages button to see all the opening pages in the browser app", "brwsr pages"},
		{69, "Settings", "Scroll the settings in the main page of the settings app", "scrl sets"},
		{70, "Settings", "Click the bluetooth setting in the settings app to enter the subpage", "clck bt"},
		{71, "Settings", "Click the WLAN setting in the settings app to enter the subpage", "clck wlan"},
		{72, "Settings", "Click the login tab in the settings app to enter the subpage", "clck login"},
		{73, "Other Apps", "Scroll the main page of WeChat", "scrl wechat"},
		{74, "Other Apps", "Scroll the videos of TikTok", "scrl tiktok"},
		{75, "Other Apps", "Scroll the video lists of Videos", "scrl videos"},
	}
}

// UseCaseByAbbrev looks a use case up by its figure label.
func UseCaseByAbbrev(abbrev string) UseCase {
	for _, u := range UseCases() {
		if u.Abbrev == abbrev {
			return u
		}
	}
	panic(fmt.Sprintf("scenarios: unknown use case %q", abbrev))
}

// CaseRun is one bar of Figure 12 or 13: a use case with its measured
// VSync-baseline FDPS on a device/backend, used as the calibration target.
type CaseRun struct {
	// Case is the Appendix A entry.
	Case UseCase
	// PaperVSyncFDPS is the measured baseline (VSync, 4 buffers on
	// OpenHarmony).
	PaperVSyncFDPS float64
	// Tail classifies the workload shape.
	Tail TailClass
}

// UseCaseFrames is the per-case recording length (each automated case
// covers a few seconds of animation).
const UseCaseFrames = 600

// Profile returns the case's uncalibrated workload shape on the device.
func (c CaseRun) Profile(dev Device) workload.Profile {
	return BaseProfile(c.Case.Abbrev, dev, c.Tail, workload.Deterministic)
}

// Mate60VulkanCases lists Figure 12: the 29 of 75 cases with frame drops on
// Mate 60 Pro under the Vulkan backend (average baseline 8.42 FDPS).
// Baselines are read off the figure in x-axis (descending) order.
func Mate60VulkanCases() []CaseRun {
	type row struct {
		abbrev string
		fdps   float64
		tail   TailClass
	}
	rows := []row{
		{"cls notif ctr", 22.0, Moderate},
		{"rot btn anim", 19.0, Scattered},
		{"cam mode sel", 16.5, Moderate},
		{"tap cls notif", 15.5, Scattered},
		{"clr all notif", 14.0, Moderate},
		{"del one notif", 12.5, Scattered},
		{"cls ctrl ctr", 11.5, Scattered},
		{"pht to cam", 11.0, Moderate},
		{"tap cls ctrl", 10.5, Scattered},
		{"unlock lock", 10.0, Scattered},
		{"scrl tiktok", 9.5, Moderate},
		{"cam to pht", 9.0, Moderate},
		{"clr all tasks", 8.5, Scattered},
		{"clck hibd cd", 8.0, Scattered},
		{"scrl albums", 7.5, Scattered},
		{"sld ret hibd", 7.0, Scattered},
		{"scrl wechat", 6.5, Scattered},
		{"vert to hori", 6.0, Moderate},
		{"open album", 5.5, Scattered},
		{"open ctrl ctr", 5.0, Scattered},
		{"enter hibd", 4.5, Scattered},
		{"lock to pswd", 4.0, Scattered},
		{"open search", 3.5, Scattered},
		{"open notif ctr", 3.0, Scattered},
		{"qk opn apps", 2.5, Scattered},
		{"swp ret hibd", 2.0, Scattered},
		{"exit app slide", 1.6, Scattered},
		{"brtness adj", 1.3, Scattered},
		{"shw ph cd", 1.0, Scattered},
	}
	out := make([]CaseRun, len(rows))
	for i, r := range rows {
		out[i] = CaseRun{Case: UseCaseByAbbrev(r.abbrev), PaperVSyncFDPS: r.fdps, Tail: r.tail}
	}
	return out
}

// Mate40GLESCases lists the left panel of Figure 13: the 9 cases with frame
// drops on Mate 40 Pro (GLES), average baseline 3.17 FDPS.
func Mate40GLESCases() []CaseRun {
	type row struct {
		abbrev string
		fdps   float64
		tail   TailClass
	}
	rows := []row{
		{"pht to cam", 7.5, Moderate},
		{"scrl videos", 5.2, Moderate},
		{"cls notif ctr", 4.0, Moderate},
		{"cam mode sel", 3.1, Moderate},
		{"vert to hori", 2.6, Scattered},
		{"hori to vert", 2.1, Scattered},
		{"clr all notif", 1.7, Scattered},
		{"scrl photos", 1.3, Scattered},
		{"scrl wechat", 1.0, Scattered},
	}
	out := make([]CaseRun, len(rows))
	for i, r := range rows {
		out[i] = CaseRun{Case: UseCaseByAbbrev(r.abbrev), PaperVSyncFDPS: r.fdps, Tail: r.tail}
	}
	return out
}

// Mate60GLESCases lists the right panel of Figure 13: the 20 cases with
// frame drops on Mate 60 Pro (GLES), average baseline 7.51 FDPS.
func Mate60GLESCases() []CaseRun {
	type row struct {
		abbrev string
		fdps   float64
		tail   TailClass
	}
	rows := []row{
		{"clck settings", 30.0, HeavyTail},
		{"scrl videos", 17.0, Moderate},
		{"vert to hori", 13.0, Moderate},
		{"shw ctrl btns", 12.0, Moderate},
		{"clr all notif", 10.5, Moderate},
		{"hori to vert", 9.0, Scattered},
		{"scrl photos", 8.0, Scattered},
		{"cls notif ctr", 7.0, Scattered},
		{"scrl tiktok", 6.5, Scattered},
		{"scrl albums", 6.0, Scattered},
		{"scrl wechat", 5.5, Scattered},
		{"pht to cam", 5.0, Moderate},
		{"sld cls fd", 4.5, Scattered},
		{"open ctrl ctr", 4.0, Scattered},
		{"cam to pht", 3.5, Moderate},
		{"lock to pswd", 3.0, Scattered},
		{"clck hibd cd", 2.5, Scattered},
		{"tap cls fd", 2.0, Scattered},
		{"cls ctrl ctr", 1.5, Scattered},
		{"scrl sets", 1.0, Scattered},
	}
	out := make([]CaseRun, len(rows))
	for i, r := range rows {
		out[i] = CaseRun{Case: UseCaseByAbbrev(r.abbrev), PaperVSyncFDPS: r.fdps, Tail: r.tail}
	}
	return out
}

// Paper-reported averages for the use-case experiments, for EXPERIMENTS.md.
var (
	// PaperFig12 holds (baseline, D-VSync) averages for Figure 12.
	PaperFig12 = [2]float64{8.42, 1.39}
	// PaperFig13Mate40 for the Figure 13 left panel.
	PaperFig13Mate40 = [2]float64{3.17, 0.97}
	// PaperFig13Mate60 for the Figure 13 right panel.
	PaperFig13Mate60 = [2]float64{7.51, 2.52}
)
