package scenarios

import "dvsync/internal/workload"

// Game is one of the 15 mobile games of Figure 14. The paper collects
// per-frame CPU/GPU runtime traces of their UI and scene animations and
// simulates the D-VSync pre-rendering pattern over them (§6.1) — exactly
// what this harness does, with synthesised traces calibrated to the
// measured baselines.
type Game struct {
	// Name as it appears on the Figure 14 x-axis ("(UI)" marks UI-layer
	// traces).
	Name string
	// RateHz is the game's frame-rate cap.
	RateHz int
	// PaperVSyncFDPS is the measured VSync (3 buffers) baseline.
	PaperVSyncFDPS float64
	// Tail classifies the workload shape.
	Tail TailClass
}

// GameFrames is the per-game trace length.
const GameFrames = 900

// Games lists Figure 14 in x-axis order (average baseline 0.79 FDPS).
func Games() []Game {
	return []Game{
		{"Honor of Kings (UI)", 60, 1.60, Moderate},
		{"Identity V (UI)", 30, 1.40, HeavyTail},
		{"Game for Peace (UI)", 30, 1.30, Scattered},
		{"RTK Mobile", 30, 1.20, Scattered},
		{"CF: Legends (UI)", 60, 1.10, Scattered},
		{"Survive", 60, 1.00, Scattered},
		{"8 Ball Pool", 60, 0.90, Moderate},
		{"Happy Poker", 30, 0.80, Scattered},
		{"Thief Puzzle", 60, 0.70, Scattered},
		{"Teamfight Tactics", 30, 0.60, Moderate},
		{"TK: Conspiracy", 30, 0.50, Scattered},
		{"FWJ", 60, 0.40, Scattered},
		{"Original Legends", 60, 0.30, Scattered},
		{"PvZ 2", 30, 0.30, Scattered},
		{"LTK", 90, 0.20, Scattered},
	}
}

// Profile returns the game's uncalibrated workload shape. Games use custom
// rendering engines that bypass the OS UI framework, so their frames are
// Interactive: they decouple only through the decoupling-aware APIs, which
// is how the Figure 14 simulation applies D-VSync ("we are working with
// these third-party partners to utilize the decoupling-aware APIs").
func (g Game) Profile() workload.Profile {
	dev := Mate60Pro
	periodMs := 1000.0 / float64(g.RateHz)
	p := BaseProfile(g.Name, dev, g.Tail, workload.Interactive)
	// Rescale the shape to the game's own frame period rather than the
	// panel period.
	p.ShortMeanMs = 0.38 * periodMs
	p.ShortSigmaMs = 0.13 * periodMs
	p.LongScaleMs = 1.15 * periodMs
	switch g.Tail {
	case Scattered:
		p.MaxFrameMs = 3 * periodMs
	case Moderate:
		p.MaxFrameMs = 6 * periodMs
	case HeavyTail:
		p.MaxFrameMs = 14 * periodMs
	}
	return p
}

// PaperGameAverages records Figure 14's reported averages keyed by buffer
// count (3 = VSync baseline; the paper reports 68.4 % reduction with 4
// buffers and 87.3 % with 5).
var PaperGameAverages = map[int]float64{3: 0.79, 4: 0.25, 5: 0.10}
