package scenarios

import "dvsync/internal/workload"

// App is one of the 25 world-top Android apps of Figure 11, evaluated on
// Google Pixel 5 by swiping the main page twice a second for 1000 frames.
type App struct {
	// Name as it appears on the Figure 11 x-axis.
	Name string
	// PaperVSyncFDPS is the measured VSync baseline (3 buffers) the
	// workload is calibrated to.
	PaperVSyncFDPS float64
	// Tail is the long-frame distribution class (§6.1 analysis).
	Tail TailClass
}

// Frames is the per-app recording length used in §6.1.
const AppFrames = 1000

// Apps lists Figure 11 in x-axis order. The per-app baselines are read off
// the figure (the paper states the average, 2.04, which this list matches);
// Walmart and QQMusic anchor the two extremes the analysis paragraph
// discusses.
func Apps() []App {
	return []App{
		{"Walmart", 4.5, Scattered},
		{"QQMusic", 4.2, HeavyTail},
		{"X", 3.8, Moderate},
		{"Apkpure", 3.4, Moderate},
		{"GroupMe", 3.1, Scattered},
		{"FoxNews", 2.9, Moderate},
		{"Facebook", 2.7, Moderate},
		{"Weibo", 2.5, Moderate},
		{"Shein", 2.4, Moderate},
		{"StudentUniv", 2.2, Scattered},
		{"Instagram", 2.1, Moderate},
		{"Zhihu", 2.0, Moderate},
		{"Lark", 1.9, Scattered},
		{"Reddit", 1.8, Moderate},
		{"Booking", 1.7, Moderate},
		{"Tidal", 1.6, Scattered},
		{"DoorDash", 1.5, Moderate},
		{"CNN", 1.4, Moderate},
		{"Discord", 1.2, Scattered},
		{"Bilibili", 1.1, Moderate},
		{"Snapchat", 0.9, Moderate},
		{"Taobao", 0.8, Moderate},
		{"VidMate", 0.6, Scattered},
		{"Tripadvisor", 0.4, Moderate},
		{"Pinterest", 0.3, Scattered},
	}
}

// AppsAverageFDPS returns the mean baseline across Figure 11 (the paper
// reports 2.04).
func AppsAverageFDPS() float64 {
	sum := 0.0
	apps := Apps()
	for _, a := range apps {
		sum += a.PaperVSyncFDPS
	}
	return sum / float64(len(apps))
}

// Profile returns the app's uncalibrated workload shape. App scrolling is
// an interactive-then-fling pattern the OS UI framework drives, so frames
// are Deterministic for the oblivious channel (§4.2 classes list flings and
// transitions as deterministic animations).
func (a App) Profile() workload.Profile {
	return BaseProfile(a.Name, Pixel5, a.Tail, workload.Deterministic)
}

// Figure 11's D-VSync buffer sweep and paper-reported outcomes, for
// EXPERIMENTS.md comparison.
var (
	// AppBufferSweep is the queue sizes evaluated: VSync 3 then D-VSync
	// 4/5/7.
	AppBufferSweep = []int{4, 5, 7}
	// PaperAppAverages records Figure 11's reported averages keyed by
	// buffer count (3 = the VSync baseline).
	PaperAppAverages = map[int]float64{3: 2.04, 4: 0.58, 5: 0.25, 7: 0.06}
)
