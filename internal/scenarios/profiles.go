package scenarios

import (
	"dvsync/internal/workload"
)

// TailClass expresses how an app's long frames distribute in time — the
// property §6.1's analysis identifies as deciding whether D-VSync helps:
// Walmart's scattered sub-3-period long frames are fully absorbed, while
// QQMusic's skewed heavy tail defeats even 7 buffers.
type TailClass int

// Tail classes.
const (
	// Scattered long frames are independent and rarely exceed 3 periods.
	Scattered TailClass = iota
	// Moderate long frames cluster mildly with a medium tail.
	Moderate
	// HeavyTail long frames cluster and can span many periods.
	HeavyTail
)

// String names the class.
func (c TailClass) String() string {
	switch c {
	case Scattered:
		return "scattered"
	case Moderate:
		return "moderate"
	case HeavyTail:
		return "heavy-tail"
	}
	return "unknown"
}

// BaseProfile builds the uncalibrated workload shape for a scenario on a
// device. All durations scale with the device's refresh period so the same
// shape describes a 60 Hz Pixel and a 120 Hz Mate: the §3.1 observation is
// that load grows with the display, keeping the *relative* distribution.
func BaseProfile(name string, dev Device, class TailClass, frameClass workload.Class) workload.Profile {
	periodMs := dev.Period().Milliseconds()
	p := workload.Profile{
		Name:         name,
		ShortMeanMs:  0.40 * periodMs,
		ShortSigmaMs: 0.13 * periodMs,
		LongRatio:    0.05,
		UIShare:      0.35,
		Class:        frameClass,
	}
	// Long-frame sizes are what decide whether D-VSync's cushion absorbs a
	// key frame (§6.1's Walmart-vs-QQMusic analysis). Sizes are relative
	// to the refresh period; the experiment harness calibrates the long
	// frame *rate* to the measured baseline FDPS.
	switch class {
	case Scattered:
		p.LongScaleMs = 1.4 * periodMs
		p.LongAlpha = 3.0
		p.Burstiness = 0.02
		p.MaxFrameMs = 2.8 * periodMs
	case Moderate:
		p.LongScaleMs = 1.5 * periodMs
		p.LongAlpha = 2.3
		p.Burstiness = 0.20
		p.MaxFrameMs = 4.2 * periodMs
	case HeavyTail:
		p.LongScaleMs = 1.6 * periodMs
		p.LongAlpha = 1.4
		p.Burstiness = 0.55
		p.MaxFrameMs = 12 * periodMs
	}
	return p
}

// MixedRealWorldProfile is the Figure 1 workload: the frame population of a
// typical user session across many apps, used to regenerate the rendering
// time CDF on a 60 Hz screen.
func MixedRealWorldProfile() workload.Profile {
	p := BaseProfile("mixed-real-world", Pixel5, Moderate, workload.Deterministic)
	// Figure 1 reports 78.3 % of frames within one 60 Hz period and ≈5 %
	// missing even the triple-buffer slack; a slightly hotter body with a
	// moderate tail reproduces that curve.
	p.ShortMeanMs = 11.0
	p.ShortSigmaMs = 5.2
	p.LongRatio = 0.09
	p.LongScaleMs = 24
	p.LongAlpha = 1.35
	p.Burstiness = 0.35
	p.MaxFrameMs = 150
	return p
}
