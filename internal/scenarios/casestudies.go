package scenarios

import "dvsync/internal/workload"

// BrowserPage is one of the Chromium case-study pages of §6.6, evaluated
// during flinging animations after swiping. Chromium is a custom-rendering
// app: its compositor pre-renders through the decoupling-aware APIs.
type BrowserPage struct {
	// Name is the page ("Sina", "Weather", "AI Life").
	Name string
	// PaperVSyncFDPS is the measured baseline during flings.
	PaperVSyncFDPS float64
	// Tail classifies the raster workload.
	Tail TailClass
}

// BrowserFrames is the per-page fling recording length.
const BrowserFrames = 800

// BrowserPages lists §6.6's pages (average baseline 1.47 FDPS, reduced to
// 0.08 — 94.3 %).
func BrowserPages() []BrowserPage {
	return []BrowserPage{
		{"Sina", 2.2, Scattered},
		{"Weather", 1.3, Scattered},
		{"AI Life", 0.9, Scattered},
	}
}

// Profile returns the page's uncalibrated raster/composite workload on the
// Mate 60 Pro. Pages are tagged Interactive: the compositor decouples via
// the aware APIs, mirroring how games do.
func (b BrowserPage) Profile() workload.Profile {
	return BaseProfile("chromium-"+b.Name, Mate60Pro, b.Tail, workload.Interactive)
}

// PaperChromium records §6.6's (baseline, D-VSync) average FDPS.
var PaperChromium = [2]float64{1.47, 0.08}

// MapApp describes the §6.5 case study: a map application doing two-finger
// zooming with a registered Zooming Distance Predictor. Zooming loads and
// rasterises vector tiles, a heavier load than browsing.
type MapApp struct {
	// ZoomFrames is the recording length (the paper records 3,600 frames).
	ZoomFrames int
	// PaperVSyncFDPS is the baseline during zooming (read off Figure 16).
	PaperVSyncFDPS float64
	// PaperLatencyReduction is the reported 30.2 % latency reduction.
	PaperLatencyReduction float64
	// PaperZDPOverheadUs is the reported 151.6 µs/frame ZDP cost.
	PaperZDPOverheadUs float64
	// Buffers is the pre-render configuration the app chooses (5).
	Buffers int
}

// TheMapApp returns the §6.5 configuration.
func TheMapApp() MapApp {
	return MapApp{
		ZoomFrames:            3600,
		PaperVSyncFDPS:        1.6,
		PaperLatencyReduction: 30.2,
		PaperZDPOverheadUs:    151.6,
		Buffers:               5,
	}
}

// Profile returns the zooming workload (interactive, tile-rasterisation
// spikes) on Pixel 5, where the case study runs.
func (MapApp) Profile() workload.Profile {
	p := BaseProfile("map-zoom", Pixel5, Moderate, workload.Interactive)
	// Vector-tile decoding adds clustered mid-length long frames, but the
	// spikes stay within a few periods — which is why the app's 5-buffer
	// configuration eliminates them entirely (§6.5).
	p.Burstiness = 0.35
	p.LongAlpha = 2.6
	p.MaxFrameMs = 3.8 * Pixel5.Period().Milliseconds()
	return p
}
