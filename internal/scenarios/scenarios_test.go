package scenarios

import (
	"math"
	"testing"

	"dvsync/internal/workload"
)

func TestDevicesTable(t *testing.T) {
	devs := Devices()
	if len(devs) != 3 {
		t.Fatalf("devices = %d", len(devs))
	}
	if Pixel5.RefreshHz != 60 || Mate40Pro.RefreshHz != 90 || Mate60Pro.RefreshHz != 120 {
		t.Error("refresh rates wrong")
	}
	if Pixel5.Buffers != 3 || Mate60Pro.Buffers != 4 {
		t.Error("default buffer counts wrong (Android 3, OpenHarmony 4)")
	}
	if DeviceByName("Mate 60 Pro").Width != 1260 {
		t.Error("lookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown device should panic")
		}
	}()
	DeviceByName("Nokia 3310")
}

func TestSeventyFiveUseCases(t *testing.T) {
	ucs := UseCases()
	if len(ucs) != 75 {
		t.Fatalf("use cases = %d, want 75", len(ucs))
	}
	seen := map[string]bool{}
	for i, u := range ucs {
		if u.ID != i+1 {
			t.Errorf("case %d has ID %d", i, u.ID)
		}
		if u.Abbrev == "" || u.Description == "" || u.Category == "" {
			t.Errorf("case %d incomplete: %+v", i, u)
		}
		if seen[u.Abbrev] {
			t.Errorf("duplicate abbreviation %q", u.Abbrev)
		}
		seen[u.Abbrev] = true
	}
}

func TestFigureCaseSetsResolve(t *testing.T) {
	// Every figure bar must reference a real Appendix A case.
	sets := map[string][]CaseRun{
		"fig12":  Mate60VulkanCases(),
		"fig13a": Mate40GLESCases(),
		"fig13b": Mate60GLESCases(),
	}
	wantLen := map[string]int{"fig12": 29, "fig13a": 9, "fig13b": 20}
	for name, set := range sets {
		if len(set) != wantLen[name] {
			t.Errorf("%s has %d cases, want %d", name, len(set), wantLen[name])
		}
		prev := math.Inf(1)
		for _, c := range set {
			if c.PaperVSyncFDPS <= 0 {
				t.Errorf("%s %q: non-positive baseline", name, c.Case.Abbrev)
			}
			if c.PaperVSyncFDPS > prev {
				t.Errorf("%s %q: bars not descending", name, c.Case.Abbrev)
			}
			prev = c.PaperVSyncFDPS
			if p := c.Profile(Mate60Pro); p.Validate() != nil {
				t.Errorf("%s %q: invalid profile", name, c.Case.Abbrev)
			}
		}
	}
}

func TestFigureAveragesNearPaper(t *testing.T) {
	avg := func(set []CaseRun) float64 {
		s := 0.0
		for _, c := range set {
			s += c.PaperVSyncFDPS
		}
		return s / float64(len(set))
	}
	if got := avg(Mate60VulkanCases()); math.Abs(got-PaperFig12[0]) > 0.9 {
		t.Errorf("fig12 baseline avg %v, paper %v", got, PaperFig12[0])
	}
	if got := avg(Mate40GLESCases()); math.Abs(got-PaperFig13Mate40[0]) > 0.4 {
		t.Errorf("fig13a baseline avg %v, paper %v", got, PaperFig13Mate40[0])
	}
	if got := avg(Mate60GLESCases()); math.Abs(got-PaperFig13Mate60[0]) > 0.9 {
		t.Errorf("fig13b baseline avg %v, paper %v", got, PaperFig13Mate60[0])
	}
}

func TestAppsCatalog(t *testing.T) {
	apps := Apps()
	if len(apps) != 25 {
		t.Fatalf("apps = %d, want 25", len(apps))
	}
	if math.Abs(AppsAverageFDPS()-2.04) > 0.01 {
		t.Errorf("apps average %v, paper reports 2.04", AppsAverageFDPS())
	}
	if apps[0].Name != "Walmart" || apps[0].Tail != Scattered {
		t.Error("Walmart should lead with scattered drops (§6.1 analysis)")
	}
	if apps[1].Name != "QQMusic" || apps[1].Tail != HeavyTail {
		t.Error("QQMusic should be the heavy-tail outlier (§6.1 analysis)")
	}
	for _, a := range apps {
		p := a.Profile()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if p.Class != workload.Deterministic {
			t.Errorf("%s: app scrolls ride the oblivious channel", a.Name)
		}
	}
}

func TestGamesCatalog(t *testing.T) {
	games := Games()
	if len(games) != 15 {
		t.Fatalf("games = %d, want 15", len(games))
	}
	sum := 0.0
	for _, g := range games {
		sum += g.PaperVSyncFDPS
		if g.RateHz != 30 && g.RateHz != 60 && g.RateHz != 90 {
			t.Errorf("%s: unexpected rate %d", g.Name, g.RateHz)
		}
		p := g.Profile()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if p.Class != workload.Interactive {
			t.Errorf("%s: games use the decoupling-aware channel", g.Name)
		}
	}
	if avg := sum / 15; math.Abs(avg-0.79) > 0.05 {
		t.Errorf("games average %v, paper reports 0.79", avg)
	}
}

func TestUXTasksCatalog(t *testing.T) {
	tasks := UXTasks()
	if len(tasks) != 8 {
		t.Fatalf("tasks = %d, want 8 (Table 2)", len(tasks))
	}
	wantV := []int{20, 28, 25, 20, 20, 7, 14, 40}
	wantD := []int{12, 3, 2, 3, 2, 0, 13, 10}
	for i, task := range tasks {
		if task.PaperVSyncStutters != wantV[i] || task.PaperDVSyncStutters != wantD[i] {
			t.Errorf("%s: paper stutters (%d,%d), want (%d,%d)", task.Name,
				task.PaperVSyncStutters, task.PaperDVSyncStutters, wantV[i], wantD[i])
		}
		tr := task.Trace(1)
		if tr.Len() != task.Scenes*task.SceneFrames {
			t.Errorf("%s: trace len %d", task.Name, tr.Len())
		}
	}
}

func TestTrendGrowth(t *testing.T) {
	g := TrendGrowth()
	// The paper cites ≈25× growth since the iPhone 4 / Galaxy S era.
	if g < 15 || g > 35 {
		t.Errorf("trend growth %v, want ≈25x", g)
	}
}

func TestScopeShares(t *testing.T) {
	total := 0.0
	for _, s := range Scope() {
		total += s.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("scope shares sum to %v", total)
	}
}

func TestBaseProfileScalesWithDevice(t *testing.T) {
	p60 := BaseProfile("x", Pixel5, Moderate, workload.Deterministic)
	p120 := BaseProfile("x", Mate60Pro, Moderate, workload.Deterministic)
	if p120.ShortMeanMs >= p60.ShortMeanMs {
		t.Error("profiles should scale with the refresh period")
	}
	ratio := p60.LongScaleMs / p120.LongScaleMs
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("long scale ratio %v, want 2 (60 vs 120 Hz)", ratio)
	}
}

func TestMixedRealWorldProfileShape(t *testing.T) {
	p := MixedRealWorldProfile()
	tr := p.Generate(30000, 7)
	period := Pixel5.Period()
	within := 1 - tr.FractionOver(period)
	if within < 0.72 || within > 0.85 {
		t.Errorf("within one period = %v, paper reports 78.3%%", within)
	}
	beyond := tr.FractionOver(3 * period)
	if beyond < 0.01 || beyond > 0.08 {
		t.Errorf("beyond triple buffering = %v, paper reports ≈5%%", beyond)
	}
}

func TestChromiumPages(t *testing.T) {
	pages := BrowserPages()
	if len(pages) != 3 {
		t.Fatalf("pages = %d", len(pages))
	}
	sum := 0.0
	for _, p := range pages {
		sum += p.PaperVSyncFDPS
	}
	if math.Abs(sum/3-1.47) > 0.01 {
		t.Errorf("chromium average %v, paper reports 1.47", sum/3)
	}
}

func TestTailClassString(t *testing.T) {
	if Scattered.String() != "scattered" || Moderate.String() != "moderate" ||
		HeavyTail.String() != "heavy-tail" {
		t.Error("tail class strings wrong")
	}
}
