package input

import (
	"math"
	"testing"

	"dvsync/internal/simtime"
)

func TestSwipeKinematics(t *testing.T) {
	s := Swipe{Start: 100, Velocity: 1000, Duration: simtime.FromMillis(500)}
	if got := s.Value(0); got != 100 {
		t.Errorf("Value(0) = %v", got)
	}
	if got := s.Value(simtime.Time(simtime.FromMillis(250))); math.Abs(got-350) > 1e-9 {
		t.Errorf("Value(250ms) = %v, want 350", got)
	}
	// After the finger lifts, the position holds.
	if got := s.Value(simtime.Time(simtime.FromMillis(900))); math.Abs(got-600) > 1e-9 {
		t.Errorf("Value(after) = %v, want 600", got)
	}
	if !s.Down(simtime.Time(simtime.FromMillis(100))) || s.Down(simtime.Time(simtime.FromMillis(600))) {
		t.Error("Down wrong")
	}
}

func TestFlingDeceleration(t *testing.T) {
	f := Fling{Start: 0, Velocity: 2000, DownFor: simtime.FromMillis(200),
		Friction: 3, Settle: simtime.FromMillis(800)}
	vAt := func(ms float64) float64 {
		dt := simtime.FromMillis(1)
		a := f.Value(simtime.Time(simtime.FromMillis(ms)))
		b := f.Value(simtime.Time(simtime.FromMillis(ms)).Add(dt))
		return (b - a) / dt.Seconds()
	}
	// Velocity during drag ≈ 2000; velocity decays after release.
	if v := vAt(100); math.Abs(v-2000) > 1 {
		t.Errorf("drag velocity %v", v)
	}
	v1, v2 := vAt(300), vAt(600)
	if v1 <= v2 || v1 >= 2000 {
		t.Errorf("fling not decelerating: v(300ms)=%v v(600ms)=%v", v1, v2)
	}
	// Position is monotone.
	prev := -1.0
	for ms := 0.0; ms <= 1000; ms += 10 {
		v := f.Value(simtime.Time(simtime.FromMillis(ms)))
		if v < prev {
			t.Fatalf("position regressed at %vms", ms)
		}
		prev = v
	}
}

func TestPinchTremor(t *testing.T) {
	p := Pinch{StartDistance: 200, RatePxPerSec: 400, TremorAmp: 5, TremorHz: 8,
		Duration: simtime.FromMillis(1000)}
	if got := p.Value(0); got != 200 {
		t.Errorf("Value(0) = %v", got)
	}
	end := p.Value(simtime.Time(simtime.FromMillis(1000)))
	if math.Abs(end-600) > p.TremorAmp+1e-9 {
		t.Errorf("Value(1s) = %v, want ≈600", end)
	}
	// Tremor means the trace deviates from the pure line somewhere.
	deviated := false
	for ms := 0.0; ms < 1000; ms += 7 {
		tt := simtime.Time(simtime.FromMillis(ms))
		line := 200 + 400*simtime.Duration(tt).Seconds()
		if math.Abs(p.Value(tt)-line) > 1 {
			deviated = true
			break
		}
	}
	if !deviated {
		t.Error("tremor has no effect")
	}
}

func TestDigitizerSampling(t *testing.T) {
	s := Swipe{Start: 0, Velocity: 100, Duration: simtime.FromMillis(100)}
	d := Digitizer{RateHz: 120}
	samples := d.Samples(s)
	want := int(simtime.FromMillis(100)/simtime.PeriodForHz(120)) + 1
	if len(samples) != want {
		t.Fatalf("samples = %d, want %d", len(samples), want)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At.Sub(samples[i-1].At) != simtime.PeriodForHz(120) {
			t.Fatal("sample spacing wrong")
		}
		if samples[i].Value < samples[i-1].Value {
			t.Fatal("swipe samples should be monotone")
		}
	}
}

func TestHistory(t *testing.T) {
	samples := []Sample{{At: 0}, {At: 10}, {At: 20}, {At: 30}}
	if got := History(samples, 15); len(got) != 2 {
		t.Errorf("History(15) = %d samples", len(got))
	}
	if got := History(samples, 30); len(got) != 4 {
		t.Errorf("History(30) = %d samples", len(got))
	}
	if got := History(samples, -1); len(got) != 0 {
		t.Errorf("History(-1) = %d samples", len(got))
	}
}

func TestDigitizerInvalidRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Digitizer{}.Samples(Swipe{Duration: 1000})
}

// scriptedPerturber drops listed timestamps and delays listed ones.
type scriptedPerturber struct {
	drop  map[simtime.Time]bool
	delay map[simtime.Time]simtime.Time
}

func (p scriptedPerturber) DropSample(at simtime.Time) bool { return p.drop[at] }
func (p scriptedPerturber) BurstDelivery(at simtime.Time) (simtime.Time, bool) {
	d, ok := p.delay[at]
	return d, ok
}

func TestPerturb(t *testing.T) {
	samples := []Sample{
		{At: 0, Value: 0}, {At: 10, Value: 1}, {At: 20, Value: 2}, {At: 30, Value: 3},
	}
	p := scriptedPerturber{
		drop:  map[simtime.Time]bool{10: true},
		delay: map[simtime.Time]simtime.Time{20: 25},
	}
	got := Perturb(samples, p)
	if len(got) != 3 {
		t.Fatalf("perturbed stream has %d samples, want 3", len(got))
	}
	if got[0].At != 0 || got[1].At != 25 || got[2].At != 30 {
		t.Fatalf("delivery times = %v,%v,%v, want 0,25,30", got[0].At, got[1].At, got[2].At)
	}
	// A held report keeps its sampled value: the glass state is unchanged,
	// software just learns it late.
	if got[1].Value != 2 {
		t.Fatalf("held sample value = %v, want 2", got[1].Value)
	}
	// The input slice is untouched.
	if samples[2].At != 20 {
		t.Fatal("Perturb mutated its input")
	}
	if out := Perturb(samples, nil); len(out) != len(samples) {
		t.Fatal("nil perturber must be the identity")
	}
}
