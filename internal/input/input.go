// Package input models the touch digitizer: timestamped input events and a
// gesture synthesiser producing the kinematics of the interactions the
// paper evaluates — swipes, flings, and two-finger pinch zooming (§4.6,
// §6.5) — as continuous trajectories sampleable at any instant.
package input

import (
	"fmt"
	"math"

	"dvsync/internal/simtime"
)

// Sample is one digitizer report.
type Sample struct {
	// At is the report timestamp.
	At simtime.Time
	// Value is the tracked quantity: a y-coordinate in pixels for swipes,
	// the inter-fingertip distance for pinch zooming.
	Value float64
	// Down reports whether the fingertip is on the glass.
	Down bool
}

// Trajectory is a continuous input path: the ground truth a predictor is
// judged against.
type Trajectory interface {
	// Value returns the input quantity at time t.
	Value(t simtime.Time) float64
	// Down reports whether the fingertip touches the screen at t.
	Down(t simtime.Time) bool
	// End returns the instant the gesture completes.
	End() simtime.Time
}

// Digitizer samples a trajectory at a fixed report rate, like a touch
// controller scanning at 120 Hz.
type Digitizer struct {
	// RateHz is the report rate.
	RateHz int
}

// Samples returns digitizer reports covering [0, traj.End()].
func (d Digitizer) Samples(traj Trajectory) []Sample {
	if d.RateHz <= 0 {
		panic(fmt.Sprintf("input: invalid digitizer rate %d", d.RateHz))
	}
	period := simtime.PeriodForHz(d.RateHz)
	var out []Sample
	for t := simtime.Time(0); t <= traj.End(); t = t.Add(period) {
		out = append(out, Sample{At: t, Value: traj.Value(t), Down: traj.Down(t)})
	}
	return out
}

// History returns the reports at or before t — what software has seen so
// far.
func History(samples []Sample, t simtime.Time) []Sample {
	hi := len(samples)
	for hi > 0 && samples[hi-1].At.After(t) {
		hi--
	}
	return samples[:hi]
}

// Perturber decides per-sample delivery faults. internal/fault's Injector
// satisfies it; the indirection keeps this package dependency-free.
type Perturber interface {
	// DropSample reports whether the report at `at` is lost entirely.
	DropSample(at simtime.Time) bool
	// BurstDelivery re-times a report: when the second return is true the
	// report is held and delivered at the returned instant instead (batched
	// delivery, as when an overloaded input thread drains its queue in
	// bursts).
	BurstDelivery(at simtime.Time) (simtime.Time, bool)
}

// Perturb applies delivery faults to a digitizer stream: dropped reports
// vanish, burst-held reports move to their batch-drain instant (keeping
// their original Value — the fingertip was where it was, software just
// learned late). The output preserves delivery order; input is unmodified.
func Perturb(samples []Sample, p Perturber) []Sample {
	if p == nil {
		return samples
	}
	out := make([]Sample, 0, len(samples))
	for _, s := range samples {
		if p.DropSample(s.At) {
			continue
		}
		if at, held := p.BurstDelivery(s.At); held {
			s.At = at
		}
		out = append(out, s)
	}
	return out
}

// Swipe is a constant-velocity drag: the fingertip moves from Start by
// Velocity px/s while down, ending at Duration.
type Swipe struct {
	// Start is the initial coordinate in pixels.
	Start float64
	// Velocity is the drag speed in pixels/second.
	Velocity float64
	// Duration is how long the fingertip stays on the glass.
	Duration simtime.Duration
}

// Value implements Trajectory.
func (s Swipe) Value(t simtime.Time) float64 {
	tt := simtime.Duration(t)
	if tt > s.Duration {
		tt = s.Duration
	}
	return s.Start + s.Velocity*tt.Seconds()
}

// Down implements Trajectory.
func (s Swipe) Down(t simtime.Time) bool { return simtime.Duration(t) <= s.Duration }

// End implements Trajectory.
func (s Swipe) End() simtime.Time { return simtime.Time(s.Duration) }

// Fling is a drag that releases into friction-decelerated scrolling: the
// classic list fling. While down it behaves like a swipe; after release the
// velocity decays exponentially with the given friction.
type Fling struct {
	// Start is the initial coordinate.
	Start float64
	// Velocity is the drag (and initial fling) speed in pixels/second.
	Velocity float64
	// DownFor is the drag duration before release.
	DownFor simtime.Duration
	// Friction is the exponential decay rate (1/s); Android's scroller
	// uses ≈ 2–4.
	Friction float64
	// Settle is how long after release the fling is tracked.
	Settle simtime.Duration
}

// Value implements Trajectory.
func (f Fling) Value(t simtime.Time) float64 {
	tt := simtime.Duration(t)
	if tt <= f.DownFor {
		return f.Start + f.Velocity*tt.Seconds()
	}
	atRelease := f.Start + f.Velocity*f.DownFor.Seconds()
	dt := (tt - f.DownFor).Seconds()
	if f.Friction <= 0 {
		return atRelease + f.Velocity*dt
	}
	// Integral of v·e^(−k·t): v/k · (1 − e^(−k·t)).
	return atRelease + f.Velocity/f.Friction*(1-math.Exp(-f.Friction*dt))
}

// Down implements Trajectory.
func (f Fling) Down(t simtime.Time) bool { return simtime.Duration(t) <= f.DownFor }

// End implements Trajectory.
func (f Fling) End() simtime.Time { return simtime.Time(f.DownFor + f.Settle) }

// Pinch is a two-finger zoom: the inter-fingertip distance grows from
// StartDistance at RatePxPerSec, with a sinusoidal tremor capturing how
// human fingers wobble (the reason ZDP fits a curve instead of taking the
// last sample).
type Pinch struct {
	// StartDistance is the initial fingertip separation in pixels.
	StartDistance float64
	// RatePxPerSec is the mean separation speed.
	RatePxPerSec float64
	// TremorAmp and TremorHz shape the wobble.
	TremorAmp, TremorHz float64
	// Duration is how long both fingers stay down.
	Duration simtime.Duration
}

// Value implements Trajectory.
func (p Pinch) Value(t simtime.Time) float64 {
	tt := simtime.Duration(t)
	if tt > p.Duration {
		tt = p.Duration
	}
	s := tt.Seconds()
	return p.StartDistance + p.RatePxPerSec*s + p.TremorAmp*math.Sin(2*math.Pi*p.TremorHz*s)
}

// Down implements Trajectory.
func (p Pinch) Down(t simtime.Time) bool { return simtime.Duration(t) <= p.Duration }

// End implements Trajectory.
func (p Pinch) End() simtime.Time { return simtime.Time(p.Duration) }
