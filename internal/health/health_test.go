package health

import (
	"strings"
	"testing"

	"dvsync/internal/simtime"
)

func ms(x float64) simtime.Time { return simtime.Time(simtime.FromMillis(x)) }

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"valid", Config{MaxFDPS: 5}, ""},
		{"zero fallback threshold", Config{MaxFDPS: 0}, "threshold"},
		{"negative fallback threshold", Config{MaxFDPS: -1}, "threshold"},
		{"negative calib bound", Config{MaxFDPS: 5, MaxCalibErrMs: -1}, "calibration"},
		{"negative window", Config{MaxFDPS: 5, Window: -1}, "window"},
		{"negative stall timeout", Config{MaxFDPS: 5, StallTimeout: -1}, "stall"},
		{"negative hysteresis", Config{MaxFDPS: 5, RecoverAfter: -1}, "hysteresis"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

func TestTripsOnJankBurst(t *testing.T) {
	m := NewMonitor(Config{Window: simtime.FromMillis(500), MaxFDPS: 5})
	// 2 janks in 500 ms is 4 FDPS: healthy.
	m.ObserveJank(ms(600))
	m.ObserveJank(ms(800))
	if m.Evaluate(ms(1000), true) {
		t.Fatalf("tripped at %v FDPS below threshold", m.WindowFDPS(ms(1000)))
	}
	// A third jank pushes the window to 6 FDPS.
	m.ObserveJank(ms(950))
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("did not trip above FDPS threshold")
	}
	if m.LastReason() != ReasonFDPS {
		t.Fatalf("reason = %v, want fdps", m.LastReason())
	}
	if m.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", m.Trips())
	}
}

func TestJanksAgeOutOfWindow(t *testing.T) {
	m := NewMonitor(Config{Window: simtime.FromMillis(500), MaxFDPS: 5})
	for i := 0; i < 10; i++ {
		m.ObserveJank(ms(1000 + float64(i)*10))
	}
	if got := m.WindowFDPS(ms(2000)); got != 0 {
		t.Fatalf("windowed FDPS after aging = %v, want 0", got)
	}
}

func TestTripsOnCalibrationError(t *testing.T) {
	m := NewMonitor(Config{Window: simtime.FromMillis(500), MaxFDPS: 100, MaxCalibErrMs: 4})
	m.ObserveCalibError(ms(900), 2)
	if m.Evaluate(ms(1000), true) {
		t.Fatal("tripped below calibration bound")
	}
	m.ObserveCalibError(ms(950), 20)
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("did not trip above calibration bound")
	}
	if m.LastReason() != ReasonCalibration {
		t.Fatalf("reason = %v, want calibration", m.LastReason())
	}
}

func TestTripsOnStallOnlyWhenBusy(t *testing.T) {
	m := NewMonitor(Config{MaxFDPS: 100, StallTimeout: simtime.FromMillis(100)})
	m.ObserveProgress(ms(500))
	if m.Evaluate(ms(1000), false) {
		t.Fatal("idle pipeline reported stalled")
	}
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("busy pipeline with no progress did not trip")
	}
	if m.LastReason() != ReasonStall {
		t.Fatalf("reason = %v, want stall", m.LastReason())
	}
}

func TestRecoveryHysteresis(t *testing.T) {
	m := NewMonitor(Config{
		Window:       simtime.FromMillis(200),
		MaxFDPS:      5,
		RecoverAfter: simtime.FromMillis(300),
	})
	m.ObserveJank(ms(1000))
	m.ObserveJank(ms(1010))
	m.ObserveJank(ms(1020))
	if !m.Evaluate(ms(1030), true) {
		t.Fatal("did not trip")
	}
	// Janks age out by 1300 but hysteresis holds the trip until a full
	// RecoverAfter of clean evaluations has elapsed.
	if !m.Evaluate(ms(1300), true) {
		t.Fatal("recovered before hysteresis")
	}
	if !m.Evaluate(ms(1500), true) {
		t.Fatal("recovered 200 ms into a 300 ms hysteresis")
	}
	if m.Evaluate(ms(1650), true) {
		t.Fatal("did not recover after hysteresis elapsed")
	}
	if m.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries())
	}
	if m.LastReason() != ReasonNone {
		t.Fatalf("reason after recovery = %v, want none", m.LastReason())
	}
}

func TestHysteresisRestartsOnNewViolation(t *testing.T) {
	m := NewMonitor(Config{
		Window:       simtime.FromMillis(100),
		MaxFDPS:      5,
		RecoverAfter: simtime.FromMillis(300),
	})
	m.ObserveJank(ms(1000))
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("did not trip (1 jank in a 100 ms window is 10 FDPS)")
	}
	// Clean at 1200, violated again at 1250: the healthy clock restarts.
	if !m.Evaluate(ms(1200), true) {
		t.Fatal("recovered early")
	}
	m.ObserveJank(ms(1250))
	if !m.Evaluate(ms(1250), true) {
		t.Fatal("re-violation ignored")
	}
	// Healthy again from 1400; recovery needs a full 300 ms from there.
	if !m.Evaluate(ms(1400), true) {
		t.Fatal("recovered immediately after re-violation")
	}
	if m.Evaluate(ms(1400+310), true) {
		t.Fatal("did not recover after restarted hysteresis window")
	}
	if m.Trips() != 1 {
		t.Fatalf("trips = %d, want 1 (re-violation while tripped is not a new trip)", m.Trips())
	}
}

func TestReasonString(t *testing.T) {
	cases := []struct {
		r    Reason
		want string
	}{
		{ReasonNone, "none"}, {ReasonFDPS, "fdps"},
		{ReasonCalibration, "calibration"}, {ReasonStall, "stall"},
		{Reason(99), "reason(99)"},
	}
	for _, tc := range cases {
		if got := tc.r.String(); got != tc.want {
			t.Fatalf("Reason(%d).String() = %q, want %q", int(tc.r), got, tc.want)
		}
	}
}

// TestWatchdogEdgeCases is the table-driven pin of the window-boundary and
// hysteresis semantics the telemetry sampler leans on: the degenerate
// window at t=0, the inclusive window cut, the start-truncated rate, the
// stall check before any progress (a regression: a pipeline wedged before
// its first buffer ever queued used to be invisible), and the exact
// trip/untrip sequence when a recovered monitor re-trips inside the same
// window span.
func TestWatchdogEdgeCases(t *testing.T) {
	type op struct {
		kind        string // "jank" | "progress" | "calib" | "eval"
		atMs        float64
		errMs       float64 // calib only
		busy        bool    // eval only
		wantTripped bool    // eval only
		wantReason  Reason  // eval only, checked when checkReason
		checkReason bool
	}
	cases := []struct {
		name                      string
		cfg                       Config
		ops                       []op
		wantTrips, wantRecoveries int
	}{
		{
			name: "t0 degenerate window cannot trip",
			cfg:  Config{MaxFDPS: 1},
			ops: []op{
				{kind: "jank", atMs: 0},
				{kind: "eval", atMs: 0, busy: true, wantTripped: false},
			},
		},
		{
			name: "jank exactly on the window cut still counts",
			cfg:  Config{Window: simtime.FromMillis(500), MaxFDPS: 5},
			ops: []op{
				{kind: "jank", atMs: 500},
				{kind: "jank", atMs: 700},
				{kind: "jank", atMs: 900},
				// cut = 1000−500 = 500 inclusive: 3 janks / 0.5 s = 6 FDPS.
				{kind: "eval", atMs: 1000, busy: true, wantTripped: true,
					wantReason: ReasonFDPS, checkReason: true},
			},
			wantTrips: 1,
		},
		{
			name: "jank just past the cut slides out",
			cfg:  Config{Window: simtime.FromMillis(500), MaxFDPS: 5},
			ops: []op{
				{kind: "jank", atMs: 500},
				{kind: "jank", atMs: 700},
				{kind: "jank", atMs: 900},
				// 1 µs later the t=500 jank is outside: 4 FDPS, clean.
				{kind: "eval", atMs: 1000.001, busy: true, wantTripped: false},
			},
		},
		{
			name: "start-truncated window scales the rate up",
			cfg:  Config{Window: simtime.FromMillis(500), MaxFDPS: 5},
			ops: []op{
				{kind: "jank", atMs: 50},
				// Window truncated to 100 ms: 1 jank / 0.1 s = 10 FDPS.
				{kind: "eval", atMs: 100, busy: true, wantTripped: true,
					wantReason: ReasonFDPS, checkReason: true},
			},
			wantTrips: 1,
		},
		{
			name: "stall before any progress trips from watch start",
			cfg:  Config{MaxFDPS: 100, StallTimeout: simtime.FromMillis(300)},
			ops: []op{
				{kind: "eval", atMs: 0, busy: true, wantTripped: false},
				{kind: "eval", atMs: 200, busy: true, wantTripped: false},
				{kind: "eval", atMs: 400, busy: true, wantTripped: true,
					wantReason: ReasonStall, checkReason: true},
			},
			wantTrips: 1,
		},
		{
			name: "idle pipeline never counts as stalled",
			cfg:  Config{MaxFDPS: 100, StallTimeout: simtime.FromMillis(300)},
			ops: []op{
				{kind: "eval", atMs: 0, busy: false, wantTripped: false},
				{kind: "eval", atMs: 5000, busy: false, wantTripped: false},
			},
		},
		{
			name: "progress resets the stall reference",
			cfg:  Config{MaxFDPS: 100, StallTimeout: simtime.FromMillis(300)},
			ops: []op{
				{kind: "eval", atMs: 0, busy: true, wantTripped: false},
				{kind: "progress", atMs: 350},
				{kind: "eval", atMs: 400, busy: true, wantTripped: false},
				{kind: "eval", atMs: 700, busy: true, wantTripped: true,
					wantReason: ReasonStall, checkReason: true},
			},
			wantTrips: 1,
		},
		{
			name: "re-trip in the same window span after recovery",
			cfg: Config{Window: simtime.FromMillis(500), MaxFDPS: 5,
				RecoverAfter: simtime.FromMillis(100)},
			ops: []op{
				{kind: "jank", atMs: 600},
				{kind: "jank", atMs: 800},
				{kind: "jank", atMs: 950},
				{kind: "eval", atMs: 1000, busy: true, wantTripped: true,
					wantReason: ReasonFDPS, checkReason: true},
				// Janks aged out: clean, but hysteresis holds the trip.
				{kind: "eval", atMs: 1500, busy: true, wantTripped: true},
				// Clean for RecoverAfter: recover.
				{kind: "eval", atMs: 1600, busy: true, wantTripped: false,
					wantReason: ReasonNone, checkReason: true},
				// A fresh burst inside the same 500 ms span re-trips
				// immediately — trips have no hysteresis, only recoveries.
				{kind: "jank", atMs: 1610},
				{kind: "jank", atMs: 1620},
				{kind: "jank", atMs: 1630},
				{kind: "eval", atMs: 1650, busy: true, wantTripped: true,
					wantReason: ReasonFDPS, checkReason: true},
			},
			wantTrips:      2,
			wantRecoveries: 1,
		},
		{
			name: "run-end evaluation far past last activity recovers",
			cfg: Config{Window: simtime.FromMillis(500), MaxFDPS: 5,
				RecoverAfter: simtime.FromMillis(1000)},
			ops: []op{
				{kind: "jank", atMs: 600},
				{kind: "jank", atMs: 700},
				{kind: "jank", atMs: 800},
				{kind: "eval", atMs: 900, busy: true, wantTripped: true},
				{kind: "eval", atMs: 5000, busy: false, wantTripped: true},
				{kind: "eval", atMs: 6001, busy: false, wantTripped: false},
			},
			wantTrips:      1,
			wantRecoveries: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMonitor(tc.cfg)
			for i, o := range tc.ops {
				switch o.kind {
				case "jank":
					m.ObserveJank(ms(o.atMs))
				case "progress":
					m.ObserveProgress(ms(o.atMs))
				case "calib":
					m.ObserveCalibError(ms(o.atMs), o.errMs)
				case "eval":
					got := m.Evaluate(ms(o.atMs), o.busy)
					if got != o.wantTripped {
						t.Fatalf("op %d: Evaluate(%v) = %v, want %v",
							i, o.atMs, got, o.wantTripped)
					}
					if o.checkReason && m.LastReason() != o.wantReason {
						t.Fatalf("op %d: reason %v, want %v", i, m.LastReason(), o.wantReason)
					}
				default:
					t.Fatalf("bad op kind %q", o.kind)
				}
			}
			if m.Trips() != tc.wantTrips {
				t.Errorf("trips = %d, want %d", m.Trips(), tc.wantTrips)
			}
			if m.Recoveries() != tc.wantRecoveries {
				t.Errorf("recoveries = %d, want %d", m.Recoveries(), tc.wantRecoveries)
			}
		})
	}
}
