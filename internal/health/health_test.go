package health

import (
	"strings"
	"testing"

	"dvsync/internal/simtime"
)

func ms(x float64) simtime.Time { return simtime.Time(simtime.FromMillis(x)) }

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"valid", Config{MaxFDPS: 5}, ""},
		{"zero fallback threshold", Config{MaxFDPS: 0}, "threshold"},
		{"negative fallback threshold", Config{MaxFDPS: -1}, "threshold"},
		{"negative calib bound", Config{MaxFDPS: 5, MaxCalibErrMs: -1}, "calibration"},
		{"negative window", Config{MaxFDPS: 5, Window: -1}, "window"},
		{"negative stall timeout", Config{MaxFDPS: 5, StallTimeout: -1}, "stall"},
		{"negative hysteresis", Config{MaxFDPS: 5, RecoverAfter: -1}, "hysteresis"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

func TestTripsOnJankBurst(t *testing.T) {
	m := NewMonitor(Config{Window: simtime.FromMillis(500), MaxFDPS: 5})
	// 2 janks in 500 ms is 4 FDPS: healthy.
	m.ObserveJank(ms(600))
	m.ObserveJank(ms(800))
	if m.Evaluate(ms(1000), true) {
		t.Fatalf("tripped at %v FDPS below threshold", m.WindowFDPS(ms(1000)))
	}
	// A third jank pushes the window to 6 FDPS.
	m.ObserveJank(ms(950))
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("did not trip above FDPS threshold")
	}
	if m.LastReason() != ReasonFDPS {
		t.Fatalf("reason = %v, want fdps", m.LastReason())
	}
	if m.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", m.Trips())
	}
}

func TestJanksAgeOutOfWindow(t *testing.T) {
	m := NewMonitor(Config{Window: simtime.FromMillis(500), MaxFDPS: 5})
	for i := 0; i < 10; i++ {
		m.ObserveJank(ms(1000 + float64(i)*10))
	}
	if got := m.WindowFDPS(ms(2000)); got != 0 {
		t.Fatalf("windowed FDPS after aging = %v, want 0", got)
	}
}

func TestTripsOnCalibrationError(t *testing.T) {
	m := NewMonitor(Config{Window: simtime.FromMillis(500), MaxFDPS: 100, MaxCalibErrMs: 4})
	m.ObserveCalibError(ms(900), 2)
	if m.Evaluate(ms(1000), true) {
		t.Fatal("tripped below calibration bound")
	}
	m.ObserveCalibError(ms(950), 20)
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("did not trip above calibration bound")
	}
	if m.LastReason() != ReasonCalibration {
		t.Fatalf("reason = %v, want calibration", m.LastReason())
	}
}

func TestTripsOnStallOnlyWhenBusy(t *testing.T) {
	m := NewMonitor(Config{MaxFDPS: 100, StallTimeout: simtime.FromMillis(100)})
	m.ObserveProgress(ms(500))
	if m.Evaluate(ms(1000), false) {
		t.Fatal("idle pipeline reported stalled")
	}
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("busy pipeline with no progress did not trip")
	}
	if m.LastReason() != ReasonStall {
		t.Fatalf("reason = %v, want stall", m.LastReason())
	}
}

func TestRecoveryHysteresis(t *testing.T) {
	m := NewMonitor(Config{
		Window:       simtime.FromMillis(200),
		MaxFDPS:      5,
		RecoverAfter: simtime.FromMillis(300),
	})
	m.ObserveJank(ms(1000))
	m.ObserveJank(ms(1010))
	m.ObserveJank(ms(1020))
	if !m.Evaluate(ms(1030), true) {
		t.Fatal("did not trip")
	}
	// Janks age out by 1300 but hysteresis holds the trip until a full
	// RecoverAfter of clean evaluations has elapsed.
	if !m.Evaluate(ms(1300), true) {
		t.Fatal("recovered before hysteresis")
	}
	if !m.Evaluate(ms(1500), true) {
		t.Fatal("recovered 200 ms into a 300 ms hysteresis")
	}
	if m.Evaluate(ms(1650), true) {
		t.Fatal("did not recover after hysteresis elapsed")
	}
	if m.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries())
	}
	if m.LastReason() != ReasonNone {
		t.Fatalf("reason after recovery = %v, want none", m.LastReason())
	}
}

func TestHysteresisRestartsOnNewViolation(t *testing.T) {
	m := NewMonitor(Config{
		Window:       simtime.FromMillis(100),
		MaxFDPS:      5,
		RecoverAfter: simtime.FromMillis(300),
	})
	m.ObserveJank(ms(1000))
	if !m.Evaluate(ms(1000), true) {
		t.Fatal("did not trip (1 jank in a 100 ms window is 10 FDPS)")
	}
	// Clean at 1200, violated again at 1250: the healthy clock restarts.
	if !m.Evaluate(ms(1200), true) {
		t.Fatal("recovered early")
	}
	m.ObserveJank(ms(1250))
	if !m.Evaluate(ms(1250), true) {
		t.Fatal("re-violation ignored")
	}
	// Healthy again from 1400; recovery needs a full 300 ms from there.
	if !m.Evaluate(ms(1400), true) {
		t.Fatal("recovered immediately after re-violation")
	}
	if m.Evaluate(ms(1400+310), true) {
		t.Fatal("did not recover after restarted hysteresis window")
	}
	if m.Trips() != 1 {
		t.Fatalf("trips = %d, want 1 (re-violation while tripped is not a new trip)", m.Trips())
	}
}

func TestReasonString(t *testing.T) {
	cases := []struct {
		r    Reason
		want string
	}{
		{ReasonNone, "none"}, {ReasonFDPS, "fdps"},
		{ReasonCalibration, "calibration"}, {ReasonStall, "stall"},
		{Reason(99), "reason(99)"},
	}
	for _, tc := range cases {
		if got := tc.r.String(); got != tc.want {
			t.Fatalf("Reason(%d).String() = %q, want %q", int(tc.r), got, tc.want)
		}
	}
}
