package health

import (
	"fmt"

	"dvsync/internal/simtime"
)

// ErrSample is one calibration-error observation in the sliding window.
type ErrSample struct {
	At    simtime.Time `json:"at"`
	ErrMs float64      `json:"err_ms"`
}

// State is the monitor's serialisable checkpoint state: the sliding-window
// contents plus the hysteresis machine.
type State struct {
	Janks        []simtime.Time `json:"janks,omitempty"`
	Errs         []ErrSample    `json:"errs,omitempty"`
	LastProgress simtime.Time   `json:"last_progress"`
	HaveProgress bool           `json:"have_progress,omitempty"`
	WatchStart   simtime.Time   `json:"watch_start"`
	HaveWatch    bool           `json:"have_watch,omitempty"`
	Tripped      bool           `json:"tripped,omitempty"`
	HealthySince simtime.Time   `json:"healthy_since"`
	HaveHealthy  bool           `json:"have_healthy,omitempty"`
	LastReason   Reason         `json:"last_reason,omitempty"`
	Trips        int            `json:"trips,omitempty"`
	Recoveries   int            `json:"recoveries,omitempty"`
}

// State captures the monitor for a checkpoint.
func (m *Monitor) State() State {
	st := State{
		LastProgress: m.lastProgress,
		HaveProgress: m.haveProgress,
		WatchStart:   m.watchStart,
		HaveWatch:    m.haveWatch,
		Tripped:      m.tripped,
		HealthySince: m.healthySince,
		HaveHealthy:  m.haveHealthy,
		LastReason:   m.lastReason,
		Trips:        m.trips,
		Recoveries:   m.recoveries,
	}
	if len(m.janks) > 0 {
		st.Janks = append([]simtime.Time(nil), m.janks...)
	}
	for _, e := range m.errs {
		st.Errs = append(st.Errs, ErrSample{At: e.at, ErrMs: e.errMs})
	}
	return st
}

// Restore loads checkpointed state into a freshly constructed monitor.
func (m *Monitor) Restore(st State) error {
	if st.LastReason < ReasonNone || st.LastReason > ReasonStall {
		return fmt.Errorf("health: restored reason %d out of range", int(st.LastReason))
	}
	for i := 1; i < len(st.Janks); i++ {
		if st.Janks[i] < st.Janks[i-1] {
			return fmt.Errorf("health: restored jank window out of order at %d", i)
		}
	}
	for i := 1; i < len(st.Errs); i++ {
		if st.Errs[i].At < st.Errs[i-1].At {
			return fmt.Errorf("health: restored calibration window out of order at %d", i)
		}
	}
	m.janks = m.janks[:0]
	m.janks = append(m.janks, st.Janks...)
	m.errs = m.errs[:0]
	for _, e := range st.Errs {
		m.errs = append(m.errs, errSample{at: e.At, errMs: e.ErrMs})
	}
	m.lastProgress, m.haveProgress = st.LastProgress, st.HaveProgress
	m.watchStart, m.haveWatch = st.WatchStart, st.HaveWatch
	m.tripped = st.Tripped
	m.healthySince, m.haveHealthy = st.HealthySince, st.HaveHealthy
	m.lastReason = st.LastReason
	m.trips, m.recoveries = st.Trips, st.Recoveries
	return nil
}
