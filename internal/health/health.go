// Package health implements the windowed health monitor that supervises a
// D-VSync run: it watches frame drops per second, DTV calibration error and
// pipeline progress over a sliding window, and decides — with hysteresis —
// when the system should take the §4.5 runtime switch back to conventional
// VSync, and when it is safe to recover. The monitor is pure decision
// logic: the sim feeds it observations and acts on its verdict.
package health

import (
	"fmt"

	"dvsync/internal/simtime"
)

// Reason names the check that tripped the monitor.
type Reason int

// Trip reasons.
const (
	// ReasonNone means healthy (also reported on recovery transitions).
	ReasonNone Reason = iota
	// ReasonFDPS means windowed frame drops per second exceeded MaxFDPS.
	ReasonFDPS
	// ReasonCalibration means the windowed mean DTV calibration error
	// exceeded MaxCalibErrMs.
	ReasonCalibration
	// ReasonStall means the pipeline made no progress for StallTimeout
	// while frames were in flight.
	ReasonStall
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonFDPS:
		return "fdps"
	case ReasonCalibration:
		return "calibration"
	case ReasonStall:
		return "stall"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Config tunes the monitor.
type Config struct {
	// Window is the sliding evaluation window; zero defaults to 500 ms.
	Window simtime.Duration
	// MaxFDPS trips the monitor when frame drops per second measured over
	// the window exceed it. It is the primary fallback threshold and must
	// be positive: a zero threshold would trip on the first jank of any
	// workload and flap forever.
	MaxFDPS float64
	// MaxCalibErrMs trips when the windowed mean |present − D-Timestamp|
	// exceeds it (ms). Zero disables the check.
	MaxCalibErrMs float64
	// StallTimeout trips when no buffer has been queued for this long
	// while frames are in flight. Zero disables the check.
	StallTimeout simtime.Duration
	// RecoverAfter is how long every check must stay clean before a
	// tripped monitor recovers (the hysteresis rule); zero defaults to
	// twice the window.
	RecoverAfter simtime.Duration
}

// Validate reports configuration errors, including the zero fallback
// threshold.
func (c Config) Validate() error {
	switch {
	case c.MaxFDPS <= 0:
		return fmt.Errorf("health: fallback FDPS threshold must be positive, got %v", c.MaxFDPS)
	case c.MaxCalibErrMs < 0:
		return fmt.Errorf("health: negative calibration-error bound %v", c.MaxCalibErrMs)
	case c.Window < 0:
		return fmt.Errorf("health: negative window %v", c.Window)
	case c.StallTimeout < 0:
		return fmt.Errorf("health: negative stall timeout %v", c.StallTimeout)
	case c.RecoverAfter < 0:
		return fmt.Errorf("health: negative recovery hysteresis %v", c.RecoverAfter)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 500 * simtime.Millisecond
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 2 * c.Window
	}
	return c
}

type errSample struct {
	at    simtime.Time
	errMs float64
}

// Monitor accumulates observations and evaluates the trip/recover decision.
// It is single-threaded like the rest of the simulation.
type Monitor struct {
	cfg Config

	janks []simtime.Time
	errs  []errSample

	lastProgress simtime.Time
	haveProgress bool
	watchStart   simtime.Time
	haveWatch    bool

	tripped      bool
	healthySince simtime.Time
	haveHealthy  bool
	lastReason   Reason

	trips, recoveries int
}

// NewMonitor builds a monitor. Invalid configs panic; call Config.Validate
// first when the config is external input.
func NewMonitor(cfg Config) *Monitor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Monitor{cfg: cfg.withDefaults()}
}

// Reset clears every window, watchdog reference and counter, returning the
// monitor to its as-constructed condition (the accumulated sample slices
// keep their capacity for the next run).
func (m *Monitor) Reset() {
	m.janks = m.janks[:0]
	m.errs = m.errs[:0]
	m.lastProgress = 0
	m.haveProgress = false
	m.watchStart = 0
	m.haveWatch = false
	m.tripped = false
	m.healthySince = 0
	m.haveHealthy = false
	m.lastReason = ReasonNone
	m.trips = 0
	m.recoveries = 0
}

// ObserveJank records a repeated-frame edge.
func (m *Monitor) ObserveJank(at simtime.Time) { m.janks = append(m.janks, at) }

// ObserveCalibError records one frame's |present − D-Timestamp| in ms.
func (m *Monitor) ObserveCalibError(at simtime.Time, errMs float64) {
	m.errs = append(m.errs, errSample{at: at, errMs: errMs})
}

// ObserveProgress records pipeline progress (a buffer entering the queue).
func (m *Monitor) ObserveProgress(at simtime.Time) {
	m.lastProgress = at
	m.haveProgress = true
}

func (m *Monitor) prune(now simtime.Time) {
	cut := now.Add(-m.cfg.Window)
	i := 0
	for i < len(m.janks) && m.janks[i] < cut {
		i++
	}
	m.janks = m.janks[i:]
	i = 0
	for i < len(m.errs) && m.errs[i].at < cut {
		i++
	}
	m.errs = m.errs[i:]
}

// WindowFDPS returns frame drops per second over the (possibly truncated,
// at stream start) window ending at now.
func (m *Monitor) WindowFDPS(now simtime.Time) float64 {
	m.prune(now)
	win := m.cfg.Window
	if simtime.Duration(now) < win {
		win = simtime.Duration(now)
	}
	if win <= 0 {
		return 0
	}
	return float64(len(m.janks)) / win.Seconds()
}

func (m *Monitor) violation(now simtime.Time, pipelineBusy bool) Reason {
	if m.WindowFDPS(now) > m.cfg.MaxFDPS {
		return ReasonFDPS
	}
	if m.cfg.MaxCalibErrMs > 0 && len(m.errs) > 0 {
		sum := 0.0
		for _, e := range m.errs {
			sum += e.errMs
		}
		if sum/float64(len(m.errs)) > m.cfg.MaxCalibErrMs {
			return ReasonCalibration
		}
	}
	if m.cfg.StallTimeout > 0 && pipelineBusy {
		// Measure from the last progress event, or — when nothing has ever
		// been queued — from the first evaluation. Without the fallback a
		// pipeline that wedges before its very first buffer reaches the
		// queue is invisible to the stall check: no progress means no
		// reference point, and no latched frame means no janks either.
		ref, ok := m.lastProgress, m.haveProgress
		if !ok {
			ref, ok = m.watchStart, m.haveWatch
		}
		if ok && now.Sub(ref) > m.cfg.StallTimeout {
			return ReasonStall
		}
	}
	return ReasonNone
}

// Evaluate updates the trip state at now and reports whether the monitor is
// tripped. pipelineBusy tells the stall watchdog whether frames are in
// flight (an idle pipeline is healthy, not stalled). Hysteresis: the
// monitor trips on the first violation and recovers only after every check
// has stayed clean for RecoverAfter.
func (m *Monitor) Evaluate(now simtime.Time, pipelineBusy bool) bool {
	if !m.haveWatch {
		m.haveWatch = true
		m.watchStart = now
	}
	r := m.violation(now, pipelineBusy)
	if !m.tripped {
		if r != ReasonNone {
			m.tripped = true
			m.trips++
			m.lastReason = r
			m.haveHealthy = false
		}
		return m.tripped
	}
	if r != ReasonNone {
		m.lastReason = r
		m.haveHealthy = false
		return true
	}
	if !m.haveHealthy {
		m.haveHealthy = true
		m.healthySince = now
	}
	if now.Sub(m.healthySince) >= m.cfg.RecoverAfter {
		m.tripped = false
		m.recoveries++
		m.haveHealthy = false
		m.lastReason = ReasonNone
	}
	return m.tripped
}

// Tripped reports the current state without re-evaluating.
func (m *Monitor) Tripped() bool { return m.tripped }

// LastReason returns the check behind the most recent trip (ReasonNone
// after a recovery).
func (m *Monitor) LastReason() Reason { return m.lastReason }

// Trips returns how many times the monitor has tripped.
func (m *Monitor) Trips() int { return m.trips }

// Recoveries returns how many times the monitor has recovered.
func (m *Monitor) Recoveries() int { return m.recoveries }
