// Package dist provides seeded random-number generation and the probability
// distributions used by the workload generators.
//
// The paper's central empirical observation (§3, Figure 1) is that frame
// rendering time follows a power-law-like distribution: the vast majority of
// frames are short while a small heavy tail of key frames misses VSync
// deadlines. The generators here compose a lognormal body with a Pareto tail
// to reproduce that shape, with per-scenario calibration knobs.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// RNG wraps math/rand with an explicit seed so every simulation is
// reproducible and independent streams can be split deterministically.
type RNG struct {
	r    *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource counts base draws so a stream's position can be
// checkpointed as (seed, draws) and restored by fast-forwarding. It
// deliberately implements only rand.Source — never Source64 — so rand.Rand
// routes every variate (Float64, Intn, NormFloat64, Perm) through Int63
// exactly as it does for the plain rand.NewSource it wraps, keeping output
// byte-identical to the uncounted stream.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// New returns a deterministic RNG for the given seed.
func New(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed)}
	return &RNG{r: rand.New(src), src: src, seed: seed}
}

// NewAt returns the stream for seed positioned after draws base draws —
// the checkpoint-restore constructor.
func NewAt(seed int64, draws uint64) *RNG {
	g := New(seed)
	g.Skip(draws)
	return g
}

// Seed returns the seed the stream was created from.
func (g *RNG) Seed() int64 { return g.seed }

// Reseed rewinds the stream to the start of the given seed's sequence
// without allocating — byte-identical to New(seed), because rand.Rand.Seed
// discards its buffered state and delegates to the counting source, which
// resets its draw count. It is the reuse path's replacement for building a
// fresh RNG per run.
func (g *RNG) Reseed(seed int64) {
	g.seed = seed
	g.r.Seed(seed)
}

// Draws returns how many base-source values the stream has consumed.
func (g *RNG) Draws() uint64 { return g.src.n }

// Skip advances the stream by n base draws without exposing them.
func (g *RNG) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		g.src.Int63()
	}
}

// Split derives an independent child stream. The label decorrelates children
// created from the same parent.
func (g *RNG) Split(label string) *RNG {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	return New(h ^ g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Sampler produces positive values (frame costs, gap times, …).
type Sampler interface {
	// Sample draws one value using the supplied RNG.
	Sample(g *RNG) float64
}

// Constant always returns V.
type Constant struct{ V float64 }

// Sample implements Sampler.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(g *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*g.Float64() }

// Normal draws from N(Mu, Sigma²) truncated at Min.
type Normal struct {
	Mu, Sigma float64
	Min       float64
}

// Sample implements Sampler.
func (n Normal) Sample(g *RNG) float64 {
	v := n.Mu + n.Sigma*g.NormFloat64()
	if v < n.Min {
		v = n.Min
	}
	return v
}

// Lognormal draws from exp(N(Mu, Sigma²)). Mu and Sigma are parameters of
// the underlying normal (i.e. of log X).
type Lognormal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (l Lognormal) Sample(g *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*g.NormFloat64())
}

// Mean returns the analytic mean of the lognormal.
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// LognormalFromMoments builds a Lognormal whose mean and standard deviation
// match the given values.
func LognormalFromMoments(mean, stddev float64) Lognormal {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: non-positive lognormal mean %v", mean))
	}
	v := stddev * stddev
	sigma2 := math.Log(1 + v/(mean*mean))
	return Lognormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}
}

// Pareto draws from a Pareto distribution with scale Xm and shape Alpha.
// Smaller Alpha ⇒ heavier tail. Alpha ≤ 1 has infinite mean; workload
// profiles use Alpha in (1.1, 4) to express how pathological an app's key
// frames are.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Sampler.
func (p Pareto) Sample(g *RNG) float64 {
	u := g.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mixture draws from one of several component samplers with the given
// weights.
type Mixture struct {
	Weights    []float64
	Components []Sampler
	cum        []float64
}

// NewMixture validates and normalises the weights.
func NewMixture(weights []float64, components []Sampler) *Mixture {
	if len(weights) != len(components) || len(weights) == 0 {
		panic("dist: mixture weights/components mismatch")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: zero total mixture weight")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return &Mixture{Weights: weights, Components: components, cum: cum}
}

// Sample implements Sampler.
func (m *Mixture) Sample(g *RNG) float64 {
	u := g.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.Components[i].Sample(g)
		}
	}
	return m.Components[len(m.Components)-1].Sample(g)
}

// Clamped limits another sampler's output to [Lo, Hi].
type Clamped struct {
	S      Sampler
	Lo, Hi float64
}

// Sample implements Sampler.
func (c Clamped) Sample(g *RNG) float64 {
	v := c.S.Sample(g)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Scaled multiplies another sampler's output by Factor.
type Scaled struct {
	S      Sampler
	Factor float64
}

// Sample implements Sampler.
func (s Scaled) Sample(g *RNG) float64 { return s.Factor * s.S.Sample(g) }
