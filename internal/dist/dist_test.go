package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	g := New(1)
	a := g.Split("ui")
	g2 := New(1)
	b := g2.Split("render")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams correlated: %d identical of 100", same)
	}
}

func TestConstant(t *testing.T) {
	s := Constant{V: 3.5}
	if got := s.Sample(New(1)); got != 3.5 {
		t.Errorf("Constant = %v", got)
	}
}

func TestUniformRange(t *testing.T) {
	g := New(7)
	u := Uniform{Lo: 2, Hi: 5}
	for i := 0; i < 1000; i++ {
		v := u.Sample(g)
		if v < 2 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestNormalTruncation(t *testing.T) {
	g := New(9)
	n := Normal{Mu: 0, Sigma: 10, Min: 0}
	for i := 0; i < 1000; i++ {
		if v := n.Sample(g); v < 0 {
			t.Fatalf("normal below Min: %v", v)
		}
	}
}

func TestLognormalFromMoments(t *testing.T) {
	mean, sd := 8.0, 3.0
	l := LognormalFromMoments(mean, sd)
	g := New(123)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := l.Sample(g)
		if v <= 0 {
			t.Fatal("lognormal produced non-positive value")
		}
		sum += v
		sumsq += v * v
	}
	gotMean := sum / float64(n)
	gotSD := math.Sqrt(sumsq/float64(n) - gotMean*gotMean)
	if math.Abs(gotMean-mean) > 0.1 {
		t.Errorf("empirical mean %v, want ≈%v", gotMean, mean)
	}
	if math.Abs(gotSD-sd) > 0.2 {
		t.Errorf("empirical sd %v, want ≈%v", gotSD, sd)
	}
	if math.Abs(l.Mean()-mean) > 1e-9 {
		t.Errorf("analytic mean %v, want %v", l.Mean(), mean)
	}
}

func TestParetoTail(t *testing.T) {
	g := New(55)
	p := Pareto{Xm: 10, Alpha: 2}
	n := 100000
	over20 := 0
	for i := 0; i < n; i++ {
		v := p.Sample(g)
		if v < p.Xm {
			t.Fatalf("pareto below scale: %v", v)
		}
		if v > 20 {
			over20++
		}
	}
	// P(X > 20) = (10/20)^2 = 0.25.
	frac := float64(over20) / float64(n)
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("P(X>20) = %v, want ≈0.25", frac)
	}
}

func TestParetoHeavierTailWithSmallerAlpha(t *testing.T) {
	q := func(alpha float64) float64 {
		g := New(99)
		p := Pareto{Xm: 1, Alpha: alpha}
		max := 0.0
		for i := 0; i < 10000; i++ {
			if v := p.Sample(g); v > max {
				max = v
			}
		}
		return max
	}
	if q(1.2) <= q(3.5) {
		t.Error("smaller alpha should produce heavier extremes")
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		[]float64{0.9, 0.1},
		[]Sampler{Constant{V: 1}, Constant{V: 100}},
	)
	g := New(4)
	n := 100000
	heavy := 0
	for i := 0; i < n; i++ {
		if m.Sample(g) == 100 {
			heavy++
		}
	}
	frac := float64(heavy) / float64(n)
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("heavy fraction %v, want ≈0.1", frac)
	}
}

func TestMixtureValidation(t *testing.T) {
	for _, tc := range []struct {
		w []float64
		c []Sampler
	}{
		{nil, nil},
		{[]float64{1}, []Sampler{Constant{}, Constant{}}},
		{[]float64{-1, 2}, []Sampler{Constant{}, Constant{}}},
		{[]float64{0, 0}, []Sampler{Constant{}, Constant{}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMixture(%v) should panic", tc.w)
				}
			}()
			NewMixture(tc.w, tc.c)
		}()
	}
}

func TestClamped(t *testing.T) {
	g := New(2)
	c := Clamped{S: Pareto{Xm: 1, Alpha: 1.1}, Lo: 2, Hi: 5}
	for i := 0; i < 1000; i++ {
		v := c.Sample(g)
		if v < 2 || v > 5 {
			t.Fatalf("clamped out of range: %v", v)
		}
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{S: Constant{V: 3}, Factor: 2}
	if got := s.Sample(New(1)); got != 6 {
		t.Errorf("Scaled = %v", got)
	}
}

// Property: all samplers produce finite values.
func TestSamplersFinite(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		samplers := []Sampler{
			Uniform{Lo: 0, Hi: 10},
			Normal{Mu: 5, Sigma: 2, Min: 0},
			Lognormal{Mu: 1, Sigma: 0.5},
			Pareto{Xm: 1, Alpha: 1.5},
		}
		for _, s := range samplers {
			v := s.Sample(g)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
