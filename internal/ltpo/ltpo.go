// Package ltpo implements variable-refresh-rate control for LTPO panels
// and its co-design with D-VSync (§5.3).
//
// Traditional LTPO lowers the refresh rate when on-screen motion is slow
// enough that human eyes cannot tell the difference — a swipe starts at
// 120 Hz, then drops to 90 and 60 as the fling decelerates. D-VSync and
// LTPO interact through the accumulated frames: a buffer rendered for rate
// X must be displayed for a 1/X interval, so the panel may only switch to
// rate Y once every X-rate buffer has been consumed. The Coordinator
// enforces exactly that hand-off: rendering switches rate first, the queue
// drains, then the panel follows.
package ltpo

import (
	"fmt"
	"sort"

	"dvsync/internal/simtime"
)

// Policy decides the desired refresh rate from the current content
// velocity (in content units per second, e.g. scroll px/s).
type Policy interface {
	DesiredHz(velocity float64) int
}

// ThresholdPolicy is the classic step policy: the highest rate whose
// velocity threshold the motion exceeds.
type ThresholdPolicy struct {
	// Steps maps a minimum velocity to a rate; the zero-velocity rate is
	// the floor (e.g. 60 Hz at rest for UI, 30 for video).
	Steps []RateStep
}

// RateStep is one (velocity ≥ MinVelocity ⇒ Hz) rule.
type RateStep struct {
	MinVelocity float64
	Hz          int
}

// NewThresholdPolicy validates and sorts the steps by ascending velocity.
func NewThresholdPolicy(steps []RateStep) *ThresholdPolicy {
	if len(steps) == 0 {
		panic("ltpo: empty policy")
	}
	s := append([]RateStep(nil), steps...)
	sort.Slice(s, func(i, j int) bool { return s[i].MinVelocity < s[j].MinVelocity })
	if s[0].MinVelocity != 0 {
		panic("ltpo: policy must define a zero-velocity floor rate")
	}
	for _, st := range s {
		if st.Hz <= 0 {
			panic(fmt.Sprintf("ltpo: invalid rate %d", st.Hz))
		}
	}
	return &ThresholdPolicy{Steps: s}
}

// DefaultUIPolicy mirrors the §5.3 example: 120 Hz while interacting,
// stepping to 90 and 60 as scrolling slows.
func DefaultUIPolicy() *ThresholdPolicy {
	return NewThresholdPolicy([]RateStep{
		{0, 60},
		{400, 90},
		{1200, 120},
	})
}

// DesiredHz implements Policy.
func (p *ThresholdPolicy) DesiredHz(velocity float64) int {
	if velocity < 0 {
		velocity = -velocity
	}
	hz := p.Steps[0].Hz
	for _, s := range p.Steps {
		if velocity >= s.MinVelocity {
			hz = s.Hz
		}
	}
	return hz
}

// QueueView is how the coordinator inspects pending frames: the rates of
// all rendered-but-undisplayed buffers, oldest first.
type QueueView interface {
	PendingRates() []int
}

// PanelControl is the subset of the panel the coordinator drives.
type PanelControl interface {
	RefreshHz() int
	SetRefreshHz(hz int)
}

// Coordinator applies a Policy while honouring the D-VSync drain rule: the
// panel switches only when no accumulated buffer was produced for the old
// rate (§5.3: "frames produced at frame rate X must be consumed by the
// screen's HAL before the screen can switch to the new refresh rate Y").
type Coordinator struct {
	policy Policy
	panel  PanelControl
	queue  QueueView

	// renderHz is the rate new frames should be produced for; it may lead
	// the panel rate during a drain.
	renderHz  int
	pendingHz int // panel switch awaiting drain; 0 = none

	switches int
	deferred int
}

// NewCoordinator wires a coordinator.
func NewCoordinator(policy Policy, panel PanelControl, queue QueueView) *Coordinator {
	if policy == nil || panel == nil || queue == nil {
		panic("ltpo: nil coordinator dependency")
	}
	return &Coordinator{policy: policy, panel: panel, queue: queue, renderHz: panel.RefreshHz()}
}

// Reset resyncs the render rate to the panel's current rate and clears the
// pending switch and counters. Call it after the panel's own reset so the
// coordinator re-reads the configured base rate, exactly as NewCoordinator
// does.
func (c *Coordinator) Reset() {
	c.renderHz = c.panel.RefreshHz()
	c.pendingHz = 0
	c.switches = 0
	c.deferred = 0
}

// RenderHz returns the rate frames should currently be rendered for. The
// producer tags buffers with it.
func (c *Coordinator) RenderHz() int { return c.renderHz }

// Switches returns how many panel rate changes were applied.
func (c *Coordinator) Switches() int { return c.switches }

// DeferredSwitches returns how many times a panel switch had to wait for
// accumulated frames to drain.
func (c *Coordinator) DeferredSwitches() int { return c.deferred }

// Observe is called every refresh edge (after the latch) with the current
// content velocity. It retargets the render rate immediately and the panel
// rate as soon as the queue holds no old-rate buffers.
func (c *Coordinator) Observe(now simtime.Time, velocity float64) {
	want := c.policy.DesiredHz(velocity)
	if want != c.renderHz {
		// Rendering switches rate first: new frames are tagged with the
		// new rate while old-rate frames finish displaying.
		c.renderHz = want
	}
	cur := c.panel.RefreshHz()
	if want == cur {
		c.pendingHz = 0
		return
	}
	c.pendingHz = want
	for _, hz := range c.queue.PendingRates() {
		if hz != want {
			// An accumulated buffer still carries a different rate bound:
			// it controls its own display duration, so the switch waits.
			c.deferred++
			return
		}
	}
	c.panel.SetRefreshHz(want)
	c.switches++
	c.pendingHz = 0
}
