package ltpo

import "fmt"

// State is the coordinator's serialisable checkpoint state.
type State struct {
	RenderHz  int `json:"render_hz"`
	PendingHz int `json:"pending_hz,omitempty"`
	Switches  int `json:"switches,omitempty"`
	Deferred  int `json:"deferred,omitempty"`
}

// State captures the coordinator for a checkpoint.
func (c *Coordinator) State() State {
	return State{RenderHz: c.renderHz, PendingHz: c.pendingHz, Switches: c.switches, Deferred: c.deferred}
}

// Restore loads checkpointed state into a freshly constructed coordinator.
func (c *Coordinator) Restore(st State) error {
	if st.RenderHz <= 0 {
		return fmt.Errorf("ltpo: restored render rate %d is not positive", st.RenderHz)
	}
	if st.PendingHz < 0 {
		return fmt.Errorf("ltpo: restored pending rate %d is negative", st.PendingHz)
	}
	c.renderHz, c.pendingHz = st.RenderHz, st.PendingHz
	c.switches, c.deferred = st.Switches, st.Deferred
	return nil
}
