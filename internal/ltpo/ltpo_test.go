package ltpo

import (
	"testing"
)

type fakePanel struct{ hz int }

func (p *fakePanel) RefreshHz() int      { return p.hz }
func (p *fakePanel) SetRefreshHz(hz int) { p.hz = hz }

type fakeQueue struct{ rates []int }

func (q *fakeQueue) PendingRates() []int { return q.rates }

func TestThresholdPolicy(t *testing.T) {
	p := DefaultUIPolicy()
	cases := []struct {
		v    float64
		want int
	}{
		{0, 60}, {100, 60}, {399, 60}, {400, 90}, {1000, 90},
		{1200, 120}, {5000, 120}, {-5000, 120},
	}
	for _, c := range cases {
		if got := p.DesiredHz(c.v); got != c.want {
			t.Errorf("DesiredHz(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	for _, steps := range [][]RateStep{
		nil,
		{{MinVelocity: 100, Hz: 60}}, // no zero floor
		{{MinVelocity: 0, Hz: 0}},    // invalid rate
		{{MinVelocity: 0, Hz: -1}},   // invalid rate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewThresholdPolicy(%v) should panic", steps)
				}
			}()
			NewThresholdPolicy(steps)
		}()
	}
}

func TestCoordinatorImmediateSwitchWhenDrained(t *testing.T) {
	panel := &fakePanel{hz: 120}
	queue := &fakeQueue{}
	c := NewCoordinator(DefaultUIPolicy(), panel, queue)
	// Scrolling slows to a crawl: with nothing pending, the panel drops to
	// 60 Hz right away.
	c.Observe(0, 50)
	if panel.hz != 60 {
		t.Errorf("panel at %d Hz, want 60", panel.hz)
	}
	if c.RenderHz() != 60 {
		t.Errorf("render rate %d, want 60", c.RenderHz())
	}
	if c.Switches() != 1 {
		t.Errorf("switches = %d", c.Switches())
	}
}

func TestCoordinatorDrainRule(t *testing.T) {
	panel := &fakePanel{hz: 120}
	queue := &fakeQueue{rates: []int{120, 120}}
	c := NewCoordinator(DefaultUIPolicy(), panel, queue)

	// Two accumulated 120 Hz buffers: rendering retargets immediately, the
	// panel must wait (§5.3: X-rate frames consumed before switching to Y).
	c.Observe(0, 50)
	if c.RenderHz() != 60 {
		t.Errorf("render rate %d, want 60 immediately", c.RenderHz())
	}
	if panel.hz != 120 {
		t.Errorf("panel switched to %d with 120 Hz frames pending", panel.hz)
	}
	if c.DeferredSwitches() != 1 {
		t.Errorf("deferred = %d", c.DeferredSwitches())
	}

	// One old buffer consumed, one new-rate buffer rendered: still blocked.
	queue.rates = []int{120, 60}
	c.Observe(1000, 50)
	if panel.hz != 120 {
		t.Error("panel switched with an old-rate frame still queued")
	}

	// Old-rate frames fully drained: the switch applies.
	queue.rates = []int{60, 60}
	c.Observe(2000, 50)
	if panel.hz != 60 {
		t.Errorf("panel at %d Hz after drain, want 60", panel.hz)
	}
	if c.Switches() != 1 {
		t.Errorf("switches = %d", c.Switches())
	}
}

func TestCoordinatorSpeedUpAndBack(t *testing.T) {
	panel := &fakePanel{hz: 60}
	queue := &fakeQueue{}
	c := NewCoordinator(DefaultUIPolicy(), panel, queue)
	c.Observe(0, 2000)
	if panel.hz != 120 {
		t.Errorf("fast motion should raise rate: %d", panel.hz)
	}
	c.Observe(1000, 700)
	if panel.hz != 90 {
		t.Errorf("medium motion should step to 90: %d", panel.hz)
	}
	c.Observe(2000, 0)
	if panel.hz != 60 {
		t.Errorf("rest should fall to 60: %d", panel.hz)
	}
	if c.Switches() != 3 {
		t.Errorf("switches = %d", c.Switches())
	}
}

func TestCoordinatorTargetWithdrawn(t *testing.T) {
	panel := &fakePanel{hz: 120}
	queue := &fakeQueue{rates: []int{120}}
	c := NewCoordinator(DefaultUIPolicy(), panel, queue)
	c.Observe(0, 50) // wants 60, deferred
	c.Observe(1000, 3000)
	if panel.hz != 120 || c.RenderHz() != 120 {
		t.Error("returning to fast motion should cancel the pending switch")
	}
	if c.Switches() != 0 {
		t.Errorf("switches = %d, want 0", c.Switches())
	}
}

func TestNilDependenciesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCoordinator(nil, nil, nil)
}
