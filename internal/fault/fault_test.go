package fault

import (
	"strings"
	"testing"

	"dvsync/internal/simtime"
)

func ms(x float64) simtime.Time { return simtime.Time(simtime.FromMillis(x)) }

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"empty", Config{}, ""},
		{"valid stall", Config{Stalls: []Episode{{Start: ms(1), End: ms(2), Severity: 1.5}}}, ""},
		{"inverted window", Config{Stalls: []Episode{{Start: ms(2), End: ms(1), Severity: 1}}},
			"empty or inverted"},
		{"empty window", Config{AllocFail: []Episode{{Start: ms(2), End: ms(2), Severity: 0.5}}},
			"empty or inverted"},
		{"negative severity", Config{VSyncJitter: []Episode{{Start: 0, End: ms(1), Severity: -0.1}}},
			"negative severity"},
		{"probability over one", Config{MissedVSync: []Episode{{Start: 0, End: ms(1), Severity: 1.5}}},
			"probability"},
		{"overlapping windows", Config{AllocFail: []Episode{
			{Start: ms(0), End: ms(5), Severity: 0.2},
			{Start: ms(4), End: ms(9), Severity: 0.3},
		}}, "overlapping"},
		{"disjoint windows ok", Config{AllocFail: []Episode{
			{Start: ms(5), End: ms(9), Severity: 0.2},
			{Start: ms(0), End: ms(5), Severity: 0.3},
		}}, ""},
		{"overlap across unsorted input", Config{ClockDrift: []Episode{
			{Start: ms(10), End: ms(20), Severity: 100},
			{Start: ms(0), End: ms(11), Severity: 100},
		}}, "overlapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	c.InputBurst = []Episode{{Start: 0, End: ms(1), Severity: 10}}
	if !c.Enabled() {
		t.Fatal("configured burst not reported enabled")
	}
}

func TestCostScaleWindowing(t *testing.T) {
	in := NewInjector(Config{Stalls: []Episode{{Start: ms(10), End: ms(20), Severity: 2}}})
	if got := in.CostScale(ms(5)); got != 1 {
		t.Fatalf("scale before window = %v, want 1", got)
	}
	if got := in.CostScale(ms(15)); got != 3 {
		t.Fatalf("scale inside window = %v, want 3", got)
	}
	if got := in.CostScale(ms(20)); got != 1 {
		t.Fatalf("scale at exclusive end = %v, want 1", got)
	}
	if n := in.Counters().StalledFrames; n != 1 {
		t.Fatalf("stalled frames = %d, want 1", n)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{
		Seed:        42,
		VSyncJitter: []Episode{{Start: 0, End: ms(100), Severity: 1.5}},
		MissedVSync: []Episode{{Start: 0, End: ms(100), Severity: 0.5}},
		AllocFail:   []Episode{{Start: 0, End: ms(100), Severity: 0.5}},
	}
	run := func() ([]simtime.Duration, []bool, []bool) {
		in := NewInjector(cfg)
		var delays []simtime.Duration
		var misses, allocs []bool
		for i := 0; i < 50; i++ {
			at := ms(float64(i))
			delays = append(delays, in.EdgeDelay(at))
			misses = append(misses, in.EdgeMiss(at, uint64(i)))
			allocs = append(allocs, in.AllocFails(at))
		}
		return delays, misses, allocs
	}
	d1, m1, a1 := run()
	d2, m2, a2 := run()
	for i := range d1 {
		if d1[i] != d2[i] || m1[i] != m2[i] || a1[i] != a2[i] {
			t.Fatalf("replay diverged at draw %d", i)
		}
	}
}

func TestEdgeDelayClamped(t *testing.T) {
	in := NewInjector(Config{VSyncJitter: []Episode{{Start: 0, End: ms(1000), Severity: 2}}})
	sigma := simtime.Duration(2 * float64(simtime.Millisecond))
	for i := 0; i < 500; i++ {
		d := in.EdgeDelay(ms(float64(i)))
		if d < -3*sigma || d > 3*sigma {
			t.Fatalf("jitter %v exceeds ±3σ (%v)", d, 3*sigma)
		}
	}
}

func TestSignalDelayAccumulates(t *testing.T) {
	in := NewInjector(Config{ClockDrift: []Episode{{Start: ms(0), End: ms(10000), Severity: 1000}}})
	early := in.SignalDelay(ms(1000))
	late := in.SignalDelay(ms(9000))
	if early >= late {
		t.Fatalf("drift not accumulating: %v at 1s vs %v at 9s", early, late)
	}
	// 1000 ppm over 1 s is 1 ms of lag.
	if want := simtime.FromMillis(1); early != want {
		t.Fatalf("drift after 1 s = %v, want %v", early, want)
	}
	if d := in.SignalDelay(ms(10000)); d != 0 {
		t.Fatalf("drift past window end = %v, want 0", d)
	}
}

func TestBurstDelivery(t *testing.T) {
	in := NewInjector(Config{InputBurst: []Episode{{Start: ms(100), End: ms(200), Severity: 20}}})
	if _, ok := in.BurstDelivery(ms(50)); ok {
		t.Fatal("burst active outside window")
	}
	got, ok := in.BurstDelivery(ms(105))
	if !ok || got != ms(120) {
		t.Fatalf("delivery of t=105ms = %v (ok=%v), want 120ms", got, ok)
	}
	got, _ = in.BurstDelivery(ms(120))
	if got != ms(140) {
		t.Fatalf("delivery of t=120ms = %v, want 140ms", got)
	}
	got, _ = in.BurstDelivery(ms(199))
	if got != ms(200) {
		t.Fatalf("delivery of t=199ms = %v, want clamp to window end 200ms", got)
	}
	prev := simtime.Time(0)
	for x := 100.0; x < 200; x += 7 {
		d, _ := in.BurstDelivery(ms(x))
		if d < prev {
			t.Fatalf("burst delivery not monotone at t=%vms", x)
		}
		prev = d
	}
}

func TestScenario(t *testing.T) {
	for _, cls := range Classes() {
		cfg, err := Scenario(cls, 0.5, ms(0), ms(1000), 7)
		if err != nil {
			t.Fatalf("scenario %q: %v", cls, err)
		}
		if !cfg.Enabled() {
			t.Fatalf("scenario %q at severity 0.5 injects nothing", cls)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("scenario %q invalid: %v", cls, err)
		}
		zero, err := Scenario(cls, 0, ms(0), ms(1000), 7)
		if err != nil {
			t.Fatalf("scenario %q at zero severity: %v", cls, err)
		}
		if zero.Enabled() {
			t.Fatalf("scenario %q at severity 0 injects faults", cls)
		}
	}
	if _, err := Scenario("nope", 0.5, ms(0), ms(1), 7); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := Scenario("stall", 1.5, ms(0), ms(1), 7); err == nil {
		t.Fatal("out-of-range severity accepted")
	}
	if _, err := Scenario("stall", 0.5, ms(1), ms(1), 7); err == nil {
		t.Fatal("empty window accepted")
	}
}
