// Package fault implements the deterministic fault-injection layer: seeded
// perturbations of the simulation delivered through well-defined hooks
// instead of ad-hoc edits. Each fault class is a list of episode windows
// with a class-specific severity; all stochastic decisions are drawn from
// per-class streams split off one seed, so a faulted run replays
// bit-for-bit — perturbation testing is only trustworthy when the
// perturbations themselves are reproducible.
//
// Fault classes and their severity semantics:
//
//   - Stalls: render/UI stall episodes (GPU hang, thermal throttling) —
//     stage costs of frames started inside the window are multiplied by
//     (1 + Severity).
//   - VSyncJitter: extra panel-edge jitter — Severity is the gaussian
//     standard deviation in milliseconds (clamped to ±3σ).
//   - MissedVSync: the panel skips refreshes — Severity is the per-edge
//     miss probability in [0, 1].
//   - ClockDrift: the software VSync distributor drifts behind the panel —
//     Severity is the lag rate in parts per million; signal delay grows as
//     (t − Start) × Severity / 1e6 inside the window.
//   - AllocFail: transient buffer-allocation failure — Severity is the
//     per-dequeue failure probability in [0, 1].
//   - InputDrop: digitizer dropout — Severity is the per-sample drop
//     probability in [0, 1].
//   - InputBurst: digitizer batching — samples inside the window are held
//     and delivered together; Severity is the batch interval in
//     milliseconds.
package fault

import (
	"fmt"
	"sort"

	"dvsync/internal/dist"
	"dvsync/internal/simtime"
)

// Episode is one fault window [Start, End) with a class-specific severity.
type Episode struct {
	// Start/End bound the window; End is exclusive.
	Start, End simtime.Time
	// Severity is the class-specific magnitude (see package comment).
	Severity float64
}

// Active reports whether t falls inside the window.
func (e Episode) Active(t simtime.Time) bool { return t >= e.Start && t < e.End }

// Config enumerates the fault episodes of one run. The zero value injects
// nothing.
type Config struct {
	// Seed seeds the per-class random streams for probabilistic faults.
	Seed int64
	// Stalls are render/UI stall episodes (cost multipliers).
	Stalls []Episode
	// VSyncJitter perturbs hardware edges (stddev in ms).
	VSyncJitter []Episode
	// MissedVSync makes the panel skip refreshes (probability).
	MissedVSync []Episode
	// ClockDrift lags software VSync signals behind the panel (ppm).
	ClockDrift []Episode
	// AllocFail fails buffer dequeues transiently (probability).
	AllocFail []Episode
	// InputDrop drops digitizer samples (probability).
	InputDrop []Episode
	// InputBurst batches digitizer delivery (interval in ms).
	InputBurst []Episode
}

// class pairs a fault class with its episodes for validation and iteration
// in a fixed order (never a map: iteration order is part of determinism).
type class struct {
	name        string
	episodes    []Episode
	probability bool // severity must lie in [0, 1]
}

func (c *Config) byClass() []class {
	return []class{
		{"stall", c.Stalls, false},
		{"vsync-jitter", c.VSyncJitter, false},
		{"missed-vsync", c.MissedVSync, true},
		{"clock-drift", c.ClockDrift, false},
		{"alloc-fail", c.AllocFail, true},
		{"input-drop", c.InputDrop, true},
		{"input-burst", c.InputBurst, false},
	}
}

// EpisodeRef identifies one configured episode: its class name, its index
// within the class, and the window itself.
type EpisodeRef struct {
	// Class is the fault class name (byClass vocabulary: "stall",
	// "vsync-jitter", "missed-vsync", "clock-drift", "alloc-fail",
	// "input-drop", "input-burst").
	Class string
	// Index is the episode's position within its class.
	Index int
	// Episode is the window.
	Episode Episode
}

// Episodes lists every configured episode in fixed class order (the
// byClass order), episodes within a class in declaration order — the
// deterministic walk the simulator precomputes schema-v3 fault markers
// from.
func (c *Config) Episodes() []EpisodeRef {
	var out []EpisodeRef
	for _, cl := range c.byClass() {
		for i, e := range cl.episodes {
			out = append(out, EpisodeRef{Class: cl.name, Index: i, Episode: e})
		}
	}
	return out
}

// Enabled reports whether any episode is configured.
func (c *Config) Enabled() bool {
	for _, cl := range c.byClass() {
		if len(cl.episodes) > 0 {
			return true
		}
	}
	return false
}

// Validate reports configuration errors: inverted or overlapping windows,
// negative severities, and out-of-range probabilities.
func (c *Config) Validate() error {
	for _, cl := range c.byClass() {
		for _, e := range cl.episodes {
			switch {
			case e.End <= e.Start:
				return fmt.Errorf("fault: %s episode window [%v, %v) is empty or inverted",
					cl.name, e.Start, e.End)
			case e.Severity < 0:
				return fmt.Errorf("fault: %s episode at %v has negative severity %v",
					cl.name, e.Start, e.Severity)
			case cl.probability && e.Severity > 1:
				return fmt.Errorf("fault: %s episode at %v has probability %v > 1",
					cl.name, e.Start, e.Severity)
			}
		}
		sorted := append([]Episode(nil), cl.episodes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Start < sorted[i-1].End {
				return fmt.Errorf("fault: overlapping %s episodes at %v and %v",
					cl.name, sorted[i-1].Start, sorted[i].Start)
			}
		}
	}
	return nil
}

// Counters aggregates the faults actually injected during a run.
type Counters struct {
	// StalledFrames counts frame starts that received a cost multiplier.
	StalledFrames int
	// JitteredEdges counts panel edges perturbed by jitter episodes.
	JitteredEdges int
	// MissedEdges counts refreshes the panel skipped.
	MissedEdges int
	// DriftedSignals counts software signals delivered late by drift.
	DriftedSignals int
	// AllocFailures counts dequeues failed despite free buffers.
	AllocFailures int
	// DroppedSamples counts digitizer samples suppressed.
	DroppedSamples int
	// DelayedSamples counts digitizer samples batched to a later delivery.
	DelayedSamples int
}

// Injector evaluates a Config against the simulation's hook points. All
// methods are deterministic in the call sequence: per-class random streams
// are split off the seed, so one class's draws never perturb another's.
type Injector struct {
	cfg Config

	jitterRNG *dist.RNG
	missRNG   *dist.RNG
	allocRNG  *dist.RNG
	dropRNG   *dist.RNG

	n Counters
}

// Reset rewinds every per-class stream to the start of its split seed and
// clears the tallies, so a reused injector replays exactly the draws a
// fresh NewInjector(cfg) would. The split lineage is fixed at construction;
// Reseed only rewinds each child stream in place.
func (in *Injector) Reset() {
	in.jitterRNG.Reseed(in.jitterRNG.Seed())
	in.missRNG.Reseed(in.missRNG.Seed())
	in.allocRNG.Reseed(in.allocRNG.Seed())
	in.dropRNG.Reseed(in.dropRNG.Seed())
	in.n = Counters{}
}

// NewInjector builds an injector. Invalid configs panic; run Validate (or
// sim.Validate, which includes it) first when the config is external input.
func NewInjector(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	root := dist.New(cfg.Seed)
	return &Injector{
		cfg:       cfg,
		jitterRNG: root.Split("fault.jitter"),
		missRNG:   root.Split("fault.miss"),
		allocRNG:  root.Split("fault.alloc"),
		dropRNG:   root.Split("fault.drop"),
	}
}

// Counters returns a copy of the injected-fault tallies.
func (in *Injector) Counters() Counters { return in.n }

func activeAt(eps []Episode, t simtime.Time) (Episode, bool) {
	for _, e := range eps {
		if e.Active(t) {
			return e, true
		}
	}
	return Episode{}, false
}

// CostScale is the pipeline hook: the stage-cost multiplier for a frame
// started at now. Outside stall windows it is 1.
func (in *Injector) CostScale(now simtime.Time) float64 {
	e, ok := activeAt(in.cfg.Stalls, now)
	if !ok {
		return 1
	}
	in.n.StalledFrames++
	return 1 + e.Severity
}

// EdgeDelay is the panel hook: extra perturbation of the edge nominally
// scheduled at nominal. Jitter episodes draw a zero-mean gaussian with the
// episode's stddev (ms), clamped to ±3σ.
func (in *Injector) EdgeDelay(nominal simtime.Time) simtime.Duration {
	e, ok := activeAt(in.cfg.VSyncJitter, nominal)
	if !ok || e.Severity == 0 {
		return 0
	}
	sigma := simtime.Duration(e.Severity * float64(simtime.Millisecond))
	j := simtime.Duration(float64(sigma) * in.jitterRNG.NormFloat64())
	in.n.JitteredEdges++
	return simtime.Clamp(j, -3*sigma, 3*sigma)
}

// EdgeMiss is the panel hook: whether the edge firing at now is skipped.
func (in *Injector) EdgeMiss(now simtime.Time, seq uint64) bool {
	e, ok := activeAt(in.cfg.MissedVSync, now)
	if !ok || e.Severity == 0 {
		return false
	}
	if in.missRNG.Float64() >= e.Severity {
		return false
	}
	in.n.MissedEdges++
	return true
}

// SignalDelay is the distributor hook: how far behind the hardware edge at
// `at` the software signals run. Drift accumulates linearly from the window
// start at the episode's ppm rate and resets when the window closes (the
// distributor resynchronises).
func (in *Injector) SignalDelay(at simtime.Time) simtime.Duration {
	e, ok := activeAt(in.cfg.ClockDrift, at)
	if !ok || e.Severity == 0 {
		return 0
	}
	d := simtime.Duration(float64(at.Sub(e.Start)) * e.Severity / 1e6)
	if d > 0 {
		in.n.DriftedSignals++
	}
	return d
}

// AllocFails is the buffer-queue hook: whether a dequeue attempt at now
// fails transiently despite free buffers.
func (in *Injector) AllocFails(now simtime.Time) bool {
	e, ok := activeAt(in.cfg.AllocFail, now)
	if !ok || e.Severity == 0 {
		return false
	}
	if in.allocRNG.Float64() >= e.Severity {
		return false
	}
	in.n.AllocFailures++
	return true
}

// DropSample implements input.Perturber: whether the digitizer report at
// `at` is lost.
func (in *Injector) DropSample(at simtime.Time) bool {
	e, ok := activeAt(in.cfg.InputDrop, at)
	if !ok || e.Severity == 0 {
		return false
	}
	if in.dropRNG.Float64() >= e.Severity {
		return false
	}
	in.n.DroppedSamples++
	return true
}

// BurstDelivery implements input.Perturber: the delayed delivery time of a
// sample taken at `at`, batched to the end of its burst interval. ok is
// false outside burst windows.
func (in *Injector) BurstDelivery(at simtime.Time) (simtime.Time, bool) {
	e, ok := activeAt(in.cfg.InputBurst, at)
	if !ok || e.Severity == 0 {
		return at, false
	}
	interval := simtime.Duration(e.Severity * float64(simtime.Millisecond))
	if interval <= 0 {
		return at, false
	}
	// Deliver at the end of the interval containing `at`, never past the
	// window: ceil((at − Start) / interval) intervals after Start.
	k := int64(at.Sub(e.Start))/int64(interval) + 1
	delivery := e.Start.Add(simtime.Duration(k) * interval)
	if delivery > e.End {
		delivery = e.End
	}
	if delivery != at {
		in.n.DelayedSamples++
	}
	return delivery, true
}

// Classes lists the severity-sweepable fault classes accepted by Scenario,
// in presentation order.
func Classes() []string {
	return []string{"stall", "jitter", "missed-vsync", "drift", "alloc", "input-drop", "input-burst"}
}

// Scenario builds a single-class Config at a normalised severity in [0, 1]
// over the window [start, end) — the shared severity mapping used by
// `dvbench -exp faults` and `dvsim -fault`, so both tools stress the same
// operating points:
//
//	stall        cost multiplier 1 + 2·s
//	jitter       edge jitter stddev 2.5·s ms
//	missed-vsync per-edge miss probability 0.35·s
//	drift        distributor lag rate 3000·s ppm
//	alloc        per-dequeue failure probability 0.5·s
//	input-drop   per-sample drop probability 0.8·s
//	input-burst  batch interval 40·s ms
func Scenario(cls string, severity float64, start, end simtime.Time, seed int64) (*Config, error) {
	if severity < 0 || severity > 1 {
		return nil, fmt.Errorf("fault: scenario severity %v outside [0, 1]", severity)
	}
	if end <= start {
		return nil, fmt.Errorf("fault: scenario window [%v, %v) is empty or inverted", start, end)
	}
	cfg := &Config{Seed: seed}
	ep := func(s float64) []Episode {
		if s == 0 {
			return nil
		}
		return []Episode{{Start: start, End: end, Severity: s}}
	}
	switch cls {
	case "stall":
		cfg.Stalls = ep(2 * severity)
	case "jitter":
		cfg.VSyncJitter = ep(2.5 * severity)
	case "missed-vsync":
		cfg.MissedVSync = ep(0.35 * severity)
	case "drift":
		cfg.ClockDrift = ep(3000 * severity)
	case "alloc":
		cfg.AllocFail = ep(0.5 * severity)
	case "input-drop":
		cfg.InputDrop = ep(0.8 * severity)
	case "input-burst":
		cfg.InputBurst = ep(40 * severity)
	default:
		return nil, fmt.Errorf("fault: unknown class %q (want one of %v)", cls, Classes())
	}
	return cfg, nil
}
