package fault

import "fmt"

// State is the injector's serialisable checkpoint state: the injected-fault
// tallies plus each per-class stream's position. The streams themselves are
// reconstructed from the config seed and fast-forwarded — the split lineage
// (root → "fault.jitter"/"fault.miss"/"fault.alloc"/"fault.drop") is fixed
// at construction, so (seed, draws) pins every stream exactly.
type State struct {
	Counters    Counters `json:"counters"`
	JitterDraws uint64   `json:"jitter_draws,omitempty"`
	MissDraws   uint64   `json:"miss_draws,omitempty"`
	AllocDraws  uint64   `json:"alloc_draws,omitempty"`
	DropDraws   uint64   `json:"drop_draws,omitempty"`
}

// State captures the injector for a checkpoint.
func (in *Injector) State() State {
	return State{
		Counters:    in.n,
		JitterDraws: in.jitterRNG.Draws(),
		MissDraws:   in.missRNG.Draws(),
		AllocDraws:  in.allocRNG.Draws(),
		DropDraws:   in.dropRNG.Draws(),
	}
}

// Restore loads checkpointed state into a freshly constructed injector by
// fast-forwarding each per-class stream to its recorded position.
func (in *Injector) Restore(st State) error {
	if in.jitterRNG.Draws() != 0 || in.missRNG.Draws() != 0 ||
		in.allocRNG.Draws() != 0 || in.dropRNG.Draws() != 0 {
		return fmt.Errorf("fault: restore into a used injector")
	}
	in.n = st.Counters
	in.jitterRNG.Skip(st.JitterDraws)
	in.missRNG.Skip(st.MissDraws)
	in.allocRNG.Skip(st.AllocDraws)
	in.dropRNG.Skip(st.DropDraws)
	return nil
}
