// Package anim provides the motion curves smartphone UI frameworks sample
// when rendering animation frames — the consumers of the (D-)VSync
// timestamp. An animation's visual correctness is entirely a function of
// which timestamps its frames are sampled at: the Display Time Virtualizer
// exists so that pre-rendered frames sample these curves at their *display*
// time rather than their execution time (§4.4).
package anim

import (
	"fmt"
	"math"

	"dvsync/internal/simtime"
)

// Curve maps normalised time u ∈ [0,1] to normalised progress [0,1].
type Curve interface {
	At(u float64) float64
}

// Linear is constant-velocity motion.
type Linear struct{}

// At implements Curve.
func (Linear) At(u float64) float64 { return clamp01(u) }

// EaseInOut is the standard smoothstep ease.
type EaseInOut struct{}

// At implements Curve.
func (EaseInOut) At(u float64) float64 {
	u = clamp01(u)
	return u * u * (3 - 2*u)
}

// CubicBezier is the CSS-style timing function with control points
// (X1,Y1), (X2,Y2); endpoints are fixed at (0,0) and (1,1).
type CubicBezier struct {
	X1, Y1, X2, Y2 float64
}

// At implements Curve by inverting x(t) with bisection, then evaluating
// y(t).
func (b CubicBezier) At(u float64) float64 {
	u = clamp01(u)
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if bez(b.X1, b.X2, mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return bez(b.Y1, b.Y2, (lo+hi)/2)
}

func bez(p1, p2, t float64) float64 {
	mt := 1 - t
	return 3*mt*mt*t*p1 + 3*mt*t*t*p2 + t*t*t
}

// Spring is a damped harmonic oscillator settling at 1, the basis of
// physics-based animations (dynamic effects the paper lists in §3.1).
type Spring struct {
	// Omega is the undamped angular frequency (rad/s of normalised time).
	Omega float64
	// Zeta is the damping ratio (< 1 underdamped).
	Zeta float64
}

// At implements Curve.
func (s Spring) At(u float64) float64 {
	u = clamp01(u)
	w, z := s.Omega, s.Zeta
	if w <= 0 {
		w = 12
	}
	if z <= 0 {
		z = 0.8
	}
	if z < 1 {
		wd := w * math.Sqrt(1-z*z)
		e := math.Exp(-z * w * u)
		return 1 - e*(math.Cos(wd*u)+z*w/wd*math.Sin(wd*u))
	}
	e := math.Exp(-w * u)
	return 1 - e*(1+w*u)
}

// Fling models friction-decelerated scroll progress: position approaches 1
// exponentially, mirroring input.Fling's kinematics.
type Fling struct {
	// K is the decay rate in units of normalised time.
	K float64
}

// At implements Curve.
func (f Fling) At(u float64) float64 {
	u = clamp01(u)
	k := f.K
	if k <= 0 {
		k = 4
	}
	return (1 - math.Exp(-k*u)) / (1 - math.Exp(-k))
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Animation is a curve bound to a wall-time window and a pixel range.
type Animation struct {
	// Name labels the animation.
	Name string
	// Curve shapes the motion.
	Curve Curve
	// Start is when the animation begins.
	Start simtime.Time
	// Duration is the animation length.
	Duration simtime.Duration
	// From and To bound the animated property (e.g. pixels).
	From, To float64
}

// SampleAt returns the animated value for a frame whose content timestamp
// is t — exactly what a UI framework does with the (D-)VSync timestamp.
func (a *Animation) SampleAt(t simtime.Time) float64 {
	if a.Duration <= 0 {
		panic(fmt.Sprintf("anim %q: non-positive duration", a.Name))
	}
	u := float64(t.Sub(a.Start)) / float64(a.Duration)
	return a.From + (a.To-a.From)*a.Curve.At(u)
}

// Done reports whether the animation has completed by t.
func (a *Animation) Done(t simtime.Time) bool {
	return t.Sub(a.Start) >= a.Duration
}

// PacingReport quantifies how uniformly an animation was presented to the
// viewer: for each pair of consecutively displayed frames it compares the
// on-screen progress step against the ideal step implied by the photon
// interval. DTV's guarantee — "animations never appear fast in
// accumulation or slow down in long frames" — is a statement about this
// error being zero.
type PacingReport struct {
	// MaxAbsError and RMSError are in normalised-progress units.
	MaxAbsError, RMSError float64
	// Steps is the number of frame pairs evaluated.
	Steps int
}

// Pacing evaluates presented frames: presentAt[i] is when frame i became
// visible and value[i] is the animated value it showed.
func (a *Animation) Pacing(presentAt []simtime.Time, values []float64) PacingReport {
	if len(presentAt) != len(values) {
		panic("anim: pacing input length mismatch")
	}
	var rep PacingReport
	var sumsq float64
	span := a.To - a.From
	if span == 0 {
		return rep
	}
	for i := 1; i < len(values); i++ {
		gotStep := (values[i] - values[i-1]) / span
		idealFrom := a.Curve.At(normTime(a, presentAt[i-1]))
		idealTo := a.Curve.At(normTime(a, presentAt[i]))
		err := gotStep - (idealTo - idealFrom)
		if err < 0 {
			err = -err
		}
		if err > rep.MaxAbsError {
			rep.MaxAbsError = err
		}
		sumsq += err * err
		rep.Steps++
	}
	if rep.Steps > 0 {
		rep.RMSError = math.Sqrt(sumsq / float64(rep.Steps))
	}
	return rep
}

func normTime(a *Animation, t simtime.Time) float64 {
	return float64(t.Sub(a.Start)) / float64(a.Duration)
}
