package anim

import (
	"math"
	"testing"
	"testing/quick"

	"dvsync/internal/simtime"
)

func TestCurveEndpoints(t *testing.T) {
	curves := map[string]Curve{
		"linear":  Linear{},
		"easein":  EaseInOut{},
		"bezier":  CubicBezier{X1: 0.25, Y1: 0.1, X2: 0.25, Y2: 1},
		"fling":   Fling{K: 4},
		"default": Fling{},
	}
	for name, c := range curves {
		if got := c.At(0); math.Abs(got) > 1e-6 {
			t.Errorf("%s.At(0) = %v", name, got)
		}
		if got := c.At(1); math.Abs(got-1) > 1e-6 {
			t.Errorf("%s.At(1) = %v", name, got)
		}
	}
}

func TestCurvesMonotone(t *testing.T) {
	curves := map[string]Curve{
		"linear": Linear{},
		"easein": EaseInOut{},
		"bezier": CubicBezier{X1: 0.42, Y1: 0, X2: 0.58, Y2: 1},
		"fling":  Fling{K: 3},
	}
	for name, c := range curves {
		prev := -1e-9
		for u := 0.0; u <= 1.0001; u += 0.001 {
			v := c.At(u)
			if v < prev-1e-9 {
				t.Fatalf("%s not monotone at u=%v", name, u)
			}
			prev = v
		}
	}
}

func TestCurvesClampOutsideRange(t *testing.T) {
	f := func(u float64) bool {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return true
		}
		for _, c := range []Curve{Linear{}, EaseInOut{}, Fling{K: 4}} {
			v := c.At(u)
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpringSettles(t *testing.T) {
	s := Spring{Omega: 14, Zeta: 0.7}
	if got := s.At(0); math.Abs(got) > 1e-9 {
		t.Errorf("At(0) = %v", got)
	}
	if got := s.At(1); math.Abs(got-1) > 0.05 {
		t.Errorf("At(1) = %v, should settle near 1", got)
	}
	// Underdamped springs overshoot.
	overshot := false
	for u := 0.0; u <= 1; u += 0.005 {
		if s.At(u) > 1.001 {
			overshot = true
			break
		}
	}
	if !overshot {
		t.Error("ζ=0.7 spring should overshoot")
	}
	// Critically damped does not.
	cd := Spring{Omega: 14, Zeta: 1}
	for u := 0.0; u <= 1; u += 0.005 {
		if cd.At(u) > 1+1e-9 {
			t.Fatal("critically damped spring overshot")
		}
	}
}

func TestAnimationSampleAt(t *testing.T) {
	a := &Animation{
		Name: "open", Curve: Linear{},
		Start: simtime.Time(simtime.FromMillis(100)), Duration: simtime.FromMillis(400),
		From: 0, To: 800,
	}
	if got := a.SampleAt(simtime.Time(simtime.FromMillis(100))); got != 0 {
		t.Errorf("at start = %v", got)
	}
	if got := a.SampleAt(simtime.Time(simtime.FromMillis(300))); math.Abs(got-400) > 1e-6 {
		t.Errorf("midway = %v", got)
	}
	if got := a.SampleAt(simtime.Time(simtime.FromMillis(600))); got != 800 {
		t.Errorf("at end = %v", got)
	}
	if a.Done(simtime.Time(simtime.FromMillis(400))) {
		t.Error("not done yet")
	}
	if !a.Done(simtime.Time(simtime.FromMillis(500))) {
		t.Error("should be done")
	}
}

func TestPacingPerfect(t *testing.T) {
	a := &Animation{Name: "p", Curve: Linear{}, Start: 0,
		Duration: simtime.FromMillis(500), From: 0, To: 1000}
	period := simtime.PeriodForHz(60)
	var at []simtime.Time
	var vals []float64
	for i := 0; i < 20; i++ {
		tt := simtime.Time(int64(i) * int64(period))
		at = append(at, tt)
		vals = append(vals, a.SampleAt(tt))
	}
	rep := a.Pacing(at, vals)
	if rep.MaxAbsError > 1e-9 {
		t.Errorf("perfect pacing has error %v", rep.MaxAbsError)
	}
	if rep.Steps != 19 {
		t.Errorf("steps = %d", rep.Steps)
	}
}

// TestPacingDetectsStaleTimestamps: sampling with the *execution* time of
// pre-rendered frames (instead of the display time) makes the animation run
// fast then stall — the failure mode DTV prevents.
func TestPacingDetectsStaleTimestamps(t *testing.T) {
	a := &Animation{Name: "p", Curve: Linear{}, Start: 0,
		Duration: simtime.FromMillis(500), From: 0, To: 1000}
	period := simtime.PeriodForHz(60)
	var at []simtime.Time
	var vals []float64
	for i := 0; i < 20; i++ {
		present := simtime.Time(int64(i) * int64(period))
		// Pre-rendered 3 frames ahead but sampled at execution time:
		// content lags the photon by 3 periods.
		exec := present - simtime.Time(3*int64(period))
		if exec < 0 {
			exec = 0
		}
		at = append(at, present)
		vals = append(vals, a.SampleAt(exec))
	}
	rep := a.Pacing(at, vals)
	if rep.MaxAbsError < 0.01 {
		t.Errorf("stale sampling should produce pacing error, got %v", rep.MaxAbsError)
	}
}

func TestPacingMismatchedInputPanics(t *testing.T) {
	a := &Animation{Name: "x", Curve: Linear{}, Duration: 1000, From: 0, To: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Pacing([]simtime.Time{0}, nil)
}
