package autotest

import (
	"testing"

	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/workload"
)

func TestCompileCoversAllCases(t *testing.T) {
	for _, uc := range scenarios.UseCases() {
		s := Compile(uc)
		if len(s.Steps) < 3 {
			t.Errorf("%s: only %d steps (entry + op + exit expected)", uc.Abbrev, len(s.Steps))
		}
		if s.Steps[0].Kind != Settle || s.Steps[len(s.Steps)-1].Kind != Settle {
			t.Errorf("%s: scripts must start and end on the sceneboard (A.2)", uc.Abbrev)
		}
		for i, st := range s.Steps {
			if st.Duration <= 0 || st.Load <= 0 || st.KeyFrameRatio < 0 {
				t.Errorf("%s step %d: invalid %+v", uc.Abbrev, i, st)
			}
		}
		if n := s.Frames(scenarios.Mate60Pro); n < 30 {
			t.Errorf("%s: only %d frames on a 120 Hz panel", uc.Abbrev, n)
		}
	}
}

func TestCompileCategorySpecifics(t *testing.T) {
	rotation := Compile(scenarios.UseCaseByAbbrev("vert to hori"))
	foundRotate := false
	for _, st := range rotation.Steps {
		if st.Kind == Rotate {
			foundRotate = true
			if st.Load < 1.3 {
				t.Errorf("rotation load %v should be heavy (full re-layout)", st.Load)
			}
		}
	}
	if !foundRotate {
		t.Error("rotation case lacks a Rotate step")
	}

	scroll := Compile(scenarios.UseCaseByAbbrev("scrl wechat"))
	foundDrag := false
	for _, st := range scroll.Steps {
		if st.Kind == Drag {
			foundDrag = true
		}
	}
	if !foundDrag {
		t.Error("scroll case lacks a Drag step")
	}

	// Clearing all notifications is heavier than tapping it closed.
	clr := Compile(scenarios.UseCaseByAbbrev("clr all notif"))
	tap := Compile(scenarios.UseCaseByAbbrev("tap cls notif"))
	if maxLoad(clr) <= maxLoad(tap) {
		t.Error("clearing all notifications should be the heavier operation")
	}
}

func maxLoad(s *Script) float64 {
	m := 0.0
	for _, st := range s.Steps {
		if st.Load > m {
			m = st.Load
		}
	}
	return m
}

func TestWorkloadClasses(t *testing.T) {
	s := Compile(scenarios.UseCaseByAbbrev("scrl photos"))
	tr := s.Workload(scenarios.Mate60Pro, 1)
	interactive, deterministic := 0, 0
	for _, c := range tr.Costs {
		switch c.Class {
		case workload.Interactive:
			interactive++
		case workload.Deterministic:
			deterministic++
		}
	}
	if interactive == 0 {
		t.Error("drag windows should produce interactive frames")
	}
	if deterministic == 0 {
		t.Error("fling/settle windows should produce deterministic frames")
	}
}

func TestRunCaseDeterministic(t *testing.T) {
	uc := scenarios.UseCaseByAbbrev("cls notif ctr")
	a := RunCase(uc, scenarios.Mate60Pro, sim.ModeVSync, 9)
	b := RunCase(uc, scenarios.Mate60Pro, sim.ModeVSync, 9)
	if a.FDPS != b.FDPS || a.Janks != b.Janks {
		t.Error("identical seeds must reproduce identical reports")
	}
}

// TestCensusShape checks the §3.2 methodology outcome: a substantial
// minority of the 75 cases exhibit frame drops under VSync (the paper
// reports 20 of 75 with GLES and 29 with Vulkan), and D-VSync cures most
// of them.
func TestCensusShape(t *testing.T) {
	v := RunCensus(scenarios.Mate60Pro, sim.ModeVSync, 1)
	d := RunCensus(scenarios.Mate60Pro, sim.ModeDVSync, 1)
	if v.CasesWithDrops < 15 || v.CasesWithDrops > 45 {
		t.Errorf("VSync census: %d of 75 cases with drops, paper reports 20-29", v.CasesWithDrops)
	}
	if d.CasesWithDrops >= v.CasesWithDrops/2 {
		t.Errorf("D-VSync should cure most dropping cases: %d vs %d",
			d.CasesWithDrops, v.CasesWithDrops)
	}
	if d.TotalJanks >= 0.5*v.TotalJanks {
		t.Errorf("D-VSync janks %.1f vs VSync %.1f: expected >50%% reduction",
			d.TotalJanks, v.TotalJanks)
	}
	// The heavy categories lead the drop census, as in Figures 12/13.
	heavy := map[string]bool{"Screen Rotation": true, "Camera": true, "Notification Center": true}
	heavyDrops := 0
	for _, r := range v.Reports {
		if heavy[r.Case.Category] && r.Janks >= 1 {
			heavyDrops++
		}
	}
	if heavyDrops < 5 {
		t.Errorf("heavy categories should dominate the census, got %d dropping", heavyDrops)
	}
}

func TestStepKindString(t *testing.T) {
	for k, want := range map[StepKind]string{
		Tap: "tap", SwipeOp: "swipe", Drag: "drag", Rotate: "rotate",
		ButtonPress: "button", Settle: "settle",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
