// Package autotest reproduces the paper's industrial testing framework
// (Appendix A.2): every one of the 75 OS use cases is driven by a script
// that mimics the necessary human operations — entering the scenario from
// the sceneboard, performing the clicks/swipes/rotations, recording a
// trace, and counting frame drops.
//
// The paper's scripts talk to a phone over HDC; ours drive the simulated
// rendering stack. Each use case compiles to a sequence of steps, each
// step producing an animation window of frames whose load profile follows
// the operation's nature (a screen rotation re-lays-out and re-rasterises
// everything; a volume-bar fade barely works). The framework then runs the
// trace under either architecture and reports the per-case metrics the
// figures are built from.
package autotest

import (
	"fmt"
	"strings"

	"dvsync/internal/par"
	"dvsync/internal/scenarios"
	"dvsync/internal/sim"
	"dvsync/internal/simtime"
	"dvsync/internal/workload"
)

// StepKind is the human operation a step simulates.
type StepKind int

// Operation kinds.
const (
	// Tap triggers a deterministic animation (open/close/clear/…).
	Tap StepKind = iota
	// SwipeOp is a directional swipe releasing into a fling.
	SwipeOp
	// Drag keeps the fingertip on the glass (interactive frames).
	Drag
	// Rotate is a screen rotation (full re-layout).
	Rotate
	// ButtonPress is a physical-button operation.
	ButtonPress
	// Settle is the trailing animation after an operation completes.
	Settle
)

// String names the kind.
func (k StepKind) String() string {
	switch k {
	case Tap:
		return "tap"
	case SwipeOp:
		return "swipe"
	case Drag:
		return "drag"
	case Rotate:
		return "rotate"
	case ButtonPress:
		return "button"
	case Settle:
		return "settle"
	}
	return fmt.Sprintf("step(%d)", int(k))
}

// Step is one scripted operation.
type Step struct {
	// Kind is the operation.
	Kind StepKind
	// Label describes the step ("open notification center").
	Label string
	// Duration is the animation window the operation drives.
	Duration simtime.Duration
	// Load scales the frame costs of this window relative to the device's
	// baseline animation load (1.0 = typical transition).
	Load float64
	// KeyFrameRatio is the window's heavy key-frame probability.
	KeyFrameRatio float64
}

// Script is a use case compiled to operations. Every script implicitly
// starts and ends on the sceneboard's first page (Appendix A.2).
type Script struct {
	// Case is the Appendix A catalog entry.
	Case scenarios.UseCase
	// Steps are the operations in order.
	Steps []Step
}

// Frames returns the total frame count of the script on the device.
func (s *Script) Frames(dev scenarios.Device) int {
	n := 0
	for _, st := range s.Steps {
		n += framesIn(st.Duration, dev)
	}
	return n
}

func framesIn(d simtime.Duration, dev scenarios.Device) int {
	period := dev.Period()
	n := int((d + period - 1) / period)
	if n < 1 {
		n = 1
	}
	return n
}

// Compile derives the operation script for a use case from its catalog
// entry. The mapping encodes the Appendix A.3 operation taxonomy: what
// kind of gesture each case performs and how heavy its animation is.
func Compile(uc scenarios.UseCase) *Script {
	s := &Script{Case: uc}
	add := func(kind StepKind, label string, ms float64, load, keyRatio float64) {
		s.Steps = append(s.Steps, Step{
			Kind: kind, Label: label,
			Duration:      simtime.FromMillis(ms),
			Load:          load,
			KeyFrameRatio: keyRatio,
		})
	}
	desc := strings.ToLower(uc.Description)

	// Entry: navigate from the sceneboard's first page (light).
	add(Settle, "enter from sceneboard", 250, 0.7, 0.002)

	switch uc.Category {
	case "Phone Unlocking":
		add(SwipeOp, "unlock swipe", 350, 0.95, 0.002)
		add(Settle, "fly-in animation", 450, 1.1, 0.006)
	case "Sceneboard":
		load := 1.0
		if strings.Contains(desc, "full folders") {
			load = 1.35 // dense folder grids rasterise more content
		}
		add(SwipeOp, "slide pages", 600, load, keyIf(load > 1.2, 0.015, 0.0015))
		add(SwipeOp, "slide back", 600, load, keyIf(load > 1.2, 0.015, 0.0015))
	case "App Operation":
		reps := 1
		if strings.Contains(desc, "one after another") {
			reps = 4
		}
		for i := 0; i < reps; i++ {
			add(Tap, "open/close app", 400, 1.15, 0.012)
		}
	case "Folder":
		add(Tap, "folder open/close", 300, 1.05, 0.002)
	case "Cards":
		add(Tap, "cards show/hide", 350, 1.05, 0.003)
	case "Notification Center":
		load := 1.1
		if strings.Contains(desc, "clear all") {
			load = 1.45 // blur + cascade of leaving notifications
		}
		add(SwipeOp, "notification center", 450, load, keyIf(load > 1.4, 0.06, 0.01))
	case "Control Center":
		load := 1.1
		if strings.Contains(desc, "brightness") {
			add(Drag, "brightness slider", 700, 0.85, 0.002)
			break
		}
		add(SwipeOp, "control center", 450, load, 0.009)
	case "Volume Bar":
		add(ButtonPress, "volume operation", 300, 0.55, 0.0005)
	case "Tasks":
		load := 1.1
		if strings.Contains(desc, "clear all tasks") {
			load = 1.35
		}
		add(SwipeOp, "multitasking", 500, load, keyIf(load > 1.3, 0.025, 0.004))
	case "HiBoard":
		add(SwipeOp, "hiboard transition", 450, 1.1, 0.008)
	case "Global Search":
		add(SwipeOp, "search open/close", 350, 1.0, 0.002)
	case "Keyboard":
		add(Tap, "keyboard show/hide", 300, 0.95, 0.002)
	case "Screen Rotation":
		add(Rotate, "rotate", 600, 1.5, 0.08) // full re-layout + re-raster
	case "Photos":
		if strings.Contains(desc, "scroll") {
			add(Drag, "scroll", 500, 1.0, 0.006)
			add(SwipeOp, "fling", 700, 1.0, 0.01)
		} else {
			add(Tap, "photo transition", 400, 1.15, 0.01)
		}
	case "Camera":
		add(SwipeOp, "camera transition", 500, 1.35, 0.06) // viewfinder teardown
	case "Browser":
		add(Tap, "pages overview", 400, 1.15, 0.01)
	case "Settings":
		if strings.Contains(desc, "scroll") {
			add(Drag, "scroll settings", 500, 0.9, 0.004)
			add(SwipeOp, "fling", 600, 0.9, 0.006)
		} else {
			add(Tap, "subpage transition", 350, 0.95, 0.003)
		}
	case "Other Apps":
		add(Drag, "app scroll", 600, 1.1, 0.008)
		add(SwipeOp, "fling", 900, 1.1, 0.012)
	default:
		add(Tap, "generic transition", 400, 0.95, 0.003)
	}

	// Exit: return to the sceneboard's first page.
	add(Settle, "return to sceneboard", 250, 0.7, 0.002)
	return s
}

// Workload synthesises the script's frame trace on a device. Tap-, swipe-
// and settle-driven windows are deterministic animations; drag windows are
// interactive (§4.2).
func (s *Script) Workload(dev scenarios.Device, seed int64) *workload.Trace {
	var parts []*workload.Trace
	for i, st := range s.Steps {
		p := scenarios.BaseProfile(
			fmt.Sprintf("%s/%d-%s", s.Case.Abbrev, i, st.Kind),
			dev, scenarios.Moderate, classOf(st.Kind))
		p.ShortMeanMs *= st.Load
		p.ShortSigmaMs *= st.Load
		p.LongRatio = st.KeyFrameRatio
		parts = append(parts, p.Generate(framesIn(st.Duration, dev), seed+int64(i)*104729))
	}
	return workload.Concat(s.Case.Abbrev, parts...)
}

func keyIf(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

func classOf(k StepKind) workload.Class {
	if k == Drag {
		return workload.Interactive
	}
	return workload.Deterministic
}

// Runs is the per-case repetition count ("Averages are derived from five
// runs to mitigate fluctuations", Appendix A.2).
const Runs = 5

// Report is one case's measured outcome, averaged over Runs.
type Report struct {
	// Case is the catalog entry.
	Case scenarios.UseCase
	// Frames is the script length.
	Frames int
	// FDPS and Janks are the drop metrics (means over Runs).
	FDPS  float64
	Janks float64
	// LatencyMs is the mean rendering latency.
	LatencyMs float64
}

// RunCase executes one use case on the device under the given architecture,
// averaging Runs repetitions.
func RunCase(uc scenarios.UseCase, dev scenarios.Device, mode sim.Mode, seed int64) Report {
	script := Compile(uc)
	rep := Report{Case: uc}
	// One Runner serves all five repetitions: the repetitions differ only
	// in their frame sequence, so the wired graph is rewound per rep
	// instead of rebuilt (the census reuses ~375 graphs away this way).
	var rn *sim.Runner
	for i := int64(0); i < Runs; i++ {
		tr := script.Workload(dev, seed+i*131)
		if rn == nil {
			rn = sim.NewRunner(sim.Config{
				Mode:    mode,
				Panel:   dev.Panel(),
				Buffers: dev.Buffers,
				Trace:   tr,
			})
		}
		r := rn.RunTrace(tr)
		rep.Frames = tr.Len()
		rep.FDPS += r.FDPS()
		rep.Janks += float64(len(r.Janks))
		rep.LatencyMs += r.LatencySummary().MeanOrZero()
	}
	rep.FDPS /= Runs
	rep.Janks /= Runs
	rep.LatencyMs /= Runs
	return rep
}

// Census runs the full 75-case benchmark under one architecture —
// the §3.2 methodology ("we first inspected 75 common OS use cases by an
// industrial testing framework").
type Census struct {
	// Reports holds one entry per case, catalog order.
	Reports []Report
	// CasesWithDrops counts cases exhibiting at least one jank.
	CasesWithDrops int
	// TotalJanks sums mean janks across all cases.
	TotalJanks float64
	// AvgFDPSOverDropCases averages FDPS over cases that dropped (the
	// quantity §3.2 reports).
	AvgFDPSOverDropCases float64
}

// RunCensus executes all 75 cases. Every case is an independent seeded
// replay, so they fan out through par.Map; the summary statistics fold the
// returned reports serially in catalog order, keeping them bit-identical
// to the legacy sequential walk.
func RunCensus(dev scenarios.Device, mode sim.Mode, seed int64) *Census {
	ucs := scenarios.UseCases()
	reports := par.Map(len(ucs), func(i int) Report {
		return RunCase(ucs[i], dev, mode, seed+int64(ucs[i].ID)*7)
	})
	c := &Census{Reports: reports}
	var fdpsSum float64
	for _, rep := range reports {
		c.TotalJanks += rep.Janks
		// A case "has frame drops" when it janks consistently across the
		// five runs, not on one unlucky draw.
		if rep.Janks >= 1 {
			c.CasesWithDrops++
			fdpsSum += rep.FDPS
		}
	}
	if c.CasesWithDrops > 0 {
		c.AvgFDPSOverDropCases = fdpsSum / float64(c.CasesWithDrops)
	}
	return c
}
